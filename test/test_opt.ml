open Helpers

(** The classic optimizer mid-end (lib/opt): positive per-pass cases,
    the committed legality corpus — one fixture per pass where it must
    {e refuse} to fire, with the refusal counted — and differential
    validation over the generator families, all under both evaluator
    engines. *)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus name = read (Filename.concat "corpus" name)

let typed src =
  let prog = parse src in
  (match Minic.Typecheck.check_program prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "typecheck: %s" e);
  prog

let counter obs name =
  Option.value (List.assoc_opt name (Obs.counters obs)) ~default:0

let contains s frag =
  let n = String.length s and m = String.length frag in
  let rec go i = i + m <= n && (String.equal (String.sub s i m) frag || go (i + 1)) in
  m = 0 || go 0

let engines = [ Minic.Interp.Reference; Minic.Interp.Compiled ]

(* The optimizer oracle: optimized and original must be
   indistinguishable (output, return value, final globals) under both
   engines; identical pre-existing failure is the only excuse. *)
let assert_equiv name prog prog' =
  List.iter
    (fun engine ->
      match Check.equiv ~engine prog prog' with
      | Check.Equal | Check.Both_failed _ -> ()
      | v ->
          Alcotest.failf "%s [%s]: optimizer changed behaviour: %s\n%s" name
            (Minic.Interp.engine_name engine)
            (Check.verdict_str v)
            (Minic.Pretty.program_to_string prog'))
    engines

(* One legality fixture: running [pass] alone must fire 0 times, count
   the named refusal, keep the [survives] fragments in the printed
   program, and preserve behaviour. *)
let refusal ~file ~pass ~reason ~survives =
  tc (Printf.sprintf "%s refuses on %s" (Opt.pass_name pass) file) (fun () ->
      let prog = typed (corpus file) in
      let obs = Obs.create () in
      let prog' = Opt.run ~obs ~passes:[ pass ] prog in
      let name = Opt.pass_name pass in
      Alcotest.(check int)
        (Printf.sprintf "opt.%s.fired" name)
        0
        (counter obs (Printf.sprintf "opt.%s.fired" name));
      let blocked = Printf.sprintf "opt.%s.blocked.%s" name reason in
      if counter obs blocked < 1 then
        Alcotest.failf "expected %s to be counted; report:\n%s" blocked
          (Opt.report obs);
      let printed = Minic.Pretty.program_to_string prog' in
      List.iter
        (fun frag ->
          if not (contains printed frag) then
            Alcotest.failf "%s must survive in:\n%s" frag printed)
        survives;
      assert_equiv file prog prog')

(* One positive case: [pass] alone fires at least once, the [expect]
   fragments appear, and behaviour is preserved. *)
let fires ~name ~src ~pass ~expect =
  tc name (fun () ->
      let prog = typed src in
      let obs = Obs.create () in
      let prog' = Opt.run ~obs ~passes:[ pass ] prog in
      let pn = Opt.pass_name pass in
      if counter obs (Printf.sprintf "opt.%s.fired" pn) < 1 then
        Alcotest.failf "expected opt.%s.fired >= 1; report:\n%s" pn
          (Opt.report obs);
      let printed = Minic.Pretty.program_to_string prog' in
      List.iter
        (fun frag ->
          if not (contains printed frag) then
            Alcotest.failf "expected %s in:\n%s" frag printed)
        expect;
      assert_equiv name prog prog')

let suite =
  [
    (* --- each pass fires where it is allowed to --- *)
    fires ~name:"fold: literal arithmetic and propagation"
      ~src:
        "int main(void) { int a = 2 + 3; int b = a * a; print_int(b + 1); \
         return 0; }"
      ~pass:Opt.Fold ~expect:[ "26" ];
    fires ~name:"licm: invariant subexpression hoists"
      ~src:
        "int main(void) { int a = 3; int n = 4; int s = 0; for (i = 0; i < \
         n; i++) { s = s + (a * a + n); } print_int(s); return 0; }"
      ~pass:Opt.Licm
      ~expect:[ "licm__" ];
    fires ~name:"cse: repeated pure subexpression shares a temp"
      ~src:
        "int main(void) { int u = 2; int v = 3; int w = 4; int p = (u + v) \
         * w; int q = (u + v) * w; int r = (u + v) * w; print_int(p + q + \
         r); return 0; }"
      ~pass:Opt.Cse
      ~expect:[ "cse__" ];
    fires ~name:"strength: k * i becomes an accumulator"
      ~src:
        "int main(void) { int s = 0; int t = 0; int u = 0; for (i = 0; i < \
         6; i++) { s = s + 3 * i; t = t + 3 * i; u = u + 3 * i; } \
         print_int(s + t + u); return 0; }"
      ~pass:Opt.Strength
      ~expect:[ "sr__" ];
    fires ~name:"dce: dead declaration and dead branch vanish"
      ~src:
        "int main(void) { int dead = 41; if (1) { print_int(1); } else { \
         print_int(2); } return 0; }"
      ~pass:Opt.Dce
      ~expect:[ "print_int(1)" ];
    fires ~name:"inline: pure one-return callee substitutes"
      ~src:
        "int sq(int x) { return x * x; } int main(void) { print_int(sq(7)); \
         return 0; }"
      ~pass:Opt.Inline
      ~expect:[ "7 * 7" ];
    (* --- the legality corpus: refusals, counted and preserved --- *)
    refusal ~file:"opt_cse_alias.mc" ~pass:Opt.Cse ~reason:"aliased-store"
      ~survives:[ "a[0] + a[1]" ];
    refusal ~file:"opt_licm_callbound.mc" ~pass:Opt.Licm
      ~reason:"effectful-bound"
      ~survives:[ "a + a + a" ];
    refusal ~file:"opt_fold_trap.mc" ~pass:Opt.Fold ~reason:"div-by-zero"
      ~survives:[ "1 / 0" ];
    refusal ~file:"opt_dce_trap.mc" ~pass:Opt.Dce ~reason:"trapping"
      ~survives:[ "10 / d" ];
    refusal ~file:"opt_strength_continue.mc" ~pass:Opt.Strength
      ~reason:"continue"
      ~survives:[ "4 * i" ];
    refusal ~file:"opt_cse_loop.mc" ~pass:Opt.Cse ~reason:"loop-body"
      ~survives:[ "a * b + c" ];
    refusal ~file:"opt_licm_nested.mc" ~pass:Opt.Licm ~reason:"nested-loop"
      ~survives:[ "i * i + n" ];
    refusal ~file:"opt_strength_single.mc" ~pass:Opt.Strength
      ~reason:"unprofitable"
      ~survives:[ "5 * i" ];
    refusal ~file:"opt_inline_impure.mc" ~pass:Opt.Inline
      ~reason:"impure-arg"
      ~survives:[ "sq(a[0])" ];
    (* --- the pipeline end to end --- *)
    tc "full pipeline preserves the corpus programs" (fun () ->
        List.iter
          (fun file ->
            let prog = typed (corpus file) in
            assert_equiv file prog (Opt.run prog))
          [
            "fig05a_blackscholes.mc"; "fig06_streamcluster.mc";
            "fig07_srad.mc"; "fig08_patterns.mc"; "opt_cse_alias.mc";
            "opt_licm_callbound.mc"; "opt_fold_trap.mc"; "opt_dce_trap.mc";
            "opt_strength_continue.mc"; "opt_inline_impure.mc";
            "opt_cse_loop.mc"; "opt_licm_nested.mc"; "opt_strength_single.mc";
          ]);
    tc "Comp.optimize ~opt runs the mid-end before the COMP passes" (fun () ->
        let prog = typed (corpus "fig05a_blackscholes.mc") in
        let obs = Obs.create () in
        let prog', _ = Comp.optimize ~opt:Opt.all_passes ~obs prog in
        if
          List.for_all
            (fun (k, _) -> not (contains k "opt."))
            (Obs.counters obs)
        then Alcotest.fail "expected opt.* counters from the mid-end";
        assert_equiv "fig05a via Comp.optimize" prog prog');
    tc "generator families: every pass and the pipeline preserve semantics"
      (fun () ->
        let pass_sets =
          List.map (fun p -> [ p ]) Opt.all_passes @ [ Opt.all_passes ]
        in
        List.iter
          (fun pat ->
            List.iter
              (fun seed ->
                let prog = typed (Check.Genprog.generate pat ~seed) in
                List.iter
                  (fun passes ->
                    let what =
                      Printf.sprintf "%s seed=%d passes=%s"
                        (Check.Genprog.pattern_name pat)
                        seed
                        (String.concat "," (List.map Opt.pass_name passes))
                    in
                    assert_equiv what prog (Opt.run ~passes prog))
                  pass_sets)
              [ 1; 42; 1234 ])
          Check.Genprog.all_patterns);
    tc "the report renders fired and blocked counters" (fun () ->
        let prog =
          typed
            "int main(void) { int a = 1 + 2; if (0) { print_int(1 / 0); } \
             print_int(a); return 0; }"
        in
        let obs = Obs.create () in
        ignore (Opt.run ~obs prog);
        let r = Opt.report obs in
        List.iter
          (fun frag ->
            if not (contains r frag) then
              Alcotest.failf "expected %s in report:\n%s" frag r)
          [ "opt.fold.fired"; "opt.fold.blocked.div-by-zero" ]);
  ]
