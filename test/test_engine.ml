open Helpers
open Machine

(* random DAGs: deps only point to lower ids, so they are acyclic *)
let arb_dag =
  let gen =
    QCheck.Gen.(
      let* n = int_range 1 40 in
      let* durations = list_size (return n) (float_range 0.0 2.0) in
      let* dep_flags =
        list_size (return n) (list_size (int_range 0 3) (int_range 0 1000))
      in
      return
        (List.mapi
           (fun i (d, raw_deps) ->
             let deps =
               List.filter_map
                 (fun r -> if i = 0 then None else Some (r mod i))
                 raw_deps
               |> List.sort_uniq compare
             in
             {
               Task.id = i;
               label = Printf.sprintf "t%d" i;
               resource =
                 (* a 2-device x 2-stream mix, so multi-device
                    resources see the same property coverage *)
                 (match i mod 4 with
                 | 0 -> Task.Cpu_exec
                 | 1 -> Task.Mic_exec (i mod 2, (i lsr 2) mod 2)
                 | 2 -> Task.Pcie_h2d (i mod 2)
                 | _ -> Task.Pcie_d2h (i mod 2));
               duration = d;
               deps;
               kind = None;
               bytes = 0.;
               reset_xfer_s = 0.;
             })
           (List.combine durations dep_flags)))
  in
  QCheck.make gen

let simple ~resource ~duration ~deps id =
  { Task.id; label = "t"; resource; duration; deps; kind = None; bytes = 0.;
    reset_xfer_s = 0. }

let suite =
  [
    tc "sequential chain sums durations" (fun () ->
        let tasks =
          [
            simple ~resource:Task.Cpu_exec ~duration:1.0 ~deps:[] 0;
            simple ~resource:Task.Cpu_exec ~duration:2.0 ~deps:[ 0 ] 1;
            simple ~resource:Task.Cpu_exec ~duration:3.0 ~deps:[ 1 ] 2;
          ]
        in
        Alcotest.(check (float 1e-12)) "makespan" 6.0 (Engine.makespan tasks));
    tc "independent tasks on different resources overlap" (fun () ->
        let tasks =
          [
            simple ~resource:(Task.Pcie_h2d 0) ~duration:5.0 ~deps:[] 0;
            simple ~resource:(Task.Mic_exec (0, 0)) ~duration:5.0 ~deps:[] 1;
          ]
        in
        Alcotest.(check (float 1e-12)) "overlap" 5.0 (Engine.makespan tasks));
    tc "same resource serializes" (fun () ->
        let tasks =
          [
            simple ~resource:(Task.Mic_exec (0, 0)) ~duration:5.0 ~deps:[] 0;
            simple ~resource:(Task.Mic_exec (0, 0)) ~duration:5.0 ~deps:[] 1;
          ]
        in
        Alcotest.(check (float 1e-12)) "serial" 10.0 (Engine.makespan tasks));
    tc "pipeline overlaps like Figure 5(d)" (fun () ->
        (* 4 blocks: transfer 1s each on h2d, compute 1s each on mic,
           compute b depends on transfer b; ideal time = 1 (first
           transfer) + 4 (compute) *)
        let b = Task.builder () in
        let prev_k = ref None in
        for _blk = 0 to 3 do
          let t =
            Task.add b ~label:"h2d" ~resource:(Task.Pcie_h2d 0) ~duration:1.0 ()
          in
          let deps = t :: Option.to_list !prev_k in
          let k =
            Task.add b ~deps ~label:"k" ~resource:(Task.Mic_exec (0, 0)) ~duration:1.0
              ()
          in
          prev_k := Some k
        done;
        Alcotest.(check (float 1e-12))
          "pipelined" 5.0
          (Engine.makespan (Task.tasks b)));
    tc "dependency cycle detected" (fun () ->
        let tasks =
          [
            simple ~resource:Task.Cpu_exec ~duration:1.0 ~deps:[ 1 ] 0;
            simple ~resource:Task.Cpu_exec ~duration:1.0 ~deps:[ 0 ] 1;
          ]
        in
        match Engine.schedule tasks with
        | exception Engine.Cycle _ -> ()
        | _ -> Alcotest.fail "expected cycle detection");
    tc "unknown dependency rejected" (fun () ->
        let tasks =
          [ simple ~resource:Task.Cpu_exec ~duration:1.0 ~deps:[ 42 ] 0 ]
        in
        match Engine.schedule tasks with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    prop "makespan >= critical path" ~count:200 arb_dag (fun tasks ->
        Engine.makespan tasks >= Engine.critical_path tasks -. 1e-9);
    prop "makespan >= per-resource busy time" ~count:200 arb_dag
      (fun tasks ->
        let r = Engine.schedule tasks in
        List.for_all (fun (_, busy) -> r.makespan >= busy -. 1e-9) r.busy);
    prop "makespan <= sum of durations" ~count:200 arb_dag (fun tasks ->
        let total =
          List.fold_left (fun acc (t : Task.t) -> acc +. t.duration) 0. tasks
        in
        Engine.makespan tasks <= total +. 1e-9);
    prop "dependencies respected in the placement" ~count:200 arb_dag
      (fun tasks ->
        let r = Engine.schedule tasks in
        let finish = Hashtbl.create 16 in
        List.iter
          (fun (p : Engine.placed) ->
            Hashtbl.replace finish p.task.Task.id p.finish)
          r.placed;
        List.for_all
          (fun (p : Engine.placed) ->
            List.for_all
              (fun d -> Hashtbl.find finish d <= p.start +. 1e-9)
              p.task.Task.deps)
          r.placed);
    prop "no overlap on a single resource" ~count:200 arb_dag (fun tasks ->
        let r = Engine.schedule tasks in
        List.for_all
          (fun res ->
            let placed =
              List.filter
                (fun (p : Engine.placed) -> p.task.Task.resource = res)
                r.placed
              |> List.sort (fun (a : Engine.placed) b ->
                     compare a.start b.start)
            in
            let rec ok = function
              | a :: (b :: _ as rest) ->
                  (a : Engine.placed).finish <= b.Engine.start +. 1e-9
                  && ok rest
              | _ -> true
            in
            ok placed)
          (Task.resources_of tasks));
    (* differential: the heap-based scheduler must agree with a naive
       quadratic reference implementation of the same policy (pick the
       ready task with the smallest (ready_time, id), serialize per
       resource) *)
    prop "heap scheduler matches the naive reference" ~count:150 arb_dag
      (fun tasks ->
        let reference (tasks : Task.t list) =
          let finish = Hashtbl.create 16 in
          let free = Hashtbl.create 8 in
          let free_of r = Option.value (Hashtbl.find_opt free r) ~default:0. in
          let remaining = ref tasks in
          let makespan = ref 0. in
          while !remaining <> [] do
            let ready =
              List.filter
                (fun (t : Task.t) ->
                  List.for_all (Hashtbl.mem finish) t.deps)
                !remaining
            in
            let rt (t : Task.t) =
              List.fold_left
                (fun acc d -> Float.max acc (Hashtbl.find finish d))
                0. t.deps
            in
            let best =
              List.fold_left
                (fun best t ->
                  match best with
                  | None -> Some t
                  | Some b ->
                      if
                        rt t < rt b
                        || (rt t = rt b && t.Task.id < b.Task.id)
                      then Some t
                      else best)
                None ready
            in
            let t = Option.get best in
            let start = Float.max (rt t) (free_of t.Task.resource) in
            let fin = start +. t.Task.duration in
            Hashtbl.replace finish t.Task.id fin;
            Hashtbl.replace free t.Task.resource fin;
            makespan := Float.max !makespan fin;
            remaining :=
              List.filter (fun (x : Task.t) -> x.Task.id <> t.Task.id) !remaining
          done;
          !makespan
        in
        Float.abs (Engine.makespan tasks -. reference tasks) < 1e-9);
    prop "scheduling is deterministic" ~count:50 arb_dag (fun tasks ->
        let a = Engine.schedule tasks and b = Engine.schedule tasks in
        a.makespan = b.makespan);
    tc "trace renders a gantt" (fun () ->
        let tasks =
          [
            simple ~resource:(Task.Pcie_h2d 0) ~duration:1.0 ~deps:[] 0;
            simple ~resource:(Task.Mic_exec (0, 0)) ~duration:2.0 ~deps:[ 0 ] 1;
          ]
        in
        let g = Trace.gantt (Engine.schedule tasks) in
        Alcotest.(check bool) "has rows" true (contains ~sub:"mic" g);
        Alcotest.(check bool) "has kernel marks" true (contains ~sub:"K" g));
  ]
