(* The serve daemon: protocol (typed errors, never a crash), admission
   control, budgets, the request-shared compile cache, and the
   determinism contract — the response stream is byte-identical at any
   pool width because admission is serial, batch cuts are fixed, and
   emission is strictly in request order. *)

open Helpers
module J = Obs.Json

let cfg ?jobs ?(queue = 64) ?(batch = 4) ?(max_fuel = 10_000_000) ?max_time
    () =
  { Serve.jobs; queue; batch; max_fuel; max_time; timings = false }

(* Feed a scripted session; responses come back in request order. *)
let drive config lines =
  let t = Serve.create ~config () in
  let rs = List.concat_map (Serve.handle_line t) lines in
  let tail = Serve.finish t in
  (t, rs @ tail)

let src_print n =
  Printf.sprintf "int main(void) { print_int(%d); return 0; }" n

let src_loop = "int main(void) { while (1) {} return 0; }"

let req_run ?opts src =
  let opts =
    match opts with None -> "" | Some o -> Printf.sprintf ",\"opts\":%s" o
  in
  Printf.sprintf "{\"cmd\":\"run\",\"src\":%s%s}"
    (J.to_string (J.String src))
    opts

let parse_response line =
  match J.of_string line with
  | Ok j -> j
  | Error e -> Alcotest.failf "unparsable response %S: %s" line e

let get name j =
  match J.member name j with
  | Some v -> v
  | None -> Alcotest.failf "response lacks %S: %s" name (J.to_string j)

let error_code j =
  match J.member "error" j with Some (J.String s) -> Some s | _ -> None

(* The seeded request mix used by the determinism tests: repeated
   sources, distinct sources, malformed lines, over-budget programs,
   an optimize, and interleaved stats barriers. *)
let mixed_session =
  [
    req_run (src_print 1);
    req_run (src_print 2);
    req_run (src_print 1);
    "this is not json";
    req_run ~opts:"{\"fuel\":50}" src_loop;
    req_run (src_print 3);
    "{\"cmd\":\"levitate\"}";
    "{\"cmd\":\"run\",\"src\":\"int main(void) { return }\"}";
    req_run (src_print 1);
    "{\"cmd\":\"stats\"}";
    req_run (src_print 2);
    req_run (src_print 4);
    "{\"cmd\":\"simulate\",\"bench\":\"blackscholes\"}";
    "{\"cmd\":\"simulate\",\"bench\":\"nope\"}";
    req_run (src_print 1);
    "{\"cmd\":\"stats\"}";
    "{\"cmd\":\"shutdown\"}";
  ]

let suite =
  [
    tc "response stream is byte-identical at jobs 1 and 2" (fun () ->
        let _, r1 = drive (cfg ~jobs:1 ()) mixed_session in
        let _, r2 = drive (cfg ~jobs:2 ()) mixed_session in
        let _, r4 = drive (cfg ~jobs:4 ~batch:3 ~queue:64 ()) mixed_session in
        Alcotest.(check (list string)) "jobs 1 = jobs 2" r1 r2;
        (* a different batch size changes only sequencing internals,
           never a response's bytes, and emission order is pinned *)
        Alcotest.(check int) "same count" (List.length r1) (List.length r4));
    tc "responses arrive in request order with ids echoed" (fun () ->
        let lines =
          [
            "{\"cmd\":\"run\",\"id\":\"alpha\",\"src\":"
            ^ J.to_string (J.String (src_print 7))
            ^ "}";
            "bogus";
            "{\"cmd\":\"run\",\"id\":42,\"src\":"
            ^ J.to_string (J.String (src_print 8))
            ^ "}";
          ]
        in
        let _, rs = drive (cfg ~jobs:2 ()) lines in
        let ids =
          List.map (fun l -> J.to_string (get "id" (parse_response l))) rs
        in
        Alcotest.(check (list string))
          "ids in order"
          [ "\"alpha\""; "2"; "42" ]
          ids);
    tc "cache hits climb across repeated sources" (fun () ->
        let t = Serve.create ~config:(cfg ~jobs:1 ~batch:1 ()) () in
        let hit_counts =
          List.map
            (fun n ->
              ignore (Serve.handle_line t (req_run (src_print n)));
              Serve.cache_hits t)
            [ 1; 2; 1; 1; 2; 3; 1 ]
        in
        Alcotest.(check (list int))
          "hits after each request"
          [ 0; 0; 1; 2; 3; 3; 4 ]
          hit_counts;
        Alcotest.(check int) "three distinct sources" 3
          (Serve.cache_misses t);
        (* negative caching: a malformed source misses once, hits after *)
        let bad = "{\"cmd\":\"run\",\"src\":\"int main(void) { return }\"}" in
        ignore (Serve.handle_line t bad);
        let m1 = Serve.cache_misses t in
        ignore (Serve.handle_line t bad);
        Alcotest.(check int) "bad source cached too" m1
          (Serve.cache_misses t);
        Alcotest.(check int) "as a hit" 5 (Serve.cache_hits t));
    tc "queue_full rejects beyond the admission bound" (fun () ->
        let lines =
          List.map (fun n -> req_run (src_print n)) [ 1; 2; 3; 4; 5 ]
        in
        let _, rs = drive (cfg ~jobs:1 ~queue:2 ~batch:8 ()) lines in
        let codes = List.map (fun l -> error_code (parse_response l)) rs in
        Alcotest.(check (list (option string)))
          "first two admitted, rest rejected"
          [
            None; None; Some "queue_full"; Some "queue_full";
            Some "queue_full";
          ]
          codes);
    tc "fuel budget kills runaway requests" (fun () ->
        let _, rs =
          drive
            (cfg ~jobs:1 ())
            [ req_run ~opts:"{\"fuel\":100}" src_loop ]
        in
        let j = parse_response (List.hd rs) in
        Alcotest.(check (option string))
          "code" (Some "budget_exhausted") (error_code j);
        match J.member "serve.fuel_killed" (get "counters" j) with
        | Some (J.Int 1) -> ()
        | _ -> Alcotest.fail "expected serve.fuel_killed=1 in counters");
    tc "max-fuel caps a request's own budget" (fun () ->
        let _, rs =
          drive
            (cfg ~jobs:1 ~max_fuel:100 ())
            [ req_run ~opts:"{\"fuel\":999999999}" src_loop ]
        in
        Alcotest.(check (option string))
          "code" (Some "budget_exhausted")
          (error_code (parse_response (List.hd rs))));
    tc "max-time converts to fuel" (fun () ->
        (* 1e-4 s * 2e6 stmt/s = 200 statements: plenty for print_int,
           fatal for the infinite loop *)
        let config = cfg ~jobs:1 ~max_time:0.0001 () in
        let _, rs = drive config [ req_run (src_print 5); req_run src_loop ] in
        match List.map parse_response rs with
        | [ ok; killed ] ->
            Alcotest.(check (option string)) "small run fine" None
              (error_code ok);
            Alcotest.(check (option string))
              "loop killed" (Some "budget_exhausted") (error_code killed)
        | _ -> Alcotest.fail "expected two responses");
    tc "malformed input yields typed errors, never a crash" (fun () ->
        let cases =
          [
            ("", None (* blank: ignored *));
            ("   ", None);
            ("{", Some "bad_json");
            ("[1,2,3]", Some "bad_request");
            ("\"just a string\"", Some "bad_request");
            ("{\"no_cmd\":true}", Some "bad_request");
            ("{\"cmd\":7}", Some "bad_request");
            ("{\"cmd\":\"levitate\"}", Some "unknown_cmd");
            ("{\"cmd\":\"run\"}", Some "bad_request");
            ("{\"cmd\":\"run\",\"src\":17}", Some "bad_request");
            ( "{\"cmd\":\"run\",\"src\":\"int main(void) { return }\"}",
              Some "parse_error" );
            ( "{\"cmd\":\"run\",\"src\":\"int main(void) { float a[4]; \
               a[0] = a + 1; return 0; }\"}",
              Some "type_error" );
            ("{\"cmd\":\"run\",\"bench\":\"nope\"}", Some "unknown_benchmark");
            ( "{\"cmd\":\"run\",\"src\":\"x\",\"bench\":\"y\"}",
              Some "bad_request" );
            ("{\"cmd\":\"run\",\"src\":\"x\",\"opts\":3}", Some "bad_request");
            ( "{\"cmd\":\"run\",\"src\":\"x\",\"opts\":{\"fuel\":\"lots\"}}",
              Some "bad_request" );
            ( "{\"cmd\":\"run\",\"src\":\"x\",\"opts\":{\"fuel\":0}}",
              Some "bad_request" );
            ( "{\"cmd\":\"simulate\",\"bench\":\"blackscholes\",\"opts\":{\"variant\":\"warp\"}}",
              Some "bad_request" );
            ("{\"cmd\":\"simulate\",\"src\":\"x\"}", Some "bad_request");
          ]
        in
        let t = Serve.create ~config:(cfg ~jobs:1 ~batch:1 ()) () in
        List.iter
          (fun (line, expected) ->
            let rs = Serve.handle_line t line in
            match expected with
            | None ->
                Alcotest.(check int)
                  (Printf.sprintf "%S ignored" line)
                  0 (List.length rs)
            | Some code ->
                (match rs with
                | [ r ] ->
                    Alcotest.(check (option string))
                      (Printf.sprintf "%S -> %s" line code)
                      (Some code)
                      (error_code (parse_response r))
                | _ ->
                    Alcotest.failf "%S: expected exactly one response" line))
          cases;
        (* and the server still works afterwards *)
        match Serve.handle_line t (req_run (src_print 9)) with
        | [ r ] ->
            let j = parse_response r in
            Alcotest.(check bool)
              "still serving" true
              (J.member "ok" j = Some (J.Bool true))
        | _ -> Alcotest.fail "server wedged after malformed input");
    tc "stats snapshots merge deterministically" (fun () ->
        let session =
          [
            req_run (src_print 1);
            req_run (src_print 1);
            "{\"cmd\":\"stats\"}";
            req_run (src_print 1);
            "{\"cmd\":\"stats\"}";
          ]
        in
        let inspect config =
          let _, rs = drive config session in
          List.filter_map
            (fun l ->
              let j = parse_response l in
              match J.member "cache" j with
              | Some c -> Some (get "hits" c, get "misses" c)
              | None -> None)
            rs
        in
        let s1 = inspect (cfg ~jobs:1 ()) in
        let s2 = inspect (cfg ~jobs:2 ()) in
        Alcotest.(check bool) "same snapshots" true (s1 = s2);
        match s1 with
        | [ (J.Int h1, J.Int m1); (J.Int h2, J.Int m2) ] ->
            Alcotest.(check int) "one miss total" 1 m1;
            Alcotest.(check int) "misses stable" 1 m2;
            Alcotest.(check bool) "hits strictly climb" true (h2 > h1)
        | _ -> Alcotest.fail "expected two stats snapshots with int fields");
    tc "check requests run the differential oracle" (fun () ->
        let src =
          {|int main(void) {
              float a[8];
              float b[8];
              for (i = 0; i < 8; i++) { a[i] = (float)i; }
              #pragma omp parallel for
              for (i = 0; i < 8; i++) { b[i] = a[i] + 1.0; }
              print_float(b[3]);
              return 0;
            }|}
        in
        let _, rs =
          drive
            (cfg ~jobs:1 ())
            [
              Printf.sprintf "{\"cmd\":\"check\",\"src\":%s}"
                (J.to_string (J.String src));
            ]
        in
        let j = parse_response (List.hd rs) in
        Alcotest.(check bool)
          "ok" true
          (J.member "ok" j = Some (J.Bool true));
        Alcotest.(check bool)
          "oracle passed" true
          (J.member "pass" j = Some (J.Bool true));
        match get "reports" j with
        | J.List (_ :: _) -> ()
        | _ -> Alcotest.fail "expected non-empty reports");
    tc "shutdown stops the server and reports served count" (fun () ->
        let t = Serve.create ~config:(cfg ~jobs:1 ()) () in
        ignore (Serve.handle_line t (req_run (src_print 1)));
        Alcotest.(check bool) "running" false (Serve.shutdown_requested t);
        let rs = Serve.handle_line t "{\"cmd\":\"shutdown\"}" in
        Alcotest.(check bool) "stopped" true (Serve.shutdown_requested t);
        (* the shutdown barrier flushed the pending run first *)
        Alcotest.(check int) "both responses out" 2 (List.length rs));
  ]
