open Helpers
open Runtime

(* build a random linked structure and return (segbuf, node pointers);
   each node: [value; encoded next-pointer] *)
let build_list t values =
  let nodes = List.map (fun v ->
      let p = Segbuf.alloc t 2 in
      Segbuf.set t p 0 v;
      Segbuf.set_ptr t p 1 Xptr.null;
      p)
      values
  in
  let rec link = function
    | a :: (b :: _ as rest) ->
        Segbuf.set_ptr t a 1 b;
        link rest
    | _ -> ()
  in
  link nodes;
  nodes

let rec walk_host t p acc =
  if Xptr.is_null p then List.rev acc
  else walk_host t (Segbuf.get_ptr t p 1) (Segbuf.get t p 0 :: acc)

let rec walk_device img p acc =
  if Xptr.is_null p then List.rev acc
  else walk_device img (Segbuf.Image.get_ptr img p 1) (Segbuf.Image.get img p 0 :: acc)

let suite =
  [
    tc "alloc returns distinct non-overlapping objects" (fun () ->
        let t = Segbuf.create ~seg_cells:16 () in
        let p1 = Segbuf.alloc t 4 in
        let p2 = Segbuf.alloc t 4 in
        Segbuf.set t p1 0 111;
        Segbuf.set t p2 0 222;
        Alcotest.(check int) "p1 intact" 111 (Segbuf.get t p1 0);
        Alcotest.(check int) "p2 intact" 222 (Segbuf.get t p2 0));
    tc "segments created on demand without moving data" (fun () ->
        let t = Segbuf.create ~seg_cells:8 () in
        let p1 = Segbuf.alloc t 6 in
        Segbuf.set t p1 5 42;
        Alcotest.(check int) "one segment" 1 (Segbuf.seg_count t);
        let _p2 = Segbuf.alloc t 6 in
        Alcotest.(check int) "two segments" 2 (Segbuf.seg_count t);
        (* p1 still valid: objects never move (the paper's requirement) *)
        Alcotest.(check int) "p1 survives growth" 42 (Segbuf.get t p1 5));
    tc "objects never span segments" (fun () ->
        let t = Segbuf.create ~seg_cells:10 () in
        let _ = Segbuf.alloc t 7 in
        let p = Segbuf.alloc t 7 in
        (* second object must start a new segment *)
        Alcotest.(check int) "bid 1" 1 p.Xptr.bid);
    tc "oversized allocation rejected" (fun () ->
        let t = Segbuf.create ~seg_cells:8 () in
        match Segbuf.alloc t 9 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    tc "out-of-bounds access rejected" (fun () ->
        let t = Segbuf.create ~seg_cells:8 () in
        let p = Segbuf.alloc t 2 in
        match Segbuf.get t p 5 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected bounds error");
    tc "buffer-id exhaustion is a typed error, not a failwith" (fun () ->
        (* one cell per segment: every alloc takes a fresh buffer id, so
           Xptr.max_buffers allocations fit and the next must report
           Out_of_buffer_ids (instead of the old Failure) *)
        let t = Segbuf.create ~seg_cells:1 () in
        for _ = 1 to Xptr.max_buffers do
          match Segbuf.try_alloc t 1 with
          | Ok _ -> ()
          | Error e ->
              Alcotest.failf "premature %s" (Format.asprintf "%a" Segbuf.pp_error e)
        done;
        (match Segbuf.try_alloc t 1 with
        | Error (Segbuf.Out_of_buffer_ids { max }) ->
            Alcotest.(check int) "max" Xptr.max_buffers max
        | Ok _ -> Alcotest.fail "expected exhaustion");
        (* the raising wrapper surfaces the same error as an exception *)
        match Segbuf.alloc t 1 with
        | exception Segbuf.Error (Segbuf.Out_of_buffer_ids _) -> ()
        | _ -> Alcotest.fail "expected Segbuf.Error");
    tc "segbuf counters feed the obs sink" (fun () ->
        let obs = Obs.create () in
        let t = Segbuf.create ~obs ~seg_cells:8 () in
        ignore (Segbuf.alloc t 3);
        ignore (Segbuf.alloc t 7);
        ignore (Segbuf.Image.of_segbuf t);
        Alcotest.(check int) "allocs" 2 (Obs.count obs "segbuf.allocs");
        Alcotest.(check int) "segments" 2 (Obs.count obs "segbuf.seg_allocs");
        Alcotest.(check int) "dma segments" 2
          (Obs.count obs "segbuf.dma_segments"));
    tc "alloc count tracked (Table III dynamic column)" (fun () ->
        let t = Segbuf.create () in
        for _ = 1 to 37 do
          ignore (Segbuf.alloc t 3)
        done;
        Alcotest.(check int) "37 allocs" 37 (Segbuf.alloc_count t));
    tc "device image preserves a linked list" (fun () ->
        let t = Segbuf.create ~seg_cells:8 () in
        (* force the list across several segments *)
        let values = [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3 ] in
        let nodes = build_list t values in
        Alcotest.(check bool) "multi-segment" true (Segbuf.seg_count t > 1);
        let img = Segbuf.Image.of_segbuf t in
        let head = List.hd nodes in
        Alcotest.(check (list int))
          "device traversal equals host" (walk_host t head [])
          (walk_device img head []));
    tc "delta translation equals scan translation" (fun () ->
        let t = Segbuf.create ~seg_cells:8 () in
        let nodes = build_list t [ 10; 20; 30; 40; 50 ] in
        let img = Segbuf.Image.of_segbuf t in
        List.iter
          (fun p ->
            Alcotest.(check int)
              "same address"
              (Xptr.translate_by_scan img.Segbuf.Image.bounds p)
              (Xptr.translate img.Segbuf.Image.delta p))
          nodes);
    tc "dma count equals segment count" (fun () ->
        let t = Segbuf.create ~seg_cells:4 () in
        for _ = 1 to 6 do
          ignore (Segbuf.alloc t 3)
        done;
        let img = Segbuf.Image.of_segbuf t in
        Alcotest.(check int)
          "one dma per segment" (Segbuf.seg_count t)
          (Segbuf.Image.dma_count img));
    tc "xptr encode/decode round-trip" (fun () ->
        let p = Xptr.make ~bid:17 ~addr:0x1234_5678 in
        let p' = Xptr.decode (Xptr.encode p) in
        Alcotest.(check bool) "equal" true (Xptr.equal p p'));
    tc "bid is one byte (max 256 buffers)" (fun () ->
        match Xptr.make ~bid:256 ~addr:0 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected invalid_arg");
    tc "pointer arithmetic preserves bid (Table I)" (fun () ->
        let p = Xptr.make ~bid:3 ~addr:100 in
        let q = Xptr.offset p 5 in
        Alcotest.(check int) "bid" 3 q.Xptr.bid;
        Alcotest.(check int) "addr" 105 q.Xptr.addr);
    prop "encode/decode round-trips" ~count:200
      QCheck.(pair (int_range 0 255) (int_range 0 ((1 lsl 48) - 1)))
      (fun (bid, addr) ->
        let p = Xptr.make ~bid ~addr in
        Xptr.equal p (Xptr.decode (Xptr.encode p)));
    prop "random object graphs survive the transfer" ~count:60
      QCheck.(pair (int_range 1 60) (int_range 1 5))
      (fun (n, objsize) ->
        let t = Segbuf.create ~seg_cells:16 () in
        let objs =
          List.init n (fun i ->
              let p = Segbuf.alloc t (objsize + 1) in
              for k = 0 to objsize - 1 do
                Segbuf.set t p k ((i * 31) + k)
              done;
              p)
        in
        (* random-ish cross links in the last slot *)
        List.iteri
          (fun i p ->
            let target = List.nth objs ((i * 7 + 3) mod n) in
            Segbuf.set_ptr t p objsize target)
          objs;
        let img = Segbuf.Image.of_segbuf t in
        List.for_all
          (fun p ->
            let ok_data =
              List.init objsize (fun k ->
                  Segbuf.get t p k = Segbuf.Image.get img p k)
              |> List.for_all Fun.id
            in
            let host_link = Segbuf.get_ptr t p objsize in
            let dev_link = Segbuf.Image.get_ptr img p objsize in
            ok_data
            && Xptr.equal host_link dev_link
            && Segbuf.Image.get img dev_link 0 = Segbuf.get t host_link 0)
          objs);
    prop "used cells never exceed capacity" ~count:60
      QCheck.(list_of_size (QCheck.Gen.int_range 1 50) (int_range 1 8))
      (fun sizes ->
        let t = Segbuf.create ~seg_cells:8 () in
        List.iter (fun n -> ignore (Segbuf.alloc t n)) sizes;
        Segbuf.used_cells t <= Segbuf.capacity_cells t
        && Segbuf.used_cells t = List.fold_left ( + ) 0 sizes);
  ]
