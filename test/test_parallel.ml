(* The domain pool and the Obs sink merge it relies on.

   The contract under test is determinism: results in submission
   order at any pool width, the lowest-index exception, width-
   independent seed derivation, and per-task sinks that merge back
   into exactly the sequential profile. *)

open Helpers

let squares n = List.init n (fun i -> i * i)

(* A task mix with deliberately uneven cost, so completion order
   differs from submission order whenever domains really interleave. *)
let uneven i =
  let rec burn acc k = if k = 0 then acc else burn ((acc * 31) + k) (k - 1) in
  burn i ((i * 7919 mod 1000) + 1)

let obs_json o = Obs.Json.to_string (Obs.to_json o)

(* Build a sink from a replayable script: counters, observations, and
   a couple of spans keyed off a seed. *)
let scripted_sink seed =
  let o = Obs.create () in
  let st = Random.State.make [| seed |] in
  for _ = 1 to 1 + Random.State.int st 8 do
    let name = [| "a"; "b"; "c" |].(Random.State.int st 3) in
    Obs.incr ~by:(1 + Random.State.int st 5) o name;
    Obs.observe o name (Random.State.float st 100.)
  done;
  let t = Random.State.float st 10. in
  Obs.span ~bytes:(Random.State.float st 1e6) o Obs.H2d ~label:"x" ~start:t
    ~stop:(t +. 1.);
  o

let suite =
  [
    tc "results come back in submission order" (fun () ->
        Alcotest.(check (list int))
          "squares" (squares 100)
          (Parallel.run ~jobs:4 100 (fun i -> i * i)));
    tc "jobs=1 equals jobs=4 on uneven work" (fun () ->
        Alcotest.(check (list int))
          "same results"
          (Parallel.run ~jobs:1 64 uneven)
          (Parallel.run ~jobs:4 64 uneven));
    tc "map follows input order" (fun () ->
        let xs = List.init 50 (fun i -> 49 - i) in
        Alcotest.(check (list int))
          "map" (List.map succ xs)
          (Parallel.map ~jobs:3 succ xs));
    tc "zero tasks" (fun () ->
        Alcotest.(check (list int)) "empty" [] (Parallel.run ~jobs:4 0 uneven));
    tc "negative task count rejected" (fun () ->
        match Parallel.run ~jobs:2 (-1) uneven with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument");
    tc "lowest failing index wins, whatever the width" (fun () ->
        List.iter
          (fun jobs ->
            match
              Parallel.run ~jobs 32 (fun i ->
                  if i mod 5 = 2 then failwith (string_of_int i) else i)
            with
            | exception Failure s ->
                Alcotest.(check string)
                  (Printf.sprintf "jobs=%d" jobs)
                  "2" s
            | _ -> Alcotest.fail "expected Failure")
          [ 1; 2; 4; 8 ]);
    tc "COMP_JOBS sets the default width" (fun () ->
        Unix.putenv "COMP_JOBS" "3";
        Alcotest.(check int) "set" 3 (Parallel.default_jobs ());
        Unix.putenv "COMP_JOBS" "0";
        Alcotest.(check bool)
          "non-positive ignored" true
          (Parallel.default_jobs () >= 1);
        Unix.putenv "COMP_JOBS" "nope";
        Alcotest.(check bool)
          "garbage ignored" true
          (Parallel.default_jobs () >= 1);
        Unix.putenv "COMP_JOBS" "");
    tc "jobs_of clamps to at least one" (fun () ->
        Alcotest.(check int) "Some 0" 1 (Parallel.jobs_of (Some 0));
        Alcotest.(check int) "Some -5" 1 (Parallel.jobs_of (Some (-5)));
        Alcotest.(check int) "Some 7" 7 (Parallel.jobs_of (Some 7)));
    tc "derive_seed: non-negative and distinct" (fun () ->
        (* non-negative implies it fits the 62 bits the .mli promises:
           OCaml's max_int is 2^62 - 1 *)
        let seen = Hashtbl.create 4096 in
        List.iter
          (fun root ->
            for i = 0 to 999 do
              let s = Parallel.derive_seed ~root i in
              if s < 0 then Alcotest.failf "negative seed %d" s;
              if Hashtbl.mem seen s then
                Alcotest.failf "seed collision at root=%d i=%d" root i;
              Hashtbl.add seen s ()
            done)
          [ 0; 1; 7; 413 ]);
    prop "pool result equals List.init for arbitrary sizes" ~count:50
      QCheck.(pair (int_bound 200) (int_bound 7))
      (fun (n, j) ->
        Parallel.run ~jobs:(j + 1) n uneven = List.init n uneven);
    (* {1 Obs.merge} *)
    tc "merge conserves counters, histograms, and spans" (fun () ->
        let a = scripted_sink 1 and b = scripted_sink 2 in
        let total o name = Obs.count o name in
        let expect_a = total a "a" + total b "a" in
        let span_total = Obs.span_count a + Obs.span_count b in
        let spans_b = Obs.spans b in
        Obs.merge a b;
        Alcotest.(check int) "counter a" expect_a (Obs.count a "a");
        Alcotest.(check int) "spans" span_total (Obs.span_count a);
        (* b's spans sit after a's existing ones in oldest-first view
           only if a merged later; here b was merged into a, so a's
           own spans come first *)
        let merged = Obs.spans a in
        let tail =
          List.filteri (fun i _ -> i >= List.length merged - List.length spans_b)
            merged
        in
        Alcotest.(check int)
          "src spans preserved in order" 0
          (compare tail spans_b));
    tc "merge from an empty sink is the identity" (fun () ->
        let a = scripted_sink 3 in
        let before = obs_json a in
        Obs.merge a (Obs.create ());
        Alcotest.(check string) "unchanged" before (obs_json a);
        (* and empty-histogram neutrality: merging a sink whose
           histogram has no samples must not drag min to 0 *)
        let c = Obs.create () in
        Obs.observe c "a" 5.0;
        let d = Obs.create () in
        Obs.merge c d;
        match Obs.histogram c "a" with
        | Some h -> Alcotest.(check (float 1e-12)) "min intact" 5.0 h.Obs.h_min
        | None -> Alcotest.fail "histogram lost");
    tc "merge rejects a source with open spans" (fun () ->
        let a = Obs.create () and b = Obs.create () in
        ignore (Obs.span_begin b Obs.Kernel ~label:"open" ~start:0.);
        match Obs.merge a b with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected Invalid_argument");
    prop "merge is associative" ~count:100
      QCheck.(triple small_nat small_nat small_nat)
      (fun (x, y, z) ->
        let mk = scripted_sink in
        let l = mk x and r = mk x in
        (* left fold: (l <- y) <- z *)
        Obs.merge l (mk y);
        Obs.merge l (mk z);
        (* right fold: yz = y <- z, then r <- yz *)
        let yz = mk y in
        Obs.merge yz (mk z);
        Obs.merge r yz;
        obs_json l = obs_json r && Obs.spans l = Obs.spans r);
    prop "merge aggregates are commutative" ~count:100
      QCheck.(pair small_nat small_nat)
      (fun (x, y) ->
        let ab = scripted_sink x and ba = scripted_sink y in
        Obs.merge ab (scripted_sink y);
        Obs.merge ba (scripted_sink x);
        (* json covers counters, per-kind totals, histogram summaries;
           span *order* is deliberately not commutative *)
        obs_json ab = obs_json ba);
    tc "per-task sinks merged in order equal the sequential sink" (fun () ->
        let ws =
          List.filteri (fun i _ -> i < 4) Workloads.Registry.all
        in
        let seq = Obs.create () in
        List.iter
          (fun w -> ignore (Comp.schedule ~obs:seq w Comp.Mic_optimized))
          ws;
        let merged = Obs.create () in
        List.iter
          (fun o -> Obs.merge merged o)
          (Parallel.map ~jobs:4
             (fun w ->
               let obs = Obs.create () in
               ignore (Comp.schedule ~obs w Comp.Mic_optimized);
               obs)
             ws);
        Alcotest.(check string)
          "profiles identical" (obs_json seq) (obs_json merged);
        Alcotest.(check int)
          "span streams identical" 0
          (compare (Obs.spans seq) (Obs.spans merged)));
    (* {1 Compiled-engine cache under domains} *)
    tc "compile cache is per-domain and coherent under the pool" (fun () ->
        (* every domain compiles the program at most once no matter how
           many tasks it runs, and compiled results equal the reference
           at any pool width *)
        let prog =
          Minic.Parser.program_of_string_exn
            "int main(void) { int s = 0; for (i = 0; i < 40; i++) { s = s \
             + i * i; } return s; }"
        in
        let expect =
          match Minic.Interp.run prog with
          | Ok o -> o.Minic.Interp.ret
          | Error e -> Alcotest.failf "reference failed: %s" e
        in
        let outcomes =
          Parallel.run ~jobs:4 16 (fun _ ->
              let before = Minic.Compile_eval.compile_count () in
              let r =
                match Minic.Compile_eval.run_compiled prog with
                | Ok o -> o.Minic.Interp.ret
                | Error e -> Alcotest.failf "compiled failed: %s" e
              in
              let after = Minic.Compile_eval.compile_count () in
              (r, after - before))
        in
        List.iter
          (fun (r, compiles) ->
            Alcotest.(check bool) "same return" true (compare expect r = 0);
            (* this task observed its own domain's counter: it grew by
               at most one compile (zero when a pool mate or an earlier
               task on the same domain already filled the cache) *)
            Alcotest.(check bool)
              "at most one compile per task" true
              (compiles <= 1))
          outcomes);
  ]
