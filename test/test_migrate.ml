(* Multi-device block migration: trace cutting, placement
   conservation, work migration off dead devices, and the graceful
   degradation ladder (retry -> reset -> migrate -> host fallback). *)

open Helpers
open Runtime

let cfg = Machine.Config.paper_default

let spec_ok s =
  match Fault.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "fault spec %S: %s" s (Fault.error_message e)

let mcfg ?(spec = Fault.none) ~devices ~streams () =
  Machine.Config.with_faults
    (Machine.Config.with_devices cfg ~devices ~streams)
    spec

(* three offload blocks: staged inputs, outputs, and one resident
   (nocopy) dependency carried from the first block to the second *)
let events3 =
  [
    Minic.Interp.Ev_transfer { h2d_cells = 64; d2h_cells = 0; signal = None };
    Minic.Interp.Ev_kernel { work = 500; wait = None };
    Minic.Interp.Ev_transfer { h2d_cells = 0; d2h_cells = 64; signal = None };
    Minic.Interp.Ev_transfer { h2d_cells = 32; d2h_cells = 0; signal = None };
    Minic.Interp.Ev_resident { cells = 64 };
    Minic.Interp.Ev_kernel { work = 400; wait = None };
    Minic.Interp.Ev_transfer { h2d_cells = 16; d2h_cells = 0; signal = None };
    Minic.Interp.Ev_kernel { work = 300; wait = None };
    Minic.Interp.Ev_transfer { h2d_cells = 0; d2h_cells = 32; signal = None };
  ]

let conserved ?(blocks = 3) m =
  match Check.migration_conserved ~blocks m with
  | None -> ()
  | Some msg -> Alcotest.failf "conservation violated: %s" msg

let suite =
  [
    tc "blocks_of_events cuts the trace at kernels" (fun () ->
        match Migrate.blocks_of_events events3 with
        | [ b0; b1; b2 ] ->
            Alcotest.(check int) "b0 h2d" 64 b0.Migrate.blk_h2d_cells;
            Alcotest.(check int) "b0 d2h" 64 b0.Migrate.blk_d2h_cells;
            Alcotest.(check int) "b0 work" 500 b0.Migrate.blk_work;
            Alcotest.(check int) "b0 resident" 0 b0.Migrate.blk_resident_cells;
            Alcotest.(check int) "b1 h2d" 32 b1.Migrate.blk_h2d_cells;
            Alcotest.(check int)
              "b1 resident" 64 b1.Migrate.blk_resident_cells;
            Alcotest.(check int) "b2 h2d" 16 b2.Migrate.blk_h2d_cells;
            Alcotest.(check int) "b2 d2h" 32 b2.Migrate.blk_d2h_cells;
            Alcotest.(check (list int))
              "ids in order" [ 0; 1; 2 ]
              [ b0.Migrate.blk_id; b1.Migrate.blk_id; b2.Migrate.blk_id ]
        | bs -> Alcotest.failf "expected 3 blocks, got %d" (List.length bs));
    tc "clean single-device schedule conserves placements" (fun () ->
        let obs = Obs.create () in
        let m = Migrate.schedule ~obs (mcfg ~devices:1 ~streams:1 ()) events3 in
        conserved m;
        Alcotest.(check int) "nothing migrated" 0 m.Migrate.m_migrated;
        Alcotest.(check bool) "no deaths" true (m.Migrate.m_dead = []);
        Alcotest.(check bool) "no fallback" false m.Migrate.m_fellback;
        Alcotest.(check int) "blocks counted" 3 (Obs.count obs "migrate.blocks");
        Alcotest.(check int)
          "no resident re-pay on one device" 0
          (Obs.count obs "fault.resident_repaid");
        List.iter
          (fun (p : Migrate.placement) ->
            Alcotest.(check int) "all on dev 0" 0 p.Migrate.pl_dev;
            Alcotest.(check int) "never re-queued" 0 p.Migrate.pl_migrations)
          m.Migrate.m_placements);
    tc "extra devices never slow the clean schedule" (fun () ->
        let mk d s =
          (Migrate.schedule (mcfg ~devices:d ~streams:s ()) events3)
            .Migrate.m_result.Machine.Engine.makespan
        in
        let m1 = mk 1 1 and m4 = mk 4 2 in
        Alcotest.(check bool)
          (Printf.sprintf "4x2 (%.6f) <= 1x1 (%.6f)" m4 m1)
          true
          (m4 <= m1 +. 1e-9));
    tc "dead device migrates its blocks to the survivor" (fun () ->
        let obs = Obs.create () in
        let spec = spec_ok "dev0:kill@0,dead-after=1,seed=7" in
        let m =
          Migrate.schedule ~obs (mcfg ~spec ~devices:2 ~streams:1 ()) events3
        in
        conserved m;
        (match m.Migrate.m_dead with
        | [ (0, at) ] ->
            Alcotest.(check bool) "death has a time" true (at >= 0.)
        | d -> Alcotest.failf "expected dev0 dead, got %d deaths"
                 (List.length d));
        Alcotest.(check bool)
          "work actually migrated" true (m.Migrate.m_migrated > 0);
        Alcotest.(check bool) "no host fallback" false m.Migrate.m_fellback;
        Alcotest.(check int)
          "migrated counter matches" m.Migrate.m_migrated
          (Obs.count obs "fault.migrated_blocks");
        Alcotest.(check int)
          "one dead device counted" 1 (Obs.count obs "fault.dead_devices");
        (* every block ended on the survivor *)
        List.iter
          (fun (p : Migrate.placement) ->
            Alcotest.(check int) "finished on dev 1" 1 p.Migrate.pl_dev)
          m.Migrate.m_placements);
    tc "spreading blocks off the resident home re-pays the h2d" (fun () ->
        (* clean 2-device run: block 1's resident inputs live on dev0
           (where block 0 ran) but greedy balance places block 1 on
           dev1 — the elided transfer must be re-paid there *)
        let obs = Obs.create () in
        let m = Migrate.schedule ~obs (mcfg ~devices:2 ~streams:1 ()) events3 in
        conserved m;
        Alcotest.(check bool)
          "resident transfer re-paid" true
          (Obs.count obs "fault.resident_repaid" > 0);
        let solo =
          Migrate.schedule (mcfg ~devices:1 ~streams:1 ()) events3
        in
        Alcotest.(check bool)
          "re-pay is on the wire" true
          (m.Migrate.m_bytes_moved > solo.Migrate.m_bytes_moved +. 1e-9));
    tc "migration off a dead resident home re-pays the h2d" (fun () ->
        (* blocks 1 and 2 pack onto dev1 (block 0 is the heavy one), so
           block 2's resident pool lives on dev1 where block 1 ran.
           dev1 dies at block 2's h2d (its 2nd transfer): the block
           migrates to dev0, which does not hold the pool — the dead
           device's resident data is re-paid on the survivor *)
        let events =
          [
            Minic.Interp.Ev_transfer
              { h2d_cells = 64; d2h_cells = 0; signal = None };
            Minic.Interp.Ev_kernel { work = 500; wait = None };
            Minic.Interp.Ev_transfer
              { h2d_cells = 8; d2h_cells = 0; signal = None };
            Minic.Interp.Ev_kernel { work = 1; wait = None };
            Minic.Interp.Ev_transfer
              { h2d_cells = 64; d2h_cells = 0; signal = None };
            Minic.Interp.Ev_resident { cells = 64 };
            Minic.Interp.Ev_kernel { work = 100; wait = None };
            Minic.Interp.Ev_transfer
              { h2d_cells = 0; d2h_cells = 16; signal = None };
          ]
        in
        let obs = Obs.create () in
        let spec = spec_ok "dev1:kill@1,dead-after=1,seed=7" in
        let m =
          Migrate.schedule ~obs (mcfg ~spec ~devices:2 ~streams:1 ()) events
        in
        conserved m;
        (match m.Migrate.m_dead with
        | [ (1, _) ] -> ()
        | d -> Alcotest.failf "expected dev1 dead, got %d deaths"
                 (List.length d));
        (* block 1 (tiny kernel) drained before the death, so only the
           dying block re-queues; the resident pool stays behind on the
           corpse *)
        Alcotest.(check int) "one block migrated" 1 m.Migrate.m_migrated;
        List.iter
          (fun (p : Migrate.placement) ->
            Alcotest.(check int)
              (Printf.sprintf "block %d ends on the survivor" p.Migrate.pl_block)
              0 p.Migrate.pl_dev)
          (List.filter
             (fun (p : Migrate.placement) -> p.Migrate.pl_migrations > 0)
             m.Migrate.m_placements);
        Alcotest.(check bool)
          "dead device's resident data re-paid" true
          (Obs.count obs "fault.resident_repaid" > 0));
    tc "every device dead falls back to the host" (fun () ->
        let spec = spec_ok "kill@0,dead-after=1,seed=7" in
        let m =
          Migrate.schedule (mcfg ~spec ~devices:2 ~streams:1 ()) events3
        in
        conserved m;
        Alcotest.(check bool) "fell back" true m.Migrate.m_fellback;
        Alcotest.(check int) "both devices died" 2
          (List.length m.Migrate.m_dead);
        Alcotest.(check bool)
          "some block ran on the host" true
          (List.exists
             (fun (p : Migrate.placement) -> p.Migrate.pl_dev = -1)
             m.Migrate.m_placements);
        Alcotest.(check bool)
          "finite makespan" true
          (Float.is_finite m.Migrate.m_result.Machine.Engine.makespan));
    tc "no-fallback policy dies loudly once every device is dead"
      (fun () ->
        let spec = spec_ok "kill@0,dead-after=1,no-fallback,seed=7" in
        match
          Migrate.schedule (mcfg ~spec ~devices:2 ~streams:1 ()) events3
        with
        | exception Fault.Device_dead { failures; _ } ->
            Alcotest.(check bool) "counted attempts" true (failures > 0)
        | _ -> Alcotest.fail "expected Device_dead to escape");
    tc "degradation is monotone in the number of dead devices" (fun () ->
        let devices = 3 in
        let run dead =
          let spec =
            spec_ok
              (String.concat ","
                 ("seed=7" :: "dead-after=1"
                 :: List.init dead (Printf.sprintf "dev%d:kill@0")))
          in
          Migrate.schedule (mcfg ~spec ~devices ~streams:1 ()) events3
        in
        let prev = ref 0. in
        for dead = 0 to devices do
          let m = run dead in
          conserved m;
          let mk = m.Migrate.m_result.Machine.Engine.makespan in
          Alcotest.(check bool)
            (Printf.sprintf "dead=%d: %.6f >= %.6f" dead mk !prev)
            true
            (mk >= !prev -. 1e-9);
          Alcotest.(check bool)
            (Printf.sprintf "dead=%d fallback iff all dead" dead)
            (dead = devices) m.Migrate.m_fellback;
          if dead > 0 then
            Alcotest.(check bool)
              (Printf.sprintf "dead=%d migrated something" dead)
              true
              (m.Migrate.m_migrated > 0);
          prev := mk
        done);
    tc "check_migrated: workload stays byte-identical under migration"
      (fun () ->
        let prog =
          parse
            (Workloads.Registry.find_exn "blackscholes").Workloads.Workload
              .source
        in
        let spec = spec_ok "dev0:kill@0,dead-after=1,seed=7" in
        let r =
          Check.check_migrated ~devices:4 ~streams:2 ~spec prog
        in
        Alcotest.(check bool) "migrated_ok" true (Check.migrated_ok r);
        Alcotest.(check bool) "blocks found" true (r.Check.mg_blocks > 0);
        Alcotest.(check bool) "migrated" true (r.Check.mg_migrated > 0);
        Alcotest.(check (list int)) "dev0 died" [ 0 ] r.Check.mg_dead;
        Alcotest.(check bool) "no fallback" false r.Check.mg_fellback;
        Alcotest.(check bool)
          "recovery not free" true
          (r.Check.mg_faulted_s >= r.Check.mg_clean_s -. 1e-9));
    prop "random traces conserve placements under dev0 death" ~count:50
      QCheck.(
        pair (int_range 1 4)
          (small_list (pair (int_range 0 100) (int_range 1 200))))
      (fun (devices, shapes) ->
        let events =
          List.concat_map
            (fun (h2d, work) ->
              [
                Minic.Interp.Ev_transfer
                  { h2d_cells = h2d; d2h_cells = 0; signal = None };
                Minic.Interp.Ev_kernel { work; wait = None };
              ])
            shapes
        in
        let blocks = List.length shapes in
        let spec = spec_ok "dev0:kill@0,dead-after=1,seed=5" in
        let m =
          Migrate.schedule (mcfg ~spec ~devices ~streams:2 ()) events
        in
        Check.migration_conserved ~blocks m = None
        && Float.is_finite m.Migrate.m_result.Machine.Engine.makespan
        && (m.Migrate.m_fellback || devices > 1
           || m.Migrate.m_dead = []));
  ]
