(** Shared helpers for the test suites. *)

let parse = Minic.Parser.program_of_string_exn

let parse_result = Minic.Parser.program_of_string

(** Parse, typecheck, and run; return printed output.  Fails the test
    on any error. *)
let run_ok ?fuel src =
  let prog = parse src in
  (match Minic.Typecheck.check_program prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "typecheck error: %s" e);
  match Minic.Interp.run ?fuel prog with
  | Ok o -> o
  | Error e -> Alcotest.failf "runtime error: %s" e

let output_of ?fuel src = (run_ok ?fuel src).Minic.Interp.output

(** Check that a transformed program typechecks and produces the same
    printed output as the original. *)
let check_semantics_preserved ~name original transformed =
  (match Minic.Typecheck.check_program transformed with
  | Ok _ -> ()
  | Error e ->
      Alcotest.failf "%s: transformed program does not typecheck: %s\n%s" name
        e
        (Minic.Pretty.program_to_string transformed));
  let out0 =
    match Minic.Interp.run original with
    | Ok o -> o.Minic.Interp.output
    | Error e -> Alcotest.failf "%s: original failed: %s" name e
  in
  let out1 =
    match Minic.Interp.run transformed with
    | Ok o -> o.Minic.Interp.output
    | Error e ->
        Alcotest.failf "%s: transformed failed: %s\n%s" name e
          (Minic.Pretty.program_to_string transformed)
  in
  Alcotest.(check string) (name ^ ": same output") out0 out1

let first_offloaded prog =
  match Analysis.Offload_regions.offloaded prog with
  | r :: _ -> r
  | [] -> Alcotest.fail "no offloaded region found"

let tc name f = Alcotest.test_case name `Quick f

(** Seed policy for property tests.

    Tier-1 ([dune runtest]) must be deterministic, so by default every
    QCheck suite runs under a fixed seed.  Overrides:

    - [QCHECK_SEED=<n>] pins a specific seed (replaying a failure);
    - [QCHECK_LONG=true] (the [@fuzz] alias) self-initializes from the
      clock and prints the chosen seed to stderr so a failing fuzz run
      can be replayed with [QCHECK_SEED]. *)
let default_seed = 413

let seed =
  match Sys.getenv_opt "QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None -> default_seed)
  | None ->
      if Sys.getenv_opt "QCHECK_LONG" <> None then begin
        Random.self_init ();
        let n = Random.int 1_000_000_000 in
        Printf.eprintf "qcheck random seed: %d (replay: QCHECK_SEED=%d)\n%!" n
          n;
        n
      end
      else default_seed

let rand = Random.State.make [| seed |]

(** Register a qcheck property as an alcotest case.  Runs [count]
    trials under the pinned seed; the [@fuzz] alias ([QCHECK_LONG=true])
    multiplies trials by [long_factor] and randomizes the seed. *)
let prop name ?(count = 100) arb f =
  QCheck_alcotest.to_alcotest ~rand
    (QCheck.Test.make ~name ~count ~long_factor:10 arb f)

let float_close ?(eps = 1e-9) a b = Float.abs (a -. b) <= eps *. (1. +. Float.abs a +. Float.abs b)

(** Substring check for error-message assertions. *)
let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0
