open Helpers
open Minic.Ast
module Aff = Analysis.Affine
module Acc = Analysis.Access
module S = Analysis.Simplify

let e = Minic.Parser.expr_of_string_exn

(* evaluate a closed-but-for-i integer expression *)
let rec eval_at ~i expr =
  match expr with
  | Int_lit n -> n
  | Var "i" -> i
  | Var "n" -> 100
  | Unop (Neg, a) -> -eval_at ~i a
  | Binop (Add, a, b) -> eval_at ~i a + eval_at ~i b
  | Binop (Sub, a, b) -> eval_at ~i a - eval_at ~i b
  | Binop (Mul, a, b) -> eval_at ~i a * eval_at ~i b
  | _ -> Alcotest.fail "non-arithmetic expression in eval_at"

let affine_of src = Aff.of_expr ~index:"i" (e src)

let check_affine name src ~coeff =
  tc name (fun () ->
      match affine_of src with
      | Some a -> Alcotest.(check int) "coefficient" coeff a.Aff.coeff
      | None -> Alcotest.failf "%s not recognized as affine" src)

let check_not_affine name src =
  tc name (fun () ->
      match affine_of src with
      | None -> ()
      | Some a ->
          Alcotest.failf "%s unexpectedly affine: %a" src Aff.pp a)

let loop_of src =
  let prog = parse src in
  (first_offloaded prog).loop

let gather_loop =
  {|int main(void) {
      int n = 8;
      float a[32];
      int b[8];
      float c[8];
      float lut[4];
      #pragma offload target(mic:0) in(a[0:32], b[0:n], lut[0:4]) out(c[0:n])
      #pragma omp parallel for
      for (i = 0; i < n; i++) {
        if (b[i] > 0) {
          c[i] = a[b[i]] + lut[2];
        }
      }
      return 0;
    }|}

let suite =
  [
    (* Simplify *)
    tc "constant folding" (fun () ->
        Alcotest.(check bool)
          "3*4+5 folds" true
          (equal_expr (S.expr (e "3 * 4 + 5")) (Int_lit 17)));
    tc "identity elimination" (fun () ->
        Alcotest.(check bool)
          "x*1+0 = x" true
          (equal_expr (S.expr (e "x * 1 + 0")) (Var "x")));
    tc "zero multiplication" (fun () ->
        Alcotest.(check bool)
          "0*(x+y) = 0" true
          (equal_expr (S.expr (e "0 * (x + y)")) (Int_lit 0)));
    tc "x - x = 0" (fun () ->
        Alcotest.(check bool)
          "cancel" true
          (equal_expr (S.sub (Var "x") (Var "x")) (Int_lit 0)));
    (* Purity guards: folds that would delete an effect must not fire.
       These fail on the unguarded seed constructors. *)
    tc "0 * call() is not folded away" (fun () ->
        let call = e "print_int(7)" in
        Alcotest.(check bool)
          "0 * print_int(7) keeps the call" true
          (equal_expr (S.mul (Int_lit 0) call) (Binop (Mul, Int_lit 0, call)));
        Alcotest.(check bool)
          "call * 0 keeps the call" true
          (equal_expr (S.mul call (Int_lit 0)) (Binop (Mul, call, Int_lit 0)));
        Alcotest.(check bool)
          "0 * a[i] keeps the possibly-trapping load" true
          (equal_expr
             (S.mul (Int_lit 0) (e "a[i]"))
             (Binop (Mul, Int_lit 0, e "a[i]"))));
    tc "e - e with a division is not cancelled" (fun () ->
        let d = e "x / y" in
        Alcotest.(check bool)
          "x/y - x/y keeps the possible trap" true
          (equal_expr (S.sub d d) (Binop (Sub, d, d)));
        (* a nonzero literal divisor cannot trap: still cancels *)
        Alcotest.(check bool)
          "x/2 - x/2 = 0" true
          (equal_expr (S.sub (e "x / 2") (e "x / 2")) (Int_lit 0)));
    tc "imin of equal calls is not deduplicated" (fun () ->
        let c = e "imin(f(x), f(x))" in
        Alcotest.(check bool)
          "imin(f(x), f(x)) keeps both calls" true
          (equal_expr (S.expr c) c));
    tc "const_int" (fun () ->
        Alcotest.(check (option int)) "closed" (Some 11)
          (S.const_int (e "(2 + 9 * 1)"));
        Alcotest.(check (option int)) "open" None (S.const_int (e "x + 1")));
    tc "imin/imax folding" (fun () ->
        let open Minic.Ast in
        Alcotest.(check bool)
          "consts" true
          (equal_expr (S.expr (e "imin(3, 7)")) (Int_lit 3));
        Alcotest.(check bool)
          "imax consts" true
          (equal_expr (S.expr (e "imax(0, 0)")) (Int_lit 0));
        Alcotest.(check bool)
          "equal operands" true
          (equal_expr (S.expr (e "imin(x, x)")) (Var "x"));
        Alcotest.(check bool)
          "nested same bound" true
          (equal_expr
             (S.expr (e "imin(n, imin(n, x + 1))"))
             (e "imin(n, x + 1)"));
        (* folding cascades through arithmetic *)
        Alcotest.(check bool)
          "cascade" true
          (equal_expr (S.expr (e "x + imax(0, 0)")) (Var "x")));
    prop "imin/imax folding preserves value" ~count:200
      QCheck.(triple (int_range (-50) 50) (int_range (-50) 50) bool)
      (fun (x, y, use_min) ->
        let f = if use_min then "imin" else "imax" in
        let src = Printf.sprintf "%s(%d, %s(%d, %d))" f x f x y in
        match S.expr (e src) with
        | Minic.Ast.Int_lit v ->
            v = if use_min then min x (min x y) else max x (max x y)
        | _ -> false);
    prop "simplify preserves value" ~count:300 Gen.arb_expr (fun expr ->
        (* restrict to pure int arithmetic: skip others *)
        let rec pure = function
          | Int_lit _ -> true
          | Var "i" | Var "n" -> true
          | Unop (Neg, a) -> pure a
          | Binop ((Add | Sub | Mul), a, b) -> pure a && pure b
          | _ -> false
        in
        QCheck.assume (pure expr);
        let simplified = S.expr expr in
        eval_at ~i:7 expr = eval_at ~i:7 simplified);
    (* Affine *)
    check_affine "plain index" "i" ~coeff:1;
    check_affine "scaled" "4 * i" ~coeff:4;
    check_affine "scaled with offset" "2 * i + 3" ~coeff:2;
    check_affine "offset first" "n + i" ~coeff:1;
    check_affine "negated" "n - i" ~coeff:(-1);
    check_affine "nested" "2 * (i + 1) + i" ~coeff:3;
    check_affine "invariant" "n * 3" ~coeff:0;
    check_not_affine "quadratic" "i * i";
    check_not_affine "variable coefficient" "n * i";
    check_not_affine "division by index" "n / i";
    check_not_affine "through array" "b[i] + 1";
    prop "affine recognition recovers coeff and value" ~count:200
      Gen.arb_affine_parts (fun (c, b) ->
        let expr =
          Binop (Add, Binop (Mul, Int_lit c, Var "i"), Int_lit b)
        in
        match Aff.of_expr ~index:"i" expr with
        | None -> false
        | Some a ->
            a.Aff.coeff = c
            && eval_at ~i:13 (Aff.to_expr ~index:"i" a) = (c * 13) + b);
    (* Access classification *)
    tc "gather and guards classified" (fun () ->
        let accesses = Acc.of_loop (loop_of gather_loop) in
        let find arr =
          List.find (fun (a : Acc.t) -> String.equal a.arr arr) accesses
        in
        (match (find "a").kind with
        | Acc.Gather { via = "b"; _ } -> ()
        | _ -> Alcotest.fail "a should be a gather via b");
        Alcotest.(check bool) "a guarded" true (find "a").guarded;
        (match (find "c").kind with
        | Acc.Affine aff -> Alcotest.(check int) "c coeff" 1 aff.Aff.coeff
        | _ -> Alcotest.fail "c should be affine");
        Alcotest.(check bool) "c write" true ((find "c").dir = Acc.Write);
        match (find "lut").kind with
        | Acc.Affine aff -> Alcotest.(check int) "lut coeff" 0 aff.Aff.coeff
        | _ -> Alcotest.fail "lut should be invariant");
    tc "local-variable offsets are demoted to opaque" (fun () ->
        let loop =
          loop_of
            {|int main(void) {
                int n = 4;
                float a[16];
                float c[4];
                #pragma offload target(mic:0) in(a[0:16]) out(c[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  float s = 0.0;
                  for (j = 0; j < 4; j++) {
                    s = s + a[i * 4 + j];
                  }
                  c[i] = s;
                }
                return 0;
              }|}
        in
        let accesses = Acc.of_loop loop in
        let a_access =
          List.find (fun (x : Acc.t) -> String.equal x.arr "a") accesses
        in
        (match a_access.kind with
        | Acc.Opaque -> ()
        | _ -> Alcotest.fail "a[i*4+j] should be opaque (j is loop-local)");
        Alcotest.(check bool)
          "loop not all-affine" false
          (Acc.all_affine accesses));
    tc "summaries aggregate directions" (fun () ->
        let accesses = Acc.of_loop (loop_of gather_loop) in
        let summaries = Acc.summarize accesses in
        let c = List.find (fun s -> s.Acc.name = "c") summaries in
        Alcotest.(check bool) "c written" true c.Acc.writes;
        Alcotest.(check bool) "c not read" false c.Acc.reads;
        let a = List.find (fun s -> s.Acc.name = "a") summaries in
        Alcotest.(check bool) "a has no coeff" true (a.Acc.max_coeff = None));
    (* Liveness *)
    tc "liveness uses/defs/decls" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 4;
                float a[4];
                float b[4];
                int acc = 0;
                for (i = 0; i < n; i++) {
                  float t = a[i] * 2.0;
                  b[i] = t;
                  acc = acc + 1;
                }
                return acc;
              }|}
        in
        let body =
          match prog with
          | [ Gfunc f ] -> (
              (* the for statement only *)
              match List.rev f.body with
              | _ :: for_stmt :: _ -> [ for_stmt ]
              | _ -> Alcotest.fail "unexpected shape")
          | _ -> Alcotest.fail "one function"
        in
        let info = Analysis.Liveness.of_region body in
        let mem v s = Analysis.Liveness.SS.mem v s in
        Alcotest.(check bool) "uses a" true (mem "a" info.uses);
        Alcotest.(check bool) "uses n" true (mem "n" info.uses);
        Alcotest.(check bool) "defs b" true (mem "b" info.defs);
        Alcotest.(check bool) "defs acc" true (mem "acc" info.defs);
        Alcotest.(check bool) "t is local" false (mem "t" info.uses);
        Alcotest.(check bool) "i is local" true (mem "i" info.decls));
    tc "clause roles split in/out/inout" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 2;
                float a[2];
                float b[2];
                float c[2];
                for (i = 0; i < n; i++) {
                  c[i] = a[i] + c[i];
                  b[i] = 1.0;
                }
                return 0;
              }|}
        in
        let body =
          match prog with
          | [ Gfunc f ] -> [ List.nth f.body 4 ]
          | _ -> Alcotest.fail "one function"
        in
        let is_array v = List.mem v [ "a"; "b"; "c" ] in
        let ins, outs, inouts =
          Analysis.Liveness.clause_roles ~is_array body
        in
        Alcotest.(check (list string)) "ins" [ "a" ] ins;
        Alcotest.(check (list string)) "outs" [ "b" ] outs;
        Alcotest.(check (list string)) "inouts" [ "c" ] inouts);
    (* Depend *)
    tc "parallel loop accepted" (fun () ->
        let loop =
          loop_of
            {|int main(void) {
                int n = 4;
                float a[4];
                float b[4];
                #pragma offload target(mic:0) in(a[0:n]) out(b[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  float t = a[i];
                  b[i] = t * 2.0;
                }
                return 0;
              }|}
        in
        Alcotest.(check bool) "parallel" true (Analysis.Depend.is_parallel loop));
    tc "scalar reduction flagged" (fun () ->
        let loop =
          loop_of
            {|int main(void) {
                int n = 4;
                float a[4];
                float s = 0.0;
                #pragma offload target(mic:0) in(a[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) { s = s + a[i]; }
                return 0;
              }|}
        in
        match Analysis.Depend.check loop with
        | [ Analysis.Depend.Scalar_write "s" ] -> ()
        | vs ->
            Alcotest.failf "expected scalar violation, got %d" (List.length vs));
    tc "invariant write flagged" (fun () ->
        let loop =
          loop_of
            {|int main(void) {
                int n = 4;
                float a[4];
                #pragma offload target(mic:0) inout(a[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) { a[0] = (float)i; }
                return 0;
              }|}
        in
        Alcotest.(check bool)
          "violations" true
          (List.mem (Analysis.Depend.Invariant_write "a")
             (Analysis.Depend.check loop)));
    tc "overlapping strides flagged" (fun () ->
        let loop =
          loop_of
            {|int main(void) {
                int n = 4;
                float a[16];
                #pragma offload target(mic:0) inout(a[0:16])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  a[i] = 1.0;
                  a[2 * i] = 2.0;
                }
                return 0;
              }|}
        in
        Alcotest.(check bool)
          "violations" true
          (List.mem
             (Analysis.Depend.Overlapping_writes "a")
             (Analysis.Depend.check loop)));
    (* Offload regions *)
    tc "region discovery distinguishes candidates" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 4;
                float a[4];
                float b[4];
                #pragma omp parallel for
                for (i = 0; i < n; i++) { a[i] = 1.0; }
                #pragma offload target(mic:0) in(a[0:n]) out(b[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) { b[i] = a[i]; }
                return 0;
              }|}
        in
        Alcotest.(check int)
          "2 regions" 2
          (List.length (Analysis.Offload_regions.of_program prog));
        Alcotest.(check int)
          "1 candidate" 1
          (List.length (Analysis.Offload_regions.candidates prog));
        Alcotest.(check int)
          "1 offloaded" 1
          (List.length (Analysis.Offload_regions.offloaded prog)));
  ]
