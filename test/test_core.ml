(* Test runner: one alcotest binary covering every library. *)

let () =
  Alcotest.run "comp"
    [
      ("lexer", Test_lexer.suite);
      ("parser", Test_parser.suite);
      ("pretty", Test_pretty.suite);
      ("typecheck", Test_typecheck.suite);
      ("interp", Test_interp.suite);
      ("analysis", Test_analysis.suite);
      ("block-size", Test_block_size.suite);
      ("streaming", Test_streaming.suite);
      ("merge-offload", Test_merge.suite);
      ("regularize", Test_regularize.suite);
      ("insert-offload", Test_insert_offload.suite);
      ("vectorize", Test_vectorize.suite);
      ("comp-driver", Test_comp.suite);
      ("pipeline", Test_pipeline.suite);
      ("paper-corpus", Test_corpus.suite);
      ("misc", Test_misc.suite);
      ("replay", Test_replay.suite);
      ("fuzz", Test_fuzz.suite);
      ("engine", Test_engine.suite);
      ("interp-engines", Test_engines.suite);
      ("obs", Test_obs.suite);
      ("parallel", Test_parallel.suite);
      ("cost", Test_cost.suite);
      ("runtime", Test_runtime.suite);
      ("segbuf", Test_segbuf.suite);
      ("shared-lang", Test_shared_lang.suite);
      ("shared-mem", Test_shared_mem.suite);
      ("myo-coi", Test_myo_coi.suite);
      ("fault", Test_fault.suite);
      ("migrate", Test_migrate.suite);
      ("check", Test_check.suite);
      ("opt", Test_opt.suite);
      ("residency", Test_residency.suite);
      ("workloads", Test_workloads.suite);
      ("experiments", Test_experiments.suite);
      ("serve", Test_serve.suite);
      ("tune", Test_tune.suite);
    ]
