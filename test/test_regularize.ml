open Helpers
module R = Transforms.Regularize

let reorder_exn prog =
  match R.reorder prog (first_offloaded prog) with
  | Ok p -> p
  | Error e -> Alcotest.failf "reorder failed: %a" R.pp_failure e

let split_exn prog =
  match R.split prog (first_offloaded prog) with
  | Ok p -> p
  | Error e -> Alcotest.failf "split failed: %a" R.pp_failure e

let srad_like =
  {|int main(void) {
      int n = 12;
      float J[12];
      int iN[12];
      float dN[12];
      float cN[12];
      for (i = 0; i < 12; i++) {
        J[i] = 1.0 + (float)(i % 5);
        iN[i] = (i + 11) % 12;
      }
      #pragma offload target(mic:0) in(J[0:n], iN[0:n]) out(dN[0:n], cN[0:n])
      #pragma omp parallel for
      for (i = 0; i < n; i++) {
        float jc = J[i];
        float jn = J[iN[i]];
        dN[i] = jn - jc;
        cN[i] = 1.0 / (1.0 + dN[i] * dN[i]);
      }
      for (i = 0; i < n; i++) { print_float(cN[i]); }
      return 0;
    }|}

let soa_src =
  {|struct opt {
      float price;
      float strike;
      int tag;
    };
    int main(void) {
      int n = 8;
      struct opt opts[8];
      float out[8];
      for (i = 0; i < n; i++) {
        opts[i].price = (float)i * 2.0;
        opts[i].strike = (float)i + 1.0;
        opts[i].tag = i;
      }
      #pragma offload target(mic:0) in(opts[0:n]) out(out[0:n])
      #pragma omp parallel for
      for (i = 0; i < n; i++) {
        out[i] = opts[i].price - opts[i].strike;
      }
      for (i = 0; i < n; i++) { print_float(out[i]); }
      return 0;
    }|}

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Differential pin for the pattern/field accumulator tables: the
   rewritten output on these order-sensitive fixtures (repeated,
   interleaved pattern touches) must stay byte-identical to the
   captured output of the original assoc-list implementation. *)
let check_fixture name =
  let prog = parse (read (Filename.concat "corpus" (name ^ ".mc"))) in
  let prog', _ = Comp.optimize ~passes:[ Comp.Regularization ] prog in
  Alcotest.(check string)
    (name ^ ": output unchanged by the table refactor")
    (read (Filename.concat "corpus" (name ^ ".expected")))
    (Minic.Pretty.program_to_string prog')

let suite =
  [
    tc "reorder pattern table keeps last-touch order" (fun () ->
        check_fixture "reorder_order");
    tc "soa field table keeps last-touch order" (fun () ->
        check_fixture "soa_order");
    tc "gather reorder preserves semantics" (fun () ->
        let prog = parse (Gen.gather_program ~n:16 ~m:40 ~seed:3) in
        check_semantics_preserved ~name:"gather" prog (reorder_exn prog));
    tc "strided reorder preserves semantics" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 9;
                float a[45];
                float out[9];
                for (i = 0; i < 45; i++) { a[i] = (float)i; }
                #pragma offload target(mic:0) in(a[0:45]) out(out[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  out[i] = a[5 * i] + a[5 * i + 1];
                }
                for (i = 0; i < n; i++) { print_float(out[i]); }
                return 0;
              }|}
        in
        check_semantics_preserved ~name:"strided" prog (reorder_exn prog));
    tc "written gathers scatter back" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 8;
                float a[24];
                int b[8];
                for (i = 0; i < 24; i++) { a[i] = 0.0; }
                for (i = 0; i < n; i++) { b[i] = (i * 3) % 24; }
                #pragma offload target(mic:0) in(b[0:n]) inout(a[0:24])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  a[b[i]] = (float)i + 1.0;
                }
                for (i = 0; i < 24; i++) { print_float(a[i]); }
                return 0;
              }|}
        in
        check_semantics_preserved ~name:"scatter" prog (reorder_exn prog));
    tc "reorder makes the loop streamable" (fun () ->
        let prog = parse (Gen.gather_program ~n:12 ~m:30 ~seed:9) in
        let region = first_offloaded prog in
        Alcotest.(check bool)
          "not streamable before" false
          (Transforms.Streaming.applicable prog region);
        let prog' = reorder_exn prog in
        let region' = first_offloaded prog' in
        Alcotest.(check bool)
          "streamable after" true
          (Transforms.Streaming.applicable prog' region');
        (* and streaming the regularized loop still computes the same *)
        match Transforms.Streaming.transform ~nblocks:3 prog' region' with
        | Ok prog'' -> check_semantics_preserved ~name:"reorder+stream" prog prog''
        | Error e ->
            Alcotest.failf "streaming after reorder failed: %a"
              Transforms.Streaming.pp_failure e);
    tc "guarded gathers are refused" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 4;
                float a[16];
                int b[4];
                float c[4];
                #pragma offload target(mic:0) in(a[0:16], b[0:n]) out(c[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  c[i] = 0.0;
                  if (b[i] > 0) {
                    c[i] = a[b[i]];
                  }
                }
                return 0;
              }|}
        in
        match R.reorder prog (first_offloaded prog) with
        | Error (R.Guarded "a") -> ()
        | Error e -> Alcotest.failf "wrong failure: %a" R.pp_failure e
        | Ok _ -> Alcotest.fail "expected Guarded");
    tc "full-coverage strides are not reordered" (fun () ->
        (* every residue of the stride is read: no wasted transfer, so
           the rewrite should not fire (streamcluster pattern) *)
        let prog =
          parse
            {|int main(void) {
                int n = 6;
                float a[12];
                float c[6];
                for (i = 0; i < 12; i++) { a[i] = (float)i; }
                #pragma offload target(mic:0) in(a[0:12]) out(c[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  c[i] = a[2 * i] + a[2 * i + 1];
                }
                return 0;
              }|}
        in
        match R.reorder prog (first_offloaded prog) with
        | Error R.No_irregular_access -> ()
        | Error e -> Alcotest.failf "wrong failure: %a" R.pp_failure e
        | Ok _ -> Alcotest.fail "expected No_irregular_access");
    tc "loop splitting preserves semantics" (fun () ->
        let prog = parse srad_like in
        check_semantics_preserved ~name:"split" prog (split_exn prog));
    tc "split marks the regular loop simd" (fun () ->
        let prog = parse srad_like in
        let prog' = split_exn prog in
        let simd_count =
          List.fold_left
            (fun acc g ->
              match g with
              | Minic.Ast.Gfunc f ->
                  Minic.Ast.fold_stmts
                    (fun acc s ->
                      match s with
                      | Minic.Ast.Spragma (Minic.Ast.Omp_simd, _) -> acc + 1
                      | _ -> acc)
                    acc f.body
              | _ -> acc)
            0 prog'
        in
        Alcotest.(check int) "one simd loop" 1 simd_count);
    tc "split needs an irregular prefix" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 4;
                float a[4];
                float b[4];
                #pragma offload target(mic:0) in(a[0:n]) out(b[0:n])
                #pragma omp parallel for
                for (i = 0; i < n; i++) {
                  float t = a[i];
                  b[i] = t + 1.0;
                }
                return 0;
              }|}
        in
        match R.split prog (first_offloaded prog) with
        | Error R.Not_splittable -> ()
        | Error e -> Alcotest.failf "wrong failure: %a" R.pp_failure e
        | Ok _ -> Alcotest.fail "expected Not_splittable");
    tc "aos-to-soa preserves semantics" (fun () ->
        let prog = parse soa_src in
        match R.aos_to_soa prog (first_offloaded prog) with
        | Ok prog' -> check_semantics_preserved ~name:"soa" prog prog'
        | Error e -> Alcotest.failf "soa failed: %a" R.pp_failure e);
    tc "aos-to-soa makes the loop streamable" (fun () ->
        let prog = parse soa_src in
        let region = first_offloaded prog in
        Alcotest.(check bool)
          "soa applicable" true
          (List.mem R.Soa (R.applicable_kinds prog region));
        match R.aos_to_soa prog region with
        | Ok prog' ->
            let region' = first_offloaded prog' in
            Alcotest.(check bool)
              "streamable after soa" true
              (Transforms.Streaming.applicable prog' region')
        | Error e -> Alcotest.failf "soa failed: %a" R.pp_failure e);
    tc "applicable_kinds on srad finds split and reorder" (fun () ->
        let prog = parse srad_like in
        let kinds = R.applicable_kinds prog (first_offloaded prog) in
        Alcotest.(check bool) "split" true (List.mem R.Split kinds);
        Alcotest.(check bool) "reorder" true (List.mem R.Reorder kinds));
    prop "gather reorder preserves semantics (random)" ~count:40
      QCheck.(triple (int_range 3 30) (int_range 4 60) (int_range 0 999))
      (fun (n, m, seed) ->
        let prog = parse (Gen.gather_program ~n ~m ~seed) in
        match R.reorder prog (first_offloaded prog) with
        | Error _ -> false
        | Ok prog' ->
            String.equal
              (Minic.Interp.run_output prog)
              (Minic.Interp.run_output prog'));
  ]
