open Helpers

(** The paper's figure examples as MiniC programs (test/corpus/): each
    must parse, typecheck, run, survive the full pipeline, and trigger
    exactly the analysis verdicts its figure illustrates. *)

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus name = parse (read (Filename.concat "corpus" name))

let suite =
  [
    tc "every corpus program parses, typechecks and runs" (fun () ->
        List.iter
          (fun name ->
            let prog = corpus name in
            (match Minic.Typecheck.check_program prog with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" name e);
            match Minic.Interp.run prog with
            | Ok _ -> ()
            | Error e -> Alcotest.failf "%s: %s" name e)
          [
            "fig05a_blackscholes.mc"; "fig06_streamcluster.mc";
            "fig07_srad.mc"; "fig08_patterns.mc"; "fig03_shared.mc";
          ]);
    tc "figure 5(a) is the streaming showcase" (fun () ->
        let prog = corpus "fig05a_blackscholes.mc" in
        let region = first_offloaded prog in
        Alcotest.(check bool)
          "streamable" true
          (Transforms.Streaming.applicable prog region);
        (* and the streamed rewrite is Figure 5(b)/(c) *)
        let prog' =
          Result.get_ok (Transforms.Streaming.transform ~nblocks:4 prog region)
        in
        check_semantics_preserved ~name:"fig5" prog prog');
    tc "figure 6 is the merging showcase" (fun () ->
        let prog = corpus "fig06_streamcluster.mc" in
        Alcotest.(check bool)
          "merge site found" true
          (Transforms.Merge_offload.applicable prog);
        let prog', n = Transforms.Merge_offload.transform_all prog in
        Alcotest.(check int) "merged" 1 n;
        check_semantics_preserved ~name:"fig6" prog prog');
    tc "figure 7 is the splitting showcase" (fun () ->
        let prog = corpus "fig07_srad.mc" in
        let region = first_offloaded prog in
        Alcotest.(check bool)
          "splittable" true
          (List.mem Transforms.Regularize.Split
             (Transforms.Regularize.applicable_kinds prog region));
        let prog' = Result.get_ok (Transforms.Regularize.split prog region) in
        check_semantics_preserved ~name:"fig7" prog prog');
    tc "figure 8 covers both reordering patterns" (fun () ->
        let prog = corpus "fig08_patterns.mc" in
        let regions = Analysis.Offload_regions.offloaded prog in
        Alcotest.(check int) "two loops" 2 (List.length regions);
        List.iter
          (fun region ->
            Alcotest.(check bool)
              "reorderable" true
              (List.mem Transforms.Regularize.Reorder
                 (Transforms.Regularize.applicable_kinds prog region)))
          regions;
        let prog', applied = Transforms.Regularize.transform_all prog in
        Alcotest.(check int) "both rewritten" 2 (List.length applied);
        check_semantics_preserved ~name:"fig8" prog prog');
    tc "figure 3's structure walks correctly on the device" (fun () ->
        let prog = corpus "fig03_shared.mc" in
        Alcotest.(check string)
          "cycle sum" "110\n"
          (Minic.Interp.run_output prog));
    tc "the pipeline handles the whole corpus" (fun () ->
        List.iter
          (fun name ->
            let prog = corpus name in
            let prog', _ = Comp.optimize ~nblocks:3 prog in
            check_semantics_preserved ~name prog prog')
          [
            "fig05a_blackscholes.mc"; "fig06_streamcluster.mc";
            "fig07_srad.mc"; "fig08_patterns.mc"; "fig03_shared.mc";
          ]);
    tc "recorded regressions replay clean through every transform" (fun () ->
        (* corpus/regressions/ holds minimized programs on which some
           transform once diverged; replaying them pins the fix *)
        let entries = Check.Corpus.entries ~dir:"corpus/regressions" in
        Alcotest.(check bool) "at least one fixture committed" true
          (entries <> []);
        List.iter
          (fun path ->
            let prog = parse (read path) in
            List.iter
              (fun (r : Check.report) ->
                if not (Check.verdict_ok r.transform r.verdict) then
                  Alcotest.failf "%s/%s: %s" path
                    (Check.transform_name r.transform)
                    (Check.verdict_str r.verdict))
              (Check.check_program prog))
          entries);
  ]
