The service mode reads one JSONL request per line and writes exactly
one JSON response per line, in request order.  Stdin mode first: a
couple of runs (the second hits the shared compile cache), a stats
snapshot, and a clean shutdown.

  $ cat > session.jsonl <<'EOF'
  > {"cmd":"run","src":"int main(void) { print_int(7); return 0; }"}
  > {"cmd":"run","src":"int main(void) { print_int(7); return 0; }"}
  > {"cmd":"shutdown"}
  > EOF
  $ compc serve < session.jsonl
  {"id":1,"ok":true,"cmd":"run","status":0,"output":"7\n","work":3,"stats":{"offloads":0,"transfers":0,"cells_h2d":0,"cells_d2h":0,"mic_alloc_cells":0},"counters":{"serve.cmd.run":1,"serve.ok":1,"serve.requests":1}}
  {"id":2,"ok":true,"cmd":"run","status":0,"output":"7\n","work":3,"stats":{"offloads":0,"transfers":0,"cells_h2d":0,"cells_d2h":0,"mic_alloc_cells":0},"counters":{"serve.cmd.run":1,"serve.ok":1,"serve.requests":1}}
  {"id":3,"ok":true,"cmd":"shutdown","status":0,"served":2,"counters":{}}
  $ echo "exit=$?"
  exit=0

The stats snapshot carries the merged observability state; we project
out just the stable service-level fields.

  $ printf '%s\n' \
  >   '{"cmd":"run","src":"int main(void) { print_int(7); return 0; }"}' \
  >   '{"cmd":"run","src":"int main(void) { print_int(7); return 0; }"}' \
  >   '{"cmd":"stats"}' \
  >   '{"cmd":"shutdown"}' \
  > | compc serve | sed -n 's/.*"served":\([0-9]*\),"ok":\([0-9]*\),"errors":\([0-9]*\),"cache":{"hits":\([0-9]*\),"misses":\([0-9]*\)}.*/served=\1 ok=\2 errors=\3 hits=\4 misses=\5/p'
  served=2 ok=2 errors=0 hits=1 misses=1

Malformed input never kills the server: each bad line yields one typed
error response and later requests still succeed.

  $ printf '%s\n' \
  >   'this is not json' \
  >   '{"cmd":"levitate"}' \
  >   '{"cmd":"run","src":"int main(void) { return }"}' \
  >   '{"cmd":"run","src":"int main(void) { print_int(9); return 0; }"}' \
  >   '{"cmd":"shutdown"}' \
  > | compc serve
  {"id":1,"ok":false,"error":"bad_json","status":2,"message":"invalid literal at offset 0","counters":{"serve.err.bad_json":1,"serve.errors":1,"serve.requests":1}}
  {"id":2,"ok":false,"error":"unknown_cmd","status":2,"message":"unknown cmd levitate (known: optimize run check simulate stats shutdown)","counters":{"serve.err.unknown_cmd":1,"serve.errors":1,"serve.requests":1}}
  {"id":3,"ok":false,"error":"parse_error","status":2,"message":"expression expected (got Trbrace) at line 1, column 25","counters":{"serve.err.parse_error":1,"serve.errors":1,"serve.requests":1}}
  {"id":4,"ok":true,"cmd":"run","status":0,"output":"9\n","work":3,"stats":{"offloads":0,"transfers":0,"cells_h2d":0,"cells_d2h":0,"mic_alloc_cells":0},"counters":{"serve.cmd.run":1,"serve.ok":1,"serve.requests":1}}
  {"id":5,"ok":true,"cmd":"shutdown","status":0,"served":4,"counters":{}}

Socket mode: a server bound to a Unix socket, two separate client
sessions against it.  The compile cache lives in the server, so the
second client's identical request is a cache hit, and the request
sequence keeps counting across connections.

  $ compc serve --socket ./compc.sock &
  $ printf '%s\n' \
  >   '{"cmd":"run","src":"int main(void) { print_int(5); return 0; }"}' \
  > | compc serve --connect ./compc.sock
  {"id":1,"ok":true,"cmd":"run","status":0,"output":"5\n","work":3,"stats":{"offloads":0,"transfers":0,"cells_h2d":0,"cells_d2h":0,"mic_alloc_cells":0},"counters":{"serve.cmd.run":1,"serve.ok":1,"serve.requests":1}}
  $ printf '%s\n' \
  >   '{"cmd":"run","src":"int main(void) { print_int(5); return 0; }"}' \
  >   '{"cmd":"stats"}' \
  >   '{"cmd":"shutdown"}' \
  > | compc serve --connect ./compc.sock \
  > | sed 's/.*"served":\([0-9]*\),"ok":\([0-9]*\),"errors":\([0-9]*\),"cache":{"hits":\([0-9]*\),"misses":\([0-9]*\)}.*/served=\1 ok=\2 errors=\3 hits=\4 misses=\5/'
  {"id":2,"ok":true,"cmd":"run","status":0,"output":"5\n","work":3,"stats":{"offloads":0,"transfers":0,"cells_h2d":0,"cells_d2h":0,"mic_alloc_cells":0},"counters":{"serve.cmd.run":1,"serve.ok":1,"serve.requests":1}}
  served=2 ok=2 errors=0 hits=1 misses=1
  {"id":4,"ok":true,"cmd":"shutdown","status":0,"served":3,"counters":{}}
  $ wait
  $ test -e ./compc.sock || echo "socket removed"
  socket removed

--socket and --connect are mutually exclusive; that is a usage error
on stderr with exit 2.

  $ compc serve --socket ./a.sock --connect ./b.sock
  serve: --socket and --connect are mutually exclusive
  [2]
