open Helpers
module B = Transforms.Block_size

let arb_params =
  QCheck.(
    map
      (fun (d, c, k) ->
        {
          B.transfer_s = 0.001 +. (float_of_int d /. 100.);
          compute_s = 0.001 +. (float_of_int c /. 100.);
          launch_s = 1e-5 +. (float_of_int k /. 1e6);
        })
      (triple (int_range 0 1000) (int_range 0 1000) (int_range 0 100)))

let suite =
  [
    tc "naive time is D + K + C" (fun () ->
        let p = { B.transfer_s = 3.0; compute_s = 2.0; launch_s = 0.5 } in
        Alcotest.(check (float 1e-12)) "naive" 5.5 (B.naive_time p));
    tc "one block equals naive" (fun () ->
        let p = { B.transfer_s = 3.0; compute_s = 2.0; launch_s = 0.5 } in
        Alcotest.(check (float 1e-12))
          "N=1" (B.naive_time p)
          (B.streamed_time p ~nblocks:1));
    tc "paper formula, compute-bound example" (fun () ->
        (* D=1, C=4, K=0.01, N=10: T = D/N + (C/N + K)(N-1) + C/N + K *)
        let p = { B.transfer_s = 1.0; compute_s = 4.0; launch_s = 0.01 } in
        let expected = 0.1 +. ((0.4 +. 0.01) *. 9.) +. 0.4 +. 0.01 in
        Alcotest.(check (float 1e-12))
          "T(10)" expected
          (B.streamed_time p ~nblocks:10));
    tc "compute-bound optimum tracks sqrt(D/K)" (fun () ->
        let p = { B.transfer_s = 0.9; compute_s = 10.0; launch_s = 0.001 } in
        let n_star = B.optimal_blocks p in
        let analytic = int_of_float (sqrt (0.9 /. 0.001)) in
        Alcotest.(check bool)
          (Printf.sprintf "N*=%d near sqrt(D/K)=%d" n_star analytic)
          true
          (abs (n_star - analytic) <= 2));
    tc "choose picks the best of the paper's candidates" (fun () ->
        let p = { B.transfer_s = 1.0; compute_s = 1.0; launch_s = 0.001 } in
        let n = B.choose p in
        List.iter
          (fun c ->
            Alcotest.(check bool)
              (Printf.sprintf "T(%d) >= T(%d)" c n)
              true
              (B.streamed_time p ~nblocks:c
               >= B.streamed_time p ~nblocks:n -. 1e-12))
          [ 10; 20; 40; 50 ]);
    prop "streaming at the optimum never loses to naive" ~count:300
      arb_params (fun p ->
        let n = B.optimal_blocks p in
        B.streamed_time p ~nblocks:n <= B.naive_time p +. 1e-12);
    prop "streamed time is bounded below by max(D, C)" ~count:300 arb_params
      (fun p ->
        let n = B.optimal_blocks p in
        B.streamed_time p ~nblocks:n
        >= Float.max p.B.transfer_s p.B.compute_s -. 1e-12);
    prop "optimal beats the paper candidate grid" ~count:300 arb_params
      (fun p ->
        let n = B.optimal_blocks p in
        let best_grid =
          List.fold_left
            (fun acc c -> Float.min acc (B.streamed_time p ~nblocks:c))
            infinity [ 1; 10; 20; 40; 50 ]
        in
        (* the analytic optimum may fall between grid points but must be
           within one launch overhead of the best grid choice *)
        B.streamed_time p ~nblocks:n <= best_grid +. p.B.launch_s +. 1e-12);
    prop "speedup is naive/streamed" ~count:100 arb_params (fun p ->
        let n = 10 in
        float_close
          (B.speedup p ~nblocks:n)
          (B.naive_time p /. B.streamed_time p ~nblocks:n));
    tc "K = 0 returns the cap, not a magic constant" (fun () ->
        (* T(N) is strictly decreasing when K = 0: the answer is the
           model's block cap, and must not exceed it *)
        let p = { B.transfer_s = 1.0; compute_s = 1.0; launch_s = 0. } in
        Alcotest.(check int) "N* = max_blocks" B.max_blocks
          (B.optimal_blocks p);
        let degenerate = { p with compute_s = 0. } in
        Alcotest.(check int) "K = 0, C = 0: constant T, N* = 1" 1
          (B.optimal_blocks degenerate));
    tc "D < C keeps the transfer-bound candidate in range" (fun () ->
        (* (D - C)/K is negative here; it must clamp to 1, not wrap *)
        let p = { B.transfer_s = 0.1; compute_s = 10.0; launch_s = 1e-6 } in
        let n = B.optimal_blocks p in
        Alcotest.(check bool)
          (Printf.sprintf "1 <= %d <= cap" n)
          true
          (n >= 1 && n <= B.max_blocks));
    tc "tiny D stays clamped and sane" (fun () ->
        let p = { B.transfer_s = 1e-12; compute_s = 5.0; launch_s = 1e-9 } in
        let n = B.optimal_blocks p in
        Alcotest.(check bool)
          (Printf.sprintf "1 <= %d <= cap" n)
          true
          (n >= 1 && n <= B.max_blocks);
        Alcotest.(check bool)
          "no worse than naive" true
          (B.streamed_time p ~nblocks:n <= B.naive_time p +. 1e-12));
    tc "negative or NaN parameters are rejected" (fun () ->
        let rejects name p =
          match B.optimal_blocks p with
          | _ -> Alcotest.fail (name ^ ": expected Invalid_argument")
          | exception Invalid_argument _ -> ()
        in
        rejects "negative D"
          { B.transfer_s = -1.0; compute_s = 1.0; launch_s = 0.1 };
        rejects "negative C"
          { B.transfer_s = 1.0; compute_s = -1.0; launch_s = 0.1 };
        rejects "NaN K"
          { B.transfer_s = 1.0; compute_s = 1.0; launch_s = Float.nan });
    prop "optimal_blocks is always within [1, max_blocks]" ~count:300
      arb_params (fun p ->
        let n = B.optimal_blocks p in
        n >= 1 && n <= B.max_blocks);
    tc "choose rejects an empty candidate list" (fun () ->
        let p = { B.transfer_s = 1.0; compute_s = 1.0; launch_s = 0.01 } in
        match B.choose ~candidates:[] p with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "choose validates parameters like optimal_blocks" (fun () ->
        let p = { B.transfer_s = -1.0; compute_s = 1.0; launch_s = 0.01 } in
        match B.choose p with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "choose clamps wild candidates into [1, max_blocks]" (fun () ->
        let p = { B.transfer_s = 1.0; compute_s = 1.0; launch_s = 0.001 } in
        let n = B.choose ~candidates:[ -7; 0; max_int; B.max_blocks * 2 ] p in
        Alcotest.(check bool)
          (Printf.sprintf "1 <= %d <= cap" n)
          true
          (n >= 1 && n <= B.max_blocks));
    prop "choose result is always within [1, max_blocks]" ~count:200
      QCheck.(pair arb_params (small_list small_int))
      (fun (p, cands) ->
        match cands with
        | [] -> (
            match B.choose ~candidates:[] p with
            | _ -> false
            | exception Invalid_argument _ -> true)
        | _ ->
            let n = B.choose ~candidates:cands p in
            n >= 1 && n <= B.max_blocks);
  ]
