(* The differential harness itself: oracle verdicts, generator
   well-formedness, the expected-applicability truth table, shrinking,
   corpus recording, fault injection, and the metamorphic cost-model
   checks. *)

open Helpers

let parse_gen pat seed = parse (Check.Genprog.generate pat ~seed)

let arb_instance =
  QCheck.make
    ~print:(fun (p, s) ->
      Printf.sprintf "%s seed=%d\n%s"
        (Check.Genprog.pattern_name p)
        s
        (Check.Genprog.generate p ~seed:s))
    QCheck.Gen.(pair (oneofl Check.Genprog.all_patterns) (int_bound 999))

(* {1 Oracle verdicts} *)

let oracle_tests =
  [
    tc "identical programs are Equal" (fun () ->
        let p = parse "int main(void) { print_int(7); return 0; }" in
        match Check.equiv p p with
        | Check.Equal -> ()
        | v -> Alcotest.failf "expected Equal, got %s" (Check.verdict_str v));
    tc "first differing output line is reported" (fun () ->
        let a =
          parse "int main(void) { print_int(1); print_int(2); return 0; }"
        in
        let b =
          parse "int main(void) { print_int(1); print_int(3); return 0; }"
        in
        match Check.equiv a b with
        | Check.Diverged (Check.Output_line { line; orig; transformed }) ->
            Alcotest.(check int) "line" 2 line;
            Alcotest.(check string) "orig" "2" orig;
            Alcotest.(check string) "transformed" "3" transformed
        | v -> Alcotest.failf "expected output divergence, got %s"
                 (Check.verdict_str v));
    tc "missing trailing output is a divergence" (fun () ->
        let a =
          parse "int main(void) { print_int(1); print_int(2); return 0; }"
        in
        let b = parse "int main(void) { print_int(1); return 0; }" in
        match Check.equiv a b with
        | Check.Diverged (Check.Output_line { line = 2; orig = "2"; _ }) -> ()
        | v -> Alcotest.failf "expected output divergence, got %s"
                 (Check.verdict_str v));
    tc "return values are compared" (fun () ->
        let a = parse "int main(void) { return 0; }" in
        let b = parse "int main(void) { return 1; }" in
        match Check.equiv a b with
        | Check.Diverged (Check.Return_value { orig = "0"; transformed = "1" })
          ->
            ()
        | v -> Alcotest.failf "expected return divergence, got %s"
                 (Check.verdict_str v));
    tc "final global storage is compared" (fun () ->
        let a = parse "int g[2];\nint main(void) { g[1] = 5; return 0; }" in
        let b = parse "int g[2];\nint main(void) { g[1] = 6; return 0; }" in
        match Check.equiv a b with
        | Check.Diverged (Check.Global_cell { name = "g"; cell = 1; _ }) -> ()
        | v -> Alcotest.failf "expected global divergence, got %s"
                 (Check.verdict_str v));
    tc "undefined original cells constrain nothing" (fun () ->
        let a = parse "int g[2];\nint main(void) { return 0; }" in
        let b = parse "int g[2];\nint main(void) { g[0] = 9; return 0; }" in
        match Check.equiv a b with
        | Check.Equal -> ()
        | v -> Alcotest.failf "expected Equal (Vundef wildcard), got %s"
                 (Check.verdict_str v));
    tc "ill-typed transformed program is Transform_failed" (fun () ->
        let a = parse "int main(void) { return 0; }" in
        let b = parse "int main(void) { return x; }" in
        match Check.equiv a b with
        | Check.Transform_failed e ->
            Alcotest.(check bool) "mentions type error" true
              (contains ~sub:"type error" e)
        | v -> Alcotest.failf "expected Transform_failed, got %s"
                 (Check.verdict_str v));
    tc "original-only failure is ok only for shared" (fun () ->
        let a = parse "int main(void) { int a[2]; return a[5]; }" in
        let b = parse "int main(void) { return 0; }" in
        match Check.equiv a b with
        | Check.Orig_failed _ as v ->
            Alcotest.(check bool) "shared accepts" true
              (Check.verdict_ok Check.Shared v);
            Alcotest.(check bool) "streaming rejects" false
              (Check.verdict_ok Check.Streaming v)
        | v -> Alcotest.failf "expected Orig_failed, got %s"
                 (Check.verdict_str v));
  ]

(* {1 The whole-program generator} *)

let gen_tests =
  [
    prop "generated programs parse, typecheck, and run" ~count:120
      arb_instance (fun (pat, seed) ->
        let src = Check.Genprog.generate pat ~seed in
        match parse_result src with
        | Error e -> QCheck.Test.fail_reportf "parse error: %s" e
        | Ok prog -> (
            match Minic.Typecheck.check_program prog with
            | Error e -> QCheck.Test.fail_reportf "type error: %s" e
            | Ok _ -> (
                match Minic.Interp.run ~fuel:10_000_000 prog with
                | Ok _ -> true
                | Error e ->
                    (* the chain pattern's buddy-deref variant crashes by
                       design (host pointers on the device) — but then the
                       shared-memory lowering must rescue it *)
                    let rescued () =
                      let prog', sites = Check.apply Check.Shared prog in
                      sites > 0
                      && Result.is_ok (Minic.Interp.run ~fuel:10_000_000 prog')
                    in
                    (pat = Check.Genprog.Chain && rescued ())
                    || QCheck.Test.fail_reportf "runtime error: %s" e)));
    prop "generation is deterministic in the seed" ~count:40 arb_instance
      (fun (pat, seed) ->
        String.equal
          (Check.Genprog.generate pat ~seed)
          (Check.Genprog.generate pat ~seed));
    prop "patterns hit their expected-applicability table" ~count:120
      arb_instance (fun (pat, seed) ->
        let prog = parse_gen pat seed in
        List.for_all
          (fun txf ->
            match Check.expected_applicable pat txf with
            | None -> true
            | Some expected ->
                let got = Check.applicable txf prog in
                got = expected
                || QCheck.Test.fail_reportf "%s: expected applicable=%b, got %b"
                     (Check.transform_name txf) expected got)
          Check.all_transforms);
  ]

(* {1 The differential property: every transform on every pattern} *)

let diff_tests =
  [
    prop "every transform preserves observable behaviour" ~count:60
      arb_instance (fun (pat, seed) ->
        let prog = parse_gen pat seed in
        List.for_all
          (fun (r : Check.report) ->
            Check.verdict_ok r.transform r.verdict
            || QCheck.Test.fail_reportf "%s (%d sites): %s"
                 (Check.transform_name r.transform)
                 r.sites
                 (Check.verdict_str r.verdict))
          (Check.check_program prog));
  ]

(* {1 Fault injection and shrinking} *)

let inject_tests =
  [
    tc "corrupt changes the program" (fun () ->
        let p = parse_gen Check.Genprog.Dense 0 in
        Alcotest.(check bool) "differs" false
          (Minic.Ast.equal_program p (Check.Inject.corrupt p)));
    tc "injected fault is caught by the oracle" (fun () ->
        let prog = parse_gen Check.Genprog.Dense 0 in
        match
          Check.check_program ~inject:true ~transforms:[ Check.Streaming ] prog
        with
        | [ { verdict = Check.Diverged _; _ } ] -> ()
        | [ r ] ->
            Alcotest.failf "expected divergence, got %s"
              (Check.verdict_str r.verdict)
        | _ -> Alcotest.fail "expected one report");
    tc "minimized counterexample still diverges and is no larger" (fun () ->
        let prog = parse_gen Check.Genprog.Dense 0 in
        let small =
          Check.minimize_diverging ~inject:true Check.Streaming prog
        in
        Alcotest.(check bool) "still diverges" true
          (Check.diverges ~inject:true Check.Streaming small);
        Alcotest.(check bool) "no larger" true
          (Check.Shrink.count_stmts small <= Check.Shrink.count_stmts prog));
  ]

let shrink_tests =
  [
    prop "delete_nth strictly shrinks in-range candidates" ~count:60
      arb_instance (fun (pat, seed) ->
        let prog = parse_gen pat seed in
        let n = Check.Shrink.count_stmts prog in
        n = 0
        || List.for_all
             (fun k ->
               Check.Shrink.count_stmts (Check.Shrink.delete_nth prog k) < n)
             [ 0; n / 2; n - 1 ]);
    prop "delete_nth out of range is the identity" ~count:40 arb_instance
      (fun (pat, seed) ->
        let prog = parse_gen pat seed in
        Minic.Ast.equal_program prog
          (Check.Shrink.delete_nth prog (Check.Shrink.count_stmts prog)));
    prop "replace_lit v->v is the identity" ~count:40 arb_instance
      (fun (pat, seed) ->
        let prog = parse_gen pat seed in
        List.for_all
          (fun v ->
            Minic.Ast.equal_program prog (Check.Shrink.replace_lit prog v v))
          (Check.Shrink.int_literals prog));
  ]

(* {1 Corpus recording} *)

let corpus_tests =
  [
    tc "record writes once and replays" (fun () ->
        let dir = Filename.temp_dir "comp_check" "corpus" in
        let prog = parse_gen Check.Genprog.Dense 3 in
        let p1 = Check.Corpus.record ~dir ~note:"unit test" prog in
        let p2 = Check.Corpus.record ~dir prog in
        Alcotest.(check string) "idempotent path" p1 p2;
        (match Check.Corpus.entries ~dir with
        | [ e ] -> Alcotest.(check string) "listed" p1 e
        | es -> Alcotest.failf "expected 1 entry, got %d" (List.length es));
        let replayed = parse (In_channel.with_open_text p1 In_channel.input_all) in
        Alcotest.(check bool) "round-trips" true
          (Minic.Ast.equal_program prog replayed));
    tc "entries of a missing directory is empty" (fun () ->
        Alcotest.(check (list string)) "empty" []
          (Check.Corpus.entries ~dir:"/nonexistent/comp_check"));
  ]

(* {1 Metamorphic cost-model checks} *)

let arb_block_params =
  QCheck.make
    ~print:(fun (p : Transforms.Block_size.params) ->
      Printf.sprintf "D=%g C=%g K=%g" p.transfer_s p.compute_s p.launch_s)
    QCheck.Gen.(
      let* d = float_range 0.001 10. in
      let* c = float_range 0. 5. in
      let* k = float_range 0.00001 0.1 in
      return { Transforms.Block_size.transfer_s = d; compute_s = c; launch_s = k })

let metamorphic_tests =
  [
    prop "schedules conserve bytes and respect pipelining bounds" ~count:150
      Gen.arb_plan (fun (shape, strat) ->
        match Check.Metamorphic.check_plan shape strat with
        | Ok () -> true
        | Error e -> QCheck.Test.fail_report e);
    prop "block-count model is internally consistent" ~count:150
      arb_block_params (fun p ->
        match Check.Metamorphic.check_block_model p with
        | Ok () -> true
        | Error e -> QCheck.Test.fail_report e);
  ]

let suite =
  oracle_tests @ gen_tests @ diff_tests @ inject_tests @ shrink_tests
  @ corpus_tests @ metamorphic_tests
