(* Inter-offload data residency (lib/residency): the legality corpus
   — one fixture per invalidation reason, each refusal counted — the
   positive hoist/elide fixture, the interaction with the fault model
   (a device reset re-charges exactly the elided cells), the
   metamorphic relations, and differential validation over the
   generator families under both engines. *)

open Helpers

let read path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus name = read (Filename.concat "corpus" name)

let typed src =
  let prog = parse src in
  (match Minic.Typecheck.check_program prog with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "typecheck: %s" e);
  prog

let engines = [ Minic.Interp.Reference; Minic.Interp.Compiled ]

(* The residency oracle: rewritten and original must be
   indistinguishable (output, return value, final globals) under both
   engines. *)
let assert_equiv name prog prog' =
  List.iter
    (fun engine ->
      match Check.equiv ~engine prog prog' with
      | Check.Equal | Check.Both_failed _ -> ()
      | v ->
          Alcotest.failf "%s [%s]: residency changed behaviour: %s\n%s" name
            (Minic.Interp.engine_name engine)
            (Check.verdict_str v)
            (Minic.Pretty.program_to_string prog'))
    engines

let transform_counted prog =
  let obs = Obs.create () in
  let prog', sites = Residency.transform ~obs prog in
  (prog', sites, obs)

let elides obs =
  Obs.count obs "residency.elide.in" + Obs.count obs "residency.elide.inout"

(* One legality fixture: the rewrite must elide nothing, count the
   named reason at least [times] times, and preserve behaviour. *)
let refusal ~file ~reason ~times =
  tc (Printf.sprintf "residency refuses on %s" file) (fun () ->
      let prog = typed (corpus file) in
      let prog', _, obs = transform_counted prog in
      Alcotest.(check int) "nothing elided" 0 (elides obs);
      Alcotest.(check int) "no hoists" 0 (Obs.count obs "residency.hoist");
      let n = Obs.count obs reason in
      if n < times then
        Alcotest.failf "expected %s >= %d, got %d; report:\n%s" reason times n
          (Residency.report obs);
      assert_equiv file prog prog')

let run_compiled prog =
  match Minic.Compile_eval.run ~engine:Minic.Interp.Compiled prog with
  | Ok o -> o
  | Error e -> Alcotest.failf "run: %s" e

let resident_cells (o : Minic.Interp.outcome) =
  List.fold_left
    (fun acc e ->
      match e with Minic.Interp.Ev_resident { cells } -> acc + cells | _ -> acc)
    0 o.Minic.Interp.events

let metamorphic name = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" name msg

let parse_gen pat seed = parse (Check.Genprog.generate pat ~seed)

let suite =
  [
    (* --- the legality corpus: one counted reason per fixture --- *)
    refusal ~file:"res_hostwrite.mc" ~reason:"residency.invalidate.host_write"
      ~times:1;
    refusal ~file:"res_aliased.mc" ~reason:"residency.refuse.aliased_section"
      ~times:1;
    refusal ~file:"res_underdecl.mc" ~reason:"residency.refuse.under_declared"
      ~times:2;
    (* --- the positive fixture: loop-invariant transfers hoist --- *)
    tc "res_reset_midloop hoists both transfers and elides every \
        iteration's copies"
      (fun () ->
        let prog = typed (corpus "res_reset_midloop.mc") in
        let prog', sites, obs = transform_counted prog in
        Alcotest.(check int) "sites" 4 sites;
        Alcotest.(check int) "elided in()" 1 (Obs.count obs "residency.elide.in");
        Alcotest.(check int)
          "elided inout()" 1
          (Obs.count obs "residency.elide.inout");
        Alcotest.(check int) "hoists" 2 (Obs.count obs "residency.hoist");
        assert_equiv "res_reset_midloop" prog prog';
        let a = run_compiled prog and b = run_compiled prog' in
        Alcotest.(check int) "h2d cells drop 3x" 12 b.stats.cells_h2d;
        Alcotest.(check int) "oracle h2d" 36 a.stats.cells_h2d;
        Alcotest.(check int)
          "copy-backs survive" a.stats.cells_d2h b.stats.cells_d2h;
        Alcotest.(check int) "offload count unchanged" a.stats.offloads
          b.stats.offloads;
        (* every elided kernel depends on 12 untransferred device
           cells: x[0:8] + y[0:4] *)
        Alcotest.(check int) "resident cells" 36 (resident_cells b);
        Alcotest.(check int) "oracle has none" 0 (resident_cells a));
    tc "check_residency accepts the positive fixture" (fun () ->
        let r = Check.check_residency (typed (corpus "res_reset_midloop.mc")) in
        if not (Check.residency_ok r) then
          Alcotest.failf "contract: %s"
            (Option.value r.Check.rr_contract ~default:"verdict");
        Alcotest.(check bool)
          "h2d reduced" true
          (r.Check.rr_res_h2d < r.Check.rr_orig_h2d);
        Alcotest.(check int) "d2h equal" r.Check.rr_orig_d2h r.Check.rr_res_d2h);
    (* --- regression: facts must not survive a while body that can
       exit early (the break path skips the re-establishing offload) --- *)
    tc "break inside while kills loop-exit facts" (fun () ->
        let src =
          {|
int main(void) {
  int n = 4;
  int a[4];
  int s[1];
  int t[1];
  int c = 3;
  for (i = 0; i < n; i++) {
    a[i] = i + 1;
  }
  s[0] = 0;
  while (c > 0) {
    a[0] = a[0] + 1;
    if (c == 1) {
      break;
    }
    #pragma offload target(mic:0) in(a[0:n]) inout(s[0:1])
    {
      s[0] = s[0] + a[0];
    }
    c = c - 1;
  }
  #pragma offload target(mic:0) in(a[0:n]) inout(t[0:1])
  {
    t[0] = a[0] + a[3];
  }
  print_int(s[0]);
  print_int(t[0]);
  return 0;
}
|}
        in
        let prog = typed src in
        let prog', _, obs = transform_counted prog in
        Alcotest.(check int) "nothing elided" 0 (elides obs);
        assert_equiv "break-in-while" prog prog');
    (* --- fault interaction: a reset during an elided kernel
       re-charges exactly the cells the kernel relied on --- *)
    tc "reset re-transfers exactly the resident set" (fun () ->
        let prog = typed (corpus "res_reset_midloop.mc") in
        let prog', _, _ = transform_counted prog in
        let events = (run_compiled prog').events in
        let cfg = Machine.Config.paper_default in
        let clean = Runtime.Replay.schedule cfg events in
        let kernel =
          match
            List.filter
              (fun (p : Machine.Engine.placed) ->
                p.task.Machine.Task.reset_xfer_s > 0.)
              clean.Machine.Engine.placed
          with
          | k :: _ -> k
          | [] -> Alcotest.fail "no kernel carries a reset re-transfer cost"
        in
        (* the obligation is priced as one h2d of the 12 elided cells *)
        let bytes =
          12. *. Runtime.Replay.default_params.Runtime.Replay.bytes_per_cell
        in
        let expected = Machine.Cost.transfer_time cfg Machine.Cost.H2d ~bytes in
        Alcotest.(check bool)
          "reset_xfer_s = price of the live set" true
          (float_close kernel.task.Machine.Task.reset_xfer_s expected);
        (* reset mid-kernel: recovery pays the re-transfer *)
        let at = (kernel.start +. kernel.finish) /. 2. in
        let spec =
          match Fault.parse (Printf.sprintf "reset@%.9f" at) with
          | Ok s -> s
          | Error e -> Alcotest.failf "fault spec: %s" (Fault.error_message e)
        in
        let obs = Obs.create () in
        let fcfg = Machine.Config.with_faults cfg spec in
        let faulted = Runtime.Replay.schedule ~obs fcfg events in
        Alcotest.(check int)
          "one resident re-transfer" 1
          (Obs.count obs "residency.reset_retransfers");
        Alcotest.(check bool)
          "recovery includes the re-transfer" true
          (faulted.Machine.Engine.makespan
          >= clean.Machine.Engine.makespan +. expected -. 1e-12));
    tc "device death after elision still falls back to the CPU" (fun () ->
        let prog = typed (corpus "res_reset_midloop.mc") in
        let prog', _, _ = transform_counted prog in
        let events = (run_compiled prog').events in
        let spec =
          match Fault.parse "kill@0,dead-after=1" with
          | Ok s -> s
          | Error e -> Alcotest.failf "fault spec: %s" (Fault.error_message e)
        in
        let fcfg = Machine.Config.with_faults Machine.Config.paper_default spec in
        let r = Runtime.Replay.schedule_recovered fcfg events in
        Alcotest.(check bool) "fell back" true r.Runtime.Replay.r_fellback;
        Alcotest.(check bool)
          "completed" true
          (r.Runtime.Replay.r_result.Machine.Engine.makespan > 0.));
    (* --- metamorphic relations --- *)
    tc "pragma widening preserves the contract (corpus)" (fun () ->
        List.iter
          (fun file ->
            metamorphic file
              (Check.check_residency_widened (typed (corpus file))))
          [
            "res_hostwrite.mc";
            "res_aliased.mc";
            "res_underdecl.mc";
            "res_reset_midloop.mc";
            "fig06_streamcluster.mc";
          ]);
    tc "inserted host write restores transfers (corpus)" (fun () ->
        List.iter
          (fun file ->
            metamorphic file
              (Check.check_residency_hostwrite (typed (corpus file))))
          [
            "res_hostwrite.mc";
            "res_aliased.mc";
            "res_underdecl.mc";
            "res_reset_midloop.mc";
            "fig06_streamcluster.mc";
          ]);
    tc "host write into the elision chain forces the transfer back"
      (fun () ->
        (* the positive fixture elides in(x); writing x inside the
           t-loop must bring its per-iteration transfer back *)
        let prog = typed (corpus "res_reset_midloop.mc") in
        let mutated =
          match Check.insert_host_write prog with
          | Some p -> p
          | None -> Alcotest.fail "no insertion site found"
        in
        let _, _, obs0 = transform_counted prog in
        let mutated', _, obs1 = transform_counted mutated in
        Alcotest.(check bool)
          "fewer elisions" true
          (elides obs1 < elides obs0);
        Alcotest.(check bool)
          "invalidation counted" true
          (Obs.count obs1 "residency.invalidate.host_write" >= 1);
        assert_equiv "host-write-chain" mutated mutated');
    (* --- differential validation over the generator families --- *)
    prop "check_residency holds over the generator families" ~count:60
      QCheck.(
        make
          Gen.(pair (oneofl Check.Genprog.all_patterns) (int_bound 999)))
      (fun (pat, seed) ->
        let prog = parse_gen pat seed in
        List.for_all
          (fun engine ->
            let r = Check.check_residency ~engine prog in
            Check.residency_ok r
            ||
            (Printf.eprintf "pattern %s seed %d [%s]: %s\n"
               (Check.Genprog.pattern_name pat)
               seed
               (Minic.Interp.engine_name engine)
               (Option.value r.Check.rr_contract
                  ~default:(Check.verdict_str r.Check.rr_verdict));
             false))
          engines);
    prop "metamorphic relations hold over the generator families" ~count:40
      QCheck.(
        make
          Gen.(pair (oneofl Check.Genprog.all_patterns) (int_bound 999)))
      (fun (pat, seed) ->
        let prog = parse_gen pat seed in
        match
          ( Check.check_residency_widened prog,
            Check.check_residency_hostwrite prog )
        with
        | Ok (), Ok () -> true
        | Error m, _ | _, Error m ->
            Printf.eprintf "pattern %s seed %d: %s\n"
              (Check.Genprog.pattern_name pat)
              seed m;
            false);
    tc "multi-offload family actually exercises elision" (fun () ->
        (* the applicability table pins Multi_offload as residency-
           applicable; make sure the rewrite really fires there *)
        let hits = ref 0 in
        for seed = 0 to 9 do
          let _, sites, _ =
            transform_counted (parse_gen Check.Genprog.Multi_offload seed)
          in
          if sites > 0 then incr hits
        done;
        Alcotest.(check bool) "fires on most seeds" true (!hits >= 5));
  ]
