open Helpers
module Sm = Transforms.Shared_mem

(** The Section-V transformation: offloads whose clauses carry
    pointer-based structures are rewritten to preallocated device
    buffers + translated DMA.  Its headline property is the paper's:
    it {e enables} executions that previously failed — the untouched
    program faults when the device dereferences a host pointer. *)

(* a self-contained pointer structure: each record points at a
   partner record in the same array; the kernel reads through it *)
let chain_src ~inout =
  Printf.sprintf
    {|struct rec {
        float w;
        struct rec* buddy;
      };
      int main(void) {
        int n = 10;
        struct rec rs[10];
        float out[10];
        for (i = 0; i < n; i++) {
          rs[i].w = (float)i + 0.5;
        }
        for (i = 0; i < n; i++) {
          rs[i].buddy = &rs[(i * 3 + 1) %% 10];
        }
        #pragma offload target(mic:0) %s out(out[0:n])
        #pragma omp parallel for
        for (i = 0; i < n; i++) {
          %s
        }
        for (i = 0; i < n; i++) { print_float(out[i]); }
        %s
        return 0;
      }|}
    (if inout then "inout(rs[0:n])" else "in(rs[0:n])")
    (if inout then
       "rs[i].w = rs[i].w + 1.0;\n          out[i] = rs[i].buddy->w;"
     else "out[i] = rs[i].w * 2.0 + rs[i].buddy->w;")
    (if inout then
       "for (i = 0; i < n; i++) { print_float(rs[i].w); }"
     else "")

let transform_exn prog =
  match Sm.transform prog (first_offloaded prog) with
  | Ok p -> p
  | Error e -> Alcotest.failf "shared_mem failed: %a" Sm.pp_failure e

(* differential coverage through the [Check] oracle: every generated
   pointer-chain program must come out of the shared-memory lowering
   either observationally equal (kernel never dereferences) or
   *enabled* (the untouched program faults on a host pointer, the
   lowered one runs) — and both modes must actually occur *)
let arb_chain_seed =
  QCheck.make
    ~print:(fun s ->
      Printf.sprintf "seed=%d\n%s"
        s
        (Check.Genprog.generate Check.Genprog.Chain ~seed:s))
    QCheck.Gen.(int_bound 999)

let oracle_tests =
  [
    prop "oracle: shared lowering is equivalent or enabling" ~count:50
      arb_chain_seed (fun seed ->
        let prog = parse (Check.Genprog.generate Check.Genprog.Chain ~seed) in
        match Check.check_program ~transforms:[ Check.Shared ] prog with
        | [ (r : Check.report) ] ->
            (r.sites > 0
            || QCheck.Test.fail_report "chain pattern must be rewritable")
            && (Check.verdict_ok Check.Shared r.verdict
               || QCheck.Test.fail_report (Check.verdict_str r.verdict))
        | _ -> QCheck.Test.fail_report "expected one report");
    tc "oracle: both the equal and the enabling mode occur" (fun () ->
        let verdicts =
          List.init 40 (fun seed ->
            let prog =
              parse (Check.Genprog.generate Check.Genprog.Chain ~seed)
            in
            match Check.check_program ~transforms:[ Check.Shared ] prog with
            | [ r ] -> r.Check.verdict
            | _ -> Alcotest.fail "expected one report")
        in
        let has p = List.exists p verdicts in
        Alcotest.(check bool)
          "some chain kernels run unchanged" true
          (has (function Check.Equal -> true | _ -> false));
        Alcotest.(check bool)
          "some chain kernels only run once lowered" true
          (has (function Check.Orig_failed _ -> true | _ -> false)));
  ]

let suite =
  oracle_tests
  @
  [
    tc "pointer-based clauses are detected" (fun () ->
        let prog = parse (chain_src ~inout:false) in
        Alcotest.(check bool)
          "applicable" true
          (Sm.applicable prog (first_offloaded prog)));
    tc "value-only clauses are not targets" (fun () ->
        let prog = parse (Gen.streamable_program ~n:8 ~seed:0) in
        Alcotest.(check bool)
          "not applicable" false
          (Sm.applicable prog (first_offloaded prog)));
    tc "the untouched program faults on the device" (fun () ->
        match Minic.Interp.run (parse (chain_src ~inout:false)) with
        | Error msg ->
            Alcotest.(check bool)
              "host-pointer fault" true
              (contains ~sub:"not transferred" msg)
        | Ok _ -> Alcotest.fail "expected a device fault");
    tc "the rewrite enables execution (the paper's claim)" (fun () ->
        let prog = parse (chain_src ~inout:false) in
        let prog' = transform_exn prog in
        (match Minic.Typecheck.check_program prog' with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "rewritten program ill-typed: %s" e);
        let out = Minic.Interp.run_output prog' in
        (* ground truth computed in OCaml *)
        let w i = float_of_int i +. 0.5 in
        let buddy i = ((i * 3) + 1) mod 10 in
        let expected =
          String.concat ""
            (List.init 10 (fun i ->
                 Printf.sprintf "%.6g\n" ((w i *. 2.0) +. w (buddy i))))
        in
        Alcotest.(check string) "kernel result" expected out);
    tc "inout structures are mutated and translated back" (fun () ->
        let prog = parse (chain_src ~inout:true) in
        let prog' = transform_exn prog in
        let out = Minic.Interp.run_output prog' in
        let w i = float_of_int i +. 0.5 in
        let buddy i = ((i * 3) + 1) mod 10 in
        (* out[i] reads buddy->w: iteration order means some buddies are
           already incremented — the interpreter executes the parallel
           loop sequentially, which is a legal schedule; ground truth
           replays the same schedule *)
        let ws = Array.init 10 w in
        let outs =
          Array.init 10 (fun i ->
              ws.(i) <- ws.(i) +. 1.0;
              ws.(buddy i))
        in
        let expected =
          String.concat ""
            (List.map (Printf.sprintf "%.6g\n")
               (Array.to_list outs @ Array.to_list ws))
        in
        Alcotest.(check string) "results and write-back" expected out);
    tc "pure pointer outputs are refused" (fun () ->
        let src =
          {|struct rec {
              float w;
              struct rec* buddy;
            };
            int main(void) {
              int n = 4;
              struct rec rs[4];
              #pragma offload target(mic:0) out(rs[0:n])
              #pragma omp parallel for
              for (i = 0; i < n; i++) {
                rs[i].w = 1.0;
              }
              return 0;
            }|}
        in
        let prog = parse src in
        match Sm.transform prog (first_offloaded prog) with
        | Error (Sm.Pointer_output "rs") -> ()
        | Error e -> Alcotest.failf "wrong failure: %a" Sm.pp_failure e
        | Ok _ -> Alcotest.fail "expected Pointer_output");
    tc "full pipeline applies the rewrite automatically" (fun () ->
        let prog = parse (chain_src ~inout:false) in
        let prog', applied = Comp.optimize prog in
        Alcotest.(check int) "rewritten" 1 applied.Comp.shared_rewritten;
        match Minic.Interp.run prog' with
        | Ok _ -> ()
        | Error e -> Alcotest.failf "pipeline output fails: %s" e);
    tc "explain reports pointer-based clauses" (fun () ->
        let s = Comp.explain (parse (chain_src ~inout:false)) in
        Alcotest.(check bool)
          "mentions shared memory" true
          (contains ~sub:"shared memory" s));
    tc "cells_of_ty matches the interpreter layout" (fun () ->
        let prog =
          parse
            {|struct inner { int a; int b; };
              struct outer { float x; struct inner pair; int* p; };
              int main(void) { return 0; }|}
        in
        Alcotest.(check (option int))
          "inner" (Some 2)
          (Sm.cells_of_ty prog (Minic.Ast.Tstruct "inner"));
        Alcotest.(check (option int))
          "outer" (Some 4)
          (Sm.cells_of_ty prog (Minic.Ast.Tstruct "outer"));
        Alcotest.(check (option int))
          "array of outer" (Some 12)
          (Sm.cells_of_ty prog
             (Minic.Ast.Tarray
                (Minic.Ast.Tstruct "outer", Some (Minic.Ast.Int_lit 3)))));
  ]
