`compc tune` searches the (devices, streams, nblocks) space per
workload and reports the makespan-optimal point, the speedup over the
default single-device configuration, and the search traffic:

  $ compc tune blackscholes --devices 2 --streams 2
  auto-tune: devices<=2 streams<=2
    workload       best config                           makespan      default  speedup  explored  pruned
    blackscholes   devices=2,streams=2,nblocks=4         0.036809     0.092538    2.51x        44       1
  tune.explored=44 tune.pruned=1 tune.cache.hits=0 tune.cache.misses=44 tune.block_cache.hits=13 tune.block_cache.misses=7

The report is deterministic at any pool width (the @tune alias diffs
--jobs 1 against --jobs 2); here width 4 must reproduce the same bytes:

  $ compc tune blackscholes --devices 2 --streams 2 --jobs 4
  auto-tune: devices<=2 streams<=2
    workload       best config                           makespan      default  speedup  explored  pruned
    blackscholes   devices=2,streams=2,nblocks=4         0.036809     0.092538    2.51x        44       1
  tune.explored=44 tune.pruned=1 tune.cache.hits=0 tune.cache.misses=44 tune.block_cache.hits=13 tune.block_cache.misses=7

A heterogeneous fleet spec scales individual devices; with device 1 at
5% compute and bandwidth the tuner keeps the work off it, preferring a
single fast device over a lopsided pair:

  $ compc tune blackscholes --machine "devices=2,streams=2,dev1:cores=0.05,bw=0.05"
  auto-tune: devices<=2 streams<=2 dev1:cores=0.05,dev1:bw=0.05
    workload       best config                           makespan      default  speedup  explored  pruned
    blackscholes   devices=1,streams=1,nblocks=1         0.070687     0.092538    1.31x        44       1
  tune.explored=44 tune.pruned=1 tune.cache.hits=0 tune.cache.misses=44 tune.block_cache.hits=13 tune.block_cache.misses=7

Input errors are usage errors (exit 2), never crashes.  An unknown
workload name:

  $ compc tune nosuch
  unknown workload nosuch (known: blackscholes streamcluster ferret dedup freqmine kmeans cg cfd nn srad bfs hotspot)
  [2]

No workloads at all:

  $ compc tune
  tune: name at least one workload or pass --all (known: blackscholes streamcluster ferret dedup freqmine kmeans cg cfd nn srad bfs hotspot)
  [2]

A malformed machine spec is a typed parse error naming the offending
token:

  $ compc tune blackscholes --machine "devices=2,dev7:cores=0.5"
  machine: device index out of range (devices=2) in "dev7"
  [2]

  $ compc tune blackscholes --machine "devices=2,cores=0.5"
  machine: cores=/bw= needs a devN: prefix (or a preceding devN: clause) in "cores=0.5"
  [2]

And the two ways of naming a fleet are mutually exclusive:

  $ compc tune blackscholes --machine "devices=2" --devices 3
  tune: --machine and --devices/--streams are mutually exclusive
  [2]
