(* Fault-model runtime: injected PCIe/COI/device failures with retry,
   timeout, and CPU-fallback recovery. *)

open Helpers
open Runtime

let cfg = Machine.Config.paper_default

let parse_ok s =
  match Fault.parse s with
  | Ok spec -> spec
  | Error e -> Alcotest.failf "parse %S: %s" s (Fault.error_message e)

(* n sequential h2d transfers of [dur] seconds each, chained *)
let chain_tasks n dur =
  let b = Machine.Task.builder () in
  let prev = ref [] in
  for i = 0 to n - 1 do
    let id =
      Machine.Task.add b ~deps:!prev
        ~label:(Printf.sprintf "xfer%d" i)
        ~resource:(Machine.Task.Pcie_h2d 0) ~kind:Obs.H2d ~bytes:1e6
        ~duration:dur ()
    in
    prev := [ id ]
  done;
  Machine.Task.tasks b

let events_simple =
  [
    Minic.Interp.Ev_transfer { h2d_cells = 10; d2h_cells = 0; signal = None };
    Minic.Interp.Ev_kernel { work = 100; wait = None };
    Minic.Interp.Ev_transfer { h2d_cells = 0; d2h_cells = 10; signal = None };
  ]

let events_signalled =
  [
    Minic.Interp.Ev_transfer { h2d_cells = 10; d2h_cells = 0; signal = Some 1 };
    Minic.Interp.Ev_kernel { work = 100; wait = Some 1 };
    Minic.Interp.Ev_transfer { h2d_cells = 0; d2h_cells = 10; signal = None };
  ]

let suite =
  [
    (* --- spec grammar --- *)
    tc "parse/to_string round-trips" (fun () ->
        let s =
          "seed=9,xfer=0.25,xfer@3,xfer@5*2,kill@7,drop@1,delay@2:0.001,\
           reset@0.5,myo-stall=0.1:0.002,retries=4,backoff=0.0002:0.01,\
           timeout=0.02,dead-after=2,no-fallback,slowdown=8,reset-cost=0.1"
        in
        let spec = parse_ok s in
        Alcotest.(check int) "seed" 9 spec.Fault.seed;
        Alcotest.(check bool) "kill" true (List.mem 7 spec.Fault.kill);
        Alcotest.(check int) "retries" 4 spec.Fault.policy.Fault.max_retries;
        Alcotest.(check bool)
          "no-fallback" false spec.Fault.policy.Fault.cpu_fallback;
        let spec' = parse_ok (Fault.to_string spec) in
        Alcotest.(check bool) "round-trip" true (spec = spec'));
    tc "parse rejects junk with a typed error naming the token" (fun () ->
        List.iter
          (fun (s, tok) ->
            match Fault.parse s with
            | Ok _ -> Alcotest.failf "accepted %S" s
            | Error e ->
                Alcotest.(check string)
                  (Printf.sprintf "offending token of %S" s)
                  tok e.Fault.token;
                Alcotest.(check bool)
                  (Printf.sprintf "message for %S quotes the token" s)
                  true
                  (contains ~sub:tok (Fault.error_message e)))
          [
            ("xfer", "xfer");
            ("xfer=2", "xfer=2");
            ("kill@x", "kill@x");
            ("frobnicate=1", "frobnicate=1");
            ("delay@1", "delay@1");
            ("xfer=-1", "xfer=-1");
            (* a bad clause buried in a good spec is still pinpointed *)
            ("xfer=0.1,junk!,kill@2", "junk!");
            (* policy/seed clauses are global: rejected under devN: *)
            ("dev1:seed=3", "dev1:seed=3");
            ("kill@0,dev2:retries=9", "dev2:retries=9");
            (* bad sub-clause errors name the full prefixed token *)
            ("dev0:kill@x", "dev0:kill@x");
          ]);
    prop "fault spec grammar round-trips through to_string" ~count:300
      (QCheck.make ~print:Fun.id
         QCheck.Gen.(
           let base_clause =
             oneof
               [
                 map (Printf.sprintf "seed=%d") (int_range 1 99);
                 map (Printf.sprintf "xfer=0.%02d") (int_range 1 99);
                 map (Printf.sprintf "xfer@%d") (int_range 0 9);
                 map2
                   (Printf.sprintf "xfer@%d*%d")
                   (int_range 0 9) (int_range 1 3);
                 map (Printf.sprintf "kill@%d") (int_range 0 9);
                 map (Printf.sprintf "drop@%d") (int_range 0 9);
                 map2
                   (Printf.sprintf "delay@%d:0.00%d")
                   (int_range 0 9) (int_range 1 9);
                 map (Printf.sprintf "reset@0.%02d") (int_range 1 99);
                 map2
                   (Printf.sprintf "myo-stall=0.%d:0.00%d")
                   (int_range 1 9) (int_range 1 9);
                 map (Printf.sprintf "retries=%d") (int_range 0 5);
                 map (Printf.sprintf "dead-after=%d") (int_range 1 4);
                 return "no-fallback";
               ]
           in
           let dev_clause =
             map2
               (Printf.sprintf "dev%d:%s")
               (int_range 0 3)
               (oneof
                  [
                    map (Printf.sprintf "xfer=0.%02d") (int_range 1 99);
                    map (Printf.sprintf "xfer@%d") (int_range 0 9);
                    map (Printf.sprintf "kill@%d") (int_range 0 9);
                    map (Printf.sprintf "drop@%d") (int_range 0 9);
                    map (Printf.sprintf "reset@0.%02d") (int_range 1 99);
                  ])
           in
           map2
             (fun bs ds -> String.concat "," (bs @ ds))
             (list_size (int_range 0 4) base_clause)
             (list_size (int_range 0 4) dev_clause)))
      (fun s ->
        match Fault.parse s with
        | Error e ->
            QCheck.Test.fail_reportf "generated spec %S rejected: %s" s
              (Fault.error_message e)
        | Ok spec -> (
            let printed = Fault.to_string spec in
            match Fault.parse printed with
            | Error e ->
                QCheck.Test.fail_reportf "printed spec %S rejected: %s"
                  printed (Fault.error_message e)
            | Ok spec' -> spec = spec'));
    tc "devN: clauses refine only their device" (fun () ->
        let spec = parse_ok "seed=3,xfer@1,dev1:kill@0,dev2:xfer=0.5" in
        Alcotest.(check int) "devices mentioned" 3
          (Fault.devices_mentioned spec);
        let s0 = Fault.spec_for_dev spec 0 in
        let s1 = Fault.spec_for_dev spec 1 in
        let s2 = Fault.spec_for_dev spec 2 in
        Alcotest.(check (list int)) "dev0 not killed" [] s0.Fault.kill;
        Alcotest.(check bool) "dev1 killed" true (List.mem 0 s1.Fault.kill);
        Alcotest.(check bool)
          "base clause applies to dev1 too" true
          (List.mem_assoc 1 s1.Fault.xfer_fail);
        Alcotest.(check (float 1e-12)) "dev2 xfer prob" 0.5 s2.Fault.xfer_prob;
        Alcotest.(check (float 1e-12))
          "dev0 keeps no probability" 0. s0.Fault.xfer_prob;
        let spec' = parse_ok (Fault.to_string spec) in
        Alcotest.(check bool) "devN: round-trip" true (spec = spec'));
    tc "empty spec is none" (fun () ->
        Alcotest.(check bool) "none" true (Fault.is_none (parse_ok ""));
        Alcotest.(check bool) "not none" false (Fault.is_none (parse_ok "xfer=0.5")));
    (* --- determinism --- *)
    tc "draws are deterministic per (seed, index)" (fun () ->
        let spec = parse_ok "xfer=0.3,seed=11" in
        let outcomes plan =
          List.init 50 (fun _ -> (Fault.next_transfer plan).Fault.xr_failures)
        in
        let a = outcomes (Fault.plan spec) in
        let b = outcomes (Fault.plan spec) in
        Alcotest.(check (list int)) "same seed, same faults" a b;
        let c = outcomes (Fault.plan (parse_ok "xfer=0.3,seed=12")) in
        Alcotest.(check bool) "different seed differs" true (a <> c));
    (* --- COI signal faults (satellite: re-signal keeps delivered time) --- *)
    tc "dropped signal + re-signal keeps the delivered time" (fun () ->
        let plan = Fault.plan (parse_ok "drop@3") in
        let ch = Coi.create ~plan ~signal_cost:0. ~wait_cost:0. () in
        ignore (Coi.signal ch ~tag:3 ~time:4.0);
        (* the drop consumed the first signal: not delivered *)
        Alcotest.(check bool) "dropped not delivered" false (Coi.signalled ch 3);
        ignore (Coi.signal ch ~tag:3 ~time:10.0);
        Alcotest.(check bool) "re-signal delivered" true (Coi.signalled ch 3);
        (* the waiter sees the re-signal's own time, not the dropped one *)
        Alcotest.(check (float 1e-12))
          "delivered time is the re-signal's" 10.0
          (Coi.wait ch ~tag:3 ~time:0.0));
    tc "delayed signal delivers late; earliest delivery wins" (fun () ->
        let plan = Fault.plan (parse_ok "delay@5:2.5") in
        let ch = Coi.create ~plan ~signal_cost:0. ~wait_cost:0. () in
        ignore (Coi.signal ch ~tag:5 ~time:1.0);
        Alcotest.(check (float 1e-12))
          "delivered at time + delay" 3.5
          (Coi.wait ch ~tag:5 ~time:0.0);
        (* a second, on-time signal earlier than the delayed delivery *)
        ignore (Coi.signal ch ~tag:5 ~time:2.0);
        Alcotest.(check (float 1e-12))
          "earliest delivery wins" 2.0
          (Coi.wait ch ~tag:5 ~time:0.0));
    tc "wait timeout is recoverable; no timeout deadlocks loudly" (fun () ->
        let obs = Obs.create () in
        let plan = Fault.plan ~obs (parse_ok "drop@9,timeout=0.25") in
        let ch = Coi.create ~obs ~plan () in
        ignore (Coi.signal ch ~tag:9 ~time:0.0);
        (match Coi.wait ch ~tag:9 ~time:1.0 with
        | exception Coi.Timeout { tag = 9; waited_s } ->
            Alcotest.(check (float 1e-12)) "waited the timeout" 0.25 waited_s
        | _ -> Alcotest.fail "expected Timeout");
        Alcotest.(check int) "timeout counted" 1 (Obs.count obs "fault.timeouts");
        (* without a plan or explicit timeout: the old loud deadlock *)
        let ch2 = Coi.create () in
        match Coi.wait ch2 ~tag:9 ~time:1.0 with
        | exception Coi.Never_signalled 9 -> ()
        | _ -> Alcotest.fail "expected Never_signalled");
    (* --- engine retry/recovery --- *)
    tc "single-block fault: only that block retransfers" (fun () ->
        let dur = 1e-3 in
        let tasks = chain_tasks 5 dur in
        let clean = (Machine.Engine.schedule tasks).Machine.Engine.makespan in
        let obs = Obs.create () in
        let spec = parse_ok "xfer@2" in
        let fleet = Fault.fleet ~obs ~devices:1 spec in
        let r = Machine.Engine.schedule ~obs ~faults:fleet tasks in
        Alcotest.(check int) "one retry" 1 (Obs.count obs "fault.retries");
        Alcotest.(check int) "one injection" 1 (Obs.count obs "fault.injected");
        (* a synthetic recovery task shows up as its own Retry phase *)
        let retry_spans =
          List.filter
            (fun (p : Machine.Engine.placed) ->
              p.Machine.Engine.task.Machine.Task.kind = Some Obs.Retry)
            r.Machine.Engine.placed
        in
        Alcotest.(check int) "one recovery span" 1 (List.length retry_spans);
        (* recovery retransfers one block (plus backoff), not the lot *)
        let p = spec.Fault.policy in
        let bound = clean +. dur +. p.Fault.backoff_ceiling_s in
        Alcotest.(check bool)
          (Printf.sprintf "makespan %.6f in (%.6f, %.6f]"
             r.Machine.Engine.makespan clean bound)
          true
          (r.Machine.Engine.makespan > clean
          && r.Machine.Engine.makespan <= bound +. 1e-12));
    prop "k forced faults cost between 0 and k*(block + backoff ceiling)"
      ~count:60
      QCheck.(
        pair
          (int_range 1 8)
          (small_list (pair (int_range 0 7) (int_range 1 3))))
      (fun (n, faults) ->
        (* distinct indices within range, failure counts <= max_retries
           so no round is exhausted and no reset is taken *)
        let faults =
          List.sort_uniq
            (fun (a, _) (b, _) -> compare a b)
            (List.filter (fun (i, _) -> i < n) faults)
        in
        let dur = 2e-4 in
        let tasks = chain_tasks n dur in
        let clean = (Machine.Engine.schedule tasks).Machine.Engine.makespan in
        let spec =
          { (parse_ok "") with Fault.xfer_fail = faults; seed = 99 }
        in
        let fleet = Fault.fleet ~devices:1 spec in
        let faulted =
          (Machine.Engine.schedule ~faults:fleet tasks).Machine.Engine.makespan
        in
        let k = List.fold_left (fun acc (_, f) -> acc + f) 0 faults in
        let ceiling = spec.Fault.policy.Fault.backoff_ceiling_s in
        faulted >= clean -. 1e-12
        && faulted
           <= clean +. (float_of_int k *. (dur +. ceiling)) +. 1e-12);
    tc "killed transfer exhausts retries and declares the device dead"
      (fun () ->
        let tasks = chain_tasks 3 1e-3 in
        let fleet = Fault.fleet ~devices:1 (parse_ok "kill@1,dead-after=1") in
        match Machine.Engine.schedule ~faults:fleet tasks with
        | exception Fault.Device_dead { failures; _ } ->
            (* max_retries + 1 attempts in the exhausted round *)
            Alcotest.(check int) "attempts" 4 failures
        | _ -> Alcotest.fail "expected Device_dead");
    tc "resets recover until dead-after rounds are exhausted" (fun () ->
        let tasks = chain_tasks 1 1e-3 in
        let obs = Obs.create () in
        (* retries=0: every failed attempt exhausts its round; the first
           two rounds each pay a reset, the third kills the device *)
        let fleet =
          Fault.fleet ~obs ~devices:1 (parse_ok "xfer@0*2,retries=0,dead-after=3")
        in
        let r = Machine.Engine.schedule ~obs ~faults:fleet tasks in
        Alcotest.(check int) "two resets" 2 (Obs.count obs "fault.resets");
        Alcotest.(check bool)
          "reset recovery time in makespan" true
          (r.Machine.Engine.makespan >= 2. *. 5e-2));
    (* --- one-shot reset is per plan instance, never per spec --- *)
    tc "each plan instance owns its one-shot reset" (fun () ->
        let spec = parse_ok "reset@0.5" in
        let p1 = Fault.plan spec and p2 = Fault.plan spec in
        (match Fault.take_reset p1 ~start:0. ~stop:1. with
        | Some (at, cost) ->
            Alcotest.(check (float 1e-12)) "p1 reset time" 0.5 at;
            Alcotest.(check bool) "positive recovery cost" true (cost > 0.)
        | None -> Alcotest.fail "p1 missed its reset");
        (match Fault.take_reset p1 ~start:0. ~stop:1. with
        | None -> ()
        | Some _ -> Alcotest.fail "p1's reset must be one-shot");
        (* the spec is immutable: p2's reset was not consumed by p1 *)
        match Fault.take_reset p2 ~start:0. ~stop:1. with
        | Some (at, _) ->
            Alcotest.(check (float 1e-12)) "p2 observes its own reset" 0.5 at
        | None -> Alcotest.fail "p2's reset was stolen by p1");
    tc "two engines sharing a spec each observe their own reset" (fun () ->
        (* regression: when reset consumption lived in the spec, the
           second of two runs sharing it sailed through unfaulted *)
        let spec = parse_ok "reset@0.0005" in
        let mk () =
          let b = Machine.Task.builder () in
          ignore
            (Machine.Task.add b ~label:"k"
               ~resource:(Machine.Task.Mic_exec (0, 0))
               ~kind:Obs.Kernel ~duration:1e-3 ());
          Machine.Task.tasks b
        in
        let clean = (Machine.Engine.schedule (mk ())).Machine.Engine.makespan in
        let faulted () =
          (Machine.Engine.schedule
             ~faults:(Fault.fleet ~devices:1 spec)
             (mk ()))
            .Machine.Engine.makespan
        in
        let m1 = faulted () in
        let m2 = faulted () in
        Alcotest.(check bool) "first engine pays the reset" true (m1 > clean);
        Alcotest.(check (float 1e-12)) "second engine pays it too" m1 m2);
    (* --- replay-level recovery --- *)
    tc "device death falls back to the CPU and completes" (fun () ->
        let spec = parse_ok "kill@0,dead-after=1" in
        let fcfg = Machine.Config.with_faults cfg spec in
        let r = Replay.schedule_recovered fcfg events_simple in
        Alcotest.(check bool) "fell back" true r.Replay.r_fellback;
        Alcotest.(check bool) "died" true (r.Replay.r_died_at <> None);
        Alcotest.(check bool)
          "completed with positive makespan" true
          (r.Replay.r_result.Machine.Engine.makespan > 0.));
    tc "no-fallback policy re-raises the death" (fun () ->
        let spec = parse_ok "kill@0,dead-after=1,no-fallback" in
        let fcfg = Machine.Config.with_faults cfg spec in
        match Replay.schedule_recovered fcfg events_simple with
        | exception Fault.Device_dead _ -> ()
        | _ -> Alcotest.fail "expected Device_dead to escape");
    tc "dropped replay signal burns the timeout, then completes" (fun () ->
        let clean =
          (Replay.schedule cfg events_signalled).Machine.Engine.makespan
        in
        let spec = parse_ok "drop@1,timeout=0.01" in
        let fcfg = Machine.Config.with_faults cfg spec in
        let r = Replay.schedule fcfg events_signalled in
        Alcotest.(check bool)
          "timeout adds delay" true
          (r.Machine.Engine.makespan >= clean +. 0.01 -. 1e-12));
    tc "recovery time is charged to the makespan (strategy layer)"
      (fun () ->
        let w = Workloads.Registry.find_exn "blackscholes" in
        let clean = Comp.simulate w Comp.Mic_optimized in
        let fcfg =
          Machine.Config.with_faults cfg (parse_ok "xfer@1,seed=5")
        in
        let t, r = Comp.simulate_recovered ~cfg:fcfg w Comp.Mic_optimized in
        Alcotest.(check bool) "no fallback needed" false
          r.Schedule_gen.rec_fellback;
        Alcotest.(check bool) "slower than clean" true (t > clean);
        Alcotest.(check bool)
          "cheaper than a second full run" true
          (t < 2. *. clean));
    (* --- MYO stalls --- *)
    tc "page-service stalls are injected and timed" (fun () ->
        let spec = parse_ok "myo-stall=1:0.005" in
        let plan = Fault.plan spec in
        let t = Myo.create ~plan cfg.Machine.Config.myo in
        let addr = Result.get_ok (Myo.alloc t 4096) in
        ignore (Myo.touch t ~addr ~len:4096);
        let st = Myo.stats t in
        Alcotest.(check int) "one stall" 1 st.Myo.stalls;
        Alcotest.(check (float 1e-12)) "stall time" 0.005 st.Myo.stall_s;
        let without = Myo.create cfg.Machine.Config.myo in
        let addr' = Result.get_ok (Myo.alloc without 4096) in
        ignore (Myo.touch without ~addr:addr' ~len:4096);
        Alcotest.(check bool)
          "stall lands in fault_time" true
          (Myo.fault_time cfg t > Myo.fault_time cfg without));
    (* --- segbuf DMA retries --- *)
    tc "segment DMA retries only the failed segment" (fun () ->
        let obs = Obs.create () in
        let t = Segbuf.create ~obs ~seg_cells:8 () in
        for i = 0 to 30 do
          Segbuf.set t (Segbuf.alloc t 2) 0 i
        done;
        let plan = Fault.plan ~obs (parse_ok "xfer@1") in
        ignore (Segbuf.Image.of_segbuf ~plan t);
        Alcotest.(check int) "one DMA retry" 1
          (Obs.count obs "segbuf.dma_retries"));
    (* --- differential check under faults --- *)
    tc "faulted replay still matches the oracle" (fun () ->
        let prog =
          parse
            (Workloads.Registry.find_exn "blackscholes").Workloads.Workload
              .source
        in
        let spec = parse_ok "xfer=0.3,drop@0,seed=3" in
        List.iter
          (fun (r : Check.faulted_report) ->
            if r.Check.f_sites > 0 then
              Alcotest.(check bool)
                (Printf.sprintf "%s recovers equivalent"
                   (Check.transform_name r.Check.f_transform))
                true (Check.faulted_ok r))
          (Check.check_faulted ~spec prog));
    (* --- recorded regression fixture --- *)
    tc "fixture: dropped signal on a streamed program recovers via timeout"
      (fun () ->
        (* reg_db421a658c07.mc is a streamed saxpy carrying explicit
           signal/wait pragmas; dropping tag 0 must convert the wait into
           a recoverable timeout, not a deadlock or a stale delivery. *)
        let src =
          In_channel.with_open_text
            "corpus/regressions/reg_db421a658c07.mc" In_channel.input_all
        in
        let events = (run_ok src).Minic.Interp.events in
        let obs = Obs.create () in
        let clean = (Replay.schedule cfg events).Machine.Engine.makespan in
        let fcfg = Machine.Config.with_faults cfg (parse_ok "drop@0,seed=7") in
        let r = Replay.schedule_recovered ~obs fcfg events in
        Alcotest.(check bool) "no fallback needed" false r.Replay.r_fellback;
        Alcotest.(check int) "one wait timed out" 1
          (Obs.count obs "fault.timeouts");
        Alcotest.(check bool)
          "timeout charged but bounded" true
          (let m = r.Replay.r_result.Machine.Engine.makespan in
           m >= clean && m <= clean +. 0.1));
  ]
