open Helpers
module M = Transforms.Merge_offload

let merge_src =
  {|int main(void) {
      int n = 10;
      int iters = 4;
      float x[10];
      float y[10];
      for (i = 0; i < n; i++) {
        x[i] = (float)i;
        y[i] = 0.0;
      }
      for (it = 0; it < iters; it++) {
        #pragma offload target(mic:0) in(x[0:n]) inout(y[0:n])
        #pragma omp parallel for
        for (i = 0; i < n; i++) { y[i] = y[i] + x[i]; }
        #pragma offload target(mic:0) inout(y[0:n])
        #pragma omp parallel for
        for (i = 0; i < n; i++) { y[i] = y[i] * 2.0; }
      }
      for (i = 0; i < n; i++) { print_float(y[i]); }
      return 0;
    }|}

(* differential coverage through the [Check] oracle: generated
   multi-offload programs must survive merging bit-for-bit, and the
   host-scalar variant (a host statement between the offloads) must
   refuse to merge at all *)
let arb_mergeable =
  QCheck.make
    ~print:(fun (pat, s) ->
      Printf.sprintf "%s seed=%d\n%s"
        (Check.Genprog.pattern_name pat)
        s
        (Check.Genprog.generate pat ~seed:s))
    QCheck.Gen.(
      pair
        (oneofl [ Check.Genprog.Multi_offload; Check.Genprog.Host_scalar ])
        (int_bound 999))

let oracle_tests =
  [
    prop "oracle: merged offload chains are observationally equal" ~count:50
      arb_mergeable (fun (pat, seed) ->
        let prog = parse (Check.Genprog.generate pat ~seed) in
        match Check.check_program ~transforms:[ Check.Merge ] prog with
        | [ (r : Check.report) ] ->
            let sites_ok =
              match pat with
              | Check.Genprog.Multi_offload -> r.sites > 0
              | _ -> r.sites = 0
            in
            (sites_ok
            || QCheck.Test.fail_reportf "unexpected site count %d" r.sites)
            && (Check.verdict_ok Check.Merge r.verdict
               || QCheck.Test.fail_report (Check.verdict_str r.verdict))
        | _ -> QCheck.Test.fail_report "expected one report");
  ]

let suite =
  oracle_tests
  @ [
    tc "site detection" (fun () ->
        let prog = parse merge_src in
        let sites = M.sites prog in
        Alcotest.(check int) "one site" 1 (List.length sites);
        Alcotest.(check int)
          "two inner specs" 2
          (List.length (List.hd sites).M.specs));
    tc "single offload in a loop is not a site" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 4;
                float a[4];
                for (it = 0; it < 3; it++) {
                  #pragma offload target(mic:0) inout(a[0:n])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { a[i] = 0.0; }
                }
                return 0;
              }|}
        in
        Alcotest.(check bool) "no site" false (M.applicable prog));
    tc "merging preserves semantics" (fun () ->
        let prog = parse merge_src in
        let site = List.hd (M.sites prog) in
        match M.transform_site prog site with
        | Ok prog' -> check_semantics_preserved ~name:"merge" prog prog'
        | Error e -> Alcotest.failf "merge failed: %a" M.pp_failure e);
    tc "merging reduces launches to one" (fun () ->
        let prog = parse merge_src in
        let prog', n = M.transform_all prog in
        Alcotest.(check int) "one merge" 1 n;
        let o = Result.get_ok (Minic.Interp.run prog') in
        Alcotest.(check int) "one offload" 1 o.stats.Minic.Interp.offloads;
        let o0 = Result.get_ok (Minic.Interp.run prog) in
        Alcotest.(check int)
          "was eight offloads" 8 o0.stats.Minic.Interp.offloads);
    tc "merged clauses recompute roles" (fun () ->
        let prog = parse merge_src in
        let site = List.hd (M.sites prog) in
        match M.merged_spec prog site with
        | Ok spec ->
            let names ss = List.map (fun s -> s.Minic.Ast.arr) ss in
            Alcotest.(check (list string)) "in" [ "x" ] (names spec.ins);
            Alcotest.(check (list string)) "inout" [ "y" ] (names spec.inouts)
        | Error e -> Alcotest.failf "merged_spec failed: %a" M.pp_failure e);
    tc "host scalar updates block merging" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 4;
                int acc = 0;
                float a[4];
                float b[4];
                for (it = 0; it < 3; it++) {
                  #pragma offload target(mic:0) inout(a[0:n])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { a[i] = 0.0; }
                  #pragma offload target(mic:0) inout(b[0:n])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { b[i] = 1.0; }
                  acc = acc + 1;
                }
                return acc;
              }|}
        in
        let site = List.hd (M.sites prog) in
        match M.transform_site prog site with
        | Error (M.Host_scalar_write "acc") -> ()
        | Error e -> Alcotest.failf "wrong failure: %a" M.pp_failure e
        | Ok _ -> Alcotest.fail "expected Host_scalar_write");
    tc "host array updates between offloads survive merging" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 6;
                float a[6];
                float c[2];
                for (i = 0; i < n; i++) { a[i] = (float)i; }
                c[0] = 0.5;
                c[1] = 0.0;
                for (it = 0; it < 3; it++) {
                  #pragma offload target(mic:0) inout(a[0:n]) in(c[0:2])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { a[i] = a[i] + c[0]; }
                  #pragma offload target(mic:0) inout(a[0:n]) in(c[0:2])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { a[i] = a[i] * (1.0 + c[0]); }
                  c[0] = c[0] + 0.25;
                }
                for (i = 0; i < n; i++) { print_float(a[i]); }
                return 0;
              }|}
        in
        let site = List.hd (M.sites prog) in
        match M.transform_site prog site with
        | Ok prog' -> check_semantics_preserved ~name:"host-array" prog prog'
        | Error e -> Alcotest.failf "merge failed: %a" M.pp_failure e);
    tc "while-loop sites merge too" (fun () ->
        let prog =
          parse
            {|int main(void) {
                int n = 4;
                int it[1];
                float a[4];
                for (i = 0; i < n; i++) { a[i] = 1.0; }
                it[0] = 0;
                while (it[0] < 3) {
                  #pragma offload target(mic:0) inout(a[0:n])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
                  #pragma offload target(mic:0) inout(a[0:n])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { a[i] = a[i] * 2.0; }
                  it[0] = it[0] + 1;
                }
                print_float(a[2]);
                return 0;
              }|}
        in
        let sites = M.sites prog in
        Alcotest.(check int) "one site" 1 (List.length sites);
        match M.transform_site prog (List.hd sites) with
        | Ok prog' -> check_semantics_preserved ~name:"while" prog prog'
        | Error e -> Alcotest.failf "merge failed: %a" M.pp_failure e);
  ]
