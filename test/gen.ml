(** QCheck generators for MiniC fragments.

    Full well-typed program generation is not attempted; instead we
    generate (a) arbitrary well-formed {e expressions} over a fixed
    variable environment for print/parse round-trips, and (b) random
    {e instances} of parameterized program templates (random sizes,
    block counts, seeds) for semantics-preservation properties. *)

open Minic.Ast

let small_int = QCheck.Gen.int_range 0 999

let var_name = QCheck.Gen.oneofl [ "a"; "b"; "n"; "x"; "y"; "idx" ]

let binop_gen =
  QCheck.Gen.oneofl
    [ Add; Sub; Mul; Div; Mod; Eq; Ne; Lt; Le; Gt; Ge; And; Or ]

(* int-flavoured expressions (no floats: avoids printing round-trip
   pitfalls orthogonal to structure) *)
let expr_gen : expr QCheck.Gen.t =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Int_lit i) small_int;
                map (fun v -> Var v) var_name;
                map (fun b -> Bool_lit b) bool;
              ]
          else
            frequency
              [
                (2, map (fun i -> Int_lit i) small_int);
                (2, map (fun v -> Var v) var_name);
                ( 4,
                  map3
                    (fun op a b -> Binop (op, a, b))
                    binop_gen (self (n / 2)) (self (n / 2)) );
                (1, map (fun e -> Unop (Neg, e)) (self (n - 1)));
                (1, map (fun e -> Unop (Not, e)) (self (n - 1)));
                ( 2,
                  map2 (fun a i -> Index (Var a, i)) var_name (self (n - 1))
                );
                ( 1,
                  map2
                    (fun f args -> Call (f, args))
                    (oneofl [ "imin"; "imax"; "abs" ])
                    (list_size (return 2) (self (n / 2))) );
              ])
        (min n 8))

let arb_expr = QCheck.make ~print:Minic.Pretty.expr_to_string expr_gen

(* affine pairs (coeff, offset) for the affine-recognition property *)
let arb_affine_parts =
  QCheck.(pair (int_range (-9) 9) (int_range (-99) 99))

(** A blackscholes-like streamable program instance: [n] elements,
    deterministic data from [seed]. *)
let streamable_program ~n ~seed =
  Printf.sprintf
    {|
int main(void) {
  int n = %d;
  float a[%d];
  float b[%d];
  float out[%d];
  for (i = 0; i < n; i++) {
    a[i] = (float)((i * %d + 3) %% 17) / 2.0;
    b[i] = (float)((i + %d) %% 11) + 1.0;
  }
  #pragma offload target(mic:0) in(a[0:n], b[0:n]) out(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    out[i] = a[i] * b[i] + sqrt(b[i]);
  }
  for (i = 0; i < n; i++) {
    print_float(out[i]);
  }
  return 0;
}
|}
    n n n n
    ((seed mod 7) + 1)
    (seed mod 13)

(** A gather program instance (regularization target). *)
let gather_program ~n ~m ~seed =
  Printf.sprintf
    {|
int main(void) {
  int n = %d;
  float a[%d];
  int b[%d];
  float out[%d];
  for (i = 0; i < %d; i++) {
    a[i] = (float)((i * 3 + %d) %% 23);
  }
  for (i = 0; i < n; i++) {
    b[i] = (i * %d + 1) %% %d;
  }
  #pragma offload target(mic:0) in(a[0:%d], b[0:n]) out(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    out[i] = a[b[i]] * 2.0 + 1.0;
  }
  for (i = 0; i < n; i++) {
    print_float(out[i]);
  }
  return 0;
}
|}
    n m n n m (seed mod 9)
    ((seed mod 5) + 1)
    m m

(** A stencil program with constant halo offsets (tests slice halos). *)
let stencil_program ~n ~seed =
  Printf.sprintf
    {|
int main(void) {
  int n = %d;
  float a[%d];
  float out[%d];
  for (i = 0; i < n; i++) {
    a[i] = (float)((i + %d) %% 19) / 3.0;
  }
  #pragma offload target(mic:0) in(a[0:n]) out(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    float left = 0.0;
    float right = 0.0;
    if (i > 0) {
      left = a[i - 1];
    }
    if (i < n - 1) {
      right = a[i + 1];
    }
    out[i] = a[i] + 0.5 * (left + right);
  }
  for (i = 0; i < n; i++) {
    print_float(out[i]);
  }
  return 0;
}
|}
    n n n (seed mod 7)

(** A streamable program whose output array is inout (read-modify-
    write), exercising the two-directional slices. *)
let inout_program ~n ~seed =
  Printf.sprintf
    {|
int main(void) {
  int n = %d;
  float a[%d];
  float acc[%d];
  for (i = 0; i < n; i++) {
    a[i] = (float)((i * %d + 1) %% 13) / 2.0;
    acc[i] = (float)(i %% 7);
  }
  #pragma offload target(mic:0) in(a[0:n]) inout(acc[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    acc[i] = acc[i] * 0.5 + a[i];
  }
  for (i = 0; i < n; i++) {
    print_float(acc[i]);
  }
  return 0;
}
|}
    n n n
    ((seed mod 5) + 1)

let arb_size_seed =
  QCheck.(pair (int_range 3 40) (int_range 0 1000))

let arb_size_seed_blocks =
  QCheck.(triple (int_range 3 40) (int_range 0 1000) (int_range 1 8))

(** {1 Multi-array random streamable programs}

    Random combinations of input arrays with random strides and
    constant offsets (halos), an optional invariant lookup table, and
    an output — the general shape the streaming slice computation must
    get right. *)

type in_array = { a_name : string; stride : int; offsets : int list }

let multi_program ~n ~(arrays : in_array list) ~with_lut ~seed =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "int main(void) {\n";
  add "  int n = %d;\n" n;
  let size (a : in_array) =
    (a.stride * (n - 1)) + List.fold_left max 0 a.offsets + 1
  in
  List.iter
    (fun a -> add "  float %s[%d];\n" a.a_name (size a))
    arrays;
  if with_lut then add "  float lut[4];\n";
  add "  float out[%d];\n" n;
  List.iter
    (fun a ->
      add "  for (i = 0; i < %d; i++) { %s[i] = (float)((i * %d + %d) %% 29); }\n"
        (size a) a.a_name
        ((seed mod 5) + 2)
        (seed mod 11))
    arrays;
  if with_lut then
    add "  for (i = 0; i < 4; i++) { lut[i] = (float)i + 0.5; }\n";
  let clauses =
    List.map (fun a -> Printf.sprintf "%s[0:%d]" a.a_name (size a)) arrays
    @ (if with_lut then [ "lut[0:4]" ] else [])
  in
  add "  #pragma offload target(mic:0) in(%s) out(out[0:n])\n"
    (String.concat ", " clauses);
  add "  #pragma omp parallel for\n";
  add "  for (i = 0; i < n; i++) {\n";
  let terms =
    List.concat_map
      (fun a ->
        List.map
          (fun off ->
            if a.stride = 1 && off = 0 then
              Printf.sprintf "%s[i]" a.a_name
            else if a.stride = 1 then
              Printf.sprintf "%s[i + %d]" a.a_name off
            else if off = 0 then
              Printf.sprintf "%s[%d * i]" a.a_name a.stride
            else Printf.sprintf "%s[%d * i + %d]" a.a_name a.stride off)
          a.offsets)
      arrays
    @ if with_lut then [ "lut[2]" ] else []
  in
  add "    out[i] = %s;\n" (String.concat " + " terms);
  add "  }\n";
  add "  for (i = 0; i < n; i++) { print_float(out[i]); }\n";
  add "  return 0;\n}\n";
  Buffer.contents buf

let in_array_gen idx =
  let open QCheck.Gen in
  let* stride = int_range 1 3 in
  let* noffs = int_range 1 3 in
  let* offsets = list_size (return noffs) (int_range 0 3) in
  return
    {
      a_name = Printf.sprintf "arr%d" idx;
      stride;
      offsets = List.sort_uniq compare offsets;
    }

let multi_instance_gen =
  let open QCheck.Gen in
  let* n = int_range 4 30 in
  let* narrays = int_range 1 3 in
  let* arrays =
    List.fold_right
      (fun idx acc ->
        let* a = in_array_gen idx in
        let* rest = acc in
        return (a :: rest))
      (List.init narrays Fun.id)
      (return [])
  in
  let* with_lut = bool in
  let* seed = int_range 0 999 in
  let* blocks = int_range 1 6 in
  return (multi_program ~n ~arrays ~with_lut ~seed, blocks)

let arb_multi_instance =
  QCheck.make ~print:(fun (src, b) -> Printf.sprintf "blocks=%d\n%s" b src)
    multi_instance_gen

(** {1 Offload plan generators}

    Random (shape, strategy) pairs covering every execution strategy —
    the input space of the observability conservation properties:
    whatever plan is generated, the bytes its schedule's spans record
    must match what the plan declares. *)

let shape_gen =
  let open QCheck.Gen in
  let* iters = int_range 1_000 1_000_000 in
  let* bytes_in = map float_of_int (int_range 1_000 10_000_000) in
  let* bytes_out = map float_of_int (int_range 1_000 10_000_000) in
  let* invariant_bytes = map float_of_int (int_range 0 1_000_000) in
  let* outer_repeats = int_range 1 5 in
  let* inner_offloads = int_range 1 4 in
  let* host_glue_s = float_range 0. 1e-3 in
  let* with_shared = bool in
  let* shared_bytes = int_range 4096 (1 lsl 24) in
  let* shared_allocs = int_range 1 64 in
  let* myo_touched_frac = float_range 0.05 1.0 in
  let* myo_rounds = int_range 1 4 in
  return
    {
      Runtime.Plan.default_shape with
      iters;
      bytes_in;
      bytes_out;
      invariant_bytes;
      outer_repeats;
      inner_offloads;
      host_glue_s;
      shared =
        (if with_shared then
           Some
             {
               Runtime.Plan.default_shared with
               shared_bytes;
               shared_allocs;
               objects_touched = iters;
               myo_touched_frac;
               myo_rounds;
             }
         else None);
    }

let strategy_gen =
  let open QCheck.Gen in
  oneof
    [
      return Runtime.Plan.Host_parallel;
      return Runtime.Plan.Naive_offload;
      (let* nblocks = int_range 1 40 in
       let* double_buffered = bool in
       let* persistent = bool in
       let* repack =
         oneof
           [
             return None;
             (let* pipelined = bool in
              return
                (Some { Runtime.Plan.repack_s_per_block = 1e-4; pipelined }));
           ]
       in
       return
         (Runtime.Plan.streamed ~nblocks ~double_buffered ~persistent ?repack
            ()));
      (let* nblocks = int_range 1 40 in
       let* streamed = bool in
       return (Runtime.Plan.merged ~streamed ~nblocks ()));
      return Runtime.Plan.Shared_myo;
      (let* mb = int_range 1 64 in
       return (Runtime.Plan.Shared_segbuf { seg_bytes = mb * 1024 * 1024 }));
    ]

let arb_plan =
  QCheck.make
    ~print:(fun ((s : Runtime.Plan.shape), strat) ->
      Printf.sprintf
        "%s iters=%d in=%g out=%g inv=%g outer=%d inner=%d shared=%s"
        (Runtime.Plan.strategy_name strat)
        s.Runtime.Plan.iters s.Runtime.Plan.bytes_in s.Runtime.Plan.bytes_out
        s.Runtime.Plan.invariant_bytes s.Runtime.Plan.outer_repeats
        s.Runtime.Plan.inner_offloads
        (match s.Runtime.Plan.shared with
        | None -> "none"
        | Some sh ->
            Printf.sprintf "%dB/%d rounds" sh.Runtime.Plan.shared_bytes
              sh.Runtime.Plan.myo_rounds))
    QCheck.Gen.(pair shape_gen strategy_gen)
