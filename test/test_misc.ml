open Helpers

(** Coverage for the small supporting pieces: the table renderer, the
    trace helpers, plan names, pass selection, and the task builder. *)

let suite =
  [
    tc "table renderer aligns and separates" (fun () ->
        let s =
          Experiments.Tables.render
            ~align:[ Experiments.Tables.L; Experiments.Tables.R ]
            ~header:[ "name"; "value" ]
            [ [ "a"; "1.0" ]; [ "longer"; "23.45" ] ]
        in
        Alcotest.(check bool) "header" true (contains ~sub:"| name " s);
        Alcotest.(check bool) "separator" true (contains ~sub:"|---" s);
        Alcotest.(check bool)
          "right-aligned numbers" true
          (contains ~sub:"|   1.0 |" s));
    tc "averages" (fun () ->
        Alcotest.(check (float 1e-12))
          "mean" 2.0
          (Experiments.Tables.average [ 1.0; 2.0; 3.0 ]);
        Alcotest.(check (float 0.)) "empty" 0. (Experiments.Tables.average []));
    tc "trace top_tasks returns the longest first" (fun () ->
        let open Machine in
        let b = Task.builder () in
        let _ = Task.add b ~label:"short" ~resource:Task.Cpu_exec ~duration:0.1 () in
        let _ = Task.add b ~label:"long" ~resource:(Task.Mic_exec (0, 0)) ~duration:5.0 () in
        let _ = Task.add b ~label:"mid" ~resource:(Task.Pcie_h2d 0) ~duration:1.0 () in
        let r = Engine.schedule (Task.tasks b) in
        match Trace.top_tasks ~n:2 r with
        | [ a; b' ] ->
            Alcotest.(check string) "longest" "long" a.task.Task.label;
            Alcotest.(check string) "second" "mid" b'.task.Task.label
        | _ -> Alcotest.fail "expected two tasks");
    tc "task builder clamps negative durations" (fun () ->
        let open Machine in
        let b = Task.builder () in
        let _ =
          Task.add b ~label:"neg" ~resource:Task.Cpu_exec ~duration:(-1.0) ()
        in
        match Task.tasks b with
        | [ t ] -> Alcotest.(check (float 0.)) "clamped" 0. t.Task.duration
        | _ -> Alcotest.fail "one task expected");
    tc "strategy names are distinctive" (fun () ->
        let open Runtime.Plan in
        let names =
          List.map strategy_name
            [
              Host_parallel;
              Naive_offload;
              streamed ();
              streamed ~persistent:true ();
              streamed ~double_buffered:false ();
              merged ();
              merged ~streamed:true ();
              Shared_myo;
              Shared_segbuf { seg_bytes = 1 };
            ]
        in
        Alcotest.(check int)
          "all distinct"
          (List.length names)
          (List.length (List.sort_uniq compare names)));
    tc "pass names round-trip" (fun () ->
        List.iter
          (fun p ->
            match Comp.pass_of_name (Comp.pass_name p) with
            | Some p' -> Alcotest.(check bool) "same" true (p = p')
            | None -> Alcotest.failf "%s not found" (Comp.pass_name p))
          Comp.all_passes;
        Alcotest.(check bool)
          "unknown rejected" true
          (Comp.pass_of_name "nonsense" = None));
    tc "selective pipeline respects the subset" (fun () ->
        let prog = parse (Gen.gather_program ~n:8 ~m:20 ~seed:1) in
        let _, a =
          Comp.optimize ~passes:[ Comp.Data_streaming ] prog
        in
        Alcotest.(check int) "no reorder" 0 (List.length a.Comp.regularized);
        Alcotest.(check int) "nothing streamed (gather)" 0 a.Comp.streamed;
        let _, a2 =
          Comp.optimize
            ~passes:[ Comp.Regularization; Comp.Data_streaming ]
            prog
        in
        Alcotest.(check int) "reorder then stream" 1 a2.Comp.streamed);
    tc "resource names cover all resources" (fun () ->
        let open Machine in
        Alcotest.(check (list string))
          "names" [ "cpu"; "mic"; "h2d"; "d2h" ]
          (List.map Task.resource_name Task.base_resources);
        (* non-zero device/stream indices are spelled out *)
        Alcotest.(check (list string))
          "multi-device names" [ "mic1.2"; "h2d1"; "d2h1" ]
          (List.map Task.resource_name
             [ Task.Mic_exec (1, 2); Task.Pcie_h2d 1; Task.Pcie_d2h 1 ]));
    tc "xptr pretty-printer" (fun () ->
        let s =
          Format.asprintf "%a" Runtime.Xptr.pp
            (Runtime.Xptr.make ~bid:3 ~addr:0x100)
        in
        Alcotest.(check bool) "mentions bid" true (contains ~sub:"bid=3" s));
    tc "gantt clamps to width" (fun () ->
        let open Machine in
        let b = Task.builder () in
        let _ =
          Task.add b ~label:"t" ~resource:(Task.Mic_exec (0, 0)) ~duration:1.0 ()
        in
        let g = Trace.gantt ~width:10 (Engine.schedule (Task.tasks b)) in
        List.iter
          (fun line ->
            if String.length line > 0 then
              Alcotest.(check bool)
                "line short enough" true
                (String.length line <= 20))
          (String.split_on_char '\n' g));
  ]
