open Helpers

let check_output name src expected =
  tc name (fun () ->
      Alcotest.(check string) name expected (output_of src))

let runtime_error name ?expect src =
  tc name (fun () ->
      let prog = parse src in
      match Minic.Interp.run prog with
      | Ok _ -> Alcotest.fail "expected a runtime error"
      | Error msg -> (
          match expect with
          | Some sub ->
              Alcotest.(check bool)
                (Printf.sprintf "error %S mentions %S" msg sub)
                true (contains ~sub msg)
          | None -> ()))

let suite =
  [
    check_output "arithmetic and printing"
      {|int main(void) {
          print_int(7 * 6);
          print_float(1.0 / 4.0);
          print_bool(3 < 4 && true);
          return 0;
        }|}
      "42\n0.25\ntrue\n";
    check_output "integer division truncates"
      "int main(void) { print_int(7 / 2); print_int(7 % 2); return 0; }"
      "3\n1\n";
    check_output "while with break/continue"
      {|int main(void) {
          int i = 0;
          int s = 0;
          while (true) {
            i++;
            if (i > 10) { break; }
            if (i % 2 == 0) { continue; }
            s += i;
          }
          print_int(s);
          return 0;
        }|}
      "25\n";
    check_output "recursive function"
      {|int fib(int n) {
          if (n < 2) { return n; }
          return fib(n - 1) + fib(n - 2);
        }
        int main(void) { print_int(fib(10)); return 0; }|}
      "55\n";
    check_output "arrays and pointer arithmetic"
      {|int main(void) {
          int a[5];
          for (i = 0; i < 5; i++) { a[i] = i * i; }
          int* p = a + 2;
          print_int(*p);
          print_int(p[1]);
          return 0;
        }|}
      "4\n9\n";
    check_output "structs and field assignment"
      {|struct point { float x; float y; };
        int main(void) {
          struct point p;
          p.x = 3.0;
          p.y = 4.0;
          print_float(sqrt(p.x * p.x + p.y * p.y));
          return 0;
        }|}
      "5\n";
    check_output "array of structs via index"
      {|struct cell { int v; int w; };
        int main(void) {
          struct cell cs[3];
          for (i = 0; i < 3; i++) {
            cs[i].v = i;
            cs[i].w = i * 10;
          }
          print_int(cs[2].v + cs[1].w);
          return 0;
        }|}
      "12\n";
    check_output "pointer to struct arrow"
      {|struct node { int v; };
        int get(struct node* n) { return n->v; }
        int main(void) {
          struct node x;
          x.v = 99;
          print_int(get(&x));
          return 0;
        }|}
      "99\n";
    check_output "globals initialized"
      {|int g = 5;
        int main(void) { print_int(g * 2); return 0; }|}
      "10\n";
    check_output "casts"
      {|int main(void) {
          print_int((int)3.9);
          print_float((float)7 / 2.0);
          return 0;
        }|}
      "3\n3.5\n";
    check_output "malloc gives usable memory"
      {|int main(void) {
          float* p = (float*)malloc(3);
          p[0] = 1.5;
          p[2] = p[0] * 2.0;
          print_float(p[2]);
          return 0;
        }|}
      "3\n";
    (* offload semantics *)
    check_output "offload copies in and out"
      {|int main(void) {
          int n = 3;
          float a[3];
          float b[3];
          for (i = 0; i < n; i++) { a[i] = (float)i + 1.0; }
          #pragma offload target(mic:0) in(a[0:n]) out(b[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) { b[i] = a[i] * 10.0; }
          for (i = 0; i < n; i++) { print_float(b[i]); }
          return 0;
        }|}
      "10\n20\n30\n";
    check_output "inout round-trips"
      {|int main(void) {
          int n = 3;
          float a[3];
          for (i = 0; i < n; i++) { a[i] = (float)i; }
          #pragma offload target(mic:0) inout(a[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) { a[i] = a[i] + 1.0; }
          for (i = 0; i < n; i++) { print_float(a[i]); }
          return 0;
        }|}
      "1\n2\n3\n";
    runtime_error "MIC reading untransferred array fails"
      ~expect:"not transferred"
      {|int main(void) {
          int n = 2;
          float a[2];
          float b[2];
          a[0] = 1.0;
          a[1] = 2.0;
          #pragma offload target(mic:0) out(b[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) { b[i] = a[i]; }
          return 0;
        }|};
    runtime_error "MIC writing host scalar fails" ~expect:"CPU"
      {|int main(void) {
          int n = 2;
          float b[2];
          int acc = 0;
          #pragma offload target(mic:0) out(b[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) {
            b[i] = 0.0;
            acc = i;
          }
          return acc;
        }|};
    (* regression: a pragma clause naming a variable that was never
       declared used to escape as a bare Not_found from List.assoc;
       it must be an ordinary runtime error naming the variable *)
    runtime_error "in() clause on unbound variable"
      ~expect:"unbound variable a"
      {|int main(void) {
          int n = 2;
          float b[2];
          #pragma offload target(mic:0) in(a[0:n]) out(b[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) { b[i] = 0.0; }
          return 0;
        }|};
    runtime_error "offload_transfer in() on unbound variable"
      ~expect:"unbound variable ghost"
      {|int main(void) {
          #pragma offload_transfer target(mic:0) in(ghost[0:4])
          return 0;
        }|};
    runtime_error "into() clause on unbound destination"
      ~expect:"unbound variable d"
      {|int main(void) {
          float a[4];
          for (i = 0; i < 4; i++) { a[i] = 0.0; }
          #pragma offload_transfer target(mic:0) in(a[0:4] : into(d[0:4]))
          return 0;
        }|};
    tc "offload stats count transfers and launches" (fun () ->
        let o =
          run_ok
            {|int main(void) {
                int n = 4;
                float a[4];
                float b[4];
                for (i = 0; i < n; i++) { a[i] = 1.0; }
                for (r = 0; r < 3; r++) {
                  #pragma offload target(mic:0) in(a[0:n]) out(b[0:n])
                  #pragma omp parallel for
                  for (i = 0; i < n; i++) { b[i] = a[i]; }
                }
                return 0;
              }|}
        in
        Alcotest.(check int) "offloads" 3 o.stats.Minic.Interp.offloads;
        Alcotest.(check int) "h2d cells" 12 o.stats.Minic.Interp.cells_h2d;
        Alcotest.(check int) "d2h cells" 12 o.stats.Minic.Interp.cells_d2h);
    tc "offload_transfer moves data explicitly" (fun () ->
        let o =
          run_ok
            {|int main(void) {
                float a[4];
                for (i = 0; i < 4; i++) { a[i] = (float)i; }
                float* d = (float*)mic_malloc(4);
                #pragma offload_transfer target(mic:0) in(a[0:4] : into(d[0:4]))
                #pragma offload target(mic:0)
                #pragma omp parallel for
                for (i = 0; i < 4; i++) { d[i] = d[i] + 1.0; }
                #pragma offload_transfer target(mic:0) out(d[0:4] : into(a[0:4]))
                print_float(a[3]);
                return 0;
              }|}
        in
        Alcotest.(check string) "output" "4\n" o.Minic.Interp.output);
    runtime_error "out of fuel on infinite loop" ~expect:"fuel"
      "int main(void) { while (true) { int x = 0; } return 0; }";
    runtime_error "division by zero" ~expect:"zero"
      "int main(void) { int z = 0; return 1 / z; }";
    runtime_error "use of undefined value" ~expect:"undefined"
      "int main(void) { int x; return x + 1; }";
    runtime_error "no main" ~expect:"main" "int f(void) { return 0; }";
    tc "mic allocations tracked" (fun () ->
        let o =
          run_ok
            {|int main(void) {
                float* d = (float*)mic_malloc(100);
                d = (float*)mic_malloc(28);
                return 0;
              }|}
        in
        Alcotest.(check int)
          "mic cells" 128 o.stats.Minic.Interp.mic_alloc_cells);
    (* differential property: the interpreter agrees with OCaml on
       random arithmetic-reduction programs *)
    prop "sum loop agrees with OCaml" ~count:60
      QCheck.(pair (int_range 1 50) (int_range 1 9))
      (fun (n, k) ->
        let src =
          Printf.sprintf
            {|int main(void) {
                int s = 0;
                for (i = 0; i < %d; i++) { s = s + (i %% %d) * i; }
                print_int(s);
                return 0;
              }|}
            n k
        in
        let expected = ref 0 in
        for i = 0 to n - 1 do
          expected := !expected + (i mod k * i)
        done;
        String.equal (Printf.sprintf "%d\n" !expected) (output_of src));
  ]
