(* Engine equivalence: the compiled evaluator (Minic.Compile_eval) must
   be observationally identical to the reference interpreter — output,
   return value, globals snapshot, stats, event trace, fuel accounting,
   and error messages, at the same evaluation points.

   The differential harness (lib/check) runs the compiled engine by
   default, so any gap here would silently change what `compc check`
   verifies.  This suite pins the contract with the 12-family generator,
   the registry workloads, their transformed variants, and a bank of
   error-path programs. *)

open Helpers
module I = Minic.Interp
module CE = Minic.Compile_eval

(* Full-outcome equality.  [compare] (not [=]) for value-carrying
   fields, so NaN floats in globals/ret compare equal under the same
   total order for both engines. *)
let outcome_mismatch (a : I.outcome) (b : I.outcome) =
  if not (String.equal a.output b.output) then
    Some (Printf.sprintf "output %S vs %S" a.output b.output)
  else if compare a.ret b.ret <> 0 then Some "return value differs"
  else if compare a.globals b.globals <> 0 then Some "globals differ"
  else if a.stats <> b.stats then Some "stats differ"
  else if a.events <> b.events then Some "events differ"
  else if a.work <> b.work then
    Some (Printf.sprintf "work %d vs %d" a.work b.work)
  else None

let agree ?fuel name prog =
  let r = I.run ?fuel prog in
  let c = CE.run_compiled ?fuel prog in
  match (r, c) with
  | Ok ro, Ok co -> (
      match outcome_mismatch ro co with
      | None -> ()
      | Some why -> Alcotest.failf "%s: engines disagree: %s" name why)
  | Error re, Error ce ->
      Alcotest.(check string) (name ^ ": same error") re ce
  | Ok _, Error ce ->
      Alcotest.failf "%s: reference ok, compiled failed: %s" name ce
  | Error re, Ok _ ->
      Alcotest.failf "%s: reference failed (%s), compiled ok" name re

let agree_src ?fuel name src = agree ?fuel name (parse src)

(* Pinned generator seeds: enough to hit every family's idioms without
   turning tier-1 into a fuzz run (the @fuzz alias covers volume). *)
let gen_seeds = [ 1; 2; 3 ]

let generated_cases =
  List.concat_map
    (fun pat ->
      List.map
        (fun seed ->
          let name =
            Printf.sprintf "%s/seed=%d" (Check.Genprog.pattern_name pat) seed
          in
          tc ("generated " ^ name) (fun () ->
              agree_src name (Check.Genprog.generate pat ~seed)))
        gen_seeds)
    Check.Genprog.all_patterns

(* The same programs after each transform: offload/transfer-heavy
   rewrites (streaming's chunked transfers, merge's fused regions) are
   where the two engines' event traces could plausibly drift. *)
let transformed_cases =
  List.concat_map
    (fun pat ->
      List.concat_map
        (fun txf ->
          List.filter_map
            (fun seed ->
              let prog = parse (Check.Genprog.generate pat ~seed) in
              let prog', sites = Check.apply txf prog in
              if sites = 0 then None
              else
                let name =
                  Printf.sprintf "%s(%s)/seed=%d"
                    (Check.transform_name txf)
                    (Check.Genprog.pattern_name pat)
                    seed
                in
                Some
                  (tc ("transformed " ^ name) (fun () -> agree name prog')))
            [ 1; 2 ])
        Check.all_transforms)
    Check.Genprog.all_patterns

let workload_cases =
  List.map
    (fun w ->
      let name = w.Workloads.Workload.name in
      tc ("workload " ^ name) (fun () ->
          agree name (Workloads.Workload.program w)))
    Workloads.Registry.all

(* Error paths: every message must be byte-identical and raised at the
   same point.  The two cases the issue pins by name come first. *)
let error_sources =
  [
    ( "mic-space-violation: untransferred array",
      {|int main(void) {
          int n = 2;
          float a[2];
          float b[2];
          a[0] = 1.0;
          a[1] = 2.0;
          #pragma offload target(mic:0) out(b[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) { b[i] = a[i]; }
          return 0;
        }|} );
    ( "mic-space-violation: host scalar write",
      {|int main(void) {
          int n = 2;
          float b[2];
          int acc = 0;
          #pragma offload target(mic:0) out(b[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) {
            b[i] = 0.0;
            acc = i;
          }
          return acc;
        }|} );
    ( "in() clause unbound",
      {|int main(void) {
          int n = 2;
          float b[2];
          #pragma offload target(mic:0) in(a[0:n]) out(b[0:n])
          #pragma omp parallel for
          for (i = 0; i < n; i++) { b[i] = 0.0; }
          return 0;
        }|} );
    ( "offload_transfer in() unbound",
      "int main(void) {\n\
       #pragma offload_transfer target(mic:0) in(ghost[0:4])\n\
       return 0; }" );
    ( "into() unbound",
      {|int main(void) {
          float a[4];
          for (i = 0; i < 4; i++) { a[i] = 0.0; }
          #pragma offload_transfer target(mic:0) in(a[0:4] : into(d[0:4]))
          return 0;
        }|} );
    ( "out() before any in()",
      {|int main(void) {
          float a[2];
          a[0] = 1.0;
          #pragma offload_transfer target(mic:0) out(a[0:2])
          return 0;
        }|} );
    ( "negative section length",
      {|int main(void) {
          float a[4];
          int n = 0 - 2;
          #pragma offload_transfer target(mic:0) in(a[0:n])
          return 0;
        }|} );
    ("division by zero", "int main(void) { int z = 0; return 1 / z; }");
    ("modulo by zero", "int main(void) { int z = 0; return 1 % z; }");
    ("mod on floats", "int main(void) { float x = 1.0; return x % 2; }");
    ("undefined value", "int main(void) { int x; return x + 1; }");
    ("unbound variable", "int main(void) { return y; }");
    ("unknown function", "int main(void) { return nope(3); }");
    ("indexing non-array", "int main(void) { int x = 1; return x[0]; }");
    ("no main", "int f(void) { return 0; }");
    ( "unknown struct",
      "int main(void) { struct t y; return 0; }" );
    ( "break outside loop in function",
      "int f(void) { break; return 0; } int main(void) { return f(); }" );
    ( "control flow escaped offload",
      {|int main(void) {
          float b[2];
          while (true) {
            #pragma offload target(mic:0) out(b[0:2])
            break;
          }
          return 0;
        }|} );
    ( "out-of-fuel infinite loop",
      "int main(void) { while (true) { int x = 0; } return 0; }" );
    ( "load out of bounds",
      "int main(void) { int a[2]; return a[5]; }" );
  ]

let error_cases =
  List.map
    (fun (name, src) -> tc ("error parity: " ^ name) (fun () ->
         agree_src name src))
    error_sources

(* Timeout fuel parity: stepping the fuel budget one unit at a time
   across a program with loops, calls, pragmas, and an offload must
   flip from Error "out of fuel" to Ok at the same budget, with equal
   partial output traces invisible (no outcome on error) and equal
   [work] once both complete — i.e. both engines burn fuel at exactly
   the same points. *)
let fuel_parity_src =
  {|int f(int n) {
      int s = 0;
      for (i = 0; i < n; i++) { s += i; }
      return s;
    }
    int main(void) {
      int t = 0;
      float b[3];
      while (t < 4) {
        t = t + 1;
        print_int(f(t));
      }
      #pragma offload target(mic:0) out(b[0:3])
      #pragma omp parallel for
      for (i = 0; i < 3; i++) { b[i] = (float)i; }
      return t;
    }|}

let suite =
  generated_cases @ transformed_cases @ workload_cases @ error_cases
  @ [
      tc "timeout fuel parity, one unit at a time" (fun () ->
          let prog = parse fuel_parity_src in
          for fuel = 2 to 150 do
            agree ~fuel (Printf.sprintf "fuel=%d" fuel) prog
          done);
      (* satellite 1 regression: duplicate definitions keep first-wins
         semantics under the Hashtbl-backed name tables, in both
         engines.  Built as an AST because the parser path isn't the
         interesting one here. *)
      tc "duplicate definitions resolve first-wins" (fun () ->
          let open Minic.Ast in
          let f ret_val =
            Gfunc
              {
                ret = Tint;
                fname = "f";
                params = [];
                body = [ Sreturn (Some (Int_lit ret_val)) ];
              }
          in
          let s2 = Gstruct { sname = "s"; sfields = [ (Tint, "a"); (Tint, "b") ] } in
          let s1 = Gstruct { sname = "s"; sfields = [ (Tint, "a") ] } in
          let main =
            Gfunc
              {
                ret = Tint;
                fname = "main";
                params = [];
                body =
                  [
                    Sdecl (Tstruct "s", "x", None);
                    Sassign (Field (Var "x", "b"), Int_lit 3);
                    Sexpr
                      (Call
                         ( "print_int",
                           [
                             Binop
                               ( Add,
                                 Binop (Add, Call ("f", []), Var "g"),
                                 Field (Var "x", "b") );
                           ] ));
                    Sreturn (Some (Field (Var "x", "b")));
                  ];
              }
          in
          let prog =
            [
              s2; s1;  (* two-field struct first: x.b must exist *)
              f 1; f 2;
              Gvar (Tint, "g", Some (Int_lit 10));
              Gvar (Tint, "g", Some (Int_lit 20));
              main;
            ]
          in
          (match I.run prog with
          | Ok o ->
              Alcotest.(check string) "first f, first g, 2-field s" "14\n"
                o.I.output;
              Alcotest.(check bool) "ret" true (compare o.I.ret (I.Vint 3) = 0)
          | Error e -> Alcotest.failf "reference failed: %s" e);
          agree "duplicate definitions" prog);
      (* the compiled-program cache: N runs of one AST compile once *)
      tc "cache compiles a program once per domain" (fun () ->
          let prog = parse "int main(void) { print_int(7); return 0; }" in
          let before = CE.compile_count () in
          for _ = 1 to 5 do
            match CE.run_compiled prog with
            | Ok o -> Alcotest.(check string) "output" "7\n" o.I.output
            | Error e -> Alcotest.failf "compiled run failed: %s" e
          done;
          Alcotest.(check int) "one compilation" (before + 1)
            (CE.compile_count ()));
      (* engine selector dispatches to the reference when asked *)
      tc "run ?engine escape hatch" (fun () ->
          let prog = parse "int main(void) { print_int(1); return 0; }" in
          match
            ( CE.run ~engine:I.Reference prog,
              CE.run ~engine:I.Compiled prog )
          with
          | Ok a, Ok b -> (
              match outcome_mismatch a b with
              | None -> ()
              | Some why -> Alcotest.failf "engines disagree: %s" why)
          | _ -> Alcotest.fail "both engines should succeed");
      (* the [i < n] fast path: a for loop bounded by a local variable
         takes a dedicated compiled route (single scope lookup); its
         observable behaviour must stay identical to the reference on
         the plain case, when the bound is written inside the body, and
         when the bound is a parameter rather than a local *)
      tc "for-loop variable bound (fast path)" (fun () ->
          agree_src "var-bound loop"
            {|int main(void) {
                int n = 5;
                int s = 0;
                for (int i = 0; i < n; i++) { s = s + i; }
                print_int(s);
                return s;
              }|});
      tc "for-loop variable bound mutated in body" (fun () ->
          agree_src "mutated bound"
            {|int main(void) {
                int n = 8;
                int s = 0;
                for (int i = 0; i < n; i++) {
                  s = s + 1;
                  if (i == 2) { n = 4; }
                }
                print_int(s);
                print_int(n);
                return 0;
              }|});
      tc "for-loop parameter bound" (fun () ->
          agree_src "param bound"
            {|int count(int n) {
                int s = 0;
                for (int i = 0; i < n; i++) { s = s + 2; }
                return s;
              }
              int main(void) {
                print_int(count(6));
                return 0;
              }|});
      tc "for-loop variable bound fuel parity" (fun () ->
          agree_src ~fuel:40 "var-bound fuel"
            {|int main(void) {
                int n = 1000;
                int s = 0;
                for (int i = 0; i < n; i++) { s = s + i; }
                return s;
              }|});
    ]
