open Helpers
module P = Runtime.Plan

let cfg = Machine.Config.paper_default

(* Minimal recursive-descent JSON syntax checker — there is no JSON
   parser in the dependency set, and the point is exactly that the
   hand-rolled encoder emits valid syntax for arbitrary profiles. *)
let json_ok (s : string) : bool =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let adv () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
        adv ();
        skip_ws ()
    | _ -> ()
  in
  let expect c =
    skip_ws ();
    match peek () with
    | Some x when x = c ->
        adv ();
        true
    | _ -> false
  in
  let lit w =
    let l = String.length w in
    if !pos + l <= n && String.sub s !pos l = w then (
      pos := !pos + l;
      true)
    else false
  in
  let string_rest () =
    (* after the opening quote *)
    let rec go () =
      match peek () with
      | None -> false
      | Some '"' ->
          adv ();
          true
      | Some '\\' ->
          adv ();
          if peek () = None then false
          else (
            adv ();
            go ())
      | Some _ ->
          adv ();
          go ()
    in
    go ()
  in
  let number () =
    let start = !pos in
    let numchar = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while match peek () with Some c when numchar c -> true | _ -> false do
      adv ()
    done;
    !pos > start
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        adv ();
        obj_first ()
    | Some '[' ->
        adv ();
        arr_first ()
    | Some '"' ->
        adv ();
        string_rest ()
    | Some ('-' | '0' .. '9') -> number ()
    | Some 't' -> lit "true"
    | Some 'f' -> lit "false"
    | Some 'n' -> lit "null"
    | _ -> false
  and pair () =
    expect '"' && string_rest () && expect ':' && value ()
  and obj_first () =
    skip_ws ();
    match peek () with
    | Some '}' ->
        adv ();
        true
    | _ -> pair () && obj_rest ()
  and obj_rest () =
    skip_ws ();
    match peek () with
    | Some '}' ->
        adv ();
        true
    | Some ',' ->
        adv ();
        pair () && obj_rest ()
    | _ -> false
  and arr_first () =
    skip_ws ();
    match peek () with
    | Some ']' ->
        adv ();
        true
    | _ -> value () && arr_rest ()
  and arr_rest () =
    skip_ws ();
    match peek () with
    | Some ']' ->
        adv ();
        true
    | Some ',' ->
        adv ();
        value () && arr_rest ()
    | _ -> false
  in
  let ok = value () in
  skip_ws ();
  ok && !pos = n

let close a b =
  Float.abs (a -. b)
  <= 1e-6 *. Float.max 1.0 (Float.max (Float.abs a) (Float.abs b))

let suite =
  [
    tc "counters accumulate and list sorted" (fun () ->
        let o = Obs.create () in
        Obs.incr o "b";
        Obs.incr ~by:4 o "a";
        Obs.add o "a" 2;
        Alcotest.(check int) "a" 6 (Obs.count o "a");
        Alcotest.(check int) "b" 1 (Obs.count o "b");
        Alcotest.(check int) "absent" 0 (Obs.count o "zzz");
        Alcotest.(check (list (pair string int)))
          "sorted"
          [ ("a", 6); ("b", 1) ]
          (Obs.counters o));
    tc "histogram tracks count/total/min/max" (fun () ->
        let o = Obs.create () in
        List.iter (Obs.observe o "x") [ 1.0; 3.0; 2.0 ];
        match Obs.histogram o "x" with
        | None -> Alcotest.fail "missing histogram"
        | Some h ->
            Alcotest.(check int) "count" 3 h.Obs.h_count;
            Alcotest.(check (float 1e-12)) "total" 6.0 h.Obs.h_total;
            Alcotest.(check (float 1e-12)) "min" 1.0 h.Obs.h_min;
            Alcotest.(check (float 1e-12)) "max" 3.0 h.Obs.h_max;
            Alcotest.(check (float 1e-12)) "mean" 2.0 (Obs.mean h));
    tc "histogram min is the first sample, not zero" (fun () ->
        (* regression guard: a zero-initialized running minimum would
           report 0 for any all-positive sample stream *)
        let o = Obs.create () in
        Obs.observe o "lat" 3.5;
        match Obs.histogram o "lat" with
        | None -> Alcotest.fail "missing histogram"
        | Some h ->
            Alcotest.(check (float 1e-12)) "min" 3.5 h.Obs.h_min;
            Alcotest.(check (float 1e-12)) "max" 3.5 h.Obs.h_max);
    tc "span begin/end round-trips" (fun () ->
        let o = Obs.create () in
        let id = Obs.span_begin ~bytes:7. o Obs.H2d ~label:"t" ~start:1.0 in
        Alcotest.(check (list (pair string string)))
          "open" [ ("h2d", "t") ]
          (List.map
             (fun (k, l) -> (Obs.kind_name k, l))
             (Obs.unclosed o));
        Obs.span_end o id ~stop:2.5;
        Alcotest.(check int) "closed" 0 (List.length (Obs.unclosed o));
        match Obs.spans o with
        | [ sp ] ->
            Alcotest.(check (float 1e-12)) "start" 1.0 sp.Obs.span_start;
            Alcotest.(check (float 1e-12)) "stop" 2.5 sp.Obs.span_stop;
            Alcotest.(check (float 1e-12)) "bytes" 7. sp.Obs.span_bytes
        | l -> Alcotest.failf "expected 1 span, got %d" (List.length l));
    tc "ending an unknown span is rejected" (fun () ->
        let o = Obs.create () in
        match Obs.span_end o 42 ~stop:1.0 with
        | exception Invalid_argument _ -> ()
        | () -> Alcotest.fail "expected invalid_arg");
    tc "kind names round-trip" (fun () ->
        List.iter
          (fun k ->
            match Obs.kind_of_name (Obs.kind_name k) with
            | Some k' when k' = k -> ()
            | _ -> Alcotest.failf "kind %s" (Obs.kind_name k))
          Obs.all_kinds);
    tc "json escapes and non-finite floats" (fun () ->
        let j =
          Obs.Json.(
            Obj
              [
                ("q", String "a\"b\\c\nd");
                ("nan", Float Float.nan);
                ("inf", Float Float.infinity);
              ])
        in
        let s = Obs.Json.to_string j in
        Alcotest.(check bool) "valid" true (json_ok s);
        Alcotest.(check bool) "nan is null" true (contains ~sub:"null" s);
        Alcotest.(check bool)
          "escaped quote" true
          (contains ~sub:{|a\"b|} s));
    tc "json parser round-trips the encoder" (fun () ->
        let j =
          Obs.Json.(
            Obj
              [
                ("s", String "a\"b\\c\nd\te");
                ("i", Int (-42));
                ("f", Float 1.5);
                ("big", Float 1.23456789e20);
                ("b", Bool true);
                ("nil", Null);
                ("l", List [ Int 1; Obj [ ("x", Int 2) ]; List [] ]);
                ("empty", Obj []);
              ])
        in
        let s = Obs.Json.to_string j in
        match Obs.Json.of_string s with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok j' ->
            Alcotest.(check bool) "tree equal" true (j = j');
            Alcotest.(check string)
              "reprint equal" s
              (Obs.Json.to_string j'));
    tc "json parser accepts whitespace and escapes" (fun () ->
        match
          Obs.Json.of_string
            " { \"k\" : [ 1 , 2.5 , \"\\u0041\\n\" , true , null ] } "
        with
        | Error e -> Alcotest.failf "parse failed: %s" e
        | Ok j ->
            Alcotest.(check bool)
              "tree" true
              Obs.Json.(
                j
                = Obj
                    [
                      ( "k",
                        List
                          [ Int 1; Float 2.5; String "A\n"; Bool true; Null ]
                      );
                    ]));
    tc "json parser rejects malformed input" (fun () ->
        List.iter
          (fun s ->
            match Obs.Json.of_string s with
            | Error _ -> ()
            | Ok _ -> Alcotest.failf "accepted malformed %S" s)
          [
            "";
            "{";
            "{\"a\":}";
            "[1,]";
            "nul";
            "\"unterminated";
            "{\"a\":1} trailing";
            "{'a':1}";
            "+5";
          ]);
    tc "json member looks up object fields" (fun () ->
        let j = Obs.Json.(Obj [ ("a", Int 1); ("b", String "x") ]) in
        Alcotest.(check bool)
          "hit" true
          (Obs.Json.member "b" j = Some (Obs.Json.String "x"));
        Alcotest.(check bool) "miss" true (Obs.Json.member "c" j = None);
        Alcotest.(check bool)
          "non-object" true
          (Obs.Json.member "a" (Obs.Json.Int 3) = None));
    prop "h2d/d2h/fault bytes conserved between plan and spans" ~count:150
      Gen.arb_plan
      (fun (shape, strat) ->
        let obs = Obs.create () in
        ignore (Runtime.Schedule_gen.schedule ~obs cfg shape strat);
        let d = P.declared_transfers cfg shape strat in
        close (Obs.bytes_of_kind obs Obs.H2d) d.P.h2d_bytes
        && close (Obs.bytes_of_kind obs Obs.D2h) d.P.d2h_bytes
        && close (Obs.bytes_of_kind obs Obs.Page_fault) d.P.fault_bytes);
    prop "every span that starts also stops" ~count:100 Gen.arb_plan
      (fun (shape, strat) ->
        let obs = Obs.create () in
        ignore (Runtime.Schedule_gen.schedule ~obs cfg shape strat);
        Obs.unclosed obs = [] && Obs.span_count obs > 0);
    prop "span clock never runs backwards" ~count:100 Gen.arb_plan
      (fun (shape, strat) ->
        let obs = Obs.create () in
        ignore (Runtime.Schedule_gen.schedule ~obs cfg shape strat);
        List.for_all
          (fun sp -> sp.Obs.span_stop >= sp.Obs.span_start)
          (Obs.spans obs));
    prop "profile json is valid for any generated schedule" ~count:80
      Gen.arb_plan
      (fun (shape, strat) ->
        let obs = Obs.create () in
        let r = Runtime.Schedule_gen.schedule ~obs cfg shape strat in
        json_ok
          (Obs.Json.to_string (Machine.Trace.profile_json ~obs r)));
    prop "replayed programs close their spans too" ~count:30
      Gen.arb_size_seed
      (fun (n, seed) ->
        let prog =
          Minic.Parser.program_of_string_exn
            (Gen.streamable_program ~n ~seed)
        in
        let obs = Obs.create () in
        ignore (Runtime.Replay.of_program ~obs prog);
        Obs.unclosed obs = [] && Obs.count obs "runtime.launches" > 0);
  ]
