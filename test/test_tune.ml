(* The auto-tuner: fleet-spec grammar, search determinism and
   optimality invariants, heterogeneous placement, and the memoized
   block-size chooser. *)

open Helpers
module Config = Machine.Config
module Fleet = Machine.Fleet
module Block_size = Transforms.Block_size

let fleet_ok spec =
  match Fleet.parse spec with
  | Ok f -> f
  | Error e -> Alcotest.failf "%S: %s" spec (Fleet.error_message e)

let fleet_err spec ~sub =
  match Fleet.parse spec with
  | Ok f -> Alcotest.failf "%S: expected error, got %S" spec (Fleet.to_string f)
  | Error e ->
      let msg = Fleet.error_message e in
      if not (contains ~sub msg) then
        Alcotest.failf "%S: error %S lacks %S" spec msg sub

(* ------------------------------------------------------------------ *)
(* Fleet spec grammar                                                 *)
(* ------------------------------------------------------------------ *)

let test_fleet_parse () =
  let f = fleet_ok "devices=2,streams=4,dev1:cores=0.5,bw=0.75" in
  Alcotest.(check int) "devices" 2 f.Fleet.f_devices;
  Alcotest.(check int) "streams" 4 f.Fleet.f_streams;
  (match f.Fleet.f_scales with
  | [ (1, s) ] ->
      Alcotest.(check (float 0.)) "cores" 0.5 s.Config.sc_cores;
      (* the bare bw= clause sticks to the preceding dev1: prefix *)
      Alcotest.(check (float 0.)) "bw" 0.75 s.Config.sc_bw
  | _ -> Alcotest.fail "expected exactly one scale, for device 1");
  let g = fleet_ok "" in
  Alcotest.(check int) "empty spec devices" 1 g.Fleet.f_devices;
  Alcotest.(check int) "empty spec streams" 1 g.Fleet.f_streams;
  (* devN: out of order with devices= still applies *)
  let h = fleet_ok "dev0:bw=0.25,devices=3" in
  Alcotest.(check int) "devices after scale" 3 h.Fleet.f_devices;
  Alcotest.(check (float 0.))
    "bw scale" 0.25
    (List.assoc 0 h.Fleet.f_scales).Config.sc_bw

let test_fleet_roundtrip () =
  List.iter
    (fun spec ->
      let f = fleet_ok spec in
      let f' = fleet_ok (Fleet.to_string f) in
      if f <> f' then
        Alcotest.failf "%S: round-trip %S parsed differently" spec
          (Fleet.to_string f))
    [
      "devices=2,streams=4,dev1:cores=0.5,bw=0.75";
      "devices=1,streams=1";
      "devices=4,streams=2,dev0:cores=0.5,dev2:bw=0.1,dev3:cores=2,bw=3";
      "";
    ]

let test_fleet_errors () =
  fleet_err "devices=0" ~sub:"positive integer";
  fleet_err "devices=two" ~sub:"positive integer";
  fleet_err "streams=-1" ~sub:"positive integer";
  fleet_err "devices=2,dev5:cores=0.5" ~sub:"out of range";
  fleet_err "dev0:cores=-1" ~sub:"finite and positive";
  fleet_err "dev0:cores=nan" ~sub:"finite and positive";
  fleet_err "cores=0.5" ~sub:"devN: prefix";
  fleet_err "dev0:volts=3" ~sub:"cores=F or bw=F";
  fleet_err "devices=2,,streams=2" ~sub:"empty clause";
  fleet_err "frobnicate=1" ~sub:"unknown clause"

let test_fleet_apply () =
  let f = fleet_ok "devices=3,streams=2,dev1:cores=0.5" in
  let cfg = Fleet.apply Config.paper_default f in
  Alcotest.(check int) "devices" 3 cfg.Config.devices;
  Alcotest.(check int) "streams" 2 cfg.Config.streams;
  Alcotest.(check bool) "heterogeneous" false (Config.homogeneous cfg);
  Alcotest.(check (float 0.))
    "scaled device" 0.5
    (Config.scale_for cfg 1).Config.sc_cores;
  Alcotest.(check (float 0.))
    "unscaled device defaults to unit" 1.0
    (Config.scale_for cfg 0).Config.sc_cores

(* ------------------------------------------------------------------ *)
(* Search engine                                                      *)
(* ------------------------------------------------------------------ *)

let check_report name (a : Tune.report) (b : Tune.report) =
  Alcotest.(check string)
    (name ^ ": best config")
    (Tune.config_to_string a.Tune.r_best.Tune.pt_config)
    (Tune.config_to_string b.Tune.r_best.Tune.pt_config);
  Alcotest.(check (float 0.))
    (name ^ ": best makespan")
    a.Tune.r_best.Tune.pt_makespan b.Tune.r_best.Tune.pt_makespan;
  Alcotest.(check int) (name ^ ": explored") a.Tune.r_explored b.Tune.r_explored;
  Alcotest.(check int) (name ^ ": pruned") a.Tune.r_pruned b.Tune.r_pruned;
  Alcotest.(check int)
    (name ^ ": point count")
    (List.length a.Tune.r_points)
    (List.length b.Tune.r_points);
  List.iter2
    (fun (p : Tune.point) (q : Tune.point) ->
      Alcotest.(check string)
        (name ^ ": point config")
        (Tune.config_to_string p.Tune.pt_config)
        (Tune.config_to_string q.Tune.pt_config);
      Alcotest.(check (float 0.))
        (name ^ ": point makespan")
        p.Tune.pt_makespan q.Tune.pt_makespan)
    a.Tune.r_points b.Tune.r_points

let prepared ?base ?(max_devices = 2) ?(max_streams = 2) name =
  let w = Workloads.Registry.find_exn name in
  Tune.prepare ?base ~max_devices ~max_streams w

let test_jobs_determinism () =
  let pre = prepared "blackscholes" in
  let r1 = Tune.run ~jobs:1 pre in
  let r2 = Tune.run ~jobs:2 pre in
  check_report "jobs 1 vs 2" r1 r2

let test_tiebreak_lexicographic () =
  (* constant eval: every point ties, so the winner must be the
     lexicographically smallest config — never an artifact of
     submission or completion order *)
  let sp = Tune.space ~nblocks:[ 4; 2 ] ~max_devices:3 ~max_streams:2 () in
  let r =
    Tune.search ~jobs:2 sp
      ~eval:(fun _ -> 1.0)
      ~keyfn:(fun c -> Tune.config_to_string c)
  in
  Alcotest.(check string)
    "lex-smallest wins the tie" "devices=1,streams=1,nblocks=2"
    (Tune.config_to_string r.Tune.r_best.Tune.pt_config)

let test_shared_key_dedup () =
  (* all configs alias one simulation key: a single evaluation, the
     rest answered from the memo *)
  let sp = Tune.space ~nblocks:[ 10 ] ~max_devices:2 ~max_streams:2 () in
  let evals = ref 0 in
  let r =
    Tune.search sp
      ~eval:(fun _ ->
        incr evals;
        2.0)
      ~keyfn:(fun _ -> "same")
  in
  Alcotest.(check int) "one simulator call" 1 !evals;
  Alcotest.(check int) "explored counts evaluations" 1 r.Tune.r_explored;
  Alcotest.(check bool) "the rest are pruned" true (r.Tune.r_pruned > 0)

let test_default_always_evaluated () =
  let pre = prepared "kmeans" in
  let r = Tune.run pre in
  Alcotest.(check bool)
    "best no worse than default" true
    (r.Tune.r_best.Tune.pt_makespan <= r.Tune.r_default.Tune.pt_makespan);
  Alcotest.(check bool) "speedup >= 1" true (Tune.speedup r >= 1.0)

let test_more_devices_no_worse () =
  (* widening the fleet can only grow the search space, and the best
     point of a superset space is never worse *)
  let best name ~max_devices =
    let pre = prepared name ~max_devices ~max_streams:2 in
    (Tune.run pre).Tune.r_best.Tune.pt_makespan
  in
  List.iter
    (fun name ->
      let b1 = best name ~max_devices:1 in
      let b2 = best name ~max_devices:2 in
      if b2 > b1 then
        Alcotest.failf "%s: 2-device best %.9f worse than 1-device %.9f" name
          b2 b1)
    [ "blackscholes"; "kmeans" ]

let test_hetero_avoids_slow_device () =
  (* device 1 is 20x slower in both compute and transfer: the tuned
     placement must not spread onto it *)
  let base =
    Config.with_scales Config.paper_default
      [ (1, { Config.sc_cores = 0.05; sc_bw = 0.05 }) ]
  in
  let pre = prepared "blackscholes" ~base ~max_devices:2 ~max_streams:2 in
  let r = Tune.run pre in
  Alcotest.(check int)
    "tuner stays off the slow device" 1 r.Tune.r_best.Tune.pt_config.Tune.devices

(* ------------------------------------------------------------------ *)
(* Heterogeneous replay                                               *)
(* ------------------------------------------------------------------ *)

let trace_of name =
  let w = Workloads.Registry.find_exn name in
  let prog, _ = Comp.optimize (Workloads.Workload.program w) in
  match Minic.Compile_eval.run_compiled prog with
  | Ok r -> r.Minic.Interp.events
  | Error e -> Alcotest.failf "%s: %s" name e

let test_unit_scales_bitwise_neutral () =
  (* explicit all-1.0 scales must replay bit-identically to no scales
     at all: the homogeneous fast path is exact, not approximate *)
  let events = trace_of "blackscholes" in
  let cfg = Config.with_devices Config.paper_default ~devices:2 ~streams:2 in
  let scaled =
    Config.with_scales cfg
      [ (0, Config.unit_scale); (1, Config.unit_scale) ]
  in
  Alcotest.(check (float 0.))
    "identical makespan" (Runtime.Migrate.makespan cfg events)
    (Runtime.Migrate.makespan scaled events)

let test_slow_scales_hurt () =
  let events = trace_of "blackscholes" in
  let cfg = Config.with_devices Config.paper_default ~devices:1 ~streams:1 in
  let slow scales = Config.with_scales cfg scales in
  let base = Runtime.Migrate.makespan cfg events in
  let slow_cores =
    Runtime.Migrate.makespan
      (slow [ (0, { Config.sc_cores = 0.25; sc_bw = 1.0 }) ])
      events
  in
  let slow_bw =
    Runtime.Migrate.makespan
      (slow [ (0, { Config.sc_cores = 1.0; sc_bw = 0.25 }) ])
      events
  in
  Alcotest.(check bool) "slower cores slow the replay" true (slow_cores > base);
  Alcotest.(check bool) "slower link slows the replay" true (slow_bw > base)

(* ------------------------------------------------------------------ *)
(* Memoized block-size chooser                                        *)
(* ------------------------------------------------------------------ *)

let test_block_cache_parity () =
  let params =
    [
      { Block_size.transfer_s = 0.2; compute_s = 0.1; launch_s = 0.001 };
      { Block_size.transfer_s = 0.01; compute_s = 0.5; launch_s = 0.0001 };
      { Block_size.transfer_s = 1.0; compute_s = 0.0; launch_s = 0.01 };
    ]
  in
  let cache = Block_size.Cache.create () in
  List.iteri
    (fun i p ->
      let key = Printf.sprintf "machine|shape%d" i in
      (* twice: the second answer comes from the table *)
      for _ = 1 to 2 do
        Alcotest.(check int)
          (key ^ ": memoized == unmemoized")
          (Block_size.choose p)
          (Block_size.Cache.choose cache ~key p)
      done;
      let cands = [ 10; 20; 40; 50 ] in
      Alcotest.(check int)
        (key ^ ": with candidates")
        (Block_size.choose ~candidates:cands p)
        (Block_size.Cache.choose cache ~key ~candidates:cands p))
    params;
  Alcotest.(check int)
    "distinct (key, candidates) pairs memoized" 6
    (Block_size.Cache.size cache)

let counter obs name = List.assoc_opt name (Obs.counters obs)

let test_block_cache_counters () =
  let obs = Obs.create () in
  let cache = Block_size.Cache.create ~obs () in
  let p = { Block_size.transfer_s = 0.2; compute_s = 0.1; launch_s = 0.001 } in
  ignore (Block_size.Cache.choose cache ~key:"k" p);
  ignore (Block_size.Cache.choose cache ~key:"k" p);
  ignore (Block_size.Cache.choose cache ~key:"k2" p);
  Alcotest.(check (option int))
    "hits" (Some 1)
    (counter obs "tune.block_cache.hits");
  Alcotest.(check (option int))
    "misses" (Some 2)
    (counter obs "tune.block_cache.misses")

let test_tune_cache_shared () =
  (* a shared cross-search cache turns the second identical search
     into pure hits: zero fresh simulator evaluations *)
  let obs = Obs.create () in
  let cache = Tune.Cache.create ~obs () in
  let pre = prepared "kmeans" in
  let r1 = Tune.run ~obs ~cache pre in
  let r2 = Tune.run ~obs ~cache pre in
  Alcotest.(check string)
    "cached rerun picks the same winner"
    (Tune.config_to_string r1.Tune.r_best.Tune.pt_config)
    (Tune.config_to_string r2.Tune.r_best.Tune.pt_config);
  Alcotest.(check (float 0.))
    "cached rerun reproduces the makespan" r1.Tune.r_best.Tune.pt_makespan
    r2.Tune.r_best.Tune.pt_makespan;
  Alcotest.(check int) "second search simulates nothing" 0 r2.Tune.r_explored;
  match counter obs "tune.cache.hits" with
  | Some h when h >= r1.Tune.r_explored -> ()
  | h ->
      Alcotest.failf "expected >= %d cache hits, got %s" r1.Tune.r_explored
        (match h with Some h -> string_of_int h | None -> "none")

let suite =
  [
    tc "fleet spec parses devices, streams, sticky devN: scales"
      test_fleet_parse;
    tc "fleet spec round-trips through to_string" test_fleet_roundtrip;
    tc "malformed fleet specs are typed errors" test_fleet_errors;
    tc "fleet installs into the machine config" test_fleet_apply;
    tc "search is deterministic across --jobs widths" test_jobs_determinism;
    tc "ties break by lexicographic config order" test_tiebreak_lexicographic;
    tc "configs sharing a simulation key share one evaluation"
      test_shared_key_dedup;
    tc "tuned point never loses to the default" test_default_always_evaluated;
    tc "adding a device never worsens the best makespan"
      test_more_devices_no_worse;
    tc "tuner avoids a 20x-slower device" test_hetero_avoids_slow_device;
    tc "unit scales replay bit-identically to no scales"
      test_unit_scales_bitwise_neutral;
    tc "slower cores or link never speed up a replay" test_slow_scales_hurt;
    tc "memoized block-size choice equals unmemoized" test_block_cache_parity;
    tc "block cache counts hits and misses" test_block_cache_counters;
    tc "shared tune cache answers a repeat search without simulating"
      test_tune_cache_shared;
  ]
