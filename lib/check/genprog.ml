(** Whole-program MiniC generators for differential transform
    validation.

    Each {!pattern} is a parameterized family of small, well-typed,
    terminating programs built around one access-pattern idiom from the
    paper — dense streaming, stencil halos, sparse strides, gathers
    [A[B[i]]], AoS field access, pointer-chasing structures, offload
    chains — chosen so every transform's [applicable] predicate is
    exercised both positively and negatively (see
    {!Check.expected_applicable} for the truth table).

    Generation is deterministic: [generate pat ~seed] always returns
    the same source text, so any failure reproduces from its seed
    alone.  Programs are emitted as {e source strings} rather than ASTs
    on purpose — every generated instance also exercises the
    lexer/parser/printer front line. *)

type pattern =
  | Dense  (** unit-stride multi-array kernel; the streaming bread-and-butter *)
  | Stencil  (** dense with constant-offset halos under boundary guards *)
  | Sparse_stride  (** [a[k*i + c]] covering few residues: reorder target *)
  | Step_loop  (** non-unit loop step: streaming must refuse *)
  | Gather  (** [a[b[i]]] indirection: reorder target *)
  | Guarded_gather  (** gather under a data-dependent branch: reorder must refuse *)
  | Aos  (** array-of-structs field access: SoA target *)
  | Chain  (** pointer-linked structs: shared-memory target *)
  | Multi_offload  (** offload chain in a repeat loop: merge target *)
  | Host_scalar  (** offload chain with a host scalar write: merge must refuse *)
  | Plain_loop  (** no pragmas at all: every transform is a no-op *)
  | Inout  (** read-modify-write output section *)

let all_patterns =
  [
    Dense; Stencil; Sparse_stride; Step_loop; Gather; Guarded_gather; Aos;
    Chain; Multi_offload; Host_scalar; Plain_loop; Inout;
  ]

let pattern_name = function
  | Dense -> "dense"
  | Stencil -> "stencil"
  | Sparse_stride -> "sparse-stride"
  | Step_loop -> "step-loop"
  | Gather -> "gather"
  | Guarded_gather -> "guarded-gather"
  | Aos -> "aos"
  | Chain -> "chain"
  | Multi_offload -> "multi-offload"
  | Host_scalar -> "host-scalar"
  | Plain_loop -> "plain-loop"
  | Inout -> "inout"

let pattern_of_name s =
  List.find_opt (fun p -> pattern_name p = s) all_patterns

(* Every pattern folds its own tag into the random state so the same
   seed yields unrelated instances across patterns. *)
let rng pattern seed =
  let tag =
    let rec idx i = function
      | [] -> 0
      | p :: _ when p = pattern -> i
      | _ :: tl -> idx (i + 1) tl
    in
    idx 0 all_patterns
  in
  Random.State.make [| 0x434f4d50; seed; tag |]

let irange st lo hi = lo + Random.State.int st (hi - lo + 1)

(* Deterministic "random" data initialization: cheap integer hash of
   the index, cast to float where needed.  Kept affine-free so the
   data never accidentally matches the loop's access pattern. *)
let init_f st name size =
  Printf.sprintf
    "  for (i = 0; i < %d; i++) { %s[i] = (float)((i * %d + %d) %% %d) / %d.0; }\n"
    size name (irange st 2 9) (irange st 0 12) (irange st 11 29) (irange st 2 4)

let init_i st name size modulus =
  Printf.sprintf "  for (i = 0; i < %d; i++) { %s[i] = (i * %d + %d) %% %d; }\n"
    size name (irange st 1 7) (irange st 0 5) modulus

let print_tail name =
  Printf.sprintf
    "  for (i = 0; i < n; i++) { print_float(%s[i]); }\n  return 0;\n}\n" name

let header ?(globals = "") () = globals ^ "int main(void) {\n"

let dense st =
  let n = irange st 4 20 in
  let narr = irange st 1 3 in
  let buf = Buffer.create 512 in
  let globals = Buffer.create 64 in
  let gout = Random.State.bool st in
  if gout then Buffer.add_string globals (Printf.sprintf "float out[%d];\n" n);
  Buffer.add_string buf (header ~globals:(Buffer.contents globals) ());
  Buffer.add_string buf (Printf.sprintf "  int n = %d;\n" n);
  let names = List.init narr (Printf.sprintf "a%d") in
  let halo = irange st 0 2 in
  List.iter
    (fun a -> Buffer.add_string buf (Printf.sprintf "  float %s[%d];\n" a (n + halo)))
    names;
  if not gout then Buffer.add_string buf (Printf.sprintf "  float out[%d];\n" n);
  List.iter (fun a -> Buffer.add_string buf (init_f st a (n + halo))) names;
  let clauses =
    List.map (fun a -> Printf.sprintf "%s[0:%d]" a (n + halo)) names
  in
  Buffer.add_string buf
    (Printf.sprintf "  #pragma offload target(mic:0) in(%s) out(out[0:n])\n"
       (String.concat ", " clauses));
  Buffer.add_string buf "  #pragma omp parallel for\n";
  Buffer.add_string buf "  for (i = 0; i < n; i++) {\n";
  let terms =
    List.map
      (fun a ->
        if halo = 0 then Printf.sprintf "%s[i]" a
        else Printf.sprintf "%s[i + %d]" a (irange st 0 halo))
      names
  in
  Buffer.add_string buf
    (Printf.sprintf "    out[i] = %s + %d.0;\n" (String.concat " * " terms)
       (irange st 0 3));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf (print_tail "out");
  Buffer.contents buf

let stencil st =
  let n = irange st 5 20 in
  Printf.sprintf
    {|int main(void) {
  int n = %d;
  float a[%d];
  float out[%d];
%s  #pragma offload target(mic:0) in(a[0:n]) out(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    float left = 0.0;
    float right = 0.0;
    if (i > 0) {
      left = a[i - 1];
    }
    if (i < n - 1) {
      right = a[i + 1];
    }
    out[i] = a[i] + %d.0 * (left + right);
  }
%s|}
    n n n (init_f st "a" n) (irange st 1 4) (print_tail "out")

let sparse_stride st =
  let n = irange st 4 14 in
  let k = irange st 2 4 in
  (* strictly fewer residues than the stride => sparse, reorderable *)
  let noffs = irange st 1 (k - 1) in
  let offs =
    List.sort_uniq compare
      (List.init noffs (fun _ -> Random.State.int st k))
  in
  let size = (k * (n - 1)) + k in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header ());
  Buffer.add_string buf (Printf.sprintf "  int n = %d;\n" n);
  Buffer.add_string buf (Printf.sprintf "  float a[%d];\n  float out[%d];\n" size n);
  Buffer.add_string buf (init_f st "a" size);
  Buffer.add_string buf
    (Printf.sprintf "  #pragma offload target(mic:0) in(a[0:%d]) out(out[0:n])\n" size);
  Buffer.add_string buf "  #pragma omp parallel for\n";
  Buffer.add_string buf "  for (i = 0; i < n; i++) {\n";
  let terms =
    List.map
      (fun o ->
        if o = 0 then Printf.sprintf "a[%d * i]" k
        else Printf.sprintf "a[%d * i + %d]" k o)
      offs
  in
  Buffer.add_string buf
    (Printf.sprintf "    out[i] = %s;\n" (String.concat " + " terms));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf (print_tail "out");
  Buffer.contents buf

let step_loop st =
  let n = 2 * irange st 3 10 in
  let step = 2 in
  Printf.sprintf
    {|int main(void) {
  int n = %d;
  float a[%d];
  float out[%d];
%s  for (i = 0; i < n; i++) { out[i] = 0.0; }
  #pragma offload target(mic:0) in(a[0:n]) inout(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i += %d) {
    out[i] = a[i] * %d.0;
  }
%s|}
    n n n (init_f st "a" n) step (irange st 2 5) (print_tail "out")

let gather st =
  let n = irange st 4 18 in
  let m = irange st 4 18 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header ());
  Buffer.add_string buf (Printf.sprintf "  int n = %d;\n" n);
  Buffer.add_string buf
    (Printf.sprintf "  float a[%d];\n  int b[%d];\n  float out[%d];\n" m n n);
  Buffer.add_string buf (init_f st "a" m);
  Buffer.add_string buf (init_i st "b" n m);
  Buffer.add_string buf
    (Printf.sprintf
       "  #pragma offload target(mic:0) in(a[0:%d], b[0:n]) out(out[0:n])\n" m);
  Buffer.add_string buf "  #pragma omp parallel for\n";
  Buffer.add_string buf "  for (i = 0; i < n; i++) {\n";
  Buffer.add_string buf
    (Printf.sprintf "    out[i] = a[b[i]] * %d.0 + %d.0;\n" (irange st 1 4)
       (irange st 0 3));
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf (print_tail "out");
  Buffer.contents buf

let guarded_gather st =
  let n = irange st 4 18 in
  let m = irange st 4 18 in
  Printf.sprintf
    {|int main(void) {
  int n = %d;
  float a[%d];
  int b[%d];
  float out[%d];
%s%s  #pragma offload target(mic:0) in(a[0:%d], b[0:n]) out(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    if (b[i] < %d) {
      out[i] = a[b[i]] * 2.0;
    } else {
      out[i] = 0.0;
    }
  }
%s|}
    n m n n (init_f st "a" m) (init_i st "b" n m) m (m / 2) (print_tail "out")

let aos st =
  let n = irange st 4 16 in
  Printf.sprintf
    {|struct pt {
  float x;
  float y;
  int tag;
};
int main(void) {
  int n = %d;
  struct pt ps[%d];
  float out[%d];
  for (i = 0; i < n; i++) {
    ps[i].x = (float)((i * %d + 1) %% 13) / 2.0;
    ps[i].y = (float)((i + %d) %% 7);
    ps[i].tag = i %% %d;
  }
  #pragma offload target(mic:0) in(ps[0:n]) out(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    out[i] = ps[i].x * %d.0 + ps[i].y;
  }
%s|}
    n n n (irange st 2 6) (irange st 0 4) (irange st 2 5) (irange st 2 4)
    (print_tail "out")

let chain st ~read_buddy =
  let n = irange st 4 14 in
  let k = irange st 1 (n - 1) in
  let body =
    if read_buddy then
      Printf.sprintf "    out[i] = rs[i].w * %d.0 + rs[i].buddy->w;"
        (irange st 2 4)
    else Printf.sprintf "    out[i] = rs[i].w * %d.0;" (irange st 2 4)
  in
  Printf.sprintf
    {|struct rec {
  float w;
  struct rec *buddy;
};
int main(void) {
  int n = %d;
  struct rec rs[%d];
  float out[%d];
  for (i = 0; i < n; i++) {
    rs[i].w = (float)((i * %d + 2) %% 11);
    rs[i].buddy = &rs[(i + %d) %% n];
  }
  #pragma offload target(mic:0) in(rs[0:n]) out(out[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
%s
  }
%s|}
    n n n (irange st 2 8) k body (print_tail "out")

let multi_offload ?(host_scalar = false) st =
  let n = irange st 4 14 in
  let iters = irange st 2 4 in
  let inner = irange st 2 3 in
  let buf = Buffer.create 512 in
  Buffer.add_string buf (header ());
  Buffer.add_string buf (Printf.sprintf "  int n = %d;\n" n);
  Buffer.add_string buf (Printf.sprintf "  float x[%d];\n  float y[%d];\n" n n);
  if host_scalar then Buffer.add_string buf "  int ticks = 0;\n";
  Buffer.add_string buf (init_f st "x" n);
  Buffer.add_string buf (init_f st "y" n);
  Buffer.add_string buf (Printf.sprintf "  for (t = 0; t < %d; t++) {\n" iters);
  for j = 0 to inner - 1 do
    let c = irange st 2 5 in
    Buffer.add_string buf
      "    #pragma offload target(mic:0) in(x[0:n]) inout(y[0:n])\n";
    Buffer.add_string buf "    #pragma omp parallel for\n";
    Buffer.add_string buf "    for (i = 0; i < n; i++) {\n";
    if j mod 2 = 0 then
      Buffer.add_string buf (Printf.sprintf "      y[i] = y[i] + x[i] * %d.0;\n" c)
    else
      Buffer.add_string buf
        (Printf.sprintf "      y[i] = y[i] * 0.5 + %d.0;\n" c);
    Buffer.add_string buf "    }\n"
  done;
  if host_scalar then Buffer.add_string buf "    ticks = ticks + 1;\n";
  Buffer.add_string buf "  }\n";
  Buffer.add_string buf "  for (i = 0; i < n; i++) { print_float(y[i]); }\n";
  if host_scalar then Buffer.add_string buf "  print_int(ticks);\n";
  Buffer.add_string buf "  return 0;\n}\n";
  Buffer.contents buf

let plain_loop st =
  let n = irange st 3 12 in
  Printf.sprintf
    {|int main(void) {
  int n = %d;
  int acc[1];
  int j = 0;
  acc[0] = 0;
  while (j < n) {
    acc[0] = acc[0] + j * %d;
    j = j + 1;
  }
  print_int(acc[0]);
  return 0;
}
|}
    n (irange st 1 5)

let inout st =
  let n = irange st 4 18 in
  Printf.sprintf
    {|int main(void) {
  int n = %d;
  float a[%d];
  float acc[%d];
%s  for (i = 0; i < n; i++) { acc[i] = (float)(i %% %d); }
  #pragma offload target(mic:0) in(a[0:n]) inout(acc[0:n])
  #pragma omp parallel for
  for (i = 0; i < n; i++) {
    acc[i] = acc[i] * 0.5 + a[i] * %d.0;
  }
%s|}
    n n n (init_f st "a" n) (irange st 3 9) (irange st 1 3) (print_tail "acc")

(** [generate pat ~seed] is the deterministic instance of [pat] for
    [seed], as MiniC source text. *)
let generate pattern ~seed =
  let st = rng pattern seed in
  match pattern with
  | Dense -> dense st
  | Stencil -> stencil st
  | Sparse_stride -> sparse_stride st
  | Step_loop -> step_loop st
  | Gather -> gather st
  | Guarded_gather -> guarded_gather st
  | Aos -> aos st
  | Chain -> chain st ~read_buddy:(Random.State.bool st)
  | Multi_offload -> multi_offload st
  | Host_scalar -> multi_offload ~host_scalar:true st
  | Plain_loop -> plain_loop st
  | Inout -> inout st
