(** Differential transform validation.

    Every COMP optimization is a source-to-source rewrite that must be
    observationally equivalent to the original program; this library is
    the harness that checks it.  {!equiv} is the oracle: it runs the
    original and the transformed program through the dual-address-space
    reference interpreter ({!Minic.Interp}) and compares everything
    observable — printed output, [main]'s return value, and the final
    contents of global storage — returning a structured {!verdict}.

    Around the oracle:
    - {!Genprog} generates whole well-typed MiniC programs from
      parameterized access-pattern families, so each transform's
      [applicable] predicate is exercised positively and negatively;
    - {!Shrink} minimizes any diverging program, and {!Corpus} records
      it under [test/corpus/regressions/] for deterministic replay;
    - {!Inject} seeds a deliberate rewrite bug, validating that the
      harness catches, shrinks, and records what it is meant to catch;
    - {!Metamorphic} checks the cost model's own invariants on
      simulated plans, where there is no output to diff.

    Drivers: [compc check] (files and generated instances) and the
    [check] mode of [bench/main.ml] (the workload registry). *)

module Genprog = Genprog
module Shrink = Shrink
module Corpus = Corpus
module Inject = Inject
module Metamorphic = Metamorphic

(** {1 The transforms under test} *)

type transform = Streaming | Regularize | Merge | Soa | Shared | Residency

let all_transforms = [ Streaming; Regularize; Merge; Soa; Shared; Residency ]

let transform_name = function
  | Streaming -> "streaming"
  | Regularize -> "regularize"
  | Merge -> "merge"
  | Soa -> "soa"
  | Shared -> "shared"
  | Residency -> "residency"

let transform_of_name s =
  List.find_opt (fun t -> transform_name t = s) all_transforms

(** [apply txf prog] runs one whole-program transform and returns the
    rewritten program with the number of rewrite applications (0 means
    the transform was not applicable anywhere — the identity). *)
let apply ?(nblocks = 4) txf prog =
  (* deterministic generated names per (program, transform), whichever
     domain of a parallel sweep runs the rewrite *)
  Transforms.Util.reset_fresh ();
  match txf with
  | Streaming -> Transforms.Streaming.transform_all ~nblocks prog
  | Regularize ->
      let p, applied =
        Transforms.Regularize.transform_all_kinds
          ~kinds:[ Transforms.Regularize.Reorder; Transforms.Regularize.Split ]
          prog
      in
      (p, List.length applied)
  | Soa ->
      let p, applied =
        Transforms.Regularize.transform_all_kinds
          ~kinds:[ Transforms.Regularize.Soa ] prog
      in
      (p, List.length applied)
  | Merge -> Transforms.Merge_offload.transform_all prog
  | Shared -> Transforms.Shared_mem.transform_all prog
  | Residency -> Residency.transform prog

let applicable ?nblocks txf prog = snd (apply ?nblocks txf prog) > 0

(** {1 The oracle} *)

type divergence =
  | Output_line of { line : int; orig : string; transformed : string }
      (** first differing line of printed output (1-based) *)
  | Return_value of { orig : string; transformed : string }
  | Global_cell of {
      name : string;
      cell : int;
      orig : string;
      transformed : string;
    }  (** first differing cell of a global's final storage *)

type verdict =
  | Equal
  | Diverged of divergence
  | Orig_failed of string
      (** the original failed where the transformed program ran — for
          an {e enabling} transform (shared-memory lowering of
          pointer-based data the device cannot otherwise touch) this is
          the expected success mode *)
  | Transform_failed of string
      (** the transformed program fails to typecheck or run where the
          original ran: always a transform bug *)
  | Both_failed of { orig_err : string; transformed_err : string }

let value_str = function
  | Minic.Interp.Vint n -> string_of_int n
  | Minic.Interp.Vfloat f -> Printf.sprintf "%.6g" f
  | Minic.Interp.Vbool b -> string_of_bool b
  | Minic.Interp.Vptr _ -> "<ptr>"
  | Minic.Interp.Vundef -> "<undef>"

(* Cell-level comparison with wildcards: an undefined original cell
   constrains nothing (the transform may initialize scratch), and
   pointer values only have to stay pointers (allocation order shifts
   legitimately under rewrites). *)
let same_value a b =
  match (a, b) with
  | Minic.Interp.Vundef, _ -> true
  | Minic.Interp.Vptr _, Minic.Interp.Vptr _ -> true
  | a, b -> a = b

let diff_output a b =
  let la = String.split_on_char '\n' a in
  let lb = String.split_on_char '\n' b in
  let eof = "<end of output>" in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la', y :: lb' ->
        if String.equal x y then go (i + 1) la' lb'
        else Some (Output_line { line = i; orig = x; transformed = y })
    | x :: _, [] -> Some (Output_line { line = i; orig = x; transformed = eof })
    | [], y :: _ -> Some (Output_line { line = i; orig = eof; transformed = y })
  in
  go 1 la lb

let diff_globals ga gb =
  List.fold_left
    (fun acc (name, cells) ->
      match acc with
      | Some _ -> acc
      | None -> (
          match List.assoc_opt name gb with
          | None ->
              Some
                (Global_cell
                   {
                     name;
                     cell = 0;
                     orig = "<present>";
                     transformed = "<missing>";
                   })
          | Some cells' ->
              let rec go i xs ys =
                match (xs, ys) with
                | [], [] -> None
                | x :: xs', y :: ys' ->
                    if same_value x y then go (i + 1) xs' ys'
                    else
                      Some
                        (Global_cell
                           {
                             name;
                             cell = i;
                             orig = value_str x;
                             transformed = value_str y;
                           })
                | _ ->
                    Some
                      (Global_cell
                         {
                           name;
                           cell = i;
                           orig = Printf.sprintf "<%d cells>" (List.length cells);
                           transformed =
                             Printf.sprintf "<%d cells>" (List.length cells');
                         })
              in
              go 0 cells cells'))
    None ga

let compare_outcomes (a : Minic.Interp.outcome) (b : Minic.Interp.outcome) =
  match diff_output a.output b.output with
  | Some d -> Diverged d
  | None ->
      if not (same_value a.ret b.ret) then
        Diverged
          (Return_value
             { orig = value_str a.ret; transformed = value_str b.ret })
      else (
        match diff_globals a.globals b.globals with
        | Some d -> Diverged d
        | None -> Equal)

(** [equiv ?engine ?fuel orig transformed] runs both programs and
    compares printed output, return value, and final global storage.
    [transformed] is typechecked first: a transform that produces
    ill-typed code is a {!Transform_failed} before anything runs.

    [engine] selects the evaluator — {!Minic.Interp.Compiled} (the
    default: the closure-compiling fast evaluator, whose per-domain
    cache means the N rewrites of one original compile it once) or
    {!Minic.Interp.Reference} (the tree-walking interpreter, the
    [--eval reference] escape hatch).  Both produce identical verdicts;
    the engine-equivalence suite and the [@perf] alias enforce it. *)
let equiv ?(engine = Minic.Interp.Compiled) ?fuel orig transformed =
  let run = Minic.Compile_eval.run ~engine ?fuel in
  match Minic.Typecheck.check_program transformed with
  | Error e -> Transform_failed ("type error: " ^ e)
  | Ok _ -> (
      match (run orig, run transformed) with
      | Error oe, Error te -> Both_failed { orig_err = oe; transformed_err = te }
      | Error oe, Ok _ -> Orig_failed oe
      | Ok _, Error te -> Transform_failed te
      | Ok oa, Ok ob -> compare_outcomes oa ob)

(** Is [verdict] acceptable for [txf]?  [Equal] always is; so is both
    sides failing identically before the transform even matters.  An
    original-only failure is acceptable only for the enabling
    shared-memory transform (it exists to make previously-crashing
    device code run). *)
let verdict_ok txf = function
  | Equal -> true
  | Both_failed _ -> true
  | Orig_failed _ -> txf = Shared
  | Diverged _ | Transform_failed _ -> false

let divergence_str = function
  | Output_line { line; orig; transformed } ->
      Printf.sprintf "output line %d: %S vs %S" line orig transformed
  | Return_value { orig; transformed } ->
      Printf.sprintf "return value: %s vs %s" orig transformed
  | Global_cell { name; cell; orig; transformed } ->
      Printf.sprintf "global %s[%d]: %s vs %s" name cell orig transformed

let verdict_str = function
  | Equal -> "equal"
  | Diverged d -> "diverged at " ^ divergence_str d
  | Orig_failed e -> "original failed: " ^ e
  | Transform_failed e -> "transformed program failed: " ^ e
  | Both_failed { orig_err; _ } -> "both failed: " ^ orig_err

(** {1 Checking one program} *)

type report = { transform : transform; sites : int; verdict : verdict }

(** Every transform in [transforms] applied (independently) to [prog],
    with its site count and oracle verdict.  [inject] corrupts each
    rewritten program first — the harness must then flag it. *)
let check_program ?engine ?fuel ?nblocks ?(inject = false)
    ?(transforms = all_transforms) prog =
  List.map
    (fun txf ->
      let prog', sites = apply ?nblocks txf prog in
      if sites = 0 then { transform = txf; sites; verdict = Equal }
      else
        let prog' = if inject then Inject.corrupt prog' else prog' in
        { transform = txf; sites; verdict = equiv ?engine ?fuel prog prog' })
    transforms

(** {1 Fault-plan differential checking}

    The oracle above validates the rewrite's semantics; this validates
    the fault-model runtime around it.  The transformed program is
    replayed on the machine model twice — fault-free, and under an
    injected fault plan with full recovery (retries, timeouts, CPU
    fallback) — and must still produce the oracle answer: injected
    faults change {e when} things finish, never {e what} the program
    computes, and recovery must complete rather than deadlock. *)

type faulted_report = {
  f_transform : transform;
  f_sites : int;
  f_verdict : verdict;  (** oracle verdict on the transformed program *)
  f_clean_s : float;  (** fault-free replay makespan *)
  f_faulted_s : float;  (** recovered makespan under the fault plan *)
  f_fellback : bool;  (** the device died and the CPU took over *)
  f_died : bool;  (** device death the policy could not recover *)
}

(** Each transform applied to [prog], oracle-checked, then replayed
    clean and under [spec] with recovery. *)
let check_faulted ?engine ?fuel ?nblocks ?(transforms = all_transforms) ~spec
    prog =
  List.map
    (fun txf ->
      let prog', sites = apply ?nblocks txf prog in
      let verdict =
        if sites = 0 then Equal else equiv ?engine ?fuel prog prog'
      in
      let events =
        match Minic.Compile_eval.run ?engine ?fuel prog' with
        | Ok o -> o.Minic.Interp.events
        | Error _ -> []
      in
      let clean_cfg = Machine.Config.paper_default in
      let fault_cfg = Machine.Config.with_faults clean_cfg spec in
      let clean_s =
        (Runtime.Replay.schedule clean_cfg events).Machine.Engine.makespan
      in
      let faulted_s, fellback, died =
        match Runtime.Replay.schedule_recovered fault_cfg events with
        | r ->
            ( r.Runtime.Replay.r_result.Machine.Engine.makespan,
              r.Runtime.Replay.r_fellback,
              false )
        | exception Fault.Device_dead _ -> (Float.nan, false, true)
      in
      {
        f_transform = txf;
        f_sites = sites;
        f_verdict = verdict;
        f_clean_s = clean_s;
        f_faulted_s = faulted_s;
        f_fellback = fellback;
        f_died = died;
      })
    transforms

(** Acceptable faulted run: the oracle verdict holds and recovery
    completed (no unrecovered device death, makespan finite). *)
let faulted_ok r =
  verdict_ok r.f_transform r.f_verdict
  && (not r.f_died)
  && Float.is_finite r.f_faulted_s

(** {1 Migration differential checking}

    Validates the multi-device degradation ladder.  The program runs
    under {e both} evaluator engines (the cross-engine oracle: same
    output, return value and globals), then its trace is scheduled by
    {!Runtime.Migrate} twice — on the clean single-device machine and
    on an [N]-device machine under a per-device fault plan.  Faults
    and migration may only change {e when} things finish, never what
    the program computes, so beyond the oracle the check enforces the
    scheduling contract: {e conservation} (every block executes
    exactly once, on a device that was alive when it finished, with
    host placements only after total device loss) and a finite
    recovered makespan. *)

type migrated_report = {
  mg_verdict : verdict;  (** cross-engine oracle on the program itself *)
  mg_blocks : int;  (** offload blocks in the trace *)
  mg_clean_s : float;  (** clean single-device makespan *)
  mg_faulted_s : float;  (** recovered multi-device makespan *)
  mg_migrated : int;  (** block re-queues off dead devices *)
  mg_dead : int list;  (** devices declared dead *)
  mg_fellback : bool;  (** every device died; the host ran the rest *)
  mg_bytes_moved : float;  (** wire bytes under the fault plan *)
  mg_conservation : string option;  (** [Some msg] when violated *)
  mg_died : bool;  (** unrecoverable: all devices dead, no fallback *)
}

(* every block exactly once; nothing finishes on a device after its
   death; host placements only when the ladder fell all the way back *)
let migration_conserved ~blocks (m : Runtime.Migrate.outcome) =
  let ids =
    List.sort compare
      (List.map (fun p -> p.Runtime.Migrate.pl_block) m.m_placements)
  in
  if ids <> List.init blocks Fun.id then
    Some
      (Printf.sprintf "placement set is not {0..%d} exactly once"
         (blocks - 1))
  else
    let death d = List.assoc_opt d m.Runtime.Migrate.m_dead in
    let offender =
      List.find_opt
        (fun (p : Runtime.Migrate.placement) ->
          if p.pl_dev < 0 then not m.Runtime.Migrate.m_fellback
          else
            match death p.pl_dev with
            | Some t -> p.pl_finish > t +. 1e-9
            | None -> false)
        m.m_placements
    in
    Option.map
      (fun (p : Runtime.Migrate.placement) ->
        if p.pl_dev < 0 then
          Printf.sprintf "block %d ran on the host without fallback"
            p.pl_block
        else
          Printf.sprintf "block %d finished on dev%d after its death"
            p.pl_block p.pl_dev)
      offender

(** Run the migration oracle for [prog] on a [devices]x[streams]
    machine under [spec].  [?engine] picks the primary engine; the
    other one is always run too for the cross-engine verdict. *)
let check_migrated ?(engine = Minic.Interp.Compiled) ?fuel ?params
    ~devices ~streams ~spec prog =
  let other =
    match engine with
    | Minic.Interp.Compiled -> Minic.Interp.Reference
    | Minic.Interp.Reference -> Minic.Interp.Compiled
  in
  let run e = Minic.Compile_eval.run ~engine:e ?fuel prog in
  let trivial verdict =
    {
      mg_verdict = verdict;
      mg_blocks = 0;
      mg_clean_s = 0.;
      mg_faulted_s = 0.;
      mg_migrated = 0;
      mg_dead = [];
      mg_fellback = false;
      mg_bytes_moved = 0.;
      mg_conservation = None;
      mg_died = false;
    }
  in
  match (run engine, run other) with
  | Error oe, Error te ->
      trivial (Both_failed { orig_err = oe; transformed_err = te })
  | Error oe, Ok _ -> trivial (Orig_failed oe)
  | Ok _, Error te -> trivial (Transform_failed te)
  | Ok oa, Ok ob -> (
      let verdict = compare_outcomes oa ob in
      let events = oa.Minic.Interp.events in
      let clean_cfg = Machine.Config.paper_default in
      let fault_cfg =
        Machine.Config.with_faults
          (Machine.Config.with_devices clean_cfg ~devices ~streams)
          spec
      in
      let clean = Runtime.Migrate.schedule ?params clean_cfg events in
      let blocks = List.length clean.Runtime.Migrate.m_placements in
      let clean_s = clean.Runtime.Migrate.m_result.Machine.Engine.makespan in
      match Runtime.Migrate.schedule ?params fault_cfg events with
      | m ->
          {
            mg_verdict = verdict;
            mg_blocks = blocks;
            mg_clean_s = clean_s;
            mg_faulted_s = m.Runtime.Migrate.m_result.Machine.Engine.makespan;
            mg_migrated = m.Runtime.Migrate.m_migrated;
            mg_dead = List.map fst m.Runtime.Migrate.m_dead;
            mg_fellback = m.Runtime.Migrate.m_fellback;
            mg_bytes_moved = m.Runtime.Migrate.m_bytes_moved;
            mg_conservation = migration_conserved ~blocks m;
            mg_died = false;
          }
      | exception Fault.Device_dead _ ->
          {
            (trivial verdict) with
            mg_blocks = blocks;
            mg_clean_s = clean_s;
            mg_faulted_s = Float.nan;
            mg_died = true;
          })

(** Acceptable migrated run: cross-engine oracle holds, recovery
    completed, conservation holds, makespan finite. *)
let migrated_ok r =
  (match r.mg_verdict with Equal | Both_failed _ -> true | _ -> false)
  && (not r.mg_died)
  && r.mg_conservation = None
  && Float.is_finite r.mg_faulted_s

(** {1 Residency differential checking}

    Output equivalence is necessary but not sufficient for the
    residency pass: it exists to {e move less data}, so the check also
    holds it to a stats contract against the non-resident oracle —
    copy-backs and kernel launches are untouched (same [d2h] cells,
    same offload count), the transfer-event count grows by at most the
    hoisted pre-loop transfers, and with no hoists the [h2d] traffic
    can only shrink (a hoisted transfer may legitimately pay for a
    loop that then runs zero times). *)

type residency_report = {
  rr_sites : int;  (** elided clauses + hoisted transfers *)
  rr_hoists : int;
  rr_verdict : verdict;
  rr_orig_h2d : int;  (** oracle host-to-device cells *)
  rr_res_h2d : int;  (** same, after the residency rewrite *)
  rr_orig_d2h : int;
  rr_res_d2h : int;
  rr_contract : string option;
      (** [Some msg] when a stats inequality is violated *)
}

let residency_ok r = verdict_ok Residency r.rr_verdict && r.rr_contract = None

let check_residency ?(engine = Minic.Interp.Compiled) ?fuel prog =
  let obs = Obs.create () in
  Transforms.Util.reset_fresh ();
  let prog', sites = Residency.transform ~obs prog in
  let hoists = Obs.count obs "residency.hoist" in
  let trivial =
    {
      rr_sites = sites;
      rr_hoists = hoists;
      rr_verdict = Equal;
      rr_orig_h2d = 0;
      rr_res_h2d = 0;
      rr_orig_d2h = 0;
      rr_res_d2h = 0;
      rr_contract = None;
    }
  in
  if sites = 0 then trivial
  else
    let verdict = equiv ~engine ?fuel prog prog' in
    let run = Minic.Compile_eval.run ~engine ?fuel in
    match (run prog, run prog') with
    | Ok a, Ok b ->
        let transfers (o : Minic.Interp.outcome) =
          List.length
            (List.filter
               (function Minic.Interp.Ev_transfer _ -> true | _ -> false)
               o.events)
        in
        let offloads (o : Minic.Interp.outcome) = o.stats.offloads in
        let sa = a.Minic.Interp.stats and sb = b.Minic.Interp.stats in
        let contract =
          if sb.cells_d2h <> sa.cells_d2h then
            Some
              (Printf.sprintf "d2h cells changed: %d vs oracle %d"
                 sb.cells_d2h sa.cells_d2h)
          else if offloads b <> offloads a then
            Some
              (Printf.sprintf "offload count changed: %d vs oracle %d"
                 (offloads b) (offloads a))
          else if transfers b > transfers a + hoists then
            Some
              (Printf.sprintf
                 "transfer events grew: %d vs oracle %d + %d hoists"
                 (transfers b) (transfers a) hoists)
          else if hoists = 0 && sb.cells_h2d > sa.cells_h2d then
            Some
              (Printf.sprintf
                 "h2d cells grew without hoists: %d vs oracle %d"
                 sb.cells_h2d sa.cells_h2d)
          else None
        in
        {
          rr_sites = sites;
          rr_hoists = hoists;
          rr_verdict = verdict;
          rr_orig_h2d = sa.cells_h2d;
          rr_res_h2d = sb.cells_h2d;
          rr_orig_d2h = sa.cells_d2h;
          rr_res_d2h = sb.cells_d2h;
          rr_contract = None;
        }
        |> fun r -> { r with rr_contract = contract }
    | _ ->
        (* one side failed: the oracle verdict alone decides *)
        { trivial with rr_sites = sites; rr_verdict = verdict }

(** {1 Shrinking} *)

(* A shrink candidate must keep failing the *same way*: well-typed,
   transform still applicable, oracle still reporting a divergence. *)
let diverges ?engine ?fuel ?nblocks ~inject txf prog =
  match Minic.Typecheck.check_program prog with
  | Error _ -> false
  | Ok _ -> (
      match apply ?nblocks txf prog with
      | exception _ -> false
      | _, 0 -> false
      | prog', _ -> (
          let prog' = if inject then Inject.corrupt prog' else prog' in
          match equiv ?engine ?fuel prog prog' with
          | Diverged _ -> true
          | Equal | Orig_failed _ | Transform_failed _ | Both_failed _ ->
              false))

(** Minimize a program whose [txf]-rewrite diverges (with the same
    [inject] setting used to find it). *)
let minimize_diverging ?engine ?fuel ?nblocks ?(inject = false) ?max_tries txf
    prog =
  Shrink.minimize ?max_tries
    ~still_failing:(fun p -> diverges ?engine ?fuel ?nblocks ~inject txf p)
    prog

(** {1 Expected applicability}

    The generator's truth table: for each pattern family, whether a
    transform must ([Some true]), must not ([Some false]), or may
    ([None], instance-dependent) find an applicable site.  Property
    tests check [applicable] against every [Some]. *)
let expected_applicable pattern transform =
  let exp ~streaming ~regularize ~merge ~soa ~shared ~residency =
    match transform with
    | Streaming -> streaming
    | Regularize -> regularize
    | Merge -> merge
    | Soa -> soa
    | Shared -> shared
    | Residency -> residency
  in
  let y = Some true and n = Some false and u = None in
  match (pattern : Genprog.pattern) with
  | Dense ->
      exp ~streaming:y ~regularize:n ~merge:n ~soa:n ~shared:n ~residency:n
  | Stencil ->
      exp ~streaming:y ~regularize:n ~merge:n ~soa:n ~shared:n ~residency:n
  | Sparse_stride ->
      exp ~streaming:u ~regularize:y ~merge:n ~soa:n ~shared:n ~residency:n
  | Step_loop ->
      exp ~streaming:n ~regularize:u ~merge:n ~soa:n ~shared:n ~residency:n
  | Gather ->
      exp ~streaming:n ~regularize:y ~merge:n ~soa:n ~shared:n ~residency:n
  | Guarded_gather ->
      exp ~streaming:n ~regularize:n ~merge:n ~soa:n ~shared:n ~residency:n
  | Aos ->
      exp ~streaming:u ~regularize:u ~merge:n ~soa:y ~shared:n ~residency:n
  | Chain ->
      exp ~streaming:u ~regularize:u ~merge:n ~soa:u ~shared:y ~residency:n
  | Multi_offload ->
      exp ~streaming:u ~regularize:n ~merge:y ~soa:n ~shared:n ~residency:y
  | Host_scalar ->
      exp ~streaming:u ~regularize:n ~merge:n ~soa:n ~shared:n ~residency:y
  | Plain_loop ->
      exp ~streaming:n ~regularize:n ~merge:n ~soa:n ~shared:n ~residency:n
  | Inout ->
      exp ~streaming:y ~regularize:n ~merge:n ~soa:n ~shared:n ~residency:n

(** {1 Residency metamorphic relations}

    The inter-offload residency rewrite must commute with
    contract-preserving source mutations:

    - {b widening}: declaring more than an offload needs — an [in]
      clause whose array the body never writes promoted to [inout] —
      only adds copy-backs of unchanged cells, so outputs are the
      same and the rewrite of the widened program must still match
      its own oracle {e and} the pristine program;
    - {b host-write insertion}: a semantically inert host store
      [a[0] = a[0]] after an offload makes the device shadow
      untrusted, so the rewrite may only elide {e fewer} transfers,
      never more, and must still match the mutated oracle.

    Each relation returns [Ok ()] or [Error msg] in the
    {!Metamorphic} style. *)

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let ( let* ) = Result.bind

(** Promote every plain [in] section whose array the body provably
    never writes to [inout].  Signalled offloads keep their pipelining
    contract untouched. *)
let widen_in_to_inout prog =
  Minic.Ast.(
    map_funcs
      (fun f ->
        {
          f with
          body =
            map_block
              (fun s ->
                match s with
                | Spragma (Offload spec, body)
                  when Option.is_none spec.signal ->
                    let bw = writes [ body ] in
                    (* an array named by several sections of one spec
                       regrows its shadow without copying, so an added
                       copy-back could write back undefined cells *)
                    let multi arr =
                      List.length
                        (List.filter
                           (fun (s : section) -> s.arr = arr)
                           (spec.ins @ spec.inouts @ spec.outs))
                      > 1
                    in
                    let movable, kept =
                      List.partition
                        (fun (sec : section) ->
                          Option.is_none sec.into
                          && (not bw.w_unknown)
                          && (not (List.mem sec.arr (bw.w_vars @ bw.w_mem)))
                          && (not (List.mem sec.arr spec.nocopy))
                          && not (multi sec.arr))
                        spec.ins
                    in
                    Spragma
                      ( Offload
                          {
                            spec with
                            ins = kept;
                            inouts = spec.inouts @ movable;
                          },
                        body )
                | s -> s)
              f.body;
        })
      prog)

(** Insert [a[0] = a[0]] right after the first offload that declares a
    plain [in] clause; [None] when the program has no such site. *)
let insert_host_write prog =
  let open Minic.Ast in
  let inserted = ref false in
  let pick (spec : offload_spec) =
    List.find_map
      (fun (sec : section) ->
        if Option.is_none sec.into then Some sec.arr else None)
      spec.ins
  in
  let self_write arr =
    Sassign (idx (var arr) (int_ 0), idx (var arr) (int_ 0))
  in
  let rec blk b = List.concat_map stmts b
  and stmts s =
    if !inserted then [ s ]
    else
      match s with
      | Spragma (Offload spec, _) -> (
          match pick spec with
          | Some arr ->
              inserted := true;
              [ s; self_write arr ]
          | None -> [ s ])
      | Sif (c, b1, b2) -> [ Sif (c, blk b1, blk b2) ]
      | Swhile (c, b) -> [ Swhile (c, blk b) ]
      | Sfor fl -> [ Sfor { fl with body = blk fl.body } ]
      | Sblock b -> [ Sblock (blk b) ]
      | Spragma (p, inner) -> (
          match stmts inner with
          | one :: rest -> Spragma (p, one) :: rest
          | [] -> [ s ])
      | s -> [ s ]
  in
  let prog' = map_funcs (fun f -> { f with body = blk f.body }) prog in
  if !inserted then Some prog' else None

let residency_failure r =
  match r.rr_contract with Some m -> m | None -> verdict_str r.rr_verdict

let elide_total obs =
  Obs.count obs "residency.elide.in" + Obs.count obs "residency.elide.inout"

(** Widen [prog]'s pragmas, then require the residency rewrite of the
    widened program to match both its own oracle and the pristine
    program. *)
let check_residency_widened ?(engine = Minic.Interp.Compiled) ?fuel prog =
  let widened = widen_in_to_inout prog in
  let r = check_residency ~engine ?fuel widened in
  let* () =
    if residency_ok r then Ok ()
    else
      errf "widened program fails the residency contract: %s"
        (residency_failure r)
  in
  let widened', _ = Residency.transform widened in
  match equiv ~engine ?fuel prog widened' with
  | Equal | Both_failed _ -> Ok ()
  | v -> errf "widening + residency changed behaviour: %s" (verdict_str v)

(** Insert an inert host write after the first offload, then require
    the rewrite of the mutated program to match its oracle while
    eliding no more than the pristine rewrite did. *)
let check_residency_hostwrite ?(engine = Minic.Interp.Compiled) ?fuel prog =
  match insert_host_write prog with
  | None -> Ok ()
  | Some mutated ->
      let r = check_residency ~engine ?fuel mutated in
      let* () =
        if residency_ok r then Ok ()
        else
          errf "host-written program fails the residency contract: %s"
            (residency_failure r)
      in
      let count p =
        let obs = Obs.create () in
        ignore (Residency.transform ~obs p);
        elide_total obs
      in
      let e0 = count prog and e1 = count mutated in
      if e1 <= e0 then Ok ()
      else errf "inert host write increased elisions: %d -> %d" e0 e1
