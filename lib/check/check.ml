(** Differential transform validation.

    Every COMP optimization is a source-to-source rewrite that must be
    observationally equivalent to the original program; this library is
    the harness that checks it.  {!equiv} is the oracle: it runs the
    original and the transformed program through the dual-address-space
    reference interpreter ({!Minic.Interp}) and compares everything
    observable — printed output, [main]'s return value, and the final
    contents of global storage — returning a structured {!verdict}.

    Around the oracle:
    - {!Genprog} generates whole well-typed MiniC programs from
      parameterized access-pattern families, so each transform's
      [applicable] predicate is exercised positively and negatively;
    - {!Shrink} minimizes any diverging program, and {!Corpus} records
      it under [test/corpus/regressions/] for deterministic replay;
    - {!Inject} seeds a deliberate rewrite bug, validating that the
      harness catches, shrinks, and records what it is meant to catch;
    - {!Metamorphic} checks the cost model's own invariants on
      simulated plans, where there is no output to diff.

    Drivers: [compc check] (files and generated instances) and the
    [check] mode of [bench/main.ml] (the workload registry). *)

module Genprog = Genprog
module Shrink = Shrink
module Corpus = Corpus
module Inject = Inject
module Metamorphic = Metamorphic

(** {1 The transforms under test} *)

type transform = Streaming | Regularize | Merge | Soa | Shared

let all_transforms = [ Streaming; Regularize; Merge; Soa; Shared ]

let transform_name = function
  | Streaming -> "streaming"
  | Regularize -> "regularize"
  | Merge -> "merge"
  | Soa -> "soa"
  | Shared -> "shared"

let transform_of_name s =
  List.find_opt (fun t -> transform_name t = s) all_transforms

(** [apply txf prog] runs one whole-program transform and returns the
    rewritten program with the number of rewrite applications (0 means
    the transform was not applicable anywhere — the identity). *)
let apply ?(nblocks = 4) txf prog =
  (* deterministic generated names per (program, transform), whichever
     domain of a parallel sweep runs the rewrite *)
  Transforms.Util.reset_fresh ();
  match txf with
  | Streaming -> Transforms.Streaming.transform_all ~nblocks prog
  | Regularize ->
      let p, applied =
        Transforms.Regularize.transform_all_kinds
          ~kinds:[ Transforms.Regularize.Reorder; Transforms.Regularize.Split ]
          prog
      in
      (p, List.length applied)
  | Soa ->
      let p, applied =
        Transforms.Regularize.transform_all_kinds
          ~kinds:[ Transforms.Regularize.Soa ] prog
      in
      (p, List.length applied)
  | Merge -> Transforms.Merge_offload.transform_all prog
  | Shared -> Transforms.Shared_mem.transform_all prog

let applicable ?nblocks txf prog = snd (apply ?nblocks txf prog) > 0

(** {1 The oracle} *)

type divergence =
  | Output_line of { line : int; orig : string; transformed : string }
      (** first differing line of printed output (1-based) *)
  | Return_value of { orig : string; transformed : string }
  | Global_cell of {
      name : string;
      cell : int;
      orig : string;
      transformed : string;
    }  (** first differing cell of a global's final storage *)

type verdict =
  | Equal
  | Diverged of divergence
  | Orig_failed of string
      (** the original failed where the transformed program ran — for
          an {e enabling} transform (shared-memory lowering of
          pointer-based data the device cannot otherwise touch) this is
          the expected success mode *)
  | Transform_failed of string
      (** the transformed program fails to typecheck or run where the
          original ran: always a transform bug *)
  | Both_failed of { orig_err : string; transformed_err : string }

let value_str = function
  | Minic.Interp.Vint n -> string_of_int n
  | Minic.Interp.Vfloat f -> Printf.sprintf "%.6g" f
  | Minic.Interp.Vbool b -> string_of_bool b
  | Minic.Interp.Vptr _ -> "<ptr>"
  | Minic.Interp.Vundef -> "<undef>"

(* Cell-level comparison with wildcards: an undefined original cell
   constrains nothing (the transform may initialize scratch), and
   pointer values only have to stay pointers (allocation order shifts
   legitimately under rewrites). *)
let same_value a b =
  match (a, b) with
  | Minic.Interp.Vundef, _ -> true
  | Minic.Interp.Vptr _, Minic.Interp.Vptr _ -> true
  | a, b -> a = b

let diff_output a b =
  let la = String.split_on_char '\n' a in
  let lb = String.split_on_char '\n' b in
  let eof = "<end of output>" in
  let rec go i la lb =
    match (la, lb) with
    | [], [] -> None
    | x :: la', y :: lb' ->
        if String.equal x y then go (i + 1) la' lb'
        else Some (Output_line { line = i; orig = x; transformed = y })
    | x :: _, [] -> Some (Output_line { line = i; orig = x; transformed = eof })
    | [], y :: _ -> Some (Output_line { line = i; orig = eof; transformed = y })
  in
  go 1 la lb

let diff_globals ga gb =
  List.fold_left
    (fun acc (name, cells) ->
      match acc with
      | Some _ -> acc
      | None -> (
          match List.assoc_opt name gb with
          | None ->
              Some
                (Global_cell
                   {
                     name;
                     cell = 0;
                     orig = "<present>";
                     transformed = "<missing>";
                   })
          | Some cells' ->
              let rec go i xs ys =
                match (xs, ys) with
                | [], [] -> None
                | x :: xs', y :: ys' ->
                    if same_value x y then go (i + 1) xs' ys'
                    else
                      Some
                        (Global_cell
                           {
                             name;
                             cell = i;
                             orig = value_str x;
                             transformed = value_str y;
                           })
                | _ ->
                    Some
                      (Global_cell
                         {
                           name;
                           cell = i;
                           orig = Printf.sprintf "<%d cells>" (List.length cells);
                           transformed =
                             Printf.sprintf "<%d cells>" (List.length cells');
                         })
              in
              go 0 cells cells'))
    None ga

let compare_outcomes (a : Minic.Interp.outcome) (b : Minic.Interp.outcome) =
  match diff_output a.output b.output with
  | Some d -> Diverged d
  | None ->
      if not (same_value a.ret b.ret) then
        Diverged
          (Return_value
             { orig = value_str a.ret; transformed = value_str b.ret })
      else (
        match diff_globals a.globals b.globals with
        | Some d -> Diverged d
        | None -> Equal)

(** [equiv ?engine ?fuel orig transformed] runs both programs and
    compares printed output, return value, and final global storage.
    [transformed] is typechecked first: a transform that produces
    ill-typed code is a {!Transform_failed} before anything runs.

    [engine] selects the evaluator — {!Minic.Interp.Compiled} (the
    default: the closure-compiling fast evaluator, whose per-domain
    cache means the N rewrites of one original compile it once) or
    {!Minic.Interp.Reference} (the tree-walking interpreter, the
    [--eval reference] escape hatch).  Both produce identical verdicts;
    the engine-equivalence suite and the [@perf] alias enforce it. *)
let equiv ?(engine = Minic.Interp.Compiled) ?fuel orig transformed =
  let run = Minic.Compile_eval.run ~engine ?fuel in
  match Minic.Typecheck.check_program transformed with
  | Error e -> Transform_failed ("type error: " ^ e)
  | Ok _ -> (
      match (run orig, run transformed) with
      | Error oe, Error te -> Both_failed { orig_err = oe; transformed_err = te }
      | Error oe, Ok _ -> Orig_failed oe
      | Ok _, Error te -> Transform_failed te
      | Ok oa, Ok ob -> compare_outcomes oa ob)

(** Is [verdict] acceptable for [txf]?  [Equal] always is; so is both
    sides failing identically before the transform even matters.  An
    original-only failure is acceptable only for the enabling
    shared-memory transform (it exists to make previously-crashing
    device code run). *)
let verdict_ok txf = function
  | Equal -> true
  | Both_failed _ -> true
  | Orig_failed _ -> txf = Shared
  | Diverged _ | Transform_failed _ -> false

let divergence_str = function
  | Output_line { line; orig; transformed } ->
      Printf.sprintf "output line %d: %S vs %S" line orig transformed
  | Return_value { orig; transformed } ->
      Printf.sprintf "return value: %s vs %s" orig transformed
  | Global_cell { name; cell; orig; transformed } ->
      Printf.sprintf "global %s[%d]: %s vs %s" name cell orig transformed

let verdict_str = function
  | Equal -> "equal"
  | Diverged d -> "diverged at " ^ divergence_str d
  | Orig_failed e -> "original failed: " ^ e
  | Transform_failed e -> "transformed program failed: " ^ e
  | Both_failed { orig_err; _ } -> "both failed: " ^ orig_err

(** {1 Checking one program} *)

type report = { transform : transform; sites : int; verdict : verdict }

(** Every transform in [transforms] applied (independently) to [prog],
    with its site count and oracle verdict.  [inject] corrupts each
    rewritten program first — the harness must then flag it. *)
let check_program ?engine ?fuel ?nblocks ?(inject = false)
    ?(transforms = all_transforms) prog =
  List.map
    (fun txf ->
      let prog', sites = apply ?nblocks txf prog in
      if sites = 0 then { transform = txf; sites; verdict = Equal }
      else
        let prog' = if inject then Inject.corrupt prog' else prog' in
        { transform = txf; sites; verdict = equiv ?engine ?fuel prog prog' })
    transforms

(** {1 Fault-plan differential checking}

    The oracle above validates the rewrite's semantics; this validates
    the fault-model runtime around it.  The transformed program is
    replayed on the machine model twice — fault-free, and under an
    injected fault plan with full recovery (retries, timeouts, CPU
    fallback) — and must still produce the oracle answer: injected
    faults change {e when} things finish, never {e what} the program
    computes, and recovery must complete rather than deadlock. *)

type faulted_report = {
  f_transform : transform;
  f_sites : int;
  f_verdict : verdict;  (** oracle verdict on the transformed program *)
  f_clean_s : float;  (** fault-free replay makespan *)
  f_faulted_s : float;  (** recovered makespan under the fault plan *)
  f_fellback : bool;  (** the device died and the CPU took over *)
  f_died : bool;  (** device death the policy could not recover *)
}

(** Each transform applied to [prog], oracle-checked, then replayed
    clean and under [spec] with recovery. *)
let check_faulted ?engine ?fuel ?nblocks ?(transforms = all_transforms) ~spec
    prog =
  List.map
    (fun txf ->
      let prog', sites = apply ?nblocks txf prog in
      let verdict =
        if sites = 0 then Equal else equiv ?engine ?fuel prog prog'
      in
      let events =
        match Minic.Compile_eval.run ?engine ?fuel prog' with
        | Ok o -> o.Minic.Interp.events
        | Error _ -> []
      in
      let clean_cfg = Machine.Config.paper_default in
      let fault_cfg = Machine.Config.with_faults clean_cfg spec in
      let clean_s =
        (Runtime.Replay.schedule clean_cfg events).Machine.Engine.makespan
      in
      let faulted_s, fellback, died =
        match Runtime.Replay.schedule_recovered fault_cfg events with
        | r ->
            ( r.Runtime.Replay.r_result.Machine.Engine.makespan,
              r.Runtime.Replay.r_fellback,
              false )
        | exception Fault.Device_dead _ -> (Float.nan, false, true)
      in
      {
        f_transform = txf;
        f_sites = sites;
        f_verdict = verdict;
        f_clean_s = clean_s;
        f_faulted_s = faulted_s;
        f_fellback = fellback;
        f_died = died;
      })
    transforms

(** Acceptable faulted run: the oracle verdict holds and recovery
    completed (no unrecovered device death, makespan finite). *)
let faulted_ok r =
  verdict_ok r.f_transform r.f_verdict
  && (not r.f_died)
  && Float.is_finite r.f_faulted_s

(** {1 Shrinking} *)

(* A shrink candidate must keep failing the *same way*: well-typed,
   transform still applicable, oracle still reporting a divergence. *)
let diverges ?engine ?fuel ?nblocks ~inject txf prog =
  match Minic.Typecheck.check_program prog with
  | Error _ -> false
  | Ok _ -> (
      match apply ?nblocks txf prog with
      | exception _ -> false
      | _, 0 -> false
      | prog', _ -> (
          let prog' = if inject then Inject.corrupt prog' else prog' in
          match equiv ?engine ?fuel prog prog' with
          | Diverged _ -> true
          | Equal | Orig_failed _ | Transform_failed _ | Both_failed _ ->
              false))

(** Minimize a program whose [txf]-rewrite diverges (with the same
    [inject] setting used to find it). *)
let minimize_diverging ?engine ?fuel ?nblocks ?(inject = false) ?max_tries txf
    prog =
  Shrink.minimize ?max_tries
    ~still_failing:(fun p -> diverges ?engine ?fuel ?nblocks ~inject txf p)
    prog

(** {1 Expected applicability}

    The generator's truth table: for each pattern family, whether a
    transform must ([Some true]), must not ([Some false]), or may
    ([None], instance-dependent) find an applicable site.  Property
    tests check [applicable] against every [Some]. *)
let expected_applicable pattern transform =
  let exp ~streaming ~regularize ~merge ~soa ~shared =
    match transform with
    | Streaming -> streaming
    | Regularize -> regularize
    | Merge -> merge
    | Soa -> soa
    | Shared -> shared
  in
  let y = Some true and n = Some false and u = None in
  match (pattern : Genprog.pattern) with
  | Dense -> exp ~streaming:y ~regularize:n ~merge:n ~soa:n ~shared:n
  | Stencil -> exp ~streaming:y ~regularize:n ~merge:n ~soa:n ~shared:n
  | Sparse_stride -> exp ~streaming:u ~regularize:y ~merge:n ~soa:n ~shared:n
  | Step_loop -> exp ~streaming:n ~regularize:u ~merge:n ~soa:n ~shared:n
  | Gather -> exp ~streaming:n ~regularize:y ~merge:n ~soa:n ~shared:n
  | Guarded_gather -> exp ~streaming:n ~regularize:n ~merge:n ~soa:n ~shared:n
  | Aos -> exp ~streaming:u ~regularize:u ~merge:n ~soa:y ~shared:n
  | Chain -> exp ~streaming:u ~regularize:u ~merge:n ~soa:u ~shared:y
  | Multi_offload -> exp ~streaming:u ~regularize:n ~merge:y ~soa:n ~shared:n
  | Host_scalar -> exp ~streaming:u ~regularize:n ~merge:n ~soa:n ~shared:n
  | Plain_loop -> exp ~streaming:n ~regularize:n ~merge:n ~soa:n ~shared:n
  | Inout -> exp ~streaming:y ~regularize:n ~merge:n ~soa:n ~shared:n
