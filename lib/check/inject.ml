(** Deliberate transform corruption, for validating the harness
    itself: a checker that cannot catch a seeded off-by-one is not
    checking anything.  [corrupt] perturbs the {e first} assignment
    inside the first offload body (falling back to the first assignment
    anywhere), which models the classic rewrite bug — a transformed
    kernel computing almost, but not exactly, the original values. *)

open Minic.Ast

let add_one rv = Binop (Add, rv, Int_lit 1)

let corrupt_first_assign ~only_offload prog =
  let hit = ref false in
  let rec blk in_off = function
    | [] -> []
    | s :: tl ->
        let s' = stm in_off s in
        s' :: blk in_off tl
  and stm in_off s =
    if !hit then s
    else
      match s with
      | Sassign (lv, rv) when in_off || not only_offload ->
          hit := true;
          Sassign (lv, add_one rv)
      | Sif (c, a, b) ->
          let a' = blk in_off a in
          Sif (c, a', blk in_off b)
      | Swhile (c, b) -> Swhile (c, blk in_off b)
      | Sfor fl -> Sfor { fl with body = blk in_off fl.body }
      | Sblock b -> Sblock (blk in_off b)
      | Spragma (Offload sp, s) -> Spragma (Offload sp, stm true s)
      | Spragma (p, s) -> Spragma (p, stm in_off s)
      | (Sexpr _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue | Sassign _) as s
        -> s
  in
  let prog' =
    List.map
      (function
        | Gfunc f -> Gfunc { f with body = blk false f.body }
        | g -> g)
      prog
  in
  (prog', !hit)

(** Add [+ 1] to the right-hand side of the first assignment inside the
    first offload body; if the program has none, to the first
    assignment anywhere.  Programs with no assignment at all are
    returned unchanged. *)
let corrupt prog =
  let prog', hit = corrupt_first_assign ~only_offload:true prog in
  if hit then prog' else fst (corrupt_first_assign ~only_offload:false prog)
