(** Metamorphic checks on the cost model and schedule generator.

    For simulated plans there is no output to diff against, but the
    model must still respect its own invariants, whatever the plan:

    - {b conservation}: the bytes recorded by the schedule's [Obs]
      spans (H2d / D2h / page-fault traffic) equal what the plan
      declares via {!Runtime.Plan.declared_transfers}, and every span
      is closed;
    - {b pipelining bounds}: the makespan of any schedule lies between
      the critical path (perfect overlap) and the serial sum of task
      durations (no overlap) — "pipelined time <= serial time";
    - {b block model}: the analytic optimum [N = sqrt(D/K)] is a valid
      block count, [choose] stays within its candidate grid and is
      optimal on it, and [T(1)] degenerates to the naive time.

    Each check returns [Ok ()] or [Error msg] with the violated
    inequality spelled out. *)

let feps = 1e-6

let close a b = Float.abs (a -. b) <= feps *. (1. +. Float.abs a +. Float.abs b)

let errf fmt = Printf.ksprintf (fun s -> Error s) fmt

let ( let* ) = Result.bind

(** Schedule [shape] under [strategy] and verify byte conservation and
    the pipelining bounds. *)
let check_plan ?(cfg = Machine.Config.paper_default) shape strategy =
  let obs = Obs.create () in
  let r = Runtime.Schedule_gen.schedule ~obs cfg shape strategy in
  let d = Runtime.Plan.declared_transfers cfg shape strategy in
  let conserved kind declared =
    let got = Obs.bytes_of_kind obs kind in
    if close got declared then Ok ()
    else
      errf "%s bytes not conserved: spans carry %g, plan declares %g"
        (Obs.kind_name kind) got declared
  in
  let* () = conserved Obs.H2d d.Runtime.Plan.h2d_bytes in
  let* () = conserved Obs.D2h d.Runtime.Plan.d2h_bytes in
  let* () = conserved Obs.Page_fault d.Runtime.Plan.fault_bytes in
  let* () =
    match Obs.unclosed obs with
    | [] -> Ok ()
    | (k, label) :: _ ->
        errf "unclosed span: %s %s" (Obs.kind_name k) label
  in
  let tasks = List.map (fun p -> p.Machine.Engine.task) r.Machine.Engine.placed in
  let serial =
    List.fold_left (fun acc (t : Machine.Task.t) -> acc +. t.duration) 0. tasks
  in
  let cp = Machine.Engine.critical_path tasks in
  let mk = r.Machine.Engine.makespan in
  let* () =
    if mk <= serial +. (feps *. (1. +. serial)) then Ok ()
    else errf "pipelined time %g exceeds serial time %g" mk serial
  in
  if cp <= mk +. (feps *. (1. +. mk)) then Ok ()
  else errf "makespan %g beats the critical path %g" mk cp

(** Verify the block-count model's internal consistency for [params]. *)
let check_block_model ?candidates (p : Transforms.Block_size.params) =
  let module B = Transforms.Block_size in
  let n_opt = B.optimal_blocks p in
  let* () =
    if n_opt >= 1 && n_opt <= B.max_blocks then Ok ()
    else errf "optimal_blocks %d outside [1, %d]" n_opt B.max_blocks
  in
  let grid =
    match candidates with Some c -> c | None -> [ 10; 20; 40; 50 ]
  in
  let n = B.choose ?candidates p in
  let* () =
    if List.mem n grid then Ok ()
    else errf "choose picked %d, not in its candidate grid" n
  in
  let t_n = B.streamed_time p ~nblocks:n in
  let* () =
    List.fold_left
      (fun acc c ->
        let* () = acc in
        let t_c = B.streamed_time p ~nblocks:c in
        if t_n <= t_c +. (feps *. (1. +. Float.abs t_c)) then Ok ()
        else errf "choose picked %d (T=%g) but %d is better (T=%g)" n t_n c t_c)
      (Ok ()) grid
  in
  let t1 = B.streamed_time p ~nblocks:1 in
  let naive = B.naive_time p in
  if close t1 naive then Ok ()
  else errf "T(1) = %g does not degenerate to the naive time %g" t1 naive

