(** Regression-corpus recorder.

    Every divergence the harness finds is worth keeping: the minimized
    program goes into [test/corpus/regressions/] (or any [~dir]) under
    a content-addressed name, and [test_corpus.ml] replays the whole
    directory deterministically on every [dune runtest].  Recording is
    idempotent — the same minimized program always maps to the same
    file, so re-finding a known bug does not grow the corpus. *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      (try Sys.mkdir d 0o755 with Sys_error _ -> ())
    end
  in
  go dir

(* short stable content hash for the filename *)
let slug src = String.sub (Digest.to_hex (Digest.string src)) 0 12

(** [record ~dir ?note prog] writes [prog] (pretty-printed, with an
    optional [note] describing the provenance as a leading comment)
    under [dir], creating it if needed.  Returns the path; if the same
    program is already recorded, returns the existing path without
    rewriting it. *)
let record ~dir ?note prog =
  let src = Minic.Pretty.program_to_string prog in
  let path = Filename.concat dir ("reg_" ^ slug src ^ ".mc") in
  if not (Sys.file_exists path) then begin
    mkdir_p dir;
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () ->
        (match note with
        | Some n ->
            String.split_on_char '\n' n
            |> List.iter (fun l -> output_string oc ("// " ^ l ^ "\n"))
        | None -> ());
        output_string oc src)
  end;
  path

(** All recorded programs under [dir], sorted by filename (empty if the
    directory does not exist yet). *)
let entries ~dir =
  match Sys.readdir dir with
  | exception Sys_error _ -> []
  | files ->
      Array.to_list files
      |> List.filter (fun f -> Filename.check_suffix f ".mc")
      |> List.sort compare
      |> List.map (Filename.concat dir)
