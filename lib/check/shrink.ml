(** Greedy counterexample minimization.

    Two reduction moves, applied to a fixpoint with a
    first-improvement restart:

    - {b statement deletion}: remove one statement (with everything
      nested under it) anywhere in any function body;
    - {b literal halving}: replace every occurrence of an integer
      literal value [v] (|v| > 1) by [v/2] program-wide.  Replacing all
      occurrences at once keeps array sizes, loop bounds, and data
      clauses consistent, since generated programs share those
      numerals.

    Each candidate is accepted only if [still_failing] holds, so the
    minimized program provably exhibits the same divergence.  The
    caller's predicate must also reject programs that stop being
    well-typed or where the transform no longer applies —
    {!Check.still_diverges} does exactly that. *)

open Minic.Ast

(* Number of single-deletion candidates.  Must mirror [delete_nth]'s
   traversal exactly: block members count, pragma carrier statements do
   not (only the whole [Spragma] node is deletable), but blocks nested
   under a carrier do. *)
let count_stmts prog =
  let n = ref 0 in
  let rec blk b =
    List.iter
      (fun s ->
        incr n;
        nested s)
      b
  and nested = function
    | Sif (_, a, b) ->
        blk a;
        blk b
    | Swhile (_, b) -> blk b
    | Sfor fl -> blk fl.body
    | Sblock b -> blk b
    | Spragma (_, s) -> nested s
    | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue -> ()
  in
  List.iter (function Gfunc f -> blk f.body | _ -> ()) prog;
  !n

(* program with the [k]-th statement (preorder) deleted *)
let delete_nth prog k =
  let c = ref (-1) in
  let rec blk b =
    List.concat_map
      (fun s ->
        incr c;
        if !c = k then []
        else
          [
            (match s with
            | Sif (e, a, b) ->
                let a' = blk a in
                Sif (e, a', blk b)
            | Swhile (e, b) -> Swhile (e, blk b)
            | Sfor fl -> Sfor { fl with body = blk fl.body }
            | Sblock b -> Sblock (blk b)
            | Spragma (p, s) -> Spragma (p, prag s)
            | s -> s);
          ])
      b
  (* a pragma's carrier statement is not individually deletable (that
     would leave a dangling pragma); deleting the whole [Spragma] node
     is already a candidate at the level above *)
  and prag s =
    match s with
    | Sif (e, a, b) ->
        let a' = blk a in
        Sif (e, a', blk b)
    | Swhile (e, b) -> Swhile (e, blk b)
    | Sfor fl -> Sfor { fl with body = blk fl.body }
    | Sblock b -> Sblock (blk b)
    | Spragma (p, s) -> Spragma (p, prag s)
    | s -> s
  in
  List.map
    (function Gfunc f -> Gfunc { f with body = blk f.body } | g -> g)
    prog

(* distinct |values| > 1 of integer literals, large first *)
let int_literals prog =
  let vals = ref [] in
  let rec expr = function
    | Int_lit v -> if abs v > 1 && not (List.mem v !vals) then vals := v :: !vals
    | Float_lit _ | Bool_lit _ | Var _ -> ()
    | Index (a, b) | Binop (_, a, b) ->
        expr a;
        expr b
    | Field (e, _) | Arrow (e, _) | Deref e | Addr e | Unop (_, e)
    | Cast (_, e) ->
        expr e
    | Call (_, args) -> List.iter expr args
  in
  let section s =
    expr s.start;
    expr s.len;
    match s.into with Some (_, e) -> expr e | None -> ()
  in
  let pragma = function
    | Offload sp | Offload_transfer sp ->
        List.iter section sp.ins;
        List.iter section sp.outs;
        List.iter section sp.inouts;
        Option.iter expr sp.signal;
        Option.iter expr sp.wait
    | Offload_wait e -> expr e
    | Omp_parallel_for | Omp_simd -> ()
  in
  let rec ty = function
    | Tarray (t, sz) ->
        Option.iter expr sz;
        ty t
    | Tptr t -> ty t
    | _ -> ()
  in
  let rec stm = function
    | Sexpr e -> expr e
    | Sassign (a, b) ->
        expr a;
        expr b
    | Sdecl (t, _, init) ->
        ty t;
        Option.iter expr init
    | Sif (e, a, b) ->
        expr e;
        List.iter stm a;
        List.iter stm b
    | Swhile (e, b) ->
        expr e;
        List.iter stm b
    | Sfor fl ->
        expr fl.lo;
        expr fl.hi;
        expr fl.step;
        List.iter stm fl.body
    | Sreturn e -> Option.iter expr e
    | Sblock b -> List.iter stm b
    | Spragma (p, s) ->
        pragma p;
        stm s
    | Sbreak | Scontinue -> ()
  in
  List.iter
    (function
      | Gfunc f -> List.iter stm f.body
      | Gvar (t, _, init) ->
          ty t;
          Option.iter expr init
      | Gstruct _ -> ())
    prog;
  List.sort (fun a b -> compare (abs b) (abs a)) !vals

(* replace every Int_lit v by Int_lit v' (in expressions, types, and
   data clauses alike) *)
let replace_lit prog v v' =
  let rec expr e =
    match e with
    | Int_lit x when x = v -> Int_lit v'
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Index (a, b) -> Index (expr a, expr b)
    | Field (e, f) -> Field (expr e, f)
    | Arrow (e, f) -> Arrow (expr e, f)
    | Deref e -> Deref (expr e)
    | Addr e -> Addr (expr e)
    | Binop (op, a, b) ->
        let a' = expr a in
        Binop (op, a', expr b)
    | Unop (op, e) -> Unop (op, expr e)
    | Call (f, args) -> Call (f, List.map expr args)
    | Cast (t, e) -> Cast (ty t, expr e)
  and ty t =
    match t with
    | Tarray (t, sz) -> Tarray (ty t, Option.map expr sz)
    | Tptr t -> Tptr (ty t)
    | _ -> t
  in
  let section s =
    {
      s with
      start = expr s.start;
      len = expr s.len;
      into = Option.map (fun (a, e) -> (a, expr e)) s.into;
    }
  in
  let pragma = function
    | Offload sp ->
        Offload
          {
            sp with
            ins = List.map section sp.ins;
            outs = List.map section sp.outs;
            inouts = List.map section sp.inouts;
            signal = Option.map expr sp.signal;
            wait = Option.map expr sp.wait;
          }
    | Offload_transfer sp ->
        Offload_transfer
          {
            sp with
            ins = List.map section sp.ins;
            outs = List.map section sp.outs;
            inouts = List.map section sp.inouts;
            signal = Option.map expr sp.signal;
            wait = Option.map expr sp.wait;
          }
    | Offload_wait e -> Offload_wait (expr e)
    | (Omp_parallel_for | Omp_simd) as p -> p
  in
  let rec stm s =
    match s with
    | Sexpr e -> Sexpr (expr e)
    | Sassign (a, b) ->
        let a' = expr a in
        Sassign (a', expr b)
    | Sdecl (t, n, init) -> Sdecl (ty t, n, Option.map expr init)
    | Sif (e, a, b) ->
        let e' = expr e in
        let a' = List.map stm a in
        Sif (e', a', List.map stm b)
    | Swhile (e, b) ->
        let e' = expr e in
        Swhile (e', List.map stm b)
    | Sfor fl ->
        Sfor
          {
            fl with
            lo = expr fl.lo;
            hi = expr fl.hi;
            step = expr fl.step;
            body = List.map stm fl.body;
          }
    | Sreturn e -> Sreturn (Option.map expr e)
    | Sblock b -> Sblock (List.map stm b)
    | Spragma (p, s) -> Spragma (pragma p, stm s)
    | Sbreak | Scontinue -> s
  in
  List.map
    (function
      | Gfunc f -> Gfunc { f with body = List.map stm f.body }
      | Gvar (t, n, init) -> Gvar (ty t, n, Option.map expr init)
      | Gstruct s -> Gstruct s)
    prog

(** [minimize ~still_failing prog] greedily shrinks [prog] while
    [still_failing] holds, trying at most [max_tries] candidates (each
    costs two interpreter runs in the differential setting).  One round
    is a deletion sweep (when the statement at [k] is deleted, the scan
    stays at [k] — the next statement has shifted into place) followed
    by a halving sweep; rounds repeat until neither changes the
    program. *)
let minimize ?(max_tries = 2000) ~still_failing prog =
  let tries = ref 0 in
  let attempt p = incr tries; !tries <= max_tries && still_failing p in
  let rec del_pass prog k =
    if k >= count_stmts prog then prog
    else
      let p' = delete_nth prog k in
      if attempt p' then del_pass p' k else del_pass prog (k + 1)
  in
  let rec lit_pass prog =
    let rec go = function
      | [] -> prog
      | v :: rest ->
          let p' = replace_lit prog v (v / 2) in
          if attempt p' then lit_pass p' else go rest
    in
    go (int_literals prog)
  in
  let rec improve prog =
    if !tries > max_tries then prog
    else
      let p' = lit_pass (del_pass prog 0) in
      if Minic.Ast.equal_program p' prog then prog else improve p'
  in
  improve prog
