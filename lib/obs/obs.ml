(** Observability substrate for the runtime and the machine simulator.

    A sink collects three kinds of evidence while a schedule is built
    and executed:

    - {e counters}: cheap monotonic integers ([myo.page_faults],
      [segbuf.allocs], ...) — the raw material of Table III;
    - {e histograms}: distributions of a measured quantity (transfer
      sizes, span durations), bucketed by powers of two;
    - {e spans}: start/stop intervals on the simulated clock, tagged
      with a {!kind} ([h2d], [kernel], [page_fault], ...) and an
      optional byte payload — the event trace behind the [--profile]
      breakdown.

    Everything is optional at the call sites: instrumented functions
    take [?obs] and do nothing when none is supplied, so the
    uninstrumented paths stay exactly as cheap as before. *)

(** Classification of spans (and of engine tasks).  The names mirror
    the phases the paper's evaluation measures. *)
type kind =
  | H2d  (** host-to-device DMA *)
  | D2h  (** device-to-host DMA *)
  | Kernel  (** device computation *)
  | Launch  (** kernel launch overhead *)
  | Signal  (** COI signal/wait traffic (thread reuse) *)
  | Page_fault  (** MYO on-demand page copies *)
  | Seg_alloc  (** segmented-buffer segment creation *)
  | Repack  (** host-side regularization work *)
  | Retry  (** fault recovery: retransfers, backoff, resets, fallback *)
  | Host  (** other host work: glue, allocation bookkeeping *)

let all_kinds =
  [ H2d; D2h; Kernel; Launch; Signal; Page_fault; Seg_alloc; Repack; Retry;
    Host ]

let kind_name = function
  | H2d -> "h2d"
  | D2h -> "d2h"
  | Kernel -> "kernel"
  | Launch -> "launch"
  | Signal -> "signal"
  | Page_fault -> "page_fault"
  | Seg_alloc -> "seg_alloc"
  | Repack -> "repack"
  | Retry -> "retry"
  | Host -> "host"

let kind_of_name = function
  | "h2d" -> Some H2d
  | "d2h" -> Some D2h
  | "kernel" -> Some Kernel
  | "launch" -> Some Launch
  | "signal" -> Some Signal
  | "page_fault" -> Some Page_fault
  | "seg_alloc" -> Some Seg_alloc
  | "repack" -> Some Repack
  | "retry" -> Some Retry
  | "host" -> Some Host
  | _ -> None

(** A completed span on the simulated clock. *)
type span = {
  span_kind : kind;
  span_label : string;
  span_bytes : float;
  span_start : float;
  span_stop : float;
}

type open_span = {
  o_id : int;
  o_kind : kind;
  o_label : string;
  o_bytes : float;
  o_start : float;
}

(** Histogram with power-of-two buckets: bucket [i] counts samples in
    [[2^(i-1), 2^i)] (bucket 0 holds everything below 1). *)
type histogram = {
  mutable h_count : int;
  mutable h_total : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;  (** 64 power-of-two buckets *)
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
  mutable spans : span list;  (** completed, newest first *)
  mutable nspans : int;
  open_spans : (int, open_span) Hashtbl.t;
  mutable next_span : int;
}

let create () =
  {
    counters = Hashtbl.create 32;
    histograms = Hashtbl.create 16;
    spans = [];
    nspans = 0;
    open_spans = Hashtbl.create 8;
    next_span = 0;
  }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.histograms;
  t.spans <- [];
  t.nspans <- 0;
  Hashtbl.reset t.open_spans;
  t.next_span <- 0

(* {1 Counters} *)

let add t name by =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r := !r + by
  | None -> Hashtbl.replace t.counters name (ref by)

let incr ?(by = 1) t name = add t name by

let count t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* {1 Histograms} *)

let nbuckets = 64

let bucket_of v =
  if v < 1. then 0
  else
    let b = 1 + int_of_float (Float.log2 v) in
    min (nbuckets - 1) (max 0 b)

let observe t name v =
  let h =
    match Hashtbl.find_opt t.histograms name with
    | Some h -> h
    | None ->
        let h =
          {
            h_count = 0;
            h_total = 0.;
            h_min = infinity;
            h_max = neg_infinity;
            h_buckets = Array.make nbuckets 0;
          }
        in
        Hashtbl.replace t.histograms name h;
        h
  in
  h.h_count <- h.h_count + 1;
  h.h_total <- h.h_total +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let b = bucket_of v in
  h.h_buckets.(b) <- h.h_buckets.(b) + 1

let histogram t name = Hashtbl.find_opt t.histograms name

let histograms t =
  Hashtbl.fold (fun k h acc -> (k, h) :: acc) t.histograms []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let mean h = if h.h_count = 0 then 0. else h.h_total /. float_of_int h.h_count

(* Fold [src] into an existing histogram.  An empty histogram carries
   the neutral [min = infinity] / [max = neg_infinity] pair (never 0 —
   a zero there would clamp the merged minimum of all-positive
   samples), so Float.min/max are the correct combiners even when one
   side has no samples. *)
let merge_histogram ~into:h src =
  h.h_count <- h.h_count + src.h_count;
  h.h_total <- h.h_total +. src.h_total;
  h.h_min <- Float.min h.h_min src.h_min;
  h.h_max <- Float.max h.h_max src.h_max;
  Array.iteri
    (fun i n -> h.h_buckets.(i) <- h.h_buckets.(i) + n)
    src.h_buckets

(* {1 Merging} *)

(** [merge dst src] folds [src] into [dst]: counters add, histograms
    combine (counts/totals/buckets add, min/max widen), and [src]'s
    completed spans are prepended to [dst]'s.

    Both sinks store completed spans {e newest-first}, so when each
    parallel task records into a private sink and the per-task sinks
    are merged in submission order ([merge acc s0; merge acc s1; ...]),
    the accumulated span list — and therefore every aggregate and the
    profile JSON — is exactly what one shared sink would have seen in
    the sequential run.

    [src] is left untouched and may not have open spans (an open span
    has no defined owner after the merge); [dst]'s open spans keep
    their ids. *)
let merge dst src =
  if Hashtbl.length src.open_spans > 0 then
    invalid_arg "Obs.merge: source sink has open spans";
  Hashtbl.iter (fun name r -> add dst name !r) src.counters;
  Hashtbl.iter
    (fun name sh ->
      match Hashtbl.find_opt dst.histograms name with
      | Some dh -> merge_histogram ~into:dh sh
      | None ->
          Hashtbl.replace dst.histograms name
            {
              h_count = sh.h_count;
              h_total = sh.h_total;
              h_min = sh.h_min;
              h_max = sh.h_max;
              h_buckets = Array.copy sh.h_buckets;
            })
    src.histograms;
  (* src's spans are newer than everything already in dst *)
  dst.spans <- src.spans @ dst.spans;
  dst.nspans <- dst.nspans + src.nspans

(* {1 Spans} *)

let span_begin ?(bytes = 0.) t kind ~label ~start =
  let id = t.next_span in
  t.next_span <- id + 1;
  Hashtbl.replace t.open_spans id
    { o_id = id; o_kind = kind; o_label = label; o_bytes = bytes;
      o_start = start };
  id

let span_end t id ~stop =
  match Hashtbl.find_opt t.open_spans id with
  | None -> invalid_arg (Printf.sprintf "Obs.span_end: span %d not open" id)
  | Some o ->
      Hashtbl.remove t.open_spans id;
      t.spans <-
        {
          span_kind = o.o_kind;
          span_label = o.o_label;
          span_bytes = o.o_bytes;
          span_start = o.o_start;
          span_stop = Float.max stop o.o_start;
        }
        :: t.spans;
      t.nspans <- t.nspans + 1

(** Record a complete span (begin + end in one call). *)
let span ?bytes t kind ~label ~start ~stop =
  let id = span_begin ?bytes t kind ~label ~start in
  span_end t id ~stop

let spans t = List.rev t.spans

let span_count t = t.nspans

let unclosed t =
  Hashtbl.fold (fun _ o acc -> (o.o_kind, o.o_label) :: acc) t.open_spans []

(* {1 Aggregates} *)

type kind_stat = { ks_count : int; ks_bytes : float; ks_seconds : float }

let empty_stat = { ks_count = 0; ks_bytes = 0.; ks_seconds = 0. }

let stat_of_kind t kind =
  List.fold_left
    (fun acc s ->
      if s.span_kind = kind then
        {
          ks_count = acc.ks_count + 1;
          ks_bytes = acc.ks_bytes +. s.span_bytes;
          ks_seconds = acc.ks_seconds +. (s.span_stop -. s.span_start);
        }
      else acc)
    empty_stat t.spans

(** Per-kind totals over all completed spans, in {!all_kinds} order,
    kinds with no spans omitted. *)
let by_kind t =
  List.filter_map
    (fun k ->
      let s = stat_of_kind t k in
      if s.ks_count = 0 then None else Some (k, s))
    all_kinds

let bytes_of_kind t kind = (stat_of_kind t kind).ks_bytes
let seconds_of_kind t kind = (stat_of_kind t kind).ks_seconds
let count_of_kind t kind = (stat_of_kind t kind).ks_count

(* {1 JSON} *)

(** A dependency-free JSON tree, enough for [--profile -o]. *)
module Json = struct
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | '\r' -> Buffer.add_string buf "\\r"
        | '\t' -> Buffer.add_string buf "\\t"
        | c when Char.code c < 0x20 ->
            Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  (* finite floats only; [write] maps non-finite values to null *)
  let float_str f =
    if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.1f" f
    else Printf.sprintf "%.9g" f

  let rec write buf = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
        Buffer.add_string buf
          (if Float.is_finite f then float_str f else "null")
    | String s ->
        Buffer.add_char buf '"';
        Buffer.add_string buf (escape s);
        Buffer.add_char buf '"'
    | List xs ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i x ->
            if i > 0 then Buffer.add_char buf ',';
            write buf x)
          xs;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_char buf '"';
            Buffer.add_string buf (escape k);
            Buffer.add_string buf "\":";
            write buf v)
          fields;
        Buffer.add_char buf '}'

  let to_string j =
    let buf = Buffer.create 1024 in
    write buf j;
    Buffer.contents buf

  (* {2 Parsing} *)

  exception Parse_error of string

  (** Strict recursive-descent parser for one JSON document.  Accepts
      exactly what {!write} produces (plus arbitrary inter-token
      whitespace); rejects trailing garbage.  Numbers without [.]/[e]
      that fit in an OCaml [int] parse as [Int], everything else as
      [Float].  Never raises: malformed input is [Error msg]. *)
  let of_string s =
    let n = String.length s in
    let pos = ref 0 in
    let fail msg =
      raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos))
    in
    let peek () = if !pos < n then Some s.[!pos] else None in
    let advance () = pos := !pos + 1 in
    let rec skip_ws () =
      match peek () with
      | Some (' ' | '\t' | '\n' | '\r') ->
          advance ();
          skip_ws ()
      | _ -> ()
    in
    let expect c =
      match peek () with
      | Some c' when c' = c -> advance ()
      | _ -> fail (Printf.sprintf "expected '%c'" c)
    in
    let literal word v =
      let l = String.length word in
      if !pos + l <= n && String.sub s !pos l = word then (
        pos := !pos + l;
        v)
      else fail "invalid literal"
    in
    let add_utf8 buf code =
      (* BMP codepoints only; surrogate halves pass through as-is *)
      if code < 0x80 then Buffer.add_char buf (Char.chr code)
      else if code < 0x800 then (
        Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
      else (
        Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
        Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
        Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F))))
    in
    let parse_string () =
      expect '"';
      let buf = Buffer.create 16 in
      let rec loop () =
        if !pos >= n then fail "unterminated string"
        else
          match s.[!pos] with
          | '"' ->
              advance ();
              Buffer.contents buf
          | '\\' ->
              advance ();
              if !pos >= n then fail "unterminated escape";
              (match s.[!pos] with
              | '"' -> Buffer.add_char buf '"'
              | '\\' -> Buffer.add_char buf '\\'
              | '/' -> Buffer.add_char buf '/'
              | 'n' -> Buffer.add_char buf '\n'
              | 'r' -> Buffer.add_char buf '\r'
              | 't' -> Buffer.add_char buf '\t'
              | 'b' -> Buffer.add_char buf '\b'
              | 'f' -> Buffer.add_char buf '\012'
              | 'u' -> (
                  if !pos + 4 >= n then fail "truncated \\u escape";
                  match
                    int_of_string_opt ("0x" ^ String.sub s (!pos + 1) 4)
                  with
                  | Some code ->
                      add_utf8 buf code;
                      pos := !pos + 4
                  | None -> fail "bad \\u escape")
              | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
              advance ();
              loop ()
          | c when Char.code c < 0x20 -> fail "control character in string"
          | c ->
              Buffer.add_char buf c;
              advance ();
              loop ()
      in
      loop ()
    in
    let parse_number () =
      let start = !pos in
      let numeric = function
        | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
        | _ -> false
      in
      while
        match peek () with Some c when numeric c -> true | _ -> false
      do
        advance ()
      done;
      let tok = String.sub s start (!pos - start) in
      match int_of_string_opt tok with
      | Some i -> Int i
      | None -> (
          match float_of_string_opt tok with
          | Some f -> Float f
          | None -> fail "malformed number")
    in
    let rec parse_value () =
      skip_ws ();
      match peek () with
      | None -> fail "unexpected end of input"
      | Some '{' ->
          advance ();
          skip_ws ();
          if peek () = Some '}' then (
            advance ();
            Obj [])
          else
            let rec members acc =
              skip_ws ();
              let k = parse_string () in
              skip_ws ();
              expect ':';
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  members ((k, v) :: acc)
              | Some '}' ->
                  advance ();
                  Obj (List.rev ((k, v) :: acc))
              | _ -> fail "expected ',' or '}'"
            in
            members []
      | Some '[' ->
          advance ();
          skip_ws ();
          if peek () = Some ']' then (
            advance ();
            List [])
          else
            let rec elements acc =
              let v = parse_value () in
              skip_ws ();
              match peek () with
              | Some ',' ->
                  advance ();
                  elements (v :: acc)
              | Some ']' ->
                  advance ();
                  List (List.rev (v :: acc))
              | _ -> fail "expected ',' or ']'"
            in
            elements []
      | Some '"' -> String (parse_string ())
      | Some 't' -> literal "true" (Bool true)
      | Some 'f' -> literal "false" (Bool false)
      | Some 'n' -> literal "null" Null
      | Some ('-' | '0' .. '9') -> parse_number ()
      | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
    in
    match
      let v = parse_value () in
      skip_ws ();
      if !pos <> n then fail "trailing characters";
      v
    with
    | v -> Ok v
    | exception Parse_error msg -> Error msg

  let member key = function
    | Obj fields -> List.assoc_opt key fields
    | _ -> None
end

let histogram_json h =
  Json.Obj
    [
      ("count", Json.Int h.h_count);
      ("total", Json.Float h.h_total);
      ("mean", Json.Float (mean h));
      ("min", Json.Float (if h.h_count = 0 then 0. else h.h_min));
      ("max", Json.Float (if h.h_count = 0 then 0. else h.h_max));
    ]

(** Counters, per-kind span totals, and histogram summaries as a JSON
    object (the ["counters"]/["kinds"]/["histograms"] sections of the
    [--profile -o] schema). *)
let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)) );
      ( "kinds",
        Json.List
          (List.map
             (fun (k, s) ->
               Json.Obj
                 [
                   ("kind", Json.String (kind_name k));
                   ("count", Json.Int s.ks_count);
                   ("bytes", Json.Float s.ks_bytes);
                   ("seconds", Json.Float s.ks_seconds);
                 ])
             (by_kind t)) );
      ( "histograms",
        Json.Obj
          (List.map (fun (k, h) -> (k, histogram_json h)) (histograms t)) );
    ]
