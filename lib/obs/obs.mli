(** Observability substrate for the runtime and the machine simulator.

    A sink collects monotonic {e counters}, power-of-two-bucketed
    {e histograms}, and start/stop {e spans} on the simulated clock,
    each tagged with a {!kind}.  Instrumented functions take [?obs] and
    record nothing when none is supplied, so uninstrumented paths pay
    nothing.  The counters are the raw material of the paper's
    Table III; the spans are the event trace behind [--profile]. *)

(** Classification of spans and engine tasks. *)
type kind =
  | H2d  (** host-to-device DMA *)
  | D2h  (** device-to-host DMA *)
  | Kernel  (** device computation *)
  | Launch  (** kernel launch overhead *)
  | Signal  (** COI signal/wait traffic (thread reuse) *)
  | Page_fault  (** MYO on-demand page copies *)
  | Seg_alloc  (** segmented-buffer segment creation *)
  | Repack  (** host-side regularization work *)
  | Retry  (** fault recovery: retransfers, backoff, resets, fallback *)
  | Host  (** other host work: glue, allocation bookkeeping *)

val all_kinds : kind list
val kind_name : kind -> string
val kind_of_name : string -> kind option

(** A completed span on the simulated clock. *)
type span = {
  span_kind : kind;
  span_label : string;
  span_bytes : float;
  span_start : float;
  span_stop : float;
}

type histogram = private {
  mutable h_count : int;
  mutable h_total : float;
  mutable h_min : float;
  mutable h_max : float;
  h_buckets : int array;
      (** 64 power-of-two buckets; bucket [i] counts samples in
          [[2^(i-1), 2^i)], bucket 0 everything below 1 *)
}

type t

val create : unit -> t
val reset : t -> unit

val merge : t -> t -> unit
(** [merge dst src] folds [src] into [dst]: counters add, histograms
    combine (counts, totals and buckets add; min/max widen — an empty
    histogram contributes the neutral [infinity]/[neg_infinity] pair,
    never 0), and [src]'s completed spans are prepended to [dst]'s.

    Completed spans are stored {e newest-first} internally (and
    reversed by {!spans}); [merge] relies on that ordering and
    preserves it.  When parallel tasks record into private sinks and
    the sinks are merged {e in submission order}, the result is
    identical — spans, aggregates, and JSON — to the single sink of
    the sequential run.  Merging is associative; counters, histograms
    and per-kind aggregates are also commutative (span {e order} is
    not: it follows merge order).

    [src] is left untouched.  Raises [Invalid_argument] if [src] has
    open spans — an open span would have no owner after the merge. *)

(** {1 Counters} *)

val incr : ?by:int -> t -> string -> unit
val add : t -> string -> int -> unit
val count : t -> string -> int
(** 0 for a counter never incremented. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

(** {1 Histograms} *)

val observe : t -> string -> float -> unit
val histogram : t -> string -> histogram option
val histograms : t -> (string * histogram) list
val mean : histogram -> float

(** {1 Spans} *)

val span_begin : ?bytes:float -> t -> kind -> label:string -> start:float -> int
(** Open a span; returns its id for {!span_end}. *)

val span_end : t -> int -> stop:float -> unit
(** Close an open span.  Raises [Invalid_argument] if the id is not
    open.  A stop before the start is clamped to the start. *)

val span : ?bytes:float -> t -> kind -> label:string -> start:float -> stop:float -> unit
(** Record a complete span (begin + end in one call). *)

val spans : t -> span list
(** Completed spans, oldest first (internal storage is newest-first;
    this accessor reverses — see {!merge} for why the storage order is
    part of the contract). *)

val span_count : t -> int
val unclosed : t -> (kind * string) list
(** Spans begun but never ended — each one is a leak (property-tested
    to be empty for every generated schedule). *)

(** {1 Aggregates} *)

type kind_stat = { ks_count : int; ks_bytes : float; ks_seconds : float }

val by_kind : t -> (kind * kind_stat) list
(** Per-kind totals over completed spans; kinds with no spans omitted. *)

val bytes_of_kind : t -> kind -> float
val seconds_of_kind : t -> kind -> float
val count_of_kind : t -> kind -> int

(** {1 JSON} *)

(** Dependency-free JSON tree, enough for [--profile -o].  Non-finite
    floats serialize as [null]. *)
module Json : sig
  type t =
    | Null
    | Bool of bool
    | Int of int
    | Float of float
    | String of string
    | List of t list
    | Obj of (string * t) list

  val to_string : t -> string

  val of_string : string -> (t, string) result
  (** Strict parser for one JSON document: accepts what {!to_string}
      produces plus inter-token whitespace, rejects trailing garbage,
      never raises.  Numbers without [.]/[e] that fit an OCaml [int]
      parse as [Int]; everything else as [Float]. *)

  val member : string -> t -> t option
  (** Field lookup on an [Obj]; [None] on missing key or non-object. *)
end

val histogram_json : histogram -> Json.t

val to_json : t -> Json.t
(** Counters, per-kind span totals, and histogram summaries: the
    ["counters"]/["kinds"]/["histograms"] sections of the profile
    schema. *)
