(** Discrete-event list scheduler.

    Each resource executes its tasks serially; a task becomes ready when
    all its dependencies have finished; ties are broken by ready time,
    then by task id (i.e. FIFO in graph-construction order).  This is a
    standard non-preemptive list schedule: enough to model the overlap
    of PCIe transfers with device computation that data streaming
    exploits, and the serialization that a single DMA channel or the
    device itself imposes. *)

type placed = {
  task : Task.t;
  start : float;
  finish : float;
}

type result = {
  placed : placed list;  (** in order of completion *)
  makespan : float;
  busy : (Task.resource * float) list;  (** per-resource busy time *)
}

exception Cycle of string

(* binary min-heap of (ready_time, id, task): schedules run to tens of
   thousands of tasks (merged streamcluster: repeats x blocks), so the
   scheduler must be O(n log n) *)
module Heap = struct
  type elt = { key : float; id : int; task : Task.t }

  type t = { mutable a : elt array; mutable size : int }

  let dummy =
    {
      key = 0.;
      id = 0;
      task =
        { Task.id = 0; label = ""; resource = Task.Cpu_exec; duration = 0.;
          deps = []; kind = None; bytes = 0.; reset_xfer_s = 0. };
    }

  let create () = { a = Array.make 64 dummy; size = 0 }

  let less x y = x.key < y.key || (x.key = y.key && x.id < y.id)

  let push h e =
    if h.size = Array.length h.a then begin
      let bigger = Array.make (2 * h.size) dummy in
      Array.blit h.a 0 bigger 0 h.size;
      h.a <- bigger
    end;
    h.a.(h.size) <- e;
    h.size <- h.size + 1;
    let i = ref (h.size - 1) in
    while
      !i > 0
      &&
      let p = (!i - 1) / 2 in
      less h.a.(!i) h.a.(p)
    do
      let p = (!i - 1) / 2 in
      let tmp = h.a.(p) in
      h.a.(p) <- h.a.(!i);
      h.a.(!i) <- tmp;
      i := p
    done

  let pop h =
    if h.size = 0 then None
    else begin
      let top = h.a.(0) in
      h.size <- h.size - 1;
      h.a.(0) <- h.a.(h.size);
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < h.size && less h.a.(l) h.a.(!smallest) then smallest := l;
        if r < h.size && less h.a.(r) h.a.(!smallest) then smallest := r;
        if !smallest <> !i then begin
          let tmp = h.a.(!smallest) in
          h.a.(!smallest) <- h.a.(!i);
          h.a.(!i) <- tmp;
          i := !smallest
        end
        else continue := false
      done;
      Some top
    end
end

(* Synthetic placed entry covering the recovery tail of a faulted task
   (retransfers' backoff, device resets): accounted as kind [Retry] so
   it shows up as its own phase in profiles and keeps the resource
   busy-time conservation honest.  The negative id keeps it clear of
   every real task id. *)
let recovery_task (t : Task.t) ~duration =
  {
    Task.id = -1 - t.Task.id;
    label = t.Task.label ^ "+recovery";
    resource = t.Task.resource;
    duration;
    deps = [];
    kind = Some Obs.Retry;
    bytes = 0.;
    reset_xfer_s = 0.;
  }

(* Fault consultation for one task about to run at [start]: returns
   [(busy, recovery)] — the time the task itself occupies its resource
   (including retransfers or a killed-and-rerun kernel) and the extra
   recovery tail (backoff, resets).  The plan consulted is the one for
   the device the task's resource belongs to.  Raises
   {!Fault.Device_dead} (with the device index) when the degradation
   policy gives up on that device. *)
let faulted_times fleet (t : Task.t) ~start =
  let dur = t.Task.duration in
  match t.Task.resource with
  | (Task.Pcie_h2d dev | Task.Pcie_d2h dev) when dur > 0. ->
      let plan = Fault.fleet_plan fleet ~dev in
      let rep = Fault.next_transfer plan in
      let p = Fault.policy plan in
      let overhead failures resets =
        Fault.backoff_total plan ~failures
        +. (float_of_int resets *. p.Fault.reset_recovery_s)
      in
      if rep.Fault.xr_dead then
        raise
          (Fault.Device_dead
             {
               dev;
               at =
                 start
                 +. (float_of_int rep.Fault.xr_failures *. dur)
                 +. overhead rep.Fault.xr_failures rep.Fault.xr_resets;
               failures = rep.Fault.xr_failures;
             })
      else if rep.Fault.xr_failures = 0 then (dur, 0.)
      else
        (* only the failed block is retransferred: busy grows by one
           block per failed attempt, never by the whole offload *)
        ( float_of_int (rep.Fault.xr_failures + 1) *. dur,
          overhead rep.Fault.xr_failures rep.Fault.xr_resets )
  | Task.Mic_exec (dev, _) when dur > 0. -> (
      let plan = Fault.fleet_plan fleet ~dev in
      match Fault.take_reset plan ~start ~stop:(start +. dur) with
      | None -> (dur, 0.)
      | Some (reset_time, recovery) ->
          (* the kernel's progress up to the reset is lost; after the
             device recovers, it runs again from scratch — and any
             device-resident inputs the reset wiped (transfers this
             kernel elided via residency) must be moved again first *)
          ((reset_time -. start) +. dur, recovery +. t.Task.reset_xfer_s))
  | _ -> (dur, 0.)

(** Assemble a {!result} from already-placed tasks (in completion
    order): makespan is the latest finish, busy rows cover
    {!Task.base_resources} plus every resource the placements touch.
    Exposed so composite schedulers (e.g. block migration) can merge
    placements from several engine runs into one report. *)
let result_of_placed (placed : placed list) : result =
  let makespan =
    List.fold_left (fun acc p -> Float.max acc p.finish) 0. placed
  in
  let rows = Task.resources_of (List.map (fun p -> p.task) placed) in
  let busy =
    List.map
      (fun r ->
        ( r,
          List.fold_left
            (fun acc p ->
              if p.task.Task.resource = r then acc +. p.task.Task.duration
              else acc)
            0. placed ))
      rows
  in
  { placed; makespan; busy }

let schedule ?obs ?faults (tasks : Task.t list) : result =
  let n = List.length tasks in
  let by_id = Hashtbl.create (max 16 n) in
  List.iter (fun (t : Task.t) -> Hashtbl.replace by_id t.id t) tasks;
  List.iter
    (fun (t : Task.t) ->
      List.iter
        (fun d ->
          if not (Hashtbl.mem by_id d) then
            invalid_arg
              (Printf.sprintf "task %d depends on unknown task %d" t.id d))
        t.deps)
    tasks;
  (* dependents and in-degrees for Kahn-style readiness tracking *)
  let dependents = Hashtbl.create (max 16 n) in
  let indegree = Hashtbl.create (max 16 n) in
  List.iter
    (fun (t : Task.t) ->
      Hashtbl.replace indegree t.id (List.length (List.sort_uniq compare t.deps));
      List.iter
        (fun d ->
          Hashtbl.replace dependents d
            (t.id :: Option.value (Hashtbl.find_opt dependents d) ~default:[]))
        (List.sort_uniq compare t.deps))
    tasks;
  let ready_at = Hashtbl.create (max 16 n) in
  let heap = Heap.create () in
  List.iter
    (fun (t : Task.t) ->
      if Hashtbl.find indegree t.id = 0 then begin
        Hashtbl.replace ready_at t.id 0.;
        Heap.push heap { Heap.key = 0.; id = t.id; task = t }
      end)
    tasks;
  let finish = Hashtbl.create (max 16 n) in
  let resource_free = Hashtbl.create 8 in
  let free_of r =
    Option.value (Hashtbl.find_opt resource_free r) ~default:0.
  in
  let placed = ref [] in
  let scheduled = ref 0 in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some { Heap.key = ready; task = t; _ } ->
        let start = Float.max ready (free_of t.Task.resource) in
        let busy, recovery =
          match faults with
          | None -> (t.Task.duration, 0.)
          | Some fleet -> faulted_times fleet t ~start
        in
        let fin = start +. busy +. recovery in
        Hashtbl.replace finish t.Task.id fin;
        Hashtbl.replace resource_free t.Task.resource fin;
        placed := { task = { t with Task.duration = busy }; start;
                    finish = start +. busy }
                  :: !placed;
        if recovery > 0. then
          placed :=
            { task = recovery_task t ~duration:recovery;
              start = start +. busy; finish = fin }
            :: !placed;
        (match obs with
        | None -> ()
        | Some o ->
            (* every placed task becomes one span on the simulated
               clock: the event trace behind the profile breakdown *)
            let kind =
              match t.Task.kind with
              | Some k -> k
              | None -> Task.default_kind t.Task.resource
            in
            let sid =
              Obs.span_begin ~bytes:t.Task.bytes o kind ~label:t.Task.label
                ~start
            in
            Obs.span_end o sid ~stop:(start +. busy);
            Obs.incr o "engine.tasks";
            Obs.observe o ("span_s." ^ Obs.kind_name kind) busy;
            if
              recovery > 0.
              && (match t.Task.resource with
                 | Task.Mic_exec _ -> true
                 | _ -> false)
              && t.Task.reset_xfer_s > 0.
            then begin
              (* a reset wiped device-resident data this kernel relied
                 on; the recovery tail includes its re-transfer *)
              Obs.incr o "residency.reset_retransfers";
              Obs.observe o "residency.reset_xfer_s" t.Task.reset_xfer_s
            end;
            if busy +. recovery > t.Task.duration then begin
              Obs.span o Obs.Retry
                ~label:(t.Task.label ^ "+recovery")
                ~start:(start +. busy) ~stop:fin;
              Obs.observe o "fault.recovery_s"
                (busy +. recovery -. t.Task.duration)
            end);
        incr scheduled;
        List.iter
          (fun d_id ->
            let deg = Hashtbl.find indegree d_id - 1 in
            Hashtbl.replace indegree d_id deg;
            let dep_task : Task.t = Hashtbl.find by_id d_id in
            let r =
              Float.max
                (Option.value (Hashtbl.find_opt ready_at d_id) ~default:0.)
                fin
            in
            Hashtbl.replace ready_at d_id r;
            if deg = 0 then
              Heap.push heap { Heap.key = r; id = d_id; task = dep_task })
          (Option.value (Hashtbl.find_opt dependents t.Task.id) ~default:[]);
        drain ()
  in
  drain ();
  if !scheduled <> n then
    raise
      (Cycle
         (Printf.sprintf "dependency cycle among %d tasks" (n - !scheduled)));
  result_of_placed (List.rev !placed)

(** Makespan of a task list (convenience). *)
let makespan tasks = (schedule tasks).makespan

(** Longest dependency chain ignoring resource contention: a lower
    bound on the makespan (property-tested). *)
let critical_path (tasks : Task.t list) =
  let by_id = Hashtbl.create 16 in
  List.iter (fun (t : Task.t) -> Hashtbl.replace by_id t.id t) tasks;
  let memo = Hashtbl.create 16 in
  let rec depth (t : Task.t) =
    match Hashtbl.find_opt memo t.id with
    | Some d -> d
    | None ->
        let d =
          t.duration
          +. List.fold_left
               (fun acc dep ->
                 Float.max acc (depth (Hashtbl.find by_id dep)))
               0. t.deps
        in
        Hashtbl.replace memo t.id d;
        d
  in
  List.fold_left (fun acc t -> Float.max acc (depth t)) 0. tasks
