(** The machine (fleet) spec grammar: devices, streams, and per-device
    heterogeneity.

    Comma-separated clauses:
    - [devices=N]      number of MIC cards (>= 1)
    - [streams=K]      concurrent streams per device (>= 1)
    - [devN:cores=F]   device N runs kernels at F times the base speed
    - [devN:bw=F]      device N's PCIe link runs at F times the base
                       bandwidth

    A [devN:] prefix is {e sticky}: a bare [cores=] / [bw=] clause
    after it keeps refining the same device, so
    [dev1:cores=0.5,bw=0.75] gives device 1 both scales.  Scale
    factors must be finite and positive; a [devN:] index must fall
    inside [devices] (write [devices=] first).  Like the fault
    grammar, every malformed clause is a typed {!parse_error} naming
    the offending token — no silent fallback. *)

type t = {
  f_devices : int;
  f_streams : int;
  f_scales : (int * Config.scale) list;  (** sorted by device index *)
}

let default = { f_devices = 1; f_streams = 1; f_scales = [] }

type parse_error = { token : string; reason : string }

let error_message { token; reason } =
  Printf.sprintf "machine: %s in %S" reason token

let clause_err c what = Error { token = c; reason = what }

let parse_pos_int c s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 1 -> Ok n
  | _ -> clause_err c "expected a positive integer"

let parse_scale c s =
  match float_of_string_opt (String.trim s) with
  | Some f when Float.is_finite f && f > 0. -> Ok f
  | _ -> clause_err c "scale factor must be finite and positive"

let ( let* ) = Result.bind

(* A [devN:] prefix: "dev", a non-empty run of digits, ':'.  Returns
   [(device, rest-of-clause)] — same shape as the fault grammar's. *)
let split_dev_prefix c =
  let n = String.length c in
  if n < 5 || String.sub c 0 3 <> "dev" then None
  else
    match String.index_opt c ':' with
    | Some i when i > 3 -> (
        match int_of_string_opt (String.sub c 3 (i - 3)) with
        | Some d when d >= 0 -> Some (d, String.sub c (i + 1) (n - i - 1))
        | _ -> None)
    | _ -> None

let starts c key =
  String.length c >= String.length key
  && String.sub c 0 (String.length key) = key

let after c key =
  String.sub c (String.length key) (String.length c - String.length key)

(* One scale clause for device [d]; [ctx] is the full token for error
   messages. *)
let scale_clause fleet ~ctx d c =
  let cur =
    Option.value (List.assoc_opt d fleet.f_scales) ~default:Config.unit_scale
  in
  let* cur =
    if starts c "cores=" then
      let* f = parse_scale ctx (after c "cores=") in
      Ok { cur with Config.sc_cores = f }
    else if starts c "bw=" then
      let* f = parse_scale ctx (after c "bw=") in
      Ok { cur with Config.sc_bw = f }
    else clause_err ctx "expected cores=F or bw=F after devN:"
  in
  Ok
    {
      fleet with
      f_scales = (d, cur) :: List.remove_assoc d fleet.f_scales;
    }

let parse s =
  let clauses = String.split_on_char ',' s in
  (* [ctx] is the device the last [devN:] prefix named, so bare
     [cores=]/[bw=] clauses keep refining it *)
  let rec go fleet ctx = function
    | [] ->
        Ok
          {
            fleet with
            f_scales =
              List.sort (fun (a, _) (b, _) -> compare a b) fleet.f_scales;
          }
    | c :: rest -> (
        let c = String.trim c in
        if c = "" then clause_err c "empty clause"
        else
          match split_dev_prefix c with
          | Some (d, sub) ->
              let* fleet = scale_clause fleet ~ctx:c d sub in
              go fleet (Some d) rest
          | None ->
              if starts c "devices=" then
                let* n = parse_pos_int c (after c "devices=") in
                go { fleet with f_devices = n } ctx rest
              else if starts c "streams=" then
                let* n = parse_pos_int c (after c "streams=") in
                go { fleet with f_streams = n } ctx rest
              else if starts c "cores=" || starts c "bw=" then (
                match ctx with
                | Some d ->
                    let* fleet = scale_clause fleet ~ctx:c d c in
                    go fleet ctx rest
                | None ->
                    clause_err c
                      "cores=/bw= needs a devN: prefix (or a preceding devN: \
                       clause)")
              else clause_err c "unknown clause")
  in
  if String.trim s = "" then Ok default
  else
    let* fleet = go default None clauses in
    (* a scale for a device outside the fleet is a spec bug, not a
       silently ignored refinement *)
    match
      List.find_opt (fun (d, _) -> d >= fleet.f_devices) fleet.f_scales
    with
    | Some (d, _) ->
        clause_err
          (Printf.sprintf "dev%d" d)
          (Printf.sprintf "device index out of range (devices=%d)"
             fleet.f_devices)
    | None -> Ok fleet

let to_string f =
  let scale_clauses =
    List.concat_map
      (fun (d, (s : Config.scale)) ->
        (if s.Config.sc_cores <> 1.0 then
           [ Printf.sprintf "dev%d:cores=%g" d s.Config.sc_cores ]
         else [])
        @
        if s.Config.sc_bw <> 1.0 then
          [ Printf.sprintf "dev%d:bw=%g" d s.Config.sc_bw ]
        else [])
      f.f_scales
  in
  String.concat ","
    (Printf.sprintf "devices=%d" f.f_devices
    :: Printf.sprintf "streams=%d" f.f_streams
    :: scale_clauses)

(** Install the fleet into a machine config: device/stream grid plus
    the heterogeneity scales. *)
let apply cfg f =
  Config.with_scales
    (Config.with_devices cfg ~devices:f.f_devices ~streams:f.f_streams)
    f.f_scales
