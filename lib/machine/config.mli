(** Machine parameters for the heterogeneous-system simulator.

    {!paper_default} follows the experimental platform of Section VI: a
    Xeon Phi ES2-P/A/X 1750 (61 cores at 1.05 GHz, 4 threads/core,
    512-bit SIMD, 8 GB GDDR5, one core reserved for the OS) attached
    over PCIe to a Xeon E5-2660 host (8 cores, 2.2 GHz); benchmarks use
    200 device threads and 4 host threads. *)

type cpu = {
  cores : int;
  threads_used : int;  (** the paper uses 4 (5 for dedup, 6 for ferret) *)
  freq_ghz : float;
  simd_bits : int;
  flops_per_cycle : float;  (** per lane, per core *)
  mem_bw_gbs : float;  (** sustainable memory bandwidth, GB/s *)
}

type mic = {
  cores : int;  (** usable cores (one of 61 is reserved for the OS) *)
  threads_per_core : int;
  threads_used : int;
  freq_ghz : float;
  simd_bits : int;
  flops_per_cycle : float;
  mem_bytes : int;  (** device memory capacity: the 8 GB wall *)
  mem_bw_gbs : float;
  launch_overhead_s : float;  (** K: cost of launching one kernel *)
  signal_cost_s : float;  (** COI signal, used by persistent kernels *)
  parallel_eff : float;  (** fraction of peak reached by parallel loops *)
  serial_slowdown : float;
      (** how much slower one MIC thread is than one CPU thread for
          sequential code (in-order Pentium-class core) *)
}

type duplex = Full_duplex | Half_duplex

type pcie = {
  bw_h2d_gbs : float;
  bw_d2h_gbs : float;
  latency_s : float;  (** fixed per-transfer setup cost *)
  duplex : duplex;
      (** Full_duplex: h2d and d2h proceed concurrently (PCIe reality);
          Half_duplex: one shared channel, for sensitivity studies *)
}

type myo = {
  page_bytes : int;
  fault_cost_s : float;  (** software handling of one page fault *)
  page_bw_gbs : float;
      (** effective bandwidth of page-sized copies (no DMA batching) *)
  max_allocs : int;  (** MYO caps shared allocations *)
  max_total_bytes : int;
}

(** Heterogeneous-fleet refinement of one device, relative to [mic] /
    [pcie]: [sc_cores] multiplies its compute throughput, [sc_bw] its
    PCIe link bandwidth. *)
type scale = { sc_cores : float; sc_bw : float }

type t = {
  cpu : cpu;
  mic : mic;
  pcie : pcie;
  myo : myo;
  devices : int;
      (** MIC cards attached to the host, each with its own PCIe link
          described by [pcie]; the classic model is 1 *)
  streams : int;
      (** concurrent streams per device: cores are partitioned evenly
          across them, and all streams of a device contend for its one
          PCIe link *)
  scales : (int * scale) list;
      (** heterogeneous-fleet refinements, sorted by device index;
          unlisted devices run at {!unit_scale} *)
  fault : Fault.spec;
      (** injected-failure plan and recovery policy; [Fault.none] (the
          default) costs nothing anywhere.  With [devices > 1] the
          spec's [devN:] clauses refine individual devices *)
}

val with_faults : t -> Fault.spec -> t
(** The config with a fault plan installed. *)

val with_devices : t -> devices:int -> streams:int -> t
(** Install a device/stream grid; both clamped to at least 1. *)

val unit_scale : scale
(** [{ sc_cores = 1.0; sc_bw = 1.0 }]: a device with no refinement. *)

val with_scales : t -> (int * scale) list -> t
(** Install per-device scale factors (sorted by device index). *)

val scale_for : t -> int -> scale
(** Device [dev]'s scale; {!unit_scale} when the fleet does not refine
    it. *)

val homogeneous : t -> bool
(** No device deviates from {!unit_scale}. *)

val units : t -> int
(** Total concurrent execution units: [devices * streams]. *)

val gib : int
val paper_default : t

val simd_lanes : int -> int
(** Lanes for 32-bit floats, given the SIMD width in bits. *)

val mic_peak_flops : mic -> vectorized:bool -> float
val cpu_peak_flops : cpu -> vectorized:bool -> float
