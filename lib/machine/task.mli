(** Tasks for the discrete-event engine: each occupies one resource for
    a fixed duration and may depend on other tasks. *)

type resource =
  | Cpu_exec  (** host cores: sequential glue, repacking *)
  | Mic_exec of int * int
      (** one stream's core partition on one device: [(device, stream)] *)
  | Pcie_h2d of int  (** host-to-device DMA channel of device [d] *)
  | Pcie_d2h of int  (** device-to-host DMA channel of device [d] *)

val base_resources : resource list
(** The classic single-MIC view: [cpu; mic(0,0); h2d 0; d2h 0]. *)

val resource_name : resource -> string
(** ["cpu"], ["mic"]/["micD.S"], ["h2d"]/["h2dD"], ["d2h"]/["d2hD"] —
    device-0/stream-0 names match the historical single-device ones. *)

val resource_device : resource -> int option
(** The device a resource belongs to; [None] for the host. *)

type t = {
  id : int;
  label : string;
  resource : resource;
  duration : float;  (** seconds; clamped to >= 0 by {!add} *)
  deps : int list;  (** ids of tasks that must finish first *)
  kind : Obs.kind option;
      (** observability classification; [None] falls back to
          {!default_kind} when the engine records spans *)
  bytes : float;  (** payload moved by this task (transfers), else 0 *)
  reset_xfer_s : float;
      (** extra recovery seconds a device reset costs this task on top
          of re-execution: the time to re-transfer device-resident
          inputs the reset wiped (kernels that elided transfers via
          residency), else 0 *)
}

val default_kind : resource -> Obs.kind
(** The kind the engine assumes for an untagged task on a resource. *)

val resources_of : t list -> resource list
(** {!base_resources} plus every resource the tasks use, in canonical
    report order (cpu, kernels by device/stream, links by device). *)

(** Monotonic id supply for building task graphs. *)
type builder

val builder : unit -> builder

val add :
  builder ->
  ?deps:int list ->
  ?kind:Obs.kind ->
  ?bytes:float ->
  ?reset_xfer_s:float ->
  label:string ->
  resource:resource ->
  duration:float ->
  unit ->
  int
(** Add a task; returns its id for use in later [deps]. *)

val tasks : builder -> t list
(** Tasks in creation order. *)
