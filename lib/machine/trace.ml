(** Human-readable rendering of engine schedules: a per-resource
    summary and an optional text Gantt chart (used by the CLI's [run]
    subcommand). *)

let pp_summary fmt (r : Engine.result) =
  Format.fprintf fmt "makespan: %.6f s@." r.makespan;
  List.iter
    (fun (res, busy) ->
      let util = if r.makespan > 0. then 100. *. busy /. r.makespan else 0. in
      Format.fprintf fmt "  %-4s busy %.6f s (%.1f%%)@."
        (Task.resource_name res) busy util)
    r.busy

(** Text Gantt chart: one row per resource, [width] columns spanning
    the makespan. *)
let gantt ?(width = 72) (r : Engine.result) =
  let buf = Buffer.create 1024 in
  if r.makespan <= 0. then "(empty schedule)\n"
  else begin
    let scale = float_of_int width /. r.makespan in
    List.iter
      (fun (res, _) ->
        let row = Bytes.make width '.' in
        List.iter
          (fun (p : Engine.placed) ->
            if p.task.Task.resource = res then begin
              let s = int_of_float (p.start *. scale) in
              let f =
                min (width - 1) (int_of_float (p.finish *. scale))
              in
              for i = min s (width - 1) to f do
                Bytes.set row i
                  (match res with
                  | Task.Cpu_exec -> 'C'
                  | Task.Mic_exec _ -> 'K'
                  | Task.Pcie_h2d _ -> '>'
                  | Task.Pcie_d2h _ -> '<')
              done
            end)
          r.placed;
        Buffer.add_string buf
          (Printf.sprintf "%-4s |%s|\n" (Task.resource_name res)
             (Bytes.to_string row)))
      r.busy;
    Buffer.contents buf
  end

(** {1 Profile breakdown}

    Per-phase (kind) aggregation of a schedule: how many tasks of each
    kind ran, how many bytes they moved, how long they kept their
    resource busy, and what fraction of the makespan that is.  The
    kinds come from the tasks themselves ({!Task.t.kind}, falling back
    to the resource's natural kind), so any schedule can be profiled;
    an {!Obs.t} sink adds its counters and histograms on top. *)

let task_kind (t : Task.t) =
  match t.kind with Some k -> k | None -> Task.default_kind t.resource

type phase_stat = {
  ph_kind : Obs.kind;
  ph_count : int;
  ph_bytes : float;
  ph_seconds : float;
}

(** Per-kind totals over the placed tasks, in {!Obs.all_kinds} order;
    kinds with no tasks omitted. *)
let phases (r : Engine.result) =
  List.filter_map
    (fun k ->
      let count, bytes, seconds =
        List.fold_left
          (fun ((c, b, s) as acc) (p : Engine.placed) ->
            if task_kind p.task = k then
              (c + 1, b +. p.task.Task.bytes, s +. p.task.Task.duration)
            else acc)
          (0, 0., 0.) r.placed
      in
      if count = 0 then None
      else Some { ph_kind = k; ph_count = count; ph_bytes = bytes;
                  ph_seconds = seconds })
    Obs.all_kinds

let pp_bytes fmt b =
  if b >= 1048576. then Format.fprintf fmt "%.1f MB" (b /. 1048576.)
  else if b >= 1024. then Format.fprintf fmt "%.1f KB" (b /. 1024.)
  else Format.fprintf fmt "%.0f B" b

(** The [--profile] report: per-resource utilization, the per-phase
    breakdown table, and (with [?obs]) the counter values. *)
let pp_profile ?obs fmt (r : Engine.result) =
  pp_summary fmt r;
  Format.fprintf fmt "per-phase breakdown:@.";
  Format.fprintf fmt "  %-10s %8s %12s %12s %8s@." "phase" "count" "bytes"
    "busy s" "% span";
  List.iter
    (fun p ->
      let pct =
        if r.makespan > 0. then 100. *. p.ph_seconds /. r.makespan else 0.
      in
      Format.fprintf fmt "  %-10s %8d %12s %12.6f %7.1f%%@."
        (Obs.kind_name p.ph_kind) p.ph_count
        (Format.asprintf "%a" pp_bytes p.ph_bytes)
        p.ph_seconds pct)
    (phases r);
  match obs with
  | None -> ()
  | Some o ->
      let cs = Obs.counters o in
      if cs <> [] then begin
        Format.fprintf fmt "counters:@.";
        List.iter
          (fun (name, v) -> Format.fprintf fmt "  %-28s %10d@." name v)
          cs
      end

(** JSON export of the same profile ([--profile -o stats.json]).
    Schema (documented in the README):
    [{ makespan_s; resources: [{name; busy_s; utilization}];
       phases: [{kind; count; bytes; seconds; pct_makespan}];
       counters: {..}; histograms: {..} }] —
    the last two present only when an {!Obs.t} sink was supplied. *)
let profile_json ?obs (r : Engine.result) =
  let open Obs.Json in
  let resources =
    List.map
      (fun (res, busy) ->
        Obj
          [
            ("name", String (Task.resource_name res));
            ("busy_s", Float busy);
            ( "utilization",
              Float (if r.makespan > 0. then busy /. r.makespan else 0.) );
          ])
      r.busy
  in
  let phase_objs =
    List.map
      (fun p ->
        Obj
          [
            ("kind", String (Obs.kind_name p.ph_kind));
            ("count", Int p.ph_count);
            ("bytes", Float p.ph_bytes);
            ("seconds", Float p.ph_seconds);
            ( "pct_makespan",
              Float
                (if r.makespan > 0. then 100. *. p.ph_seconds /. r.makespan
                 else 0.) );
          ])
      (phases r)
  in
  let base =
    [
      ("makespan_s", Float r.makespan);
      ("tasks", Int (List.length r.placed));
      ("resources", List resources);
      ("phases", List phase_objs);
    ]
  in
  let extra =
    match obs with
    | None -> []
    | Some o ->
        [
          ( "counters",
            Obj (List.map (fun (k, v) -> (k, Int v)) (Obs.counters o)) );
          ( "histograms",
            Obj
              (List.map
                 (fun (k, h) -> (k, Obs.histogram_json h))
                 (Obs.histograms o)) );
        ]
  in
  Obj (base @ extra)

(** The busiest [n] tasks, for quick diagnosis. *)
let top_tasks ?(n = 8) (r : Engine.result) =
  let sorted =
    List.sort
      (fun (a : Engine.placed) b ->
        compare b.task.Task.duration a.task.Task.duration)
      r.placed
  in
  List.filteri (fun i _ -> i < n) sorted
