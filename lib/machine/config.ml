(** Machine parameters for the heterogeneous-system simulator.

    [paper_default] follows the experimental platform of Section VI: a
    Xeon Phi ES2-P/A/X 1750 (61 cores at 1.05 GHz, 4 threads/core,
    512-bit SIMD, 8 GB GDDR5, one core reserved for the OS) attached
    over PCIe to a Xeon E5-2660 host (8 cores, 2.2 GHz); benchmarks use
    200 device threads and 4 host threads. *)

type cpu = {
  cores : int;
  threads_used : int;  (** the paper uses 4 (5 for dedup, 6 for ferret) *)
  freq_ghz : float;
  simd_bits : int;
  flops_per_cycle : float;  (** per lane, per core *)
  mem_bw_gbs : float;  (** sustainable memory bandwidth, GB/s *)
}

type mic = {
  cores : int;  (** usable cores (one of 61 is reserved for the OS) *)
  threads_per_core : int;
  threads_used : int;
  freq_ghz : float;
  simd_bits : int;
  flops_per_cycle : float;
  mem_bytes : int;  (** device memory capacity: the 8 GB wall *)
  mem_bw_gbs : float;
  launch_overhead_s : float;  (** K: cost of launching one kernel *)
  signal_cost_s : float;  (** COI signal, used by persistent kernels *)
  parallel_eff : float;  (** fraction of peak reached by parallel loops *)
  serial_slowdown : float;
      (** how much slower one MIC thread is than one CPU thread for
          sequential code (in-order Pentium-class core) *)
}

type duplex = Full_duplex | Half_duplex

type pcie = {
  bw_h2d_gbs : float;
  bw_d2h_gbs : float;
  latency_s : float;  (** fixed per-transfer setup cost *)
  duplex : duplex;
      (** Full_duplex: h2d and d2h proceed concurrently (PCIe reality);
          Half_duplex: one shared channel, for sensitivity studies *)
}

type myo = {
  page_bytes : int;
  fault_cost_s : float;  (** software handling of one page fault *)
  page_bw_gbs : float;  (** effective bandwidth of page-sized copies
                            (no DMA batching) *)
  max_allocs : int;  (** MYO supports a limited number of shared
                         allocations *)
  max_total_bytes : int;
}

type scale = {
  sc_cores : float;
      (** multiplier on the device's compute throughput: 0.5 means the
          card runs kernels at half speed *)
  sc_bw : float;  (** multiplier on the device's PCIe link bandwidth *)
}

type t = {
  cpu : cpu;
  mic : mic;
  pcie : pcie;
  myo : myo;
  devices : int;
      (** MIC cards attached to the host, each with its own PCIe link
          described by [pcie]; the classic model is 1 *)
  streams : int;
      (** concurrent streams per device: the device's cores are
          partitioned evenly across them (a kernel on one stream runs
          on [cores/streams] cores), and all streams of a device
          contend for its one PCIe link *)
  scales : (int * scale) list;
      (** heterogeneous-fleet refinements, sorted by device index: the
          named device's compute and link speed relative to [mic] /
          [pcie].  Unlisted devices run at {!unit_scale} — the fleet
          is homogeneous when this is empty *)
  fault : Fault.spec;
      (** injected-failure plan and recovery policy; {!Fault.none}
          (the default) costs nothing anywhere.  With [devices > 1]
          the spec's [devN:] clauses refine individual devices *)
}

let gib = 1024 * 1024 * 1024

let paper_default =
  {
    cpu =
      {
        cores = 8;
        threads_used = 4;
        freq_ghz = 2.2;
        simd_bits = 256;
        flops_per_cycle = 2.0;
        mem_bw_gbs = 35.0;
      };
    mic =
      {
        cores = 60;
        threads_per_core = 4;
        threads_used = 200;
        freq_ghz = 1.05;
        simd_bits = 512;
        flops_per_cycle = 2.0;
        mem_bytes = 8 * gib;
        mem_bw_gbs = 150.0;
        launch_overhead_s = 1.0e-3;
        signal_cost_s = 5.0e-6;
        parallel_eff = 0.35;
        serial_slowdown = 8.0;
      };
    pcie =
      {
        bw_h2d_gbs = 6.0;
        bw_d2h_gbs = 6.0;
        latency_s = 2.0e-5;
        duplex = Full_duplex;
      };
    myo =
      {
        page_bytes = 4096;
        fault_cost_s = 1.0e-4;
        page_bw_gbs = 0.8;
        max_allocs = 4096;
        max_total_bytes = 512 * 1024 * 1024;
      };
    devices = 1;
    streams = 1;
    scales = [];
    fault = Fault.none;
  }

let with_faults t fault = { t with fault }

(** Install a device/stream grid; both clamped to at least 1. *)
let with_devices t ~devices ~streams =
  { t with devices = max 1 devices; streams = max 1 streams }

let unit_scale = { sc_cores = 1.0; sc_bw = 1.0 }

(** Install per-device scale factors (sorted; kept as given otherwise). *)
let with_scales t scales =
  { t with scales = List.sort (fun (a, _) (b, _) -> compare a b) scales }

(** Device [dev]'s scale; {!unit_scale} when the fleet does not refine it. *)
let scale_for t dev =
  Option.value (List.assoc_opt dev t.scales) ~default:unit_scale

(** No device deviates from {!unit_scale}: the classic identical-cards
    model, which the scheduler's legacy (uniform-cost) placement rule
    reproduces exactly. *)
let homogeneous t =
  List.for_all (fun (_, s) -> s.sc_cores = 1.0 && s.sc_bw = 1.0) t.scales

(** Total concurrent execution units: [devices * streams]. *)
let units t = max 1 t.devices * max 1 t.streams

(** Effective SIMD lanes for [float] (32-bit) elements. *)
let simd_lanes bits = bits / 32

(** Peak parallel FLOP/s of the device for a loop that the compiler
    could ([vec = true]) or could not vectorize. *)
let mic_peak_flops (m : mic) ~vectorized =
  let lanes = if vectorized then float_of_int (simd_lanes m.simd_bits) else 1.0 in
  float_of_int m.cores *. m.freq_ghz *. 1e9 *. lanes *. m.flops_per_cycle
  *. m.parallel_eff

let cpu_peak_flops (c : cpu) ~vectorized =
  let lanes = if vectorized then float_of_int (simd_lanes c.simd_bits) else 1.0 in
  float_of_int c.threads_used *. c.freq_ghz *. 1e9 *. lanes *. c.flops_per_cycle
  *. 0.5
