(** Roofline-style timing model for loop kernels on the host and the
    device, plus PCIe transfer times.  All the experiment figures are
    ratios of times produced here, scheduled by {!Engine}. *)

type kernel = {
  flops_per_iter : float;  (** arithmetic work per loop iteration *)
  mem_bytes_per_iter : float;  (** device/host memory traffic per iteration *)
  vectorizable : bool;  (** can the compiler use the 512-bit units? *)
  locality : float;
      (** 0..1; fraction of memory traffic served by cache.  Irregular
          accesses have low locality, which both lowers effective
          bandwidth and (on MIC) hurts more because per-core bandwidth
          is smaller. *)
  serial_frac : float;  (** Amdahl: fraction of work that cannot be
                            parallelized *)
  mic_derate : float;
      (** 0..1; fraction of the device's model peak this kernel
          actually reaches.  Captures per-kernel effects the roofline
          does not see — in-order pipelines stalling on transcendental
          sequences, masked gathers, load imbalance across 200 threads.
          This is the per-benchmark calibration knob; values are
          recorded in each workload module. *)
}

let default_kernel =
  {
    flops_per_iter = 10.0;
    mem_bytes_per_iter = 8.0;
    vectorizable = true;
    locality = 0.9;
    serial_frac = 0.0;
    mic_derate = 1.0;
  }

(* effective bandwidth under imperfect locality: misses pay full trips *)
let effective_bw bw_gbs locality = bw_gbs *. 1e9 *. (0.15 +. (0.85 *. locality))

let compute_time ~peak_flops ~single_flops ~bw ~(k : kernel) ~iters =
  let it = float_of_int iters in
  let flops = k.flops_per_iter *. it in
  let bytes = k.mem_bytes_per_iter *. it in
  let par = (1.0 -. k.serial_frac) *. flops /. peak_flops in
  let ser = k.serial_frac *. flops /. single_flops in
  let mem = bytes /. bw in
  Float.max (par +. ser) mem

(** Device time for [iters] iterations of kernel [k]. *)
let mic_time (cfg : Config.t) (k : kernel) ~iters =
  let vectorized = k.vectorizable in
  let peak = Config.mic_peak_flops cfg.mic ~vectorized *. k.mic_derate in
  let single =
    (* one in-order MIC thread, no SIMD for the serial part *)
    cfg.mic.freq_ghz *. 1e9 *. cfg.mic.flops_per_cycle /. 2.0
  in
  let bw = effective_bw cfg.mic.mem_bw_gbs k.locality in
  compute_time ~peak_flops:peak ~single_flops:single ~bw ~k ~iters

(** Host time for the same loop, on [cpu.threads_used] threads.  Host
    vectorization is assumed whenever device vectorization is possible
    (256-bit units, so the gain is half the device's). *)
let cpu_time (cfg : Config.t) (k : kernel) ~iters =
  let peak = Config.cpu_peak_flops cfg.cpu ~vectorized:k.vectorizable in
  let single = cfg.cpu.freq_ghz *. 1e9 *. cfg.cpu.flops_per_cycle in
  let bw = effective_bw cfg.cpu.mem_bw_gbs k.locality in
  compute_time ~peak_flops:peak ~single_flops:single ~bw ~k ~iters

(** Sequential host code executed on one MIC thread (what offload
    merging trades for fewer launches). *)
let mic_serial_time (cfg : Config.t) ~cpu_seconds =
  cpu_seconds *. cfg.mic.serial_slowdown

type direction = H2d | D2h

let kind_of_direction = function H2d -> Obs.H2d | D2h -> Obs.D2h

(** One DMA transfer of [bytes] over PCIe.  With [?obs], each model
    evaluation is counted ([cost.transfers.h2d]/[.d2h]) and the
    requested size recorded in a [xfer_bytes.*] histogram — the
    per-transfer size distribution of Table III.  [?dev] names the
    owning device of a heterogeneous fleet: its [sc_bw] scale
    multiplies the link bandwidth (latency is unaffected). *)
let transfer_time ?obs ?(dev = 0) (cfg : Config.t) dir ~bytes =
  (match obs with
  | None -> ()
  | Some o ->
      let k = Obs.kind_name (kind_of_direction dir) in
      Obs.incr o ("cost.transfers." ^ k);
      Obs.observe o ("xfer_bytes." ^ k) (Float.max 0. bytes));
  let bw =
    match dir with
    | H2d -> cfg.pcie.bw_h2d_gbs
    | D2h -> cfg.pcie.bw_d2h_gbs
  in
  let bw = bw *. (Config.scale_for cfg dev).Config.sc_bw in
  if bytes <= 0. then 0. else cfg.pcie.latency_s +. (bytes /. (bw *. 1e9))

(** Kernel launch overhead (the K of Section III-B); with [?obs] each
    evaluation bumps [cost.launches] — the "kernel launches" column. *)
let launch_time ?obs (cfg : Config.t) =
  (match obs with None -> () | Some o -> Obs.incr o "cost.launches");
  cfg.mic.launch_overhead_s

let signal_time ?obs (cfg : Config.t) =
  (match obs with None -> () | Some o -> Obs.incr o "cost.signals");
  cfg.mic.signal_cost_s
