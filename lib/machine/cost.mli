(** Roofline-style timing model for loop kernels on the host and the
    device, plus PCIe transfer times.  Every experiment figure is a
    ratio of times produced here, scheduled by {!Engine}. *)

type kernel = {
  flops_per_iter : float;  (** arithmetic work per loop iteration *)
  mem_bytes_per_iter : float;  (** memory traffic per iteration *)
  vectorizable : bool;  (** can the compiler use the 512-bit units? *)
  locality : float;
      (** 0..1; fraction of traffic served by cache.  Irregular
          accesses have low locality. *)
  serial_frac : float;  (** Amdahl: unparallelizable fraction *)
  mic_derate : float;
      (** 0..1; fraction of the device's model peak this kernel
          reaches.  The per-benchmark calibration knob (in-order
          stalls, masked gathers, imbalance across 200 threads);
          values are documented in each workload module. *)
}

val default_kernel : kernel

val mic_time : Config.t -> kernel -> iters:int -> float
(** Device time for [iters] iterations. *)

val cpu_time : Config.t -> kernel -> iters:int -> float
(** Host time on [cpu.threads_used] threads. *)

val mic_serial_time : Config.t -> cpu_seconds:float -> float
(** Sequential host code executed on one MIC thread — what offload
    merging trades for fewer launches. *)

type direction = H2d | D2h

val kind_of_direction : direction -> Obs.kind

val transfer_time :
  ?obs:Obs.t -> ?dev:int -> Config.t -> direction -> bytes:float -> float
(** One DMA transfer over PCIe (latency + bytes/bandwidth; free at 0
    bytes).  [?dev] names the owning device of a heterogeneous fleet:
    its [sc_bw] scale multiplies the link bandwidth.  With [?obs],
    counts the evaluation ([cost.transfers.h2d]/[.d2h]) and records
    the size in a [xfer_bytes.*] histogram. *)

val launch_time : ?obs:Obs.t -> Config.t -> float
(** Kernel launch overhead — the K of Section III-B.  With [?obs],
    bumps [cost.launches]. *)

val signal_time : ?obs:Obs.t -> Config.t -> float
(** COI signal cost, paid per block by persistent kernels.  With
    [?obs], bumps [cost.signals]. *)
