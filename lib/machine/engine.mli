(** Discrete-event list scheduler.

    Each resource executes its tasks serially; a task becomes ready
    when all its dependencies have finished; ties break by ready time,
    then by task id (FIFO in construction order).  This is a standard
    non-preemptive list schedule — enough to model the overlap of PCIe
    transfers with device computation that data streaming exploits, and
    the serialization a single DMA channel or the device itself
    imposes. *)

type placed = { task : Task.t; start : float; finish : float }

type result = {
  placed : placed list;  (** in order of completion *)
  makespan : float;
  busy : (Task.resource * float) list;  (** per-resource busy time *)
}

exception Cycle of string

val result_of_placed : placed list -> result
(** Assemble a {!result} from already-placed tasks (in completion
    order): makespan is the latest finish, busy rows cover
    {!Task.base_resources} plus every resource the placements touch.
    For composite schedulers (e.g. block migration) that merge
    placements from several engine runs into one report. *)

val schedule : ?obs:Obs.t -> ?faults:Fault.fleet -> Task.t list -> result
(** Raises {!Cycle} on cyclic dependencies and [Invalid_argument] on
    dangling ones.  With [?obs], every placed task is recorded as one
    span (kind from the task, or {!Task.default_kind} of its resource)
    plus an [engine.tasks] counter and per-kind duration histograms.

    With [?faults], PCIe tasks consult the plan of the device their
    resource belongs to ({!Fault.fleet_plan}): a failed attempt
    retransfers {e only that block} (busy time grows by one block per
    failure) and pays exponential backoff plus any device resets as an
    [Obs.Retry] recovery tail — a synthetic placed entry, so profiles
    show recovery as its own phase.  A kernel crossing its plan's
    [reset@T] loses its progress and reruns after the reset recovery.
    When the degradation policy declares a device dead, the engine
    raises {!Fault.Device_dead} carrying the device index; recovery
    (migration to surviving devices, then CPU fallback) happens at the
    strategy layer ([Schedule_gen] / [Replay] / [Migrate]). *)

val makespan : Task.t list -> float

val critical_path : Task.t list -> float
(** Longest dependency chain ignoring resource contention: a lower
    bound on the makespan (property-tested against {!schedule}). *)
