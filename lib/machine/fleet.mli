(** Machine (fleet) spec grammar: device/stream grid plus per-device
    heterogeneity, e.g. ["devices=2,streams=4,dev1:cores=0.5,bw=0.75"].

    Comma-separated clauses:
    - [devices=N] — number of MIC cards ([>= 1])
    - [streams=K] — concurrent streams per device ([>= 1])
    - [devN:cores=F] — device [N] runs kernels at [F] times base speed
    - [devN:bw=F] — device [N]'s PCIe link at [F] times base bandwidth

    A [devN:] prefix is sticky: a bare [cores=]/[bw=] clause after it
    keeps refining the same device.  Scale factors must be finite and
    positive; [devN:] indices must fall inside [devices].  Malformed
    clauses are typed {!parse_error}s, mirroring the fault grammar. *)

type t = {
  f_devices : int;
  f_streams : int;
  f_scales : (int * Config.scale) list;  (** sorted by device index *)
}

val default : t
(** One device, one stream, no refinements. *)

type parse_error = { token : string; reason : string }

val error_message : parse_error -> string

val parse : string -> (t, parse_error) result
(** Parse a spec; [""] is {!default}. *)

val to_string : t -> string
(** Canonical spec text; [parse (to_string f) = Ok f] for any valid
    [f] (scale clauses at 1.0 are omitted). *)

val apply : Config.t -> t -> Config.t
(** Install the fleet into a machine config: {!Config.with_devices}
    then {!Config.with_scales}. *)
