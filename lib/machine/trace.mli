(** Human-readable rendering of engine schedules. *)

val pp_summary : Format.formatter -> Engine.result -> unit
(** Makespan plus per-resource busy time and utilization. *)

val gantt : ?width:int -> Engine.result -> string
(** Text Gantt chart: one row per resource ([C] host, [K] kernels,
    [>] h2d, [<] d2h), [width] columns spanning the makespan. *)

val top_tasks : ?n:int -> Engine.result -> Engine.placed list
(** The [n] longest tasks, for quick diagnosis. *)

(** {1 Profile breakdown} *)

type phase_stat = {
  ph_kind : Obs.kind;
  ph_count : int;
  ph_bytes : float;
  ph_seconds : float;
}

val phases : Engine.result -> phase_stat list
(** Per-kind totals over the placed tasks (kind from the task, falling
    back to the resource's natural kind); empty kinds omitted. *)

val pp_profile : ?obs:Obs.t -> Format.formatter -> Engine.result -> unit
(** The [--profile] report: per-resource utilization, the per-phase
    breakdown table and, with [?obs], the counter values. *)

val profile_json : ?obs:Obs.t -> Engine.result -> Obs.Json.t
(** JSON export of the same profile.  Schema:
    [{ makespan_s; tasks; resources: [{name; busy_s; utilization}];
       phases: [{kind; count; bytes; seconds; pct_makespan}];
       counters; histograms }] — counters/histograms only when [?obs]
    is supplied. *)
