(** Tasks for the discrete-event engine.  A task occupies one resource
    for a fixed duration and may depend on other tasks. *)

type resource =
  | Cpu_exec  (** host cores: sequential glue, repacking *)
  | Mic_exec  (** device cores: offloaded kernels *)
  | Pcie_h2d  (** host-to-device DMA channel *)
  | Pcie_d2h  (** device-to-host DMA channel *)

let all_resources = [ Cpu_exec; Mic_exec; Pcie_h2d; Pcie_d2h ]

let resource_name = function
  | Cpu_exec -> "cpu"
  | Mic_exec -> "mic"
  | Pcie_h2d -> "h2d"
  | Pcie_d2h -> "d2h"

type t = {
  id : int;
  label : string;
  resource : resource;
  duration : float;  (** seconds; must be >= 0 *)
  deps : int list;  (** ids of tasks that must finish first *)
  kind : Obs.kind option;
      (** observability classification; [None] falls back to the
          resource's natural kind when the engine records spans *)
  bytes : float;  (** payload moved by this task (transfers), else 0 *)
  reset_xfer_s : float;
      (** extra recovery seconds a device reset costs this task on top
          of re-execution: the time to re-transfer device-resident
          inputs the reset wiped (kernels that elided transfers via
          residency), else 0 *)
}

(** The kind the engine assumes for an untagged task on [r]. *)
let default_kind = function
  | Cpu_exec -> Obs.Host
  | Mic_exec -> Obs.Kernel
  | Pcie_h2d -> Obs.H2d
  | Pcie_d2h -> Obs.D2h

(** Monotonic id supply for building task graphs. *)
type builder = { mutable next_id : int; mutable tasks : t list }

let builder () = { next_id = 0; tasks = [] }

let add b ?(deps = []) ?kind ?(bytes = 0.) ?(reset_xfer_s = 0.) ~label
    ~resource ~duration () =
  let id = b.next_id in
  b.next_id <- id + 1;
  let t =
    { id; label; resource; duration = Float.max 0. duration; deps; kind;
      bytes = Float.max 0. bytes; reset_xfer_s = Float.max 0. reset_xfer_s }
  in
  b.tasks <- t :: b.tasks;
  id

let tasks b = List.rev b.tasks
