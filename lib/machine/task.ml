(** Tasks for the discrete-event engine.  A task occupies one resource
    for a fixed duration and may depend on other tasks. *)

type resource =
  | Cpu_exec  (** host cores: sequential glue, repacking *)
  | Mic_exec of int * int
      (** one stream's core partition on one device: [(device, stream)].
          Streams of a device run concurrently; tasks within a stream
          serialize *)
  | Pcie_h2d of int  (** host-to-device DMA channel of device [d] *)
  | Pcie_d2h of int  (** device-to-host DMA channel of device [d] *)

(** The classic single-MIC view: device 0, stream 0.  Schedules built
    for a one-device machine use exactly these resources, so every
    pre-existing profile and trace is unchanged. *)
let base_resources = [ Cpu_exec; Mic_exec (0, 0); Pcie_h2d 0; Pcie_d2h 0 ]

let resource_name = function
  | Cpu_exec -> "cpu"
  | Mic_exec (0, 0) -> "mic"
  | Mic_exec (d, s) -> Printf.sprintf "mic%d.%d" d s
  | Pcie_h2d 0 -> "h2d"
  | Pcie_h2d d -> Printf.sprintf "h2d%d" d
  | Pcie_d2h 0 -> "d2h"
  | Pcie_d2h d -> Printf.sprintf "d2h%d" d

(** The device a resource belongs to; [None] for the host. *)
let resource_device = function
  | Cpu_exec -> None
  | Mic_exec (d, _) | Pcie_h2d d | Pcie_d2h d -> Some d

(* canonical display/report order: cpu, then kernels by (dev, stream),
   then h2d links by dev, then d2h links by dev — the single-device
   prefix of which is exactly [base_resources] *)
let resource_rank = function
  | Cpu_exec -> (0, 0, 0)
  | Mic_exec (d, s) -> (1, d, s)
  | Pcie_h2d d -> (2, d, 0)
  | Pcie_d2h d -> (3, d, 0)

type t = {
  id : int;
  label : string;
  resource : resource;
  duration : float;  (** seconds; must be >= 0 *)
  deps : int list;  (** ids of tasks that must finish first *)
  kind : Obs.kind option;
      (** observability classification; [None] falls back to the
          resource's natural kind when the engine records spans *)
  bytes : float;  (** payload moved by this task (transfers), else 0 *)
  reset_xfer_s : float;
      (** extra recovery seconds a device reset costs this task on top
          of re-execution: the time to re-transfer device-resident
          inputs the reset wiped (kernels that elided transfers via
          residency), else 0 *)
}

(** The kind the engine assumes for an untagged task on [r]. *)
let default_kind = function
  | Cpu_exec -> Obs.Host
  | Mic_exec _ -> Obs.Kernel
  | Pcie_h2d _ -> Obs.H2d
  | Pcie_d2h _ -> Obs.D2h

(** The resources a report should show for [tasks]: the single-device
    base view plus everything the tasks actually use, in canonical
    order.  One-device schedules thus keep the classic four rows. *)
let resources_of (tasks : t list) =
  let seen = Hashtbl.create 8 in
  List.iter (fun r -> Hashtbl.replace seen r ()) base_resources;
  List.iter (fun t -> Hashtbl.replace seen t.resource ()) tasks;
  List.sort
    (fun a b -> compare (resource_rank a) (resource_rank b))
    (Hashtbl.fold (fun r () acc -> r :: acc) seen [])

(** Monotonic id supply for building task graphs. *)
type builder = { mutable next_id : int; mutable tasks : t list }

let builder () = { next_id = 0; tasks = [] }

let add b ?(deps = []) ?kind ?(bytes = 0.) ?(reset_xfer_s = 0.) ~label
    ~resource ~duration () =
  let id = b.next_id in
  b.next_id <- id + 1;
  let t =
    { id; label; resource; duration = Float.max 0. duration; deps; kind;
      bytes = Float.max 0. bytes; reset_xfer_s = Float.max 0. reset_xfer_s }
  in
  b.tasks <- t :: b.tasks;
  id

let tasks b = List.rev b.tasks
