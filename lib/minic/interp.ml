(** Reference interpreter for MiniC with {e two} address spaces.

    The host (CPU) and the coprocessor (MIC) have separate heaps, as on
    a real PCIe-attached Xeon Phi.  Offload bodies execute in MIC mode:
    dereferencing a CPU pointer there is a runtime error, so a
    transformation that forgets to transfer data produces a hard failure
    rather than silently reading host memory.  This is what the
    semantics-preservation property tests run against. *)

open Ast

type space = Cpu | Mic

let space_name = function Cpu -> "CPU" | Mic -> "MIC"

type addr = { space : space; ofs : int }

type value =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vptr of addr
  | Vundef

type heap = { mutable cells : value array; mutable next : int }

(** Counters observable by tests: they let unit tests assert that e.g.
    streaming moves the same number of cells in more, smaller transfers,
    or that offload merging reduces [offloads]. *)
type stats = {
  mutable offloads : int;  (** kernel launches (offload regions entered) *)
  mutable transfers : int;  (** discrete transfer operations *)
  mutable cells_h2d : int;
  mutable cells_d2h : int;
  mutable mic_alloc_cells : int;
}

(** Offload-level event trace, in program order.  The replay layer
    ({!Runtime.Replay}) reconstructs the transfer/compute schedule the
    program would produce on the machine — asynchronous transfers carry
    their [signal] tag, kernels their [wait] tag, so the pipelining
    written into the source (Figure 5(b)) is recoverable. *)
type event =
  | Ev_transfer of { h2d_cells : int; d2h_cells : int; signal : int option }
  | Ev_wait of int
  | Ev_resident of { cells : int }
  | Ev_kernel of { work : int; wait : int option }
      (** [work] = statements executed inside the offload body *)

type state = {
  cpu : heap;
  mic : heap;
  structs : (string, struct_def) Hashtbl.t;
      (** first definition wins, as the old declaration-order assoc
          list resolved duplicates *)
  funcs : (string, func) Hashtbl.t;  (** first definition wins *)
  output : Buffer.t;
  mutable fuel : int;
  stats : stats;
  mutable events : event list;  (** reversed *)
  shadows : (int, addr) Hashtbl.t;
      (** CPU base offset -> MIC shadow buffer, reused across offloads *)
}

(** Variable bindings: name -> (cell address, static type). *)
type binding = { cell : addr; vty : ty }

(** One function activation's environment.  Scoping uses [Hashtbl]'s
    own stack semantics: [Hashtbl.add] shadows, [Hashtbl.remove]
    unshadows, so block entry/exit is push/pop per declared name and
    every lookup is O(1) — the interpreter's hottest operation, which
    the old innermost-first assoc list made O(live bindings). *)
type frame = (string, binding) Hashtbl.t

exception Runtime_error of string
exception Out_of_fuel

let error fmt = Printf.ksprintf (fun s -> raise (Runtime_error s)) fmt

external format_float : string -> float -> string = "caml_format_float"
(* The runtime primitive Printf itself uses for [%g]; calling it
   directly skips the CamlinternalFormat interpreter (~2x faster per
   print) while producing byte-identical text. *)

let lookup (frame : frame) v = Hashtbl.find_opt frame v
let bind (frame : frame) name b = Hashtbl.add frame name b
let unbind (frame : frame) name = Hashtbl.remove frame name

(** Typed lookup for data-clause variables: a section naming an
    unbound array must surface as a located runtime error (the
    differential harness runs untypechecked rewrites), never as a bare
    [Not_found] escaping {!run}. *)
let clause_binding frame ~clause arr =
  match lookup frame arr with
  | Some b -> b
  | None -> error "%s clause on unbound variable %s" clause arr

(* 256 words keeps the initial arrays in the minor heap (larger arrays
   are allocated directly on the major heap, which costs ~1us per run
   for short programs); [alloc] doubles capacity on demand. *)
let new_heap () = { cells = Array.make 256 Vundef; next = 0 }

let heap_of st = function Cpu -> st.cpu | Mic -> st.mic

let alloc st space n =
  let h = heap_of st space in
  let base = h.next in
  let needed = base + n in
  if needed > Array.length h.cells then begin
    let cap = max needed (2 * Array.length h.cells) in
    let cells = Array.make cap Vundef in
    Array.blit h.cells 0 cells 0 h.next;
    h.cells <- cells
  end;
  h.next <- needed;
  if space = Mic then st.stats.mic_alloc_cells <- st.stats.mic_alloc_cells + n;
  { space; ofs = base }

(* The explicit range check against [h.next] subsumes the array bounds
   check ([next <= length] is an allocator invariant), so the access
   itself is unsafe_get/set — [load]/[store] are the hottest operations
   in both evaluation engines. *)
let load st addr =
  let h = heap_of st addr.space in
  if addr.ofs < 0 || addr.ofs >= h.next then
    error "load out of bounds at %s:%d" (space_name addr.space) addr.ofs;
  Array.unsafe_get h.cells addr.ofs

let store st addr v =
  let h = heap_of st addr.space in
  if addr.ofs < 0 || addr.ofs >= h.next then
    error "store out of bounds at %s:%d" (space_name addr.space) addr.ofs;
  Array.unsafe_set h.cells addr.ofs v

(** {1 Type sizes, in heap cells} *)

let rec sizeof st ty =
  match ty with
  | Tvoid -> 0
  | Tint | Tfloat | Tbool | Tptr _ -> 1
  | Tarray (t, Some (Int_lit n)) -> n * sizeof st t
  | Tarray (_, _) -> error "sizeof of unsized array"
  | Tstruct name -> (
      match Hashtbl.find_opt st.structs name with
      | Some s ->
          List.fold_left (fun acc (t, _) -> acc + sizeof st t) 0 s.sfields
      | None -> error "unknown struct %s" name)

let field_offset st sname fname =
  match Hashtbl.find_opt st.structs sname with
  | None -> error "unknown struct %s" sname
  | Some s ->
      let rec loop acc = function
        | [] -> error "struct %s has no field %s" sname fname
        | (t, f) :: rest ->
            if String.equal f fname then (acc, t)
            else loop (acc + sizeof st t) rest
      in
      loop 0 s.sfields

(** {1 Value helpers} *)

let as_int = function
  | Vint n -> n
  | Vbool b -> if b then 1 else 0
  | Vfloat f -> int_of_float f
  | Vptr _ -> error "pointer used as int"
  | Vundef -> error "use of undefined value (as int)"

let as_float = function
  | Vfloat f -> f
  | Vint n -> float_of_int n
  | Vbool _ -> error "bool used as float"
  | Vptr _ -> error "pointer used as float"
  | Vundef -> error "use of undefined value (as float)"

let as_bool = function
  | Vbool b -> b
  | Vint n -> n <> 0
  | _ -> error "non-boolean condition"

let as_ptr = function
  | Vptr a -> a
  | Vundef -> error "use of undefined value (as pointer)"
  | _ -> error "non-pointer dereferenced"

(** {1 Static types at runtime}

    Address arithmetic needs element sizes, so the evaluator tracks the
    static type of expressions alongside values, using the bindings. *)

let rec static_ty st frame expr =
  match expr with
  | Int_lit _ -> Tint
  | Float_lit _ -> Tfloat
  | Bool_lit _ -> Tbool
  | Var v -> (
      match lookup frame v with
      | Some b -> b.vty
      | None -> error "unbound variable %s" v)
  | Index (a, _) -> (
      match static_ty st frame a with
      | Tarray (t, _) | Tptr t -> t
      | _ -> error "indexing non-array")
  | Field (e, f) -> (
      match static_ty st frame e with
      | Tstruct s -> snd (field_offset st s f)
      | _ -> error "field access on non-struct")
  | Arrow (e, f) -> (
      match static_ty st frame e with
      | Tptr (Tstruct s) | Tarray (Tstruct s, _) ->
          snd (field_offset st s f)
      | _ -> error "-> on non-struct pointer")
  | Deref e -> (
      match static_ty st frame e with
      | Tptr t | Tarray (t, _) -> t
      | _ -> error "dereferencing non-pointer")
  | Addr e -> Tptr (static_ty st frame e)
  | Unop (Neg, e) -> static_ty st frame e
  | Unop (Not, _) -> Tbool
  | Binop ((Add | Sub | Mul | Div), a, b) -> (
      match (static_ty st frame a, static_ty st frame b) with
      | Tint, Tint -> Tint
      | (Tptr _ | Tarray _), _ -> (
          match static_ty st frame a with
          | Tarray (t, _) -> Tptr t
          | t -> t)
      | _ -> Tfloat)
  | Binop (Mod, _, _) -> Tint
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Tbool
  | Call (fname, _) -> (
      match Builtins.find fname with
      | Some s -> s.ret
      | None -> (
          match Hashtbl.find_opt st.funcs fname with
          | Some f -> f.ret
          | None -> error "unknown function %s" fname))
  | Cast (t, _) -> t

(** {1 Evaluation} *)

type mode = { space : space }
(** [space] is where new allocations go and which pointers may be
    dereferenced (MIC mode may not touch CPU memory). *)

let check_deref (mode : mode) (addr : addr) =
  if mode.space = Mic && addr.space = Cpu then
    error
      "MIC code dereferenced CPU address %d: data was not transferred"
      addr.ofs

let burn st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

(** {1 Transfer machinery}

    Shared verbatim by the compiled evaluator ({!Compile_eval}) — both
    engines must move exactly the same cells and count them in the same
    [stats] fields. *)

let copy_cells st ~(src : addr) ~(dst : addr) n =
  let hs = heap_of st src.space and hd = heap_of st dst.space in
  if src.ofs + n > hs.next then
    error "transfer source out of bounds (%d cells at %s:%d)" n
      (space_name src.space) src.ofs;
  if dst.ofs + n > hd.next then
    error "transfer destination out of bounds (%d cells at %s:%d)" n
      (space_name dst.space) dst.ofs;
  Array.blit hs.cells src.ofs hd.cells dst.ofs n;
  st.stats.transfers <- st.stats.transfers + 1;
  if src.space = Cpu && dst.space = Mic then
    st.stats.cells_h2d <- st.stats.cells_h2d + n
  else if src.space = Mic && dst.space = Cpu then
    st.stats.cells_d2h <- st.stats.cells_d2h + n

(* Shadow MIC buffer for a CPU array (for clauses without into()).  The
   shadow covers the array from index 0 so device indexing matches host
   indexing; it is sized on first use and grown on demand. *)
let shadow_for st ~cpu_base ~cells_needed =
  match Hashtbl.find_opt st.shadows cpu_base.ofs with
  | Some mic_base ->
      let h = heap_of st Mic in
      if mic_base.ofs + cells_needed <= h.next then mic_base
      else begin
        (* grow: allocate a bigger shadow; stale data is re-copied by
           the in() clauses, which is the LEO behaviour *)
        let bigger = alloc st Mic cells_needed in
        Hashtbl.replace st.shadows cpu_base.ofs bigger;
        bigger
      end
  | None ->
      let mic_base = alloc st Mic cells_needed in
      Hashtbl.add st.shadows cpu_base.ofs mic_base;
      mic_base

(* The delta-table pointer translation of Section V-B, as transfer
   semantics: after copying a section, pointer-valued cells that point
   into the source range are rebased onto the destination copy (the
   delta is [dst.ofs - src.ofs]).  Without this, a pointer-based
   structure arrives on the device with host addresses and faults on
   first dereference — exactly the problem the paper's augmented
   pointers solve. *)
let translate_cells st ~(src : addr) ~(dst : addr) n =
  let hd = heap_of st dst.space in
  for i = dst.ofs to dst.ofs + n - 1 do
    match hd.cells.(i) with
    | Vptr p
      when p.space = src.space && p.ofs >= src.ofs && p.ofs < src.ofs + n ->
        hd.cells.(i) <-
          Vptr { space = dst.space; ofs = dst.ofs + (p.ofs - src.ofs) }
    | _ -> ()
  done

(* Implicit conversions at assignment / initialization. *)
let coerce ty v =
  match (ty, v) with
  | Tint, Vfloat f -> Vint (int_of_float f)
  | Tfloat, Vint n -> Vfloat (float_of_int n)
  | _ -> v

(* Result of running a block *)
type flow = Normal | Break | Continue | Return of value

let rec eval st mode frame expr : value =
  match expr with
  | Int_lit n -> Vint n
  | Float_lit f -> Vfloat f
  | Bool_lit b -> Vbool b
  | Var v -> (
      match lookup frame v with
      | Some b -> load st b.cell
      | None -> error "unbound variable %s" v)
  | Index _ | Field _ | Arrow _ | Deref _ ->
      let addr, ty = eval_lvalue st mode frame expr in
      check_deref mode addr;
      (match ty with
      | Tarray (_, _) -> Vptr addr (* arrays decay to element pointer *)
      | _ -> load st addr)
  | Addr e ->
      let addr, _ = eval_lvalue st mode frame e in
      Vptr addr
  | Unop (Neg, e) -> (
      match eval st mode frame e with
      | Vint n -> Vint (-n)
      | Vfloat f -> Vfloat (-.f)
      | _ -> error "- on non-numeric value")
  | Unop (Not, e) -> Vbool (not (as_bool (eval st mode frame e)))
  | Binop (op, a, b) -> eval_binop st mode frame op a b
  | Call (fname, args) -> eval_call st mode frame fname args
  | Cast (t, e) -> (
      let v = eval st mode frame e in
      match (t, v) with
      | Tint, Vfloat f -> Vint (int_of_float f)
      | Tint, Vint n -> Vint n
      | Tint, Vbool b -> Vint (if b then 1 else 0)
      | Tfloat, (Vint _ | Vfloat _) -> Vfloat (as_float v)
      | Tbool, v -> Vbool (as_bool v)
      | Tptr _, (Vptr _ as p) -> p
      | _ -> error "unsupported cast at runtime")

and eval_binop st mode frame op a b =
  let va = eval st mode frame a in
  let vb = eval st mode frame b in
  let arith fi ff =
    match (va, vb) with
    | Vundef, _ | _, Vundef -> error "use of undefined value in arithmetic"
    | Vint x, Vint y -> Vint (fi x y)
    | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
        Vfloat (ff (as_float va) (as_float vb))
    | Vptr p, Vint n -> (
        (* pointer arithmetic scaled by element size *)
        let elt =
          match static_ty st frame a with
          | Tptr t | Tarray (t, _) -> t
          | _ -> error "pointer arithmetic on non-pointer"
        in
        let k = sizeof st elt in
        match op with
        | Add -> Vptr { p with ofs = p.ofs + (n * k) }
        | Sub -> Vptr { p with ofs = p.ofs - (n * k) }
        | _ -> error "invalid pointer arithmetic")
    | _ -> error "arithmetic on non-numeric values"
  in
  let cmp f_int f_float =
    match (va, vb) with
    | Vundef, _ | _, Vundef -> error "use of undefined value in comparison"
    | Vint x, Vint y -> Vbool (f_int (compare x y) 0)
    | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
        Vbool (f_float (compare (as_float va) (as_float vb)) 0)
    | Vptr x, Vptr y -> Vbool (f_int (compare x y) 0)
    | Vbool x, Vbool y -> Vbool (f_int (compare x y) 0)
    | _ -> error "comparison of incompatible values"
  in
  match op with
  | Add -> arith ( + ) ( +. )
  | Sub -> arith ( - ) ( -. )
  | Mul -> arith ( * ) ( *. )
  | Div -> (
      match (va, vb) with
      | Vint _, Vint 0 -> error "division by zero"
      | Vint x, Vint y -> Vint (x / y)
      | _ -> Vfloat (as_float va /. as_float vb))
  | Mod -> (
      match (va, vb) with
      | Vint _, Vint 0 -> error "modulo by zero"
      | Vint x, Vint y -> Vint (x mod y)
      | _ -> error "%% on non-int values")
  | Eq -> cmp ( = ) ( = )
  | Ne -> cmp ( <> ) ( <> )
  | Lt -> cmp ( < ) ( < )
  | Le -> cmp ( <= ) ( <= )
  | Gt -> cmp ( > ) ( > )
  | Ge -> cmp ( >= ) ( >= )
  | And -> Vbool (as_bool va && as_bool vb)
  | Or -> Vbool (as_bool va || as_bool vb)

and eval_lvalue st mode frame expr : addr * ty =
  match expr with
  | Var v -> (
      match lookup frame v with
      | Some b -> (b.cell, b.vty)
      | None -> error "unbound variable %s" v)
  | Index (a, i) -> (
      let n = as_int (eval st mode frame i) in
      let base_ty = static_ty st frame a in
      match base_ty with
      | Tarray (elt, _) ->
          (* the variable's cell holds a pointer to the array data *)
          let base = as_ptr (eval st mode frame a) in
          check_deref mode base;
          ({ base with ofs = base.ofs + (n * sizeof st elt) }, elt)
      | Tptr elt ->
          let base = as_ptr (eval st mode frame a) in
          check_deref mode base;
          ({ base with ofs = base.ofs + (n * sizeof st elt) }, elt)
      | _ -> error "indexing non-array")
  | Field (e, f) -> (
      let addr, ty = eval_lvalue st mode frame e in
      match ty with
      | Tstruct s ->
          let ofs, fty = field_offset st s f in
          ({ addr with ofs = addr.ofs + ofs }, fty)
      | _ -> error "field access on non-struct")
  | Arrow (e, f) -> (
      let p = as_ptr (eval st mode frame e) in
      check_deref mode p;
      match static_ty st frame e with
      | Tptr (Tstruct s) | Tarray (Tstruct s, _) ->
          let ofs, fty = field_offset st s f in
          ({ p with ofs = p.ofs + ofs }, fty)
      | _ -> error "-> on non-struct pointer")
  | Deref e -> (
      let p = as_ptr (eval st mode frame e) in
      check_deref mode p;
      match static_ty st frame e with
      | Tptr t | Tarray (t, _) -> (p, t)
      | _ -> error "dereferencing non-pointer")
  | _ -> error "not an lvalue"

and eval_call st mode frame fname args =
  burn st;
  let vs = List.map (eval st mode frame) args in
  match (fname, vs) with
  | "print_int", [ v ] ->
      Buffer.add_string st.output (string_of_int (as_int v));
      Buffer.add_char st.output '\n';
      Vundef
  | "print_float", [ v ] ->
      Buffer.add_string st.output (format_float "%.6g" (as_float v));
      Buffer.add_char st.output '\n';
      Vundef
  | "print_bool", [ v ] ->
      Buffer.add_string st.output (if as_bool v then "true" else "false");
      Buffer.add_char st.output '\n';
      Vundef
  | "malloc", [ v ] -> Vptr (alloc st Cpu (as_int v))
  | "mic_malloc", [ v ] -> Vptr (alloc st Mic (as_int v))
  | ("free" | "mic_free"), [ _ ] -> Vundef (* bump allocator: no-op *)
  | "abs", [ v ] -> Vint (abs (as_int v))
  | "imin", [ a; b ] -> Vint (min (as_int a) (as_int b))
  | "imax", [ a; b ] -> Vint (max (as_int a) (as_int b))
  | _ -> (
      match (Builtins.eval_float1 fname, vs) with
      | Some f, [ v ] -> Vfloat (f (as_float v))
      | _ -> (
          match (Builtins.eval_float2 fname, vs) with
          | Some f, [ a; b ] -> Vfloat (f (as_float a) (as_float b))
          | _ -> (
              match Hashtbl.find_opt st.funcs fname with
              | Some f -> call_user st mode f vs
              | None -> error "unknown function %s" fname)))

and call_user st mode (f : func) vs =
  (* a call opens a fresh activation: parameters only, no caller (or
     global) bindings are visible in the body *)
  let frame : frame = Hashtbl.create 16 in
  let params =
    List.map2
      (fun p v ->
        let cell = alloc st mode.space 1 in
        store st cell v;
        (* array params decay to pointers *)
        let vty =
          match p.pty with Tarray (t, _) -> Tptr t | t -> t
        in
        (p.pname, { cell; vty }))
      f.params vs
  in
  (* bind in reverse so, under Hashtbl.add shadowing, the first of two
     same-named parameters wins — as the old assoc list resolved it *)
  List.iter (fun (name, b) -> bind frame name b) (List.rev params);
  match exec_block st mode frame f.body with
  | Return v -> v
  | Normal -> Vundef
  | Break | Continue -> error "break/continue outside loop"

and exec_block st mode frame block : flow =
  let declared = ref [] in
  let rec loop = function
    | [] -> Normal
    | stmt :: rest -> (
        match exec_stmt st mode frame stmt with
        | (Break | Continue | Return _) as fl -> fl
        | Normal -> (
            match stmt with
            | Sdecl (ty, name, init) ->
                let b = bind_decl st mode frame ty name init in
                bind frame name b;
                declared := name :: !declared;
                loop rest
            | _ -> loop rest))
  in
  let fl = loop block in
  (* pop this block's bindings on every exit path (Runtime_error /
     Out_of_fuel abort the whole run, so they need no unwinding) *)
  List.iter (unbind frame) !declared;
  fl

and bind_decl st mode frame ty _name init =
  match ty with
  | Tarray (elt, Some size_e) ->
      let n = as_int (eval st mode frame size_e) in
      let data = alloc st mode.space (n * sizeof st elt) in
      let cell = alloc st mode.space 1 in
      store st cell (Vptr data);
      (* record the resolved size so sizeof works later *)
      { cell; vty = Tarray (elt, Some (Int_lit n)) }
  | Tstruct _ ->
      let data = alloc st mode.space (sizeof st ty) in
      let cell = alloc st mode.space 1 in
      store st cell (Vptr data);
      ignore init;
      (* struct variables behave like pointers to their storage *)
      { cell = data; vty = ty }
  | _ ->
      let cell = alloc st mode.space 1 in
      (match init with
      | Some e -> store st cell (coerce ty (eval st mode frame e))
      | None -> ());
      { cell; vty = ty }

and exec_stmt st mode frame stmt : flow =
  burn st;
  match stmt with
  | Sexpr e ->
      ignore (eval st mode frame e);
      Normal
  | Sassign (lv, rv) ->
      let v = eval st mode frame rv in
      let addr, ty = eval_lvalue st mode frame lv in
      check_deref mode addr;
      if mode.space = Mic && addr.space = Cpu then
        error "MIC code wrote to CPU memory"
      else store st addr (coerce ty v);
      Normal
  | Sdecl _ -> Normal (* binding handled by exec_block *)
  | Sif (c, b1, b2) ->
      if as_bool (eval st mode frame c) then exec_block st mode frame b1
      else exec_block st mode frame b2
  | Swhile (c, b) ->
      let rec loop () =
        burn st;
        if as_bool (eval st mode frame c) then
          match exec_block st mode frame b with
          | Normal | Continue -> loop ()
          | Break -> Normal
          | Return v -> Return v
        else Normal
      in
      loop ()
  | Sfor { index; lo; hi; step; body } ->
      let cell = alloc st mode.space 1 in
      (* [lo] is evaluated before the index is in scope *)
      let lo_v = eval st mode frame lo in
      bind frame index { cell; vty = Tint };
      store st cell lo_v;
      let rec loop () =
        burn st;
        let i = as_int (load st cell) in
        let hi_v = as_int (eval st mode frame hi) in
        if i < hi_v then begin
          match exec_block st mode frame body with
          | Normal | Continue ->
              let stepv = as_int (eval st mode frame step) in
              store st cell (Vint (i + stepv));
              loop ()
          | Break -> Normal
          | Return v -> Return v
        end
        else Normal
      in
      let fl = loop () in
      unbind frame index;
      fl
  | Sreturn None -> Return Vundef
  | Sreturn (Some e) -> Return (eval st mode frame e)
  | Sblock b -> exec_block st mode frame b
  | Sbreak -> Break
  | Scontinue -> Continue
  | Spragma (p, s) -> exec_pragma st mode frame p s

and exec_pragma st mode frame pragma stmt : flow =
  match pragma with
  | Omp_parallel_for | Omp_simd ->
      (* functional semantics of a parallel loop = sequential execution *)
      exec_stmt st mode frame stmt
  | Offload_wait e ->
      st.events <- Ev_wait (as_int (eval st mode frame e)) :: st.events;
      Normal
  | Offload_transfer spec ->
      let h0 = st.stats.cells_h2d and d0 = st.stats.cells_d2h in
      do_transfers st mode frame spec;
      let h2d_cells = st.stats.cells_h2d - h0
      and d2h_cells = st.stats.cells_d2h - d0 in
      let signal =
        Option.map (fun e -> as_int (eval st mode frame e)) spec.signal
      in
      if h2d_cells > 0 || d2h_cells > 0 || Option.is_some signal then
        st.events <- Ev_transfer { h2d_cells; d2h_cells; signal } :: st.events;
      Normal
  | Offload spec -> exec_offload st mode frame spec stmt

(** Resolve a section to (cpu-side base address, cell count, elem size). *)
and resolve_section st mode frame (s : section) =
  let b = clause_binding frame ~clause:"data" s.arr in
  let elt =
    match b.vty with
    | Tarray (t, _) | Tptr t -> t
    | _ -> error "data clause on non-array %s" s.arr
  in
  let esz = sizeof st elt in
  let base = as_ptr (load st b.cell) in
  let start = as_int (eval st mode frame s.start) in
  let len = as_int (eval st mode frame s.len) in
  if len < 0 then error "negative section length for %s" s.arr;
  ({ base with ofs = base.ofs + (start * esz) }, len * esz, esz)

and do_transfers st mode frame spec =
  let transfer_in (s : section) =
    let src, n, esz = resolve_section st mode frame s in
    let translated = List.mem s.arr spec.translate in
    match s.into with
    | Some (dst_name, dofs_e) ->
        let dst_b = clause_binding frame ~clause:"into()" dst_name in
        let dst = as_ptr (load st dst_b.cell) in
        let dofs = as_int (eval st mode frame dofs_e) in
        let dst = { dst with ofs = dst.ofs + (dofs * esz) } in
        copy_cells st ~src ~dst n;
        if translated then translate_cells st ~src ~dst n
    | None ->
        let b = clause_binding frame ~clause:"in()" s.arr in
        let cpu_base = as_ptr (load st b.cell) in
        let start_cells = src.ofs - cpu_base.ofs in
        let mic_base =
          shadow_for st ~cpu_base ~cells_needed:(start_cells + n)
        in
        let dst = { mic_base with ofs = mic_base.ofs + start_cells } in
        copy_cells st ~src ~dst n;
        if translated then translate_cells st ~src ~dst n
  in
  let transfer_out (s : section) =
    let translated = List.mem s.arr spec.translate in
    match s.into with
    | Some (dst_name, dofs_e) ->
        (* out(dev[a:l] : into(host[b:l])): device-to-host copy *)
        let src, n, esz = resolve_section st mode frame s in
        let dst_b = clause_binding frame ~clause:"into()" dst_name in
        let dst = as_ptr (load st dst_b.cell) in
        let dofs = as_int (eval st mode frame dofs_e) in
        let dst = { dst with ofs = dst.ofs + (dofs * esz) } in
        copy_cells st ~src ~dst n;
        if translated then translate_cells st ~src ~dst n
    | None ->
        let dst, n, _ = resolve_section st mode frame s in
        let b = clause_binding frame ~clause:"out()" s.arr in
        let cpu_base = as_ptr (load st b.cell) in
        let start_cells = dst.ofs - cpu_base.ofs in
        let mic_base =
          match Hashtbl.find_opt st.shadows cpu_base.ofs with
          | Some m -> m
          | None -> error "out() for %s before any in()" s.arr
        in
        copy_cells st
          ~src:{ mic_base with ofs = mic_base.ofs + start_cells }
          ~dst n
  in
  List.iter transfer_in (spec.ins @ spec.inouts);
  List.iter transfer_out spec.outs

and exec_offload st mode frame spec stmt : flow =
  if mode.space = Mic then error "nested offload";
  st.stats.offloads <- st.stats.offloads + 1;
  (* 1. copy in/inout sections host -> device *)
  let h0 = st.stats.cells_h2d in
  do_transfers st mode frame { spec with outs = [] };
  let in_cells = st.stats.cells_h2d - h0 in
  if in_cells > 0 then
    st.events <-
      Ev_transfer { h2d_cells = in_cells; d2h_cells = 0; signal = None }
      :: st.events;
  (* 2. rebind clause arrays (without into) to their MIC shadows *)
  let rebind acc (s : section) =
    if Option.is_some s.into || List.mem_assoc s.arr acc then acc
    else
      let b = clause_binding frame ~clause:"offload data" s.arr in
      let cpu_base = as_ptr (load st b.cell) in
      match Hashtbl.find_opt st.shadows cpu_base.ofs with
      | None -> acc (* out-only array: shadow created below *)
      | Some mic_base ->
          let cell = alloc st Cpu 1 in
          store st cell (Vptr mic_base);
          (s.arr, { b with cell }) :: acc
  in
  (* out-only arrays need a device buffer even without an in() copy *)
  let ensure_shadow (s : section) =
    if Option.is_none s.into then begin
      let addr, n, _ = resolve_section st mode frame s in
      let b = clause_binding frame ~clause:"out()" s.arr in
      let cpu_base = as_ptr (load st b.cell) in
      let start_cells = addr.ofs - cpu_base.ofs in
      ignore (shadow_for st ~cpu_base ~cells_needed:(start_cells + n))
    end
  in
  List.iter ensure_shadow spec.outs;
  let rebinds =
    List.fold_left rebind [] (spec.ins @ spec.inouts @ spec.outs)
  in
  (* nocopy(): the named arrays must already hold a device shadow from
     an earlier offload or transfer; rebind them to it without any
     copy.  [Ev_resident] records how many device cells the kernel
     depends on that this offload did not transfer — the replay layer
     re-charges exactly those when a device reset wipes the shadows. *)
  let nocopy_rebinds, resident_cells =
    List.fold_left
      (fun ((acc, cells) as unchanged) name ->
        if List.mem_assoc name acc then unchanged
        else
          let b = clause_binding frame ~clause:"nocopy()" name in
          let cpu_base = as_ptr (load st b.cell) in
          match Hashtbl.find_opt st.shadows cpu_base.ofs with
          | None -> error "nocopy(%s): no resident device copy" name
          | Some mic_base ->
              let n =
                match b.vty with
                | Tarray (elt, Some (Int_lit k)) -> k * sizeof st elt
                | _ -> 0
              in
              let acc =
                (* a section clause on the same array already rebound it *)
                if List.mem_assoc name rebinds then acc
                else begin
                  let cell = alloc st Cpu 1 in
                  store st cell (Vptr mic_base);
                  (name, { b with cell }) :: acc
                end
              in
              (acc, cells + n))
      ([], 0) spec.nocopy
  in
  if spec.nocopy <> [] then
    st.events <- Ev_resident { cells = resident_cells } :: st.events;
  let rebinds = rebinds @ nocopy_rebinds in
  List.iter (fun (name, b) -> bind frame name b) rebinds;
  (* 3. run the body in MIC mode *)
  let fuel0 = st.fuel in
  let fl = exec_stmt st { space = Mic } frame stmt in
  (* the rebinds scope over the body only: the out/inout copies below
     resolve sections against the host bindings again *)
  List.iter (fun (name, _) -> unbind frame name) rebinds;
  let work = fuel0 - st.fuel in
  let wait =
    Option.map (fun e -> as_int (eval st mode frame e)) spec.wait
  in
  st.events <- Ev_kernel { work; wait } :: st.events;
  (* 4. copy out/inout sections device -> host (inouts must not be
     re-transferred inward here, or stale host data would overwrite the
     kernel's results) *)
  let d0 = st.stats.cells_d2h in
  do_transfers st mode frame
    { spec with ins = []; inouts = []; outs = spec.outs @ spec.inouts };
  let out_cells = st.stats.cells_d2h - d0 in
  if out_cells > 0 then
    st.events <-
      Ev_transfer { h2d_cells = 0; d2h_cells = out_cells; signal = None }
      :: st.events;
  match fl with
  | Normal -> Normal
  | Return _ | Break | Continue -> error "control flow escaped offload"

(** {1 Whole-program execution} *)

type outcome = {
  ret : value;
  output : string;
  stats : stats;
  events : event list;  (** offload-level trace, in program order *)
  globals : (string * value list) list;
      (** final contents of every global variable, in declaration
          order: array/struct storage flattened cell by cell, scalars
          as a single cell.  This is the "final heap state" the
          differential oracle ({!Check.equiv}) compares. *)
  work : int;
      (** fuel consumed = statements + loop iterations + calls
          executed; the unit the interpreter-throughput benchmark
          counts, and a fuel-parity check between engines *)
}

(** Which evaluator executes a program.  [Reference] is the
    tree-walking interpreter in this module; [Compiled] is the
    closure-compiling evaluator ({!Compile_eval}), which must be
    observationally identical — same output, return value, globals,
    stats, events, and fuel accounting. *)
type engine = Reference | Compiled

let engine_name = function Reference -> "reference" | Compiled -> "compiled"

let engine_of_string = function
  | "reference" -> Some Reference
  | "compiled" -> Some Compiled
  | _ -> None

(* Build a name table where the FIRST definition of a name wins, the
   resolution the old declaration-order assoc lists gave duplicate
   structs/functions.  [Hashtbl.add] would make the last one win. *)
let first_wins pairs =
  let h = Hashtbl.create 16 in
  List.iter (fun (k, v) -> if not (Hashtbl.mem h k) then Hashtbl.add h k v) pairs;
  h

let init_state prog =
  {
    cpu = new_heap ();
    mic = new_heap ();
    structs =
      first_wins
        (List.filter_map
           (function Gstruct s -> Some (s.sname, s) | _ -> None)
           prog);
    funcs =
      first_wins
        (List.filter_map
           (function Gfunc f -> Some (f.fname, f) | _ -> None)
           prog);
    output = Buffer.create 256;
    fuel = 0;
    stats =
      {
        offloads = 0;
        transfers = 0;
        cells_h2d = 0;
        cells_d2h = 0;
        mic_alloc_cells = 0;
      };
    events = [];
    shadows = Hashtbl.create 16;
  }

(* Flattened final contents of one global's storage, for the outcome
   snapshot.  Sizes in bindings are resolved ([bind_decl] stores the
   evaluated [Int_lit]), so [sizeof] is exact here. *)
let snapshot_binding st (b : binding) =
  match b.vty with
  | Tarray (elt, Some (Int_lit n)) -> (
      match load st b.cell with
      | Vptr base ->
          List.init (n * sizeof st elt) (fun k ->
              load st { base with ofs = base.ofs + k })
      | v -> [ v ])
  | Tstruct _ ->
      List.init (sizeof st b.vty) (fun k ->
          load st { b.cell with ofs = b.cell.ofs + k })
  | _ -> [ load st b.cell ]

(** Run [main()].  [fuel] bounds the number of statements executed
    (default 10 million). *)
let run ?(fuel = 10_000_000) prog =
  let st = init_state prog in
  st.fuel <- fuel;
  let mode = { space = Cpu } in
  try
    (* bind globals; initializers see no other bindings, as before *)
    let empty : frame = Hashtbl.create 1 in
    let globals =
      List.filter_map
        (function
          | Gvar (ty, name, init) ->
              Some (name, bind_decl st mode empty ty name init)
          | _ -> None)
        prog
    in
    let genv : frame = Hashtbl.create 32 in
    (* reverse so the first of two same-named globals shadows, as the
       old declaration-order assoc list resolved it *)
    List.iter (fun (name, b) -> bind genv name b) (List.rev globals);
    match Hashtbl.find_opt st.funcs "main" with
    | None -> Error "no main function"
    | Some f ->
        let fl = exec_block st mode genv f.body in
        let ret = match fl with Return v -> v | _ -> Vundef in
        Ok
          {
            ret;
            output = Buffer.contents st.output;
            stats = st.stats;
            events = List.rev st.events;
            globals =
              List.map (fun (n, b) -> (n, snapshot_binding st b)) globals;
            work = fuel - st.fuel;
          }
  with
  | Runtime_error msg -> Error msg
  | Out_of_fuel -> Error "out of fuel"

(** Convenience: run and return printed output, raising on error. *)
let run_output ?fuel prog =
  match run ?fuel prog with
  | Ok o -> o.output
  | Error msg -> invalid_arg ("Minic.Interp: " ^ msg)
