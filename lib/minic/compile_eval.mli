(** Compile-to-closures evaluator for MiniC.

    One pass over the AST resolves every variable occurrence to an
    integer slot in a per-activation binding array, binds calls to the
    target function's compiled closure, precomputes struct field
    offsets and section element sizes, and specializes operator
    dispatch — then running the program is pure closure invocation.

    Observationally identical to {!Interp}: same output, return value,
    globals snapshot, stats, event trace, fuel accounting (identical
    [Timeout] points), and the same runtime error messages raised at
    the same evaluation points, so {!Check} and [Runtime.Replay]
    consume its outcomes unchanged.  The engine-equivalence test suite
    and the [@perf] alias enforce this. *)

type compiled
(** A compiled program, ready to execute any number of times. *)

val compile : Ast.program -> compiled
(** Compile without caching.  Static resolution failures (unbound
    variables, unknown structs, bad clauses) do not fail here: they
    compile to code that raises the reference interpreter's error at
    the same evaluation point. *)

val source : compiled -> Ast.program
val exec : ?fuel:int -> compiled -> (Interp.outcome, string) result
(** Execute a compiled program; [fuel] as in {!Interp.run}. *)

val run_compiled :
  ?fuel:int -> Ast.program -> (Interp.outcome, string) result
(** Compile (through the per-domain cache) and execute. *)

val run :
  ?engine:Interp.engine ->
  ?fuel:int ->
  Ast.program ->
  (Interp.outcome, string) result
(** Engine-dispatched execution: [Reference] delegates to
    {!Interp.run}, [Compiled] (the default) to {!run_compiled}. *)

val compile_count : unit -> int
(** Number of cache-miss compilations performed by the calling domain —
    the cache, like [Transforms.Util.fresh], is domain-local state, so
    the PR-4 domain pool never contends on it. *)

(** Request-shared front-end cache, keyed by raw source text.

    Unlike the per-domain AST cache, this one is mutex-guarded and
    meant to be shared by every request of a long-running service:
    each distinct source is parsed, typechecked and compiled exactly
    once while its entry stays resident, and front-end failures are
    cached too.  Bounded: when full the table resets (same policy as
    the per-domain cache), after which previously-seen sources miss
    once again. *)
module Source_cache : sig
  type error =
    | Parse_error of string
    | Type_error of string
        (** Typed front-end failure — a daemon maps these to protocol
            error codes instead of crashing on bad input. *)

  type t

  val create : ?limit:int -> unit -> t

  val get : t -> string -> (Ast.program * compiled, error) result
  (** Cached parse + typecheck + compile of one source.  The returned
      [compiled] is reentrant and safe to execute from any domain. *)

  val hits : t -> int
  val misses : t -> int
  (** Monotonic lookup counters, for the service's [cache.hit]/
      [cache.miss] observability. *)
end
