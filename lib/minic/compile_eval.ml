(** Compile-to-closures evaluator for MiniC.

    One pass over the typed AST builds a tree of OCaml closures; running
    a program is then just invoking closures, with no AST dispatch, no
    name lookups, and no repeated [static_ty] walks.  The three static
    resolutions that make it fast:

    - {b slots}: every variable occurrence is resolved at compile time
      to an integer index into a per-activation [binding array]
      (replacing the reference interpreter's per-access [Hashtbl]
      probes).  Bindings still allocate their heap cells in exactly the
      reference order, so addresses, [Vptr] values, and the globals
      snapshot are bit-identical.
    - {b direct references}: calls bind to the target function's
      compiled closure, struct field accesses to precomputed offsets,
      and sections to element sizes — all resolved once.
    - {b specialization}: binop/unop/cast/coerce dispatch happens at
      compile time; each site gets a monomorphic closure.

    The contract is exact observational equivalence with {!Interp}:
    same output, return value, globals, stats, event trace, fuel
    accounting (identical [burn] points, so [Timeout] fires at the same
    statement), and the same error messages raised at the same
    evaluation points.  Static resolution failures (unbound variables,
    unknown structs/fields, bad section clauses) are therefore not
    compile errors: they compile to closures that raise the reference
    error at the precise moment the reference interpreter would — the
    differential harness runs untypechecked rewrites, and a transform
    bug must surface identically under both engines. *)

open Ast
open Interp

type rt = {
  st : state;
  space : space;  (** where allocations go / which pointers deref *)
  slots : binding array;  (** this activation's variables, by slot *)
}

type flow = Normal | Break | Continue | Return of value

type ecode = rt -> value
type lcode = rt -> addr
type scode = rt -> flow

(** Compile-time scope: innermost binding first, so [List.assoc]
    resolves shadowing; same-level duplicates (parameters, globals)
    are listed in declaration order, so the first one wins — the
    resolution the reference's reversed [Hashtbl.add] binds give. *)
type scope = (string * (int * ty)) list

(* A compiled function.  [call] is patched after all functions compile,
   so recursion and forward references resolve to direct closures. *)
type cfunc = {
  src : func;
  mutable call : state -> space -> value list -> value;
}

type ctx = {
  cstructs : (string * struct_def) list;  (** declaration order *)
  cfuncs : (string * cfunc) list;  (** declaration order *)
}

let dummy_binding = { cell = { space = Cpu; ofs = -1 }; vty = Tvoid }

let fresh_slot nslots =
  let s = !nslots in
  incr nslots;
  s

let check_deref rt (a : addr) =
  if rt.space = Mic && a.space = Cpu then
    error "MIC code dereferenced CPU address %d: data was not transferred"
      a.ofs

(* Local copies of [Interp.load] / [Interp.store] / [Interp.burn] that
   ocamlopt can inline into the closures (the cross-module calls are
   not inlined without flambda, and at a handful of cells per
   statement they dominate the compiled engine's floor).  Out-of-range
   offsets fall back to the Interp versions so error messages stay
   bit-identical. *)
let[@inline] fast_load st (a : addr) =
  let h = match a.space with Cpu -> st.cpu | Mic -> st.mic in
  if a.ofs < 0 || a.ofs >= h.next then load st a
  else Array.unsafe_get h.cells a.ofs

let[@inline] fast_store st (a : addr) v =
  let h = match a.space with Cpu -> st.cpu | Mic -> st.mic in
  if a.ofs < 0 || a.ofs >= h.next then store st a v
  else Array.unsafe_set h.cells a.ofs v

let[@inline] fast_burn st =
  st.fuel <- st.fuel - 1;
  if st.fuel <= 0 then raise Out_of_fuel

(* In-capacity allocations skip the call into [Interp.alloc]; the grow
   path falls back to it.  [next] never decreases within a run, so
   cells at [>= next] are still the [Vundef] they were created with —
   the fast path changes no observable state differently. *)
let[@inline] fast_alloc st space n =
  let h = match space with Cpu -> st.cpu | Mic -> st.mic in
  let base = h.next in
  let needed = base + n in
  if needed <= Array.length h.cells then begin
    h.next <- needed;
    (match space with
    | Mic -> st.stats.mic_alloc_cells <- st.stats.mic_alloc_cells + n
    | Cpu -> ());
    { space; ofs = base }
  end
  else alloc st space n

(* Comparisons and logic allocate no [Vbool]: values are immutable, so
   sharing the two constants is unobservable. *)
let vtrue = Vbool true
let vfalse = Vbool false
let[@inline] vbool b = if b then vtrue else vfalse

(** {1 Static resolution}

    Compile-time mirrors of [sizeof] / [field_offset] / [static_ty].
    They return [Error msg] instead of raising: the message is exactly
    what the reference would raise, and the compiled code raises it at
    the corresponding runtime point. *)

let rec csizeof ctx ty : (int, string) result =
  match ty with
  | Tvoid -> Ok 0
  | Tint | Tfloat | Tbool | Tptr _ -> Ok 1
  | Tarray (t, Some (Int_lit n)) ->
      Result.map (fun k -> n * k) (csizeof ctx t)
  | Tarray (_, _) -> Error "sizeof of unsized array"
  | Tstruct name -> (
      match List.assoc_opt name ctx.cstructs with
      | None -> Error (Printf.sprintf "unknown struct %s" name)
      | Some s ->
          List.fold_left
            (fun acc (t, _) ->
              match acc with
              | Error _ -> acc
              | Ok a -> Result.map (fun k -> a + k) (csizeof ctx t))
            (Ok 0) s.sfields)

let cfield_offset ctx sname fname : (int * ty, string) result =
  match List.assoc_opt sname ctx.cstructs with
  | None -> Error (Printf.sprintf "unknown struct %s" sname)
  | Some s ->
      let rec loop acc = function
        | [] ->
            Error
              (Printf.sprintf "struct %s has no field %s" sname fname)
        | (t, f) :: rest ->
            if String.equal f fname then Ok (acc, t)
            else (
              match csizeof ctx t with
              | Error _ as e -> e |> Result.map (fun _ -> (0, Tvoid))
              | Ok k -> loop (acc + k) rest)
      in
      loop 0 s.sfields

let rec sty ctx (scope : scope) (e : expr) : (ty, string) result =
  let ( let* ) = Result.bind in
  match e with
  | Int_lit _ -> Ok Tint
  | Float_lit _ -> Ok Tfloat
  | Bool_lit _ -> Ok Tbool
  | Var v -> (
      match List.assoc_opt v scope with
      | Some (_, t) -> Ok t
      | None -> Error (Printf.sprintf "unbound variable %s" v))
  | Index (a, _) -> (
      let* ta = sty ctx scope a in
      match ta with
      | Tarray (t, _) | Tptr t -> Ok t
      | _ -> Error "indexing non-array")
  | Field (e, f) -> (
      let* te = sty ctx scope e in
      match te with
      | Tstruct s -> Result.map snd (cfield_offset ctx s f)
      | _ -> Error "field access on non-struct")
  | Arrow (e, f) -> (
      let* te = sty ctx scope e in
      match te with
      | Tptr (Tstruct s) | Tarray (Tstruct s, _) ->
          Result.map snd (cfield_offset ctx s f)
      | _ -> Error "-> on non-struct pointer")
  | Deref e -> (
      let* te = sty ctx scope e in
      match te with
      | Tptr t | Tarray (t, _) -> Ok t
      | _ -> Error "dereferencing non-pointer")
  | Addr e -> Result.map (fun t -> Tptr t) (sty ctx scope e)
  | Unop (Neg, e) -> sty ctx scope e
  | Unop (Not, _) -> Ok Tbool
  | Binop ((Add | Sub | Mul | Div), a, b) ->
      (* the reference evaluates the (static_ty a, static_ty b) tuple
         right to left, so b's failure surfaces first *)
      let* tb = sty ctx scope b in
      let* ta = sty ctx scope a in
      Ok
        (match (ta, tb) with
        | Tint, Tint -> Tint
        | (Tptr _ | Tarray _), _ -> (
            match ta with Tarray (t, _) -> Tptr t | t -> t)
        | _ -> Tfloat)
  | Binop (Mod, _, _) -> Ok Tint
  | Binop ((Eq | Ne | Lt | Le | Gt | Ge | And | Or), _, _) -> Ok Tbool
  | Call (fname, _) -> (
      match Builtins.find fname with
      | Some s -> Ok s.ret
      | None -> (
          match List.assoc_opt fname ctx.cfuncs with
          | Some cf -> Ok cf.src.ret
          | None -> Error (Printf.sprintf "unknown function %s" fname)))
  | Cast (t, _) -> Ok t

(* Element size for pointer arithmetic on [a]: resolved statically,
   raised (if an error) only on the runtime Vptr path, like the
   reference's lazy static_ty/sizeof calls. *)
let ptr_elt_size ctx scope a : (int, string) result =
  match sty ctx scope a with
  | Error _ as e -> e
  | Ok (Tptr t | Tarray (t, _)) -> csizeof ctx t
  | Ok _ -> Error "pointer arithmetic on non-pointer"

(* Assignment/initialization coercion, specialized per target type. *)
let ccoerce ty : value -> value =
  match ty with
  | Tint -> ( function Vfloat f -> Vint (int_of_float f) | v -> v)
  | Tfloat -> ( function Vint n -> Vfloat (float_of_int n) | v -> v)
  | _ -> fun v -> v

let esz_or_raise = function Ok k -> k | Error m -> error "%s" m

(** {1 Section and transfer machinery}

    Sections compile to [csec]: slot, element size, and start/len
    closures resolved once.  The runtime paths below mirror
    [Interp.resolve_section] / [do_transfers] operation for operation,
    sharing [copy_cells]/[shadow_for]/[translate_cells] so stats and
    heap effects are identical. *)

type csec = {
  c_arr : string;
  c_slot : int option;  (** None compiles to the unbound-clause error *)
  c_esz : (int, string) result;
      (** element size, or the non-array / sizeof error to raise *)
  c_start : ecode;
  c_len : ecode;
  c_into : (string * int option * ecode) option;
  c_translated : bool;
}

let slot_binding rt ~clause name = function
  | Some k -> rt.slots.(k)
  | None -> error "%s clause on unbound variable %s" clause name

let resolve rt cs =
  let b = slot_binding rt ~clause:"data" cs.c_arr cs.c_slot in
  let esz = esz_or_raise cs.c_esz in
  let base = as_ptr (fast_load rt.st b.cell) in
  let start = as_int (cs.c_start rt) in
  let len = as_int (cs.c_len rt) in
  if len < 0 then error "negative section length for %s" cs.c_arr;
  ({ base with ofs = base.ofs + (start * esz) }, len * esz, esz)

let transfer_in rt cs =
  let src, n, esz = resolve rt cs in
  match cs.c_into with
  | Some (dname, dslot, cdofs) ->
      let dst_b = slot_binding rt ~clause:"into()" dname dslot in
      let dst = as_ptr (fast_load rt.st dst_b.cell) in
      let dofs = as_int (cdofs rt) in
      let dst = { dst with ofs = dst.ofs + (dofs * esz) } in
      copy_cells rt.st ~src ~dst n;
      if cs.c_translated then translate_cells rt.st ~src ~dst n
  | None ->
      let b = slot_binding rt ~clause:"in()" cs.c_arr cs.c_slot in
      let cpu_base = as_ptr (fast_load rt.st b.cell) in
      let start_cells = src.ofs - cpu_base.ofs in
      let mic_base =
        shadow_for rt.st ~cpu_base ~cells_needed:(start_cells + n)
      in
      let dst = { mic_base with ofs = mic_base.ofs + start_cells } in
      copy_cells rt.st ~src ~dst n;
      if cs.c_translated then translate_cells rt.st ~src ~dst n

let transfer_out rt cs =
  match cs.c_into with
  | Some (dname, dslot, cdofs) ->
      let src, n, esz = resolve rt cs in
      let dst_b = slot_binding rt ~clause:"into()" dname dslot in
      let dst = as_ptr (fast_load rt.st dst_b.cell) in
      let dofs = as_int (cdofs rt) in
      let dst = { dst with ofs = dst.ofs + (dofs * esz) } in
      copy_cells rt.st ~src ~dst n;
      if cs.c_translated then translate_cells rt.st ~src ~dst n
  | None ->
      let dst, n, _ = resolve rt cs in
      let b = slot_binding rt ~clause:"out()" cs.c_arr cs.c_slot in
      let cpu_base = as_ptr (fast_load rt.st b.cell) in
      let start_cells = dst.ofs - cpu_base.ofs in
      let mic_base =
        match Hashtbl.find_opt rt.st.shadows cpu_base.ofs with
        | Some m -> m
        | None -> error "out() for %s before any in()" cs.c_arr
      in
      copy_cells rt.st
        ~src:{ mic_base with ofs = mic_base.ofs + start_cells }
        ~dst n

(* out-only arrays need a device buffer even without an in() copy *)
let ensure_shadow rt cs =
  if Option.is_none cs.c_into then begin
    let addr, n, _ = resolve rt cs in
    let b = slot_binding rt ~clause:"out()" cs.c_arr cs.c_slot in
    let cpu_base = as_ptr (fast_load rt.st b.cell) in
    let start_cells = addr.ofs - cpu_base.ofs in
    ignore (shadow_for rt.st ~cpu_base ~cells_needed:(start_cells + n))
  end

(** {1 Expression compilation} *)

let rec cexpr ctx scope (e : expr) : ecode =
  match e with
  | Int_lit n ->
      let v = Vint n in
      fun _ -> v
  | Float_lit f ->
      let v = Vfloat f in
      fun _ -> v
  | Bool_lit b ->
      let v = Vbool b in
      fun _ -> v
  | Var v -> (
      match List.assoc_opt v scope with
      (* slot indices are < the activation's slot-array length by
         construction (same counter sizes both), so unsafe_get *)
      | Some (k, _) -> fun rt -> fast_load rt.st (Array.unsafe_get rt.slots k).cell
      | None -> fun _ -> error "unbound variable %s" v)
  | (Index _ | Field _ | Arrow _ | Deref _) as e -> (
      let lv, ty = clvalue ctx scope e in
      match ty with
      | Tarray (_, _) ->
          (* arrays decay to element pointer *)
          fun rt ->
            let a = lv rt in
            check_deref rt a;
            Vptr a
      | _ ->
          fun rt ->
            let a = lv rt in
            check_deref rt a;
            fast_load rt.st a)
  | Addr e ->
      let lv, _ = clvalue ctx scope e in
      fun rt -> Vptr (lv rt)
  | Unop (Neg, e) -> (
      let c = cexpr ctx scope e in
      fun rt ->
        match c rt with
        | Vint n -> Vint (-n)
        | Vfloat f -> Vfloat (-.f)
        | _ -> error "- on non-numeric value")
  | Unop (Not, e) ->
      let c = cexpr ctx scope e in
      fun rt -> vbool (not (as_bool (c rt)))
  | Binop (op, a, b) -> cbinop ctx scope op a b
  | Call (fname, args) -> ccall ctx scope fname args
  | Cast (t, e) -> (
      let c = cexpr ctx scope e in
      (* already-right-shaped values pass through unreallocated: values
         are immutable, so sharing is unobservable *)
      match t with
      | Tint -> (
          fun rt ->
            match c rt with
            | Vfloat f -> Vint (int_of_float f)
            | Vint _ as v -> v
            | Vbool b -> Vint (if b then 1 else 0)
            | _ -> error "unsupported cast at runtime")
      | Tfloat -> (
          fun rt ->
            match c rt with
            | Vint n -> Vfloat (float_of_int n)
            | Vfloat _ as v -> v
            | _ -> error "unsupported cast at runtime")
      | Tbool -> (
          fun rt ->
            match c rt with
            | Vbool _ as v -> v
            | v -> vbool (as_bool v))
      | Tptr _ -> (
          fun rt ->
            match c rt with
            | Vptr _ as p -> p
            | _ -> error "unsupported cast at runtime")
      | Tvoid | Tarray _ | Tstruct _ ->
          fun rt ->
            let _ = c rt in
            error "unsupported cast at runtime")

and cbinop ctx scope op a b : ecode =
  let ca = cexpr ctx scope a in
  let cb = cexpr ctx scope b in
  (* One fully-applied closure per operator — no higher-order [fi]/[ff]
     indirection left on the hot path.  The pointer-arithmetic element
     size (and any static failure along the way) is resolved once and
     raised only on the runtime Vptr path, as the reference does.
     Comparisons stay [compare]-based like the reference, so float
     comparisons use the same total order (NaN included) under both
     engines. *)
  match op with
  | Add ->
      let pinfo = ptr_elt_size ctx scope a in
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in arithmetic"
        | Vint x, Vint y -> Vint (x + y)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            Vfloat (as_float va +. as_float vb)
        | Vptr p, Vint n ->
            let k = esz_or_raise pinfo in
            Vptr { p with ofs = p.ofs + (n * k) }
        | _ -> error "arithmetic on non-numeric values")
  | Sub ->
      let pinfo = ptr_elt_size ctx scope a in
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in arithmetic"
        | Vint x, Vint y -> Vint (x - y)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            Vfloat (as_float va -. as_float vb)
        | Vptr p, Vint n ->
            let k = esz_or_raise pinfo in
            Vptr { p with ofs = p.ofs - (n * k) }
        | _ -> error "arithmetic on non-numeric values")
  | Mul ->
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in arithmetic"
        | Vint x, Vint y -> Vint (x * y)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            Vfloat (as_float va *. as_float vb)
        | Vptr _, Vint _ -> error "invalid pointer arithmetic"
        | _ -> error "arithmetic on non-numeric values")
  | Div -> (
      fun rt ->
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vint _, Vint 0 -> error "division by zero"
        | Vint x, Vint y -> Vint (x / y)
        | _ -> Vfloat (as_float va /. as_float vb))
  | Mod -> (
      fun rt ->
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vint _, Vint 0 -> error "modulo by zero"
        | Vint x, Vint y -> Vint (x mod y)
        | _ -> error "%% on non-int values")
  | Eq ->
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in comparison"
        | Vint x, Vint y -> vbool (compare x y = 0)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            vbool (compare (as_float va) (as_float vb) = 0)
        | Vptr x, Vptr y -> vbool (compare x y = 0)
        | Vbool x, Vbool y -> vbool (compare x y = 0)
        | _ -> error "comparison of incompatible values")
  | Ne ->
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in comparison"
        | Vint x, Vint y -> vbool (compare x y <> 0)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            vbool (compare (as_float va) (as_float vb) <> 0)
        | Vptr x, Vptr y -> vbool (compare x y <> 0)
        | Vbool x, Vbool y -> vbool (compare x y <> 0)
        | _ -> error "comparison of incompatible values")
  | Lt ->
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in comparison"
        | Vint x, Vint y -> vbool (compare x y < 0)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            vbool (compare (as_float va) (as_float vb) < 0)
        | Vptr x, Vptr y -> vbool (compare x y < 0)
        | Vbool x, Vbool y -> vbool (compare x y < 0)
        | _ -> error "comparison of incompatible values")
  | Le ->
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in comparison"
        | Vint x, Vint y -> vbool (compare x y <= 0)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            vbool (compare (as_float va) (as_float vb) <= 0)
        | Vptr x, Vptr y -> vbool (compare x y <= 0)
        | Vbool x, Vbool y -> vbool (compare x y <= 0)
        | _ -> error "comparison of incompatible values")
  | Gt ->
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in comparison"
        | Vint x, Vint y -> vbool (compare x y > 0)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            vbool (compare (as_float va) (as_float vb) > 0)
        | Vptr x, Vptr y -> vbool (compare x y > 0)
        | Vbool x, Vbool y -> vbool (compare x y > 0)
        | _ -> error "comparison of incompatible values")
  | Ge ->
      fun rt -> (
        let va = ca rt in
        let vb = cb rt in
        match (va, vb) with
        | Vundef, _ | _, Vundef -> error "use of undefined value in comparison"
        | Vint x, Vint y -> vbool (compare x y >= 0)
        | (Vfloat _ | Vint _), (Vfloat _ | Vint _) ->
            vbool (compare (as_float va) (as_float vb) >= 0)
        | Vptr x, Vptr y -> vbool (compare x y >= 0)
        | Vbool x, Vbool y -> vbool (compare x y >= 0)
        | _ -> error "comparison of incompatible values")
  | And ->
      fun rt ->
        let va = ca rt in
        let vb = cb rt in
        vbool (as_bool va && as_bool vb)
  | Or ->
      fun rt ->
        let va = ca rt in
        let vb = cb rt in
        vbool (as_bool va || as_bool vb)

and clvalue ctx scope (e : expr) : lcode * ty =
  match e with
  | Var v -> (
      match List.assoc_opt v scope with
      | Some (k, t) -> ((fun rt -> (Array.unsafe_get rt.slots k).cell), t)
      | None -> ((fun _ -> error "unbound variable %s" v), Tvoid))
  | Index (a, i) -> (
      let ci = cexpr ctx scope i in
      match sty ctx scope a with
      | Ok (Tarray (elt, _) | Tptr elt) ->
          let ca = cexpr ctx scope a in
          let code =
            (* hoist the element-size Result match out of the
               per-access closure; the Error case still raises after
               index/base evaluation, where the reference raises it *)
            match csizeof ctx elt with
            | Ok k ->
                fun rt ->
                  let n = as_int (ci rt) in
                  let base = as_ptr (ca rt) in
                  check_deref rt base;
                  { base with ofs = base.ofs + (n * k) }
            | Error m ->
                fun rt ->
                  let _ = as_int (ci rt) in
                  let base = as_ptr (ca rt) in
                  check_deref rt base;
                  error "%s" m
          in
          (code, elt)
      | Ok _ ->
          ( (fun rt ->
              let _ = as_int (ci rt) in
              error "indexing non-array"),
            Tvoid )
      | Error m ->
          ( (fun rt ->
              let _ = as_int (ci rt) in
              error "%s" m),
            Tvoid ))
  | Field (e, f) -> (
      let lv, ty = clvalue ctx scope e in
      match ty with
      | Tstruct s -> (
          match cfield_offset ctx s f with
          | Ok (fofs, fty) ->
              ( (fun rt ->
                  let a = lv rt in
                  { a with ofs = a.ofs + fofs }),
                fty )
          | Error m ->
              ( (fun rt ->
                  let _ = lv rt in
                  error "%s" m),
                Tvoid ))
      | _ ->
          ( (fun rt ->
              let _ = lv rt in
              error "field access on non-struct"),
            Tvoid ))
  | Arrow (e, f) -> (
      let ce = cexpr ctx scope e in
      let info =
        match sty ctx scope e with
        | Ok (Tptr (Tstruct s) | Tarray (Tstruct s, _)) ->
            cfield_offset ctx s f
        | Ok _ -> Error "-> on non-struct pointer"
        | Error m -> Error m
      in
      match info with
      | Ok (fofs, fty) ->
          ( (fun rt ->
              let p = as_ptr (ce rt) in
              check_deref rt p;
              { p with ofs = p.ofs + fofs }),
            fty )
      | Error m ->
          ( (fun rt ->
              let p = as_ptr (ce rt) in
              check_deref rt p;
              error "%s" m),
            Tvoid ))
  | Deref e -> (
      let ce = cexpr ctx scope e in
      match sty ctx scope e with
      | Ok (Tptr t | Tarray (t, _)) ->
          ( (fun rt ->
              let p = as_ptr (ce rt) in
              check_deref rt p;
              p),
            t )
      | Ok _ ->
          ( (fun rt ->
              let p = as_ptr (ce rt) in
              check_deref rt p;
              error "dereferencing non-pointer"),
            Tvoid )
      | Error m ->
          ( (fun rt ->
              let p = as_ptr (ce rt) in
              check_deref rt p;
              error "%s" m),
            Tvoid ))
  | _ -> ((fun _ -> error "not an lvalue"), Tvoid)

and ccall ctx scope fname args : ecode =
  let cargs = List.map (cexpr ctx scope) args in
  let nargs = List.length cargs in
  let evargs rt = List.map (fun c -> c rt) cargs in
  let arg1 () = List.nth cargs 0 in
  let arg2 () = List.nth cargs 1 in
  (* dispatch resolved here, once: the reference re-matches
     (name, args) on every call *)
  match (fname, nargs) with
  | "print_int", 1 ->
      let c = arg1 () in
      fun rt ->
        fast_burn rt.st;
        let v = c rt in
        Buffer.add_string rt.st.output (string_of_int (as_int v));
        Buffer.add_char rt.st.output '\n';
        Vundef
  | "print_float", 1 ->
      let c = arg1 () in
      fun rt ->
        fast_burn rt.st;
        let v = c rt in
        Buffer.add_string rt.st.output (format_float "%.6g" (as_float v));
        Buffer.add_char rt.st.output '\n';
        Vundef
  | "print_bool", 1 ->
      let c = arg1 () in
      fun rt ->
        fast_burn rt.st;
        let v = c rt in
        Buffer.add_string rt.st.output (if as_bool v then "true" else "false");
        Buffer.add_char rt.st.output '\n';
        Vundef
  | "malloc", 1 ->
      let c = arg1 () in
      fun rt ->
        fast_burn rt.st;
        Vptr (fast_alloc rt.st Cpu (as_int (c rt)))
  | "mic_malloc", 1 ->
      let c = arg1 () in
      fun rt ->
        fast_burn rt.st;
        Vptr (fast_alloc rt.st Mic (as_int (c rt)))
  | ("free" | "mic_free"), 1 ->
      let c = arg1 () in
      fun rt ->
        fast_burn rt.st;
        let _ = c rt in
        Vundef (* bump allocator: no-op *)
  | "abs", 1 ->
      let c = arg1 () in
      fun rt ->
        fast_burn rt.st;
        Vint (abs (as_int (c rt)))
  | "imin", 2 ->
      let c1 = arg1 () and c2 = arg2 () in
      fun rt ->
        fast_burn rt.st;
        let a = c1 rt in
        let b = c2 rt in
        Vint (min (as_int a) (as_int b))
  | "imax", 2 ->
      let c1 = arg1 () and c2 = arg2 () in
      fun rt ->
        fast_burn rt.st;
        let a = c1 rt in
        let b = c2 rt in
        Vint (max (as_int a) (as_int b))
  | _ -> (
      match (Builtins.eval_float1 fname, nargs) with
      | Some f, 1 ->
          let c = arg1 () in
          fun rt ->
            fast_burn rt.st;
            Vfloat (f (as_float (c rt)))
      | _ -> (
          match (Builtins.eval_float2 fname, nargs) with
          | Some f, 2 ->
              let c1 = arg1 () and c2 = arg2 () in
              fun rt ->
                fast_burn rt.st;
                let a = c1 rt in
                let b = c2 rt in
                Vfloat (f (as_float a) (as_float b))
          | _ -> (
              match List.assoc_opt fname ctx.cfuncs with
              | Some cf -> (
                  (* args evaluate left to right, as [List.map] does in
                     the reference; small arities skip the generic
                     mapper *)
                  match cargs with
                  | [] ->
                      fun rt ->
                        fast_burn rt.st;
                        cf.call rt.st rt.space []
                  | [ c1 ] ->
                      fun rt ->
                        fast_burn rt.st;
                        let a = c1 rt in
                        cf.call rt.st rt.space [ a ]
                  | [ c1; c2 ] ->
                      fun rt ->
                        fast_burn rt.st;
                        let a = c1 rt in
                        let b = c2 rt in
                        cf.call rt.st rt.space [ a; b ]
                  | [ c1; c2; c3 ] ->
                      fun rt ->
                        fast_burn rt.st;
                        let a = c1 rt in
                        let b = c2 rt in
                        let c = c3 rt in
                        cf.call rt.st rt.space [ a; b; c ]
                  | _ ->
                      fun rt ->
                        fast_burn rt.st;
                        let vs = evargs rt in
                        cf.call rt.st rt.space vs)
              | None ->
                  fun rt ->
                    fast_burn rt.st;
                    let _ = evargs rt in
                    error "unknown function %s" fname)))

(** {1 Statement compilation} *)

and compile_section ctx scope translate (s : section) : csec =
  {
    c_arr = s.arr;
    c_slot = Option.map fst (List.assoc_opt s.arr scope);
    c_esz =
      (match List.assoc_opt s.arr scope with
      | Some (_, (Tarray (t, _) | Tptr t)) -> csizeof ctx t
      | Some _ ->
          Error (Printf.sprintf "data clause on non-array %s" s.arr)
      | None ->
          (* unreachable: the unbound-clause error fires first *)
          Error (Printf.sprintf "data clause on non-array %s" s.arr));
    c_start = cexpr ctx scope s.start;
    c_len = cexpr ctx scope s.len;
    c_into =
      Option.map
        (fun (d, e) ->
          (d, Option.map fst (List.assoc_opt d scope), cexpr ctx scope e))
        s.into;
    c_translated = List.mem s.arr translate;
  }

(* The bind step of a declaration (no fuel: the reference burns in
   exec_stmt, then binds at block level without burning again). *)
and compile_bind ctx scope slot ty init : rt -> unit =
  match ty with
  | Tarray (elt, Some size_e) ->
      let csize = cexpr ctx scope size_e in
      let esz = csizeof ctx elt in
      fun rt ->
        let st = rt.st in
        let n = as_int (csize rt) in
        let k = esz_or_raise esz in
        let data = fast_alloc st rt.space (n * k) in
        let cell = fast_alloc st rt.space 1 in
        fast_store st cell (Vptr data);
        (* record the resolved size so the globals snapshot works *)
        rt.slots.(slot) <- { cell; vty = Tarray (elt, Some (Int_lit n)) }
  | Tstruct _ ->
      let ssz = csizeof ctx ty in
      fun rt ->
        let st = rt.st in
        let k = esz_or_raise ssz in
        let data = fast_alloc st rt.space k in
        let cell = fast_alloc st rt.space 1 in
        fast_store st cell (Vptr data);
        (* struct variables behave like pointers to their storage; the
           spare cell keeps the reference's heap layout *)
        rt.slots.(slot) <- { cell = data; vty = ty }
  | _ ->
      let cinit = Option.map (cexpr ctx scope) init in
      let co = ccoerce ty in
      fun rt ->
        let st = rt.st in
        let cell = fast_alloc st rt.space 1 in
        (match cinit with
        | Some c -> fast_store st cell (co (c rt))
        | None -> ());
        rt.slots.(slot) <- { cell; vty = ty }

and compile_block ctx scope nslots (block : block) : scode =
  let rec build scope acc = function
    | [] -> List.rev acc
    | Sdecl (ty, name, init) :: rest ->
        let slot = fresh_slot nslots in
        let bindc = compile_bind ctx scope slot ty init in
        let code rt =
          fast_burn rt.st;
          bindc rt;
          Normal
        in
        (* the binding scopes over the rest of this block only *)
        build ((name, (slot, ty)) :: scope) (code :: acc) rest
    | stmt :: rest ->
        build scope (compile_stmt ctx scope nslots stmt :: acc) rest
  in
  match build scope [] block with
  | [] -> fun _ -> Normal
  | [ code ] -> code
  | codes ->
      let codes = Array.of_list codes in
      let n = Array.length codes in
      fun rt ->
        let rec go i =
          if i = n then Normal
          else
            match (Array.unsafe_get codes i) rt with
            | Normal -> go (i + 1)
            | fl -> fl
        in
        go 0

and compile_stmt ctx scope nslots (stmt : stmt) : scode =
  match stmt with
  | Sexpr e ->
      let c = cexpr ctx scope e in
      fun rt ->
        fast_burn rt.st;
        ignore (c rt);
        Normal
  | Sassign (lv, rv) -> (
      let crv = cexpr ctx scope rv in
      let clv, ty = clvalue ctx scope lv in
      (* coercion dispatch inlined per target type: one fewer indirect
         call on the hottest statement form *)
      match ty with
      | Tint ->
          fun rt ->
            fast_burn rt.st;
            let v = crv rt in
            let addr = clv rt in
            check_deref rt addr;
            fast_store rt.st addr
              (match v with Vfloat f -> Vint (int_of_float f) | v -> v);
            Normal
      | Tfloat ->
          fun rt ->
            fast_burn rt.st;
            let v = crv rt in
            let addr = clv rt in
            check_deref rt addr;
            fast_store rt.st addr
              (match v with Vint n -> Vfloat (float_of_int n) | v -> v);
            Normal
      | _ ->
          fun rt ->
            fast_burn rt.st;
            let v = crv rt in
            let addr = clv rt in
            check_deref rt addr;
            fast_store rt.st addr v;
            Normal)
  | Sdecl _ ->
      (* a declaration binds only at block level (compile_block); bare
         under a pragma it is fuel-only, like the reference exec_stmt *)
      fun rt ->
        fast_burn rt.st;
        Normal
  | Sif (c, b1, b2) ->
      let cc = cexpr ctx scope c in
      let cb1 = compile_block ctx scope nslots b1 in
      let cb2 = compile_block ctx scope nslots b2 in
      fun rt ->
        fast_burn rt.st;
        if as_bool (cc rt) then cb1 rt else cb2 rt
  | Swhile (c, b) ->
      let cc = cexpr ctx scope c in
      let cb = compile_block ctx scope nslots b in
      fun rt ->
        fast_burn rt.st;
        let rec loop () =
          fast_burn rt.st;
          if as_bool (cc rt) then
            match cb rt with
            | Normal | Continue -> loop ()
            | Break -> Normal
            | Return _ as r -> r
          else Normal
        in
        loop ()
  | Sfor { index; lo; hi; step; body } -> (
      (* [lo] is evaluated before the index is in scope *)
      let clo = cexpr ctx scope lo in
      let slot = fresh_slot nslots in
      let scope' = (index, (slot, Tint)) :: scope in
      let cbody = compile_block ctx scope' nslots body in
      (* literal bound/step fold away their per-iteration closure
         calls; evaluating an [Int_lit] has no observable effect, so
         hoisting it is parity-safe *)
      let generic () =
        let chi = cexpr ctx scope' hi in
        let cstep = cexpr ctx scope' step in
        fun rt ->
          fast_burn rt.st;
          let st = rt.st in
          let cell = fast_alloc st rt.space 1 in
          let lo_v = clo rt in
          rt.slots.(slot) <- { cell; vty = Tint };
          fast_store st cell lo_v;
          let rec loop () =
            fast_burn st;
            let i = as_int (fast_load st cell) in
            let hi_v = as_int (chi rt) in
            if i < hi_v then
              match cbody rt with
              | Normal | Continue ->
                  let stepv = as_int (cstep rt) in
                  fast_store st cell (Vint (i + stepv));
                  loop ()
              | Break -> Normal
              | Return _ as r -> r
            else Normal
          in
          loop ()
      in
      match (hi, step) with
      | Int_lit hi_n, Int_lit step_n ->
          fun rt ->
            fast_burn rt.st;
            let st = rt.st in
            let cell = fast_alloc st rt.space 1 in
            let lo_v = clo rt in
            rt.slots.(slot) <- { cell; vty = Tint };
            fast_store st cell lo_v;
            let rec loop () =
              fast_burn st;
              let i = as_int (fast_load st cell) in
              if i < hi_n then
                match cbody rt with
                | Normal | Continue ->
                    fast_store st cell (Vint (i + step_n));
                    loop ()
                | Break -> Normal
                | Return _ as r -> r
              else Normal
            in
            loop ()
      | Var v, Int_lit step_n -> (
          (* [i < n] bounds: read the bound straight from its slot each
             iteration (same cell the generic closure reads).  One
             [assoc_opt] scan decides the specialization; an unbound
             bound variable takes the generic path, which raises the
             reference interpreter's error at the same point. *)
          match List.assoc_opt v scope' with
          | Some (hi_slot, _) ->
              fun rt ->
                fast_burn rt.st;
                let st = rt.st in
                let cell = fast_alloc st rt.space 1 in
                let lo_v = clo rt in
                rt.slots.(slot) <- { cell; vty = Tint };
                fast_store st cell lo_v;
                let rec loop () =
                  fast_burn st;
                  let i = as_int (fast_load st cell) in
                  let hi_v =
                    as_int
                      (fast_load st (Array.unsafe_get rt.slots hi_slot).cell)
                  in
                  if i < hi_v then
                    match cbody rt with
                    | Normal | Continue ->
                        fast_store st cell (Vint (i + step_n));
                        loop ()
                    | Break -> Normal
                    | Return _ as r -> r
                  else Normal
                in
                loop ()
          | None -> generic ())
      | _ -> generic ())
  | Sreturn None ->
      let r = Return Vundef in
      fun rt ->
        fast_burn rt.st;
        r
  | Sreturn (Some e) ->
      let c = cexpr ctx scope e in
      fun rt ->
        fast_burn rt.st;
        Return (c rt)
  | Sblock b ->
      let cb = compile_block ctx scope nslots b in
      fun rt ->
        fast_burn rt.st;
        cb rt
  | Sbreak ->
      fun rt ->
        fast_burn rt.st;
        Break
  | Scontinue ->
      fun rt ->
        fast_burn rt.st;
        Continue
  | Spragma (p, s) -> compile_pragma ctx scope nslots p s

and compile_pragma ctx scope nslots pragma stmt : scode =
  match pragma with
  | Omp_parallel_for | Omp_simd ->
      (* functional semantics of a parallel loop = sequential execution;
         the inner statement burns its own fuel, after this one's *)
      let inner = compile_stmt ctx scope nslots stmt in
      fun rt ->
        fast_burn rt.st;
        inner rt
  | Offload_wait e ->
      let c = cexpr ctx scope e in
      fun rt ->
        fast_burn rt.st;
        let st = rt.st in
        st.events <- Ev_wait (as_int (c rt)) :: st.events;
        Normal
  | Offload_transfer spec ->
      let c_ins =
        List.map
          (compile_section ctx scope spec.translate)
          (spec.ins @ spec.inouts)
      in
      let c_outs =
        List.map (compile_section ctx scope spec.translate) spec.outs
      in
      let c_signal = Option.map (cexpr ctx scope) spec.signal in
      fun rt ->
        fast_burn rt.st;
        let st = rt.st in
        let h0 = st.stats.cells_h2d and d0 = st.stats.cells_d2h in
        List.iter (transfer_in rt) c_ins;
        List.iter (transfer_out rt) c_outs;
        let h2d_cells = st.stats.cells_h2d - h0
        and d2h_cells = st.stats.cells_d2h - d0 in
        let signal = Option.map (fun c -> as_int (c rt)) c_signal in
        if h2d_cells > 0 || d2h_cells > 0 || Option.is_some signal then
          st.events <-
            Ev_transfer { h2d_cells; d2h_cells; signal } :: st.events;
        Normal
  | Offload spec -> compile_offload ctx scope nslots spec stmt

and compile_offload ctx scope nslots spec stmt : scode =
  let sec = compile_section ctx scope spec.translate in
  let c_in = List.map sec (spec.ins @ spec.inouts) in
  let c_outs = List.map sec spec.outs in
  let c_rebind = List.map sec (spec.ins @ spec.inouts @ spec.outs) in
  let c_nocopy =
    List.map
      (fun name -> (name, Option.map fst (List.assoc_opt name scope)))
      spec.nocopy
  in
  let c_phase4 = List.map sec (spec.outs @ spec.inouts) in
  let c_wait = Option.map (cexpr ctx scope) spec.wait in
  let cbody = compile_stmt ctx scope nslots stmt in
  fun rt ->
    fast_burn rt.st;
    if rt.space = Mic then error "nested offload";
    let st = rt.st in
    st.stats.offloads <- st.stats.offloads + 1;
    (* 1. copy in/inout sections host -> device *)
    let h0 = st.stats.cells_h2d in
    List.iter (transfer_in rt) c_in;
    let in_cells = st.stats.cells_h2d - h0 in
    if in_cells > 0 then
      st.events <-
        Ev_transfer { h2d_cells = in_cells; d2h_cells = 0; signal = None }
        :: st.events;
    (* out-only arrays need a device buffer even without an in() copy *)
    List.iter (ensure_shadow rt) c_outs;
    (* 2. rebind clause arrays (without into) to their MIC shadows *)
    let rebinds =
      List.fold_left
        (fun acc cs ->
          if Option.is_some cs.c_into || List.mem_assoc cs.c_arr acc then
            acc
          else
            let b =
              slot_binding rt ~clause:"offload data" cs.c_arr cs.c_slot
            in
            let cpu_base = as_ptr (fast_load st b.cell) in
            match Hashtbl.find_opt st.shadows cpu_base.ofs with
            | None -> acc (* out-only array: shadow created above *)
            | Some mic_base ->
                let cell = fast_alloc st Cpu 1 in
                fast_store st cell (Vptr mic_base);
                (cs.c_arr, (Option.get cs.c_slot, { cell; vty = b.vty }))
                :: acc)
        [] c_rebind
    in
    (* nocopy(): rebind to an existing shadow without any copy; the
       [Ev_resident] cell count mirrors the reference exactly (runtime
       binding vtys carry resolved array sizes in both engines) *)
    let nocopy_rebinds, resident_cells =
      List.fold_left
        (fun ((acc, cells) as unchanged) (name, slot) ->
          if List.mem_assoc name acc then unchanged
          else
            let b = slot_binding rt ~clause:"nocopy()" name slot in
            let cpu_base = as_ptr (fast_load st b.cell) in
            match Hashtbl.find_opt st.shadows cpu_base.ofs with
            | None -> error "nocopy(%s): no resident device copy" name
            | Some mic_base ->
                let n =
                  match b.vty with
                  | Tarray (elt, Some (Int_lit k)) -> k * sizeof st elt
                  | _ -> 0
                in
                let acc =
                  if List.mem_assoc name rebinds then acc
                  else begin
                    let cell = fast_alloc st Cpu 1 in
                    fast_store st cell (Vptr mic_base);
                    (name, (Option.get slot, { cell; vty = b.vty })) :: acc
                  end
                in
                (acc, cells + n))
        ([], 0) c_nocopy
    in
    if c_nocopy <> [] then
      st.events <- Ev_resident { cells = resident_cells } :: st.events;
    let rebinds = rebinds @ nocopy_rebinds in
    let saved =
      List.map
        (fun (_, (k, nb)) ->
          let old = rt.slots.(k) in
          rt.slots.(k) <- nb;
          (k, old))
        rebinds
    in
    (* 3. run the body in MIC mode *)
    let fuel0 = st.fuel in
    let fl = cbody { rt with space = Mic } in
    (* the rebinds scope over the body only: the out/inout copies below
       resolve sections against the host bindings again *)
    List.iter (fun (k, old) -> rt.slots.(k) <- old) saved;
    let work = fuel0 - st.fuel in
    let wait = Option.map (fun c -> as_int (c rt)) c_wait in
    st.events <- Ev_kernel { work; wait } :: st.events;
    (* 4. copy out/inout sections device -> host *)
    let d0 = st.stats.cells_d2h in
    List.iter (transfer_out rt) c_phase4;
    let out_cells = st.stats.cells_d2h - d0 in
    if out_cells > 0 then
      st.events <-
        Ev_transfer { h2d_cells = 0; d2h_cells = out_cells; signal = None }
        :: st.events;
    match fl with
    | Normal -> Normal
    | Return _ | Break | Continue -> error "control flow escaped offload"

(** {1 Functions and whole programs} *)

let compile_func ctx (f : func) : state -> space -> value list -> value =
  let nslots = ref 0 in
  let pspecs =
    List.map
      (fun p ->
        let slot = fresh_slot nslots in
        (* array params decay to pointers *)
        let vty = match p.pty with Tarray (t, _) -> Tptr t | t -> t in
        (p.pname, slot, vty))
      f.params
  in
  (* declaration order: List.assoc picks the first of two same-named
     parameters, as the reference's reverse-order Hashtbl binds do *)
  let scope = List.map (fun (n, s, t) -> (n, (s, t))) pspecs in
  let body = compile_block ctx scope nslots f.body in
  let binder = List.map (fun (_, s, t) -> (s, t)) pspecs in
  let total = !nslots in
  fun st space vs ->
    let slots = Array.make total dummy_binding in
    (* List.map2 so an arity mismatch raises the same
       Invalid_argument the reference's parameter zip does *)
    ignore
      (List.map2
         (fun (slot, vty) v ->
           let cell = fast_alloc st space 1 in
           fast_store st cell v;
           slots.(slot) <- { cell; vty })
         binder vs);
    let rt = { st; space; slots } in
    match body rt with
    | Return v -> v
    | Normal -> Vundef
    | Break | Continue -> error "break/continue outside loop"

type compiled = {
  source : program;
  exec : fuel:int -> (outcome, string) result;
}

let uncompiled _ _ _ = error "function called before compilation finished"

let compile (prog : program) : compiled =
  let cstructs =
    List.filter_map
      (function Gstruct s -> Some (s.sname, s) | _ -> None)
      prog
  in
  let cfuncs =
    List.filter_map
      (function
        | Gfunc f -> Some (f.fname, { src = f; call = uncompiled })
        | _ -> None)
      prog
  in
  let ctx = { cstructs; cfuncs } in
  (* two-phase: compile every body against the table of stubs, then the
     patched closures give recursion and forward calls direct targets *)
  List.iter (fun (_, cf) -> cf.call <- compile_func ctx cf.src) cfuncs;
  (* globals: initializers see no other bindings; each declaration
     (duplicates included) allocates storage in declaration order *)
  let g_nslots = ref 0 in
  let gdecls =
    List.filter_map
      (function
        | Gvar (ty, name, init) ->
            Some (ty, name, init, fresh_slot g_nslots)
        | _ -> None)
      prog
  in
  let gcodes =
    List.map
      (fun (ty, name, init, slot) ->
        (name, slot, compile_bind ctx [] slot ty init))
      gdecls
  in
  (* declaration order, so the first of two same-named globals wins *)
  let gscope =
    List.map (fun (ty, name, _, slot) -> (name, (slot, ty))) gdecls
  in
  (* main's entry activation sees the globals (and only main does);
     its locals extend the same slot array.  Recursive calls to main
     go through the separately compiled globals-free version above. *)
  let main_entry =
    match List.assoc_opt "main" cfuncs with
    | None -> None
    | Some cf -> Some (compile_block ctx gscope g_nslots cf.src.body)
  in
  let total_slots = !g_nslots in
  let exec ~fuel =
    let st = init_state prog in
    st.fuel <- fuel;
    try
      let slots = Array.make (max total_slots 1) dummy_binding in
      let rt = { st; space = Cpu; slots } in
      List.iter (fun (_, _, code) -> code rt) gcodes;
      match main_entry with
      | None -> Error "no main function"
      | Some body ->
          let fl = body rt in
          let ret = match fl with Return v -> v | _ -> Vundef in
          Ok
            {
              ret;
              output = Buffer.contents st.output;
              stats = st.stats;
              events = List.rev st.events;
              globals =
                List.map
                  (fun (name, slot, _) ->
                    (name, snapshot_binding st slots.(slot)))
                  gcodes;
              work = fuel - st.fuel;
            }
    with
    | Runtime_error msg -> Error msg
    | Out_of_fuel -> Error "out of fuel"
  in
  { source = prog; exec }

let source c = c.source
let exec ?(fuel = 10_000_000) c = c.exec ~fuel

(** {1 Compiled-program cache}

    Keyed by structural equality of the AST, domain-local (like
    {!Transforms.Util.fresh}): each domain of the PR-4 pool gets its
    own table, so parallel sweeps share compiled programs without
    locks, and [check]'s N-variant runs compile each program once. *)

module Cache = Hashtbl.Make (struct
  type t = program

  (* the AST is immutable, so physical equality short-circuits the
     structural walk for the common re-run-the-same-value case *)
  let equal a b = a == b || equal_program a b
  let hash p = Hashtbl.hash_param 200 800 p
end)

let cache_limit = 512

let cache : compiled Cache.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Cache.create 64)

let compiles : int ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref 0)

(* One-entry memo in front of the table: re-running the physically
   same AST (bench loops, check's repeated runs) skips even the hash
   walk over the program. *)
let last_hit : (program * compiled) option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let cached_compile prog =
  let last = Domain.DLS.get last_hit in
  match !last with
  | Some (p, c) when p == prog -> c
  | _ ->
      let tbl = Domain.DLS.get cache in
      let c =
        match Cache.find_opt tbl prog with
        | Some c -> c
        | None ->
            let c = compile prog in
            incr (Domain.DLS.get compiles);
            if Cache.length tbl >= cache_limit then Cache.reset tbl;
            Cache.add tbl prog c;
            c
      in
      last := Some (prog, c);
      c

let compile_count () = !(Domain.DLS.get compiles)

let run_compiled ?(fuel = 10_000_000) prog =
  (cached_compile prog).exec ~fuel

(** Engine-dispatched entry point: the one call sites thread
    [?engine] through. *)
let run ?(engine = Compiled) ?fuel prog =
  match engine with
  | Reference -> Interp.run ?fuel prog
  | Compiled -> run_compiled ?fuel prog

(** {1 Shared source-keyed cache}

    The per-domain table above suits sweeps where every domain replays
    the same ASTs, but a request daemon sees {e sources} (strings off
    the wire) and wants parse-once/compile-once across {e all}
    requests, whichever domain executes them.  This cache is keyed by
    the raw source, guarded by a mutex so it can be shared, and caches
    front-end {e failures} too: a repeatedly-submitted malformed source
    costs one parse, not one per request.

    A [compiled] value is safe to share across domains: [exec] builds
    a fresh interpreter state per call, and compilation fully publishes
    the closure graph before the value escapes the lock. *)

module Source_cache = struct
  type error = Parse_error of string | Type_error of string

  type entry = (program * compiled, error) result

  type t = {
    lock : Mutex.t;
    table : (string, entry) Hashtbl.t;
    limit : int;
    mutable hits : int;
    mutable misses : int;
  }

  let create ?(limit = 512) () =
    {
      lock = Mutex.create ();
      table = Hashtbl.create 64;
      limit;
      hits = 0;
      misses = 0;
    }

  let build src : entry =
    match Parser.program_of_string src with
    | Error e -> Error (Parse_error e)
    | Ok prog -> (
        match Typecheck.check_program prog with
        | Error e -> Error (Type_error e)
        | Ok _ -> Ok (prog, compile prog))

  let get t src =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        match Hashtbl.find_opt t.table src with
        | Some e ->
            t.hits <- t.hits + 1;
            e
        | None ->
            t.misses <- t.misses + 1;
            let e = build src in
            if Hashtbl.length t.table >= t.limit then Hashtbl.reset t.table;
            Hashtbl.add t.table src e;
            e)

  let hits t = t.hits
  let misses t = t.misses
end
