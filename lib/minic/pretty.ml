(** Pretty-printer emitting valid MiniC source.  [parse (print p) = p]
    is property-tested; this is what makes the transformations genuinely
    source-to-source. *)

open Ast

let binop_str = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="
  | And -> "&&"
  | Or -> "||"

let prec = function
  | Or -> 1
  | And -> 2
  | Eq | Ne | Lt | Le | Gt | Ge -> 3
  | Add | Sub -> 4
  | Mul | Div | Mod -> 5

let rec ty_str = function
  | Tvoid -> "void"
  | Tint -> "int"
  | Tfloat -> "float"
  | Tbool -> "bool"
  | Tptr t -> ty_str t ^ "*"
  | Tarray (t, _) -> ty_str t ^ "[]"
  | Tstruct s -> "struct " ^ s

(* Print a float so it re-lexes as a float literal, using the shortest
   representation that round-trips to the same value. *)
let float_str f =
  if Float.is_integer f && Float.abs f < 1e16 then Printf.sprintf "%.1f" f
  else
    let exact prec =
      let s = Printf.sprintf "%.*g" prec f in
      if float_of_string s = f then Some s else None
    in
    let s =
      match (exact 9, exact 12, exact 15) with
      | Some s, _, _ | None, Some s, _ | None, None, Some s -> s
      | None, None, None -> Printf.sprintf "%.17g" f
    in
    (* %g may print integral values without '.', which would re-lex as
       an int literal *)
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'n') s then s
    else s ^ ".0"

let rec expr_str ?(ctx = 0) e =
  let paren p s = if p < ctx then "(" ^ s ^ ")" else s in
  match e with
  | Int_lit n -> if n < 0 then "(" ^ string_of_int n ^ ")" else string_of_int n
  | Float_lit f -> float_str f
  | Bool_lit b -> if b then "true" else "false"
  | Var v -> v
  | Index (a, i) -> postfix_str a ^ "[" ^ expr_str i ^ "]"
  | Field (e, f) -> postfix_str e ^ "." ^ f
  | Arrow (e, f) -> postfix_str e ^ "->" ^ f
  | Deref e -> paren 6 ("*" ^ expr_str ~ctx:6 e)
  | Addr e -> paren 6 ("&" ^ expr_str ~ctx:6 e)
  | Unop (Neg, e) ->
      (* avoid "--" (it would lex as decrement), and parenthesize
         literal operands so [-(5)] does not re-parse as the folded
         literal [Int_lit (-5)] *)
      let s = expr_str ~ctx:6 e in
      let starts_like_literal =
        String.length s > 0
        && (s.[0] = '-' || s.[0] = '.' || (s.[0] >= '0' && s.[0] <= '9'))
      in
      let s = if starts_like_literal then "(" ^ s ^ ")" else s in
      paren 6 ("-" ^ s)
  | Unop (Not, e) -> paren 6 ("!" ^ expr_str ~ctx:6 e)
  | Binop (op, a, b) ->
      let p = prec op in
      (* left-associative: the right operand needs strictly higher prec *)
      paren p (expr_str ~ctx:p a ^ " " ^ binop_str op ^ " "
               ^ expr_str ~ctx:(p + 1) b)
  | Call (f, args) ->
      f ^ "(" ^ String.concat ", " (List.map expr_str args) ^ ")"
  | Cast (t, e) -> paren 6 ("(" ^ ty_str t ^ ")" ^ expr_str ~ctx:6 e)

(* operand of [], ., -> must be a postfix/primary expression *)
and postfix_str e =
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ | Index _ | Field _
  | Arrow _ | Call _ ->
      expr_str e
  | _ -> "(" ^ expr_str e ^ ")"

let section_str s =
  let base =
    Printf.sprintf "%s[%s:%s]" s.arr (expr_str s.start) (expr_str s.len)
  in
  match s.into with
  | None -> base
  | Some (dst, ofs) ->
      Printf.sprintf "%s : into(%s[%s:%s])" base dst (expr_str ofs)
        (expr_str s.len)

let clause name sections =
  match sections with
  | [] -> ""
  | _ ->
      Printf.sprintf " %s(%s)" name
        (String.concat ", " (List.map section_str sections))

let spec_str spec =
  Printf.sprintf "target(mic:%d)%s%s%s%s%s%s%s" spec.target
    (clause "in" spec.ins)
    (clause "out" spec.outs)
    (clause "inout" spec.inouts)
    (match spec.nocopy with
    | [] -> ""
    | ns -> " nocopy(" ^ String.concat ", " ns ^ ")")
    (match spec.translate with
    | [] -> ""
    | ns -> " translate(" ^ String.concat ", " ns ^ ")")
    (match spec.signal with
    | None -> ""
    | Some e -> " signal(" ^ expr_str e ^ ")")
    (match spec.wait with
    | None -> ""
    | Some e -> " wait(" ^ expr_str e ^ ")")

let pragma_str = function
  | Omp_parallel_for -> "#pragma omp parallel for"
  | Omp_simd -> "#pragma omp simd"
  | Offload spec -> "#pragma offload " ^ spec_str spec
  | Offload_transfer spec -> "#pragma offload_transfer " ^ spec_str spec
  | Offload_wait e ->
      Printf.sprintf "#pragma offload_wait target(mic:0) wait(%s)"
        (expr_str e)

let decl_str t name =
  match t with
  | Tarray (elt, Some n) ->
      Printf.sprintf "%s %s[%s]" (ty_str elt) name (expr_str n)
  | Tarray (elt, None) -> Printf.sprintf "%s %s[]" (ty_str elt) name
  | _ -> Printf.sprintf "%s %s" (ty_str t) name

let rec pp_stmt buf indent stmt =
  let pad = String.make indent ' ' in
  let line s = Buffer.add_string buf (pad ^ s ^ "\n") in
  match stmt with
  | Sexpr e -> line (expr_str e ^ ";")
  | Sassign (lv, rv) -> line (expr_str lv ^ " = " ^ expr_str rv ^ ";")
  | Sdecl (t, name, init) ->
      let rhs = match init with
        | None -> ""
        | Some e -> " = " ^ expr_str e
      in
      line (decl_str t name ^ rhs ^ ";")
  | Sif (c, b1, []) ->
      line ("if (" ^ expr_str c ^ ") {");
      pp_block buf (indent + 2) b1;
      line "}"
  | Sif (c, b1, b2) ->
      line ("if (" ^ expr_str c ^ ") {");
      pp_block buf (indent + 2) b1;
      line "} else {";
      pp_block buf (indent + 2) b2;
      line "}"
  | Swhile (c, b) ->
      line ("while (" ^ expr_str c ^ ") {");
      pp_block buf (indent + 2) b;
      line "}"
  | Sfor { index; lo; hi; step; body } ->
      let inc =
        match step with
        | Int_lit 1 -> index ^ "++"
        | e -> index ^ " += " ^ expr_str e
      in
      line
        (Printf.sprintf "for (%s = %s; %s < %s; %s) {" index (expr_str lo)
           index (expr_str hi) inc);
      pp_block buf (indent + 2) body;
      line "}"
  | Sreturn None -> line "return;"
  | Sreturn (Some e) -> line ("return " ^ expr_str e ^ ";")
  | Sblock b ->
      line "{";
      pp_block buf (indent + 2) b;
      line "}"
  | Spragma (((Offload_wait _ | Offload_transfer _) as p), Sblock []) ->
      line (pragma_str p)
  | Spragma (p, s) ->
      line (pragma_str p);
      pp_stmt buf indent s
  | Sbreak -> line "break;"
  | Scontinue -> line "continue;"

and pp_block buf indent block = List.iter (pp_stmt buf indent) block

let pp_global buf = function
  | Gstruct { sname; sfields } ->
      Buffer.add_string buf (Printf.sprintf "struct %s {\n" sname);
      List.iter
        (fun (t, f) ->
          Buffer.add_string buf ("  " ^ decl_str t f ^ ";\n"))
        sfields;
      Buffer.add_string buf "};\n\n"
  | Gvar (t, name, init) ->
      let rhs = match init with
        | None -> ""
        | Some e -> " = " ^ expr_str e
      in
      Buffer.add_string buf (decl_str t name ^ rhs ^ ";\n\n")
  | Gfunc { ret; fname; params; body } ->
      let ps =
        match params with
        | [] -> "void"
        | _ ->
            String.concat ", "
              (List.map (fun p -> decl_str p.pty p.pname) params)
      in
      Buffer.add_string buf
        (Printf.sprintf "%s %s(%s) {\n" (ty_str ret) fname ps);
      pp_block buf 2 body;
      Buffer.add_string buf "}\n\n"

(** Render a whole program back to MiniC source text. *)
let program_to_string prog =
  let buf = Buffer.create 1024 in
  List.iter (pp_global buf) prog;
  Buffer.contents buf

let stmt_to_string stmt =
  let buf = Buffer.create 128 in
  pp_stmt buf 0 stmt;
  Buffer.contents buf

let expr_to_string = expr_str ~ctx:0
