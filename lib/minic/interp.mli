(** Reference interpreter for MiniC with {e two} address spaces.

    The host (CPU) and the coprocessor (MIC) have separate heaps, as on
    a real PCIe-attached Xeon Phi.  Offload bodies execute in MIC mode:
    dereferencing a CPU pointer there is a runtime error, so a
    transformation that forgets to transfer data produces a hard
    failure rather than silently reading host memory.  This is what the
    semantics-preservation property tests run against.

    Offload semantics follow LEO:
    - [in]/[inout] sections are copied to device shadow buffers before
      the body runs; clause arrays are rebound to their shadows inside
      the body; [out]/[inout] sections are copied back afterwards
      (whole sections — a partially-written [out] array copies
      undefined device cells back, as on real hardware);
    - scalars are readable from the device without clauses
      (firstprivate); writing host memory from the device is an error;
    - [offload_transfer] moves sections explicitly, with [into()]
      redirecting to device buffers obtained from [mic_malloc];
    - [signal]/[wait] clauses are functional no-ops (they only matter
      to the timing model). *)

type space = Cpu | Mic

type addr = { space : space; ofs : int }

type value =
  | Vint of int
  | Vfloat of float
  | Vbool of bool
  | Vptr of addr
  | Vundef

(** Counters observable by tests: they let unit tests assert that e.g.
    streaming moves the same number of cells in more, smaller
    transfers, or that offload merging reduces [offloads]. *)
type stats = {
  mutable offloads : int;  (** kernel launches (offload regions entered) *)
  mutable transfers : int;  (** discrete transfer operations *)
  mutable cells_h2d : int;
  mutable cells_d2h : int;
  mutable mic_alloc_cells : int;
}

exception Runtime_error of string
exception Out_of_fuel

(** Offload-level event trace, in program order.  Asynchronous
    transfers carry their [signal] tag and kernels their [wait] tag, so
    the pipelining written into the source (Figure 5(b)) is recoverable
    by {!Runtime.Replay}. *)
type event =
  | Ev_transfer of { h2d_cells : int; d2h_cells : int; signal : int option }
  | Ev_wait of int
  | Ev_resident of { cells : int }
      (** device cells the next kernel depends on that this offload did
          {e not} transfer ([nocopy] clauses): replay re-charges them
          when a device reset wipes the shadows *)
  | Ev_kernel of { work : int; wait : int option }
      (** [work] = statements executed inside the offload body *)

type outcome = {
  ret : value;
  output : string;
  stats : stats;
  events : event list;
  globals : (string * value list) list;
      (** final contents of every global, in declaration order:
          array/struct storage flattened cell by cell, scalars as one
          cell — the "final heap state" differential testing compares *)
  work : int;
      (** fuel consumed over the whole run: statements + loop
          iterations + calls executed *)
}

(** Which evaluator executes a program: this tree-walking reference
    interpreter, or the closure-compiling fast evaluator
    ({!Compile_eval}).  The two are observationally identical — same
    output, return value, globals snapshot, stats, event trace, and
    fuel accounting — which the engine-equivalence test suite and the
    [@perf] alias enforce. *)
type engine = Reference | Compiled

val engine_name : engine -> string
val engine_of_string : string -> engine option

val run : ?fuel:int -> Ast.program -> (outcome, string) result
(** Run [main()] under the reference interpreter.  [fuel] bounds the
    number of statements executed (default 10 million); exhaustion
    reports ["out of fuel"]. *)

val run_output : ?fuel:int -> Ast.program -> string
(** Printed output of a run; raises [Invalid_argument] on any error. *)

(** {1 Runtime core, shared with {!Compile_eval}}

    The compiled evaluator reuses this module's heaps, allocator,
    transfer machinery, and value coercions so that both engines
    produce bit-identical heap layouts, stats, and error messages.
    Nothing below is meant for ordinary callers. *)

val space_name : space -> string

type heap = { mutable cells : value array; mutable next : int }
(** Concrete so {!Compile_eval} can inline cell access into its
    closures; [next <= Array.length cells] is the allocator invariant
    that makes a range check against [next] sufficient. *)

type state = {
  cpu : heap;
  mic : heap;
  structs : (string, Ast.struct_def) Hashtbl.t;
      (** first definition of a name wins *)
  funcs : (string, Ast.func) Hashtbl.t;  (** first definition wins *)
  output : Buffer.t;
  mutable fuel : int;
  stats : stats;
  mutable events : event list;  (** reversed *)
  shadows : (int, addr) Hashtbl.t;
      (** CPU base offset -> MIC shadow buffer, reused across offloads *)
}

type binding = { cell : addr; vty : Ast.ty }
(** A variable's storage: cell address plus static type. *)

val error : ('a, unit, string, 'b) format4 -> 'a
(** Raise {!Runtime_error} with a formatted message. *)

external format_float : string -> float -> string = "caml_format_float"
(** The runtime primitive behind [Printf]'s [%g] — byte-identical
    output, without the format-interpreter overhead per print. *)

val init_state : Ast.program -> state
val alloc : state -> space -> int -> addr
val load : state -> addr -> value
val store : state -> addr -> value -> unit
val as_int : value -> int
val as_float : value -> float
val as_bool : value -> bool
val as_ptr : value -> addr
val coerce : Ast.ty -> value -> value
val burn : state -> unit
(** Consume one unit of fuel; raises {!Out_of_fuel} at zero. *)

val sizeof : state -> Ast.ty -> int
val copy_cells : state -> src:addr -> dst:addr -> int -> unit
val shadow_for : state -> cpu_base:addr -> cells_needed:int -> addr
val translate_cells : state -> src:addr -> dst:addr -> int -> unit
val snapshot_binding : state -> binding -> value list
