(** Recursive-descent parser for MiniC, including the OpenMP and
    LEO-style offload pragmas the COMP optimizations consume. *)

open Ast

exception Parse_error of string * Srcloc.t

type state = { toks : Lexer.located array; mutable cur : int }

let peek st = st.toks.(st.cur).tok
let peek_loc st = st.toks.(st.cur).loc

let peekn st n =
  let i = st.cur + n in
  if i < Array.length st.toks then st.toks.(i).tok else Lexer.Teof

let advance st = if st.cur < Array.length st.toks - 1 then st.cur <- st.cur + 1

let error st msg =
  raise (Parse_error (msg ^ " (got " ^ Lexer.show_token (peek st) ^ ")", peek_loc st))

let expect st tok msg =
  if Lexer.equal_token (peek st) tok then advance st else error st msg

let expect_ident st msg =
  match peek st with
  | Lexer.Tident name ->
      advance st;
      name
  | _ -> error st msg

(** {1 Types} *)

let is_type_start st =
  match peek st with
  | Lexer.Tident ("int" | "float" | "bool" | "void" | "struct") -> true
  | _ -> false

let rec parse_base_ty st =
  match peek st with
  | Lexer.Tident "int" -> advance st; Tint
  | Lexer.Tident "float" -> advance st; Tfloat
  | Lexer.Tident "bool" -> advance st; Tbool
  | Lexer.Tident "void" -> advance st; Tvoid
  | Lexer.Tident "struct" ->
      advance st;
      let name = expect_ident st "struct name" in
      Tstruct name
  | _ -> error st "type expected"

and parse_ty st =
  let base = parse_base_ty st in
  let rec stars t =
    if Lexer.equal_token (peek st) Lexer.Tstar then begin
      advance st;
      stars (Tptr t)
    end
    else t
  in
  stars base

(** {1 Expressions}

    Precedence climbing: [||] < [&&] < comparisons < [+ -] < [* / %]
    < unary < postfix. *)

let rec parse_expr st = parse_or st

and parse_or st =
  let lhs = parse_and st in
  let rec loop lhs =
    if Lexer.equal_token (peek st) Lexer.Toror then begin
      advance st;
      loop (Binop (Or, lhs, parse_and st))
    end
    else lhs
  in
  loop lhs

and parse_and st =
  let lhs = parse_cmp st in
  let rec loop lhs =
    if Lexer.equal_token (peek st) Lexer.Tandand then begin
      advance st;
      loop (Binop (And, lhs, parse_cmp st))
    end
    else lhs
  in
  loop lhs

and parse_cmp st =
  (* left-associative, as in C: a < b == c parses as (a < b) == c *)
  let lhs = parse_add st in
  let rec loop lhs =
    let op =
      match peek st with
      | Lexer.Teq -> Some Eq
      | Lexer.Tneq -> Some Ne
      | Lexer.Tlt -> Some Lt
      | Lexer.Tle -> Some Le
      | Lexer.Tgt -> Some Gt
      | Lexer.Tge -> Some Ge
      | _ -> None
    in
    match op with
    | Some op ->
        advance st;
        loop (Binop (op, lhs, parse_add st))
    | None -> lhs
  in
  loop lhs

and parse_add st =
  let lhs = parse_mul st in
  let rec loop lhs =
    match peek st with
    | Lexer.Tplus ->
        advance st;
        loop (Binop (Add, lhs, parse_mul st))
    | Lexer.Tminus ->
        advance st;
        loop (Binop (Sub, lhs, parse_mul st))
    | _ -> lhs
  in
  loop lhs

and parse_mul st =
  let lhs = parse_unary st in
  let rec loop lhs =
    match peek st with
    | Lexer.Tstar ->
        advance st;
        loop (Binop (Mul, lhs, parse_unary st))
    | Lexer.Tslash ->
        advance st;
        loop (Binop (Div, lhs, parse_unary st))
    | Lexer.Tpercent ->
        advance st;
        loop (Binop (Mod, lhs, parse_unary st))
    | _ -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | Lexer.Tminus -> (
      advance st;
      (* fold only a directly adjacent literal token into a negative
         literal: [-5] is [Int_lit (-5)], but [-(5)] stays a [Unop]
         (the printer emits the parens to keep that distinction) *)
      match peek st with
      | Lexer.Tint_lit n ->
          advance st;
          Int_lit (-n)
      | Lexer.Tfloat_lit f ->
          advance st;
          Float_lit (-.f)
      | _ -> Unop (Neg, parse_unary st))
  | Lexer.Tbang ->
      advance st;
      Unop (Not, parse_unary st)
  | Lexer.Tstar ->
      advance st;
      Deref (parse_unary st)
  | Lexer.Tamp ->
      advance st;
      Addr (parse_unary st)
  | Lexer.Tlparen when is_cast st -> (
      advance st;
      let t = parse_ty st in
      expect st Lexer.Trparen "')' after cast type";
      Cast (t, parse_unary st))
  | _ -> parse_postfix st

(* A '(' starts a cast iff it is followed by a type keyword. *)
and is_cast st =
  match peekn st 1 with
  | Lexer.Tident ("int" | "float" | "bool" | "void" | "struct") -> true
  | _ -> false

and parse_postfix st =
  let e = parse_primary st in
  let rec loop e =
    match peek st with
    | Lexer.Tlbracket ->
        advance st;
        let i = parse_expr st in
        expect st Lexer.Trbracket "']'";
        loop (Index (e, i))
    | Lexer.Tdot ->
        advance st;
        let f = expect_ident st "field name" in
        loop (Field (e, f))
    | Lexer.Tarrow_op ->
        advance st;
        let f = expect_ident st "field name" in
        loop (Arrow (e, f))
    | _ -> e
  in
  loop e

and parse_primary st =
  match peek st with
  | Lexer.Tint_lit n ->
      advance st;
      Int_lit n
  | Lexer.Tfloat_lit f ->
      advance st;
      Float_lit f
  | Lexer.Tident "true" ->
      advance st;
      Bool_lit true
  | Lexer.Tident "false" ->
      advance st;
      Bool_lit false
  | Lexer.Tident name -> (
      advance st;
      match peek st with
      | Lexer.Tlparen ->
          advance st;
          let args = parse_args st in
          expect st Lexer.Trparen "')' after arguments";
          Call (name, args)
      | _ -> Var name)
  | Lexer.Tlparen ->
      advance st;
      let e = parse_expr st in
      expect st Lexer.Trparen "')'";
      e
  | _ -> error st "expression expected"

and parse_args st =
  if Lexer.equal_token (peek st) Lexer.Trparen then []
  else
    let rec loop acc =
      let e = parse_expr st in
      if Lexer.equal_token (peek st) Lexer.Tcomma then begin
        advance st;
        loop (e :: acc)
      end
      else List.rev (e :: acc)
    in
    loop []

(** {1 Pragmas}

    The lexer hands us the raw pragma payload; we re-lex it here and
    parse clauses with the same machinery. *)

let parse_section st =
  let arr = expect_ident st "array name in data clause" in
  match peek st with
  | Lexer.Tlbracket ->
      advance st;
      let start = parse_expr st in
      expect st Lexer.Tcolon "':' in array section";
      let len = parse_expr st in
      expect st Lexer.Trbracket "']' in array section";
      let into =
        if Lexer.equal_token (peek st) Lexer.Tcolon
           && peekn st 1 = Lexer.Tident "into"
        then begin
          advance st;
          advance st;
          expect st Lexer.Tlparen "'(' after into";
          let dst = expect_ident st "into target array" in
          let dofs =
            match peek st with
            | Lexer.Tlbracket ->
                advance st;
                let o = parse_expr st in
                expect st Lexer.Tcolon "':' in into section";
                let _len = parse_expr st in
                expect st Lexer.Trbracket "']' in into section";
                o
            | _ -> Int_lit 0
          in
          expect st Lexer.Trparen "')' after into";
          Some (dst, dofs)
        end
        else None
      in
      { arr; start; len; into }
  | Lexer.Tcolon ->
      (* in(a : length(n)) *)
      advance st;
      expect st (Lexer.Tident "length") "length()";
      expect st Lexer.Tlparen "'(' after length";
      let len = parse_expr st in
      expect st Lexer.Trparen "')' after length";
      { arr; start = Int_lit 0; len; into = None }
  | _ -> error st "array section expected"

let parse_sections st =
  expect st Lexer.Tlparen "'(' after data clause";
  let rec loop acc =
    let s = parse_section st in
    if Lexer.equal_token (peek st) Lexer.Tcomma then begin
      advance st;
      loop (s :: acc)
    end
    else List.rev (s :: acc)
  in
  let sections = loop [] in
  expect st Lexer.Trparen "')' after data clause";
  sections

let parse_target st =
  expect st Lexer.Tlparen "'(' after target";
  expect st (Lexer.Tident "mic") "mic device";
  expect st Lexer.Tcolon "':' after mic";
  let n = match peek st with
    | Lexer.Tint_lit n -> advance st; n
    | _ -> error st "device number"
  in
  expect st Lexer.Trparen "')' after target";
  n

let parse_offload_clauses st =
  let spec = ref empty_spec in
  let rec loop () =
    match peek st with
    | Lexer.Tident "target" ->
        advance st;
        spec := { !spec with target = parse_target st };
        loop ()
    | Lexer.Tident "in" ->
        advance st;
        spec := { !spec with ins = !spec.ins @ parse_sections st };
        loop ()
    | Lexer.Tident "out" ->
        advance st;
        spec := { !spec with outs = !spec.outs @ parse_sections st };
        loop ()
    | Lexer.Tident "inout" ->
        advance st;
        spec := { !spec with inouts = !spec.inouts @ parse_sections st };
        loop ()
    | Lexer.Tident "nocopy" ->
        advance st;
        expect st Lexer.Tlparen "'('";
        let rec names acc =
          let n = expect_ident st "name in nocopy" in
          if Lexer.equal_token (peek st) Lexer.Tcomma then begin
            advance st;
            names (n :: acc)
          end
          else List.rev (n :: acc)
        in
        let ns = names [] in
        expect st Lexer.Trparen "')'";
        spec := { !spec with nocopy = !spec.nocopy @ ns };
        loop ()
    | Lexer.Tident "translate" ->
        advance st;
        expect st Lexer.Tlparen "'('";
        let rec names acc =
          let n = expect_ident st "name in translate" in
          if Lexer.equal_token (peek st) Lexer.Tcomma then begin
            advance st;
            names (n :: acc)
          end
          else List.rev (n :: acc)
        in
        let ns = names [] in
        expect st Lexer.Trparen "')'";
        spec := { !spec with translate = !spec.translate @ ns };
        loop ()
    | Lexer.Tident "signal" ->
        advance st;
        expect st Lexer.Tlparen "'('";
        let e = parse_expr st in
        expect st Lexer.Trparen "')'";
        spec := { !spec with signal = Some e };
        loop ()
    | Lexer.Tident "wait" ->
        advance st;
        expect st Lexer.Tlparen "'('";
        let e = parse_expr st in
        expect st Lexer.Trparen "')'";
        spec := { !spec with wait = Some e };
        loop ()
    | Lexer.Teof -> ()
    | _ -> error st "unknown offload clause"
  in
  loop ();
  !spec

let parse_pragma_payload payload =
  let toks = Array.of_list (Lexer.tokenize payload) in
  let st = { toks; cur = 0 } in
  match peek st with
  | Lexer.Tident "omp" -> (
      advance st;
      match peek st with
      | Lexer.Tident "parallel" ->
          advance st;
          expect st (Lexer.Tident "for") "'for' after omp parallel";
          Omp_parallel_for
      | Lexer.Tident "simd" ->
          advance st;
          Omp_simd
      | _ -> error st "unsupported omp pragma")
  | Lexer.Tident "offload" ->
      advance st;
      Offload (parse_offload_clauses st)
  | Lexer.Tident "offload_transfer" ->
      advance st;
      Offload_transfer (parse_offload_clauses st)
  | Lexer.Tident "offload_wait" ->
      advance st;
      let spec = parse_offload_clauses st in
      (match spec.wait with
      | Some e -> Offload_wait e
      | None -> error st "offload_wait requires wait(...)")
  | _ -> error st "unknown pragma"

(** {1 Statements} *)

let rec parse_stmt st =
  match peek st with
  | Lexer.Tpragma payload ->
      advance st;
      let p = parse_pragma_payload payload in
      (* offload_wait and bare offload_transfer stand alone; attach a
         no-op statement. *)
      (match p with
      | Offload_wait _ | Offload_transfer _ ->
          Spragma (p, Sblock [])
      | _ ->
          let s = parse_stmt st in
          Spragma (p, s))
  | Lexer.Tlbrace -> Sblock (parse_block st)
  | Lexer.Tident "if" ->
      advance st;
      expect st Lexer.Tlparen "'(' after if";
      let c = parse_expr st in
      expect st Lexer.Trparen "')' after if condition";
      let b1 = parse_stmt_as_block st in
      let b2 =
        if Lexer.equal_token (peek st) (Lexer.Tident "else") then begin
          advance st;
          parse_stmt_as_block st
        end
        else []
      in
      Sif (c, b1, b2)
  | Lexer.Tident "while" ->
      advance st;
      expect st Lexer.Tlparen "'(' after while";
      let c = parse_expr st in
      expect st Lexer.Trparen "')' after while condition";
      Swhile (c, parse_stmt_as_block st)
  | Lexer.Tident "for" -> parse_for st
  | Lexer.Tident "return" ->
      advance st;
      if Lexer.equal_token (peek st) Lexer.Tsemi then begin
        advance st;
        Sreturn None
      end
      else begin
        let e = parse_expr st in
        expect st Lexer.Tsemi "';' after return";
        Sreturn (Some e)
      end
  | Lexer.Tident "break" ->
      advance st;
      expect st Lexer.Tsemi "';' after break";
      Sbreak
  | Lexer.Tident "continue" ->
      advance st;
      expect st Lexer.Tsemi "';' after continue";
      Scontinue
  | _ when is_decl st ->
      let t = parse_ty st in
      let name = expect_ident st "variable name" in
      let t =
        match peek st with
        | Lexer.Tlbracket ->
            advance st;
            let n = parse_expr st in
            expect st Lexer.Trbracket "']' in array declaration";
            Tarray (t, Some n)
        | _ -> t
      in
      let init =
        if Lexer.equal_token (peek st) Lexer.Tassign then begin
          advance st;
          Some (parse_expr st)
        end
        else None
      in
      expect st Lexer.Tsemi "';' after declaration";
      Sdecl (t, name, init)
  | _ -> parse_simple_stmt st

(* a statement beginning with a type keyword is a declaration, except
   'struct Name {' which only occurs at toplevel *)
and is_decl st = is_type_start st

and parse_simple_stmt st =
  let lhs = parse_expr st in
  let stmt =
    match peek st with
    | Lexer.Tassign ->
        advance st;
        let rhs = parse_expr st in
        Sassign (lhs, rhs)
    | Lexer.Tpluseq ->
        advance st;
        let rhs = parse_expr st in
        Sassign (lhs, Binop (Add, lhs, rhs))
    | Lexer.Tminuseq ->
        advance st;
        let rhs = parse_expr st in
        Sassign (lhs, Binop (Sub, lhs, rhs))
    | Lexer.Tplusplus ->
        advance st;
        Sassign (lhs, Binop (Add, lhs, Int_lit 1))
    | Lexer.Tminusminus ->
        advance st;
        Sassign (lhs, Binop (Sub, lhs, Int_lit 1))
    | _ -> Sexpr lhs
  in
  expect st Lexer.Tsemi "';' after statement";
  stmt

and parse_stmt_as_block st =
  match parse_stmt st with Sblock b -> b | s -> [ s ]

and parse_block st =
  expect st Lexer.Tlbrace "'{'";
  let rec loop acc =
    if Lexer.equal_token (peek st) Lexer.Trbrace then begin
      advance st;
      List.rev acc
    end
    else loop (parse_stmt st :: acc)
  in
  loop []

(* Canonical counted loop: for ([int] i = lo; i < hi; i++ | i += k
   | i = i + k) body *)
and parse_for st =
  advance st;
  expect st Lexer.Tlparen "'(' after for";
  (match peek st with
  | Lexer.Tident "int" -> advance st
  | _ -> ());
  let index = expect_ident st "loop index" in
  expect st Lexer.Tassign "'=' in for init";
  let lo = parse_expr st in
  expect st Lexer.Tsemi "';' after for init";
  let index2 = expect_ident st "loop index in condition" in
  if not (String.equal index index2) then
    error st "for condition must test the loop index";
  expect st Lexer.Tlt "'<' in for condition (canonical loops only)";
  let hi = parse_expr st in
  expect st Lexer.Tsemi "';' after for condition";
  let index3 = expect_ident st "loop index in increment" in
  if not (String.equal index index3) then
    error st "for increment must update the loop index";
  let step =
    match peek st with
    | Lexer.Tplusplus ->
        advance st;
        Int_lit 1
    | Lexer.Tpluseq ->
        advance st;
        parse_expr st
    | Lexer.Tassign ->
        advance st;
        let index4 = expect_ident st "loop index in increment" in
        if not (String.equal index index4) then
          error st "for increment must be i = i + k";
        expect st Lexer.Tplus "'+' in for increment";
        parse_expr st
    | _ -> error st "for increment must be ++, += or i = i + k"
  in
  expect st Lexer.Trparen "')' after for header";
  let body = parse_stmt_as_block st in
  Sfor { index; lo; hi; step; body }

(** {1 Top level} *)

let parse_param st =
  let t = parse_ty st in
  let name = expect_ident st "parameter name" in
  let t =
    match peek st with
    | Lexer.Tlbracket ->
        advance st;
        (match peek st with
        | Lexer.Trbracket ->
            advance st;
            Tarray (t, None)
        | _ ->
            let n = parse_expr st in
            expect st Lexer.Trbracket "']'";
            Tarray (t, Some n))
    | _ -> t
  in
  { pty = t; pname = name }

let parse_params st =
  expect st Lexer.Tlparen "'(' after function name";
  if Lexer.equal_token (peek st) Lexer.Trparen then begin
    advance st;
    []
  end
  else if peek st = Lexer.Tident "void" && peekn st 1 = Lexer.Trparen then begin
    advance st;
    advance st;
    []
  end
  else begin
    let rec loop acc =
      let p = parse_param st in
      if Lexer.equal_token (peek st) Lexer.Tcomma then begin
        advance st;
        loop (p :: acc)
      end
      else List.rev (p :: acc)
    in
    let ps = loop [] in
    expect st Lexer.Trparen "')' after parameters";
    ps
  end

let parse_global st =
  match (peek st, peekn st 1, peekn st 2) with
  | Lexer.Tident "struct", Lexer.Tident name, Lexer.Tlbrace ->
      advance st;
      advance st;
      advance st;
      let rec fields acc =
        if Lexer.equal_token (peek st) Lexer.Trbrace then begin
          advance st;
          expect st Lexer.Tsemi "';' after struct definition";
          List.rev acc
        end
        else begin
          let t = parse_ty st in
          let fname = expect_ident st "field name" in
          let t =
            match peek st with
            | Lexer.Tlbracket ->
                advance st;
                let n = parse_expr st in
                expect st Lexer.Trbracket "']'";
                Tarray (t, Some n)
            | _ -> t
          in
          expect st Lexer.Tsemi "';' after field";
          fields ((t, fname) :: acc)
        end
      in
      Gstruct { sname = name; sfields = fields [] }
  | _ ->
      let t = parse_ty st in
      let name = expect_ident st "global name" in
      (match peek st with
      | Lexer.Tlparen ->
          let params = parse_params st in
          let body = parse_block st in
          Gfunc { ret = t; fname = name; params; body }
      | Lexer.Tlbracket ->
          advance st;
          let n = parse_expr st in
          expect st Lexer.Trbracket "']'";
          expect st Lexer.Tsemi "';' after global array";
          Gvar (Tarray (t, Some n), name, None)
      | Lexer.Tassign ->
          advance st;
          let e = parse_expr st in
          expect st Lexer.Tsemi "';' after global";
          Gvar (t, name, Some e)
      | Lexer.Tsemi ->
          advance st;
          Gvar (t, name, None)
      | _ -> error st "function body or ';' expected")

let parse_program src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0 } in
  let rec loop acc =
    if Lexer.equal_token (peek st) Lexer.Teof then List.rev acc
    else loop (parse_global st :: acc)
  in
  loop []

(** Parse a program, mapping lexer errors into parse errors. *)
let program_of_string src =
  try Ok (parse_program src) with
  | Parse_error (msg, loc) -> Error (msg ^ " at " ^ Srcloc.to_string loc)
  | Lexer.Lex_error (msg, loc) ->
      Error (msg ^ " at " ^ Srcloc.to_string loc)

let program_of_string_exn src =
  match program_of_string src with
  | Ok p -> p
  | Error msg -> invalid_arg ("Minic.Parser: " ^ msg)

(** Parse a single expression, e.g. for tests. *)
let expr_of_string_exn src =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; cur = 0 } in
  let e = parse_expr st in
  if not (Lexer.equal_token (peek st) Lexer.Teof) then
    invalid_arg "Minic.Parser: trailing tokens after expression";
  e
