(** Abstract syntax for MiniC, the C subset the COMP optimizations operate
    on.  The language covers what the paper's benchmarks need: scalar
    [int]/[float]/[bool] types, pointers, fixed- and variable-length
    arrays, structs, canonical counted [for] loops, OpenMP
    [parallel for] pragmas and LEO-style [offload] pragmas with
    [in]/[out]/[inout] data clauses. *)

type ty =
  | Tvoid
  | Tint
  | Tfloat
  | Tbool
  | Tptr of ty
  | Tarray of ty * expr option  (** element type, optional static size *)
  | Tstruct of string

and binop =
  | Add
  | Sub
  | Mul
  | Div
  | Mod
  | Eq
  | Ne
  | Lt
  | Le
  | Gt
  | Ge
  | And
  | Or

and unop = Neg | Not

and expr =
  | Int_lit of int
  | Float_lit of float
  | Bool_lit of bool
  | Var of string
  | Index of expr * expr  (** [a[i]] *)
  | Field of expr * string  (** [s.f] *)
  | Arrow of expr * string  (** [p->f] *)
  | Deref of expr  (** [*p] *)
  | Addr of expr  (** [&lv] *)
  | Binop of binop * expr * expr
  | Unop of unop * expr
  | Call of string * expr list
  | Cast of ty * expr
[@@deriving show { with_path = false }, eq]

(** A data clause section: [arr[start:len]], optionally redirected into a
    device-side array with [into(dst[dstart:len])] as in LEO. *)
type section = {
  arr : string;
  start : expr;
  len : expr;
  into : (string * expr) option;  (** destination array and offset *)
}
[@@deriving show { with_path = false }, eq]

type offload_spec = {
  target : int;  (** device number, [mic:N] *)
  ins : section list;
  outs : section list;
  inouts : section list;
  nocopy : string list;
  translate : string list;
      (** arrays whose pointer-valued cells are rebased to the device
          copy during the transfer (the delta-table translation of
          Section V-B, as a language feature) *)
  signal : expr option;
  wait : expr option;
}
[@@deriving show { with_path = false }, eq]

let empty_spec =
  {
    target = 0;
    ins = [];
    outs = [];
    inouts = [];
    nocopy = [];
    translate = [];
    signal = None;
    wait = None;
  }

type pragma =
  | Omp_parallel_for
  | Omp_simd
  | Offload of offload_spec  (** [#pragma offload target(mic:N) ...] *)
  | Offload_transfer of offload_spec
      (** asynchronous data transfer without computation *)
  | Offload_wait of expr  (** wait for a signalled transfer/kernel *)
[@@deriving show { with_path = false }, eq]

type stmt =
  | Sexpr of expr
  | Sassign of expr * expr  (** lvalue = rvalue *)
  | Sdecl of ty * string * expr option
  | Sif of expr * block * block
  | Swhile of expr * block
  | Sfor of for_loop
  | Sreturn of expr option
  | Sblock of block
  | Spragma of pragma * stmt
  | Sbreak
  | Scontinue

and block = stmt list

and for_loop = {
  index : string;
  lo : expr;
  hi : expr;  (** exclusive upper bound: [index < hi] *)
  step : expr;
  body : block;
}
[@@deriving show { with_path = false }, eq]

type param = { pty : ty; pname : string } [@@deriving show { with_path = false }, eq]

type func = { ret : ty; fname : string; params : param list; body : block }
[@@deriving show { with_path = false }, eq]

type struct_def = { sname : string; sfields : (ty * string) list }
[@@deriving show { with_path = false }, eq]

type global =
  | Gstruct of struct_def
  | Gfunc of func
  | Gvar of ty * string * expr option
[@@deriving show { with_path = false }, eq]

type program = global list [@@deriving show { with_path = false }, eq]

(** {1 Constructors and small helpers} *)

let int_ n = Int_lit n
let float_ f = Float_lit f
let var v = Var v
let ( +: ) a b = Binop (Add, a, b)
let ( -: ) a b = Binop (Sub, a, b)
let ( *: ) a b = Binop (Mul, a, b)
let ( /: ) a b = Binop (Div, a, b)
let ( <: ) a b = Binop (Lt, a, b)
let idx a i = Index (a, i)

let section ?into ~arr ~start ~len () = { arr; start; len; into }

(** [section_full name n] is the whole-array clause [name[0:n]]. *)
let section_full name n = section ~arr:name ~start:(int_ 0) ~len:n ()

let find_func prog name =
  List.find_map
    (function Gfunc f when String.equal f.fname name -> Some f | _ -> None)
    prog

let find_struct prog name =
  List.find_map
    (function
      | Gstruct s when String.equal s.sname name -> Some s | _ -> None)
    prog

(** Map a function over every function body of a program. *)
let map_funcs f prog =
  List.map (function Gfunc fn -> Gfunc (f fn) | g -> g) prog

(** Fold over every statement of a block, depth first. *)
let rec fold_stmts f acc block = List.fold_left (fold_stmt f) acc block

and fold_stmt f acc stmt =
  let acc = f acc stmt in
  match stmt with
  | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue -> acc
  | Sif (_, b1, b2) -> fold_stmts f (fold_stmts f acc b1) b2
  | Swhile (_, b) -> fold_stmts f acc b
  | Sfor { body; _ } -> fold_stmts f acc body
  | Sblock b -> fold_stmts f acc b
  | Spragma (_, s) -> fold_stmt f acc s

(** Rewrite every statement of a block bottom-up. *)
let rec map_block f block = List.map (map_stmt f) block

and map_stmt f stmt =
  let stmt' =
    match stmt with
    | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue -> stmt
    | Sif (c, b1, b2) -> Sif (c, map_block f b1, map_block f b2)
    | Swhile (c, b) -> Swhile (c, map_block f b)
    | Sfor fl -> Sfor { fl with body = map_block f fl.body }
    | Sblock b -> Sblock (map_block f b)
    | Spragma (p, s) -> Spragma (p, map_stmt f s)
  in
  f stmt'

(** Fold over every expression appearing in a statement (shallow:
    does not recurse into nested statements). *)
let rec fold_expr f acc expr =
  let acc = f acc expr in
  match expr with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> acc
  | Index (a, i) -> fold_expr f (fold_expr f acc a) i
  | Field (e, _) | Arrow (e, _) | Deref e | Addr e | Unop (_, e) | Cast (_, e)
    ->
      fold_expr f acc e
  | Binop (_, a, b) -> fold_expr f (fold_expr f acc a) b
  | Call (_, args) -> List.fold_left (fold_expr f) acc args

(** Expressions appearing directly in a statement (not nested stmts). *)
let stmt_exprs stmt =
  match stmt with
  | Sexpr e | Sreturn (Some e) | Sdecl (_, _, Some e) -> [ e ]
  | Sassign (lv, rv) -> [ lv; rv ]
  | Sif (c, _, _) | Swhile (c, _) -> [ c ]
  | Sfor { lo; hi; step; _ } -> [ lo; hi; step ]
  | Sreturn None | Sdecl (_, _, None) | Sblock _ | Sbreak | Scontinue -> []
  | Spragma (_, _) -> []

(** All expressions in a block, including nested statements. *)
let block_exprs block =
  fold_stmts (fun acc s -> List.rev_append (stmt_exprs s) acc) [] block
  |> List.rev

(** Substitute variable [name] with expression [by] in an expression. *)
let rec subst_expr ~name ~by expr =
  let s e = subst_expr ~name ~by e in
  match expr with
  | Var v when String.equal v name -> by
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> expr
  | Index (a, i) -> Index (s a, s i)
  | Field (e, f) -> Field (s e, f)
  | Arrow (e, f) -> Arrow (s e, f)
  | Deref e -> Deref (s e)
  | Addr e -> Addr (s e)
  | Binop (op, a, b) -> Binop (op, s a, s b)
  | Unop (op, e) -> Unop (op, s e)
  | Call (f, args) -> Call (f, List.map s args)
  | Cast (t, e) -> Cast (t, s e)

(** Substitute a variable in every expression of a block.  Does not
    attempt capture-avoidance: MiniC programs produced by the
    transformations use fresh names. *)
let rec subst_block ~name ~by block = List.map (subst_stmt ~name ~by) block

and subst_stmt ~name ~by stmt =
  let se e = subst_expr ~name ~by e in
  let sb b = subst_block ~name ~by b in
  match stmt with
  | Sexpr e -> Sexpr (se e)
  | Sassign (lv, rv) -> Sassign (se lv, se rv)
  | Sdecl (t, v, init) -> Sdecl (t, v, Option.map se init)
  | Sif (c, b1, b2) -> Sif (se c, sb b1, sb b2)
  | Swhile (c, b) -> Swhile (se c, sb b)
  | Sfor fl ->
      if String.equal fl.index name then
        (* the loop rebinds [name]; lo/hi/step are evaluated outside *)
        Sfor { fl with lo = se fl.lo; hi = se fl.hi; step = se fl.step }
      else
        Sfor
          {
            fl with
            lo = se fl.lo;
            hi = se fl.hi;
            step = se fl.step;
            body = sb fl.body;
          }
  | Sreturn e -> Sreturn (Option.map se e)
  | Sblock b -> Sblock (sb b)
  | Spragma (p, s) -> Spragma (p, subst_stmt ~name ~by s)
  | Sbreak | Scontinue -> stmt

(** Variables read anywhere in an expression. *)
let expr_vars expr =
  fold_expr
    (fun acc e -> match e with Var v -> v :: acc | _ -> acc)
    [] expr
  |> List.rev

(** {1 Effect and purity analysis}

    Conservative, type-free approximations used by the optimizer
    ([lib/opt]) and the [Simplify] smart constructors to decide when
    an expression may be deleted, duplicated, or hoisted.  Everything
    errs on the side of "has an effect". *)

(** [has_call e]: [e] contains a call, builtin or user-defined.  Calls
    may print, allocate, write globals, trap, or burn fuel, so an
    expression containing one must never be folded away. *)
let has_call e =
  fold_expr (fun acc e -> match e with Call _ -> true | _ -> acc) false e

(** [may_trap e]: evaluating [e] may raise a runtime error.  Int
    [Div]/[Mod] trap on a zero divisor (a [Float_lit] divisor is float
    division, which yields inf/nan instead); [Index]/[Deref]/[Arrow]
    loads trap out of bounds or across the host/device address spaces;
    calls may trap inside the callee.  [&a[i]] is treated like the
    load it addresses. *)
let rec may_trap e =
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> false
  | Index _ | Deref _ | Arrow _ -> true
  | Field (e, _) | Addr e | Unop (_, e) | Cast (_, e) -> may_trap e
  | Binop ((Div | Mod), a, b) -> (
      may_trap a
      ||
      match b with
      | Int_lit n -> n = 0
      | Float_lit _ -> false
      | _ -> true)
  | Binop (_, a, b) -> may_trap a || may_trap b
  | Call _ -> true

(** [pure e]: evaluating [e] has no observable effect and cannot fail,
    so deleting or re-evaluating it is always safe. *)
let pure e = (not (has_call e)) && not (may_trap e)

(** Expressions evaluated by a pragma itself (section bounds, signal
    and wait tags) — [stmt_exprs] deliberately excludes these. *)
let pragma_exprs = function
  | Omp_parallel_for | Omp_simd -> []
  | Offload_wait e -> [ e ]
  | Offload s | Offload_transfer s ->
      let sec_exprs sec =
        (sec.start :: sec.len :: [])
        @ match sec.into with Some (_, o) -> [ o ] | None -> []
      in
      List.concat_map sec_exprs (s.ins @ s.outs @ s.inouts)
      @ Option.to_list s.signal @ Option.to_list s.wait

(** Base variable of an lvalue path, when it can be named: [a[i].f]
    writes into [a]; [*p] and [p->f] write through a pointer whose
    target cannot be named syntactically. *)
let rec lvalue_base = function
  | Var v -> Some v
  | Index (e, _) | Field (e, _) | Cast (_, e) -> lvalue_base e
  | _ -> None

(** What a block may write, conservatively. *)
type write_set = {
  w_vars : string list;
      (** scalars assigned or declared directly ([v = e], [int v],
          loop indexes), sorted *)
  w_mem : string list;
      (** named arrays/structs written through [a[i]]/[s.f] lvalues or
          offload out/inout/into clauses, sorted *)
  w_unknown : bool;
      (** writes that cannot be attributed to a name: [*p = e],
          [p->f = e], or any call (a callee may write globals) *)
}

let writes block =
  let vars = ref [] and mem = ref [] and unknown = ref false in
  let add r v = if not (List.mem v !r) then r := v :: !r in
  let written lv =
    match lv with
    | Var v -> add vars v
    | _ -> (
        match lvalue_base lv with
        | Some v -> add mem v
        | None -> unknown := true)
  in
  let spec_writes (s : offload_spec) =
    List.iter (fun sec -> add mem sec.arr) (s.outs @ s.inouts);
    List.iter
      (fun sec ->
        match sec.into with Some (dst, _) -> add mem dst | None -> ())
      (s.ins @ s.outs @ s.inouts)
  in
  fold_stmts
    (fun () s ->
      let exprs =
        match s with
        | Spragma (p, _) -> pragma_exprs p
        | _ -> stmt_exprs s
      in
      List.iter (fun e -> if has_call e then unknown := true) exprs;
      match s with
      | Sassign (lv, _) -> written lv
      | Sdecl (_, v, _) -> add vars v
      | Sfor { index; _ } -> add vars index
      | Spragma ((Offload spec | Offload_transfer spec), _) ->
          spec_writes spec
      | _ -> ())
    () block;
  {
    w_vars = List.sort compare !vars;
    w_mem = List.sort compare !mem;
    w_unknown = !unknown;
  }
