(** Bounded domain pool with deterministic result ordering.  See the
    interface for the contract; the implementation notes below are
    about why the sequential and parallel runs cannot diverge.

    The pool is a work-stealing-free shared counter: workers claim the
    next unclaimed index with an atomic fetch-and-add and write their
    result into a per-index slot.  Claim order may vary between runs,
    but slots are keyed by submission index, so the merged result list
    (and the exception choice: lowest failing index) is a pure
    function of the tasks themselves. *)

let default_jobs () =
  match Sys.getenv_opt "COMP_JOBS" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n when n >= 1 -> n
      | Some _ | None -> Domain.recommended_domain_count ())
  | None -> Domain.recommended_domain_count ()

let jobs_of = function Some n -> max 1 n | None -> default_jobs ()

(* One slot per task: filled exactly once by whichever worker claimed
   the index.  No lock is needed for the slots — indices are claimed
   uniquely, and the Domain.join before reading publishes the
   writes. *)
type 'a slot = Pending | Done of 'a | Raised of exn

let run ?jobs n f =
  if n < 0 then invalid_arg "Parallel.run: negative task count";
  let jobs = min (jobs_of jobs) n in
  if n = 0 then []
  else if jobs <= 1 then
    (* inline: byte-for-byte the sequential run, no domains spawned *)
    List.init n f
  else begin
    let slots = Array.make n Pending in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          (slots.(i) <- (match f i with v -> Done v | exception e -> Raised e));
          loop ()
        end
      in
      loop ()
    in
    let domains = List.init jobs (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    (* surface the lowest-index failure, independent of which worker
       hit it first *)
    Array.iteri
      (fun _ s -> match s with Raised e -> raise e | _ -> ())
      slots;
    Array.to_list
      (Array.map
         (function
           | Done v -> v
           | Pending | Raised _ -> assert false (* all claimed, none raised *))
         slots)
  end

let map ?jobs f xs =
  let arr = Array.of_list xs in
  run ?jobs (Array.length arr) (fun i -> f arr.(i))

(* splitmix64 finalizer (same constants as Fault.draw): uncorrelated
   per-index streams from one root seed, independent of pool width. *)
let mix64 z =
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let derive_seed ~root index =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int root) 0x9e3779b97f4a7c15L)
         (Int64.of_int index))
  in
  Int64.to_int (Int64.shift_right_logical z 2)
