(** Bounded domain pool for embarrassingly parallel sweeps.

    Every sweep surface (the [bench] registry sweeps, [compc check
    --runs N], the fault grids) is a list of independent tasks whose
    results are printed in submission order.  This module runs such a
    list on OCaml 5 domains while keeping the output {e bit-identical}
    to the sequential run:

    - tasks are indexed at submission; results land in a slot per
      index and are returned in submission order, whatever the
      completion order;
    - [jobs = 1] executes inline on the calling domain — no domains
      are spawned, so it is byte-for-byte the sequential run;
    - a task exception is captured per slot and re-raised on the
      calling domain for the {e lowest} failing index, so the failure
      a caller observes does not depend on scheduling either.

    Tasks must not share mutable state; give each task its own
    {!Obs.t} sink and merge the sinks in submission order afterwards
    ({!Obs.merge} preserves the sequential profile exactly). *)

val default_jobs : unit -> int
(** Pool width when the caller gives none: [COMP_JOBS] if set to a
    positive integer, else [Domain.recommended_domain_count ()]. *)

val jobs_of : int option -> int
(** [jobs_of (Some n)] is [n] clamped to at least 1; [jobs_of None] is
    {!default_jobs}[ ()]. *)

val run : ?jobs:int -> int -> (int -> 'a) -> 'a list
(** [run ~jobs n f] computes [[f 0; f 1; ...; f (n-1)]] on a pool of
    [min jobs n] domains and returns the results in index order.  If
    any task raised, the exception of the lowest failing index is
    re-raised after all workers have joined. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map ~jobs f xs] is [List.map f xs] with the applications run on
    the pool; result order follows [xs]. *)

val derive_seed : root:int -> int -> int
(** Per-task seed for task [index], by a splitmix64 finalizer over
    [(root, index)].  The derivation depends only on [root] and the
    task index — never on the pool width — so [--jobs] cannot change
    which seeds (and hence which generated programs) a sweep tests.
    The result is non-negative and fits in 62 bits. *)
