(** Inter-offload data residency: whole-program transfer elimination.

    The offload runtime already keeps one device shadow per host array
    across offloads ({!Minic.Interp.shadow_for}); the pragmas just
    never exploit it — every offload re-transfers whatever it names.
    This pass tracks, per function, which array sections are {e
    resident}: device shadow content equal to the host content.  An
    [in]/[inout] section whose exact section is resident at the
    offload is not re-transferred — the clause is elided and the array
    rebound through [nocopy] (an [inout] keeps its device-to-host
    copy-back by moving to [out], so the host stays current at every
    step).  Residency facts that only become invalid {e across}
    iterations of a sequential outer loop are established once before
    the loop: the transfer is hoisted.

    Facts die conservatively:
    - a host write to the array (or to any variable its section
      expressions read) — the shadow is stale;
    - any call or unattributable store — the callee may write anything;
    - every array an offload or transfer pragma mentions is killed
      before that pragma's own facts are re-added: a differently-sized
      section would grow the shadow, and the runtime's grow path
      allocates a fresh device buffer without copying (the LEO
      behaviour — stale cells are only refreshed by [in] copies);
    - a device reset (fault model) wipes shadows at runtime: the
      engine re-charges exactly the elided cells ([Ev_resident] /
      [Task.reset_xfer_s]), and CPU fallback is always sound because
      copy-backs are never elided (host data stays current).

    Refusals are counted per reason via {!Obs}
    ([residency.refuse.*]/[residency.invalidate.*]), elisions and
    hoists under [residency.elide.*]/[residency.hoist]. *)

open Minic.Ast

(** One residency fact: the device shadow of [f_sec.arr] on device
    [f_target] holds the host content of section [f_sec].  [f_hoist]
    carries the fact's obligation: [Some sink] marks a loop-candidate
    fact whose pre-loop transfer must be materialized (pushed into
    [sink]) if any elision relies on it. *)
type fact = {
  f_target : int;
  f_sec : section;
  f_hoist : fact list ref option;
}

let same_fact a b = a.f_target = b.f_target && equal_section a.f_sec b.f_sec
let mem_fact f l = List.exists (same_fact f) l
let add_fact l f = if mem_fact f l then l else f :: l

(* Intersection keeping the instance that still carries a hoist
   obligation: a fact fresh on one path but inherited on the other
   must be treated as inherited. *)
let join_facts f1 f2 =
  List.filter_map
    (fun a ->
      match List.find_opt (same_fact a) f2 with
      | None -> None
      | Some b -> Some (if a.f_hoist <> None then a else b))
    f1

type ctx = {
  obs : Obs.t option;
  commit : bool;
      (** false during loop-fixpoint dry runs: no counters, no hoist
          collection, transforms discarded *)
  escaped : string list;
      (** arrays whose address escapes ([&a[i]], bare call arguments):
          host writes through an alias would not kill their facts, so
          they never get any *)
  changed : int ref;
}

let bump ?(by = 1) ctx name =
  if ctx.commit && by > 0 then
    match ctx.obs with None -> () | Some o -> Obs.incr ~by o name

let sec_mentions v (s : section) =
  Analysis.Simplify.mentions v s.start || Analysis.Simplify.mentions v s.len

let sec_vars (s : section) = expr_vars s.start @ expr_vars s.len

(** Every array name an offload/transfer spec touches — clause arrays,
    [into()] destinations, [nocopy], [translate]. *)
let spec_arrays (s : offload_spec) =
  List.concat_map
    (fun (sec : section) ->
      sec.arr :: (match sec.into with Some (d, _) -> [ d ] | None -> []))
    (s.ins @ s.outs @ s.inouts)
  @ s.nocopy @ s.translate

(* Arrays named by two clauses of the same spec with sections that are
   neither equal nor provably disjoint: the per-array fact model
   cannot describe them, so they are refused. *)
let aliased_arrays (spec : offload_spec) =
  let secs =
    List.filter
      (fun (s : section) -> Option.is_none s.into)
      (spec.ins @ spec.inouts @ spec.outs)
  in
  let rec pairs acc = function
    | [] -> acc
    | (s : section) :: rest ->
        let acc =
          List.fold_left
            (fun acc (s' : section) ->
              if s'.arr <> s.arr || equal_section s s' then acc
              else
                let disjoint =
                  match
                    ( Analysis.Offload_regions.section_bounds s,
                      Analysis.Offload_regions.section_bounds s' )
                  with
                  | Some a, Some b ->
                      not (Analysis.Offload_regions.overlaps a b)
                  | _ -> false
                in
                if disjoint || List.mem s.arr acc then acc else s.arr :: acc)
            acc rest
        in
        pairs acc rest
  in
  pairs [] secs

let kill_arrays arrs facts =
  List.filter (fun f -> not (List.mem f.f_sec.arr arrs)) facts

(** Kill facts invalidated by a host write set: the written arrays
    themselves, plus any fact whose section expressions read a written
    variable (the section no longer names the same elements). *)
let kill_written ctx (ws : write_set) facts =
  if ws.w_unknown then begin
    bump ~by:(List.length facts) ctx "residency.invalidate.unknown";
    []
  end
  else
    let wrote = ws.w_vars @ ws.w_mem in
    let dead f =
      List.mem f.f_sec.arr wrote
      || List.exists (fun v -> sec_mentions v f.f_sec) wrote
    in
    let killed, live = List.partition dead facts in
    bump ~by:(List.length killed) ctx "residency.invalidate.host_write";
    live

(* Static element count of a section, for the bytes-saved report. *)
let sec_elems (s : section) =
  Option.value (Analysis.Simplify.const_int s.len) ~default:0

let elide_fact ctx f =
  (match f.f_hoist with
  | Some sink when ctx.commit -> if not (mem_fact f !sink) then sink := f :: !sink
  | _ -> ());
  if ctx.commit then incr ctx.changed

let block_has_jump b =
  fold_stmts
    (fun acc s -> match s with Sbreak | Scontinue -> true | _ -> acc)
    false b

(** {1 The walker}

    [walk_block]/[walk_stmt] thread the fact set through a block in
    execution order, rewriting offload pragmas as they go.  The
    returned block is only meaningful when [ctx.commit]; dry runs use
    the fact flow alone. *)

let rec walk_block ctx facts block =
  let stmts, facts =
    List.fold_left
      (fun (acc, facts) stmt ->
        let stmts', facts = walk_stmt ctx facts stmt in
        (List.rev_append stmts' acc, facts))
      ([], facts) block
  in
  (List.rev stmts, facts)

(* Returns the (possibly several: hoisted transfers + the original)
   replacement statements plus the facts after them. *)
and walk_stmt ctx facts stmt : stmt list * fact list =
  match stmt with
  | Sexpr _ | Sassign _ | Sreturn _ ->
      ([ stmt ], kill_written ctx (writes [ stmt ]) facts)
  | Sdecl (_, v, _) ->
      (* a declaration shadows any same-named array outright *)
      let facts = kill_arrays [ v ] facts in
      ([ stmt ], kill_written ctx (writes [ stmt ]) facts)
  | Sbreak | Scontinue -> ([ stmt ], facts)
  | Sblock b ->
      let b', facts = walk_block ctx facts b in
      ([ Sblock b' ], facts)
  | Sif (c, b1, b2) ->
      let facts =
        if has_call c then begin
          bump ~by:(List.length facts) ctx "residency.invalidate.unknown";
          []
        end
        else facts
      in
      let b1', f1 = walk_block ctx facts b1 in
      let b2', f2 = walk_block ctx facts b2 in
      ([ Sif (c, b1', b2') ], join_facts f1 f2)
  | Swhile (c, b) ->
      (* no cross-iteration reasoning for non-canonical loops: the
         body starts from no facts (intra-iteration elision between
         consecutive offloads still applies); a break/continue adds
         exit paths the straight-line walk does not model, so facts
         only survive the loop when the body has none *)
      let facts0 = if has_call c then [] else facts in
      let b', out = walk_block ctx [] b in
      let out = if block_has_jump b then [] else out in
      ([ Swhile (c, b') ], join_facts facts0 out)
  | Sfor fl -> walk_for ctx facts fl
  | Spragma ((Omp_parallel_for | Omp_simd) as p, s) ->
      (* hoisted transfers from an inner loop belong before the
         pragma, not under it (the pragma-over-[Sfor] shape must
         survive for the loop analyses) *)
      let ss, facts = walk_stmt ctx facts s in
      (match List.rev ss with
      | last :: pre -> (List.rev pre @ [ Spragma (p, last) ], facts)
      | [] -> ([ stmt ], facts))
  | Spragma (Offload_wait e, s) ->
      let facts = if has_call e then [] else facts in
      ([ Spragma (Offload_wait e, s) ], facts)
  | Spragma (Offload_transfer spec, s) ->
      let stmt', facts = walk_transfer ctx facts spec s in
      ([ stmt' ], facts)
  | Spragma (Offload spec, body) ->
      let stmt', facts = walk_offload ctx facts spec body in
      ([ stmt' ], facts)

(* A source-level transfer pragma is never elided (it may be a
   deliberate pipelining decision), but it moves data like an offload:
   kill everything it mentions, then record its sections as resident —
   h2d ([ins]/[inouts]: device := host) and d2h ([outs]: host :=
   device) both end in equality. *)
and walk_transfer ctx facts spec s =
  let stmt = Spragma (Offload_transfer spec, s) in
  if
    Option.is_some spec.signal
    || List.exists has_call (pragma_exprs (Offload_transfer spec))
  then begin
    bump ctx "residency.refuse.signal";
    (stmt, [])
  end
  else
    let facts = kill_arrays (spec_arrays spec) facts in
    let aliased = aliased_arrays spec in
    let ok (sec : section) =
      Option.is_none sec.into
      && (not (List.mem sec.arr ctx.escaped))
      && not (List.mem sec.arr aliased)
    in
    let facts =
      List.fold_left
        (fun facts sec ->
          if ok sec then
            add_fact facts
              { f_target = spec.target; f_sec = sec; f_hoist = None }
          else facts)
        facts
        (spec.ins @ spec.inouts @ spec.outs)
    in
    (stmt, facts)

and walk_offload ctx facts spec body =
  let orig = Spragma (Offload spec, body) in
  if
    Option.is_some spec.signal
    || List.exists has_call (pragma_exprs (Offload spec))
  then begin
    bump ctx "residency.refuse.signal";
    (orig, [])
  end
  else
    let diags =
      Analysis.Clause_infer.diagnose_offload spec
        (Analysis.Clause_infer.infer_stmt body)
    in
    if List.exists Analysis.Clause_infer.under diags then begin
      (* the pragma does not describe what the body touches: neither
         the elision legality nor the facts it would establish can be
         trusted *)
      bump ctx "residency.refuse.under_declared";
      (orig, [])
    end
    else begin
      let aliased = aliased_arrays spec in
      bump ~by:(List.length aliased) ctx "residency.refuse.aliased_section";
      let bad arr =
        List.mem arr aliased || List.mem arr ctx.escaped
        || List.mem arr spec.nocopy
      in
      let fact_for (sec : section) =
        if Option.is_some sec.into || bad sec.arr then None
        else
          List.find_opt
            (fun f -> f.f_target = spec.target && equal_section f.f_sec sec)
            facts
      in
      let split secs =
        List.partition (fun sec -> Option.is_some (fact_for sec)) secs
      in
      let elide_ins, keep_ins = split spec.ins in
      let elide_ios, keep_ios = split spec.inouts in
      List.iter
        (fun sec -> Option.iter (elide_fact ctx) (fact_for sec))
        (elide_ins @ elide_ios);
      bump ~by:(List.length elide_ins) ctx "residency.elide.in";
      bump ~by:(List.length elide_ios) ctx "residency.elide.inout";
      bump
        ~by:(List.fold_left (fun a s -> a + sec_elems s) 0
               (elide_ins @ elide_ios))
        ctx "residency.elide.cells";
      let spec' =
        if elide_ins = [] && elide_ios = [] then spec
        else
          let nocopy' =
            List.fold_left
              (fun acc (s : section) ->
                if List.mem s.arr acc then acc else acc @ [ s.arr ])
              spec.nocopy (elide_ins @ elide_ios)
          in
          {
            spec with
            ins = keep_ins;
            inouts = keep_ios;
            (* an elided inout keeps its copy-back: the host must stay
               current after every offload (this is also what makes
               CPU fallback after device death trivially sound) *)
            outs = spec.outs @ elide_ios;
            nocopy = nocopy';
          }
      in
      (* Fact update — from the ORIGINAL spec: every mentioned array's
         facts die first (a differently-sized section would regrow the
         shadow without copying), then this spec's own sections are
         resident: [in] sections unless the body writes the array,
         [out]/[inout] sections always (the copy-back just made host
         and device equal). *)
      let facts = kill_arrays (spec_arrays spec) facts in
      let bw = writes [ body ] in
      let body_writes arr = bw.w_unknown || List.mem arr bw.w_mem in
      let addable ?(unless_written = false) (sec : section) =
        Option.is_none sec.into
        && (not (bad sec.arr))
        && not (unless_written && body_writes sec.arr)
      in
      let facts =
        List.fold_left
          (fun facts sec ->
            if addable ~unless_written:true sec then
              add_fact facts
                { f_target = spec.target; f_sec = sec; f_hoist = None }
            else facts)
          facts spec.ins
      in
      let facts =
        List.fold_left
          (fun facts sec ->
            if addable sec then
              add_fact facts
                { f_target = spec.target; f_sec = sec; f_hoist = None }
            else facts)
          facts
          (spec.outs @ spec.inouts)
      in
      (Spragma (Offload spec', body), facts)
    end

(* A canonical sequential loop: residency facts that survive every
   iteration are computed as a greatest fixpoint, elisions inside the
   body may rely on them, and relied-on facts not already resident
   before the loop are established by a hoisted pre-loop transfer. *)
and walk_for ctx facts fl =
  let has_jump = block_has_jump fl.body in
  let impure_bounds = List.exists has_call [ fl.lo; fl.hi; fl.step ] in
  if has_jump || impure_bounds then begin
    (* break/continue add paths the straight-line walk does not model:
       give up on cross-iteration facts, keep intra-iteration elision *)
    let body', _ = walk_block ctx [] fl.body in
    ([ Sfor { fl with body = body' } ], [])
  end
  else
    let sink = ref [] in
    let decls =
      (Analysis.Liveness.of_block Analysis.Liveness.empty fl.body)
        .Analysis.Liveness.decls
    in
    let stable (sec : section) =
      (not (sec_mentions fl.index sec))
      && not
           (List.exists
              (fun v -> Analysis.Liveness.SS.mem v decls)
              (sec_vars sec))
    in
    let kl = List.filter (fun f -> not (sec_mentions fl.index f.f_sec)) in
    (* candidate facts: every section a body offload/transfer could
       establish whose meaning is loop-invariant; the fixpoint keeps
       only those nothing in the body kills *)
    let candidates =
      fold_stmts
        (fun acc s ->
          match s with
          | Spragma ((Offload spec | Offload_transfer spec), _)
            when Option.is_none spec.signal ->
              List.fold_left
                (fun acc (sec : section) ->
                  if
                    Option.is_none sec.into
                    && (not (List.mem sec.arr ctx.escaped))
                    && stable sec
                  then
                    add_fact acc
                      {
                        f_target = spec.target;
                        f_sec = sec;
                        f_hoist = Some sink;
                      }
                  else acc)
                acc
                (spec.ins @ spec.inouts @ spec.outs)
          | _ -> acc)
        [] fl.body
    in
    let j0 = List.fold_left add_fact (kl facts) candidates in
    let dry = { ctx with commit = false } in
    let rec fix j =
      let _, out = walk_block dry j fl.body in
      let out = kl out in
      let j' = List.filter (fun f -> mem_fact f out) j in
      if List.length j' = List.length j then j else fix j'
    in
    let jf = fix j0 in
    let body', out = walk_block ctx jf fl.body in
    let hoists = if ctx.commit then List.rev !sink else [] in
    bump ~by:(List.length hoists) ctx "residency.hoist";
    bump
      ~by:(List.fold_left (fun a f -> a + sec_elems f.f_sec) 0 hoists)
      ctx "residency.hoist.cells";
    if ctx.commit then ctx.changed := !(ctx.changed) + List.length hoists;
    let hoist_stmts =
      List.map
        (fun f ->
          Spragma
            ( Offload_transfer
                { empty_spec with target = f.f_target; ins = [ f.f_sec ] },
              Sblock [] ))
        hoists
    in
    (* after the loop: hoisted sections are resident even on a
       zero-trip loop; everything else must both have held before the
       loop and survive a full body *)
    let entry_side =
      List.fold_left add_fact (kl facts)
        (List.map (fun f -> { f with f_hoist = None }) hoists)
    in
    (hoist_stmts @ [ Sfor { fl with body = body' } ],
     join_facts entry_side (kl out))

(** {1 Per-function driver} *)

let has_offload body =
  fold_stmts
    (fun acc s ->
      match s with
      | Spragma ((Offload _ | Offload_transfer _), _) -> true
      | _ -> acc)
    false body

(* into() sections, translate clauses and raw device allocations
   manage device buffers explicitly; the per-array shadow model does
   not describe them, so such functions are left alone. *)
let explicit_device body =
  fold_stmts
    (fun acc s ->
      acc
      ||
      match s with
      | Spragma ((Offload spec | Offload_transfer spec), _) ->
          spec.translate <> []
          || List.exists
               (fun (sec : section) -> Option.is_some sec.into)
               (spec.ins @ spec.outs @ spec.inouts)
      | _ -> false)
    false body
  || List.exists
       (fun e ->
         fold_expr
           (fun acc e ->
             match e with Call ("mic_malloc", _) -> true | _ -> acc)
           false e)
       (block_exprs body)

let escaped_vars body =
  let exprs =
    block_exprs body
    @ fold_stmts
        (fun acc s ->
          match s with
          | Spragma (p, _) -> List.rev_append (pragma_exprs p) acc
          | _ -> acc)
        [] body
  in
  List.sort_uniq compare
    (List.concat_map
       (fun e ->
         fold_expr
           (fun acc e ->
             match e with
             | Addr lv -> (
                 match lvalue_base lv with
                 | Some v -> v :: acc
                 | None -> acc)
             | Call (_, args) ->
                 List.filter_map
                   (function Var v -> Some v | _ -> None)
                   args
                 @ acc
             | _ -> acc)
           [] e)
       exprs)

(** Run the pass over every function.  Returns the rewritten program
    and the number of rewrites (elisions + hoists); 0 means the
    program is untouched.  Clause-inference diagnostics for the whole
    program land in [clause.*] counters as a side effect. *)
let transform ?obs (prog : program) =
  (match obs with
  | Some _ -> ignore (Analysis.Clause_infer.diagnose ?obs prog)
  | None -> ());
  let changed = ref 0 in
  let prog' =
    map_funcs
      (fun f ->
        if not (has_offload f.body) then f
        else if explicit_device f.body then begin
          (match obs with
          | Some o -> Obs.incr o "residency.refuse.explicit_device"
          | None -> ());
          f
        end
        else
          let ctx =
            { obs; commit = true; escaped = escaped_vars f.body; changed }
          in
          let body', _ = walk_block ctx [] f.body in
          { f with body = body' })
      prog
  in
  (prog', !changed)

(** Render the residency/clause counters of an [Obs.t] as the
    [--residency --report] table. *)
let report obs =
  let rows =
    List.filter
      (fun (k, _) ->
        let pre p =
          String.length k >= String.length p
          && String.equal (String.sub k 0 (String.length p)) p
        in
        pre "residency." || pre "clause.")
      (Obs.counters obs)
  in
  if rows = [] then "residency: nothing elided, nothing refused"
  else
    let width =
      List.fold_left (fun w (k, _) -> max w (String.length k)) 0 rows
    in
    rows
    |> List.map (fun (k, v) -> Printf.sprintf "%-*s %6d" width k v)
    |> String.concat "\n"
