(** Inter-offload data residency: whole-program transfer elimination.

    Tracks which array sections are device-resident (shadow equal to
    host) across consecutive offloads, elides [in]/[inout] transfers
    whose exact section is already resident (rebinding through
    [nocopy]; an elided [inout] keeps its copy-back by moving to
    [out]), and hoists loop-invariant transfers out of canonical
    sequential loops.  Residency dies on host writes, calls, clause
    re-mentions with different sections, and — at runtime — device
    resets, whose re-transfer cost the engine charges via
    [Task.reset_xfer_s].  Under-declared pragmas (per
    {!Analysis.Clause_infer}), aliased sections, escaped arrays,
    signalled/impure specs and explicit device management ([into()],
    [translate], [mic_malloc]) refuse the optimization, each with a
    counted reason. *)

val transform :
  ?obs:Obs.t -> Minic.Ast.program -> Minic.Ast.program * int
(** Rewrite every function; the [int] is the number of rewrites
    (elided clauses + hoisted transfers), [0] when untouched.
    Counters land under [residency.*] and [clause.*]. *)

val report : Obs.t -> string
(** Render the [residency.*]/[clause.*] counters as the
    [compc --residency --report] table. *)
