(** Smart constructors with constant folding.  Used both by the
    analyses (to normalize affine offsets) and by the transformations
    (so generated source stays readable).

    Folds that {e delete} an operand ([0 * e -> 0], [e - e -> 0], the
    equal-operand [imin]/[imax] cases) only fire when the deleted
    expression is proven free of calls, loads through pointers, and
    trapping [Div]/[Mod] — [Ast.pure].  Identities that keep their
    operand ([e + 0 -> e], [e * 1 -> e], [e / 1 -> e]) need no guard:
    nothing observable is removed. *)

open Minic.Ast

let rec add a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> Int_lit (x + y)
  | Int_lit 0, e | e, Int_lit 0 -> e
  | Binop (Add, e, Int_lit x), Int_lit y -> add e (Int_lit (x + y))
  | _ -> Binop (Add, a, b)

let sub a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> Int_lit (x - y)
  | e, Int_lit 0 -> e
  | Binop (Add, e, Int_lit x), Int_lit y -> add e (Int_lit (x - y))
  | _ ->
      if equal_expr a b && pure a then Int_lit 0 else Binop (Sub, a, b)

let mul a b =
  match (a, b) with
  | Int_lit x, Int_lit y -> Int_lit (x * y)
  | Int_lit 0, e | e, Int_lit 0 when pure e -> Int_lit 0
  | Int_lit 1, e | e, Int_lit 1 -> e
  | _ -> Binop (Mul, a, b)

let div a b =
  match (a, b) with
  | Int_lit x, Int_lit y when y <> 0 && x mod y = 0 -> Int_lit (x / y)
  | e, Int_lit 1 -> e
  | _ -> Binop (Div, a, b)

let modulo a b =
  match (a, b) with
  | Int_lit x, Int_lit y when y <> 0 -> Int_lit (x mod y)
  | _ -> Binop (Mod, a, b)

(** Fold an expression of integer constants to a value, if closed. *)
let rec const_int = function
  | Int_lit n -> Some n
  | Unop (Neg, e) -> Option.map (fun n -> -n) (const_int e)
  | Binop (op, a, b) -> (
      match (const_int a, const_int b) with
      | Some x, Some y -> (
          match op with
          | Add -> Some (x + y)
          | Sub -> Some (x - y)
          | Mul -> Some (x * y)
          | Div -> if y = 0 then None else Some (x / y)
          | Mod -> if y = 0 then None else Some (x mod y)
          | _ -> None)
      | _ -> None)
  | _ -> None

(* fold the [imin]/[imax] builtins the transformations generate:
   constants, equal operands, and nested min/max against the same
   bound.  Each fold drops one evaluation of an expression that also
   survives in the result, so a no-call guard is enough: a call-free
   duplicate evaluates to the same value (and traps iff the kept copy
   traps), while a call may print or allocate a second time. *)
let minmax name a b =
  let pick = if String.equal name "imin" then min else max in
  match (a, b) with
  | Int_lit x, Int_lit y -> Int_lit (pick x y)
  | _ when equal_expr a b && not (has_call a) -> a
  | _, Call (name', [ a'; e ])
    when String.equal name name' && equal_expr a a' && not (has_call a) ->
      Call (name, [ a; e ])
  | _, Call (name', [ e; a' ])
    when String.equal name name' && equal_expr a a' && not (has_call a) ->
      Call (name, [ a; e ])
  | Call (name', [ a'; e ]), _
    when String.equal name name' && equal_expr b a' && not (has_call b) ->
      Call (name, [ b; e ])
  | _ -> Call (name, [ a; b ])

(** Recursively simplify integer arithmetic in an expression. *)
let rec expr e =
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
  | Binop (Add, a, b) -> add (expr a) (expr b)
  | Binop (Sub, a, b) -> sub (expr a) (expr b)
  | Binop (Mul, a, b) -> mul (expr a) (expr b)
  | Binop (Div, a, b) -> div (expr a) (expr b)
  | Binop (Mod, a, b) -> modulo (expr a) (expr b)
  | Binop (op, a, b) -> Binop (op, expr a, expr b)
  | Unop (op, a) -> Unop (op, expr a)
  | Index (a, i) -> Index (expr a, expr i)
  | Field (a, f) -> Field (expr a, f)
  | Arrow (a, f) -> Arrow (expr a, f)
  | Deref a -> Deref (expr a)
  | Addr a -> Addr (expr a)
  | Call (("imin" | "imax") as name, [ a; b ]) -> minmax name (expr a) (expr b)
  | Call (f, args) -> Call (f, List.map expr args)
  | Cast (t, a) -> Cast (t, expr a)

(** [mentions name e]: does [e] read variable [name]? *)
let mentions name e = List.mem name (expr_vars e)
