(** Identification of offloadable / offloaded code regions in a
    program — the part of Apricot that finds the parallel loops worth
    shipping to the coprocessor. *)

open Minic.Ast

type region = {
  func : string;
  ordinal : int;  (** position among regions of the same function *)
  loop : for_loop;
  spec : offload_spec option;
      (** [Some] when the loop is already wrapped in [#pragma offload] *)
  parallel_pragma : bool;  (** has [#pragma omp parallel for] *)
}

(* peel pragmas in front of a for loop *)
let rec peel pragmas stmt =
  match stmt with
  | Spragma (p, s) -> peel (p :: pragmas) s
  | Sfor fl -> Some (List.rev pragmas, fl)
  | _ -> None

let of_func (f : func) =
  let counter = ref 0 in
  let regions = ref [] in
  (* Explicit recursion rather than [fold_stmts]: once a pragma chain
     is recognized as a region, its inner pragma nodes must not be
     reported as separate (spec-less) regions — descend straight into
     the loop body instead. *)
  let rec visit_stmt stmt =
    match peel [] stmt with
    | Some (pragmas, fl) when pragmas <> [] ->
        let spec =
          List.find_map
            (function Offload s -> Some s | _ -> None)
            pragmas
        in
        let parallel_pragma = List.mem Omp_parallel_for pragmas in
        if parallel_pragma || Option.is_some spec then begin
          let r =
            { func = f.fname; ordinal = !counter; loop = fl; spec;
              parallel_pragma }
          in
          incr counter;
          regions := r :: !regions
        end;
        visit_block fl.body
    | _ -> (
        match stmt with
        | Sif (_, b1, b2) ->
            visit_block b1;
            visit_block b2
        | Swhile (_, b) -> visit_block b
        | Sfor fl -> visit_block fl.body
        | Sblock b -> visit_block b
        | Spragma (_, s) -> visit_stmt s
        | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
            ())
  and visit_block b = List.iter visit_stmt b in
  visit_block f.body;
  List.rev !regions

(** All offload regions (existing or candidate) of a program. *)
let of_program prog =
  List.concat_map
    (function Gfunc f -> of_func f | Gstruct _ | Gvar _ -> [])
    prog

(** Candidate regions: parallel loops that are not yet offloaded but
    are provably parallel and therefore offloadable. *)
let candidates prog =
  List.filter
    (fun r ->
      r.parallel_pragma && Option.is_none r.spec && Depend.is_parallel r.loop)
    (of_program prog)

(** Regions already carrying an [#pragma offload]. *)
let offloaded prog = List.filter (fun r -> Option.is_some r.spec) (of_program prog)

(** {1 Section bounds}

    Exact element intervals for partial array sections, used by clause
    inference and the residency pass.  All intervals are {e half-open}
    ([\[b_lo, b_hi)]), which makes the empty/adjacent cases
    unambiguous: [x\[0:4\]] and [x\[4:4\]] are adjacent, not
    overlapping, and a zero-length section overlaps nothing. *)

type bounds = { b_lo : int; b_hi : int }

let is_empty b = b.b_hi <= b.b_lo

(** The element interval of a section, when its start and length are
    compile-time constants.  [None] for symbolic bounds or a negative
    length (a runtime error anyway). *)
let section_bounds (s : section) =
  match (Simplify.const_int s.start, Simplify.const_int s.len) with
  | Some start, Some len when len >= 0 ->
      Some { b_lo = start; b_hi = start + len }
  | _ -> None

(** [covers ~outer ~inner]: every element of [inner] is in [outer].
    An empty [inner] is covered by anything. *)
let covers ~outer ~inner =
  is_empty inner || (outer.b_lo <= inner.b_lo && inner.b_hi <= outer.b_hi)

(** Two intervals share at least one element.  Empty intervals overlap
    nothing; adjacent intervals ([x\[0:4\]] / [x\[4:4\]]) do not
    overlap. *)
let overlaps a b = max a.b_lo b.b_lo < min a.b_hi b.b_hi

(** The convex hull of elements touched by [coeff * i + offset] as [i]
    runs over [for (i = lo; i < hi; i += step)].  Exact for
    [|coeff| <= 1]; for larger strides it over-approximates (the hull
    includes skipped elements), which is sound for "declared section
    must cover every touched element" checks.  [None] when [step <= 0]
    (non-canonical loop). *)
let affine_touched ~lo ~hi ~step ~coeff ~offset =
  if step <= 0 then None
  else if lo >= hi then Some { b_lo = 0; b_hi = 0 }
  else
    let last = lo + (step * ((hi - 1 - lo) / step)) in
    let v_first = (coeff * lo) + offset in
    let v_last = (coeff * last) + offset in
    Some
      {
        b_lo = min v_first v_last;
        b_hi = max v_first v_last + 1;
      }
