(** Inference of minimal offload data clauses from access
    classification: derives the [in]/[out]/[inout] set and element
    sections each offload actually needs, and flags where the pragma
    over- or under-declares.  The residency pass refuses to elide
    transfers for under-declared offloads; [compc --residency
    --report] surfaces the counts. *)

type clause = Cin | Cout | Cinout

val clause_name : clause -> string

type inferred = {
  i_arr : string;
  i_clause : clause;
  i_bounds : Offload_regions.bounds option;
      (** touched element hull, when indices are affine and loop
          bounds constant *)
  i_exact : bool;
      (** writes cover the hull exactly (unguarded, |coeff| <= 1) —
          only then is a pure [out] clause safe *)
}

type diag =
  | Under_declared of { arr : string; reason : string }
  | Over_declared of { arr : string; reason : string }

val diag_arr : diag -> string
val pp_diag : diag -> string
val under : diag -> bool

val infer : Minic.Ast.for_loop -> inferred list
(** Minimal clauses for a canonical offloaded loop. *)

val infer_body : Minic.Ast.block -> inferred list
(** Directions-only inference for an arbitrary offload body. *)

val infer_stmt : Minic.Ast.stmt -> inferred list
(** [infer] when the statement is (a pragma chain over) a canonical
    loop, [infer_body] otherwise. *)

val diagnose_offload :
  Minic.Ast.offload_spec -> inferred list -> diag list
(** Compare declared against inferred clauses for one offload. *)

val diagnose :
  ?obs:Obs.t -> Minic.Ast.program -> (string * diag) list
(** Diagnose every offloaded region, tagged with its function name;
    counts land in [clause.regions] / [clause.under_declared] /
    [clause.over_declared]. *)

val minimal_spec :
  Minic.Ast.offload_spec -> inferred list -> Minic.Ast.offload_spec
(** Rebuild a spec with the inferred minimal clause set. *)
