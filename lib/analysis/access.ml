(** Classification of array accesses inside a (candidate) parallel loop.

    This is the analysis behind both the data-streaming legality check
    (all accesses affine, Section III-A) and the regularization
    optimization's pattern detection (Section IV): gathers [A[B[i]]],
    non-unit strides [A[k*i]], guarded accesses, and the position of
    irregular accesses within the loop body (for loop splitting). *)

open Minic.Ast

type kind =
  | Affine of Affine.t  (** [A[a*i + b]] *)
  | Gather of { via : string; via_index : Affine.t }
      (** [A[B[e]]] with [B[e]] itself affine — the reordering pattern *)
  | Opaque  (** anything else involving the loop index *)

type direction = Read | Write

type t = {
  arr : string;
  index : expr;
  kind : kind;
  dir : direction;
  guarded : bool;  (** under a conditional inside the loop body *)
}

exception Unknown_array of string

let is_affine a = match a.kind with Affine _ -> true | _ -> false
let is_gather a = match a.kind with Gather _ -> true | _ -> false

let classify_index ~index e =
  match Affine.of_expr ~index e with
  | Some aff -> Affine aff
  | None -> (
      match e with
      | Index (Var via, inner) -> (
          match Affine.of_expr ~index inner with
          | Some via_index -> Gather { via; via_index }
          | None -> Opaque)
      | _ -> Opaque)

(* Collect [arr[index]] accesses in an expression.  [dir] applies to the
   outermost access of an lvalue; nested index expressions are reads. *)
let rec of_expr ~index ~guarded ~dir acc e =
  match e with
  | Index (Var arr, ie) ->
      let access =
        { arr; index = ie; kind = classify_index ~index ie; dir; guarded }
      in
      of_expr ~index ~guarded ~dir:Read (access :: acc) ie
  | Index (a, ie) ->
      let acc = of_expr ~index ~guarded ~dir acc a in
      of_expr ~index ~guarded ~dir:Read acc ie
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> acc
  | Field (a, _) | Arrow (a, _) | Deref a | Addr a | Unop (_, a) | Cast (_, a)
    ->
      of_expr ~index ~guarded ~dir acc a
  | Binop (_, a, b) ->
      let acc = of_expr ~index ~guarded ~dir:Read acc a in
      of_expr ~index ~guarded ~dir:Read acc b
  | Call (_, args) ->
      List.fold_left (of_expr ~index ~guarded ~dir:Read) acc args

let rec of_stmt ~index ~guarded acc stmt =
  match stmt with
  | Sexpr e -> of_expr ~index ~guarded ~dir:Read acc e
  | Sassign (lv, rv) ->
      let acc = of_expr ~index ~guarded ~dir:Write acc lv in
      of_expr ~index ~guarded ~dir:Read acc rv
  | Sdecl (_, _, Some e) -> of_expr ~index ~guarded ~dir:Read acc e
  | Sdecl (_, _, None) | Sbreak | Scontinue | Sreturn None -> acc
  | Sreturn (Some e) -> of_expr ~index ~guarded ~dir:Read acc e
  | Sif (c, b1, b2) ->
      let acc = of_expr ~index ~guarded ~dir:Read acc c in
      let acc = of_block ~index ~guarded:true acc b1 in
      of_block ~index ~guarded:true acc b2
  | Swhile (c, b) ->
      let acc = of_expr ~index ~guarded ~dir:Read acc c in
      of_block ~index ~guarded acc b
  | Sfor { lo; hi; step; body; _ } ->
      let acc = of_expr ~index ~guarded ~dir:Read acc lo in
      let acc = of_expr ~index ~guarded ~dir:Read acc hi in
      let acc = of_expr ~index ~guarded ~dir:Read acc step in
      of_block ~index ~guarded acc body
  | Sblock b -> of_block ~index ~guarded acc b
  | Spragma (_, s) -> of_stmt ~index ~guarded acc s

and of_block ~index ~guarded acc block =
  List.fold_left (of_stmt ~index ~guarded) acc block

(** All array accesses of a loop, in source order.

    Affine offsets must be invariant for the whole loop: an offset that
    reads a variable declared inside the body (e.g. an inner loop index
    in [a[i*8 + j]], or a data-dependent cursor) cannot be evaluated
    when slicing transfers, so such accesses are demoted to
    {!Opaque}. *)
let of_loop (fl : for_loop) =
  let raw = of_block ~index:fl.index ~guarded:false [] fl.body |> List.rev in
  let decls = (Liveness.of_block Liveness.empty fl.body).Liveness.decls in
  let mentions_local e =
    List.exists (fun v -> Liveness.SS.mem v decls) (expr_vars e)
  in
  let demote a =
    match a.kind with
    | Affine aff when mentions_local aff.Affine.offset ->
        { a with kind = Opaque }
    | Gather { via_index; _ } when mentions_local via_index.Affine.offset ->
        { a with kind = Opaque }
    | Affine _ | Gather _ | Opaque -> a
  in
  List.map demote raw

(** Arrays accessed by the loop, deduplicated, in first-access order. *)
let arrays accesses =
  List.fold_left
    (fun seen a -> if List.mem a.arr seen then seen else a.arr :: seen)
    [] accesses
  |> List.rev

(** The streaming legality check: every access affine in the loop
    index.  (Loop-invariant indices count as affine with coefficient 0;
    the streaming transform transfers those arrays whole, up-front.) *)
let all_affine accesses = List.for_all is_affine accesses

(** Accesses that defeat streaming/vectorization. *)
let irregular accesses =
  List.filter (fun a -> not (is_affine a)) accesses

(** Per-array summary used to build data clauses and block slices. *)
type summary = {
  name : string;
  reads : bool;
  writes : bool;
  guarded_any : bool;
  kinds : kind list;
  max_coeff : int option;
      (** max |coefficient| over affine accesses; None when any access
          is non-affine *)
  offsets : expr list;  (** affine offsets, for extent computation *)
}

let summarize accesses =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      let s =
        match Hashtbl.find_opt tbl a.arr with
        | Some s -> s
        | None ->
            {
              name = a.arr;
              reads = false;
              writes = false;
              guarded_any = false;
              kinds = [];
              max_coeff = Some 0;
              offsets = [];
            }
      in
      let s =
        {
          s with
          reads = s.reads || a.dir = Read;
          writes = s.writes || a.dir = Write;
          guarded_any = s.guarded_any || a.guarded;
          kinds = a.kind :: s.kinds;
          max_coeff =
            (match (a.kind, s.max_coeff) with
            | Affine aff, Some m -> Some (max m (abs aff.coeff))
            | _ -> None);
          offsets =
            (match a.kind with
            | Affine aff -> aff.offset :: s.offsets
            | _ -> s.offsets);
        }
      in
      Hashtbl.replace tbl a.arr s)
    accesses;
  (* preserve first-access order; a miss would otherwise escape as a
     bare [Not_found] with no hint of which array was involved *)
  List.map
    (fun arr ->
      match Hashtbl.find_opt tbl arr with
      | Some s -> s
      | None -> raise (Unknown_array arr))
    (arrays accesses)
