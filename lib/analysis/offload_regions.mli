(** Identification of offloadable / offloaded code regions — the part
    of Apricot that finds the parallel loops worth shipping to the
    coprocessor. *)

type region = {
  func : string;
  ordinal : int;  (** position among regions of the same function *)
  loop : Minic.Ast.for_loop;
  spec : Minic.Ast.offload_spec option;
      (** [Some] when the loop already carries [#pragma offload] *)
  parallel_pragma : bool;  (** has [#pragma omp parallel for] *)
}

val peel :
  Minic.Ast.pragma list ->
  Minic.Ast.stmt ->
  (Minic.Ast.pragma list * Minic.Ast.for_loop) option
(** Strip the pragma chain in front of a [for] loop, if any. *)

val of_func : Minic.Ast.func -> region list
val of_program : Minic.Ast.program -> region list
(** All regions, including loops nested inside other regions' bodies
    (but never double-reporting a pragma chain). *)

val candidates : Minic.Ast.program -> region list
(** Parallel loops not yet offloaded that are provably parallel:
    targets for {!Transforms.Insert_offload}. *)

val offloaded : Minic.Ast.program -> region list
(** Regions already carrying an [#pragma offload]. *)

(** {1 Section bounds}

    Half-open element intervals [\[b_lo, b_hi)] for partial array
    sections: the empty/adjacent cases are unambiguous ([x\[0:4\]] and
    [x\[4:4\]] are adjacent, not overlapping), which clause inference
    and the residency pass depend on. *)

type bounds = { b_lo : int; b_hi : int }

val is_empty : bounds -> bool

val section_bounds : Minic.Ast.section -> bounds option
(** The element interval of a section when start and length are
    compile-time constants; [None] for symbolic or negative bounds. *)

val covers : outer:bounds -> inner:bounds -> bool
(** Every element of [inner] lies in [outer]; empty [inner] always. *)

val overlaps : bounds -> bounds -> bool
(** The intervals share at least one element; empty never overlaps. *)

val affine_touched :
  lo:int -> hi:int -> step:int -> coeff:int -> offset:int -> bounds option
(** Convex hull of [coeff * i + offset] for
    [for (i = lo; i < hi; i += step)] — exact for [|coeff| <= 1],
    an over-approximation for larger strides; [None] if [step <= 0]. *)
