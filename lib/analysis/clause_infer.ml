(** Inference of minimal offload data clauses from access
    classification.

    For each offload region, the access analysis ({!Access}) already
    knows which arrays the body touches, in which direction, and —
    when the indices are affine with constant loop bounds — exactly
    which elements.  This pass turns that into the minimal
    [in]/[out]/[inout] clause set and compares it against what the
    pragma declares, flagging over-declarations (traffic the program
    pays for nothing) and under-declarations (missing or
    wrong-direction clauses, sections narrower than the touched
    range).  The residency pass refuses to elide transfers for
    under-declared offloads, and [compc --residency --report] surfaces
    the counts. *)

open Minic.Ast

type clause = Cin | Cout | Cinout

let clause_name = function Cin -> "in" | Cout -> "out" | Cinout -> "inout"

type inferred = {
  i_arr : string;
  i_clause : clause;
  i_bounds : Offload_regions.bounds option;
      (** touched element hull, when index affine + bounds constant *)
  i_exact : bool;
      (** writes cover the hull exactly: unguarded, |coeff| <= 1 —
          only then is a pure [out] clause safe (a partial write under
          [out] copies undefined device cells back over host data) *)
}

type diag =
  | Under_declared of { arr : string; reason : string }
  | Over_declared of { arr : string; reason : string }

let diag_arr = function
  | Under_declared { arr; _ } | Over_declared { arr; _ } -> arr

let pp_diag = function
  | Under_declared { arr; reason } ->
      Printf.sprintf "under-declared %s: %s" arr reason
  | Over_declared { arr; reason } ->
      Printf.sprintf "over-declared %s: %s" arr reason

(* The touched hull of one array's accesses under constant loop
   bounds: the union of per-access affine hulls, [None] as soon as any
   access is non-affine or has a symbolic offset. *)
let touched_bounds ~lo ~hi ~step accesses =
  let hull_of (a : Access.t) =
    match a.Access.kind with
    | Access.Affine { coeff; offset } -> (
        match Simplify.const_int offset with
        | None -> None
        | Some offset ->
            Offload_regions.affine_touched ~lo ~hi ~step ~coeff ~offset)
    | Access.Gather _ | Access.Opaque -> None
  in
  match accesses with
  | [] -> None
  | first :: rest ->
      List.fold_left
        (fun acc a ->
          match (acc, hull_of a) with
          | Some (s : Offload_regions.bounds), Some (b : Offload_regions.bounds)
            ->
              Some
                {
                  Offload_regions.b_lo = min s.b_lo b.b_lo;
                  b_hi = max s.b_hi b.b_hi;
                }
          | _ -> None)
        (hull_of first) rest

let infer_of_accesses ~bounds_of accesses =
  let summaries = Access.summarize accesses in
  List.map
    (fun (s : Access.summary) ->
      let mine =
        List.filter (fun (a : Access.t) -> a.Access.arr = s.name) accesses
      in
      let writes_exact =
        List.for_all
          (fun (a : Access.t) ->
            a.Access.dir = Access.Read
            || (not a.Access.guarded)
               &&
               match a.Access.kind with
               | Access.Affine { coeff; _ } -> abs coeff <= 1
               | Access.Gather _ | Access.Opaque -> false)
          mine
      in
      let i_clause =
        if s.writes && (not s.reads) && writes_exact then Cout
        else if s.writes then Cinout
        else Cin
      in
      {
        i_arr = s.name;
        i_clause;
        i_bounds = bounds_of mine;
        i_exact = writes_exact;
      })
    summaries

(** Minimal clauses for a canonical offloaded loop. *)
let infer (fl : for_loop) =
  let accesses = Access.of_loop fl in
  let bounds_of =
    match
      ( Simplify.const_int fl.lo,
        Simplify.const_int fl.hi,
        Simplify.const_int fl.step )
    with
    | Some lo, Some hi, Some step ->
        fun acc -> touched_bounds ~lo ~hi ~step acc
    | _ -> fun _ -> None
  in
  infer_of_accesses ~bounds_of accesses

(** Minimal clauses for an arbitrary offload body (no loop structure:
    directions only, no element bounds, writes never provably
    exact). *)
let infer_body (b : block) =
  (* "\000" cannot be a source identifier, so no access classifies as
     affine-in-the-index; only directions survive, which is all a
     non-loop body offers anyway *)
  let accesses =
    Access.of_block ~index:"\000" ~guarded:false [] b |> List.rev
  in
  List.map
    (fun i -> { i with i_exact = false; i_bounds = None })
    (infer_of_accesses ~bounds_of:(fun _ -> None) accesses)

(** The clause set an offload body implies for the pragma wrapping it:
    [infer] when the body is (a pragma chain over) a canonical loop,
    directions-only otherwise. *)
let infer_stmt (stmt : stmt) =
  match Offload_regions.peel [] stmt with
  | Some (_, fl) -> infer fl
  | None -> infer_body [ stmt ]

(* Declared clauses of a spec, with their sections; [into()] sections
   address explicitly-managed device buffers and are outside this
   analysis.  [nocopy] arrays are declared device-resident: reads are
   covered, writes are not copied back. *)
let declared_clauses (spec : offload_spec) =
  let plain c secs =
    List.filter_map
      (fun (s : section) ->
        if Option.is_some s.into then None else Some (s.arr, (c, Some s)))
      secs
  in
  plain Cin spec.ins @ plain Cinout spec.inouts @ plain Cout spec.outs
  @ List.map (fun n -> (n, (Cin, None))) spec.nocopy

(** Compare declared against inferred clauses for one offload. *)
let diagnose_offload (spec : offload_spec) (inf : inferred list) =
  let declared = declared_clauses spec in
  let diags = ref [] in
  let flag d = diags := d :: !diags in
  List.iter
    (fun i ->
      match List.assoc_opt i.i_arr declared with
      | None ->
          flag
            (Under_declared
               { arr = i.i_arr; reason = "accessed but not in any clause" })
      | Some (c, sec) -> (
          (match (i.i_clause, c) with
          | (Cout | Cinout), Cin ->
              flag
                (Under_declared
                   {
                     arr = i.i_arr;
                     reason = "written but declared " ^ clause_name c ^ "()";
                   })
          | (Cin | Cinout), Cout ->
              flag
                (Under_declared
                   { arr = i.i_arr; reason = "read but declared out()" })
          | Cout, Cout when not i.i_exact ->
              flag
                (Under_declared
                   {
                     arr = i.i_arr;
                     reason = "partially written but declared out()";
                   })
          | Cin, Cinout ->
              flag
                (Over_declared
                   { arr = i.i_arr; reason = "never written: inout() could be in()" })
          | Cout, Cinout when i.i_exact ->
              flag
                (Over_declared
                   { arr = i.i_arr; reason = "never read: inout() could be out()" })
          | _ -> ());
          match (sec, i.i_bounds) with
          | Some sec, Some touched -> (
              match Offload_regions.section_bounds sec with
              | Some outer
                when not (Offload_regions.covers ~outer ~inner:touched) ->
                  flag
                    (Under_declared
                       {
                         arr = i.i_arr;
                         reason =
                           Printf.sprintf
                             "section [%d:%d] narrower than touched [%d:%d]"
                             outer.Offload_regions.b_lo
                             (outer.Offload_regions.b_hi
                             - outer.Offload_regions.b_lo)
                             touched.Offload_regions.b_lo
                             (touched.Offload_regions.b_hi
                             - touched.Offload_regions.b_lo);
                       })
              | _ -> ())
          | _ -> ()))
    inf;
  List.iter
    (fun (arr, (c, _)) ->
      if not (List.exists (fun i -> i.i_arr = arr) inf) then
        flag
          (Over_declared
             {
               arr;
               reason = clause_name c ^ "() clause on array never accessed";
             }))
    declared;
  List.rev !diags

let under = function Under_declared _ -> true | Over_declared _ -> false

(** Diagnose every offloaded region of a program, counting per-kind
    via [obs] ([clause.under_declared] / [clause.over_declared] /
    [clause.regions]). *)
let diagnose ?obs prog =
  let bump n k =
    match obs with None -> () | Some o -> Obs.add o n k
  in
  let results =
    List.concat_map
      (fun (r : Offload_regions.region) ->
        match r.spec with
        | None -> []
        | Some spec ->
            let diags = diagnose_offload spec (infer r.loop) in
            bump "clause.regions" 1;
            bump "clause.under_declared"
              (List.length (List.filter under diags));
            bump "clause.over_declared"
              (List.length
                 (List.filter (fun d -> not (under d)) diags));
            List.map (fun d -> (r.func, d)) diags)
      (Offload_regions.offloaded prog)
  in
  results

(** Rebuild a spec with the inferred minimal clause set.  Sections come
    from the inferred hull when constant, else from whichever section
    the original spec declared for that array; arrays the analysis
    cannot bound and the spec never declared keep the program
    honest by staying un-clause'd (the diagnosis already flagged
    them). *)
let minimal_spec (spec : offload_spec) (inf : inferred list) =
  let declared = declared_clauses spec in
  let section_for i =
    match i.i_bounds with
    | Some b when not (Offload_regions.is_empty b) ->
        Some
          (section ~arr:i.i_arr
             ~start:(int_ b.Offload_regions.b_lo)
             ~len:(int_ (b.Offload_regions.b_hi - b.Offload_regions.b_lo))
             ())
    | _ -> (
        match List.assoc_opt i.i_arr declared with
        | Some (_, Some s) -> Some s
        | _ -> None)
  in
  let pick c =
    List.filter_map
      (fun i -> if i.i_clause = c then section_for i else None)
      inf
  in
  {
    spec with
    ins = pick Cin;
    outs = pick Cout;
    inouts = pick Cinout;
    nocopy = [];
  }
