(** Classification of array accesses inside a (candidate) parallel
    loop: the analysis behind the data-streaming legality check (all
    accesses affine, Section III-A) and the regularization pattern
    detection (Section IV). *)

type kind =
  | Affine of Affine.t  (** [A[a*i + b]] with loop-invariant [b] *)
  | Gather of { via : string; via_index : Affine.t }
      (** [A[B[e]]] with [B[e]] itself affine — the reordering pattern *)
  | Opaque  (** anything else involving the loop index *)

type direction = Read | Write

type t = {
  arr : string;
  index : Minic.Ast.expr;
  kind : kind;
  dir : direction;
  guarded : bool;  (** under a conditional inside the loop body *)
}

exception Unknown_array of string
(** Raised by {!summarize} on an array with no recorded access — the
    analysis-level analogue of the interpreter's
    ["clause on unbound variable"] runtime error, instead of a bare
    [Not_found] that names nothing. *)

val is_affine : t -> bool
val is_gather : t -> bool

val classify_index : index:string -> Minic.Ast.expr -> kind

val of_block :
  index:string -> guarded:bool -> t list -> Minic.Ast.block -> t list
(** Accumulate accesses of a block (raw, without the locality
    demotion below). *)

val of_loop : Minic.Ast.for_loop -> t list
(** All array accesses of a loop, in source order.  Affine offsets
    that read variables declared inside the body (inner loop indexes,
    data-dependent cursors) are demoted to {!Opaque}, since their
    value is unavailable when slicing transfers. *)

val arrays : t list -> string list
(** Accessed arrays, deduplicated, in first-access order. *)

val all_affine : t list -> bool
(** The streaming legality check. *)

val irregular : t list -> t list

(** Per-array summary used to build data clauses and block slices. *)
type summary = {
  name : string;
  reads : bool;
  writes : bool;
  guarded_any : bool;
  kinds : kind list;
  max_coeff : int option;
      (** max |coefficient| over affine accesses; [None] when any
          access is non-affine *)
  offsets : Minic.Ast.expr list;  (** affine offsets, for extents *)
}

val summarize : t list -> summary list
