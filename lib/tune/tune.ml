(** Auto-tuned offload configuration search.

    The simulator exposes a per-workload configuration space — how
    many devices to spread blocks over, how many streams per device,
    how many blocks to stream each offload in — and the best point
    shifts with the workload's transfer/compute balance and with the
    fleet's heterogeneity.  This module searches that space:

    - {e exhaustive} for small grids, {e hill} (seeded coordinate
      descent) for large ones, {!Auto} picking by grid size;
    - every candidate is costed by replaying the workload's event
      trace through {!Runtime.Migrate} on the candidate machine;
    - evaluations fan out over {!Parallel}; results are keyed and
      merged in submission order, so the winner is bit-identical at
      any [--jobs] width.  Ties break by lexicographic config order
      ([devices], [streams], [nblocks]) — never by timing;
    - a memo table (plus an optional cross-search {!Cache}) answers
      re-visited points without re-simulation, and a caller-supplied
      [keyfn] can alias configs that provably share a trace (two
      [nblocks] the pipeline lowers identically), so the search never
      re-simulates a visited point.

    Search traffic lands in [tune.explored] / [tune.pruned]; the
    shared cache counts [tune.cache.hits] / [tune.cache.misses]. *)

open Machine

(** One point of the space.  The order of fields is the tie-break
    order. *)
type config = { devices : int; streams : int; nblocks : int }

let compare_config a b =
  compare (a.devices, a.streams, a.nblocks) (b.devices, b.streams, b.nblocks)

let config_to_string c =
  Printf.sprintf "devices=%d,streams=%d,nblocks=%d" c.devices c.streams
    c.nblocks

(** The point every speedup is measured against: the classic one-MIC
    machine at the pipeline's default block count. *)
let default_config =
  { devices = 1; streams = 1; nblocks = Comp.default_nblocks }

type space = {
  sp_devices : int list;
  sp_streams : int list;
  sp_nblocks : int list;
}

(** The paper's grid (10, 20, 40, 50) extended downward — small block
    counts win when the launch overhead dominates — and to the powers
    of two between. *)
let default_nblocks_candidates = [ 1; 2; 4; 5; 8; 10; 16; 20; 32; 40; 50 ]

let space ?(nblocks = default_nblocks_candidates) ~max_devices ~max_streams ()
    =
  let clamp n = max 1 (min Transforms.Block_size.max_blocks n) in
  {
    sp_devices = List.init (max 1 max_devices) (fun i -> i + 1);
    sp_streams = List.init (max 1 max_streams) (fun i -> i + 1);
    (* the default block count always competes, so the tuned point can
       never lose to the untuned one *)
    sp_nblocks =
      List.sort_uniq compare
        (Comp.default_nblocks :: List.map clamp nblocks);
  }

let size sp =
  List.length sp.sp_devices * List.length sp.sp_streams
  * List.length sp.sp_nblocks

type mode = Auto | Exhaustive | Hill

(* grids up to this size are searched exhaustively under [Auto] *)
let exhaustive_threshold = 600

(** Cross-search memo: (workload, machine, trace-key) -> makespan.
    Distinct from the serve [Source_cache]: that one memoizes front-end
    compilation keyed by source text; this one memoizes {e simulator
    evaluations} keyed by what the simulator sees.  Lives as long as
    the caller keeps it (one [compc tune] invocation, one bench
    sweep). *)
module Cache = struct
  type t = { tbl : (string, float) Hashtbl.t; obs : Obs.t option }

  let create ?obs () = { tbl = Hashtbl.create 256; obs }
  let bump c name = match c.obs with None -> () | Some o -> Obs.incr o name

  let find c k =
    match Hashtbl.find_opt c.tbl k with
    | Some v ->
        bump c "tune.cache.hits";
        Some v
    | None ->
        bump c "tune.cache.misses";
        None

  let add c k v = Hashtbl.replace c.tbl k v
  let size c = Hashtbl.length c.tbl
end

type point = { pt_config : config; pt_makespan : float }

type report = {
  r_default : point;
  r_best : point;
  r_explored : int;  (** simulator evaluations actually run *)
  r_pruned : int;  (** candidates answered without simulation *)
  r_points : point list;  (** every evaluated point, in config order *)
}

(** [default / best], guarded for degenerate zero-makespan traces. *)
let speedup r =
  if r.r_best.pt_makespan > 0. then
    r.r_default.pt_makespan /. r.r_best.pt_makespan
  else 1.0

let search ?jobs ?obs ?cache ?(cache_prefix = "") ?(mode = Auto)
    ?(seeds = []) (sp : space) ~(eval : config -> float)
    ~(keyfn : config -> string) : report =
  let bump ?(by = 1) name =
    if by > 0 then
      match obs with None -> () | Some o -> Obs.incr ~by o name
  in
  let explored = ref 0 and pruned = ref 0 in
  (* within-search memo, keyed by [keyfn] *)
  let memo : (string, float) Hashtbl.t = Hashtbl.create 64 in
  let lookup k =
    match Hashtbl.find_opt memo k with
    | Some v -> Some v
    | None -> (
        match cache with
        | None -> None
        | Some c -> (
            match Cache.find c (cache_prefix ^ k) with
            | Some v ->
                Hashtbl.add memo k v;
                Some v
            | None -> None))
  in
  let store k v =
    Hashtbl.replace memo k v;
    match cache with None -> () | Some c -> Cache.add c (cache_prefix ^ k) v
  in
  (* every config ever costed, with its makespan; [order] keeps the
     deterministic evaluation order for the final scan *)
  let evaluated : (config, float) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  let record c m =
    if not (Hashtbl.mem evaluated c) then begin
      Hashtbl.add evaluated c m;
      order := c :: !order
    end
  in
  (* cost a batch of candidates: config-level and key-level duplicates
     and memo hits are answered in place (counted as pruned); only the
     distinct missing keys fan out over the pool, in first-seen order,
     so the merge is submission-ordered and width-independent *)
  let evaluate configs =
    let requested = ref 0 in
    let missing = ref [] in
    let batch_keys : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun c ->
        if not (Hashtbl.mem evaluated c) then begin
          incr requested;
          let k = keyfn c in
          if
            (not (Hashtbl.mem batch_keys k))
            && Option.is_none (lookup k)
          then begin
            Hashtbl.add batch_keys k ();
            missing := (c, k) :: !missing
          end
        end)
      configs;
    let missing = Array.of_list (List.rev !missing) in
    let fresh =
      Parallel.run ?jobs (Array.length missing) (fun i ->
          eval (fst missing.(i)))
    in
    List.iteri (fun i m -> store (snd missing.(i)) m) fresh;
    explored := !explored + Array.length missing;
    pruned := !pruned + (!requested - Array.length missing);
    bump ~by:(Array.length missing) "tune.explored";
    bump ~by:(!requested - Array.length missing) "tune.pruned";
    (* resolve every requested config from the memo, batch order *)
    List.iter
      (fun c ->
        if not (Hashtbl.mem evaluated c) then
          record c (Hashtbl.find memo (keyfn c)))
      configs
  in
  let best () =
    (* scan everything evaluated; min makespan, lexicographic config
       on ties — a fold over the full set, so evaluation order cannot
       leak into the winner *)
    List.fold_left
      (fun acc c ->
        let m = Hashtbl.find evaluated c in
        match acc with
        | None -> Some { pt_config = c; pt_makespan = m }
        | Some b ->
            if
              m < b.pt_makespan
              || (m = b.pt_makespan && compare_config c b.pt_config < 0)
            then Some { pt_config = c; pt_makespan = m }
            else Some b)
      None (List.rev !order)
    |> function
    | Some b -> b
    | None -> invalid_arg "Tune.search: empty space"
  in
  let mode =
    match mode with
    | Auto -> if size sp <= exhaustive_threshold then Exhaustive else Hill
    | m -> m
  in
  (match mode with
  | Auto -> assert false
  | Exhaustive ->
      let all =
        List.concat_map
          (fun d ->
            List.concat_map
              (fun s ->
                List.map
                  (fun n -> { devices = d; streams = s; nblocks = n })
                  sp.sp_nblocks)
              sp.sp_streams)
          sp.sp_devices
      in
      evaluate (default_config :: all)
  | Hill ->
      evaluate (default_config :: seeds);
      (* coordinate descent: walk one dimension at a time from the
         incumbent, batch-costing the whole line; stop when a full
         cycle leaves the incumbent in place *)
      let line base set vals = List.map (set base) vals in
      let dims =
        [
          (fun b d -> { b with devices = d }), sp.sp_devices;
          (fun b s -> { b with streams = s }), sp.sp_streams;
          (fun b n -> { b with nblocks = n }), sp.sp_nblocks;
        ]
      in
      let rounds = ref 0 in
      let continue = ref true in
      while !continue && !rounds < 32 do
        incr rounds;
        let before = (best ()).pt_config in
        List.iter
          (fun (set, vals) ->
            evaluate (line (best ()).pt_config set vals))
          dims;
        continue := compare_config (best ()).pt_config before <> 0
      done);
  let default_pt =
    {
      pt_config = default_config;
      pt_makespan = Hashtbl.find evaluated default_config;
    }
  in
  let points =
    List.sort
      (fun a b -> compare_config a.pt_config b.pt_config)
      (List.rev_map
         (fun c -> { pt_config = c; pt_makespan = Hashtbl.find evaluated c })
         !order)
  in
  {
    r_default = default_pt;
    r_best = best ();
    r_explored = !explored;
    r_pruned = !pruned;
    r_points = points;
  }

(** {1 Workload glue}

    Preparing a workload runs the compiler once per candidate block
    count, dedupes the resulting programs (many [nblocks] lower to the
    same source), interprets each distinct program once for its event
    trace, and hands the search an [eval]/[keyfn] pair over those
    traces. *)

(* the machine parameters a trace's replay cost depends on — part of
   every cross-search cache key *)
let machine_key (cfg : Config.t) =
  let scales =
    List.map
      (fun (d, s) ->
        Printf.sprintf "dev%d:%g:%g" d s.Config.sc_cores s.Config.sc_bw)
      cfg.Config.scales
  in
  String.concat ","
    (Printf.sprintf "pcie=%g/%g/%g" cfg.Config.pcie.bw_h2d_gbs
       cfg.pcie.bw_d2h_gbs cfg.pcie.latency_s
    :: Printf.sprintf "launch=%g" cfg.mic.launch_overhead_s
    :: Printf.sprintf "fault=%s" (Fault.to_string cfg.fault)
    :: scales)

type prepared = {
  p_name : string;
  p_base : Config.t;  (** devices/streams overridden per candidate *)
  p_space : space;
  p_traces : Minic.Interp.event list array;
  p_trace_of_nblocks : (int * int) list;  (** nblocks -> trace index *)
  p_seed_nblocks : int;  (** analytic {!Transforms.Block_size} seed *)
}

(* seed the block-count dimension analytically: per kernel site of the
   default trace, derive (D, C, K) and ask the memoized Block_size
   chooser; sites sharing a shape answer from the cache.  The dominant
   (max-work) site's choice seeds the hill search. *)
let seed_nblocks ?obs ?block_cache (cfg : Config.t) sp events =
  let bcache =
    match block_cache with
    | Some c -> c
    | None -> Transforms.Block_size.Cache.create ?obs ()
  in
  let params = Runtime.Replay.default_params in
  let mkey = machine_key cfg in
  let blocks = Runtime.Migrate.blocks_of_events events in
  let best =
    List.fold_left
      (fun acc (b : Runtime.Migrate.block) ->
        let bytes cells =
          float_of_int cells *. params.Runtime.Replay.bytes_per_cell
        in
        let p =
          {
            Transforms.Block_size.transfer_s =
              Cost.transfer_time cfg Cost.H2d
                ~bytes:(bytes (b.blk_h2d_cells + b.blk_resident_cells))
              +. Cost.transfer_time cfg Cost.D2h
                   ~bytes:(bytes b.blk_d2h_cells);
            compute_s =
              float_of_int b.blk_work *. params.Runtime.Replay.seconds_per_stmt;
            launch_s = Cost.launch_time cfg;
          }
        in
        let key =
          Printf.sprintf "%s|h2d=%d,res=%d,d2h=%d,work=%d" mkey
            b.blk_h2d_cells b.blk_resident_cells b.blk_d2h_cells b.blk_work
        in
        let n =
          Transforms.Block_size.Cache.choose bcache ~key
            ~candidates:sp.sp_nblocks p
        in
        match acc with
        | Some (work, _) when work >= b.blk_work -> acc
        | _ -> Some (b.blk_work, n))
      None blocks
  in
  match best with None -> Comp.default_nblocks | Some (_, n) -> n

let prepare_program ?(base = Config.paper_default) ?nblocks ?obs ?block_cache
    ~max_devices ~max_streams ~name prog : prepared =
  let sp = space ?nblocks ~max_devices ~max_streams () in
  let texts : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let traces = ref [] and ntraces = ref 0 in
  let trace_of_nblocks =
    List.map
      (fun nb ->
        let optimized, _ = Comp.optimize ~nblocks:nb prog in
        let text = Minic.Pretty.program_to_string optimized in
        match Hashtbl.find_opt texts text with
        | Some idx -> (nb, idx)
        | None ->
            let events =
              match Minic.Compile_eval.run_compiled optimized with
              | Ok o -> o.Minic.Interp.events
              | Error e -> failwith (Printf.sprintf "tune: %s: %s" name e)
            in
            let idx = !ntraces in
            incr ntraces;
            Hashtbl.add texts text idx;
            traces := events :: !traces;
            (nb, idx))
      sp.sp_nblocks
  in
  let traces = Array.of_list (List.rev !traces) in
  let default_trace =
    traces.(List.assoc Comp.default_nblocks trace_of_nblocks)
  in
  {
    p_name = name;
    p_base = base;
    p_space = sp;
    p_traces = traces;
    p_trace_of_nblocks = trace_of_nblocks;
    p_seed_nblocks = seed_nblocks ?obs ?block_cache base sp default_trace;
  }

let prepare ?base ?nblocks ?obs ?block_cache ~max_devices ~max_streams
    (w : Workloads.Workload.t) : prepared =
  prepare_program ?base ?nblocks ?obs ?block_cache ~max_devices ~max_streams
    ~name:w.Workloads.Workload.name
    (Workloads.Workload.program w)

let eval_config pre c =
  let cfg =
    Config.with_devices pre.p_base ~devices:c.devices ~streams:c.streams
  in
  Runtime.Migrate.makespan cfg
    pre.p_traces.(List.assoc c.nblocks pre.p_trace_of_nblocks)

(* two configs with the same device/stream grid and the same lowered
   trace are the same simulation *)
let key_config pre c =
  Printf.sprintf "d%d.s%d.t%d" c.devices c.streams
    (List.assoc c.nblocks pre.p_trace_of_nblocks)

let run ?jobs ?obs ?cache ?mode (pre : prepared) : report =
  let max_of l = List.fold_left max 1 l in
  let sp = pre.p_space in
  let seeds =
    [
      {
        devices = max_of sp.sp_devices;
        streams = max_of sp.sp_streams;
        nblocks = pre.p_seed_nblocks;
      };
      {
        devices = max_of sp.sp_devices;
        streams = 1;
        nblocks = pre.p_seed_nblocks;
      };
    ]
  in
  search ?jobs ?obs ?cache
    ~cache_prefix:
      (Printf.sprintf "%s|%s|" pre.p_name (machine_key pre.p_base))
    ?mode ~seeds sp
    ~eval:(eval_config pre)
    ~keyfn:(key_config pre)
