(** Auto-tuned offload configuration search over heterogeneous device
    fleets.

    Searches the per-workload (devices, streams, nblocks) space for
    the makespan-optimal point, costing every candidate by replaying
    the workload's event trace through {!Runtime.Migrate} on the
    candidate machine.  Small grids are enumerated exhaustively; large
    ones run a seeded coordinate descent.  Evaluations fan out over
    {!Parallel} and merge in submission order, and ties break by
    lexicographic config order — the winner is bit-identical at any
    [--jobs] width.  A memo table plus the optional cross-search
    {!Cache} guarantee no visited point is ever re-simulated.

    Counters: [tune.explored] / [tune.pruned] for search traffic,
    [tune.cache.hits] / [tune.cache.misses] for the shared cache. *)

type config = { devices : int; streams : int; nblocks : int }

val compare_config : config -> config -> int
(** Lexicographic on (devices, streams, nblocks) — the tie-break
    order. *)

val config_to_string : config -> string
(** ["devices=D,streams=S,nblocks=N"]. *)

val default_config : config
(** The baseline every speedup is measured against: one device, one
    stream, {!Comp.default_nblocks}. *)

type space = {
  sp_devices : int list;
  sp_streams : int list;
  sp_nblocks : int list;
}

val default_nblocks_candidates : int list

val space :
  ?nblocks:int list -> max_devices:int -> max_streams:int -> unit -> space
(** Devices [1..max_devices] x streams [1..max_streams] x the block
    counts (clamped into [1, ]{!Transforms.Block_size.max_blocks}[]];
    {!Comp.default_nblocks} always joins so the tuned point can never
    lose to the default). *)

val size : space -> int

type mode =
  | Auto  (** {!Exhaustive} for small grids, {!Hill} beyond *)
  | Exhaustive
  | Hill

(** Cross-search memo of simulator evaluations, keyed (workload,
    machine, trace).  Distinct from the serve [Source_cache], which
    memoizes front-end {e compilation} keyed by source text. *)
module Cache : sig
  type t

  val create : ?obs:Obs.t -> unit -> t
  val find : t -> string -> float option
  val add : t -> string -> float -> unit
  val size : t -> int
end

type point = { pt_config : config; pt_makespan : float }

type report = {
  r_default : point;
  r_best : point;
  r_explored : int;  (** simulator evaluations actually run *)
  r_pruned : int;  (** candidates answered without simulation *)
  r_points : point list;  (** every evaluated point, in config order *)
}

val speedup : report -> float
(** [default / best] makespan; [1.0] for degenerate zero-makespan
    traces. *)

val search :
  ?jobs:int ->
  ?obs:Obs.t ->
  ?cache:Cache.t ->
  ?cache_prefix:string ->
  ?mode:mode ->
  ?seeds:config list ->
  space ->
  eval:(config -> float) ->
  keyfn:(config -> string) ->
  report
(** The generic engine.  [eval] must be pure (it runs on pool
    domains); [keyfn] names the simulation a config denotes — configs
    sharing a key share one evaluation.  {!default_config} is always
    evaluated. *)

(** {1 Workload glue} *)

val machine_key : Machine.Config.t -> string
(** The machine parameters a trace replay depends on, as a cache-key
    fragment. *)

type prepared = {
  p_name : string;
  p_base : Machine.Config.t;
      (** devices/streams overridden per candidate; scales and fault
          plan ride along *)
  p_space : space;
  p_traces : Minic.Interp.event list array;
  p_trace_of_nblocks : (int * int) list;  (** nblocks -> trace index *)
  p_seed_nblocks : int;
      (** analytic {!Transforms.Block_size} seed for the hill search *)
}

val prepare_program :
  ?base:Machine.Config.t ->
  ?nblocks:int list ->
  ?obs:Obs.t ->
  ?block_cache:Transforms.Block_size.Cache.cache ->
  max_devices:int ->
  max_streams:int ->
  name:string ->
  Minic.Ast.program ->
  prepared
(** Compile the program once per candidate block count, dedupe the
    lowered programs, interpret each distinct one for its trace, and
    derive the analytic block-count seed (via the memoized
    {!Transforms.Block_size.Cache}). *)

val prepare :
  ?base:Machine.Config.t ->
  ?nblocks:int list ->
  ?obs:Obs.t ->
  ?block_cache:Transforms.Block_size.Cache.cache ->
  max_devices:int ->
  max_streams:int ->
  Workloads.Workload.t ->
  prepared
(** {!prepare_program} on a registry workload's kernel source. *)

val eval_config : prepared -> config -> float
(** Makespan of one candidate: {!Runtime.Migrate.makespan} of the
    config's trace on the config's machine. *)

val key_config : prepared -> config -> string

val run :
  ?jobs:int -> ?obs:Obs.t -> ?cache:Cache.t -> ?mode:mode -> prepared -> report
(** {!search} over the prepared workload, seeded with the analytic
    block count at full fleet width. *)
