(** Shared helpers for the source-to-source transformations: fresh
    names, scope lookup, region replacement, and array renaming. *)

val reset_fresh : unit -> unit

val fresh : string -> string
(** A fresh identifier ([base__N]); generated names use a [__] suffix
    so they cannot collide with user identifiers. *)

val mic_name : string -> string
(** Device-buffer name for a host array ([a] -> [a_mic]). *)

val mic_name_n : string -> int -> string
(** Numbered device buffers for double buffering ([a_mic1], [a_mic2]). *)

val var_ty :
  Minic.Ast.program -> Minic.Ast.func -> string -> Minic.Ast.ty option
(** Type of a variable visible in a function: parameters, then
    globals, then body declarations. *)

val is_array_ty : Minic.Ast.ty option -> bool

val array_size :
  Minic.Ast.program -> Minic.Ast.func -> string -> Minic.Ast.expr option
(** Statically declared element count, if any. *)

val elem_ty :
  Minic.Ast.program -> Minic.Ast.func -> string -> Minic.Ast.ty option

val matches_region :
  Analysis.Offload_regions.region -> Minic.Ast.stmt -> bool

val replace_region :
  Minic.Ast.program ->
  Analysis.Offload_regions.region ->
  replacement:Minic.Ast.stmt ->
  Minic.Ast.program option
(** Replace the statement carrying a region.  [None] when the region
    cannot be located (e.g. already rewritten) — a typed miss the
    transforms turn into their own refusal error, never an
    exception. *)

val rename_array :
  ?shift:Minic.Ast.expr ->
  arr:string ->
  to_:string ->
  Minic.Ast.block ->
  Minic.Ast.block
(** Rename [arr] in indexed positions, with an optional index shift:
    [arr[e]] becomes [to_[e - shift]]. *)

val imin : Minic.Ast.expr -> Minic.Ast.expr -> Minic.Ast.expr
val imax : Minic.Ast.expr -> Minic.Ast.expr -> Minic.Ast.expr
