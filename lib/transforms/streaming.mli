(** The data-streaming transformation (Section III).

    An offloaded loop whose array indexes are all affine in the loop
    index ([a*i + b], the legality condition) is rewritten into a
    pipelined two-level loop: the outer loop walks computation blocks,
    transferring block [b+1] asynchronously while block [b] computes on
    the device (Figure 5(b)).  With {!Double_buffered} the rewrite
    instead allocates only two block-sized device buffers per streamed
    input (and one per output) and alternates between them —
    Figure 5(c) — which caps the device memory footprint.

    Thread reuse (Section III-C) changes only the execution schedule
    and lives in {!Runtime.Plan}; offload merging is
    {!Merge_offload}. *)

type failure =
  | No_offload_spec
  | Nonunit_step
  | Variant_bounds  (** loop bounds are written in the body *)
  | Non_affine of string
  | Mixed_coeff of string  (** one array, several strides *)
  | Nonconst_offset of string
  | Nonscalar_element of string
      (** struct- or pointer-element array: blockwise device buffers
          would need element-size-aware slicing; AoS data is handled by
          regularization (SoA) first, pointer data by the shared-memory
          lowering *)
  | Invariant_out of string
  | No_streamed_input
  | Unknown_function of string

val pp_failure : Format.formatter -> failure -> unit

type role = Rin | Rout | Rinout

type arr_info = {
  name : string;
  role : role;
  coeff : int;  (** 0 = loop-invariant: transferred whole, up-front *)
  min_off : int;
  max_off : int;  (** constant-offset halo, for stencil slices *)
  total : Minic.Ast.expr;  (** element count of the original clause *)
  elem : Minic.Ast.ty;
}

type info = {
  region : Analysis.Offload_regions.region;
  spec : Minic.Ast.offload_spec;
  arrays : arr_info list;
  nblocks : int;
}

type memory = Full | Double_buffered

val analyze :
  ?nblocks:int ->
  Minic.Ast.program ->
  Analysis.Offload_regions.region ->
  (info, failure) result
(** The legality check plus per-array slicing information. *)

val applicable : Minic.Ast.program -> Analysis.Offload_regions.region -> bool

val transform :
  ?nblocks:int ->
  ?memory:memory ->
  Minic.Ast.program ->
  Analysis.Offload_regions.region ->
  (Minic.Ast.program, failure) result
(** Rewrite one region.  The result is valid, typecheckable MiniC that
    computes the same outputs (property-tested). *)

val transform_all :
  ?nblocks:int ->
  ?memory:memory ->
  Minic.Ast.program ->
  Minic.Ast.program * int
(** Stream every offloaded region that passes the legality check;
    returns the count transformed. *)
