(** Apricot-style automatic offload insertion: wrap every provably
    parallel [#pragma omp parallel for] loop in an [#pragma offload]
    with inferred [in]/[out]/[inout] clauses.

    Clause roles come from use/def analysis ({!Analysis.Liveness});
    section extents come from the declared array size when available
    and otherwise from the access analysis (max touched element,
    [c*hi + max_offset]). *)

open Minic.Ast

type failure =
  | Not_parallel of Analysis.Depend.violation list
  | Unknown_extent of string  (** array whose transfer size cannot be inferred *)

let pp_failure fmt = function
  | Not_parallel vs ->
      Format.fprintf fmt "loop is not provably parallel:@ %a"
        (Format.pp_print_list Analysis.Depend.pp_violation)
        vs
  | Unknown_extent arr ->
      Format.fprintf fmt "cannot infer transfer extent for array %s" arr

(* Extent (element count) to transfer for [arr] in this loop. *)
let extent prog f (region : Analysis.Offload_regions.region) arr =
  match Util.array_size prog f arr with
  | Some n -> Some n
  | None ->
      (* derive from the accesses: elements [0, c*hi + max_offset) *)
      let accesses = Analysis.Access.of_loop region.loop in
      let summaries = Analysis.Access.summarize accesses in
      List.find_map
        (fun (s : Analysis.Access.summary) ->
          if not (String.equal s.name arr) then None
          else
            match s.max_coeff with
            | Some c when c >= 1 ->
                let max_off =
                  List.fold_left
                    (fun acc o ->
                      match Analysis.Simplify.const_int o with
                      | Some v -> max acc v
                      | None -> acc)
                    0 s.offsets
                in
                (* last touched element is c*(hi-1) + max_off, so the
                   exact extent is that plus one *)
                Some
                  (Analysis.Simplify.add
                     (Analysis.Simplify.mul (Int_lit c)
                        (Analysis.Simplify.sub region.loop.hi (Int_lit 1)))
                     (Int_lit (max_off + 1)))
            | _ -> None)
        summaries

(** Infer the offload spec for a candidate region. *)
let infer_spec prog f (region : Analysis.Offload_regions.region) =
  let violations = Analysis.Depend.check region.loop in
  if violations <> [] then Error (Not_parallel violations)
  else
    let is_array name = Util.is_array_ty (Util.var_ty prog f name) in
    let ins, outs, inouts =
      Analysis.Liveness.clause_roles ~is_array
        [ Sfor region.loop ]
    in
    let section_of arr =
      match extent prog f region arr with
      | Some n -> Ok (section_full arr n)
      | None -> Error (Unknown_extent arr)
    in
    let rec map_sections acc = function
      | [] -> Ok (List.rev acc)
      | arr :: rest -> (
          match section_of arr with
          | Ok s -> map_sections (s :: acc) rest
          | Error e -> Error e)
    in
    match (map_sections [] ins, map_sections [] outs, map_sections [] inouts)
    with
    | Ok ins, Ok outs, Ok inouts ->
        Ok { empty_spec with ins; outs; inouts }
    | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

(** Offload one candidate region. *)
let transform prog (region : Analysis.Offload_regions.region) =
  match Minic.Ast.find_func prog region.func with
  | None -> Error (Unknown_extent region.func)
  | Some f -> (
      match infer_spec prog f region with
      | Error e -> Error e
      | Ok spec ->
          let replacement =
            Spragma
              (Offload spec, Spragma (Omp_parallel_for, Sfor region.loop))
          in
          match Util.replace_region prog region ~replacement with
          | Some prog' -> Ok prog'
          | None -> Error (Unknown_extent region.func))

(** Offload every candidate parallel loop in the program; returns the
    rewritten program and the number of regions offloaded. *)
let transform_all prog =
  let candidates = Analysis.Offload_regions.candidates prog in
  List.fold_left
    (fun (prog, n) region ->
      match transform prog region with
      | Ok prog' -> (prog', n + 1)
      | Error _ ->
          (* leave unoffloadable candidates on the host *)
          (prog, n))
    (prog, 0) candidates
