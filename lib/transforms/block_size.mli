(** The analytic block-count model of Section III-B.

    For a loop with total transfer time [D], total computation time [C]
    and per-kernel launch overhead [K], split into [N] blocks, the paper
    gives

    {v T(N) = D/N + max(C/N + K, D/N) * (N - 1) + C/N + K v}

    with optimum [N = sqrt(D/K)] in the compute-bound regime and
    [N = (D - C)/K] in the transfer-bound one. *)

type params = {
  transfer_s : float;  (** D: total transfer time *)
  compute_s : float;  (** C: total device computation time *)
  launch_s : float;  (** K: one kernel launch *)
}

val naive_time : params -> float
(** [D + K + C]. *)

val streamed_time : params -> nblocks:int -> float
(** The paper's T(N). *)

val max_blocks : int
(** Upper bound on any block count {!optimal_blocks} returns; also the
    answer in the [K = 0] limit, where T(N) has no finite optimum. *)

val optimal_blocks : params -> int
(** The analytically optimal block count, clamped to
    [1, max_blocks].  Raises [Invalid_argument] if any parameter is
    negative or NaN. *)

val choose : ?candidates:int list -> params -> int
(** Pick as the experiments did: best of a small candidate grid (the
    paper used 10, 20, 40, 50), each candidate clamped into
    [1, ]{!max_blocks}.  Validates the parameters like
    {!optimal_blocks}; raises [Invalid_argument] on an empty candidate
    list. *)

val speedup : params -> nblocks:int -> float
(** [naive_time / streamed_time]. *)

(** Memoized {!choose}, keyed by a caller-supplied (machine,
    loop-shape) string plus the candidate grid.  A well-formed key
    determines [params]; repeats answer from the table.  With [?obs],
    lookups bump [tune.block_cache.hits] / [tune.block_cache.misses]. *)
module Cache : sig
  type cache

  val create : ?obs:Obs.t -> unit -> cache

  val choose : cache -> key:string -> ?candidates:int list -> params -> int
  (** Same result as {!choose} (parity is tested); cached per
      [(key, candidates)]. *)

  val size : cache -> int
  (** Distinct (key, candidates) pairs memoized so far. *)
end
