(** The analytic block-count model of Section III-B.

    For a loop with total transfer time [D], total computation time [C]
    and per-kernel launch overhead [K], split into [N] blocks, the paper
    gives

    {v T(N) = D/N + max(C/N + K, D/N) * (N - 1) + C/N + K v}

    and derives the optimum [N = sqrt(D/K)] in the compute-bound regime
    ([C/N + K > D/N]) and [N = (D - C)/K] in the transfer-bound one. *)

type params = {
  transfer_s : float;  (** D: total transfer time, seconds *)
  compute_s : float;  (** C: total device computation time, seconds *)
  launch_s : float;  (** K: one kernel launch, seconds *)
}

(** Execution time without streaming: [D + K + C]. *)
let naive_time p = p.transfer_s +. p.launch_s +. p.compute_s

(** Execution time with [N]-block streaming (the paper's formula). *)
let streamed_time p ~nblocks =
  let n = float_of_int nblocks in
  let d = p.transfer_s /. n in
  let c = p.compute_s /. n in
  d +. (Float.max (c +. p.launch_s) d *. (n -. 1.)) +. c +. p.launch_s

(** Block counts beyond this stop paying off in the model (the per-block
    times vanish into rounding) and stopped being realistic on the
    hardware; it also bounds the [K = 0] limit, where T(N) decreases
    monotonically and has no finite optimum. *)
let max_blocks = 4096

let validate p =
  let check name v =
    if Float.is_nan v then
      invalid_arg (Printf.sprintf "Block_size: %s is NaN" name);
    if v < 0. then
      invalid_arg (Printf.sprintf "Block_size: negative %s (%g)" name v)
  in
  check "transfer_s" p.transfer_s;
  check "compute_s" p.compute_s;
  check "launch_s" p.launch_s

(** Round a real-valued candidate into the valid block range.  The
    transfer-bound candidate [(D - C)/K] is negative whenever [C > D],
    and either candidate overflows [int] for degenerate [K] — clamp in
    float space before converting.  T(N) is evaluated at {e both}
    integer neighbours of an interior candidate: the analytic optimum
    rarely falls on an integer, and [Float.round] can pick the worse
    side of it (T is not symmetric around the optimum). *)
let clamp_candidate p n =
  if Float.is_nan n then 1
  else if n <= 1. then 1
  else if n >= float_of_int max_blocks then max_blocks
  else
    let lo = max 1 (int_of_float (Float.floor n)) in
    let hi = min max_blocks (int_of_float (Float.ceil n)) in
    if streamed_time p ~nblocks:lo <= streamed_time p ~nblocks:hi then lo
    else hi

(** The analytically optimal block count (in [1, max_blocks]). *)
let optimal_blocks p =
  validate p;
  let d = p.transfer_s and c = p.compute_s and k = p.launch_s in
  if k <= 0. then
    (* T(N) = D/N + max(C/N, D/N)(N-1) + C/N = max(C,D) + min(C,D)/N:
       strictly decreasing in N, so the cap is the optimum *)
    if Float.min c d <= 0. then 1 else max_blocks
  else
    (* compute-bound at the optimum iff C/N + K > D/N there; test by
       computing both candidates and taking the better *)
    let n1 = sqrt (d /. k) in
    let n2 = (d -. c) /. k in
    List.fold_left
      (fun best n ->
        let n = clamp_candidate p n in
        if streamed_time p ~nblocks:n < streamed_time p ~nblocks:best then n
        else best)
      1 [ n1; n2 ]

(** Pick a block count the way the experiments did: try a small
    candidate set (the paper used 10, 20, 40, 50) and keep the best.
    Candidates are clamped into [1, max_blocks]; the parameters are
    validated like {!optimal_blocks}; an empty candidate list is a
    caller bug and rejected rather than answered with a constant that
    was never evaluated. *)
let choose ?(candidates = [ 10; 20; 40; 50 ]) p =
  validate p;
  match List.map (fun n -> max 1 (min max_blocks n)) candidates with
  | [] -> invalid_arg "Block_size.choose: empty candidate list"
  | first :: rest ->
      List.fold_left
        (fun best n ->
          if streamed_time p ~nblocks:n < streamed_time p ~nblocks:best then n
          else best)
        first rest

(** Speedup of streaming with [nblocks] over the naive offload. *)
let speedup p ~nblocks = naive_time p /. streamed_time p ~nblocks

(** Memoized {!choose}.  The tuner calls [choose] once per (machine,
    loop-shape) pair while seeding its search; workloads re-visit the
    same shapes constantly, so the cache keys on a caller-supplied
    (machine, loop-shape) string plus the candidate grid and answers
    repeats without re-evaluating T(N).  Hit/miss traffic lands in
    [tune.block_cache.*]. *)
module Cache = struct
  type cache = {
    tbl : (string, int) Hashtbl.t;
    obs : Obs.t option;
  }

  let create ?obs () = { tbl = Hashtbl.create 64; obs }

  let bump c name =
    match c.obs with None -> () | Some o -> Obs.incr o name

  (* [p] is part of the loop shape, so a well-formed [key] determines
     it; the candidate grid is an independent caller choice, so it
     joins the key rather than relying on the caller to fold it in *)
  let full_key key candidates =
    String.concat ":"
      (key :: List.map string_of_int (Option.value candidates ~default:[]))

  let choose c ~key ?candidates p =
    let k = full_key key candidates in
    match Hashtbl.find_opt c.tbl k with
    | Some n ->
        bump c "tune.block_cache.hits";
        n
    | None ->
        bump c "tune.block_cache.misses";
        let n = choose ?candidates p in
        Hashtbl.add c.tbl k n;
        n

  let size c = Hashtbl.length c.tbl
end
