(** The data-streaming transformation (Section III).

    An offloaded loop whose array indexes are all affine in the loop
    index ([a*i + b], the paper's legality condition) is rewritten into
    a pipelined two-level loop: the outer loop walks computation blocks,
    transferring block [b+1] asynchronously while block [b] computes on
    the device, exactly as in Figure 5(b).  With
    [~memory:`Double_buffered] the rewrite instead allocates only two
    block-sized device buffers per streamed input (and one per output)
    and alternates between them — Figure 5(c) — which is what caps the
    device memory footprint.

    Thread reuse and offload merging (Section III-C) are separate:
    merging is {!Merge_offload}; thread reuse changes only the execution
    schedule and lives in the runtime plan layer. *)

open Minic.Ast
module A = Analysis.Access
module S = Analysis.Simplify

type failure =
  | No_offload_spec
  | Nonunit_step
  | Variant_bounds
  | Non_affine of string
  | Mixed_coeff of string
  | Nonconst_offset of string
  | Nonscalar_element of string
  | Invariant_out of string
  | No_streamed_input
  | Unknown_function of string

let pp_failure fmt = function
  | No_offload_spec -> Format.fprintf fmt "loop has no offload pragma"
  | Nonunit_step -> Format.fprintf fmt "loop step is not 1"
  | Variant_bounds -> Format.fprintf fmt "loop bounds are modified in the body"
  | Non_affine a -> Format.fprintf fmt "array %s has a non-affine access" a
  | Mixed_coeff a ->
      Format.fprintf fmt "array %s is accessed with several strides" a
  | Nonconst_offset a ->
      Format.fprintf fmt "array %s has a non-constant access offset" a
  | Nonscalar_element a ->
      Format.fprintf fmt
        "array %s has struct or pointer elements (regularize to SoA or use \
         shared memory first)"
        a
  | Invariant_out a ->
      Format.fprintf fmt "output array %s is written at a loop-invariant index"
        a
  | No_streamed_input -> Format.fprintf fmt "no streamable input array"
  | Unknown_function f -> Format.fprintf fmt "unknown function %s" f

type role = Rin | Rout | Rinout

type arr_info = {
  name : string;
  role : role;
  coeff : int;  (** 0 = loop-invariant: transferred whole, up-front *)
  min_off : int;
  max_off : int;
  total : expr;  (** element count of the original clause *)
  elem : ty;
}

type info = {
  region : Analysis.Offload_regions.region;
  spec : offload_spec;
  arrays : arr_info list;
  nblocks : int;
}

type memory = Full | Double_buffered

(** {1 Legality analysis} *)

let ( let* ) = Result.bind

let role_of spec name =
  let in_ = List.exists (fun s -> String.equal s.arr name) in
  if in_ spec.inouts then Some Rinout
  else
    match (in_ spec.ins, in_ spec.outs) with
    | true, true -> Some Rinout
    | true, false -> Some Rin
    | false, true -> Some Rout
    | false, false -> None

let clause_total spec name =
  List.find_map
    (fun s ->
      if String.equal s.arr name then Some (S.add s.start s.len) else None)
    (spec.ins @ spec.outs @ spec.inouts)

let analyze ?(nblocks = 10) prog (region : Analysis.Offload_regions.region) =
  let* spec = Option.to_result ~none:No_offload_spec region.spec in
  let* f =
    Option.to_result
      ~none:(Unknown_function region.func)
      (find_func prog region.func)
  in
  let fl = region.loop in
  let* () = if equal_expr fl.step (Int_lit 1) then Ok () else Error Nonunit_step in
  let info = Analysis.Liveness.of_region fl.body in
  let bound_vars = expr_vars fl.lo @ expr_vars fl.hi in
  let* () =
    if List.exists (fun v -> Analysis.Liveness.SS.mem v info.defs) bound_vars
    then Error Variant_bounds
    else Ok ()
  in
  let accesses = A.of_loop fl in
  let* () =
    match List.find_opt (fun a -> not (A.is_affine a)) accesses with
    | Some a -> Error (Non_affine a.arr)
    | None -> Ok ()
  in
  let summaries = A.summarize accesses in
  let arr_info (s : A.summary) =
    match role_of spec s.name with
    | None -> Ok None (* locally declared or scalar-like: not transferred *)
    | Some role ->
        let* coeff =
          match s.max_coeff with
          | Some _ ->
              (* all accesses affine; require a single coefficient *)
              let coeffs =
                List.filter_map
                  (function
                    | A.Affine a when a.Analysis.Affine.coeff <> 0 ->
                        Some a.Analysis.Affine.coeff
                    | _ -> None)
                  s.kinds
              in
              let distinct = List.sort_uniq compare coeffs in
              (match distinct with
              | [] -> Ok 0
              | [ c ] ->
                  (* mixing c*i and invariant accesses on one array is
                     not streamable either way *)
                  if List.exists
                       (function
                         | A.Affine a -> a.Analysis.Affine.coeff = 0
                         | _ -> false)
                       s.kinds
                  then Error (Mixed_coeff s.name)
                  else Ok c
              | _ -> Error (Mixed_coeff s.name))
          | None -> Error (Non_affine s.name)
        in
        let* offs =
          let consts = List.map S.const_int s.offsets in
          if coeff = 0 then Ok (0, 0)
          else if List.exists Option.is_none consts then
            Error (Nonconst_offset s.name)
          else
            let vals = List.filter_map Fun.id consts in
            Ok
              ( List.fold_left min 0 vals,
                List.fold_left max 0 vals )
        in
        let* () =
          if coeff = 0 && (role = Rout || role = Rinout) && s.writes then
            Error (Invariant_out s.name)
          else Ok ()
        in
        let total =
          match clause_total spec s.name with
          | Some t -> t
          | None -> S.mul (Int_lit (max coeff 1)) fl.hi
        in
        let elem =
          match Util.elem_ty prog f s.name with
          | Some t -> t
          | None -> Tfloat
        in
        Ok
          (Some
             {
               name = s.name;
               role;
               coeff;
               min_off = fst offs;
               max_off = snd offs;
               total;
               elem;
             })
  in
  let rec collect acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
        match arr_info s with
        | Ok (Some i) -> collect (i :: acc) rest
        | Ok None -> collect acc rest
        | Error e -> Error e)
  in
  let* arrays = collect [] summaries in
  (* clause arrays never accessed in the body: transfer whole, up-front *)
  let accessed = List.map (fun (a : arr_info) -> a.name) arrays in
  let extra =
    List.filter_map
      (fun (s : section) ->
        if List.mem s.arr accessed then None
        else
          match role_of spec s.arr with
          | None -> None
          | Some role ->
              Some
                {
                  name = s.arr;
                  role;
                  coeff = 0;
                  min_off = 0;
                  max_off = 0;
                  total = S.add s.start s.len;
                  elem =
                    (match Util.elem_ty prog f s.arr with
                    | Some t -> t
                    | None -> Tfloat);
                })
      (spec.ins @ spec.outs @ spec.inouts)
  in
  let arrays = arrays @ extra in
  (* blockwise device buffers are sized in elements: multi-cell (struct)
     or pointer-valued elements would transfer wrong and carry stale
     host addresses — those arrays belong to SoA regularization or the
     shared-memory lowering, not to streaming *)
  let* () =
    match
      List.find_opt
        (fun a ->
          match a.elem with Tint | Tfloat | Tbool -> false | _ -> true)
        arrays
    with
    | Some a -> Error (Nonscalar_element a.name)
    | None -> Ok ()
  in
  let* () =
    if
      List.exists
        (fun a -> a.coeff >= 1 && (a.role = Rin || a.role = Rinout))
        arrays
    then Ok ()
    else Error No_streamed_input
  in
  Ok { region; spec; arrays; nblocks }

(** Is the region streamable at all? *)
let applicable prog region =
  match analyze prog region with Ok _ -> true | Error _ -> false

(** {1 Code generation} *)

(* names used by the generated code; deterministic per loop so tests can
   inspect the output *)
let nblk_v = "nblk__"
let bsize_v = "bsize__"
let blk_v = "blk__"

let streamed a = a.coeff >= 1
let is_input a = a.role = Rin || a.role = Rinout
let is_output a = a.role = Rout || a.role = Rinout

(* element range of array [a] touched by computation block [blk]:
   iterations [lo + blk*bsize, min(hi, lo + (blk+1)*bsize)) *)
let slice (fl : for_loop) a blk =
  let bstart = S.add fl.lo (S.mul blk (Var bsize_v)) in
  let bend =
    Util.imin fl.hi (S.add fl.lo (S.mul (S.add blk (Int_lit 1)) (Var bsize_v)))
  in
  let c = Int_lit a.coeff in
  (* clamp into [0, total]: an empty trailing block (bstart past the
     iteration space) must yield a slice whose start is still a valid
     address for its zero length; the clamp folds away when the lower
     clamp already reduced the start to a constant 0 *)
  let start_elem =
    match
      S.expr (Util.imax (Int_lit 0) (S.add (S.mul c bstart) (Int_lit a.min_off)))
    with
    | Int_lit 0 -> Int_lit 0
    | s -> Util.imin a.total s
  in
  let end_elem =
    Util.imin a.total (S.add (S.mul c bend) (Int_lit a.max_off))
  in
  let len = Util.imax (Int_lit 0) (S.sub end_elem start_elem) in
  (S.expr start_elem, S.expr len)

(* one offload_transfer moving block [blk] of all streamed inputs, with
   [into] targets given by [dev_name] *)
let in_transfer target (fl : for_loop) arrays ~dev_name ~dev_ofs blk =
  let ins =
    List.filter_map
      (fun a ->
        if streamed a && is_input a then
          let start, len = slice fl a blk in
          Some
            {
              arr = a.name;
              start;
              len;
              into = Some (dev_name a, dev_ofs a blk);
            }
        else None)
      arrays
  in
  Spragma
    ( Offload_transfer { empty_spec with target; ins; signal = Some blk },
      Sblock [] )

(* per-output offload_transfer copying block [blk] back to the host *)
let out_transfers target (fl : for_loop) arrays ~dev_name ~dev_ofs blk =
  List.filter_map
    (fun a ->
      if streamed a && is_output a then
        let start, len = slice fl a blk in
        let dofs = dev_ofs a blk in
        Some
          (Spragma
             ( Offload_transfer
                 {
                   empty_spec with
                   target;
                   outs =
                     [
                       {
                         arr = dev_name a;
                         start = dofs;
                         len;
                         into = Some (a.name, start);
                       };
                     ];
                 },
               Sblock [] ))
      else None)
    arrays

(* the device kernel for block [blk], with arrays renamed to their
   device buffers (shifted when double-buffered) *)
let kernel target (fl : for_loop) arrays ~dev_name ~shift blk =
  let inner_lo = S.expr (S.add fl.lo (S.mul blk (Var bsize_v))) in
  let inner_hi =
    S.expr
      (Util.imin fl.hi
         (S.add fl.lo (S.mul (S.add blk (Int_lit 1)) (Var bsize_v))))
  in
  let body =
    List.fold_left
      (fun body a ->
        Util.rename_array ~shift:(shift a blk) ~arr:a.name ~to_:(dev_name a)
          body)
      fl.body arrays
  in
  Spragma
    ( Offload { empty_spec with target },
      Spragma
        ( Omp_parallel_for,
          Sfor { index = fl.index; lo = inner_lo; hi = inner_hi; step = Int_lit 1; body }
        ) )

let no_shift _ _ = Int_lit 0

(* Full-size device buffers: Figure 5(b) *)
let generate_full (i : info) =
  let fl = i.region.loop in
  let target = i.spec.target in
  let dev_name a = Util.mic_name a.name in
  let decls =
    [
      Sdecl (Tint, nblk_v, Some (Int_lit i.nblocks));
      Sdecl
        ( Tint,
          bsize_v,
          Some
            (S.div
               (S.sub (S.add fl.hi (Var nblk_v)) (S.add fl.lo (Int_lit 1)))
               (Var nblk_v)) );
    ]
    @ List.map
        (fun a ->
          Sdecl
            ( Tptr a.elem,
              dev_name a,
              Some (Cast (Tptr a.elem, Call ("mic_malloc", [ a.total ]))) ))
        i.arrays
  in
  let upfront =
    List.filter_map
      (fun a ->
        if (not (streamed a)) && is_input a then
          Some
            (Spragma
               ( Offload_transfer
                   {
                     empty_spec with
                     target;
                     ins =
                       [
                         {
                           arr = a.name;
                           start = Int_lit 0;
                           len = a.total;
                           into = Some (dev_name a, Int_lit 0);
                         };
                       ];
                   },
                 Sblock [] ))
        else None)
      i.arrays
  in
  let dev_ofs a blk = fst (slice fl a blk) in
  let first = in_transfer target fl i.arrays ~dev_name ~dev_ofs (Int_lit 0) in
  let next_blk = S.add (Var blk_v) (Int_lit 1) in
  let loop_body =
    [
      Sif
        ( Binop (Lt, next_blk, Var nblk_v),
          [ in_transfer target fl i.arrays ~dev_name ~dev_ofs next_blk ],
          [] );
      Spragma (Offload_wait (Var blk_v), Sblock []);
      kernel target fl i.arrays ~dev_name ~shift:no_shift (Var blk_v);
    ]
    @ out_transfers target fl i.arrays ~dev_name ~dev_ofs (Var blk_v)
  in
  let frees =
    List.map
      (fun a -> Sexpr (Call ("mic_free", [ Var (dev_name a) ])))
      i.arrays
  in
  Sblock
    (decls @ upfront @ [ first ]
    @ [
        Sfor
          {
            index = blk_v;
            lo = Int_lit 0;
            hi = Var nblk_v;
            step = Int_lit 1;
            body = loop_body;
          };
      ]
    @ frees)

(* Two block-sized buffers per streamed input, one per output:
   Figure 5(c) *)
let generate_double (i : info) =
  let fl = i.region.loop in
  let target = i.spec.target in
  (* capacity of one block buffer for array [a] *)
  let cap a =
    S.add
      (S.mul (Int_lit a.coeff) (Var bsize_v))
      (Int_lit (a.max_off - a.min_off + max a.coeff 1))
  in
  let name_even a = Util.mic_name_n a.name 1 in
  let name_odd a = Util.mic_name_n a.name 2 in
  let name_out a = a.name ^ "_b" in
  let name_invariant a = Util.mic_name a.name in
  let decls =
    [
      Sdecl (Tint, nblk_v, Some (Int_lit i.nblocks));
      Sdecl
        ( Tint,
          bsize_v,
          Some
            (S.div
               (S.sub (S.add fl.hi (Var nblk_v)) (S.add fl.lo (Int_lit 1)))
               (Var nblk_v)) );
    ]
    @ List.concat_map
        (fun a ->
          let mk name size =
            Sdecl
              ( Tptr a.elem,
                name,
                Some (Cast (Tptr a.elem, Call ("mic_malloc", [ size ]))) )
          in
          if not (streamed a) then [ mk (name_invariant a) a.total ]
          else
            (if is_input a then [ mk (name_even a) (cap a); mk (name_odd a) (cap a) ]
             else [])
            @ if is_output a then [ mk (name_out a) (cap a) ] else [])
        i.arrays
  in
  let upfront =
    List.filter_map
      (fun a ->
        if (not (streamed a)) && is_input a then
          Some
            (Spragma
               ( Offload_transfer
                   {
                     empty_spec with
                     target;
                     ins =
                       [
                         {
                           arr = a.name;
                           start = Int_lit 0;
                           len = a.total;
                           into = Some (name_invariant a, Int_lit 0);
                         };
                       ];
                   },
                 Sblock [] ))
        else None)
      i.arrays
  in
  (* block-relative device offset is always 0 in double-buffered mode *)
  let dev_ofs0 _ _ = Int_lit 0 in
  (* shift applied to body indexes: host element index of block start *)
  let shift a blk =
    if streamed a then fst (slice fl a blk) else Int_lit 0
  in
  (* device buffer selection depends on block parity; [parity] chooses
     the buffer set for the *current* block *)
  let dev_name_for parity a =
    if not (streamed a) then name_invariant a
    else if is_input a then if parity = 0 then name_even a else name_odd a
    else name_out a
  in
  (* inputs of the *next* block go to the other buffer set *)
  let next_dev_name parity a =
    if not (streamed a) then name_invariant a
    else if is_input a then if parity = 0 then name_odd a else name_even a
    else name_out a
  in
  let next_blk = S.add (Var blk_v) (Int_lit 1) in
  let branch parity =
    [
      Sif
        ( Binop (Lt, next_blk, Var nblk_v),
          [
            in_transfer target fl i.arrays ~dev_name:(next_dev_name parity)
              ~dev_ofs:dev_ofs0 next_blk;
          ],
          [] );
      Spragma (Offload_wait (Var blk_v), Sblock []);
      kernel target fl i.arrays ~dev_name:(dev_name_for parity) ~shift
        (Var blk_v);
    ]
    @ out_transfers target fl i.arrays ~dev_name:(dev_name_for parity)
        ~dev_ofs:dev_ofs0 (Var blk_v)
  in
  let first =
    in_transfer target fl i.arrays ~dev_name:(dev_name_for 0)
      ~dev_ofs:dev_ofs0 (Int_lit 0)
  in
  let loop_body =
    [
      Sif
        ( Binop (Eq, Binop (Mod, Var blk_v, Int_lit 2), Int_lit 0),
          branch 0,
          branch 1 );
    ]
  in
  Sblock
    (decls @ upfront @ [ first ]
    @ [
        Sfor
          {
            index = blk_v;
            lo = Int_lit 0;
            hi = Var nblk_v;
            step = Int_lit 1;
            body = loop_body;
          };
      ])

(** Apply the streaming transformation to one region. *)
let transform ?(nblocks = 10) ?(memory = Full) prog region =
  let* info = analyze ~nblocks prog region in
  let replacement =
    match memory with
    | Full -> generate_full info
    | Double_buffered -> generate_double info
  in
  match Util.replace_region prog region ~replacement with
  | Some prog' -> Ok prog'
  | None -> Error No_offload_spec

(** Stream every offloaded region that passes the legality check.
    Returns the rewritten program and the transformed region count. *)
let transform_all ?(nblocks = 10) ?(memory = Full) prog =
  let regions = Analysis.Offload_regions.offloaded prog in
  List.fold_left
    (fun (prog, n) region ->
      match transform ~nblocks ~memory prog region with
      | Ok prog' -> (prog', n + 1)
      | Error _ -> (prog, n))
    (prog, 0) regions
