(** Regularization of irregular memory accesses (Section IV).

    Three rewrites, each turning accesses that defeat streaming and
    512-bit vectorization into unit-stride ones:

    - {b Array reordering} (Figure 8): a gather [A[B[i]]] or a
      sparse strided access [A[k*i + b]] is replaced by a packed array
      built on the host; the loop then reads unit-stride.  Written
      irregular arrays are scattered back after the loop.  Only
      unguarded accesses, as the paper requires; strides whose constant
      offsets cover every residue (nothing wasted) are left alone.
    - {b Loop splitting} (Figure 7, the srad pattern): when the
      irregular accesses all occur in a prefix of scalar-temporary
      declarations, the loop splits in two — the first keeps the
      gathers, the second becomes fully regular and is marked
      [omp simd].
    - {b AoS-to-SoA}: an array of structures accessed as [a[i].f]
      becomes one packed array per accessed field. *)

type failure =
  | No_irregular_access
  | Guarded of string  (** irregular access under a branch: unsafe *)
  | Not_splittable
  | No_offload_spec
  | Unknown_function of string

val pp_failure : Format.formatter -> failure -> unit

type kind = Reorder | Split | Soa

val sparse_strided_arrays : Analysis.Access.t list -> string list
(** Arrays whose strided accesses skip elements (offsets modulo the
    stride cover fewer than [stride] residues) — the profitable
    reordering targets. *)

val split_point :
  Minic.Ast.for_loop ->
  (Minic.Ast.block * Minic.Ast.block) option
(** The Figure-7 pattern: (irregular scalar-decl prefix, regular rest). *)

val applicable_kinds :
  Minic.Ast.program -> Analysis.Offload_regions.region -> kind list

val applicable : Minic.Ast.program -> Analysis.Offload_regions.region -> bool

val reorder :
  Minic.Ast.program ->
  Analysis.Offload_regions.region ->
  (Minic.Ast.program, failure) result

val split :
  Minic.Ast.program ->
  Analysis.Offload_regions.region ->
  (Minic.Ast.program, failure) result

val aos_to_soa :
  Minic.Ast.program ->
  Analysis.Offload_regions.region ->
  (Minic.Ast.program, failure) result

val transform_all_kinds :
  kinds:kind list ->
  Minic.Ast.program ->
  Minic.Ast.program * (string * kind) list
(** Apply the rewrites in [kinds] that fit each offloaded region;
    returns the (function, kind) applications.  Lets callers (e.g. the
    differential harness) validate reorder/split separately from
    AoS-to-SoA. *)

val transform_all :
  Minic.Ast.program -> Minic.Ast.program * (string * kind) list
(** [transform_all_kinds ~kinds:[Reorder; Split; Soa]]. *)
