(** The shared-memory transformation (Section V), source-to-source.

    An offload whose data clauses carry {e pointer-based} structures
    (arrays whose element type contains a pointer) cannot use plain
    section copies: the pointers arrive on the device holding host
    addresses and fault on the first dereference — the problem Intel
    MYO solves with page faulting, slowly, and the paper solves with
    preallocated buffers plus augmented-pointer translation.

    This pass rewrites such an offload into the paper's scheme:

    - a device buffer is preallocated for each pointer-bearing array
      ([mic_malloc], the segmented-buffer allocation of Section V-A);
    - the whole structure is moved by one DMA per array, with the
      [translate()] clause rebasing intra-array pointers onto the
      device copy (the delta-table translation of Section V-B);
    - the offload body is retargeted at the device buffers, and [inout]
      structures are copied back (with the reverse translation) after
      the region.

    The rewrite is restricted to {e self-contained} structures: the
    pointers must stay within their own array (objects bump-allocated
    into one arena, exactly what the paper's allocator produces).
    Whether that holds is the programmer's contract, as in the paper;
    the dual-space interpreter turns violations into hard faults. *)

open Minic.Ast
module S = Analysis.Simplify

type failure =
  | No_pointer_arrays  (** nothing pointer-based in the clauses *)
  | Pointer_output of string
      (** the device would create pointers the host cannot translate *)
  | No_offload_spec
  | Unknown_function of string

let pp_failure fmt = function
  | No_pointer_arrays ->
      Format.fprintf fmt "no pointer-based structure in the data clauses"
  | Pointer_output a ->
      Format.fprintf fmt
        "array %s is a pointer-bearing pure output; device-created \
         pointers cannot be translated back"
        a
  | No_offload_spec -> Format.fprintf fmt "loop has no offload pragma"
  | Unknown_function f -> Format.fprintf fmt "unknown function %s" f

let ( let* ) = Result.bind

(* does a type contain a pointer anywhere? *)
let rec has_pointer prog ty =
  match ty with
  | Tptr _ -> true
  | Tarray (t, _) -> has_pointer prog t
  | Tstruct name -> (
      match find_struct prog name with
      | Some s -> List.exists (fun (t, _) -> has_pointer prog t) s.sfields
      | None -> false)
  | Tvoid | Tint | Tfloat | Tbool -> false

(* cells per element, mirroring the interpreter's layout (one cell per
   scalar/pointer slot) *)
let rec cells_of_ty prog ty =
  match ty with
  | Tvoid -> Some 0
  | Tint | Tfloat | Tbool | Tptr _ -> Some 1
  | Tarray (t, Some n) -> (
      match (cells_of_ty prog t, S.const_int n) with
      | Some k, Some n -> Some (k * n)
      | _ -> None)
  | Tarray (_, None) -> None
  | Tstruct name -> (
      match find_struct prog name with
      | None -> None
      | Some s ->
          List.fold_left
            (fun acc (t, _) ->
              match (acc, cells_of_ty prog t) with
              | Some a, Some k -> Some (a + k)
              | _ -> None)
            (Some 0) s.sfields)

(* pointer-bearing sections of a spec, with their element types *)
let pointer_sections prog f spec =
  let of_role role =
    List.filter_map
      (fun (s : section) ->
        match Util.elem_ty prog f s.arr with
        | Some elem when has_pointer prog elem -> Some (s, elem, role)
        | _ -> None)
      (match role with
      | `In -> spec.ins
      | `Out -> spec.outs
      | `Inout -> spec.inouts)
  in
  of_role `In @ of_role `Out @ of_role `Inout

let applicable prog (region : Analysis.Offload_regions.region) =
  match (region.spec, find_func prog region.func) with
  | Some spec, Some f -> pointer_sections prog f spec <> []
  | _ -> false

(** Rewrite one region to the preallocated-buffer + translated-DMA
    scheme. *)
let transform prog (region : Analysis.Offload_regions.region) =
  let* spec = Option.to_result ~none:No_offload_spec region.spec in
  let* f =
    Option.to_result
      ~none:(Unknown_function region.func)
      (find_func prog region.func)
  in
  let targets = pointer_sections prog f spec in
  let* () = if targets = [] then Error No_pointer_arrays else Ok () in
  let* () =
    match
      List.find_opt (fun (_, _, role) -> role = `Out) targets
    with
    | Some (s, _, _) -> Error (Pointer_output s.arr)
    | None -> Ok ()
  in
  let items =
    List.map
      (fun ((s : section), elem, role) ->
        let total = S.add s.start s.len in
        let cells =
          match cells_of_ty prog elem with Some k -> k | None -> 1
        in
        (s, elem, role, total, cells, Util.mic_name s.arr))
      targets
  in
  (* device buffers, preallocated once (Section V-A) *)
  let decls =
    List.map
      (fun (_, elem, _, total, cells, dev) ->
        Sdecl
          ( Tptr elem,
            dev,
            Some
              (Cast
                 (Tptr elem, Call ("mic_malloc", [ S.mul total (Int_lit cells) ])))
          ))
      items
  in
  (* one translated DMA per structure (Section V-B) *)
  let in_transfers =
    List.map
      (fun ((s : section), _, _, _, _, dev) ->
        Spragma
          ( Offload_transfer
              {
                empty_spec with
                target = spec.target;
                ins =
                  [ { arr = s.arr; start = s.start; len = s.len;
                      into = Some (dev, s.start) } ];
                translate = [ s.arr ];
              },
            Sblock [] ))
      items
  in
  (* inout structures come back with the reverse translation *)
  let out_transfers =
    List.filter_map
      (fun ((s : section), _, role, _, _, dev) ->
        if role = `Inout then
          Some
            (Spragma
               ( Offload_transfer
                   {
                     empty_spec with
                     target = spec.target;
                     outs =
                       [ { arr = dev; start = s.start; len = s.len;
                           into = Some (s.arr, s.start) } ];
                     translate = [ dev ];
                   },
                 Sblock [] ))
        else None)
      items
  in
  (* the offload itself: pointer arrays leave the clauses; the body is
     retargeted at the device buffers *)
  let gone = List.map (fun ((s : section), _, _, _, _, _) -> s.arr) items in
  let keep (s : section) = not (List.mem s.arr gone) in
  let spec' =
    {
      spec with
      ins = List.filter keep spec.ins;
      inouts = List.filter keep spec.inouts;
    }
  in
  let body =
    List.fold_left
      (fun body ((s : section), _, _, _, _, dev) ->
        Util.rename_array ~arr:s.arr ~to_:dev body)
      region.loop.body items
  in
  let new_offload =
    Spragma
      ( Offload spec',
        Spragma
          (Omp_parallel_for, Sfor { region.loop with body }) )
  in
  let replacement =
    Sblock (decls @ in_transfers @ [ new_offload ] @ out_transfers)
  in
  match Util.replace_region prog region ~replacement with
  | Some prog' -> Ok prog'
  | None -> Error No_offload_spec

(** Rewrite every offloaded region with pointer-based clauses. *)
let transform_all prog =
  let regions = Analysis.Offload_regions.offloaded prog in
  List.fold_left
    (fun (prog, n) region ->
      if applicable prog region then
        match transform prog region with
        | Ok prog' -> (prog', n + 1)
        | Error _ -> (prog, n)
      else (prog, n))
    (prog, 0) regions
