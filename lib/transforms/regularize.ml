(** Regularization of irregular memory accesses (Section IV).

    Three rewrites, each turning accesses that defeat streaming and
    512-bit vectorization into unit-stride ones:

    - {b Array reordering} (Figure 8): a gather [A[B[i]]] or a strided
      access [A[k*i + b]] is replaced by a packed array [A_pk] built on
      the host ([A_pk[r] = A[B[r]]]); the loop then reads [A_pk[i]],
      which is unit-stride, streamable, and vectorizable.  Written
      irregular arrays are scattered back after the loop.  Only applied
      to accesses not guarded by any branch, as the paper requires.
    - {b Loop splitting} (Figure 7, the [srad] pattern): when the
      irregular accesses all occur in a prefix of the loop body that
      only initializes scalar temporaries, the loop is split in two —
      the first keeps the irregular gathers, the second becomes fully
      regular and is marked [#pragma omp simd].
    - {b AoS-to-SoA}: an array of structures accessed as [a[i].f] is
      replaced by one packed array per accessed field. *)

open Minic.Ast
module A = Analysis.Access
module S = Analysis.Simplify

type failure =
  | No_irregular_access
  | Guarded of string  (** irregular access under a branch: unsafe *)
  | Not_splittable
  | No_offload_spec
  | Unknown_function of string

let pp_failure fmt = function
  | No_irregular_access -> Format.fprintf fmt "no irregular access to regularize"
  | Guarded a ->
      Format.fprintf fmt "irregular access to %s is branch-guarded" a
  | Not_splittable -> Format.fprintf fmt "loop does not match the split pattern"
  | No_offload_spec -> Format.fprintf fmt "loop has no offload pragma"
  | Unknown_function f -> Format.fprintf fmt "unknown function %s" f

let ( let* ) = Result.bind

(** {1 Applicability} *)

type kind = Reorder | Split | Soa

(* Arrays whose strided accesses leave elements unused: the paper's
   second Figure-8 pattern (e.g. nn reads fields 0 and 1 of 5-field
   records).  A stride c access set is "sparse" when the distinct
   constant offsets modulo c cover fewer than c residues — if every
   residue is touched (streamcluster reads all 4 coordinates), nothing
   is wasted and reordering would only add copies. *)
let sparse_strided_arrays accesses =
  let tbl = Hashtbl.create 4 in
  List.iter
    (fun (a : A.t) ->
      match a.kind with
      | A.Affine aff when abs aff.Analysis.Affine.coeff > 1 -> (
          let c = abs aff.Analysis.Affine.coeff in
          let off =
            match Analysis.Simplify.const_int aff.Analysis.Affine.offset with
            | Some o -> Some (((o mod c) + c) mod c)
            | None -> None
          in
          match (Hashtbl.find_opt tbl a.arr, off) with
          | None, Some o -> Hashtbl.replace tbl a.arr (Some (c, [ o ]))
          | Some (Some (c', os)), Some o when c' = c ->
              Hashtbl.replace tbl a.arr
                (Some (c, if List.mem o os then os else o :: os))
          | _, _ -> Hashtbl.replace tbl a.arr None)
      | _ -> ())
    accesses;
  Hashtbl.fold
    (fun arr v acc ->
      match v with
      | Some (c, os) when List.length os < c -> arr :: acc
      | _ -> acc)
    tbl []

(* accesses that the reordering rewrite targets: gathers, and affine
   strides that skip elements *)
let reorder_target_in accesses =
  let sparse = sparse_strided_arrays accesses in
  fun (a : A.t) ->
    match a.kind with
    | A.Gather _ -> true
    | A.Affine aff ->
        abs aff.Analysis.Affine.coeff > 1 && List.mem a.arr sparse
    | A.Opaque -> false

(* The split pattern: a maximal prefix of scalar-initializing
   declarations containing all the loop's irregular accesses. *)
let split_point (fl : for_loop) =
  let is_scalar_decl = function
    | Sdecl ((Tint | Tfloat | Tbool), _, Some _) -> true
    | _ -> false
  in
  let rec prefix acc = function
    | s :: rest when is_scalar_decl s -> prefix (s :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let pre, rest = prefix [] fl.body in
  if pre = [] || rest = [] then None
  else
    let irregular_in block =
      A.of_block ~index:fl.index ~guarded:false [] block
      |> List.exists (fun a -> not (A.is_affine a))
    in
    if irregular_in pre && not (irregular_in rest) then Some (pre, rest)
    else None

(** Which regularization rewrites apply to this loop? *)
let applicable_kinds prog (region : Analysis.Offload_regions.region) =
  let fl = region.loop in
  let accesses = A.of_loop fl in
  let kinds = ref [] in
  let add k = if not (List.mem k !kinds) then kinds := k :: !kinds in
  (* SoA: a clause array of struct element type accessed via a[e].f *)
  (match find_func prog region.func with
  | None -> ()
  | Some f ->
      let arrays = A.arrays accesses in
      if
        List.exists
          (fun arr ->
            match Util.elem_ty prog f arr with
            | Some (Tstruct _) -> true
            | _ -> false)
          arrays
      then add Soa);
  (* Split: irregular prefix + regular rest *)
  (match split_point fl with Some _ -> add Split | None -> ());
  (* Reorder: unguarded gather or strided accesses *)
  (let reorder_target = reorder_target_in accesses in
   if List.exists (fun a -> reorder_target a && not a.A.guarded) accesses
   then add Reorder);
  List.rev !kinds

let applicable prog region = applicable_kinds prog region <> []

(** {1 Array reordering} *)

(* distinct (array, index-expression) patterns to pack.  The table
   restamps a key on every touch and lists keys by ascending final
   stamp: the same last-touch order as the move-to-front assoc list
   this replaces, without its O(n^2) [remove_assoc] scans. *)
let reorder_patterns accesses =
  let targets = List.filter (reorder_target_in accesses) accesses in
  let tbl = Hashtbl.create 8 in
  let stamp = ref 0 in
  List.iter
    (fun (a : A.t) ->
      let key = (a.arr, a.index) in
      incr stamp;
      let r, w, g =
        match Hashtbl.find_opt tbl key with
        | Some (_, (r, w, g)) -> (r, w, g)
        | None -> (false, false, false)
      in
      Hashtbl.replace tbl key
        (!stamp, (r || a.dir = A.Read, w || a.dir = A.Write, g || a.guarded)))
    targets;
  Hashtbl.fold (fun key (st, v) acc -> (st, (key, v)) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map snd

(** Reorder the irregular accesses of one offloaded region
    (Figure 8).  The packed arrays are built on the host before the
    offload; the offload's data clauses are rewritten to transfer the
    packed arrays instead of the scattered originals. *)
let reorder prog (region : Analysis.Offload_regions.region) =
  let* spec = Option.to_result ~none:No_offload_spec region.spec in
  let* f =
    Option.to_result
      ~none:(Unknown_function region.func)
      (find_func prog region.func)
  in
  let fl = region.loop in
  let accesses = A.of_loop fl in
  let patterns = reorder_patterns accesses in
  let* () = if patterns = [] then Error No_irregular_access else Ok () in
  let* () =
    match List.find_opt (fun (_, (_, _, g)) -> g) patterns with
    | Some ((arr, _), _) -> Error (Guarded arr)
    | None -> Ok ()
  in
  let niters = S.sub fl.hi fl.lo in
  let r = "r__" in
  let iter_to_r e =
    (* index expression evaluated at iteration [lo + r] *)
    subst_expr ~name:fl.index ~by:(S.add fl.lo (Var r)) e
  in
  let pk_of_idx = Hashtbl.create 8 in
  let items =
    List.map
      (fun ((arr, idx), (reads, writes, _)) ->
        let pk = Util.fresh (arr ^ "_pk") in
        Hashtbl.replace pk_of_idx (arr, idx) pk;
        let elem =
          match Util.elem_ty prog f arr with Some t -> t | None -> Tfloat
        in
        (arr, idx, pk, elem, reads, writes))
      patterns
  in
  let decls =
    List.map
      (fun (_, _, pk, elem, _, _) ->
        Sdecl
          (Tptr elem, pk, Some (Cast (Tptr elem, Call ("malloc", [ niters ]))))
      )
      items
  in
  (* host-side pack loop: pk[r] = arr[idx@(lo+r)] for read patterns *)
  let pack_assigns =
    List.filter_map
      (fun (arr, idx, pk, _, reads, _) ->
        if reads then
          Some (Sassign (Index (Var pk, Var r), Index (Var arr, iter_to_r idx)))
        else None)
      items
  in
  let pack_loop =
    if pack_assigns = [] then []
    else
      [
        Sfor
          { index = r; lo = Int_lit 0; hi = niters; step = Int_lit 1;
            body = pack_assigns };
      ]
  in
  (* host-side scatter-back loop for written patterns *)
  let scatter_assigns =
    List.filter_map
      (fun (arr, idx, pk, _, _, writes) ->
        if writes then
          Some (Sassign (Index (Var arr, iter_to_r idx), Index (Var pk, Var r)))
        else None)
      items
  in
  let scatter_loop =
    if scatter_assigns = [] then []
    else
      [
        Sfor
          { index = r; lo = Int_lit 0; hi = niters; step = Int_lit 1;
            body = scatter_assigns };
      ]
  in
  (* rewrite the loop body: arr[idx] -> pk[i - lo] *)
  let rec rewrite_expr e =
    match e with
    | Index (Var arr, idx) -> (
        match Hashtbl.find_opt pk_of_idx (arr, idx) with
        | Some pk ->
            Index (Var pk, S.sub (Var fl.index) fl.lo)
        | None -> Index (Var arr, rewrite_expr idx))
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Index (a, i) -> Index (rewrite_expr a, rewrite_expr i)
    | Field (a, fd) -> Field (rewrite_expr a, fd)
    | Arrow (a, fd) -> Arrow (rewrite_expr a, fd)
    | Deref a -> Deref (rewrite_expr a)
    | Addr a -> Addr (rewrite_expr a)
    | Binop (op, a, b) -> Binop (op, rewrite_expr a, rewrite_expr b)
    | Unop (op, a) -> Unop (op, rewrite_expr a)
    | Call (fn, args) -> Call (fn, List.map rewrite_expr args)
    | Cast (t, a) -> Cast (t, rewrite_expr a)
  in
  let rec rewrite_stmt s =
    match s with
    | Sexpr e -> Sexpr (rewrite_expr e)
    | Sassign (lv, rv) -> Sassign (rewrite_expr lv, rewrite_expr rv)
    | Sdecl (t, n, init) -> Sdecl (t, n, Option.map rewrite_expr init)
    | Sif (c, b1, b2) ->
        Sif (rewrite_expr c, List.map rewrite_stmt b1, List.map rewrite_stmt b2)
    | Swhile (c, b) -> Swhile (rewrite_expr c, List.map rewrite_stmt b)
    | Sfor fl' ->
        Sfor
          {
            fl' with
            lo = rewrite_expr fl'.lo;
            hi = rewrite_expr fl'.hi;
            step = rewrite_expr fl'.step;
            body = List.map rewrite_stmt fl'.body;
          }
    | Sreturn e -> Sreturn (Option.map rewrite_expr e)
    | Sblock b -> Sblock (List.map rewrite_stmt b)
    | Spragma (p, s) -> Spragma (p, rewrite_stmt s)
    | Sbreak | Scontinue -> s
  in
  let body' = List.map rewrite_stmt fl.body in
  (* rewrite the data clauses: drop fully-replaced arrays, add packed
     ones *)
  let replaced_arrays =
    List.filter_map
      (fun (arr, _, _, _, _, _) ->
        (* an array is dropped from the clauses only if every access to
           it was irregular (and therefore packed) *)
        let reorder_target = reorder_target_in accesses in
        let still_accessed =
          List.exists
            (fun (a : A.t) ->
              String.equal a.arr arr && not (reorder_target a))
            accesses
        in
        if still_accessed then None else Some arr)
      items
  in
  let keep s = not (List.mem s.arr replaced_arrays) in
  let pk_sections mk_role =
    List.filter_map
      (fun (_, _, pk, _, reads, writes) ->
        if mk_role reads writes then Some (section_full pk niters) else None)
      items
  in
  let spec' =
    {
      spec with
      ins = List.filter keep spec.ins @ pk_sections (fun r w -> r && not w);
      outs = List.filter keep spec.outs @ pk_sections (fun r w -> w && not r);
      inouts = List.filter keep spec.inouts @ pk_sections (fun r w -> r && w);
    }
  in
  let new_loop = Spragma (Offload spec', Spragma (Omp_parallel_for, Sfor { fl with body = body' })) in
  let replacement =
    Sblock (decls @ pack_loop @ [ new_loop ] @ scatter_loop)
  in
  match Util.replace_region prog region ~replacement with
  | Some prog' -> Ok prog'
  | None -> Error No_offload_spec

(** {1 Loop splitting} *)

(** Split the irregular prefix of the loop into its own loop
    (Figure 7).  Both halves stay inside the original offload; the
    second is marked [omp simd] since it is now fully regular. *)
let split prog (region : Analysis.Offload_regions.region) =
  let* spec = Option.to_result ~none:No_offload_spec region.spec in
  let fl = region.loop in
  let* pre, rest =
    Option.to_result ~none:Not_splittable (split_point fl)
  in
  let niters = S.sub fl.hi fl.lo in
  let rel = S.sub (Var fl.index) fl.lo in
  let tmp_of = List.filter_map (function
    | Sdecl (ty, v, Some _) -> Some (v, (Util.fresh (v ^ "_t"), ty))
    | _ -> None)
    pre
  in
  let tmp_decls =
    List.map
      (fun (_, (tmp, ty)) ->
        Sdecl (Tptr ty, tmp, Some (Cast (Tptr ty, Call ("mic_malloc", [ niters ])))))
      tmp_of
  in
  (* loop 1: original scalar decls followed by stores into the temps *)
  let stores =
    List.map
      (fun (v, (tmp, _)) -> Sassign (Index (Var tmp, rel), Var v))
      tmp_of
  in
  let loop1 =
    Spragma
      ( Omp_parallel_for,
        Sfor { fl with body = pre @ stores } )
  in
  (* loop 2: the regular rest, temps substituted for the scalars *)
  let rest' =
    List.fold_left
      (fun body (v, (tmp, _)) ->
        subst_block ~name:v ~by:(Index (Var tmp, rel)) body)
      rest tmp_of
  in
  let loop2 =
    Spragma
      ( Omp_parallel_for,
        Spragma (Omp_simd, Sfor { fl with body = rest' }) )
  in
  let replacement =
    Spragma (Offload spec, Sblock (tmp_decls @ [ loop1; loop2 ]))
  in
  match Util.replace_region prog region ~replacement with
  | Some prog' -> Ok prog'
  | None -> Error No_offload_spec

(** {1 AoS to SoA} *)

(** Convert arrays of structures accessed as [a[e].f] into one array
    per field.  Restricted to unguarded, affine element indexes; the
    per-field arrays are created and filled on the host, and written
    fields are copied back after the loop. *)
let aos_to_soa prog (region : Analysis.Offload_regions.region) =
  let* spec = Option.to_result ~none:No_offload_spec region.spec in
  let* f =
    Option.to_result
      ~none:(Unknown_function region.func)
      (find_func prog region.func)
  in
  let fl = region.loop in
  (* find struct arrays and the fields they are accessed through *)
  let struct_arrays =
    List.filter_map
      (fun s ->
        match Util.elem_ty prog f s.arr with
        | Some (Tstruct sname) -> Some (s.arr, sname, S.add s.start s.len)
        | _ -> None)
      (spec.ins @ spec.outs @ spec.inouts)
  in
  let* () = if struct_arrays = [] then Error No_irregular_access else Ok () in
  (* collect field accesses a[e].f in the body.  Restamped on every
     touch and read back by descending final stamp: the same
     most-recent-touch-first order as the move-to-front assoc list
     this replaces, without its O(n^2) [remove_assoc] scans. *)
  let field_uses = Hashtbl.create 8 in
  let fu_stamp = ref 0 in
  let record arr fld ~write =
    let key = (arr, fld) in
    incr fu_stamp;
    let r, w =
      match Hashtbl.find_opt field_uses key with
      | Some (_, (r, w)) -> (r, w)
      | None -> (false, false)
    in
    Hashtbl.replace field_uses key (!fu_stamp, (r || not write, w || write))
  in
  let rec scan_expr ~write e =
    match e with
    | Field (Index (Var arr, ie), fld)
      when List.exists (fun (a, _, _) -> String.equal a arr) struct_arrays ->
        record arr fld ~write;
        scan_expr ~write:false ie
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> ()
    | Index (a, i) ->
        scan_expr ~write a;
        scan_expr ~write:false i
    | Field (a, _) | Arrow (a, _) | Deref a | Addr a | Unop (_, a)
    | Cast (_, a) ->
        scan_expr ~write a
    | Binop (_, a, b) ->
        scan_expr ~write:false a;
        scan_expr ~write:false b
    | Call (_, args) -> List.iter (scan_expr ~write:false) args
  in
  let rec scan_stmt s =
    match s with
    | Sexpr e -> scan_expr ~write:false e
    | Sassign (lv, rv) ->
        scan_expr ~write:true lv;
        scan_expr ~write:false rv
    | Sdecl (_, _, init) -> Option.iter (scan_expr ~write:false) init
    | Sif (c, b1, b2) ->
        scan_expr ~write:false c;
        List.iter scan_stmt b1;
        List.iter scan_stmt b2
    | Swhile (c, b) ->
        scan_expr ~write:false c;
        List.iter scan_stmt b
    | Sfor fl' ->
        scan_expr ~write:false fl'.lo;
        scan_expr ~write:false fl'.hi;
        scan_expr ~write:false fl'.step;
        List.iter scan_stmt fl'.body
    | Sreturn e -> Option.iter (scan_expr ~write:false) e
    | Sblock b -> List.iter scan_stmt b
    | Spragma (_, s) -> scan_stmt s
    | Sbreak | Scontinue -> ()
  in
  List.iter scan_stmt fl.body;
  let* () =
    if Hashtbl.length field_uses = 0 then Error No_irregular_access else Ok ()
  in
  let uses =
    Hashtbl.fold (fun key (st, v) acc -> (st, (key, v)) :: acc) field_uses []
    |> List.sort (fun (a, _) (b, _) -> compare b a)
    |> List.map snd
  in
  (* per-field arrays *)
  let j = "j__" in
  let items =
    List.map
      (fun ((arr, fld), (reads, writes)) ->
        let _, sname, total =
          List.find (fun (a, _, _) -> String.equal a arr) struct_arrays
        in
        let fty =
          match find_struct prog sname with
          | Some sd -> (
              match
                List.find_opt (fun (_, fn) -> String.equal fn fld) sd.sfields
              with
              | Some (t, _) -> t
              | None -> Tfloat)
          | None -> Tfloat
        in
        (arr, fld, arr ^ "_" ^ fld, fty, total, reads, writes))
      uses
  in
  let decls =
    List.map
      (fun (_, _, name, fty, total, _, _) ->
        Sdecl (Tptr fty, name, Some (Cast (Tptr fty, Call ("malloc", [ total ]))))
      )
      items
  in
  let pack =
    List.filter_map
      (fun (arr, fld, name, _, total, reads, _) ->
        if reads then
          Some
            (Sfor
               {
                 index = j; lo = Int_lit 0; hi = total; step = Int_lit 1;
                 body =
                   [
                     Sassign
                       ( Index (Var name, Var j),
                         Field (Index (Var arr, Var j), fld) );
                   ];
               })
        else None)
      items
  in
  let unpack =
    List.filter_map
      (fun (arr, fld, name, _, total, _, writes) ->
        if writes then
          Some
            (Sfor
               {
                 index = j; lo = Int_lit 0; hi = total; step = Int_lit 1;
                 body =
                   [
                     Sassign
                       ( Field (Index (Var arr, Var j), fld),
                         Index (Var name, Var j) );
                   ];
               })
        else None)
      items
  in
  (* rewrite body: a[e].f -> a_f[e] *)
  let rec rw_expr e =
    match e with
    | Field (Index (Var arr, ie), fld) -> (
        match
          List.find_opt
            (fun (a, fd, _, _, _, _, _) ->
              String.equal a arr && String.equal fd fld)
            items
        with
        | Some (_, _, name, _, _, _, _) -> Index (Var name, rw_expr ie)
        | None -> Field (Index (Var arr, rw_expr ie), fld))
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Index (a, i) -> Index (rw_expr a, rw_expr i)
    | Field (a, fd) -> Field (rw_expr a, fd)
    | Arrow (a, fd) -> Arrow (rw_expr a, fd)
    | Deref a -> Deref (rw_expr a)
    | Addr a -> Addr (rw_expr a)
    | Binop (op, a, b) -> Binop (op, rw_expr a, rw_expr b)
    | Unop (op, a) -> Unop (op, rw_expr a)
    | Call (fn, args) -> Call (fn, List.map rw_expr args)
    | Cast (t, a) -> Cast (t, rw_expr a)
  in
  let body' =
    List.map
      (map_stmt (fun s ->
           match s with
           | Sexpr e -> Sexpr (rw_expr e)
           | Sassign (lv, rv) -> Sassign (rw_expr lv, rw_expr rv)
           | Sdecl (t, n, init) -> Sdecl (t, n, Option.map rw_expr init)
           | Sif (c, b1, b2) -> Sif (rw_expr c, b1, b2)
           | Swhile (c, b) -> Swhile (rw_expr c, b)
           | Sfor fl' ->
               Sfor
                 {
                   fl' with
                   lo = rw_expr fl'.lo;
                   hi = rw_expr fl'.hi;
                   step = rw_expr fl'.step;
                 }
           | Sreturn e -> Sreturn (Option.map rw_expr e)
           | s -> s))
      fl.body
  in
  (* replace struct-array clauses by per-field clauses *)
  let soa_arrays = List.map (fun (a, _, _) -> a) struct_arrays in
  let keep s = not (List.mem s.arr soa_arrays) in
  let sections role =
    List.filter_map
      (fun (_, _, name, _, total, reads, writes) ->
        if role reads writes then Some (section_full name total) else None)
      items
  in
  let spec' =
    {
      spec with
      ins = List.filter keep spec.ins @ sections (fun r w -> r && not w);
      outs = List.filter keep spec.outs @ sections (fun r w -> w && not r);
      inouts = List.filter keep spec.inouts @ sections (fun r w -> r && w);
    }
  in
  let new_loop =
    Spragma
      ( Offload spec',
        Spragma (Omp_parallel_for, Sfor { fl with body = body' }) )
  in
  let replacement = Sblock (decls @ pack @ [ new_loop ] @ unpack) in
  match Util.replace_region prog region ~replacement with
  | Some prog' -> Ok prog'
  | None -> Error No_offload_spec

(** Apply the regularization rewrites in [kinds] that fit each
    offloaded region.  Returns the program and the list of
    (function, kind) applications. *)
let transform_all_kinds ~kinds:wanted prog =
  let regions = Analysis.Offload_regions.offloaded prog in
  List.fold_left
    (fun (prog, applied) region ->
      let kinds =
        List.filter (fun k -> List.mem k wanted) (applicable_kinds prog region)
      in
      List.fold_left
        (fun (prog, applied) kind ->
          let result =
            match kind with
            | Reorder -> reorder prog region
            | Split -> split prog region
            | Soa -> aos_to_soa prog region
          in
          match result with
          | Ok prog' -> (prog', (region.func, kind) :: applied)
          | Error _ -> (prog, applied))
        (prog, applied) kinds)
    (prog, []) regions

let transform_all prog = transform_all_kinds ~kinds:[ Reorder; Split; Soa ] prog
