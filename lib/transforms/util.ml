(** Shared helpers for the source-to-source transformations: fresh
    names, scope lookup, and region replacement. *)

open Minic.Ast

(** Fresh-name generation.  Generated names use a [__] suffix so they
    cannot collide with user identifiers (the MiniC front end could
    forbid [__] in user code; in practice the benchmarks never use
    it).

    The counter is {e domain-local}: parallel sweeps run transforms on
    worker domains, and a shared counter would both race and make the
    generated names depend on scheduling.  Entry points that rewrite a
    whole program ([Comp.optimize], [Check.apply]) call {!reset_fresh}
    first, so the names in a rewritten program are a pure function of
    the input program — identical at any [--jobs]. *)
let fresh_counter = Domain.DLS.new_key (fun () -> ref 0)

let reset_fresh () = Domain.DLS.get fresh_counter := 0

let fresh base =
  let c = Domain.DLS.get fresh_counter in
  incr c;
  Printf.sprintf "%s__%d" base !c

(** Device-buffer name for a host array, as in the paper's examples
    ([sptprice] -> [sptprice_mic], [sptprice1], [sptprice2]). *)
let mic_name arr = arr ^ "_mic"
let mic_name_n arr n = Printf.sprintf "%s_mic%d" arr n

(** {1 Scope lookup} *)

(** Type of a variable visible at the top of a function body: checks
    parameters, then global declarations, then declarations in the
    function body (outermost first). *)
let var_ty prog (f : func) name =
  let param =
    List.find_map
      (fun p -> if String.equal p.pname name then Some p.pty else None)
      f.params
  in
  match param with
  | Some t -> Some t
  | None -> (
      let local =
        fold_stmts
          (fun acc s ->
            match s with
            | Sdecl (t, n, _) when String.equal n name && acc = None ->
                Some t
            | _ -> acc)
          None f.body
      in
      match local with
      | Some t -> Some t
      | None ->
          List.find_map
            (function
              | Gvar (t, n, _) when String.equal n name -> Some t
              | _ -> None)
            prog)

let is_array_ty = function
  | Some (Tarray _ | Tptr _) -> true
  | _ -> false

(** Statically declared element count of an array variable, if known. *)
let array_size prog f name =
  match var_ty prog f name with
  | Some (Tarray (_, Some n)) -> Some n
  | _ -> None

(** Element type of an array variable. *)
let elem_ty prog f name =
  match var_ty prog f name with
  | Some (Tarray (t, _) | Tptr t) -> Some t
  | _ -> None

(** {1 Region matching and replacement} *)

(* Does [stmt] carry exactly this region's loop (comparing the loop
   structurally and the offload spec if any)? *)
let matches_region (r : Analysis.Offload_regions.region) stmt =
  match Analysis.Offload_regions.peel [] stmt with
  | Some (pragmas, fl) ->
      let spec =
        List.find_map (function Offload s -> Some s | _ -> None) pragmas
      in
      equal_for_loop fl r.loop
      && (match (spec, r.spec) with
         | None, None -> true
         | Some a, Some b -> equal_offload_spec a b
         | _ -> false)
  | None -> false

(** Replace the statement carrying [region] with [replacement] in the
    program.  [None] when the region cannot be located (e.g. the
    program was already rewritten) — a typed miss, never an exception:
    transforms run deep inside [optimize], and a long-running caller
    must be able to treat a stale region as an ordinary refusal. *)
let replace_region prog (region : Analysis.Offload_regions.region)
    ~replacement =
  let found = ref false in
  let rewrite stmt =
    if (not !found) && matches_region region stmt then begin
      found := true;
      replacement
    end
    else stmt
  in
  let prog' =
    map_funcs
      (fun f ->
        if String.equal f.fname region.func then
          { f with body = map_block rewrite f.body }
        else f)
      prog
  in
  if !found then Some prog' else None

(** Rename array [arr] to [to_] in indexed positions of a block, with
    an optional index shift: [arr[e]] becomes [to_[e - shift]].  Plain
    (non-indexed) mentions of [arr] are also renamed. *)
let rename_array ?(shift = Int_lit 0) ~arr ~to_ block =
  let rec rewrite_expr e =
    match e with
    | Index (Var a, ie) when String.equal a arr ->
        Index (Var to_, Analysis.Simplify.sub (rewrite_expr ie) shift)
    | Var a when String.equal a arr -> Var to_
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Index (a, ie) -> Index (rewrite_expr a, rewrite_expr ie)
    | Field (a, f) -> Field (rewrite_expr a, f)
    | Arrow (a, f) -> Arrow (rewrite_expr a, f)
    | Deref a -> Deref (rewrite_expr a)
    | Addr a -> Addr (rewrite_expr a)
    | Binop (op, a, b) -> Binop (op, rewrite_expr a, rewrite_expr b)
    | Unop (op, a) -> Unop (op, rewrite_expr a)
    | Call (fn, args) -> Call (fn, List.map rewrite_expr args)
    | Cast (t, a) -> Cast (t, rewrite_expr a)
  in
  let rec rewrite_stmt s =
    match s with
    | Sexpr e -> Sexpr (rewrite_expr e)
    | Sassign (lv, rv) -> Sassign (rewrite_expr lv, rewrite_expr rv)
    | Sdecl (t, n, init) -> Sdecl (t, n, Option.map rewrite_expr init)
    | Sif (c, b1, b2) ->
        Sif (rewrite_expr c, List.map rewrite_stmt b1, List.map rewrite_stmt b2)
    | Swhile (c, b) -> Swhile (rewrite_expr c, List.map rewrite_stmt b)
    | Sfor fl ->
        Sfor
          {
            fl with
            lo = rewrite_expr fl.lo;
            hi = rewrite_expr fl.hi;
            step = rewrite_expr fl.step;
            body = List.map rewrite_stmt fl.body;
          }
    | Sreturn e -> Sreturn (Option.map rewrite_expr e)
    | Sblock b -> Sblock (List.map rewrite_stmt b)
    | Spragma (p, s) -> Spragma (p, rewrite_stmt s)
    | Sbreak | Scontinue -> s
  in
  List.map rewrite_stmt block

(** Build [imin(a, b)] / [imax(a, b)] calls. *)
let imin a b = Call ("imin", [ a; b ])
let imax a b = Call ("imax", [ a; b ])
