(** Minimal COI-style signal channel between host and device, used by
    thread reuse (Section III-C): the persistent kernel waits for each
    data block's signal instead of being relaunched.  A functional
    simulation with timestamps, so ordering logic is testable
    independently of the event engine. *)

type t

val create : ?obs:Obs.t -> ?signal_cost:float -> ?wait_cost:float -> unit -> t
(** With [?obs], every signal/wait is counted ([coi.signals] /
    [coi.waits]) and recorded as an {!Obs.Signal} span on the
    simulated clock. *)

exception Never_signalled of int

val signal : t -> tag:int -> time:float -> float
(** Host raises [tag] at [time]; returns when the host continues.
    Re-signalling keeps the earliest time. *)

val wait : t -> tag:int -> time:float -> float
(** Device waits for [tag] from [time]; returns when the kernel
    resumes.  Raises {!Never_signalled} for a tag never raised — a
    lost-signal deadlock, surfaced loudly. *)

val signalled : t -> int -> bool

val saving_per_block : Machine.Config.t -> float
(** Launch overhead minus signal cost: what thread reuse saves per
    block. *)
