(** Minimal COI-style signal channel between host and device, used by
    thread reuse (Section III-C): the persistent kernel waits for each
    data block's signal instead of being relaunched.  A functional
    simulation with timestamps, so ordering logic is testable
    independently of the event engine.  Under a fault plan a signal can
    be dropped or delayed; only {e delivered} signals exist. *)

type t

val create :
  ?obs:Obs.t ->
  ?plan:Fault.t ->
  ?dev:int ->
  ?signal_cost:float ->
  ?wait_cost:float ->
  unit ->
  t
(** With [?obs], every signal/wait is counted ([coi.signals] /
    [coi.waits]) and recorded as an {!Obs.Signal} span on the simulated
    clock.  With [?plan], signals may be dropped or delayed and waits
    default to the plan's recovery timeout.  A channel connects the
    host to one device's persistent kernel: [?dev] defaults to the
    plan's device (else 0). *)

val dev : t -> int
(** The device this channel talks to. *)

exception Never_signalled of int

exception Timeout of { tag : int; waited_s : float }
(** The wait gave up after [waited_s]: the recoverable form of a
    lost-signal deadlock (the caller can re-signal, poll, or fall
    back), as opposed to {!Never_signalled}. *)

val signal : t -> tag:int -> time:float -> float
(** Host raises [tag] at [time]; returns when the host continues.
    Under a fault plan the signal may be dropped ({e not} delivered —
    a later re-signal delivers at its own time) or delayed.  Among
    delivered signals the earliest delivery wins. *)

val wait : ?timeout:float -> t -> tag:int -> time:float -> float
(** Device waits for [tag] from [time]; returns when the kernel
    resumes.  For a tag never delivered: raises {!Timeout} after the
    timeout (explicit, or the fault plan's [wait_timeout_s]), or
    {!Never_signalled} when there is no timeout — a lost-signal
    deadlock, surfaced loudly. *)

val signalled : t -> int -> bool
(** Whether [tag] has been {e delivered}; dropped signals don't count. *)

val saving_per_block : Machine.Config.t -> float
(** Launch overhead minus signal cost: what thread reuse saves per
    block. *)
