(** Segmented shared-memory allocator (Section V-A).

    The allocation strategy the paper settles on: fixed-size segments
    allocated on demand.  One segment when the data structure is small;
    as it grows, new segments are added without ever moving existing
    objects (so pointers stay valid, unlike the grow-and-copy scheme),
    and the total is not limited by the largest contiguous chunk the OS
    can hand out (unlike one huge buffer).

    The store is word-addressed: one cell holds one integer value (a
    scalar or an encoded {!Xptr}).  Sizes are in cells. *)

type segment = {
  bid : int;
  cpu_base : int;  (** simulated host virtual base address *)
  cells : int array;
  mutable used : int;
}

type t = {
  seg_cells : int;
  mutable segments : segment list;  (** newest first *)
  mutable allocs : int;  (** allocation count, for Table III *)
  obs : Obs.t option;  (** observability sink, if any *)
}

(** Errors are values: allocation failures are reported, not escaped
    with [failwith] (the front end's invariant, kept here too). *)
type error = Out_of_buffer_ids of { max : int }

exception Error of error

let pp_error fmt = function
  | Out_of_buffer_ids { max } ->
      Format.fprintf fmt
        "Segbuf: out of buffer ids (bid is one byte, max %d segments)" max

let default_seg_cells = 1 lsl 16

(* Segments get distinct, non-adjacent virtual bases, as real mallocs
   would: translation must not rely on contiguity. *)
let base_of_bid ~seg_cells bid = 0x1000_0000 + (bid * (seg_cells + 0x1000))

let create ?obs ?(seg_cells = default_seg_cells) () =
  if seg_cells <= 0 then invalid_arg "Segbuf.create: seg_cells <= 0";
  { seg_cells; segments = []; allocs = 0; obs }

let seg_count t = List.length t.segments

let used_cells t =
  List.fold_left (fun acc s -> acc + s.used) 0 t.segments

let capacity_cells t = seg_count t * t.seg_cells

let alloc_count t = t.allocs

let new_segment t =
  let bid = seg_count t in
  if bid >= Xptr.max_buffers then
    Result.Error (Out_of_buffer_ids { max = Xptr.max_buffers })
  else begin
    let s =
      {
        bid;
        cpu_base = base_of_bid ~seg_cells:t.seg_cells bid;
        cells = Array.make t.seg_cells 0;
        used = 0;
      }
    in
    t.segments <- s :: t.segments;
    (match t.obs with
    | None -> ()
    | Some o -> Obs.incr o "segbuf.seg_allocs");
    Ok s
  end

(** Allocate an object of [n] cells, or report buffer-id exhaustion as
    a value.  Objects never span segments and never move.  When the
    current segment is full a new one is created — no data is copied,
    which is the point of the scheme.  Raises [Invalid_argument] only
    for sizes that can never fit ([n <= 0] or larger than a segment). *)
let try_alloc t n =
  if n <= 0 || n > t.seg_cells then
    invalid_arg
      (Printf.sprintf "Segbuf.alloc: size %d (segment holds %d)" n
         t.seg_cells);
  let seg =
    match t.segments with
    | s :: _ when s.used + n <= t.seg_cells -> Ok s
    | _ -> new_segment t
  in
  Result.map
    (fun seg ->
      let p = Xptr.make ~bid:seg.bid ~addr:(seg.cpu_base + seg.used) in
      seg.used <- seg.used + n;
      t.allocs <- t.allocs + 1;
      (match t.obs with
      | None -> ()
      | Some o ->
          Obs.incr o "segbuf.allocs";
          Obs.observe o "segbuf.alloc_cells" (float_of_int n));
      p)
    seg

(** Exception-raising convenience over {!try_alloc}: raises {!Error}
    (a typed exception, catchable at the allocation boundary) on
    buffer-id exhaustion. *)
let alloc t n =
  match try_alloc t n with Ok p -> p | Result.Error e -> raise (Error e)

let find_segment t bid =
  match List.find_opt (fun s -> s.bid = bid) t.segments with
  | Some s -> s
  | None -> invalid_arg (Printf.sprintf "Segbuf: unknown bid %d" bid)

(* cell index of [p + k] within its segment, bounds-checked *)
let cell_index seg (p : Xptr.t) k =
  let i = p.addr - seg.cpu_base + k in
  if i < 0 || i >= seg.used then
    invalid_arg
      (Printf.sprintf "Segbuf: access at %#x+%d outside segment %d" p.addr k
         seg.bid);
  i

(** Read cell [k] of the object at [p] (host side). *)
let get t p k =
  let seg = find_segment t p.Xptr.bid in
  seg.cells.(cell_index seg p k)

(** Write cell [k] of the object at [p] (host side). *)
let set t p k v =
  let seg = find_segment t p.Xptr.bid in
  seg.cells.(cell_index seg p k) <- v

(** Store a shared pointer in a cell. *)
let set_ptr t p k q = set t p k (Xptr.encode q)

(** Load a shared pointer from a cell. *)
let get_ptr t p k = Xptr.decode (get t p k)

(** {1 Device image}

    Copying the structure to the MIC copies whole segments with DMA and
    builds the delta table used for O(1) pointer translation. *)

module Image = struct
  type image = {
    arena : int array;  (** device memory holding all segments *)
    arena_base : int;  (** simulated device virtual base *)
    delta : Xptr.delta;
    bounds : (int * int * int) array;
        (** (cpu_base, cells, mic_base) per segment, for the scan-based
            reference translator *)
    bytes_per_cell : int;
  }

  let device_base = 0x7f00_0000

  (** Transfer all segments of [t] to the device.  Under a fault plan
      each segment's DMA is one transfer: failed attempts retransfer
      only that segment (counted as [segbuf.dma_retries]); a device
      declared dead raises {!Fault.Device_dead}. *)
  let of_segbuf ?(bytes_per_cell = 8) ?plan (t : t) =
    let segs =
      List.sort (fun a b -> compare a.bid b.bid) t.segments
    in
    let total = List.fold_left (fun acc s -> acc + s.used) 0 segs in
    let arena = Array.make (max 1 total) 0 in
    let nseg = List.length segs in
    let delta = Array.make (max 1 nseg) 0 in
    let bounds = Array.make (max 1 nseg) (0, 0, 0) in
    let ofs = ref 0 in
    let retries = ref 0 in
    List.iter
      (fun s ->
        (* one DMA per segment; a CRC failure re-DMAs this segment only *)
        (match plan with
        | None -> ()
        | Some p ->
            let rep = Fault.next_transfer p in
            if rep.Fault.xr_dead then
              raise
                (Fault.Device_dead
                   {
                     dev = Fault.dev p;
                     at = 0.;
                     failures = rep.Fault.xr_failures;
                   });
            retries := !retries + rep.Fault.xr_failures);
        Array.blit s.cells 0 arena !ofs s.used;
        let mic_base = device_base + !ofs in
        delta.(s.bid) <- mic_base - s.cpu_base;
        bounds.(s.bid) <- (s.cpu_base, s.used, mic_base);
        ofs := !ofs + s.used)
      segs;
    (match t.obs with
    | None -> ()
    | Some o ->
        Obs.incr ~by:nseg o "segbuf.dma_segments";
        Obs.add o "segbuf.dma_bytes" (total * bytes_per_cell);
        if !retries > 0 then Obs.incr ~by:!retries o "segbuf.dma_retries");
    { arena; arena_base = device_base; delta; bounds; bytes_per_cell }

  (** Device-side read of cell [k] of the object at [p]: translates the
      CPU address with the delta table, then reads device memory. *)
  let get img (p : Xptr.t) k =
    let mic_addr = Xptr.translate img.delta p + k in
    let i = mic_addr - img.arena_base in
    if i < 0 || i >= Array.length img.arena then
      invalid_arg "Segbuf.Image.get: translated address out of arena";
    img.arena.(i)

  let get_ptr img p k = Xptr.decode (get img p k)

  (** Bytes moved by the transfer (whole used prefix of each segment,
      as one DMA each). *)
  let transferred_bytes img =
    Array.length img.arena * img.bytes_per_cell

  (** Number of DMA operations (= number of segments). *)
  let dma_count img = Array.length img.bounds
end
