(** Block-granular multi-device scheduling with fault-tolerant work
    migration.

    {!Replay} times a program's event trace on the classic one-MIC
    machine; [Migrate] instead cuts the trace into {e offload blocks}
    (a kernel plus the input transfers staged before it, the output
    transfers following it, and its residency liability) and places
    each block on the least-loaded (device, stream) unit of a
    multi-device machine.  Every placement is a checkpointed,
    retryable unit:

    - each transfer consults the {e owning device's} fault plan
      (retries, backoff, resets exactly as the engine charges them);
    - when a device's degradation policy declares it dead, the
      in-flight block and every block still assigned to that device
      migrate to the surviving devices — re-paying the h2d transfer
      of resident data the dead device held;
    - only when every device has died does the host take over,
      re-running the remaining kernels at the fallback slowdown; and
      without [cpu_fallback] that final death re-escapes as
      {!Fault.Device_dead}.

    The outcome reports the final placement of every block, so the
    {!Check.check_migrated} oracle can verify conservation: each block
    executes exactly once, on a device that was alive when it
    finished, with host placements only after total device loss. *)

open Machine

type block = {
  blk_id : int;
  blk_h2d_cells : int;  (** inputs staged before the kernel *)
  blk_d2h_cells : int;  (** outputs returned after it *)
  blk_resident_cells : int;
      (** inputs the trace elided as device-resident: a migration to a
          device that does not hold them re-pays their transfer *)
  blk_work : int;  (** kernel statement count *)
}

(** Cut an event trace into offload blocks: h2d and resident cells
    accumulate until a kernel claims them; d2h cells close the latest
    block.  Waits and signal tags dissolve — blocks are the
    synchronization unit here. *)
let blocks_of_events (events : Minic.Interp.event list) : block list =
  let blocks = ref [] in
  let h2d = ref 0 and res = ref 0 and next = ref 0 in
  let close_d2h cells =
    match !blocks with
    | b :: rest when cells > 0 ->
        blocks := { b with blk_d2h_cells = b.blk_d2h_cells + cells } :: rest
    | _ -> ()
  in
  List.iter
    (fun (ev : Minic.Interp.event) ->
      match ev with
      | Minic.Interp.Ev_transfer { h2d_cells; d2h_cells; _ } ->
          h2d := !h2d + h2d_cells;
          close_d2h d2h_cells
      | Minic.Interp.Ev_resident { cells } -> res := !res + cells
      | Minic.Interp.Ev_wait _ -> ()
      | Minic.Interp.Ev_kernel { work; _ } ->
          blocks :=
            {
              blk_id = !next;
              blk_h2d_cells = !h2d;
              blk_d2h_cells = 0;
              blk_resident_cells = !res;
              blk_work = work;
            }
            :: !blocks;
          incr next;
          h2d := 0;
          res := 0)
    events;
  List.rev !blocks

type placement = {
  pl_block : int;
  pl_dev : int;  (** [-1] for a host-fallback execution *)
  pl_stream : int;
  pl_start : float;
  pl_finish : float;
  pl_migrations : int;  (** times the block was re-queued off a dead device *)
}

type outcome = {
  m_result : Engine.result;
  m_placements : placement list;  (** by block id *)
  m_migrated : int;  (** block re-queues across all device deaths *)
  m_dead : (int * float) list;  (** (device, death time), in death order *)
  m_fellback : bool;  (** every device died; the host ran the rest *)
  m_bytes_moved : float;  (** wire bytes, retransmissions included *)
}

(* one failed placement attempt ended in device death *)
exception Died of { dev : int; at : float; failures : int }

let schedule ?obs ?(params = Replay.default_params) (cfg : Config.t) events :
    outcome =
  let devices = max 1 cfg.Config.devices in
  let streams = max 1 cfg.Config.streams in
  let blocks = Array.of_list (blocks_of_events events) in
  let n = Array.length blocks in
  let bump ?(by = 1) name =
    match obs with None -> () | Some o -> Obs.incr ~by o name
  in
  let fleet =
    if Fault.is_none cfg.Config.fault then None
    else Some (Fault.fleet ?obs ~devices cfg.Config.fault)
  in
  let policy =
    match fleet with
    | Some f -> Fault.policy (Fault.fleet_plan f ~dev:0)
    | None -> cfg.Config.fault.Fault.policy
  in
  let alive = Array.make devices true in
  let dead = ref [] in
  let h2d_free = Array.make devices 0. in
  let d2h_free = Array.make devices 0. in
  let unit_free = Array.make_matrix devices streams 0. in
  let host_free = ref 0. in
  let placed = ref [] in
  let next_id = ref 0 in
  let bytes_moved = ref 0. in
  let place ?(kind = Obs.Kernel) ?(bytes = 0.) ~label ~resource ~start
      ~finish () =
    let id = !next_id in
    incr next_id;
    placed :=
      {
        Engine.task =
          {
            Task.id;
            label;
            resource;
            duration = finish -. start;
            deps = [];
            kind = Some kind;
            bytes;
            reset_xfer_s = 0.;
          };
        start;
        finish;
      }
      :: !placed
  in
  (* migration bookkeeping *)
  let assigned = Array.make (max 1 n) (0, 0) in
  let migrations = Array.make (max 1 n) 0 in
  let executed = Array.make (max 1 n) None in
  (* a block in flight when its device died restarts no earlier than
     the death: the time burned on the dead device is really lost *)
  let ready = Array.make (max 1 n) 0. in
  let alive_units () =
    Plan.placements
      ~alive:
        (List.filter
           (fun d -> alive.(d))
           (List.init devices (fun d -> d)))
      ~streams
  in
  let assign_all from_block =
    (* (re-)assign every unexecuted block from [from_block] on,
       greedily to the unit with the least estimated load.  The
       actual clocks seed the estimates, so a re-assignment after a
       death accounts for work the survivors already carry; greedy
       balance (rather than blind round-robin) also keeps the
       makespan monotone in the number of dead devices — losing
       capacity can only concentrate load, never luck into a better
       packing *)
    let units = Array.of_list (alive_units ()) in
    let load =
      Array.map
        (fun (d, s) ->
          Float.max unit_free.(d).(s) (Float.max h2d_free.(d) d2h_free.(d)))
        units
    in
    let bytes cells = float_of_int cells *. params.Replay.bytes_per_cell in
    if Config.homogeneous cfg then begin
      (* identical cards: the block costs the same everywhere, so pick
         the least-loaded unit (first minimum) and charge it *)
      let cost (b : block) =
        Cost.transfer_time cfg Cost.H2d ~bytes:(bytes b.blk_h2d_cells)
        +. Cost.transfer_time cfg Cost.D2h ~bytes:(bytes b.blk_d2h_cells)
        +. Cost.launch_time cfg
        +. float_of_int b.blk_work *. params.Replay.seconds_per_stmt
           *. float_of_int streams
      in
      for i = from_block to n - 1 do
        if executed.(i) = None then begin
          let best = ref 0 in
          for u = 1 to Array.length units - 1 do
            if load.(u) < load.(!best) then best := u
          done;
          assigned.(i) <- units.(!best);
          load.(!best) <- load.(!best) +. cost blocks.(i)
        end
      done
    end
    else begin
      (* heterogeneous fleet: the same block finishes at different
         times on different cards, so minimize estimated completion
         (load + this unit's cost), not load alone — a slow enough
         device never wins a block it would only delay *)
      let cost_on (b : block) d =
        let sc = Config.scale_for cfg d in
        Cost.transfer_time ~dev:d cfg Cost.H2d ~bytes:(bytes b.blk_h2d_cells)
        +. Cost.transfer_time ~dev:d cfg Cost.D2h ~bytes:(bytes b.blk_d2h_cells)
        +. Cost.launch_time cfg
        +. float_of_int b.blk_work *. params.Replay.seconds_per_stmt
           *. float_of_int streams /. sc.Config.sc_cores
      in
      for i = from_block to n - 1 do
        if executed.(i) = None then begin
          let b = blocks.(i) in
          let best = ref 0 in
          let best_eta = ref (load.(0) +. cost_on b (fst units.(0))) in
          for u = 1 to Array.length units - 1 do
            let eta = load.(u) +. cost_on b (fst units.(u)) in
            if eta < !best_eta then begin
              best := u;
              best_eta := eta
            end
          done;
          assigned.(i) <- units.(!best);
          load.(!best) <- !best_eta
        end
      done
    end
  in
  if n > 0 then assign_all 0;
  (* a transfer on device [d]: consult its plan, charge retries and
     recovery, move the channel's clock.  Raises [Died] when the
     degradation policy gives up. *)
  let transfer ~blk ~dev ~dir ~cells ~at_least =
    if cells <= 0 then (at_least, 0.)
    else begin
      let bytes = float_of_int cells *. params.Replay.bytes_per_cell in
      let chan, resource =
        match (dir, cfg.Config.pcie.duplex) with
        | Cost.H2d, _ | Cost.D2h, Config.Half_duplex ->
            (h2d_free, Task.Pcie_h2d dev)
        | Cost.D2h, Config.Full_duplex -> (d2h_free, Task.Pcie_d2h dev)
      in
      let kind = Cost.kind_of_direction dir in
      let dur = Cost.transfer_time ?obs ~dev cfg dir ~bytes in
      let start = Float.max at_least chan.(dev) in
      let busy, recovery, wire =
        match fleet with
        | None -> (dur, 0., bytes)
        | Some f ->
            let plan = Fault.fleet_plan f ~dev in
            let rep = Fault.next_transfer plan in
            let overhead failures resets =
              Fault.backoff_total plan ~failures
              +. float_of_int resets
                 *. (Fault.policy plan).Fault.reset_recovery_s
            in
            if rep.Fault.xr_dead then begin
              let at =
                start
                +. (float_of_int rep.Fault.xr_failures *. dur)
                +. overhead rep.Fault.xr_failures rep.Fault.xr_resets
              in
              chan.(dev) <- at;
              (* the dying attempts still put their bytes on the wire *)
              bytes_moved :=
                !bytes_moved +. (float_of_int rep.Fault.xr_failures *. bytes);
              place ~kind:Obs.Retry
                ~label:(Printf.sprintf "blk%d %s (device died)" blk
                          (Task.resource_name resource))
                ~resource ~start ~finish:at ();
              raise
                (Died { dev; at; failures = rep.Fault.xr_failures })
            end
            else
              ( float_of_int (rep.Fault.xr_failures + 1) *. dur,
                overhead rep.Fault.xr_failures rep.Fault.xr_resets,
                float_of_int (rep.Fault.xr_failures + 1) *. bytes )
      in
      let finish = start +. busy +. recovery in
      chan.(dev) <- finish;
      bytes_moved := !bytes_moved +. wire;
      place ~kind ~bytes
        ~label:
          (Printf.sprintf "blk%d %s" blk (Task.resource_name resource))
        ~resource ~start ~finish:(start +. busy) ();
      if recovery > 0. then
        place ~kind:Obs.Retry
          ~label:(Printf.sprintf "blk%d %s+recovery" blk
                    (Task.resource_name resource))
          ~resource ~start:(start +. busy) ~finish ();
      (finish, busy +. recovery -. dur)
    end
  in
  (* run one block on its assigned unit; [home] is the device holding
     the resident pool (where the previous block ran) *)
  let exec_block i ~home =
    let b = blocks.(i) in
    let d, s = assigned.(i) in
    (* resident inputs live where the previous block ran: executing
       elsewhere (round-robin spread or migration off a dead device)
       re-pays their h2d transfer *)
    let repay =
      if b.blk_resident_cells > 0 && home <> Some d then begin
        bump "fault.resident_repaid";
        b.blk_resident_cells
      end
      else 0
    in
    let h2d_finish, _ =
      transfer ~blk:b.blk_id ~dev:d ~dir:Cost.H2d
        ~cells:(b.blk_h2d_cells + repay) ~at_least:ready.(i)
    in
    (* the stream's core partition runs the kernel [streams] times
       slower than the whole device would; a heterogeneous card scales
       the whole-device rate by [sc_cores] *)
    let kdur =
      Cost.launch_time ?obs cfg
      +. float_of_int b.blk_work *. params.Replay.seconds_per_stmt
         *. float_of_int streams
         /. (Config.scale_for cfg d).Config.sc_cores
    in
    let kstart = Float.max h2d_finish unit_free.(d).(s) in
    (* a reset wipes resident inputs that were NOT re-paid above *)
    let reset_xfer_s =
      if repay = 0 && b.blk_resident_cells > 0 then
        Cost.transfer_time ~dev:d cfg Cost.H2d
          ~bytes:
            (float_of_int b.blk_resident_cells
            *. params.Replay.bytes_per_cell)
      else 0.
    in
    let kbusy, krecovery =
      match fleet with
      | None -> (kdur, 0.)
      | Some f -> (
          let plan = Fault.fleet_plan f ~dev:d in
          match Fault.take_reset plan ~start:kstart ~stop:(kstart +. kdur) with
          | None -> (kdur, 0.)
          | Some (reset_time, recovery) ->
              ((reset_time -. kstart) +. kdur, recovery +. reset_xfer_s))
    in
    let kfinish = kstart +. kbusy +. krecovery in
    unit_free.(d).(s) <- kfinish;
    place ~kind:Obs.Kernel
      ~label:(Printf.sprintf "blk%d kernel" b.blk_id)
      ~resource:(Task.Mic_exec (d, s))
      ~start:kstart ~finish:(kstart +. kbusy) ();
    if krecovery > 0. then
      place ~kind:Obs.Retry
        ~label:(Printf.sprintf "blk%d kernel+recovery" b.blk_id)
        ~resource:(Task.Mic_exec (d, s))
        ~start:(kstart +. kbusy) ~finish:kfinish ();
    let finish, _ =
      transfer ~blk:b.blk_id ~dev:d ~dir:Cost.D2h ~cells:b.blk_d2h_cells
        ~at_least:kfinish
    in
    let finish = Float.max finish kfinish in
    executed.(i) <-
      Some
        {
          pl_block = b.blk_id;
          pl_dev = d;
          pl_stream = s;
          pl_start = kstart;
          pl_finish = finish;
          pl_migrations = migrations.(i);
        };
    d
  in
  let migrated = ref 0 in
  let fellback = ref false in
  let last_death = ref 0. in
  let i = ref 0 in
  while !i < n do
    let d, _ = assigned.(!i) in
    if executed.(!i) <> None then
      (* already placed (a survivor of an earlier death rollback) *)
      incr i
    else if not alive.(d) then
      (* stale assignment (shouldn't happen: deaths reassign) *)
      assign_all !i
    else
      (* resident inputs live where the previous block ran *)
      let home =
        if !i = 0 then None
        else Option.map (fun p -> p.pl_dev) executed.(!i - 1)
      in
      match exec_block !i ~home with
      | _ -> incr i
      | exception Died { dev; at; failures } ->
          alive.(dev) <- false;
          dead := !dead @ [ (dev, at) ];
          last_death := Float.max !last_death at;
          ready.(!i) <- Float.max ready.(!i) at;
          bump "fault.dead_devices";
          (* a block that "completed" on the dead device but whose
             pipeline (kernel, output transfer) was still in flight at
             the death is lost too: its results never landed, so roll
             it back and re-run it elsewhere *)
          let restart = ref !i in
          for j = !i - 1 downto 0 do
            match executed.(j) with
            | Some p when p.pl_dev = dev && p.pl_finish > at +. 1e-9 ->
                executed.(j) <- None;
                ready.(j) <- Float.max ready.(j) at;
                restart := j
            | _ -> ()
          done;
          if List.exists (fun d -> alive.(d)) (List.init devices Fun.id)
          then begin
            (* the in-flight blocks and every block still assigned to
               the dead device move to the survivors *)
            let requeued = ref 0 in
            for j = !restart to n - 1 do
              if executed.(j) = None && fst assigned.(j) = dev then begin
                migrations.(j) <- migrations.(j) + 1;
                incr requeued
              end
            done;
            migrated := !migrated + !requeued;
            bump ~by:!requeued "fault.migrated_blocks";
            assign_all !restart;
            i := !restart
          end
          else if not policy.Fault.cpu_fallback then
            raise (Fault.Device_dead { dev; at; failures })
          else begin
            (* graceful degradation's last rung: the host re-runs
               every remaining kernel at the fallback slowdown (the
               data is host-resident; no transfers) *)
            fellback := true;
            (match fleet with
            | Some f -> Fault.note_fallback (Fault.fleet_plan f ~dev)
            | None -> ());
            host_free := Float.max !host_free !last_death;
            for j = !restart to n - 1 do
              if executed.(j) = None then begin
                let bj = blocks.(j) in
                let dur =
                  float_of_int bj.blk_work *. params.Replay.seconds_per_stmt
                  *. policy.Fault.fallback_slowdown
                in
                let start = !host_free in
                let finish = start +. dur in
                host_free := finish;
                place ~kind:Obs.Retry
                  ~label:(Printf.sprintf "blk%d cpu-fallback" bj.blk_id)
                  ~resource:Task.Cpu_exec ~start ~finish ();
                executed.(j) <-
                  Some
                    {
                      pl_block = bj.blk_id;
                      pl_dev = -1;
                      pl_stream = 0;
                      pl_start = start;
                      pl_finish = finish;
                      pl_migrations = migrations.(j);
                    }
              end
            done;
            i := n
          end
  done;
  bump ~by:n "migrate.blocks";
  let placements =
    Array.to_list
      (Array.map
         (function
           | Some p -> p
           | None -> invalid_arg "Migrate.schedule: unexecuted block")
         (Array.sub executed 0 n))
  in
  let completion =
    List.sort
      (fun (a : Engine.placed) b ->
        compare (a.finish, a.task.Task.id) (b.finish, b.task.Task.id))
      (List.rev !placed)
  in
  {
    m_result = Engine.result_of_placed completion;
    m_placements = placements;
    m_migrated = !migrated;
    m_dead = !dead;
    m_fellback = !fellback;
    m_bytes_moved = !bytes_moved;
  }

(** Makespan convenience. *)
let makespan ?obs ?params cfg events =
  (schedule ?obs ?params cfg events).m_result.Engine.makespan
