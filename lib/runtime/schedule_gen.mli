(** Lowering of (shape, strategy) pairs to task graphs for the event
    engine, and the resulting timings: where the pipelining of data
    streaming, the launch-count arithmetic of offload merging, and the
    fault-vs-DMA contrast of the shared-memory mechanism become
    schedules. *)

val mic_compute : Machine.Config.t -> Plan.shape -> float
(** Device time of one offload instance's kernel. *)

val cpu_compute : Machine.Config.t -> Plan.shape -> float

val tasks :
  ?obs:Obs.t ->
  Machine.Config.t ->
  Plan.shape ->
  Plan.strategy ->
  Machine.Task.t list
(** Task graph of the offloadable part (the host serial part is added
    by {!total_time}).  Every task is tagged with its observability
    kind and byte payload; with [?obs], launches/signals/faults are
    counted ([runtime.*]) and the cost-model evaluations recorded. *)

val region_time :
  ?obs:Obs.t -> Machine.Config.t -> Plan.shape -> Plan.strategy -> float
(** Makespan of the offloadable part.  When [cfg.fault] is a live
    fault plan, transfer retries and device resets are injected and
    all recovery time lands in the makespan; an unrecoverable device
    death escapes as {!Fault.Device_dead}. *)

val total_time :
  ?obs:Obs.t -> Machine.Config.t -> Plan.shape -> Plan.strategy -> float
(** Whole-application time: region time plus [host_serial_s]. *)

val schedule :
  ?obs:Obs.t ->
  Machine.Config.t ->
  Plan.shape ->
  Plan.strategy ->
  Machine.Engine.result
(** Full schedule, for tracing / Gantt output.  With [?obs], the
    engine records one span per placed task.  Injects [cfg.fault] like
    {!region_time}. *)

type recovered = {
  rec_result : Machine.Engine.result;
  rec_fellback : bool;  (** the device died and the CPU took over *)
  rec_died_at : float option;  (** when the device was declared dead *)
}

val schedule_recovered :
  ?obs:Obs.t ->
  Machine.Config.t ->
  Plan.shape ->
  Plan.strategy ->
  recovered
(** Like {!schedule}, but a device declared dead is recovered on the
    host when the policy allows it: the lost device time is charged up
    front, then the whole region re-runs as {!Plan.Host_parallel}.
    Without [cpu_fallback] the death re-escapes. *)

val recovered_region_time :
  ?obs:Obs.t -> Machine.Config.t -> Plan.shape -> Plan.strategy -> float
(** Region makespan with device death absorbed by the CPU fallback. *)
