(** Lowering of (shape, strategy) pairs to task graphs for the event
    engine, and the resulting timings: where the pipelining of data
    streaming, the launch-count arithmetic of offload merging, and the
    fault-vs-DMA contrast of the shared-memory mechanism become
    schedules. *)

val mic_compute : Machine.Config.t -> Plan.shape -> float
(** Device time of one offload instance's kernel. *)

val cpu_compute : Machine.Config.t -> Plan.shape -> float

val tasks :
  ?obs:Obs.t ->
  ?alive:int list ->
  Machine.Config.t ->
  Plan.shape ->
  Plan.strategy ->
  Machine.Task.t list
(** Task graph of the offloadable part (the host serial part is added
    by {!total_time}).  Every task is tagged with its observability
    kind and byte payload; with [?obs], launches/signals/faults are
    counted ([runtime.*]) and the cost-model evaluations recorded.
    [?alive] restricts placement to the listed devices (default: all
    of [cfg.devices]): streaming round-robins its blocks over every
    alive (device, stream) unit, the other strategies run on the
    first alive device. *)

val region_time :
  ?obs:Obs.t -> Machine.Config.t -> Plan.shape -> Plan.strategy -> float
(** Makespan of the offloadable part.  When [cfg.fault] is a live
    fault plan, transfer retries and device resets are injected and
    all recovery time lands in the makespan; an unrecoverable device
    death escapes as {!Fault.Device_dead}. *)

val total_time :
  ?obs:Obs.t -> Machine.Config.t -> Plan.shape -> Plan.strategy -> float
(** Whole-application time: region time plus [host_serial_s]. *)

val schedule :
  ?obs:Obs.t ->
  Machine.Config.t ->
  Plan.shape ->
  Plan.strategy ->
  Machine.Engine.result
(** Full schedule, for tracing / Gantt output.  With [?obs], the
    engine records one span per placed task.  Injects [cfg.fault] like
    {!region_time}. *)

type recovered = {
  rec_result : Machine.Engine.result;
  rec_fellback : bool;  (** every device died and the CPU took over *)
  rec_died_at : float option;  (** when the first device died *)
  rec_migrated : int;
      (** blocks re-run on surviving devices across all migrations *)
  rec_dead : int list;  (** devices declared dead, in death order *)
}

val schedule_recovered :
  ?obs:Obs.t ->
  Machine.Config.t ->
  Plan.shape ->
  Plan.strategy ->
  recovered
(** Like {!schedule}, but device death walks the degradation ladder
    instead of escaping: a dead device's burnt wall clock is charged
    up front and the region's blocks re-run on the surviving devices
    ([fault.migrated_blocks], [fault.dead_devices]); only when every
    device has died does the host take over ([Host_parallel] re-run at
    the fallback cost).  Without [cpu_fallback] the final death
    re-escapes as {!Fault.Device_dead}. *)

val recovered_region_time :
  ?obs:Obs.t -> Machine.Config.t -> Plan.shape -> Plan.strategy -> float
(** Region makespan with device death absorbed by the CPU fallback. *)
