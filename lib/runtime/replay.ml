(** Execution-driven replay: turn the interpreter's offload event trace
    into a machine schedule.

    The shape-based experiments ({!Schedule_gen}) time workload
    {e descriptors}; replay instead times the {e actual program} the
    compiler produced.  The interpreter records, in program order, each
    transfer (with its [signal] tag if asynchronous), each [wait], and
    each kernel (with its statement count as a work measure).  Replay
    reconstructs the issue semantics:

    - synchronous operations chain on the host: each depends on the
      previous synchronous operation;
    - an asynchronous transfer ([signal(t)]) is issued at its program
      point (it depends on the host's progress) but nothing waits for
      it until a matching [wait(t)] — so it runs on the PCIe resource
      concurrently with whatever the device is doing;
    - a [wait(t)] joins the tagged transfer back into the host chain.

    Feeding the engine both the original and the streamed version of a
    program shows the overlap of Figure 5(d) arising from the real
    generated code, not from a hand-built task graph. *)

open Machine

type params = {
  bytes_per_cell : float;
      (** how many real bytes one miniature heap cell stands for *)
  seconds_per_stmt : float;
      (** device time one interpreted statement stands for *)
}

(** Defaults that make the miniature test programs look like
    megabyte-scale offloads: one cell ~ 64 KiB, one statement ~ 50 us
    of device work. *)
let default_params = { bytes_per_cell = 65536.; seconds_per_stmt = 5e-5 }

exception Unmatched_wait of int

(** Build the task graph of an event trace.  Under [?plan] each
    asynchronous signal is assigned its fate at the point it is raised:
    a dropped signal makes the matching wait burn the recovery timeout
    before polling the transfer directly, a delayed one stalls the
    waiter by the delay. *)
let tasks ?obs ?plan ?(params = default_params) (cfg : Config.t)
    (events : Minic.Interp.event list) : Task.t list =
  let b = Task.builder () in
  let bump name = match obs with None -> () | Some o -> Obs.incr o name in
  let signals : (int, int * Fault.fate) Hashtbl.t = Hashtbl.create 16 in
  (* deps that stand for "the wait on [tag] has completed" *)
  let join tag =
    match Hashtbl.find_opt signals tag with
    | None -> raise (Unmatched_wait tag)
    | Some (id, Fault.Deliver) -> [ id ]
    | Some (id, Fault.Delayed d) ->
        (* the signal arrives late: the waiter stalls for [d] after the
           transfer completes before it can resume *)
        let late =
          Task.add b ~deps:[ id ]
            ~label:(Printf.sprintf "late-signal#%d" tag)
            ~resource:Task.Cpu_exec ~kind:Obs.Signal ~duration:d ()
        in
        [ late ]
    | Some (id, Fault.Dropped) ->
        (* the signal never arrives: the waiter burns the full timeout,
           then recovers by polling the transfer itself — a recoverable
           stall, not a deadlock *)
        let timeout_s =
          match plan with
          | Some p -> (Fault.policy p).Fault.wait_timeout_s
          | None -> 0.
        in
        (match plan with Some p -> Fault.note_timeout p | None -> ());
        let t =
          Task.add b ~deps:[ id ]
            ~label:(Printf.sprintf "wait-timeout#%d" tag)
            ~resource:Task.Cpu_exec ~kind:Obs.Retry ~duration:timeout_s ()
        in
        [ t ]
  in
  (* the host's synchronous progress: deps for the next sync op *)
  let host_prev = ref [] in
  (* device cells the next kernel depends on that were NOT transferred
     (residency elisions, [Ev_resident]): a device reset during that
     kernel wipes them, so its recovery must pay their re-transfer *)
  let pending_resident = ref 0 in
  let transfer_task ~label ~h2d ~d2h ~deps =
    (* a transfer event is one DMA; direction by dominant volume.  The
       replayed trace is single-device (device 0): multi-device
       placement of a trace is {!Migrate}'s job *)
    let resource = if d2h > h2d then Task.Pcie_d2h 0 else Task.Pcie_h2d 0 in
    let dir = if d2h > h2d then Cost.D2h else Cost.H2d in
    let bytes = float_of_int (h2d + d2h) *. params.bytes_per_cell in
    Task.add b ~deps ~label ~resource ~kind:(Cost.kind_of_direction dir)
      ~bytes
      ~duration:(Cost.transfer_time ?obs cfg dir ~bytes)
      ()
  in
  List.iteri
    (fun i (ev : Minic.Interp.event) ->
      match ev with
      | Minic.Interp.Ev_transfer { h2d_cells; d2h_cells; signal } -> (
          let id =
            transfer_task
              ~label:(Printf.sprintf "xfer#%d" i)
              ~h2d:h2d_cells ~d2h:d2h_cells ~deps:!host_prev
          in
          match signal with
          | Some tag ->
              (* asynchronous: issued here, joined at the wait; its
                 fate (delivered / dropped / delayed) is fixed now *)
              bump "replay.signals";
              let fate =
                match plan with
                | None -> Fault.Deliver
                | Some p -> Fault.signal_fate p ~tag
              in
              Hashtbl.replace signals tag (id, fate)
          | None -> host_prev := [ id ])
      | Minic.Interp.Ev_wait tag ->
          bump "replay.waits";
          host_prev := join tag @ !host_prev
      | Minic.Interp.Ev_resident { cells } ->
          bump "replay.resident";
          pending_resident := !pending_resident + cells
      | Minic.Interp.Ev_kernel { work; wait } ->
          let wait_dep =
            match wait with
            | None -> []
            | Some tag ->
                bump "replay.waits";
                join tag
          in
          bump "runtime.launches";
          let reset_xfer_s =
            if !pending_resident = 0 then 0.
            else
              Cost.transfer_time cfg Cost.H2d
                ~bytes:(float_of_int !pending_resident *. params.bytes_per_cell)
          in
          pending_resident := 0;
          let id =
            Task.add b
              ~deps:(wait_dep @ !host_prev)
              ~label:(Printf.sprintf "kernel#%d" i)
              ~resource:(Task.Mic_exec (0, 0))
              ~kind:Obs.Kernel ~reset_xfer_s
              ~duration:
                (Cost.launch_time ?obs cfg
                +. (float_of_int work *. params.seconds_per_stmt))
              ()
          in
          host_prev := [ id ])
    events;
  Task.tasks b

(** Schedule the replayed trace.  When [cfg.fault] is a live fault
    plan, signal fates and transfer retries are injected; recovery time
    lands in the makespan.  An unrecoverable device death escapes as
    {!Fault.Device_dead} — use {!schedule_recovered} to absorb it. *)
let schedule ?obs ?params (cfg : Config.t) events =
  match Fault.fleet_of ?obs ~devices:cfg.Config.devices cfg.Config.fault with
  | None -> Engine.schedule ?obs (tasks ?obs ?params cfg events)
  | Some fleet ->
      (* signal fates are drawn from device 0's plan — the replayed
         trace places everything there, so the engine consults the
         same instance for its transfers *)
      let plan = Fault.fleet_plan fleet ~dev:0 in
      Engine.schedule ?obs ~faults:fleet (tasks ?obs ~plan ?params cfg events)

let makespan ?params cfg events = (schedule ?params cfg events).Engine.makespan

type recovered = {
  r_result : Engine.result;
  r_fellback : bool;  (** the device died and the CPU took over *)
  r_died_at : float option;  (** when the device was declared dead *)
}

(* What the host runs when the device is declared dead: the work lost
   up to the death, then every kernel re-executed on the CPU at the
   fallback slowdown.  Transfers vanish (the data is already host
   resident); everything chains on the host. *)
let fallback_tasks ?(params = default_params) (cfg : Config.t) ~died_at
    (events : Minic.Interp.event list) =
  let b = Task.builder () in
  let prev =
    ref
      [
        Task.add b ~label:"device-dead (lost work)" ~resource:Task.Cpu_exec
          ~kind:Obs.Retry ~duration:died_at ();
      ]
  in
  let slowdown = cfg.Config.fault.Fault.policy.Fault.fallback_slowdown in
  List.iteri
    (fun i (ev : Minic.Interp.event) ->
      match ev with
      | Minic.Interp.Ev_kernel { work; _ } ->
          let id =
            Task.add b ~deps:!prev
              ~label:(Printf.sprintf "cpu-fallback#%d" i)
              ~resource:Task.Cpu_exec ~kind:Obs.Retry
              ~duration:
                (float_of_int work *. params.seconds_per_stmt *. slowdown)
              ()
          in
          prev := [ id ]
      | _ -> ())
    events;
  Task.tasks b

(** Like {!schedule}, but a device declared dead is recovered on the
    CPU when the policy allows it: the whole program re-runs host-side
    at [fallback_slowdown], with the lost device time charged up
    front.  Without [cpu_fallback] the death re-escapes. *)
let schedule_recovered ?obs ?params (cfg : Config.t) events =
  match Fault.fleet_of ?obs ~devices:cfg.Config.devices cfg.Config.fault with
  | None ->
      {
        r_result = Engine.schedule ?obs (tasks ?obs ?params cfg events);
        r_fellback = false;
        r_died_at = None;
      }
  | Some fleet -> (
      let plan = Fault.fleet_plan fleet ~dev:0 in
      try
        {
          r_result =
            Engine.schedule ?obs ~faults:fleet
              (tasks ?obs ~plan ?params cfg events);
          r_fellback = false;
          r_died_at = None;
        }
      with Fault.Device_dead { dev; at; failures } ->
        if not (Fault.policy plan).Fault.cpu_fallback then
          raise (Fault.Device_dead { dev; at; failures })
        else begin
          Fault.note_fallback plan;
          let fb = fallback_tasks ?params cfg ~died_at:at events in
          {
            r_result = Engine.schedule ?obs fb;
            r_fellback = true;
            r_died_at = Some at;
          }
        end)

(** Interpret a program and replay its trace; returns the outcome and
    the schedule.  Raises on interpreter errors. *)
let of_program ?obs ?params ?(cfg = Config.paper_default) prog =
  match Minic.Interp.run prog with
  | Error msg -> invalid_arg ("Replay.of_program: " ^ msg)
  | Ok o -> (o, schedule ?obs ?params cfg o.Minic.Interp.events)
