(** Execution-driven replay: turn the interpreter's offload event trace
    into a machine schedule.

    The shape-based experiments ({!Schedule_gen}) time workload
    {e descriptors}; replay instead times the {e actual program} the
    compiler produced.  The interpreter records, in program order, each
    transfer (with its [signal] tag if asynchronous), each [wait], and
    each kernel (with its statement count as a work measure).  Replay
    reconstructs the issue semantics:

    - synchronous operations chain on the host: each depends on the
      previous synchronous operation;
    - an asynchronous transfer ([signal(t)]) is issued at its program
      point (it depends on the host's progress) but nothing waits for
      it until a matching [wait(t)] — so it runs on the PCIe resource
      concurrently with whatever the device is doing;
    - a [wait(t)] joins the tagged transfer back into the host chain.

    Feeding the engine both the original and the streamed version of a
    program shows the overlap of Figure 5(d) arising from the real
    generated code, not from a hand-built task graph. *)

open Machine

type params = {
  bytes_per_cell : float;
      (** how many real bytes one miniature heap cell stands for *)
  seconds_per_stmt : float;
      (** device time one interpreted statement stands for *)
}

(** Defaults that make the miniature test programs look like
    megabyte-scale offloads: one cell ~ 64 KiB, one statement ~ 50 us
    of device work. *)
let default_params = { bytes_per_cell = 65536.; seconds_per_stmt = 5e-5 }

exception Unmatched_wait of int

(** Build the task graph of an event trace. *)
let tasks ?obs ?(params = default_params) (cfg : Config.t)
    (events : Minic.Interp.event list) : Task.t list =
  let b = Task.builder () in
  let bump name = match obs with None -> () | Some o -> Obs.incr o name in
  let signals : (int, int) Hashtbl.t = Hashtbl.create 16 in
  (* the host's synchronous progress: deps for the next sync op *)
  let host_prev = ref [] in
  let transfer_task ~label ~h2d ~d2h ~deps =
    (* a transfer event is one DMA; direction by dominant volume *)
    let resource = if d2h > h2d then Task.Pcie_d2h else Task.Pcie_h2d in
    let dir = if d2h > h2d then Cost.D2h else Cost.H2d in
    let bytes = float_of_int (h2d + d2h) *. params.bytes_per_cell in
    Task.add b ~deps ~label ~resource ~kind:(Cost.kind_of_direction dir)
      ~bytes
      ~duration:(Cost.transfer_time ?obs cfg dir ~bytes)
      ()
  in
  List.iteri
    (fun i (ev : Minic.Interp.event) ->
      match ev with
      | Minic.Interp.Ev_transfer { h2d_cells; d2h_cells; signal } -> (
          let id =
            transfer_task
              ~label:(Printf.sprintf "xfer#%d" i)
              ~h2d:h2d_cells ~d2h:d2h_cells ~deps:!host_prev
          in
          match signal with
          | Some tag ->
              (* asynchronous: issued here, joined at the wait *)
              bump "replay.signals";
              Hashtbl.replace signals tag id
          | None -> host_prev := [ id ])
      | Minic.Interp.Ev_wait tag -> (
          bump "replay.waits";
          match Hashtbl.find_opt signals tag with
          | Some id -> host_prev := id :: !host_prev
          | None -> raise (Unmatched_wait tag))
      | Minic.Interp.Ev_kernel { work; wait } ->
          let wait_dep =
            match wait with
            | None -> []
            | Some tag -> (
                bump "replay.waits";
                match Hashtbl.find_opt signals tag with
                | Some id -> [ id ]
                | None -> raise (Unmatched_wait tag))
          in
          bump "runtime.launches";
          let id =
            Task.add b
              ~deps:(wait_dep @ !host_prev)
              ~label:(Printf.sprintf "kernel#%d" i)
              ~resource:Task.Mic_exec ~kind:Obs.Kernel
              ~duration:
                (Cost.launch_time ?obs cfg
                +. (float_of_int work *. params.seconds_per_stmt))
              ()
          in
          host_prev := [ id ])
    events;
  Task.tasks b

(** Schedule the replayed trace. *)
let schedule ?obs ?params cfg events =
  Engine.schedule ?obs (tasks ?obs ?params cfg events)

let makespan ?params cfg events = (schedule ?params cfg events).Engine.makespan

(** Interpret a program and replay its trace; returns the outcome and
    the schedule.  Raises on interpreter errors. *)
let of_program ?obs ?params ?(cfg = Config.paper_default) prog =
  match Minic.Interp.run prog with
  | Error msg -> invalid_arg ("Replay.of_program: " ^ msg)
  | Ok o -> (o, schedule ?obs ?params cfg o.Minic.Interp.events)
