(** Block-granular multi-device scheduling with fault-tolerant work
    migration.

    Cuts a program's offload event trace into blocks (kernel + staged
    input transfers + output transfers + residency liability), places
    each on the least-loaded (device, stream) unit, and treats each
    placement as a checkpointed, retryable unit.  Device death
    migrates the in-flight and still-assigned blocks to the surviving
    devices — re-paying the h2d transfer of resident data the dead
    device held — and falls back to the host only once every device is
    dead.  Counters: [fault.migrated_blocks], [fault.dead_devices],
    [fault.resident_repaid], [migrate.blocks]. *)

type block = {
  blk_id : int;
  blk_h2d_cells : int;  (** inputs staged before the kernel *)
  blk_d2h_cells : int;  (** outputs returned after it *)
  blk_resident_cells : int;
      (** inputs the trace elided as device-resident: a placement on a
          device that does not hold them re-pays their transfer *)
  blk_work : int;  (** kernel statement count *)
}

val blocks_of_events : Minic.Interp.event list -> block list
(** h2d and resident cells accumulate until a kernel claims them; d2h
    cells close the latest block; waits and signal tags dissolve. *)

type placement = {
  pl_block : int;
  pl_dev : int;  (** [-1] for a host-fallback execution *)
  pl_stream : int;
  pl_start : float;  (** kernel start *)
  pl_finish : float;  (** last output byte landed *)
  pl_migrations : int;  (** times the block was re-queued off a dead device *)
}

type outcome = {
  m_result : Machine.Engine.result;
  m_placements : placement list;  (** by block id, each exactly once *)
  m_migrated : int;  (** block re-queues across all device deaths *)
  m_dead : (int * float) list;  (** (device, death time), in death order *)
  m_fellback : bool;  (** every device died; the host ran the rest *)
  m_bytes_moved : float;  (** wire bytes, retransmissions included *)
}

val schedule :
  ?obs:Obs.t ->
  ?params:Replay.params ->
  Machine.Config.t ->
  Minic.Interp.event list ->
  outcome
(** Raises {!Fault.Device_dead} only when every device has died and
    the policy forbids CPU fallback ([no-fallback]). *)

val makespan :
  ?obs:Obs.t ->
  ?params:Replay.params ->
  Machine.Config.t ->
  Minic.Interp.event list ->
  float
