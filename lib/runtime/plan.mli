(** Offload execution plans.

    A {!shape} describes {e what} an application's offloadable part
    looks like (iteration count, kernel characteristics, data volumes,
    offload structure); a {!strategy} describes {e how} it is
    executed.  {!Schedule_gen} lowers the pair to a task graph. *)

type shared = {
  shared_bytes : int;  (** total pointer-based shared data *)
  shared_allocs : int;  (** dynamic shared allocations performed *)
  objects_touched : int;
      (** device-side object accesses (translation overhead) *)
  myo_touched_frac : float;
      (** fraction of the shared pages the device touches per offload
          round under MYO *)
  myo_rounds : int;
      (** offload boundaries: MYO re-faults after each sync *)
  myo_access_penalty : float;
      (** kernel slowdown from MYO's per-access coherence checks
          (>= 1.0); our scheme needs none *)
}

val default_shared : shared

type shape = {
  iters : int;  (** iterations of one offloaded loop instance *)
  kernel : Machine.Cost.kernel;
  bytes_in : float;  (** streamable input bytes per offload instance *)
  bytes_out : float;
  invariant_bytes : float;  (** transferred whole, once, up-front *)
  outer_repeats : int;  (** sequential outer loop around the offloads *)
  inner_offloads : int;  (** offload regions per outer iteration *)
  host_glue_s : float;  (** sequential host work per outer iteration *)
  host_serial_s : float;
      (** non-offloadable part of the whole application (Amdahl, for
          Figure 10) *)
  cpu_threads : int option;
      (** host threads; the paper uses 4 except dedup (5) and
          ferret (6) *)
  shared : shared option;  (** pointer-based shared structures *)
}

val default_shape : shape

type repack = {
  repack_s_per_block : float;
      (** host time to regularize one block's data *)
  pipelined : bool;
      (** overlap the repack of block [i+2] with the transfer of [i+1]
          and compute of [i] (Section IV) *)
}

type strategy =
  | Host_parallel  (** run the parallel loops on the host CPU *)
  | Naive_offload
      (** LEO semantics: every offload transfers, launches, computes,
          transfers back, synchronously *)
  | Streamed of {
      nblocks : int;
      double_buffered : bool;
      persistent : bool;  (** thread reuse: one launch + COI signals *)
      repack : repack option;  (** regularization pipelining *)
    }
  | Merged of { streamed : bool; nblocks : int }
      (** one offload hoisted around the whole outer loop; [streamed]
          additionally overlaps the up-front transfer with the first
          iterations *)
  | Shared_myo  (** pointer-based data via MYO page faulting *)
  | Shared_segbuf of { seg_bytes : int }
      (** pointer-based data via preallocated segmented buffers *)

val streamed :
  ?nblocks:int ->
  ?double_buffered:bool ->
  ?persistent:bool ->
  ?repack:repack ->
  unit ->
  strategy

val merged : ?streamed:bool -> ?nblocks:int -> unit -> strategy

val strategy_name : strategy -> string

val placements : alive:int list -> streams:int -> (int * int) list
(** Round-robin placement grid over the alive devices: unit [i] is
    [(device, stream)], consecutive units on distinct devices first
    (spreading blocks across PCIe links), then the next stream.
    [alive:\[0\] ~streams:1] is the classic single-unit grid. *)

val shared_of_shape : shape -> shared
(** The shared-structure description of a shape, with the schedule
    generator's default when none is given. *)

val myo_touched_pages : Machine.Config.t -> shared -> int
(** Pages the device touches per MYO offload round. *)

(** Transfer volumes a (shape, strategy) pair declares: what the
    lowered task graph must move.  [fault_bytes] is MYO page-fault
    traffic (kind [page_fault]), kept apart from DMA [h2d_bytes]. *)
type transfers = { h2d_bytes : float; d2h_bytes : float; fault_bytes : float }

val declared_transfers : Machine.Config.t -> shape -> strategy -> transfers
(** The totals the observed span bytes must conserve
    (property-tested). *)
