(** Execution-driven replay: the interpreter's offload event trace
    turned into a machine schedule, so the original and the transformed
    program can be timed as the {e actual code} they are, not as shape
    descriptors.  Synchronous operations chain on the host; an
    asynchronous transfer ([signal(t)]) runs concurrently until a
    matching [wait(t)] joins it back — recovering the Figure 5(d)
    overlap from the generated source. *)

type params = {
  bytes_per_cell : float;
      (** how many real bytes one miniature heap cell stands for *)
  seconds_per_stmt : float;
      (** device time one interpreted statement stands for *)
}

val default_params : params

exception Unmatched_wait of int
(** A [wait(t)] (or kernel [wait] clause) with no earlier [signal(t)]:
    the deadlock a lost signal would cause, surfaced loudly. *)

val tasks :
  ?obs:Obs.t ->
  ?params:params ->
  Machine.Config.t ->
  Minic.Interp.event list ->
  Machine.Task.t list
(** With [?obs], transfers/kernels are tagged and counted
    ([replay.signals], [replay.waits], [runtime.launches]). *)

val schedule :
  ?obs:Obs.t ->
  ?params:params ->
  Machine.Config.t ->
  Minic.Interp.event list ->
  Machine.Engine.result

val makespan :
  ?params:params -> Machine.Config.t -> Minic.Interp.event list -> float

val of_program :
  ?obs:Obs.t ->
  ?params:params ->
  ?cfg:Machine.Config.t ->
  Minic.Ast.program ->
  Minic.Interp.outcome * Machine.Engine.result
(** Interpret and replay; raises [Invalid_argument] on runtime errors. *)
