(** Execution-driven replay: the interpreter's offload event trace
    turned into a machine schedule, so the original and the transformed
    program can be timed as the {e actual code} they are, not as shape
    descriptors.  Synchronous operations chain on the host; an
    asynchronous transfer ([signal(t)]) runs concurrently until a
    matching [wait(t)] joins it back — recovering the Figure 5(d)
    overlap from the generated source. *)

type params = {
  bytes_per_cell : float;
      (** how many real bytes one miniature heap cell stands for *)
  seconds_per_stmt : float;
      (** device time one interpreted statement stands for *)
}

val default_params : params

exception Unmatched_wait of int
(** A [wait(t)] (or kernel [wait] clause) with no earlier [signal(t)]:
    the deadlock a lost signal would cause, surfaced loudly. *)

val tasks :
  ?obs:Obs.t ->
  ?plan:Fault.t ->
  ?params:params ->
  Machine.Config.t ->
  Minic.Interp.event list ->
  Machine.Task.t list
(** With [?obs], transfers/kernels are tagged and counted
    ([replay.signals], [replay.waits], [runtime.launches]).  With
    [?plan], each asynchronous signal is assigned its fate when raised:
    a dropped signal makes the matching wait burn the recovery timeout
    before polling the transfer directly; a delayed one stalls the
    waiter by the delay. *)

val schedule :
  ?obs:Obs.t ->
  ?params:params ->
  Machine.Config.t ->
  Minic.Interp.event list ->
  Machine.Engine.result
(** When [cfg.fault] is a live fault plan, signal fates and transfer
    retries are injected and all recovery time lands in the makespan.
    An unrecoverable device death escapes as {!Fault.Device_dead} —
    use {!schedule_recovered} to absorb it. *)

type recovered = {
  r_result : Machine.Engine.result;
  r_fellback : bool;  (** the device died and the CPU took over *)
  r_died_at : float option;  (** when the device was declared dead *)
}

val schedule_recovered :
  ?obs:Obs.t ->
  ?params:params ->
  Machine.Config.t ->
  Minic.Interp.event list ->
  recovered
(** Like {!schedule}, but a device declared dead is recovered on the
    CPU when the policy allows it: the whole program re-runs host-side
    at the policy's [fallback_slowdown], with the lost device time
    charged up front.  Without [cpu_fallback] the death re-escapes. *)

val makespan :
  ?params:params -> Machine.Config.t -> Minic.Interp.event list -> float

val of_program :
  ?obs:Obs.t ->
  ?params:params ->
  ?cfg:Machine.Config.t ->
  Minic.Ast.program ->
  Minic.Interp.outcome * Machine.Engine.result
(** Interpret and replay; raises [Invalid_argument] on runtime errors. *)
