(** Lowering of (shape, strategy) pairs to task graphs for the event
    engine, and the resulting timings.  This is where the pipelining of
    data streaming, the launch-count arithmetic of offload merging, and
    the fault-vs-DMA contrast of the shared-memory mechanism become
    schedules. *)

open Machine
module P = Plan

let mic_compute cfg (s : P.shape) = Cost.mic_time cfg s.kernel ~iters:s.iters

(* benchmarks may pin their own host thread count (dedup 5, ferret 6) *)
let cpu_compute (cfg : Machine.Config.t) (s : P.shape) =
  let cfg =
    match s.cpu_threads with
    | None -> cfg
    | Some n ->
        { cfg with Machine.Config.cpu = { cfg.Machine.Config.cpu with threads_used = n } }
  in
  Cost.cpu_time cfg s.kernel ~iters:s.iters

(** Task graph for one (shape, strategy).  The graph covers the
    offloadable part of the application only; [host_serial_s] is added
    by {!total_time}.

    [?alive] restricts placement to the listed devices (default: all
    of [cfg.devices]); the migration ladder of {!schedule_recovered}
    shrinks it as devices die.  Streaming spreads its blocks
    round-robin over every alive (device, stream) unit; the other
    strategies run on the first alive device. *)
let tasks ?obs ?alive cfg (shape : P.shape) (strategy : P.strategy) :
    Task.t list =
  let b = Task.builder () in
  let alive =
    match alive with
    | Some (_ :: _ as l) -> List.sort_uniq compare l
    | Some [] | None ->
        List.init (max 1 cfg.Machine.Config.devices) Fun.id
  in
  let dev0 = List.hd alive in
  let mic = Task.Mic_exec (dev0, 0) in
  let h2d = Task.Pcie_h2d dev0 in
  let d2h = Task.Pcie_d2h dev0 in
  (* half-duplex links serialize both directions on one channel (per
     device); the observability kind survives the remap, so d2h
     traffic is still accounted as d2h *)
  let add ?deps ?kind ?bytes ~label ~resource ~duration () =
    let resource =
      match (cfg.Machine.Config.pcie.duplex, resource) with
      | Machine.Config.Half_duplex, Task.Pcie_d2h d -> Task.Pcie_h2d d
      | _ -> resource
    in
    Task.add b ?deps ?kind ?bytes ~label ~resource ~duration ()
  in
  let bump ?(by = 1) name =
    match obs with None -> () | Some o -> Obs.incr ~by o name
  in
  (match strategy with
  | P.Host_parallel ->
      let per_offload = cpu_compute cfg shape in
      let prev = ref [] in
      for r = 0 to shape.outer_repeats - 1 do
        for j = 0 to shape.inner_offloads - 1 do
          let id =
            add ~deps:!prev
              ~label:(Printf.sprintf "cpu-loop r%d.%d" r j)
              ~resource:Task.Cpu_exec ~duration:per_offload ()
          in
          prev := [ id ]
        done;
        if shape.host_glue_s > 0. then begin
          let id =
            add ~deps:!prev
              ~label:(Printf.sprintf "glue r%d" r)
              ~resource:Task.Cpu_exec ~duration:shape.host_glue_s ()
          in
          prev := [ id ]
        end
      done
  | P.Naive_offload ->
      (* every offload synchronously: in-transfer, launch+compute,
         out-transfer; glue on the host between outer iterations *)
      let compute = mic_compute cfg shape in
      let prev = ref [] in
      for r = 0 to shape.outer_repeats - 1 do
        for j = 0 to shape.inner_offloads - 1 do
          (* loop-invariant data is allocated and transferred once
             (alloc_if/free_if reuse, standard in the ported codes) *)
          let h2d_bytes =
            shape.bytes_in
            +. if r = 0 && j = 0 then shape.invariant_bytes else 0.
          in
          let t_in =
            add ~deps:!prev
              ~label:(Printf.sprintf "h2d r%d.%d" r j)
              ~resource:h2d ~kind:Obs.H2d ~bytes:h2d_bytes
              ~duration:(Cost.transfer_time ?obs cfg Cost.H2d ~bytes:h2d_bytes)
              ()
          in
          bump "runtime.launches";
          let t_k =
            add ~deps:[ t_in ]
              ~label:(Printf.sprintf "kernel r%d.%d" r j)
              ~resource:mic ~kind:Obs.Kernel
              ~duration:(Cost.launch_time ?obs cfg +. compute)
              ()
          in
          let t_out =
            add ~deps:[ t_k ]
              ~label:(Printf.sprintf "d2h r%d.%d" r j)
              ~resource:d2h ~kind:Obs.D2h ~bytes:shape.bytes_out
              ~duration:
                (Cost.transfer_time ?obs cfg Cost.D2h ~bytes:shape.bytes_out)
              ()
          in
          prev := [ t_out ]
        done;
        if shape.host_glue_s > 0. then begin
          let id =
            add ~deps:!prev
              ~label:(Printf.sprintf "glue r%d" r)
              ~resource:Task.Cpu_exec ~duration:shape.host_glue_s ()
          in
          prev := [ id ]
        end
      done
  | P.Merged { streamed; nblocks } ->
      (* one launch around the whole outer loop: data up once, all
         compute (and the glue, slowly) on the device, results back.
         The device work is modeled as one chunk per outer iteration so
         a streamed up-front transfer can overlap with the first
         iterations. *)
      let compute = mic_compute cfg shape in
      let chunk =
        (float_of_int shape.inner_offloads *. compute)
        +. Cost.mic_serial_time cfg ~cpu_seconds:shape.host_glue_s
      in
      (* the merged clause set is the union over the inner offloads *)
      let h2d_bytes =
        (shape.bytes_in *. float_of_int shape.inner_offloads)
        +. shape.invariant_bytes
      in
      let n_in = if streamed then max 1 nblocks else 1 in
      let in_ids =
        List.init n_in (fun i ->
            let blk_bytes = h2d_bytes /. float_of_int n_in in
            add
              ~label:(Printf.sprintf "h2d %d/%d" (i + 1) n_in)
              ~resource:h2d ~kind:Obs.H2d ~bytes:blk_bytes
              ~duration:(Cost.transfer_time ?obs cfg Cost.H2d ~bytes:blk_bytes)
              ())
      in
      bump "runtime.launches";
      let launch =
        add ~label:"launch merged" ~resource:mic ~kind:Obs.Launch
          ~duration:(Cost.launch_time ?obs cfg) ()
      in
      let first_dep =
        (* streamed: start once the first block landed; otherwise wait
           for the whole transfer *)
        if streamed then [ launch; List.hd in_ids ]
        else launch :: in_ids
      in
      let prev = ref first_dep in
      let last = ref launch in
      for r = 0 to shape.outer_repeats - 1 do
        let id =
          add ~deps:!prev
            ~label:(Printf.sprintf "merged chunk r%d" r)
            ~resource:mic ~kind:Obs.Kernel ~duration:chunk ()
        in
        prev := [ id ];
        last := id
      done;
      ignore
        (add
           ~deps:(!last :: in_ids)
           ~label:"d2h all" ~resource:d2h ~kind:Obs.D2h
           ~bytes:shape.bytes_out
           ~duration:
             (Cost.transfer_time ?obs cfg Cost.D2h ~bytes:shape.bytes_out)
           ())
  | P.Streamed { nblocks; double_buffered; persistent; repack } ->
      (* streamed pipeline per offload instance, chained across the
         outer structure like the naive schedule.  Blocks round-robin
         over every alive (device, stream) unit: consecutive blocks
         land on distinct devices (spreading the PCIe load), streams
         of one device partition its cores (a stream's kernel is
         [streams] times slower) but contend for the device's one
         link.  One unit — the classic machine — reproduces the
         historic single-device graph exactly. *)
      let grid =
        Array.of_list
          (P.placements ~alive ~streams:cfg.Machine.Config.streams)
      in
      let nunits = Array.length grid in
      let n = max 1 nblocks in
      let compute_blk =
        mic_compute cfg shape /. float_of_int n
        *. float_of_int (max 1 cfg.Machine.Config.streams)
      in
      let in_blk = shape.bytes_in /. float_of_int n in
      let out_blk = shape.bytes_out /. float_of_int n in
      (* one model evaluation here; the per-block signal/launch events
         are counted as the blocks are laid down below *)
      let per_block_overhead =
        if persistent then Cost.signal_time ?obs cfg
        else Cost.launch_time ?obs cfg
      in
      (* the invariant data goes whole to every alive device, once,
         before everything; each unit's persistent kernel is launched
         once, after its own device's copy has landed *)
      let inv_ids =
        if shape.invariant_bytes > 0. then
          List.map
            (fun d ->
              ( d,
                add
                  ~label:
                    (if nunits = 1 then "h2d invariant"
                     else Printf.sprintf "h2d invariant d%d" d)
                  ~resource:(Task.Pcie_h2d d) ~kind:Obs.H2d
                  ~bytes:shape.invariant_bytes
                  ~duration:
                    (Cost.transfer_time ?obs cfg Cost.H2d
                       ~bytes:shape.invariant_bytes)
                  () ))
            alive
        else []
      in
      let inv_of d =
        List.filter_map
          (fun (d', id) -> if d' = d then Some id else None)
          inv_ids
      in
      let pre0 = List.map snd inv_ids in
      let pre0 =
        if persistent then
          Array.to_list
            (Array.map
               (fun (d, s) ->
                 bump "runtime.launches";
                 add ~deps:(inv_of d)
                   ~label:
                     (if nunits = 1 then "launch persistent"
                      else Printf.sprintf "launch persistent u%d.%d" d s)
                   ~resource:(Task.Mic_exec (d, s))
                   ~kind:Obs.Launch
                   ~duration:(Cost.launch_time ?obs cfg)
                   ())
               grid)
          @ pre0
        else pre0
      in
      let prev = ref pre0 in
      for r = 0 to shape.outer_repeats - 1 do
        for j = 0 to shape.inner_offloads - 1 do
          let kernel_ids = Array.make n (-1) in
          let out_ids = ref [] in
          let repack_prev = ref [] in
          for blk = 0 to n - 1 do
            let ud, us = grid.(blk mod nunits) in
            (* host-side regularization of this block, if any *)
            let repack_dep =
              match repack with
              | None -> []
              | Some { P.repack_s_per_block; pipelined } ->
                  let deps =
                    (* non-pipelined repacking waits for the previous
                       block's kernel: no overlap *)
                    (if pipelined then !repack_prev
                     else if blk > 0 then [ kernel_ids.(blk - 1) ]
                     else [])
                    @ !prev
                  in
                  bump "runtime.repacks";
                  let id =
                    add ~deps
                      ~label:(Printf.sprintf "repack r%d.%d b%d" r j blk)
                      ~resource:Task.Cpu_exec ~kind:Obs.Repack
                      ~duration:repack_s_per_block ()
                  in
                  repack_prev := [ id ];
                  [ id ]
            in
            (* double buffering: each unit holds two buffers, so block
               b's transfer reuses the buffer of the unit's
               previous-but-one block and must wait for its kernel *)
            let buffer_dep =
              if double_buffered && blk >= 2 * nunits then
                [ kernel_ids.(blk - (2 * nunits)) ]
              else []
            in
            let t_in =
              add
                ~deps:(!prev @ repack_dep @ buffer_dep)
                ~label:(Printf.sprintf "h2d r%d.%d b%d" r j blk)
                ~resource:(Task.Pcie_h2d ud) ~kind:Obs.H2d ~bytes:in_blk
                ~duration:(Cost.transfer_time ?obs cfg Cost.H2d ~bytes:in_blk)
                ()
            in
            (* blocks within one unit serialize in issue order *)
            let k_deps =
              t_in
              :: (if blk >= nunits then [ kernel_ids.(blk - nunits) ]
                  else [])
            in
            bump (if persistent then "runtime.signals" else "runtime.launches");
            let t_k =
              add ~deps:k_deps
                ~label:(Printf.sprintf "kernel r%d.%d b%d" r j blk)
                ~resource:(Task.Mic_exec (ud, us))
                ~kind:Obs.Kernel
                ~duration:(per_block_overhead +. compute_blk)
                ()
            in
            kernel_ids.(blk) <- t_k;
            let t_out =
              add ~deps:[ t_k ]
                ~label:(Printf.sprintf "d2h r%d.%d b%d" r j blk)
                ~resource:(Task.Pcie_d2h ud) ~kind:Obs.D2h ~bytes:out_blk
                ~duration:(Cost.transfer_time ?obs cfg Cost.D2h ~bytes:out_blk)
                ()
            in
            out_ids := t_out :: !out_ids
          done;
          prev := !out_ids
        done;
        if shape.host_glue_s > 0. then begin
          let id =
            add ~deps:!prev
              ~label:(Printf.sprintf "glue r%d" r)
              ~resource:Task.Cpu_exec ~duration:shape.host_glue_s ()
          in
          prev := [ id ]
        end
      done
  | P.Shared_myo ->
      (* MYO: page-granularity on-demand copies.  Touched pages fault
         once per offload round (synchronization boundaries invalidate
         the device copies); each fault pays software handling plus a
         page-sized, non-DMA copy, and every device access pays a
         coherence-state check. *)
      let sh = P.shared_of_shape shape in
      let touched = P.myo_touched_pages cfg sh in
      let per_page =
        cfg.myo.fault_cost_s
        +. float_of_int cfg.myo.page_bytes /. (cfg.myo.page_bw_gbs *. 1e9)
      in
      let fault_per_round = float_of_int touched *. per_page in
      let fault_bytes = float_of_int (touched * cfg.myo.page_bytes) in
      let rounds = max 1 sh.myo_rounds in
      let compute_per_round =
        mic_compute cfg shape *. sh.myo_access_penalty /. float_of_int rounds
      in
      bump ~by:sh.shared_allocs "runtime.myo_allocs";
      (* allocation bookkeeping on the host *)
      let t_alloc =
        add ~label:"myo allocs" ~resource:Task.Cpu_exec
          ~duration:(float_of_int sh.shared_allocs *. 2.0e-6)
          ()
      in
      let prev = ref [ t_alloc ] in
      for r = 0 to rounds - 1 do
        bump ~by:touched "runtime.page_faults";
        let t_fault =
          add ~deps:!prev
            ~label:(Printf.sprintf "myo faults r%d" r)
            ~resource:h2d ~kind:Obs.Page_fault ~bytes:fault_bytes
            ~duration:fault_per_round ()
        in
        bump "runtime.launches";
        let t_k =
          add ~deps:[ t_fault ]
            ~label:(Printf.sprintf "kernel r%d" r)
            ~resource:mic ~kind:Obs.Kernel
            ~duration:(Cost.launch_time ?obs cfg +. compute_per_round)
            ()
        in
        prev := [ t_k ]
      done;
      ignore
        (add ~deps:!prev ~label:"d2h results" ~resource:d2h
           ~kind:Obs.D2h ~bytes:shape.bytes_out
           ~duration:
             (Cost.transfer_time ?obs cfg Cost.D2h ~bytes:shape.bytes_out)
           ())
  | P.Shared_segbuf { seg_bytes } ->
      (* our mechanism: whole preallocated segments moved by DMA; O(1)
         pointer translation via the delta table costs a small per-access
         overhead *)
      let sh = P.shared_of_shape shape in
      let segs = max 1 ((sh.shared_bytes + seg_bytes - 1) / seg_bytes) in
      bump ~by:sh.shared_allocs "runtime.segbuf_allocs";
      bump ~by:segs "runtime.seg_allocs";
      let t_alloc =
        add ~label:"segbuf allocs" ~resource:Task.Cpu_exec ~kind:Obs.Seg_alloc
          ~duration:(float_of_int sh.shared_allocs *. 0.05e-6)
          ()
      in
      let seg_tasks =
        List.init segs (fun i ->
            let seg_xfer =
              float_of_int
                (max 0 (min seg_bytes (sh.shared_bytes - (i * seg_bytes))))
            in
            add ~deps:[ t_alloc ]
              ~label:(Printf.sprintf "dma seg%d" i)
              ~resource:h2d ~kind:Obs.H2d ~bytes:seg_xfer
              ~duration:(Cost.transfer_time ?obs cfg Cost.H2d ~bytes:seg_xfer)
              ())
      in
      let translate_overhead =
        float_of_int sh.objects_touched *. 1.0e-9
      in
      bump "runtime.launches";
      let t_k =
        add ~deps:seg_tasks ~label:"kernel" ~resource:mic
          ~kind:Obs.Kernel
          ~duration:
            (Cost.launch_time ?obs cfg +. mic_compute cfg shape
           +. translate_overhead)
          ()
      in
      ignore
        (add ~deps:[ t_k ] ~label:"d2h results" ~resource:d2h
           ~kind:Obs.D2h ~bytes:shape.bytes_out
           ~duration:
             (Cost.transfer_time ?obs cfg Cost.D2h ~bytes:shape.bytes_out)
           ()));
  Task.tasks b

(** Full schedule, for tracing.  When [cfg.fault] is a live fault
    plan, transfer retries and device resets are injected by the
    engine (each device consulting its own plan); an unrecoverable
    device death escapes as {!Fault.Device_dead} — use
    {!schedule_recovered} to absorb it by migration / fallback. *)
let schedule ?obs (cfg : Machine.Config.t) shape strategy =
  let faults =
    Fault.fleet_of ?obs ~devices:cfg.Machine.Config.devices
      cfg.Machine.Config.fault
  in
  Engine.schedule ?obs ?faults (tasks ?obs cfg shape strategy)

(** Makespan of the offloadable part under a strategy. *)
let region_time ?obs cfg shape strategy =
  (schedule ?obs cfg shape strategy).Engine.makespan

(** Whole-application time: region time plus the host serial part. *)
let total_time ?obs cfg (shape : P.shape) strategy =
  shape.host_serial_s +. region_time ?obs cfg shape strategy

type recovered = {
  rec_result : Engine.result;
  rec_fellback : bool;  (** every device died and the CPU took over *)
  rec_died_at : float option;  (** when the first device died *)
  rec_migrated : int;
      (** blocks re-run on surviving devices across all migrations *)
  rec_dead : int list;  (** devices declared dead, in death order *)
}

(* kernel blocks in a task graph: what a migration re-runs *)
let kernel_blocks ts =
  List.length
    (List.filter
       (fun (t : Task.t) ->
         match t.Task.resource with
         | Task.Mic_exec _ -> t.Task.kind = Some Obs.Kernel
         | _ -> false)
       ts)

(* charge already-lost wall-clock time as a host-side Retry prefix
   that every root of the graph waits on *)
let with_lost_prefix ts ~label ~lost =
  if lost <= 0. then ts
  else
    let lid =
      1 + List.fold_left (fun a (t : Task.t) -> max a t.Task.id) (-1) ts
    in
    {
      Task.id = lid;
      label;
      resource = Task.Cpu_exec;
      duration = lost;
      deps = [];
      kind = Some Obs.Retry;
      bytes = 0.;
      reset_xfer_s = 0.;
    }
    :: List.map
         (fun (t : Task.t) ->
           if t.Task.deps = [] then { t with Task.deps = [ lid ] } else t)
         ts

(** Like {!schedule}, but device death walks the degradation ladder
    instead of escaping: when a device is declared dead, the wall
    clock it burnt is charged up front and the region's blocks re-run
    on the surviving devices (bumping [fault.migrated_blocks] and
    [fault.dead_devices]); only when {e every} device has died does
    the host take over, re-running the region as [Host_parallel] —
    and without [cpu_fallback] that final death re-escapes.  Each
    migration instantiates a fresh fleet, so surviving devices keep
    their own (per-instance) fault plans. *)
let schedule_recovered ?obs (cfg : Machine.Config.t) shape strategy =
  let spec = cfg.Machine.Config.fault in
  let devices = max 1 cfg.Machine.Config.devices in
  if Fault.is_none spec then
    {
      rec_result = Engine.schedule ?obs (tasks ?obs cfg shape strategy);
      rec_fellback = false;
      rec_died_at = None;
      rec_migrated = 0;
      rec_dead = [];
    }
  else
    let bump ?(by = 1) name =
      match obs with None -> () | Some o -> Obs.incr ~by o name
    in
    let rec attempt alive ~lost ~first_death ~migrated ~dead =
      let fleet = Fault.fleet ?obs ~devices spec in
      let body = tasks ?obs ~alive cfg shape strategy in
      let migrated =
        if dead = [] then migrated
        else begin
          let blocks = kernel_blocks body in
          bump ~by:blocks "fault.migrated_blocks";
          migrated + blocks
        end
      in
      let ts = with_lost_prefix body ~label:"migrated (lost work)" ~lost in
      try
        {
          rec_result = Engine.schedule ?obs ~faults:fleet ts;
          rec_fellback = false;
          rec_died_at = first_death;
          rec_migrated = migrated;
          rec_dead = dead;
        }
      with Fault.Device_dead { dev; at; failures } ->
        bump "fault.dead_devices";
        let survivors = List.filter (fun d -> d <> dev) alive in
        let first_death =
          match first_death with Some _ as s -> s | None -> Some at
        in
        let dead = dead @ [ dev ] in
        if survivors <> [] then
          attempt survivors ~lost:(lost +. at) ~first_death ~migrated ~dead
        else if not spec.Fault.policy.Fault.cpu_fallback then
          raise (Fault.Device_dead { dev; at; failures })
        else begin
          Fault.note_fallback (Fault.fleet_plan fleet ~dev);
          let clean = { cfg with Machine.Config.fault = Fault.none } in
          let b = Task.builder () in
          let l =
            Task.add b ~label:"device-dead (lost work)"
              ~resource:Task.Cpu_exec ~kind:Obs.Retry
              ~duration:(lost +. at) ()
          in
          ignore
            (Task.add b ~deps:[ l ] ~label:"cpu fallback"
               ~resource:Task.Cpu_exec ~kind:Obs.Retry
               ~duration:(region_time clean shape P.Host_parallel)
               ());
          {
            rec_result = Engine.schedule ?obs (Task.tasks b);
            rec_fellback = true;
            rec_died_at = first_death;
            rec_migrated = migrated;
            rec_dead = dead;
          }
        end
    in
    attempt
      (List.init devices Fun.id)
      ~lost:0. ~first_death:None ~migrated:0 ~dead:[]

(** Region makespan with device death absorbed by the CPU fallback. *)
let recovered_region_time ?obs cfg shape strategy =
  (schedule_recovered ?obs cfg shape strategy).rec_result.Engine.makespan
