(** Minimal COI-style signal channel between host and device, used by
    the thread-reuse optimization (Section III-C): the persistent
    kernel [wait]s for each data block's signal instead of being
    relaunched.  This is a functional simulation with timestamps so the
    ordering logic can be unit-tested independently of the event
    engine.

    Under a fault plan, a signal can be dropped (lost on the wire —
    never delivered, though the host still pays the send cost) or
    delayed.  [signals] holds only {e delivered} signals, which is what
    makes the re-signal semantics right: a dropped signal followed by a
    re-signal keeps the re-signal's delivered time, and {!signalled}
    reports only deliveries. *)

type t = {
  signals : (int, float) Hashtbl.t;  (** tag -> time delivered *)
  mutable signal_cost : float;
  mutable wait_cost : float;
  obs : Obs.t option;
  plan : Fault.t option;
  dev : int;  (** the device this channel talks to *)
}

(* a channel connects the host to ONE device's persistent kernel;
   [?dev] defaults to the fault plan's device so per-device plans and
   their channels stay aligned *)
let create ?obs ?plan ?dev ?(signal_cost = 5.0e-6) ?(wait_cost = 1.0e-6) () =
  let dev =
    match (dev, plan) with
    | Some d, _ -> max 0 d
    | None, Some p -> Fault.dev p
    | None, None -> 0
  in
  { signals = Hashtbl.create 16; signal_cost; wait_cost; obs; plan; dev }

let dev t = t.dev

exception Never_signalled of int

exception Timeout of { tag : int; waited_s : float }

(** Host side: raise signal [tag] at [time]; returns the time the host
    continues (signalling is cheap but not free).  Under a fault plan
    the signal may be dropped (nothing is delivered) or delayed (the
    delivered time is late); among delivered signals the earliest
    delivery wins. *)
let signal t ~tag ~time =
  let delivery =
    match t.plan with
    | None -> Some time
    | Some plan -> (
        match Fault.signal_fate plan ~tag with
        | Fault.Deliver -> Some time
        | Fault.Dropped -> None
        | Fault.Delayed d -> Some (time +. d))
  in
  (match delivery with
  | None -> ()
  | Some at -> (
      match Hashtbl.find_opt t.signals tag with
      | Some earlier when earlier <= at -> ()
      | _ -> Hashtbl.replace t.signals tag at));
  (match t.obs with
  | None -> ()
  | Some o ->
      Obs.incr o "coi.signals";
      Obs.span o Obs.Signal
        ~label:(Printf.sprintf "signal#%d" tag)
        ~start:time
        ~stop:(time +. t.signal_cost));
  time +. t.signal_cost

(** Device side: wait for [tag] starting at [time]; returns the time
    the kernel resumes.  A tag never delivered is a deadlock: with a
    timeout (given explicitly or by the fault plan's recovery policy)
    it surfaces as a recoverable {!Timeout} after the timeout has been
    waited out; without one it raises {!Never_signalled} — which is how
    a lost-signal deadlock shows up in tests. *)
let wait ?timeout t ~tag ~time =
  let timeout =
    match (timeout, t.plan) with
    | Some _, _ -> timeout
    | None, Some plan -> Some (Fault.policy plan).Fault.wait_timeout_s
    | None, None -> None
  in
  match Hashtbl.find_opt t.signals tag with
  | None -> (
      match timeout with
      | None -> raise (Never_signalled tag)
      | Some waited_s ->
          (match t.obs with
          | None -> ()
          | Some o ->
              Obs.span o Obs.Retry
                ~label:(Printf.sprintf "wait-timeout#%d" tag)
                ~start:time
                ~stop:(time +. waited_s));
          (match t.plan with
          | Some plan -> Fault.note_timeout plan
          | None -> (
              match t.obs with
              | Some o -> Obs.incr o "fault.timeouts"
              | None -> ()));
          raise (Timeout { tag; waited_s }))
  | Some delivered ->
      let resumed = Float.max time delivered +. t.wait_cost in
      (match t.obs with
      | None -> ()
      | Some o ->
          Obs.incr o "coi.waits";
          Obs.span o Obs.Signal
            ~label:(Printf.sprintf "wait#%d" tag)
            ~start:time ~stop:resumed);
      resumed

(** Only delivered signals count: a dropped signal is invisible here. *)
let signalled t tag = Hashtbl.mem t.signals tag

(** Per-block synchronization cost of a persistent kernel versus a
    fresh launch: the saving that motivates thread reuse. *)
let saving_per_block (cfg : Machine.Config.t) =
  Machine.Cost.launch_time cfg -. Machine.Cost.signal_time cfg
