(** Minimal COI-style signal channel between host and device, used by
    the thread-reuse optimization (Section III-C): the persistent
    kernel [wait]s for each data block's signal instead of being
    relaunched.  This is a functional simulation with timestamps so the
    ordering logic can be unit-tested independently of the event
    engine. *)

type t = {
  signals : (int, float) Hashtbl.t;  (** tag -> time signalled *)
  mutable signal_cost : float;
  mutable wait_cost : float;
  obs : Obs.t option;
}

let create ?obs ?(signal_cost = 5.0e-6) ?(wait_cost = 1.0e-6) () =
  { signals = Hashtbl.create 16; signal_cost; wait_cost; obs }

exception Never_signalled of int

(** Host side: raise signal [tag] at [time]; returns the time the host
    continues (signalling is cheap but not free). *)
let signal t ~tag ~time =
  (match Hashtbl.find_opt t.signals tag with
  | Some earlier when earlier <= time -> ()
  | _ -> Hashtbl.replace t.signals tag time);
  (match t.obs with
  | None -> ()
  | Some o ->
      Obs.incr o "coi.signals";
      Obs.span o Obs.Signal
        ~label:(Printf.sprintf "signal#%d" tag)
        ~start:time
        ~stop:(time +. t.signal_cost));
  time +. t.signal_cost

(** Device side: wait for [tag] starting at [time]; returns the time
    the kernel resumes.  Raises {!Never_signalled} if the tag was never
    raised — which is how a lost-signal deadlock shows up in tests. *)
let wait t ~tag ~time =
  match Hashtbl.find_opt t.signals tag with
  | None -> raise (Never_signalled tag)
  | Some signalled ->
      let resumed = Float.max time signalled +. t.wait_cost in
      (match t.obs with
      | None -> ()
      | Some o ->
          Obs.incr o "coi.waits";
          Obs.span o Obs.Signal
            ~label:(Printf.sprintf "wait#%d" tag)
            ~start:time ~stop:resumed);
      resumed

let signalled t tag = Hashtbl.mem t.signals tag

(** Per-block synchronization cost of a persistent kernel versus a
    fresh launch: the saving that motivates thread reuse. *)
let saving_per_block (cfg : Machine.Config.t) =
  Machine.Cost.launch_time cfg -. Machine.Cost.signal_time cfg
