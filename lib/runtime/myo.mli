(** Model of Intel MYO, the baseline shared-memory runtime (Section V).

    MYO implements virtual shared memory with a page-fault-style
    protocol: shared data is copied on demand, one page at a time, when
    the device first touches it.  The paper's three measured
    pathologies are modeled: page granularity too small for large
    structures, un-batched copies (low effective bandwidth), and fault
    handling overhead.  MYO also caps the number and total size of
    shared allocations — which is why ferret (80,298 allocations)
    cannot run under it. *)

type error =
  | Too_many_allocs of { allocs : int; limit : int }
  | Too_much_memory of { bytes : int; limit : int }

val pp_error : Format.formatter -> error -> unit

type t

val create : ?obs:Obs.t -> ?plan:Fault.t -> Machine.Config.myo -> t
(** With [?obs], allocations, page faults and sync boundaries bump the
    [myo.allocs] / [myo.page_faults] / [myo.fault_bytes] / [myo.syncs]
    counters (Table III's fault columns).  With [?plan], the
    page-service daemon can stall while handling a faulting touch
    ([myo-stall=P:SECS]); stalls are visible in {!stats} and included
    in {!fault_time}. *)

val alloc : t -> int -> (int, error) result
(** [Offload_shared_malloc]: address of a shared object of [bytes]
    bytes, or the limit that was hit. *)

val touch : t -> addr:int -> len:int -> int
(** Device access to a byte range: every non-resident page faults and
    is copied; returns the number of new faults. *)

val sync_boundary : t -> unit
(** Offload-region boundary: device copies are invalidated, so the
    next region re-faults. *)

type stats = {
  allocs : int;
  total_bytes : int;
  faults : int;
  stalls : int;  (** injected page-service stalls *)
  stall_s : float;  (** total injected stall time *)
}

val stats : t -> stats

val fault_time : Machine.Config.t -> t -> float
(** Time spent in fault handling and page copies so far, including
    injected page-service stalls. *)

val segbuf_time : Machine.Config.t -> bytes:int -> seg_bytes:int -> float
(** What our segmented scheme takes for the same data: whole segments
    over DMA at full PCIe bandwidth. *)
