(** Segmented shared-memory allocator (Section V-A).

    Fixed-size segments allocated on demand: one segment while the data
    structure is small; as it grows, new segments are added without
    moving existing objects (pointers stay valid, unlike grow-and-copy)
    and without needing one huge contiguous chunk.  The store is
    word-addressed: one cell holds one integer (a scalar or an encoded
    {!Xptr.t}); sizes are in cells. *)

type t

(** Errors are values: allocation failures are reported, not escaped
    with [failwith]. *)
type error = Out_of_buffer_ids of { max : int }

exception Error of error
(** Raised only by the {!alloc} convenience wrapper. *)

val pp_error : Format.formatter -> error -> unit

val default_seg_cells : int

val create : ?obs:Obs.t -> ?seg_cells:int -> unit -> t
(** With [?obs], allocations, segment creations and device transfers
    bump [segbuf.allocs] / [segbuf.seg_allocs] / [segbuf.dma_*]
    counters. *)

val seg_count : t -> int
val used_cells : t -> int
val capacity_cells : t -> int

val alloc_count : t -> int
(** Allocations performed — Table III's "dynamic" column. *)

val try_alloc : t -> int -> (Xptr.t, error) result
(** Allocate an object of [n] cells, or report buffer-id exhaustion
    (256 segments; bid is one byte) as a value.  Objects never span
    segments and never move.  Raises [Invalid_argument] only for sizes
    that can never fit ([n <= 0] or larger than a segment). *)

val alloc : t -> int -> Xptr.t
(** Exception-raising convenience over {!try_alloc}: raises {!Error}
    on buffer-id exhaustion. *)

val get : t -> Xptr.t -> int -> int
(** Host-side read of cell [k] of the object at [p]; bounds-checked. *)

val set : t -> Xptr.t -> int -> int -> unit

val set_ptr : t -> Xptr.t -> int -> Xptr.t -> unit
(** Store a shared pointer in a cell (encoded). *)

val get_ptr : t -> Xptr.t -> int -> Xptr.t

(** Device image: whole segments moved by DMA, plus the delta table
    for O(1) pointer translation. *)
module Image : sig
  type image = {
    arena : int array;  (** device memory holding all segments *)
    arena_base : int;  (** simulated device virtual base *)
    delta : Xptr.delta;
    bounds : (int * int * int) array;
        (** (cpu_base, cells, mic_base) per segment, for the scan-based
            reference translator *)
    bytes_per_cell : int;
  }

  val device_base : int

  val of_segbuf : ?bytes_per_cell:int -> ?plan:Fault.t -> t -> image
  (** Transfer all segments to the device.  Under [?plan] each
      segment's DMA is one transfer: a failed attempt re-DMAs only
      that segment (counted as [segbuf.dma_retries]); a device
      declared dead raises {!Fault.Device_dead}. *)

  val get : image -> Xptr.t -> int -> int
  (** Device-side read: translates the CPU address through the delta
      table, then reads device memory. *)

  val get_ptr : image -> Xptr.t -> int -> Xptr.t

  val transferred_bytes : image -> int
  val dma_count : image -> int
  (** One DMA per segment. *)
end
