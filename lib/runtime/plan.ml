(** Offload execution plans.

    A {!shape} describes {e what} an application's offloadable part
    looks like (iteration count, kernel characteristics, data volumes,
    offload structure); a {!strategy} describes {e how} it is executed.
    {!Schedule_gen} lowers a (shape, strategy) pair to a task graph for
    the event engine. *)

type shared = {
  shared_bytes : int;  (** total pointer-based shared data *)
  shared_allocs : int;  (** dynamic shared allocations performed *)
  objects_touched : int;  (** device-side object accesses (for
                              translation overhead) *)
  myo_touched_frac : float;
      (** fraction of the shared pages the device actually touches per
          offload round under MYO *)
  myo_rounds : int;
      (** offload boundaries: MYO re-faults shared pages after each
          synchronization *)
  myo_access_penalty : float;
      (** kernel slowdown from MYO's per-access coherence-state checks
          (>= 1.0); our scheme needs no checks since whole segments are
          resident *)
}

let default_shared =
  {
    shared_bytes = 0;
    shared_allocs = 0;
    objects_touched = 0;
    myo_touched_frac = 1.0;
    myo_rounds = 1;
    myo_access_penalty = 1.3;
  }

type shape = {
  iters : int;  (** iterations of one offloaded loop instance *)
  kernel : Machine.Cost.kernel;
  bytes_in : float;  (** streamable input bytes per offload instance *)
  bytes_out : float;  (** output bytes per offload instance *)
  invariant_bytes : float;  (** bytes transferred whole, up-front *)
  outer_repeats : int;  (** sequential outer loop around the offloads *)
  inner_offloads : int;  (** offload regions per outer iteration *)
  host_glue_s : float;  (** sequential host work between offloads, per
                            outer iteration *)
  host_serial_s : float;  (** non-offloadable part of the whole
                              application (runs on the host in every
                              variant; Amdahl for Figure 10) *)
  cpu_threads : int option;
      (** host threads for this benchmark; the paper uses 4 except
          dedup (5) and ferret (6), their minimum pipeline widths *)
  shared : shared option;  (** pointer-based shared structures, if any *)
}

let default_shape =
  {
    iters = 1_000_000;
    kernel = Machine.Cost.default_kernel;
    bytes_in = 8e6;
    bytes_out = 8e6;
    invariant_bytes = 0.;
    outer_repeats = 1;
    inner_offloads = 1;
    host_glue_s = 0.;
    host_serial_s = 0.;
    cpu_threads = None;
    shared = None;
  }

type repack = {
  repack_s_per_block : float;
      (** host time to regularize one block's data *)
  pipelined : bool;
      (** overlap repack of block [i+2] with transfer of [i+1] and
          compute of [i] (Section IV) *)
}

type strategy =
  | Host_parallel  (** run the parallel loops on the host CPU *)
  | Naive_offload
      (** LEO semantics: every offload transfers its data, launches,
          computes, and transfers back, synchronously *)
  | Streamed of {
      nblocks : int;
      double_buffered : bool;
      persistent : bool;  (** thread reuse: one launch + COI signals *)
      repack : repack option;  (** regularization pipelining *)
    }
  | Merged of {
      streamed : bool;
          (** additionally stream the up-front transfer so the first
              outer iterations overlap with it *)
      nblocks : int;
    }  (** one offload hoisted around the whole outer loop *)
  | Shared_myo  (** pointer-based data via MYO page faulting *)
  | Shared_segbuf of { seg_bytes : int }
      (** pointer-based data via preallocated segmented buffers *)

let streamed ?(nblocks = 20) ?(double_buffered = true) ?(persistent = false)
    ?repack () =
  Streamed { nblocks; double_buffered; persistent; repack }

let merged ?(streamed = false) ?(nblocks = 20) () = Merged { streamed; nblocks }

(** The shared-structure description of a shape, defaulting (as the
    schedule generator does) to "all of [bytes_in], one allocation,
    one object access per iteration" when none is given. *)
let shared_of_shape (s : shape) =
  match s.shared with
  | Some sh -> sh
  | None ->
      {
        default_shared with
        shared_bytes = int_of_float s.bytes_in;
        shared_allocs = 1;
        objects_touched = s.iters;
      }

(** Pages the device touches per MYO offload round. *)
let myo_touched_pages (cfg : Machine.Config.t) (sh : shared) =
  let pages =
    (sh.shared_bytes + cfg.myo.page_bytes - 1) / cfg.myo.page_bytes
  in
  int_of_float (Float.round (float_of_int pages *. sh.myo_touched_frac))

(** Transfer volumes a (shape, strategy) pair {e declares}: what the
    lowered task graph must move.  [fault_bytes] is MYO page-fault
    traffic (kind [page_fault]), kept apart from DMA [h2d_bytes].  The
    conservation property test checks the observed span bytes against
    exactly these numbers. *)
type transfers = { h2d_bytes : float; d2h_bytes : float; fault_bytes : float }

let declared_transfers (cfg : Machine.Config.t) (s : shape) = function
  | Host_parallel -> { h2d_bytes = 0.; d2h_bytes = 0.; fault_bytes = 0. }
  | Naive_offload | Streamed _ ->
      let per = float_of_int (s.outer_repeats * s.inner_offloads) in
      {
        h2d_bytes = s.invariant_bytes +. (s.bytes_in *. per);
        d2h_bytes = s.bytes_out *. per;
        fault_bytes = 0.;
      }
  | Merged _ ->
      {
        h2d_bytes =
          (s.bytes_in *. float_of_int s.inner_offloads) +. s.invariant_bytes;
        d2h_bytes = s.bytes_out;
        fault_bytes = 0.;
      }
  | Shared_myo ->
      let sh = shared_of_shape s in
      let touched = myo_touched_pages cfg sh in
      let rounds = max 1 sh.myo_rounds in
      {
        h2d_bytes = 0.;
        d2h_bytes = s.bytes_out;
        fault_bytes = float_of_int (rounds * touched * cfg.myo.page_bytes);
      }
  | Shared_segbuf _ ->
      let sh = shared_of_shape s in
      {
        h2d_bytes = float_of_int (max 0 sh.shared_bytes);
        d2h_bytes = s.bytes_out;
        fault_bytes = 0.;
      }

(** Round-robin placement grid over the alive devices of a
    [devices x streams] machine: unit [i] is [(device, stream)], with
    consecutive units on distinct devices first — so consecutive
    blocks spread across PCIe links — then on the next stream of each
    device.  [alive = \[0\]], [streams = 1] yields the classic
    single-unit grid [\[(0, 0)\]]. *)
let placements ~alive ~streams =
  let alive = List.sort_uniq compare alive in
  let alive = if alive = [] then [ 0 ] else alive in
  let nd = List.length alive in
  let streams = max 1 streams in
  List.init (nd * streams) (fun i -> (List.nth alive (i mod nd), i / nd))

let strategy_name = function
  | Host_parallel -> "cpu"
  | Naive_offload -> "mic-naive"
  | Streamed { double_buffered; persistent; repack; _ } ->
      Printf.sprintf "mic-streamed%s%s%s"
        (if double_buffered then "+dbuf" else "")
        (if persistent then "+reuse" else "")
        (match repack with
        | Some { pipelined = true; _ } -> "+repack-pipe"
        | Some _ -> "+repack"
        | None -> "")
  | Merged { streamed; _ } ->
      if streamed then "mic-merged+streamed" else "mic-merged"
  | Shared_myo -> "mic-myo"
  | Shared_segbuf _ -> "mic-segbuf"
