(** Model of Intel MYO, the baseline shared-memory runtime (Section V).

    MYO implements virtual shared memory with a page-fault-style
    protocol: shared data is copied on demand, one page at a time, when
    the device first touches it.  The paper measures three pathologies,
    all modeled here: page granularity is too small for large
    structures, DMA is not batched (low effective bandwidth), and fault
    handling is pure overhead.  MYO also caps the number of shared
    allocations and the total shared size, which is why [ferret]
    (80,298 allocations) cannot run under it at full input size. *)

type error =
  | Too_many_allocs of { allocs : int; limit : int }
  | Too_much_memory of { bytes : int; limit : int }

let pp_error fmt = function
  | Too_many_allocs { allocs; limit } ->
      Format.fprintf fmt "MYO: %d shared allocations exceed the limit of %d"
        allocs limit
  | Too_much_memory { bytes; limit } ->
      Format.fprintf fmt "MYO: %d shared bytes exceed the limit of %d" bytes
        limit

type t = {
  config : Machine.Config.myo;
  mutable allocs : int;
  mutable total_bytes : int;
  mutable next_addr : int;
  faulted : (int, unit) Hashtbl.t;  (** page number -> present on device *)
  mutable faults : int;
  mutable stalls : int;  (** injected page-service stalls *)
  mutable stall_s : float;  (** total injected stall time *)
  obs : Obs.t option;
  plan : Fault.t option;
}

let create ?obs ?plan (config : Machine.Config.myo) =
  {
    config;
    allocs = 0;
    total_bytes = 0;
    next_addr = 0x2000_0000;
    faulted = Hashtbl.create 1024;
    faults = 0;
    stalls = 0;
    stall_s = 0.;
    obs;
    plan;
  }

(** [Offload_shared_malloc]: returns the address of a shared object of
    [bytes] bytes, or an error when MYO's limits are exceeded. *)
let alloc t bytes =
  if bytes <= 0 then invalid_arg "Myo.alloc: non-positive size";
  if t.allocs + 1 > t.config.max_allocs then
    Error (Too_many_allocs { allocs = t.allocs + 1; limit = t.config.max_allocs })
  else if t.total_bytes + bytes > t.config.max_total_bytes then
    Error
      (Too_much_memory
         { bytes = t.total_bytes + bytes; limit = t.config.max_total_bytes })
  else begin
    let addr = t.next_addr in
    t.allocs <- t.allocs + 1;
    t.total_bytes <- t.total_bytes + bytes;
    t.next_addr <- t.next_addr + bytes;
    (match t.obs with
    | None -> ()
    | Some o ->
        Obs.incr o "myo.allocs";
        Obs.add o "myo.alloc_bytes" bytes);
    Ok addr
  end

let page_of t addr = addr / t.config.page_bytes

(** Device-side access to [[addr, addr+len)]: every page not yet
    resident faults and is copied.  Returns the number of new faults. *)
let touch t ~addr ~len =
  if len <= 0 then 0
  else begin
    let first = page_of t addr and last = page_of t (addr + len - 1) in
    let fresh = ref 0 in
    for p = first to last do
      if not (Hashtbl.mem t.faulted p) then begin
        Hashtbl.add t.faulted p ();
        incr fresh
      end
    done;
    t.faults <- t.faults + !fresh;
    (* fault plan: the page-service daemon can stall while handling a
       batch of fresh faults (one draw per faulting touch) *)
    (match t.plan with
    | Some plan when !fresh > 0 -> (
        match Fault.myo_stall plan with
        | Some stall ->
            t.stalls <- t.stalls + 1;
            t.stall_s <- t.stall_s +. stall
        | None -> ())
    | _ -> ());
    (match t.obs with
    | None -> ()
    | Some o ->
        Obs.incr ~by:!fresh o "myo.page_faults";
        Obs.add o "myo.fault_bytes" (!fresh * t.config.page_bytes);
        Obs.observe o "myo.faults_per_touch" (float_of_int !fresh));
    !fresh
  end

(** Synchronization boundary: MYO invalidates device copies when the
    offload region ends, so the next region faults again. *)
let sync_boundary t =
  (match t.obs with None -> () | Some o -> Obs.incr o "myo.syncs");
  Hashtbl.reset t.faulted

type stats = {
  allocs : int;
  total_bytes : int;
  faults : int;
  stalls : int;
  stall_s : float;
}

let stats (t : t) =
  {
    allocs = t.allocs;
    total_bytes = t.total_bytes;
    faults = t.faults;
    stalls = t.stalls;
    stall_s = t.stall_s;
  }

(** Time spent in fault handling and page copies for the faults
    recorded so far, including any injected page-service stalls. *)
let fault_time (cfg : Machine.Config.t) (t : t) =
  let per_page =
    cfg.myo.fault_cost_s
    +. (float_of_int cfg.myo.page_bytes /. (cfg.myo.page_bw_gbs *. 1e9))
  in
  (float_of_int t.faults *. per_page) +. t.stall_s

(** Time our segmented scheme would take for the same data: whole
    segments over DMA at full PCIe bandwidth. *)
let segbuf_time (cfg : Machine.Config.t) ~bytes ~seg_bytes =
  let segs = max 1 ((bytes + seg_bytes - 1) / seg_bytes) in
  float_of_int segs *. cfg.pcie.latency_s
  +. (float_of_int bytes /. (cfg.pcie.bw_h2d_gbs *. 1e9))
