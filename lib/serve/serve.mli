(** [compc serve]: a long-running JSONL request daemon.

    One request per line — a JSON object with a ["cmd"] field
    ([optimize], [run], [check], [simulate], [stats], [shutdown]) —
    one JSON response per line, in request order.  Malformed input of
    any shape produces a typed error response, never a crash.

    The daemon is built for two properties:

    - {b Determinism.}  The response {e stream} is byte-identical at
      any [--jobs] width: admission (parse, typecheck, compile, queue
      accounting) happens serially on the main thread, batches are
      cut at fixed sizes independent of pool width, and responses are
      emitted strictly in request order.  Wall-clock time never
      appears in a response.
    - {b Amortization.}  A request-shared, source-keyed compile cache
      ({!Minic.Compile_eval.Source_cache}) makes repeated sources
      parse-once/compile-once across the whole session, whichever
      domain runs them; front-end failures are cached too.

    Budgets: each executing request gets
    [min(opts.fuel, max_fuel, max_time * 2e6)] interpreter fuel; an
    execution that exhausts it gets a [budget_exhausted] error
    response.  Admission control: at most [queue] requests may be
    waiting; beyond that requests are rejected with [queue_full]
    (only reachable when [queue < batch] — with [queue >= batch] the
    queue drains before it fills). *)

type config = {
  jobs : int option;  (** pool width; [None] = {!Parallel.default_jobs} *)
  queue : int;  (** admission bound: max requests waiting (default 64) *)
  batch : int;
      (** flush the queue to the pool at this many requests (default
          8).  Deliberately {e not} defaulted to [jobs]: batch cuts
          are sequence points, and tying them to pool width would
          make the response stream width-dependent. *)
  max_fuel : int;  (** per-request fuel ceiling (default 10,000,000) *)
  max_time : float option;
      (** per-request wall budget in seconds, converted to fuel at
          2,000,000 statements/s; [None] = no time bound *)
  timings : bool;
      (** record per-request wall latencies (for {!latencies}; never
          part of a response) *)
}

val default_config : config

type t
(** Server state: compile cache, merged [Obs] sink, request queue. *)

val create : ?config:config -> unit -> t

(** {1 Driving the server in-process}

    [bench] and the tests drive these directly; the CLI wraps them in
    {!serve_stdin} / {!serve_socket}. *)

val handle_line : t -> string -> string list
(** Feed one request line; returns the response lines that became
    emittable (responses are held until every earlier request has
    completed, so a line may return zero, one, or many).  Blank lines
    are ignored. *)

val finish : t -> string list
(** End-of-input barrier: run everything still queued and return the
    remaining responses. *)

val shutdown_requested : t -> bool
(** True once a [shutdown] request has been served. *)

(** {1 Introspection} *)

val obs : t -> Obs.t
(** The merged sink: per-request sinks folded in request order, so
    the profile is identical at any pool width. *)

val cache_hits : t -> int
val cache_misses : t -> int

val latencies : t -> float list
(** Per-request wall latencies (seconds, admission to completion),
    oldest first; empty unless [config.timings]. *)

(** {1 Transports} *)

val serve_channels : t -> in_channel -> out_channel -> unit
(** Request loop: read lines until EOF or [shutdown], emitting (and
    flushing) each response line as it becomes ready. *)

val serve_stdin : t -> unit

val serve_socket : t -> path:string -> unit
(** Bind a Unix-domain socket at [path] and serve one connection at a
    time until a [shutdown] request; state (cache, stats) persists
    across connections.  The socket file is removed on exit. *)

val client : path:string -> in_channel -> out_channel -> unit
(** Scripted-session client for the socket transport: connect
    (retrying while the server starts up), send every input line,
    half-close, then copy response lines to [out_channel].  Suited to
    batch scripts, not interactive use. *)
