(** See serve.mli.  Layout: protocol types and JSON helpers, then
    admission (parse/validate/compile on the main thread), then the
    batch executor on the domain pool, then the transports. *)

module J = Obs.Json
module CE = Minic.Compile_eval

(* {1 Configuration} *)

type config = {
  jobs : int option;
  queue : int;
  batch : int;
  max_fuel : int;
  max_time : float option;
  timings : bool;
}

(* the fuel<->seconds exchange rate for --max-time: the compiled
   engine retires statements at this order of magnitude on commodity
   hosts, and the budget only needs to be the right power of ten *)
let fuel_per_second = 2_000_000

let default_config =
  {
    jobs = None;
    queue = 64;
    batch = 8;
    max_fuel = 10_000_000;
    max_time = None;
    timings = false;
  }

(* {1 Protocol} *)

(* Error codes, with the "exit status" each would map to under the
   CLI's conventions: malformed input 2, execution failure 1,
   admission rejection 3. *)
let status_of_code = function
  | "bad_json" | "bad_request" | "unknown_cmd" | "parse_error"
  | "type_error" | "unknown_benchmark" ->
      2
  | "queue_full" -> 3
  | _ -> 1 (* budget_exhausted, runtime_error *)

type action =
  | A_run of { compiled : CE.compiled; fuel : int }
  | A_optimize of { prog : Minic.Ast.program }
  | A_check of { prog : Minic.Ast.program; fuel : int }
  | A_simulate of {
      bench : string;
      w : Workloads.Workload.t;
      variant_name : string;
      variant : Comp.variant;
    }

type work = {
  w_seq : int;  (** arrival index; response emission order *)
  w_id : J.t;  (** echoed back; client's ["id"] or the sequence number *)
  w_cmd : string;
  w_action : action;
  w_enqueued : float;  (** wall clock at admission; used only for timings *)
}

type t = {
  cfg : config;
  cache : CE.Source_cache.t;
  sink : Obs.t;  (** per-request sinks merged here, in request order *)
  responses : (int, string) Hashtbl.t;  (** completed, not yet emittable *)
  mutable seq : int;
  mutable next_emit : int;
  mutable pending : work list;  (** newest first *)
  mutable npending : int;
  mutable stop : bool;
  mutable served_ok : int;
  mutable served_err : int;
  mutable lats : float list;  (** newest first *)
}

let create ?(config = default_config) () =
  {
    cfg = config;
    cache = CE.Source_cache.create ();
    sink = Obs.create ();
    responses = Hashtbl.create 64;
    seq = 0;
    next_emit = 1;
    pending = [];
    npending = 0;
    stop = false;
    served_ok = 0;
    served_err = 0;
    lats = [];
  }

let obs t = t.sink
let cache_hits t = CE.Source_cache.hits t.cache
let cache_misses t = CE.Source_cache.misses t.cache
let latencies t = List.rev t.lats
let shutdown_requested t = t.stop

(* {1 Response construction} *)

let counters_json o =
  J.Obj (List.map (fun (k, v) -> (k, J.Int v)) (Obs.counters o))

let ok_line ~id ~cmd ~o fields =
  J.to_string
    (J.Obj
       (("id", id) :: ("ok", J.Bool true) :: ("cmd", J.String cmd)
       :: ("status", J.Int 0) :: fields
       @ [ ("counters", counters_json o) ]))

let err_line ~id ~o code msg =
  J.to_string
    (J.Obj
       [
         ("id", id);
         ("ok", J.Bool false);
         ("error", J.String code);
         ("status", J.Int (status_of_code code));
         ("message", J.String msg);
         ("counters", counters_json o);
       ])

(* {1 Emission: strictly in request order} *)

let drain t =
  let rec go acc =
    match Hashtbl.find_opt t.responses t.next_emit with
    | Some line ->
        Hashtbl.remove t.responses t.next_emit;
        t.next_emit <- t.next_emit + 1;
        go (line :: acc)
    | None -> List.rev acc
  in
  go []

let buffer t seq line = Hashtbl.replace t.responses seq line

(* An admission-time rejection: executed nowhere, responded
   immediately (though emission still waits its turn). *)
let reject t ~seq ~id code msg =
  let o = Obs.create () in
  Obs.incr o "serve.requests";
  Obs.incr o "serve.errors";
  Obs.incr o ("serve.err." ^ code);
  if code = "queue_full" then Obs.incr o "serve.rejected";
  let line = err_line ~id ~o code msg in
  Obs.merge t.sink o;
  t.served_err <- t.served_err + 1;
  buffer t seq line

(* {1 Request execution (worker side)}

   Runs on a pool domain; must never raise and must touch no server
   state.  Everything it observes lands in a private sink, returned
   for in-order merging. *)

let stats_json (s : Minic.Interp.stats) =
  J.Obj
    [
      ("offloads", J.Int s.Minic.Interp.offloads);
      ("transfers", J.Int s.Minic.Interp.transfers);
      ("cells_h2d", J.Int s.Minic.Interp.cells_h2d);
      ("cells_d2h", J.Int s.Minic.Interp.cells_d2h);
      ("mic_alloc_cells", J.Int s.Minic.Interp.mic_alloc_cells);
    ]

let applied_json (a : Comp.applied) =
  J.Obj
    [
      ("offloads_inserted", J.Int a.Comp.offloads_inserted);
      ("shared_rewritten", J.Int a.Comp.shared_rewritten);
      ("regularized", J.Int (List.length a.Comp.regularized));
      ("merged", J.Int a.Comp.merged);
      ("streamed", J.Int a.Comp.streamed);
      ("vectorized", J.Int a.Comp.vectorized);
      ("resident", J.Int a.Comp.resident);
    ]

let exec (wk : work) =
  let o = Obs.create () in
  Obs.incr o "serve.requests";
  Obs.incr o ("serve.cmd." ^ wk.w_cmd);
  let result =
    try
      match wk.w_action with
      | A_run { compiled; fuel } -> (
          match CE.exec ~fuel compiled with
          | Ok out ->
              Obs.observe o "serve.work"
                (float_of_int out.Minic.Interp.work);
              Obs.observe o "serve.output_bytes"
                (float_of_int (String.length out.Minic.Interp.output));
              Ok
                [
                  ("output", J.String out.Minic.Interp.output);
                  ("work", J.Int out.Minic.Interp.work);
                  ("stats", stats_json out.Minic.Interp.stats);
                ]
          | Error e when String.equal e "out of fuel" ->
              Obs.incr o "serve.fuel_killed";
              Error
                ( "budget_exhausted",
                  Printf.sprintf
                    "execution exceeded its budget of %d statements" fuel )
          | Error e -> Error ("runtime_error", e))
      | A_optimize { prog } ->
          let prog', applied = Comp.optimize ~obs:o prog in
          let text = Minic.Pretty.program_to_string prog' in
          Obs.observe o "serve.output_bytes"
            (float_of_int (String.length text));
          Ok
            [ ("program", J.String text); ("applied", applied_json applied) ]
      | A_check { prog; fuel } ->
          let reports = Check.check_program ~fuel prog in
          let report_json (r : Check.report) =
            let ok = Check.verdict_ok r.Check.transform r.Check.verdict in
            J.Obj
              [
                ("transform", J.String (Check.transform_name r.Check.transform));
                ("sites", J.Int r.Check.sites);
                ("verdict", J.String (Check.verdict_str r.Check.verdict));
                ("ok", J.Bool ok);
              ]
          in
          let pass =
            List.for_all
              (fun (r : Check.report) ->
                Check.verdict_ok r.Check.transform r.Check.verdict)
              reports
          in
          if not pass then Obs.incr o "serve.check_failed";
          Ok
            [
              ("pass", J.Bool pass);
              ("reports", J.List (List.map report_json reports));
            ]
      | A_simulate { bench; w; variant_name; variant } ->
          let seconds = Comp.simulate ~obs:o w variant in
          Ok
            [
              ("bench", J.String bench);
              ("variant", J.String variant_name);
              ("seconds", J.Float seconds);
            ]
    with e -> Error ("runtime_error", Printexc.to_string e)
  in
  match result with
  | Ok fields ->
      Obs.incr o "serve.ok";
      (ok_line ~id:wk.w_id ~cmd:wk.w_cmd ~o fields, true, o)
  | Error (code, msg) ->
      Obs.incr o "serve.errors";
      Obs.incr o ("serve.err." ^ code);
      (err_line ~id:wk.w_id ~o code msg, false, o)

(* {1 Batch flush}

   Cuts the queue into one pool submission.  The batch boundary is a
   sequence point: it depends only on the request stream and [batch],
   never on pool width, so merges (and hence [stats]) are
   width-independent. *)

(* Estimated statement cost of one queued request.  [Parallel.run]
   spawns fresh domains per call, which costs far more than executing
   a small request; a batch whose estimated work is below
   [spawn_threshold_stmts] runs inline instead (identical to the pool
   at [jobs = 1], so responses stay byte-identical at every width).
   The estimate reads only the merged sink, whose state at a batch
   boundary is width-independent. *)
let estimate_stmts t (wk : work) =
  let run_estimate () =
    match Obs.histogram t.sink "serve.work" with
    | Some h ->
        let m = Obs.mean h in
        if Float.is_finite m then max 1 (int_of_float m) else 1_000
    | None -> 1_000
  in
  match wk.w_action with
  | A_run _ -> run_estimate ()
  | A_check _ ->
      (* differential runs of every applicable transform pair *)
      24 * run_estimate ()
  | A_optimize _ -> 4_000
  | A_simulate _ -> 2_000

let spawn_threshold_stmts = 50_000

let flush_queue t =
  if t.npending > 0 then begin
    let items = Array.of_list (List.rev t.pending) in
    t.pending <- [];
    t.npending <- 0;
    Obs.observe t.sink "serve.batch" (float_of_int (Array.length items));
    let estimated =
      Array.fold_left (fun acc it -> acc + estimate_stmts t it) 0 items
    in
    let results =
      if estimated < spawn_threshold_stmts then begin
        Obs.incr t.sink "serve.inline_batches";
        Array.to_list (Array.map exec items)
      end
      else begin
        Obs.incr t.sink "serve.pooled_batches";
        Parallel.run ?jobs:t.cfg.jobs (Array.length items) (fun i ->
            exec items.(i))
      end
    in
    List.iteri
      (fun i (line, ok, o) ->
        Obs.merge t.sink o;
        if ok then t.served_ok <- t.served_ok + 1
        else t.served_err <- t.served_err + 1;
        if t.cfg.timings then
          t.lats <- (Unix.gettimeofday () -. items.(i).w_enqueued) :: t.lats;
        buffer t items.(i).w_seq line)
      results
  end

(* {1 Admission (main thread)}

   Parse, validate, resolve through the shared compile cache, and
   queue — all serially, so cache hit/miss counts and queue decisions
   are deterministic. *)

let get_member name j = J.member name j

let opt_int ~what = function
  | None -> Ok None
  | Some (J.Int i) -> Ok (Some i)
  | Some _ -> Error (Printf.sprintf "%s must be an integer" what)

let opt_string ~what = function
  | None -> Ok None
  | Some (J.String s) -> Ok (Some s)
  | Some _ -> Error (Printf.sprintf "%s must be a string" what)

let effective_fuel cfg requested =
  let f =
    match requested with
    | Some r -> min r cfg.max_fuel
    | None -> cfg.max_fuel
  in
  match cfg.max_time with
  | None -> f
  | Some s ->
      min f (max 1 (int_of_float (s *. float_of_int fuel_per_second)))

let front_end_error = function
  | CE.Source_cache.Parse_error e -> ("parse_error", e)
  | CE.Source_cache.Type_error e -> ("type_error", e)

(* Resolve a request into an action, or a typed rejection. *)
let resolve t ~cmd ~src ~bench ~fuel ~variant =
  let need_src k =
    match (src, bench) with
    | Some s, None -> Ok (k s)
    | None, _ -> Error ("bad_request", cmd ^ " requires \"src\"")
    | Some _, Some _ ->
        Error ("bad_request", "give \"src\" or \"bench\", not both")
  in
  match cmd with
  | "run" -> (
      let source =
        match (src, bench) with
        | Some s, None -> Ok s
        | None, Some b -> (
            match Workloads.Registry.find b with
            | Some w ->
                Ok (Minic.Pretty.program_to_string (Workloads.Workload.program w))
            | None ->
                Error
                  ( "unknown_benchmark",
                    Printf.sprintf "unknown benchmark %s (known: %s)" b
                      (String.concat " " Workloads.Registry.names) ))
        | None, None ->
            Error ("bad_request", "run requires \"src\" or \"bench\"")
        | Some _, Some _ ->
            Error ("bad_request", "give \"src\" or \"bench\", not both")
      in
      match source with
      | Error e -> Error e
      | Ok s -> (
          match CE.Source_cache.get t.cache s with
          | Error e -> Error (front_end_error e)
          | Ok (_, compiled) ->
              Ok (A_run { compiled; fuel = effective_fuel t.cfg fuel })))
  | "optimize" ->
      Result.bind
        (need_src (fun s -> s))
        (fun s ->
          match CE.Source_cache.get t.cache s with
          | Error e -> Error (front_end_error e)
          | Ok (prog, _) -> Ok (A_optimize { prog }))
  | "check" ->
      Result.bind
        (need_src (fun s -> s))
        (fun s ->
          match CE.Source_cache.get t.cache s with
          | Error e -> Error (front_end_error e)
          | Ok (prog, _) ->
              Ok (A_check { prog; fuel = effective_fuel t.cfg fuel }))
  | "simulate" -> (
      match (bench, src) with
      | None, _ -> Error ("bad_request", "simulate requires \"bench\"")
      | Some _, Some _ ->
          Error ("bad_request", "simulate takes \"bench\", not \"src\"")
      | Some b, None -> (
          match Workloads.Registry.find b with
          | None ->
              Error
                ( "unknown_benchmark",
                  Printf.sprintf "unknown benchmark %s (known: %s)" b
                    (String.concat " " Workloads.Registry.names) )
          | Some w -> (
              let variant_name =
                Option.value variant ~default:"mic-optimized"
              in
              match
                List.assoc_opt variant_name
                  [
                    ("cpu", Comp.Cpu_parallel);
                    ("mic-naive", Comp.Mic_naive);
                    ("mic-optimized", Comp.Mic_optimized);
                  ]
              with
              | None ->
                  Error
                    ( "bad_request",
                      Printf.sprintf
                        "unknown variant %s (known: cpu mic-naive \
                         mic-optimized)"
                        variant_name )
              | Some v ->
                  Ok
                    (A_simulate
                       { bench = b; w; variant_name; variant = v }))))
  | _ ->
      Error
        ( "unknown_cmd",
          Printf.sprintf
            "unknown cmd %s (known: optimize run check simulate stats \
             shutdown)"
            cmd )

(* The [stats] snapshot: everything here is derived from admission
   counts and the order-insensitive parts of the merged sink, so it is
   identical at any pool width. *)
let stats_fields t =
  [
    ("served", J.Int (t.served_ok + t.served_err));
    ("ok", J.Int t.served_ok);
    ("errors", J.Int t.served_err);
    ( "cache",
      J.Obj
        [
          ("hits", J.Int (cache_hits t));
          ("misses", J.Int (cache_misses t));
        ] );
    ("obs", Obs.to_json t.sink);
  ]

let handle_line t line =
  if String.trim line = "" then []
  else begin
    t.seq <- t.seq + 1;
    let seq = t.seq in
    (match J.of_string line with
    | Error e -> reject t ~seq ~id:(J.Int seq) "bad_json" e
    | Ok j -> (
        let id =
          match get_member "id" j with
          | Some (J.Int _ as id) | Some (J.String _ as id) -> id
          | _ -> J.Int seq
        in
        let validated =
          match j with
          | J.Obj _ -> (
              match get_member "cmd" j with
              | Some (J.String cmd) -> (
                  let opts =
                    match get_member "opts" j with
                    | None -> Ok []
                    | Some (J.Obj fields) -> Ok fields
                    | Some _ -> Error "opts must be an object"
                  in
                  match opts with
                  | Error e -> Error ("bad_request", e)
                  | Ok opts -> (
                      let field name = List.assoc_opt name opts in
                      let ( let* ) r f =
                        match r with
                        | Ok v -> f v
                        | Error e -> Error ("bad_request", e)
                      in
                      let* src =
                        opt_string ~what:"\"src\"" (get_member "src" j)
                      in
                      let* bench =
                        opt_string ~what:"\"bench\"" (get_member "bench" j)
                      in
                      let* fuel = opt_int ~what:"opts.fuel" (field "fuel") in
                      let* variant =
                        opt_string ~what:"opts.variant" (field "variant")
                      in
                      match fuel with
                      | Some f when f <= 0 ->
                          Error ("bad_request", "opts.fuel must be positive")
                      | _ -> Ok (cmd, src, bench, fuel, variant)))
              | Some _ -> Error ("bad_request", "\"cmd\" must be a string")
              | None -> Error ("bad_request", "missing \"cmd\""))
          | _ -> Error ("bad_request", "request must be a JSON object")
        in
        match validated with
        | Error (code, msg) -> reject t ~seq ~id code msg
        | Ok ("stats", _, _, _, _) ->
            (* barrier: a stats snapshot reflects every request before it *)
            flush_queue t;
            Obs.incr t.sink "serve.requests";
            Obs.incr t.sink "serve.cmd.stats";
            let o = Obs.create () in
            let line = ok_line ~id ~cmd:"stats" ~o (stats_fields t) in
            t.served_ok <- t.served_ok + 1;
            buffer t seq line
        | Ok ("shutdown", _, _, _, _) ->
            flush_queue t;
            Obs.incr t.sink "serve.requests";
            Obs.incr t.sink "serve.cmd.shutdown";
            t.stop <- true;
            let o = Obs.create () in
            let line =
              ok_line ~id ~cmd:"shutdown" ~o
                [ ("served", J.Int (t.served_ok + t.served_err)) ]
            in
            t.served_ok <- t.served_ok + 1;
            buffer t seq line
        | Ok (cmd, src, bench, fuel, variant) -> (
            if t.npending >= t.cfg.queue then
              reject t ~seq ~id "queue_full"
                (Printf.sprintf "admission queue is full (%d waiting)"
                   t.cfg.queue)
            else
              match resolve t ~cmd ~src ~bench ~fuel ~variant with
              | Error (code, msg) -> reject t ~seq ~id code msg
              | Ok action ->
                  let wk =
                    {
                      w_seq = seq;
                      w_id = id;
                      w_cmd = cmd;
                      w_action = action;
                      w_enqueued =
                        (if t.cfg.timings then Unix.gettimeofday ()
                         else 0.);
                    }
                  in
                  t.pending <- wk :: t.pending;
                  t.npending <- t.npending + 1;
                  if t.npending >= t.cfg.batch then flush_queue t)));
    drain t
  end

let finish t =
  flush_queue t;
  drain t

(* {1 Transports} *)

let serve_channels t ic oc =
  let emit line =
    output_string oc line;
    output_char oc '\n';
    flush oc
  in
  let rec loop () =
    match input_line ic with
    | exception End_of_file -> List.iter emit (finish t)
    | line ->
        List.iter emit (handle_line t line);
        if t.stop then List.iter emit (finish t) else loop ()
  in
  loop ()

let serve_stdin t = serve_channels t stdin stdout

let serve_socket t ~path =
  let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  Unix.bind sock (Unix.ADDR_UNIX path);
  Unix.listen sock 8;
  let cleanup () =
    (try Unix.close sock with Unix.Unix_error _ -> ());
    try Unix.unlink path with Unix.Unix_error _ -> ()
  in
  Fun.protect ~finally:cleanup (fun () ->
      while not t.stop do
        let conn, _ = Unix.accept sock in
        let ic = Unix.in_channel_of_descr conn in
        let oc = Unix.out_channel_of_descr conn in
        (try serve_channels t ic oc with Sys_error _ | Unix.Unix_error _ -> ());
        (try flush oc with Sys_error _ -> ());
        try Unix.close conn with Unix.Unix_error _ -> ()
      done)

let client ~path ic oc =
  let rec connect tries =
    let s = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    match Unix.connect s (Unix.ADDR_UNIX path) with
    | () -> s
    | exception Unix.Unix_error _ when tries > 0 ->
        (try Unix.close s with Unix.Unix_error _ -> ());
        Unix.sleepf 0.05;
        connect (tries - 1)
  in
  let s = connect 100 in
  let soc = Unix.out_channel_of_descr s in
  let sic = Unix.in_channel_of_descr s in
  let rec send () =
    match input_line ic with
    | line ->
        output_string soc line;
        output_char soc '\n';
        send ()
    | exception End_of_file -> ()
  in
  send ();
  flush soc;
  Unix.shutdown s Unix.SHUTDOWN_SEND;
  let rec recv () =
    match input_line sic with
    | line ->
        output_string oc line;
        output_char oc '\n';
        recv ()
    | exception End_of_file -> ()
  in
  recv ();
  flush oc;
  try Unix.close s with Unix.Unix_error _ -> ()
