(** Dead-code elimination, to a local fixpoint:

    - pure expression statements vanish; a call-free but possibly
      trapping one is kept and counted ([opt.dce.blocked.trapping]) —
      deleting it could hide a runtime error the program relies on
      observing;
    - branches on a literal condition collapse to the taken arm (kept
      as a block: its declarations must stay scoped); an [if] whose
      arms are both empty degrades to its condition, which then
      vanishes if pure;
    - [while (false)] disappears, and so does a counted loop with
      literal bounds that can never trip — the interpreter evaluates
      nothing of it but [lo]/[hi], both literals;
    - statements following a [return]/[break]/[continue] in the same
      block are unreachable and dropped;
    - a declaration whose variable is never mentioned again in the
      rest of its block is dropped when its evaluated parts (the
      initializer — or for local arrays the size expression; struct
      and array initializers are never evaluated) are call-free and
      trap-free.  The "never mentioned" check covers reads, writes,
      address-taking, and offload clause names, so a dropped binding
      can't expose a shadowed outer variable to a leftover use.

    The child of a pragma is never deleted — if its content dies, an
    empty block keeps the pragma (and its transfer semantics)
    attached. *)

open Minic.Ast
module E = Effects

let pass = "dce"

(* Expressions of a declaration the interpreter actually evaluates. *)
let decl_evaluated ty init =
  match ty with
  | Tarray (_, Some n) -> [ n ]
  | Tarray (_, None) | Tstruct _ -> []
  | _ -> Option.to_list init

let rec process_block ctx block =
  let stmts = List.filter_map (process_stmt ctx) block in
  (* drop unreachable statements after a terminator *)
  let rec cut acc = function
    | [] -> List.rev acc
    | ((Sreturn _ | Sbreak | Scontinue) as s) :: rest ->
        if rest <> [] then E.fired ctx pass;
        List.rev (s :: acc)
    | s :: rest -> cut (s :: acc) rest
  in
  let stmts = cut [] stmts in
  (* drop never-mentioned declarations, scanning backwards so one
     removal can expose another *)
  let rec sweep kept = function
    | [] -> kept
    | (Sdecl (ty, v, init) as s) :: before ->
        if E.block_reads_var v kept then sweep (s :: kept) before
        else
          let evaluated = decl_evaluated ty init in
          if List.exists has_call evaluated then sweep (s :: kept) before
          else if List.exists may_trap evaluated then (
            E.blocked ctx pass "trapping";
            sweep (s :: kept) before)
          else (
            E.fired ctx pass;
            sweep kept before)
    | s :: before -> sweep (s :: kept) before
  in
  sweep [] (List.rev stmts)

and process_stmt ctx s =
  match s with
  | Sexpr e ->
      if pure e then (
        E.fired ctx pass;
        None)
      else if not (has_call e) then (
        E.blocked ctx pass "trapping";
        Some s)
      else Some s
  | Sif (c, b1, b2) -> (
      let b1 = process_block ctx b1 and b2 = process_block ctx b2 in
      let taken =
        match c with
        | Bool_lit b -> Some b
        | Int_lit n -> Some (n <> 0)
        | _ -> None
      in
      match taken with
      | Some b ->
          E.fired ctx pass;
          let arm = if b then b1 else b2 in
          if arm = [] then None else Some (Sblock arm)
      | None ->
          if b1 = [] && b2 = [] then (
            E.fired ctx pass;
            if pure c then None else Some (Sexpr c))
          else Some (Sif (c, b1, b2)))
  | Swhile ((Bool_lit false | Int_lit 0), _) ->
      E.fired ctx pass;
      None
  | Swhile (c, b) -> Some (Swhile (c, process_block ctx b))
  | Sfor fl -> (
      match (fl.lo, fl.hi) with
      | Int_lit a, Int_lit b when a >= b ->
          E.fired ctx pass;
          None
      | _ -> Some (Sfor { fl with body = process_block ctx fl.body }))
  | Sblock b -> (
      match process_block ctx b with
      | [] ->
          E.fired ctx pass;
          None
      | b' -> Some (Sblock b'))
  | Spragma (p, child) ->
      let child' =
        match process_stmt ctx child with
        | Some c -> c
        | None -> Sblock []
      in
      Some (Spragma (p, child'))
  | Sdecl _ | Sassign _ | Sreturn _ | Sbreak | Scontinue -> Some s

let run ctx prog =
  E.map_bodies
    (fun _fn body ->
      let rec fix n body =
        let body' = process_block ctx body in
        if n = 0 || List.equal equal_stmt body' body then body'
        else fix (n - 1) body'
      in
      fix 8 body)
    prog
