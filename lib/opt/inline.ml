(** Bounded function inlining, for callees that are a single
    [return e].

    The interpreter's calling convention makes substitution exact in a
    way it would not be in C: a callee activation holds {e parameters
    only} — no globals, no caller locals — so [e]'s free variables are
    necessarily parameters; arguments are bound {e uncoerced}; and
    [return v] hands the raw value back.  Replacing [f(a1..an)] by
    [e[p1:=a1..]] therefore reproduces the call exactly, provided:

    - [e] contains no call (also rules out recursion) and no [&] — an
      address-of in [e] names the parameter's private cell, which has
      no analogue after substitution;
    - every argument is pure, since substitution may duplicate a
      parameter used twice or delete one never used;
    - each argument's static type matches the parameter's (up to array
      decay), and [e]'s type matches the declared return type — the
      interpreter consults static types for pointer arithmetic, so a
      type shift could change address math
      ([opt.inline.blocked.type-mismatch]);
    - [e] stays under a size bound: this is an enabling transform for
      the folder, not a code-growth engine. *)

open Minic.Ast
module E = Effects

let pass = "inline"
let max_body = 24

type target = { tparams : (string * ty) list; texpr : expr }

let has_addr e =
  fold_expr (fun acc e -> match e with Addr _ -> true | _ -> acc) false e

let eligible ctx prog =
  List.filter_map
    (function
      | Gfunc f -> (
          match f.body with
          | [ Sreturn (Some e) ] -> (
              let pnames = List.map (fun p -> p.pname) f.params in
              let scope = List.map (fun p -> (p.pname, p.pty)) f.params in
              if
                (not (has_call e))
                && (not (has_addr e))
                && E.size e <= max_body
                && List.length (List.sort_uniq compare pnames)
                   = List.length pnames
                && List.for_all (fun v -> List.mem v pnames) (expr_vars e)
              then
                match E.type_of ctx scope e with
                | Some t when E.norm_ty t = E.norm_ty f.ret ->
                    Some (f.fname, { tparams = scope; texpr = e })
                | _ -> None
              else None)
          | _ -> None)
      | _ -> None)
    prog

(* Simultaneous substitution: one traversal, so an argument expression
   that happens to mention a name equal to another parameter is never
   substituted twice. *)
let subst_many map e =
  let rec s e =
    match e with
    | Var v -> ( match List.assoc_opt v map with Some a -> a | None -> e)
    | Int_lit _ | Float_lit _ | Bool_lit _ -> e
    | Index (a, i) -> Index (s a, s i)
    | Field (a, f) -> Field (s a, f)
    | Arrow (a, f) -> Arrow (s a, f)
    | Deref a -> Deref (s a)
    | Addr a -> Addr (s a)
    | Binop (op, a, b) -> Binop (op, s a, s b)
    | Unop (op, a) -> Unop (op, s a)
    | Call (f, args) -> Call (f, List.map s args)
    | Cast (t, a) -> Cast (t, s a)
  in
  s e

let rec rw ctx tbl scope e =
  let r = rw ctx tbl scope in
  let e =
    match e with
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Index (a, i) -> Index (r a, r i)
    | Field (a, f) -> Field (r a, f)
    | Arrow (a, f) -> Arrow (r a, f)
    | Deref a -> Deref (r a)
    | Addr a -> Addr (r a)
    | Binop (op, a, b) -> Binop (op, r a, r b)
    | Unop (op, a) -> Unop (op, r a)
    | Call (f, args) -> Call (f, List.map r args)
    | Cast (t, a) -> Cast (t, r a)
  in
  match e with
  | Call (fname, args) -> (
      match List.assoc_opt fname tbl with
      | Some t when List.length args = List.length t.tparams ->
          if not (List.for_all pure args) then (
            E.blocked ctx pass "impure-arg";
            e)
          else if
            not
              (List.for_all2
                 (fun (_, pty) a ->
                   match E.type_of ctx scope a with
                   | Some ta -> E.norm_ty ta = E.norm_ty pty
                   | None -> false)
                 t.tparams args)
          then (
            E.blocked ctx pass "type-mismatch";
            e)
          else (
            E.fired ctx pass;
            subst_many
              (List.map2 (fun (pn, _) a -> (pn, a)) t.tparams args)
              t.texpr)
      | _ -> e)
  | e -> e

let rec go_block ctx tbl scope block =
  let rec loop scope acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let s' = go_stmt ctx tbl scope s in
        let scope =
          match s with Sdecl (t, v, _) -> (v, t) :: scope | _ -> scope
        in
        loop scope (s' :: acc) rest
  in
  loop scope [] block

and go_stmt ctx tbl scope s =
  let f = rw ctx tbl scope in
  match s with
  | Sif (c, b1, b2) ->
      Sif (f c, go_block ctx tbl scope b1, go_block ctx tbl scope b2)
  | Swhile (c, b) -> Swhile (f c, go_block ctx tbl scope b)
  | Sfor fl ->
      Sfor
        {
          fl with
          lo = f fl.lo;
          hi = f fl.hi;
          step = f fl.step;
          body = go_block ctx tbl ((fl.index, Tint) :: scope) fl.body;
        }
  | Sblock b -> Sblock (go_block ctx tbl scope b)
  | Spragma (p, child) -> Spragma (p, go_stmt ctx tbl scope child)
  | s -> E.map_stmt_exprs f s

let run ctx prog =
  match eligible ctx prog with
  | [] -> prog
  | tbl ->
      E.map_bodies
        (fun fn body ->
          let scope = List.map (fun p -> (p.pname, p.pty)) fn.params in
          go_block ctx tbl scope body)
        prog
