(** Strength reduction: turn [k * i] (constant [k], loop index [i])
    into an accumulator that starts at [k * lo] and advances by
    [k * step] at the end of every iteration.

    The rewrite is only attempted when the bookkeeping provably stays
    in lockstep with the index:

    - the step is an integer literal — the interpreter re-evaluates
      the step expression every iteration, so a variable step could
      change mid-loop ([opt.strength.blocked.variable-step]);
    - the index is never assigned, re-declared (including as a nested
      loop's index), or address-taken in the body
      ([opt.strength.blocked.index-mutated]);
    - the body has no [continue] at the loop's own level — [continue]
      would skip the accumulator update at the end of the body
      ([opt.strength.blocked.continue]); [break] is fine because the
      accumulator is dead after the loop;
    - the lower bound is pure, since its value is needed a second
      time to seed the accumulator ([opt.strength.blocked.effectful-lo]);
    - the loop is not the direct child of a pragma, mirroring LICM's
      clause discipline ([opt.strength.blocked.pragma-loop]);
    - the multiplier occurs at least three times in the body — the
      accumulator update is one more dispatched statement per
      iteration, which fewer uses cannot amortize
      ([opt.strength.blocked.unprofitable]). *)

open Minic.Ast
module E = Effects

let pass = "strength"

(* [continue] at the loop's own level: look through if/blocks/pragmas
   but not into nested loops, whose [continue] is their own. *)
let rec own_continue block =
  List.exists
    (fun s ->
      match s with
      | Scontinue -> true
      | Sif (_, a, b) -> own_continue a || own_continue b
      | Sblock b -> own_continue b
      | Spragma (_, s) -> own_continue [ s ]
      | _ -> false)
    block

(* Distinct literal multipliers of the index with their occurrence
   counts, in first-occurrence order. *)
let multipliers index body =
  let ks = ref [] in
  List.iter
    (fun top ->
      fold_expr
        (fun () e ->
          match e with
          | Binop (Mul, Int_lit k, Var v) | Binop (Mul, Var v, Int_lit k)
            when String.equal v index ->
              ks :=
                if List.mem_assoc k !ks then
                  List.map
                    (fun (k', n) -> if k' = k then (k', n + 1) else (k', n))
                    !ks
                else !ks @ [ (k, 1) ]
          | _ -> ())
        () top)
    (block_exprs body);
  !ks

let reduce ctx (fl : for_loop) =
  match multipliers fl.index fl.body with
  | [] -> ([], fl)
  | ks -> (
      match fl.step with
      | Int_lit s ->
          if has_call fl.lo || may_trap fl.lo then (
            E.blocked ctx pass "effectful-lo";
            ([], fl))
          else if
            List.mem fl.index (writes fl.body).w_vars
            || E.SS.mem fl.index (E.addr_taken fl.body)
          then (
            E.blocked ctx pass "index-mutated";
            ([], fl))
          else if own_continue fl.body then (
            E.blocked ctx pass "continue";
            ([], fl))
          else
            (* Profitability: the accumulator update is one more
               dispatched statement per iteration, while each replaced
               [k * i] saves only two expression nodes — a multiplier
               must occur at least three times to come out ahead. *)
            let ks =
              List.filter_map
                (fun (k, n) ->
                  if n >= 3 then Some k
                  else (
                    E.blocked ctx pass "unprofitable";
                    None))
                ks
            in
            let decls, body =
              List.fold_left
                (fun (decls, body) k ->
                  let tmp = E.fresh ctx "sr" in
                  E.fired ctx pass;
                  let swap e =
                    match e with
                    | Binop (Mul, Int_lit k', Var v)
                    | Binop (Mul, Var v, Int_lit k')
                      when k' = k && String.equal v fl.index ->
                        Var tmp
                    | e -> e
                  in
                  let rec deep e =
                    let e =
                      match e with
                      | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
                      | Index (a, i) -> Index (deep a, deep i)
                      | Field (a, f) -> Field (deep a, f)
                      | Arrow (a, f) -> Arrow (deep a, f)
                      | Deref a -> Deref (deep a)
                      | Addr a -> Addr (deep a)
                      | Binop (op, a, b) -> Binop (op, deep a, deep b)
                      | Unop (op, a) -> Unop (op, deep a)
                      | Call (f, args) -> Call (f, List.map deep args)
                      | Cast (t, a) -> Cast (t, deep a)
                    in
                    swap e
                  in
                  let body = E.map_block_exprs deep body in
                  let body =
                    body
                    @ [
                        Sassign
                          (Var tmp, Binop (Add, Var tmp, Int_lit (k * s)));
                      ]
                  in
                  let seed =
                    match fl.lo with
                    | Int_lit a -> Int_lit (k * a)
                    | lo -> Binop (Mul, Int_lit k, lo)
                  in
                  (Sdecl (Tint, tmp, Some seed) :: decls, body))
                ([], fl.body) ks
            in
            (List.rev decls, { fl with body })
      | _ ->
          E.blocked ctx pass "variable-step";
          ([], fl))

let rec go_block ctx block =
  let rec loop acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let pre, s' = go_stmt ctx ~pragma:false s in
        loop (s' :: List.rev_append pre acc) rest
  in
  loop [] block

and go_stmt ctx ~pragma stmt =
  match stmt with
  | Sfor fl ->
      let fl = { fl with body = go_block ctx fl.body } in
      if pragma then (
        if multipliers fl.index fl.body <> [] then
          E.blocked ctx pass "pragma-loop";
        ([], Sfor fl))
      else
        let decls, fl = reduce ctx fl in
        (decls, Sfor fl)
  | Sif (c, b1, b2) -> ([], Sif (c, go_block ctx b1, go_block ctx b2))
  | Swhile (c, b) -> ([], Swhile (c, go_block ctx b))
  | Sblock b -> ([], Sblock (go_block ctx b))
  | Spragma (p, s) ->
      let _, s' = go_stmt ctx ~pragma:true s in
      ([], Spragma (p, s'))
  | s -> ([], s)

let run ctx prog = E.map_bodies (fun _fn body -> go_block ctx body) prog
