(** The optimizer mid-end: a pass pipeline over the typed MiniC AST.

    Pass order is fixed: inlining first (it feeds call-free
    expressions to everything downstream), then constant
    folding/propagation (literals enable branch elimination and
    strength candidates), loop-invariant code motion, CSE, strength
    reduction, and dead-code elimination last to sweep up what the
    others left behind.

    Every pass is gated by the effect analysis in [Minic.Ast]
    ([may_trap] / [has_call] / [writes]): a transformation that cannot
    prove an expression effect-free leaves it alone and counts the
    refusal.  With an [Obs] sink attached, each pass records
    [opt.<pass>.fired] and [opt.<pass>.blocked.<reason>] counters;
    with none, the pipeline is silent and allocation-light, which is
    what the differential checker uses.

    The program must already typecheck: passes consult static types
    (through [Minic.Typecheck.type_of_expr]) when they introduce
    temporaries. *)

type pass = Inline | Fold | Licm | Cse | Strength | Dce

let all_passes = [ Inline; Fold; Licm; Cse; Strength; Dce ]

let pass_name = function
  | Inline -> "inline"
  | Fold -> "fold"
  | Licm -> "licm"
  | Cse -> "cse"
  | Strength -> "strength"
  | Dce -> "dce"

let pass_of_name = function
  | "inline" -> Some Inline
  | "fold" -> Some Fold
  | "licm" -> Some Licm
  | "cse" -> Some Cse
  | "strength" -> Some Strength
  | "dce" -> Some Dce
  | _ -> None

let pass_names = List.map pass_name all_passes

let apply ctx prog = function
  | Inline -> Inline.run ctx prog
  | Fold -> Constfold.run ctx prog
  | Licm -> Licm.run ctx prog
  | Cse -> Cse.run ctx prog
  | Strength -> Strength.run ctx prog
  | Dce -> Dce.run ctx prog

(** Run the pipeline.  [passes] defaults to {!all_passes} in pipeline
    order; an explicit list runs exactly those passes in the order
    given. *)
let run ?obs ?(passes = all_passes) prog =
  let ctx = Effects.make_ctx ?obs prog in
  List.fold_left (apply ctx) prog passes

(** Render the [opt.*] counters of a sink as the [--report] table. *)
let report obs =
  let rows =
    List.filter
      (fun (k, _) -> String.length k >= 4 && String.equal (String.sub k 0 4) "opt.")
      (Obs.counters obs)
  in
  if rows = [] then "opt: nothing fired, nothing blocked"
  else
    let width =
      List.fold_left (fun w (k, _) -> max w (String.length k)) 0 rows
    in
    rows
    |> List.map (fun (k, v) -> Printf.sprintf "%-*s %6d" width k v)
    |> String.concat "\n"
