(** Loop-invariant code motion.

    A candidate is a pure ([Ast.pure]: call-free {e and} trap-free, so
    in particular load-free) subexpression of a counted loop's body,
    upper bound, or step whose variables are disjoint from everything
    the loop can write: the body's scalar writes, the loop index, and
    every address-taken variable of the function (a [*p = ...] inside
    the body could target those).  [hi] and [step] are legitimate
    sources because the interpreter re-evaluates both on every
    iteration.

    Purity makes the motion unconditional: a hoisted expression
    evaluates to the same value on every iteration, and evaluating it
    once before a zero-trip loop is unobservable.

    Loops that are the direct child of a pragma are skipped
    ([opt.licm.blocked.pragma-loop]): a hoisted declaration between
    the pragma and its loop would detach the annotation, and offload
    clause sets are kept exactly as the programmer wrote them.  A call
    in a loop bound blocks the whole loop
    ([opt.licm.blocked.effectful-bound]).

    Only {e outermost} loops hoist.  For a loop nested inside another
    loop, the hoisted declaration would land in the enclosing loop's
    body and be re-dispatched on every outer iteration — under the
    statement-dispatch-dominated interpreters that costs more than the
    saved re-evaluations (measured in [bench selfperf]).  An inner
    loop with candidates is refused instead
    ([opt.licm.blocked.nested-loop]); an expression invariant for the
    {e whole} nest is still hoisted, once, by the outermost loop,
    whose candidate scan sees the entire nest. *)

open Minic.Ast
module E = Effects

let pass = "licm"

let loop_exprs (fl : for_loop) = fl.hi :: fl.step :: block_exprs fl.body

let count_occ target exprs =
  List.fold_left
    (fun n top ->
      fold_expr (fun n e -> if equal_expr e target then n + 1 else n) n top)
    0 exprs

(* Invariant pure candidates, first-occurrence order. *)
let candidates at (fl : for_loop) =
  let w = writes fl.body in
  let kill = E.SS.add fl.index (E.SS.union (E.SS.of_list w.w_vars) at) in
  let ok e =
    E.size e >= 3 && pure e
    && List.for_all (fun v -> not (E.SS.mem v kill)) (expr_vars e)
  in
  let seen = ref [] in
  List.iter
    (fun top ->
      fold_expr
        (fun () e ->
          if ok e && not (List.exists (equal_expr e) !seen) then
            seen := e :: !seen)
        () top)
    (loop_exprs fl);
  List.rev !seen

let hoist ctx at scope (fl : for_loop) =
  if has_call fl.hi || has_call fl.step then (
    E.blocked ctx pass "effectful-bound";
    ([], fl))
  else
    let cands =
      candidates at fl
      |> List.stable_sort (fun a b -> compare (E.size b) (E.size a))
    in
    List.fold_left
      (fun (decls, fl) e ->
        (* an earlier, larger hoist may have consumed every occurrence *)
        if count_occ e (loop_exprs fl) = 0 then (decls, fl)
        else
          match E.type_of ctx scope e with
          | Some ty when E.cacheable_ty ty ->
              let tmp = E.fresh ctx "licm" in
              E.fired ctx pass;
              let r ex = E.replace_expr ~target:e ~by:(Var tmp) ex in
              let fl =
                {
                  fl with
                  hi = r fl.hi;
                  step = r fl.step;
                  body = E.map_block_exprs r fl.body;
                }
              in
              (Sdecl (ty, tmp, Some e) :: decls, fl)
          | Some _ -> (decls, fl)
          | None ->
              E.blocked ctx pass "untyped";
              (decls, fl))
      ([], fl) cands
    |> fun (decls, fl) -> (List.rev decls, fl)

let rec go_block ctx at scope ~inloop block =
  let rec loop scope acc = function
    | [] -> List.rev acc
    | s :: rest ->
        let pre, s' = go_stmt ctx at scope ~pragma:false ~inloop s in
        let scope =
          match s with Sdecl (t, v, _) -> (v, t) :: scope | _ -> scope
        in
        loop scope (s' :: List.rev_append pre acc) rest
  in
  loop scope [] block

and go_stmt ctx at scope ~pragma ~inloop stmt =
  match stmt with
  | Sfor fl ->
      let body =
        go_block ctx at ((fl.index, Tint) :: scope) ~inloop:true fl.body
      in
      let fl = { fl with body } in
      if pragma || inloop then (
        if candidates at fl <> [] then
          E.blocked ctx pass (if pragma then "pragma-loop" else "nested-loop");
        ([], Sfor fl))
      else
        let decls, fl = hoist ctx at scope fl in
        (decls, Sfor fl)
  | Sif (c, b1, b2) ->
      ( [],
        Sif
          ( c,
            go_block ctx at scope ~inloop b1,
            go_block ctx at scope ~inloop b2 ) )
  | Swhile (c, b) -> ([], Swhile (c, go_block ctx at scope ~inloop:true b))
  | Sblock b -> ([], Sblock (go_block ctx at scope ~inloop b))
  | Spragma (p, s) ->
      let _, s' = go_stmt ctx at scope ~pragma:true ~inloop s in
      ([], Spragma (p, s'))
  | s -> ([], s)

let run ctx prog =
  E.map_bodies
    (fun fn body ->
      let at = E.addr_taken body in
      let scope = List.map (fun p -> (p.pname, p.pty)) fn.params in
      go_block ctx at scope ~inloop:false body)
    prog
