(** Constant folding and sparse constant propagation.

    Folding mirrors the reference interpreter bit for bit: integer
    arithmetic is OCaml's (native width, [/] and [mod] truncating
    toward zero), float arithmetic is OCaml's IEEE double ops, and
    comparisons go through polymorphic [compare] exactly as
    [Interp.eval_binop] does — including its total order on floats.
    A literal int division or modulo by zero is {e not} folded (the
    interpreter traps there) and is counted as
    [opt.fold.blocked.div-by-zero]; the short-circuit-looking
    [false && e] / [true || e] folds delete [e] and therefore require
    [Ast.pure e] (the interpreter evaluates both operands).  The
    integer identities [e + 0], [e - 0], [e * 1] and [e / 1] fold to
    [e] only when [e] is statically [int] {e and} its own root is
    arithmetic: that root still traps on an undefined operand exactly
    where the discarded operation would have, and restricting to [int]
    sidesteps the float non-identity [-0.0 + 0 = 0.0].

    Propagation tracks scalar variables currently holding a literal.
    The store-side [coerce] of the interpreter is simulated
    ([int x = 2.7] tracks [2]), address-taken variables are never
    tracked, and — because a MiniC callee's activation holds
    {e parameters only}, so callees cannot name a caller local or a
    global — calls kill nothing.  Loop bodies are folded under the
    entry environment minus everything the body writes; [if] joins
    intersect the two arms. *)

open Minic.Ast
module E = Effects
module SM = Map.Make (String)

let pass = "fold"

let is_literal = function
  | Int_lit _ | Float_lit _ | Bool_lit _ -> true
  | _ -> false

(* What the cell holds after [store (coerce ty v)] of a literal. *)
let stored_literal ty e =
  match (ty, e) with
  | Tint, Float_lit f -> Int_lit (int_of_float f)
  | Tfloat, Int_lit n -> Float_lit (float_of_int n)
  | _ -> e

let as_f = function
  | Int_lit n -> float_of_int n
  | Float_lit f -> f
  | _ -> invalid_arg "as_f"

let int_op = function
  | Add -> ( + )
  | Sub -> ( - )
  | Mul -> ( * )
  | Div -> ( / )
  | Mod -> ( mod )
  | _ -> invalid_arg "int_op"

let float_op = function
  | Add -> ( +. )
  | Sub -> ( -. )
  | Mul -> ( *. )
  | Div -> ( /. )
  | _ -> invalid_arg "float_op"

let cmp_op op c =
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0
  | _ -> invalid_arg "cmp_op"

(* An expression whose root performs integer arithmetic.  Replacing
   [e + 0] by [e] is only sound for these: [e]'s own root still does
   the arithmetic that would trap on an undefined operand, so every
   trap is kept, and at type [int] the value is bit-identical.  Float
   identities are never folded — [-0.0 + 0] evaluates to [0.0], so
   [+ 0] is not even the float identity. *)
let int_arith_root tyof e =
  (match e with
  | Binop ((Add | Sub | Mul | Div | Mod), _, _) | Unop (Neg, _) -> true
  | _ -> false)
  && match tyof e with Some Tint -> true | _ -> false

(* One folding step at an already-deeply-folded node.  [tyof] is
   static typing under the scope at this program point; [None] (the
   caller could not type the node) just disables the typed folds. *)
let fold1 ctx tyof e =
  let hit e' =
    E.fired ctx pass;
    e'
  in
  let miss reason =
    E.blocked ctx pass reason;
    e
  in
  match e with
  | Binop (((Div | Mod) as op), Int_lit x, Int_lit y) ->
      if y = 0 then miss "div-by-zero" else hit (Int_lit (int_op op x y))
  | Binop (((Add | Sub | Mul) as op), Int_lit x, Int_lit y) ->
      hit (Int_lit (int_op op x y))
  | Binop
      ( ((Add | Sub | Mul | Div) as op),
        ((Int_lit _ | Float_lit _) as a),
        ((Int_lit _ | Float_lit _) as b) ) ->
      (* at least one float: the interpreter promotes both to float *)
      hit (Float_lit (float_op op (as_f a) (as_f b)))
  | Binop
      ( ((Eq | Ne | Lt | Le | Gt | Ge) as op),
        ((Int_lit _ | Float_lit _) as a),
        ((Int_lit _ | Float_lit _) as b) ) ->
      let c =
        match (a, b) with
        | Int_lit x, Int_lit y -> compare x y
        | _ -> compare (as_f a) (as_f b)
      in
      hit (Bool_lit (cmp_op op c))
  | Binop (((Eq | Ne | Lt | Le | Gt | Ge) as op), Bool_lit x, Bool_lit y) ->
      hit (Bool_lit (cmp_op op (compare x y)))
  | Binop (And, Bool_lit x, Bool_lit y) -> hit (Bool_lit (x && y))
  | Binop (Or, Bool_lit x, Bool_lit y) -> hit (Bool_lit (x || y))
  | Binop (And, Bool_lit true, e1) | Binop (And, e1, Bool_lit true) ->
      hit e1 (* both operands are evaluated either way *)
  | Binop (Or, Bool_lit false, e1) | Binop (Or, e1, Bool_lit false) -> hit e1
  | Binop (And, Bool_lit false, e1) | Binop (And, e1, Bool_lit false) ->
      if pure e1 then hit (Bool_lit false) else miss "effect"
  | Binop (Or, Bool_lit true, e1) | Binop (Or, e1, Bool_lit true) ->
      if pure e1 then hit (Bool_lit true) else miss "effect"
  | Binop (Add, e1, Int_lit 0)
  | Binop (Add, Int_lit 0, e1)
  | Binop (Sub, e1, Int_lit 0)
  | Binop (Mul, e1, Int_lit 1)
  | Binop (Mul, Int_lit 1, e1)
  | Binop (Div, e1, Int_lit 1)
    when int_arith_root tyof e1 ->
      hit e1
  | Unop (Neg, Int_lit n) -> hit (Int_lit (-n))
  | Unop (Neg, Float_lit f) -> hit (Float_lit (-.f))
  | Unop (Not, Bool_lit b) -> hit (Bool_lit (not b))
  | Cast (Tint, Int_lit n) -> hit (Int_lit n)
  | Cast (Tint, Float_lit f) -> hit (Int_lit (int_of_float f))
  | Cast (Tint, Bool_lit b) -> hit (Int_lit (if b then 1 else 0))
  | Cast (Tfloat, Int_lit n) -> hit (Float_lit (float_of_int n))
  | Cast (Tfloat, Float_lit f) -> hit (Float_lit f)
  | Cast (Tbool, Bool_lit b) -> hit (Bool_lit b)
  | Call ("abs", [ Int_lit n ]) -> hit (Int_lit (abs n))
  | Call ("imin", [ Int_lit x; Int_lit y ]) -> hit (Int_lit (min x y))
  | Call ("imax", [ Int_lit x; Int_lit y ]) -> hit (Int_lit (max x y))
  | e -> e

let rec deep ?(tyof = fun _ -> None) ctx e =
  let d = deep ~tyof ctx in
  let e' =
    match e with
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Index (a, i) -> Index (d a, d i)
    | Field (a, f) -> Field (d a, f)
    | Arrow (a, f) -> Arrow (d a, f)
    | Deref a -> Deref (d a)
    | Addr a -> Addr (d a)
    | Binop (op, a, b) -> Binop (op, d a, d b)
    | Unop (op, a) -> Unop (op, d a)
    | Call (f, args) -> Call (f, List.map d args)
    | Cast (t, a) -> Cast (t, d a)
  in
  fold1 ctx tyof e'

(* Substitute tracked literals for variable reads.  Lvalue spines
   (assignment targets, [&] operands) are walked but their base
   variable is left alone: only index/offset subexpressions are value
   positions there. *)
let rec subst ctx env e =
  let s = subst ctx env in
  match e with
  | Var v -> (
      match SM.find_opt v env with
      | Some lit ->
          E.fired ctx pass;
          lit
      | None -> e)
  | Int_lit _ | Float_lit _ | Bool_lit _ -> e
  | Index (a, i) -> Index (s a, s i)
  | Field (a, f) -> Field (s a, f)
  | Arrow (a, f) -> Arrow (s a, f)
  | Deref a -> Deref (s a)
  | Addr a -> Addr (subst_lvalue ctx env a)
  | Binop (op, a, b) -> Binop (op, s a, s b)
  | Unop (op, a) -> Unop (op, s a)
  | Call (f, args) -> Call (f, List.map s args)
  | Cast (t, a) -> Cast (t, s a)

and subst_lvalue ctx env lv =
  match lv with
  | Var _ -> lv
  | Index (b, i) -> Index (subst_lvalue ctx env b, subst ctx env i)
  | Field (b, f) -> Field (subst_lvalue ctx env b, f)
  | Arrow (b, f) -> Arrow (subst ctx env b, f)
  | Deref e -> Deref (subst ctx env e)
  | Cast (t, b) -> Cast (t, subst_lvalue ctx env b)
  | e -> subst ctx env e

let fx ctx scope env e =
  deep ~tyof:(E.type_of ctx scope) ctx (subst ctx env e)

let fx_lvalue ctx env lv = subst_lvalue ctx env lv

let remove_all names env = List.fold_left (fun m v -> SM.remove v m) env names

(* Facts that hold at every iteration boundary of a loop whose body is
   [body]: the entry facts minus everything the body (or the loop
   protocol) writes.  Calls cannot write scalars — a callee's frame
   holds parameters only — and offload clauses move arrays, so
   [w_vars] is the whole kill set. *)
let loop_env env ?index body =
  let w = writes body in
  let env = remove_all w.w_vars env in
  match index with Some i -> SM.remove i env | None -> env

let var_ty ctx scope v =
  match List.assoc_opt v scope with
  | Some t -> Some t
  | None -> List.assoc_opt v ctx.E.genv.Minic.Typecheck.vars

let rec go_block ctx at scope env block =
  let decls =
    List.filter_map (function Sdecl (_, v, _) -> Some v | _ -> None) block
  in
  let rec loop scope env acc = function
    | [] -> (List.rev acc, env)
    | s :: rest ->
        let s', scope', env' = go_stmt ctx at scope env s in
        loop scope' env' (s' :: acc) rest
  in
  let block', env' = loop scope env [] block in
  (block', remove_all decls env')

and go_stmt ctx at scope env stmt =
  let keep s env = (s, scope, env) in
  match stmt with
  | Sexpr e -> keep (Sexpr (fx ctx scope env e)) env
  | Sreturn e -> keep (Sreturn (Option.map (fx ctx scope env) e)) env
  | Sbreak | Scontinue -> keep stmt env
  | Sassign (lv, rv) ->
      let rv' = fx ctx scope env rv in
      let lv' = fx_lvalue ctx env lv in
      let env' =
        match lv' with
        | Var v when is_literal rv' && not (E.SS.mem v at) -> (
            match var_ty ctx scope v with
            | Some ty -> SM.add v (stored_literal ty rv') env
            | None -> SM.remove v env)
        | Var v -> SM.remove v env
        | _ -> env (* memory stores do not touch tracked scalars *)
      in
      keep (Sassign (lv', rv')) env'
  | Sdecl (ty, v, init) ->
      let ty' =
        match ty with
        | Tarray (t, Some n) -> Tarray (t, Some (fx ctx scope env n))
        | _ -> ty
      in
      let init' = Option.map (fx ctx scope env) init in
      let env' =
        match init' with
        | Some lit when is_literal lit && not (E.SS.mem v at) ->
            SM.add v (stored_literal ty lit) env
        | _ -> SM.remove v env
      in
      (Sdecl (ty', v, init'), (v, ty) :: scope, env')
  | Sif (c, b1, b2) ->
      let c' = fx ctx scope env c in
      let b1', env1 = go_block ctx at scope env b1 in
      let b2', env2 = go_block ctx at scope env b2 in
      let env' =
        match c' with
        | Bool_lit true | Int_lit _ when c' <> Int_lit 0 -> env1
        | Bool_lit false | Int_lit 0 -> env2
        | _ ->
            SM.merge
              (fun _ a b ->
                match (a, b) with
                | Some x, Some y when equal_expr x y -> Some x
                | _ -> None)
              env1 env2
      in
      keep (Sif (c', b1', b2')) env'
  | Swhile (c, b) ->
      let env_red = loop_env env b in
      let c' = fx ctx scope env_red c in
      let b', _ = go_block ctx at scope env_red b in
      keep (Swhile (c', b')) env_red
  | Sfor fl ->
      let lo' = fx ctx scope env fl.lo in
      let env_red = loop_env env ~index:fl.index fl.body in
      let iscope = (fl.index, Tint) :: scope in
      let hi' = fx ctx iscope env_red fl.hi in
      let step' = fx ctx iscope env_red fl.step in
      let body', _ = go_block ctx at iscope env_red fl.body in
      keep
        (Sfor { fl with lo = lo'; hi = hi'; step = step'; body = body' })
        env_red
  | Sblock b ->
      let b', env' = go_block ctx at scope env b in
      keep (Sblock b') env'
  | Spragma (((Offload_transfer _ | Offload_wait _) as p), s) ->
      (* the child statement is never executed: rewrite it for form,
         keep the incoming facts *)
      let s', _, _ = go_stmt ctx at scope env s in
      keep (Spragma (p, s')) env
  | Spragma (p, s) ->
      let s', _, env' = go_stmt ctx at scope env s in
      keep (Spragma (p, s')) env'

(* Literal-initialized global scalars visible at [main]'s entry.  Only
   [main] can read globals (callee activations hold parameters only),
   and nothing but [main]'s own statements can write them, so the walk
   above keeps these facts honest. *)
let global_env prog =
  List.fold_left
    (fun env g ->
      match g with
      | Gvar (ty, v, Some lit) when is_literal lit ->
          SM.add v (stored_literal ty lit) env
      | Gvar (_, v, _) -> SM.remove v env
      | _ -> env)
    SM.empty prog

let run ctx prog =
  let genv0 = global_env prog in
  let prog =
    List.map
      (function
        | Gvar (ty, v, Some e) ->
            Gvar (ty, v, Some (deep ~tyof:(E.type_of ctx []) ctx e))
        | g -> g)
      prog
  in
  map_funcs
    (fun fn ->
      let at = E.addr_taken fn.body in
      let scope = List.map (fun p -> (p.pname, p.pty)) fn.params in
      let env0 =
        if String.equal fn.fname "main" then
          remove_all (List.map fst scope) genv0
        else SM.empty
      in
      let body, _ = go_block ctx at scope env0 fn.body in
      { fn with body })
    prog
