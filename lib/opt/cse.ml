(** Common-subexpression elimination over straight-line runs.

    A {e run} is a maximal sequence of simple statements (expression,
    assignment, declaration, return) inside one block; compound
    statements — loops, branches, pragmas — are barriers.  Within a
    run the pass looks for a call-free subexpression that occurs at
    least twice with no intervening write that could change its value,
    declares a fresh temporary initialized with the expression just
    before its first occurrence, and replaces the occurrences.  The
    declaration is itself a dispatched statement, so sharing is gated
    on profitability — [(count - 1) * size >= 8] — and too-small
    groups are refused ([opt.cse.blocked.unprofitable]).  Runs inside
    a loop are never rewritten at all: the declaration would be
    re-dispatched every iteration, which costs more than the sharing
    saves under the statement-dispatch-dominated interpreters, so a
    group that would otherwise fire there is refused instead
    ([opt.cse.blocked.loop-body]).

    Unlike LICM candidates, CSE candidates {e may} contain loads
    ([a[i]], [*p], [p->f]): the temporary's initializer performs the
    same load (including the same trap, if any) at the same program
    point as the first occurrence did.  That is exactly why the kill
    discipline must be airtight:

    - a statement containing a call clears the table — the callee may
      print or write through any pointer it received
      ([opt.cse.blocked.call-barrier]);
    - a store through memory ([a[i] = e], [*p = e]) kills every
      candidate containing a load and every candidate reading an
      address-taken variable, with no aliasing questions asked
      ([opt.cse.blocked.aliased-store]);
    - an assignment to (or re-declaration of) a scalar [v] kills the
      candidates that read [v] ([opt.cse.blocked.killed-var]).

    In an assignment the right-hand side is counted before the
    left-hand side's subscripts (matching the interpreter's evaluation
    order), and the spine of an lvalue — the part naming the cell
    being stored to — is never counted or replaced; only its
    subscript/offset positions are value reads.  Initializers of
    struct and array declarations are skipped entirely: the
    interpreter never evaluates them. *)

open Minic.Ast
module E = Effects

let pass = "cse"

let is_simple = function
  | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ -> true
  | _ -> false

(* Value reads of an lvalue: subscripts and pointer-valued bases, but
   not the named spine of the cell being stored to. *)
let rec spine_reads lv =
  match lv with
  | Var _ -> []
  | Index (b, i) -> spine_reads b @ [ i ]
  | Field (b, _) -> spine_reads b
  | Arrow (b, _) -> [ b ]
  | Deref e -> [ e ]
  | Cast (_, b) -> spine_reads b
  | e -> [ e ]

(* Expressions a simple statement evaluates, in evaluation order. *)
let read_exprs = function
  | Sexpr e -> [ e ]
  | Sreturn (Some e) -> [ e ]
  | Sreturn None -> []
  | Sassign (lv, rv) -> rv :: spine_reads lv
  | Sdecl (Tarray (_, Some n), _, _) -> [ n ]
  | Sdecl ((Tarray (_, None) | Tstruct _), _, _) -> []
  | Sdecl (_, _, init) -> Option.to_list init
  | _ -> []

let rec replace_lvalue ~target ~by lv =
  let r = E.replace_expr ~target ~by in
  match lv with
  | Var _ -> lv
  | Index (b, i) -> Index (replace_lvalue ~target ~by b, r i)
  | Field (b, f) -> Field (replace_lvalue ~target ~by b, f)
  | Arrow (b, f) -> Arrow (r b, f)
  | Deref e -> Deref (r e)
  | Cast (t, b) -> Cast (t, replace_lvalue ~target ~by b)
  | e -> r e

let replace_in_stmt ~target ~by s =
  let r = E.replace_expr ~target ~by in
  match s with
  | Sexpr e -> Sexpr (r e)
  | Sreturn e -> Sreturn (Option.map r e)
  | Sassign (lv, rv) -> Sassign (replace_lvalue ~target ~by lv, r rv)
  | Sdecl (Tarray (t, Some n), v, init) -> Sdecl (Tarray (t, Some (r n)), v, init)
  | Sdecl ((Tarray (_, None) | Tstruct _), _, _) -> s
  | Sdecl (t, v, init) -> Sdecl (t, v, Option.map r init)
  | s -> s

type entry = {
  expr : expr;
  ty : ty;
  count : int;
  first : int;  (** statement index of the first occurrence *)
  last : int;  (** statement index of the latest occurrence *)
}

type group = { g : entry }

(* One scan of a run: the best firable group, if any.  [scope0] is the
   variable scope at the head of the run. *)
let scan ctx at scope0 stmts =
  let table : entry list ref = ref [] in
  let groups : entry list ref = ref [] in
  let kill reason pred =
    let killed, kept = List.partition pred !table in
    table := kept;
    List.iter
      (fun en ->
        if en.count >= 2 then groups := en :: !groups
        else E.blocked ctx pass reason)
      killed
  in
  let candidate scope i e =
    if E.size e >= 3 && not (has_call e) then
      match List.find_opt (fun en -> equal_expr en.expr e) !table with
      | Some en ->
          table :=
            { en with count = en.count + 1; last = i }
            :: List.filter (fun x -> x != en) !table
      | None -> (
          match E.type_of ctx scope e with
          | Some ty when E.cacheable_ty ty ->
              table := { expr = e; ty; count = 1; first = i; last = i } :: !table
          | _ -> ())
  in
  let scope = ref scope0 in
  List.iteri
    (fun i s ->
      let reads = read_exprs s in
      if List.exists has_call reads then kill "call-barrier" (fun _ -> true)
      else begin
        List.iter
          (fun top -> fold_expr (fun () e -> candidate !scope i e) () top)
          reads;
        (match s with
        | Sassign (lv, _) -> (
            match lv with
            | Var v ->
                kill "killed-var" (fun en -> List.mem v (expr_vars en.expr))
            | _ ->
                kill "aliased-store" (fun en ->
                    E.has_load en.expr
                    || List.exists
                         (fun v -> E.SS.mem v at)
                         (expr_vars en.expr)))
        | Sdecl (_, v, _) ->
            kill "killed-var" (fun en -> List.mem v (expr_vars en.expr))
        | _ -> ());
        match s with
        | Sdecl (t, v, _) -> scope := (v, t) :: !scope
        | _ -> ()
      end)
    stmts;
  List.iter
    (fun en -> if en.count >= 2 then groups := en :: !groups)
    !table;
  table := [];
  (* Profitability: the temporary's declaration is one more statement
     the interpreter dispatches every time the run executes, and a
     dispatched statement costs more than a handful of expression
     nodes.  Each shared occurrence saves [size - 1] node evaluations,
     so demand [(count - 1) * size >= 8] before naming anything.
     Unprofitable groups are counted once, on the scan that finds no
     profitable group left to extract. *)
  let profitable en = (en.count - 1) * E.size en.expr >= 8 in
  match List.filter profitable !groups with
  | [] ->
      List.iter (fun _ -> E.blocked ctx pass "unprofitable") !groups;
      None
  | gs ->
      (* largest expression first; ties to the earliest first site *)
      let best =
        List.fold_left
          (fun a b ->
            let sa = E.size a.expr and sb = E.size b.expr in
            if sb > sa || (sb = sa && b.first < a.first) then b else a)
          (List.hd gs) (List.tl gs)
      in
      Some { g = best }

(* Repeatedly extract the best group until the run is dry.  Each
   application removes every counted occurrence of the group's
   expression, so the process terminates. *)
let rec process_run ctx at scope0 stmts =
  match scan ctx at scope0 stmts with
  | None -> stmts
  | Some { g } ->
      let tmp = E.fresh ctx "cse" in
      E.fired ctx pass;
      let stmts =
        List.concat
          (List.mapi
             (fun i s ->
               let s =
                 if i >= g.first && i <= g.last then
                   replace_in_stmt ~target:g.expr ~by:(Var tmp) s
                 else s
               in
               if i = g.first then [ Sdecl (g.ty, tmp, Some g.expr); s ]
               else [ s ])
             stmts)
      in
      process_run ctx at scope0 stmts

let rec go_block ctx at scope ~inloop block =
  let flush scope0 run acc =
    if run = [] then acc
    else
      let stmts = List.rev run in
      let stmts =
        if inloop then (
          (* A run inside a loop is scanned but never rewritten: the
             temporary's declaration would be re-dispatched on every
             iteration, and a dispatched statement costs more than the
             expression nodes it saves (measured in [bench selfperf]
             under both engines).  A group that would otherwise fire
             is counted as a refusal. *)
          (match scan ctx at scope0 stmts with
          | Some _ -> E.blocked ctx pass "loop-body"
          | None -> ());
          stmts)
        else process_run ctx at scope0 stmts
      in
      List.rev_append stmts acc
  in
  let rec loop scope scope0 run acc = function
    | [] -> List.rev (flush scope0 run acc)
    | s :: rest when is_simple s ->
        let scope' =
          match s with Sdecl (t, v, _) -> (v, t) :: scope | _ -> scope
        in
        loop scope' scope0 (s :: run) acc rest
    | s :: rest ->
        let acc = flush scope0 run acc in
        let s' = go_compound ctx at scope ~inloop s in
        loop scope scope [] (s' :: acc) rest
  in
  loop scope scope [] [] block

and go_compound ctx at scope ~inloop s =
  match s with
  | Sif (c, b1, b2) ->
      Sif (c, go_block ctx at scope ~inloop b1, go_block ctx at scope ~inloop b2)
  | Swhile (c, b) -> Swhile (c, go_block ctx at scope ~inloop:true b)
  | Sfor fl ->
      Sfor
        {
          fl with
          body =
            go_block ctx at ((fl.index, Tint) :: scope) ~inloop:true fl.body;
        }
  | Sblock b -> Sblock (go_block ctx at scope ~inloop b)
  | Spragma (p, child) ->
      let child' =
        if is_simple child then child else go_compound ctx at scope ~inloop child
      in
      Spragma (p, child')
  | s -> s

let run ctx prog =
  E.map_bodies
    (fun fn body ->
      let at = E.addr_taken body in
      let scope = List.map (fun p -> (p.pname, p.pty)) fn.params in
      go_block ctx at scope ~inloop:false body)
    prog
