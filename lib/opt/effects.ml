(** Shared infrastructure for the optimizer passes: the per-run
    context (observability sink, global type environment, fresh-name
    counter), scope-aware typing, and the effect queries the legality
    checks are built on (re-exported from [Minic.Ast]).

    Every pass is gated by the same three questions — may this
    expression trap ([Ast.may_trap]), does it call ([Ast.has_call]),
    and what does this region write ([Ast.writes]) — so a pass never
    deletes, duplicates, or hoists an effect it cannot prove absent. *)

open Minic.Ast
module SS = Set.Make (String)

type ctx = {
  obs : Obs.t option;
  genv : Minic.Typecheck.env;
  globals : SS.t;  (** global variable names (callees may write these) *)
  fresh : int ref;
}

let make_ctx ?obs prog =
  let genv = Minic.Typecheck.initial_env prog in
  {
    obs;
    genv;
    globals = SS.of_list (List.map fst genv.Minic.Typecheck.vars);
    fresh = ref 0;
  }

(** Per-pass counters rendered by [--report]: [opt.<pass>.fired] and
    [opt.<pass>.blocked.<reason>]. *)
let fired ?(by = 1) ctx pass =
  Option.iter (fun o -> Obs.incr ~by o ("opt." ^ pass ^ ".fired")) ctx.obs

let blocked ctx pass reason =
  Option.iter
    (fun o -> Obs.incr o (Printf.sprintf "opt.%s.blocked.%s" pass reason))
    ctx.obs

let fresh ctx prefix =
  incr ctx.fresh;
  Printf.sprintf "%s__%d" prefix !(ctx.fresh)

(** Type of [e] under the function-local scope [vars] (innermost
    first, on top of the globals); [None] when it does not type. *)
let type_of ctx vars e =
  let env = { ctx.genv with Minic.Typecheck.vars = vars @ ctx.genv.vars } in
  match Minic.Typecheck.type_of_expr env e with
  | t -> Some t
  | exception Minic.Typecheck.Type_error _ -> None

(** Types an optimizer temporary may hold.  [Interp.bind_decl] treats
    array declarations as allocations (the initializer is never
    evaluated) and struct declarations as storage (initializer
    ignored), so a temp that is supposed to {e capture a value} must be
    scalar or pointer. *)
let cacheable_ty = function Tint | Tfloat | Tbool | Tptr _ -> true | _ -> false

(** Static types up to array decay: [Tarray (t, _)] and [Tptr t] are
    interchangeable everywhere the interpreter consults static types
    (element sizes for address arithmetic). *)
let rec norm_ty = function
  | Tarray (t, _) -> Tptr (norm_ty t)
  | Tptr t -> Tptr (norm_ty t)
  | t -> t

(** Node count, used as the "worth naming" threshold. *)
let size e = fold_expr (fun n _ -> n + 1) 0 e

let is_leaf = function
  | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> true
  | _ -> false

let has_load e =
  fold_expr
    (fun acc e ->
      match e with Index _ | Deref _ | Arrow _ -> true | _ -> acc)
    false e

(** Variables whose address is taken anywhere in a block: writes
    through pointers may target them, so no pass may assume their
    value is stable. *)
let addr_taken block =
  let of_expr acc e =
    fold_expr
      (fun acc e -> match e with Addr (Var v) -> SS.add v acc | _ -> acc)
      acc e
  in
  fold_stmts
    (fun acc s ->
      let exprs =
        match s with Spragma (p, _) -> pragma_exprs p | _ -> stmt_exprs s
      in
      List.fold_left of_expr acc exprs)
    SS.empty block

(** Does [block] read variable [v] anywhere — in an expression
    (including array-size expressions of declarations, which
    [stmt_exprs] omits), or by name in an offload data clause? *)
let block_reads_var v block =
  let spec_reads (s : offload_spec) =
    List.exists
      (fun sec ->
        String.equal sec.arr v
        || match sec.into with Some (d, _) -> String.equal d v | None -> false)
      (s.ins @ s.outs @ s.inouts)
    || List.mem v s.nocopy || List.mem v s.translate
  in
  fold_stmts
    (fun acc s ->
      acc
      ||
      let exprs =
        match s with
        | Spragma (p, _) -> pragma_exprs p
        | Sdecl (Tarray (_, Some n), _, init) -> n :: Option.to_list init
        | _ -> stmt_exprs s
      in
      List.exists (fun e -> List.mem v (expr_vars e)) exprs
      ||
      match s with
      | Spragma ((Offload sp | Offload_transfer sp), _) -> spec_reads sp
      | _ -> false)
    false block

(** Replace every occurrence of expression [target] in [e] by [by],
    outermost first (an occurrence inside another occurrence is
    covered by the outer replacement). *)
let rec replace_expr ~target ~by e =
  if equal_expr e target then by
  else
    let r e = replace_expr ~target ~by e in
    match e with
    | Int_lit _ | Float_lit _ | Bool_lit _ | Var _ -> e
    | Index (a, i) -> Index (r a, r i)
    | Field (a, f) -> Field (r a, f)
    | Arrow (a, f) -> Arrow (r a, f)
    | Deref a -> Deref (r a)
    | Addr a -> Addr (r a)
    | Binop (op, a, b) -> Binop (op, r a, r b)
    | Unop (op, a) -> Unop (op, r a)
    | Call (f, args) -> Call (f, List.map r args)
    | Cast (t, a) -> Cast (t, r a)

(** Rewrite the expressions a statement itself evaluates (not nested
    statements): condition, bounds, operands, initializers — and the
    size expression of a local array declaration.  Pragma clause
    expressions are left alone. *)
let map_stmt_exprs f stmt =
  match stmt with
  | Sexpr e -> Sexpr (f e)
  | Sassign (lv, rv) -> Sassign (f lv, f rv)
  | Sdecl (ty, v, init) ->
      let ty =
        match ty with
        | Tarray (t, Some n) -> Tarray (t, Some (f n))
        | t -> t
      in
      Sdecl (ty, v, Option.map f init)
  | Sif (c, b1, b2) -> Sif (f c, b1, b2)
  | Swhile (c, b) -> Swhile (f c, b)
  | Sfor fl -> Sfor { fl with lo = f fl.lo; hi = f fl.hi; step = f fl.step }
  | Sreturn e -> Sreturn (Option.map f e)
  | (Sblock _ | Spragma _ | Sbreak | Scontinue) as s -> s

(** [f] over every expression of every statement of [block], at any
    depth. *)
let map_block_exprs f block = map_block (map_stmt_exprs f) block

(** Map [f] over every function body of the program. *)
let map_bodies f prog =
  map_funcs (fun fn -> { fn with body = f fn fn.body }) prog
