(** Fault injection and recovery for the machine simulator.

    Real MIC deployments saw PCIe transfer errors, lost COI signals,
    device hangs and resets (arXiv:1310.5842, arXiv:1308.3123); the
    happy-path simulator silently assumes none of them.  This module
    defines a {e deterministic, seeded fault plan} — which transfers
    fail, which signals are dropped or delayed, when the device resets,
    how often MYO page service stalls — plus the {e recovery policy}
    the runtime applies: per-transfer retry with exponential backoff
    and a retry budget, wait timeouts, device-death declaration after N
    consecutive exhausted transfers, and CPU fallback.

    The spec travels inside {!Machine.Config.t}; the consumers
    ([Engine], [Coi], [Myo], [Segbuf], [Replay]) each instantiate a
    mutable {!t} (a {e plan}) from it and consult it as simulated
    events occur.  All randomness is a pure hash of
    [(seed, stream, index)], so draws are independent of evaluation
    order and every run with the same spec is identical. *)

(** {1 Recovery policy} *)

type policy = {
  max_retries : int;
      (** retry budget per transfer round (retries, not attempts) *)
  backoff_base_s : float;  (** first retry delay *)
  backoff_ceiling_s : float;  (** exponential backoff saturates here *)
  wait_timeout_s : float;
      (** [Coi.wait] gives up after this long and raises {!Coi.Timeout}
          instead of deadlocking *)
  dead_after : int;
      (** consecutive exhausted retry rounds before the device is
          declared dead *)
  cpu_fallback : bool;  (** re-run the region on the host after death *)
  fallback_slowdown : float;
      (** host-vs-device slowdown applied to replayed kernel work when
          falling back *)
  reset_recovery_s : float;  (** time one device reset costs *)
}

let default_policy =
  {
    max_retries = 3;
    backoff_base_s = 1.0e-4;
    backoff_ceiling_s = 5.0e-3;
    wait_timeout_s = 5.0e-3;
    dead_after = 3;
    cpu_fallback = true;
    fallback_slowdown = 4.0;
    reset_recovery_s = 5.0e-2;
  }

(** {1 The fault plan specification} *)

type spec = {
  seed : int;
  xfer_prob : float;  (** per-attempt CRC-failure probability *)
  xfer_fail : (int * int) list;
      (** (transfer index, forced consecutive failures) *)
  kill : int list;  (** transfer indices that fail every attempt *)
  drop_signals : int list;  (** tags whose next signal is lost *)
  delay_signals : (int * float) list;  (** tag -> delivery delay *)
  reset_at : float option;  (** spontaneous device reset time *)
  myo_stall_prob : float;  (** per-page-fault stall probability *)
  myo_stall_s : float;  (** duration of one page-service stall *)
  policy : policy;
  devs : (int * spec) list;
      (** per-device refinements ([devN:] clauses), sorted by device
          index.  The base clauses apply to {e every} device; a
          sub-spec adds faults for its device on top.  Sub-specs carry
          only injectable clauses: their [seed], [policy] and [devs]
          fields stay at the defaults (the recovery policy and seed
          are global). *)
}

let none =
  {
    seed = 0;
    xfer_prob = 0.;
    xfer_fail = [];
    kill = [];
    drop_signals = [];
    delay_signals = [];
    reset_at = None;
    myo_stall_prob = 0.;
    myo_stall_s = 0.;
    policy = default_policy;
    devs = [];
  }

let base_is_none s =
  s.xfer_prob = 0. && s.xfer_fail = [] && s.kill = [] && s.drop_signals = []
  && s.delay_signals = [] && s.reset_at = None && s.myo_stall_prob = 0.

let is_none s =
  base_is_none s
  && List.for_all (fun (_, sub) -> base_is_none sub) s.devs

(** The effective single-device spec for device [d]: the base clauses
    (which apply to every device) with [devN:] refinements folded in.
    Per-device draws still differ because {!plan} offsets the draw
    stream by the device index. *)
let spec_for_dev s d =
  match List.assoc_opt d s.devs with
  | None -> { s with devs = [] }
  | Some o ->
      {
        s with
        devs = [];
        xfer_prob = (if o.xfer_prob > 0. then o.xfer_prob else s.xfer_prob);
        xfer_fail = s.xfer_fail @ o.xfer_fail;
        kill = s.kill @ o.kill;
        drop_signals = s.drop_signals @ o.drop_signals;
        delay_signals = s.delay_signals @ o.delay_signals;
        reset_at =
          (match o.reset_at with Some _ -> o.reset_at | None -> s.reset_at);
        myo_stall_prob =
          (if o.myo_stall_prob > 0. then o.myo_stall_prob else s.myo_stall_prob);
        myo_stall_s =
          (if o.myo_stall_prob > 0. then o.myo_stall_s else s.myo_stall_s);
      }

(** Number of devices the spec mentions explicitly: [max devN index + 1],
    or 0 when no [devN:] clause appears. *)
let devices_mentioned s =
  List.fold_left (fun acc (d, _) -> max acc (d + 1)) 0 s.devs

(** {1 Spec grammar}

    Comma-separated clauses:
    - [seed=N]          deterministic seed for probabilistic draws
    - [xfer=P]          every transfer attempt fails with probability P
    - [xfer@I] / [xfer@I*K]  transfer I fails once (or K times)
    - [kill@I]          transfer I fails every attempt (device death)
    - [drop@TAG]        the next signal on TAG is lost
    - [delay@TAG:SECS]  the next signal on TAG is delivered late
    - [reset@T]         the device resets at simulated time T
    - [myo-stall=P:SECS] page service stalls with probability P
    - [devN:CLAUSE]     the injectable clause applies to device N only
      (policy and seed clauses stay global and are rejected under a
      [devN:] prefix)
    - [retries=N], [backoff=BASE:CEIL], [timeout=T], [dead-after=N],
      [fallback] / [no-fallback], [slowdown=F], [reset-cost=S]
      override the recovery policy.

    Every malformed clause is a typed {!parse_error} naming the
    offending token — there is no silent fallback: unknown clauses,
    empty clauses (trailing commas), bad numbers and out-of-range
    probabilities are all errors. *)

type parse_error = { token : string; reason : string }

let error_message { token; reason } =
  Printf.sprintf "faults: %s in %S" reason token

let clause_err c what = Error { token = c; reason = what }

let parse_float c s =
  match float_of_string_opt (String.trim s) with
  | Some f when Float.is_finite f && f >= 0. -> Ok f
  | _ -> clause_err c "bad number"

let parse_int c s =
  match int_of_string_opt (String.trim s) with
  | Some n when n >= 0 -> Ok n
  | _ -> clause_err c "bad index"

let ( let* ) = Result.bind

let parse_clause spec c =
  let kv key = String.length key in
  let after key = String.sub c (kv key) (String.length c - kv key) in
  let starts key =
    String.length c >= kv key && String.sub c 0 (kv key) = key
  in
  if c = "" then clause_err c "empty clause"
  else if starts "seed=" then
    let* n = parse_int c (after "seed=") in
    Ok { spec with seed = n }
  else if starts "xfer=" then
    let* p = parse_float c (after "xfer=") in
    if p > 1. then clause_err c "probability above 1"
    else Ok { spec with xfer_prob = p }
  else if starts "xfer@" then (
    match String.split_on_char '*' (after "xfer@") with
    | [ i ] ->
        let* i = parse_int c i in
        Ok { spec with xfer_fail = (i, 1) :: spec.xfer_fail }
    | [ i; k ] ->
        let* i = parse_int c i in
        let* k = parse_int c k in
        Ok { spec with xfer_fail = (i, k) :: spec.xfer_fail }
    | _ -> clause_err c "expected xfer@I or xfer@I*K")
  else if starts "kill@" then
    let* i = parse_int c (after "kill@") in
    Ok { spec with kill = i :: spec.kill }
  else if starts "drop@" then
    let* t = parse_int c (after "drop@") in
    Ok { spec with drop_signals = t :: spec.drop_signals }
  else if starts "delay@" then (
    match String.split_on_char ':' (after "delay@") with
    | [ t; d ] ->
        let* t = parse_int c t in
        let* d = parse_float c d in
        Ok { spec with delay_signals = (t, d) :: spec.delay_signals }
    | _ -> clause_err c "expected delay@TAG:SECS")
  else if starts "reset@" then
    let* t = parse_float c (after "reset@") in
    Ok { spec with reset_at = Some t }
  else if starts "myo-stall=" then (
    match String.split_on_char ':' (after "myo-stall=") with
    | [ p; s ] ->
        let* p = parse_float c p in
        let* s = parse_float c s in
        if p > 1. then clause_err c "probability above 1"
        else Ok { spec with myo_stall_prob = p; myo_stall_s = s }
    | _ -> clause_err c "expected myo-stall=P:SECS")
  else if starts "retries=" then
    let* n = parse_int c (after "retries=") in
    Ok { spec with policy = { spec.policy with max_retries = n } }
  else if starts "backoff=" then (
    match String.split_on_char ':' (after "backoff=") with
    | [ b; cl ] ->
        let* b = parse_float c b in
        let* cl = parse_float c cl in
        Ok
          {
            spec with
            policy =
              { spec.policy with backoff_base_s = b; backoff_ceiling_s = cl };
          }
    | _ -> clause_err c "expected backoff=BASE:CEIL")
  else if starts "timeout=" then
    let* t = parse_float c (after "timeout=") in
    Ok { spec with policy = { spec.policy with wait_timeout_s = t } }
  else if starts "dead-after=" then
    let* n = parse_int c (after "dead-after=") in
    if n = 0 then clause_err c "dead-after must be positive"
    else Ok { spec with policy = { spec.policy with dead_after = n } }
  else if starts "slowdown=" then
    let* f = parse_float c (after "slowdown=") in
    Ok { spec with policy = { spec.policy with fallback_slowdown = f } }
  else if starts "reset-cost=" then
    let* s = parse_float c (after "reset-cost=") in
    Ok { spec with policy = { spec.policy with reset_recovery_s = s } }
  else if c = "no-fallback" then
    Ok { spec with policy = { spec.policy with cpu_fallback = false } }
  else if c = "fallback" then
    Ok { spec with policy = { spec.policy with cpu_fallback = true } }
  else clause_err c "unknown clause"

(* clauses prepend; restore left-to-right order *)
let unrev spec =
  {
    spec with
    xfer_fail = List.rev spec.xfer_fail;
    kill = List.rev spec.kill;
    drop_signals = List.rev spec.drop_signals;
    delay_signals = List.rev spec.delay_signals;
  }

(* [devN:] carries only injectable faults; the recovery policy and the
   seed are properties of the whole plan *)
let dev_clause_allowed c =
  List.exists
    (fun key ->
      String.length c >= String.length key
      && String.sub c 0 (String.length key) = key)
    [ "xfer="; "xfer@"; "kill@"; "drop@"; "delay@"; "reset@"; "myo-stall=" ]

(* A [devN:] prefix: "dev", a non-empty run of digits, ':'.  Returns
   [(device, rest-of-clause)]. *)
let split_dev_prefix c =
  let n = String.length c in
  if n < 5 || String.sub c 0 3 <> "dev" then None
  else
    match String.index_opt c ':' with
    | Some i when i > 3 -> (
        match int_of_string_opt (String.sub c 3 (i - 3)) with
        | Some d when d >= 0 -> Some (d, String.sub c (i + 1) (n - i - 1))
        | _ -> None)
    | _ -> None

let parse s =
  if String.trim s = "" then Ok none
  else
    let clauses = String.split_on_char ',' s in
    let rec go spec = function
      | [] ->
          let devs =
            List.sort
              (fun (a, _) (b, _) -> compare a b)
              (List.map (fun (d, sub) -> (d, unrev sub)) spec.devs)
          in
          Ok { (unrev spec) with devs }
      | c :: rest -> (
          let c = String.trim c in
          match split_dev_prefix c with
          | Some (d, sub_clause) ->
              if not (dev_clause_allowed sub_clause) then
                clause_err c "policy/seed clauses are global, not per-device"
              else
                let sub =
                  Option.value (List.assoc_opt d spec.devs) ~default:none
                in
                let* sub =
                  Result.map_error
                    (fun e -> { e with token = c })
                    (parse_clause sub sub_clause)
                in
                go
                  { spec with devs = (d, sub) :: List.remove_assoc d spec.devs }
                  rest
          | None -> (
              match parse_clause spec c with
              | Ok spec -> go spec rest
              | Error _ as e -> e))
    in
    go none clauses

let base_clauses s =
  let p = s.policy and d = default_policy in
    (if s.seed <> 0 then [ Printf.sprintf "seed=%d" s.seed ] else [])
    @ (if s.xfer_prob > 0. then [ Printf.sprintf "xfer=%g" s.xfer_prob ]
       else [])
    @ List.map
        (fun (i, k) ->
          if k = 1 then Printf.sprintf "xfer@%d" i
          else Printf.sprintf "xfer@%d*%d" i k)
        s.xfer_fail
    @ List.map (Printf.sprintf "kill@%d") s.kill
    @ List.map (Printf.sprintf "drop@%d") s.drop_signals
    @ List.map (fun (t, d) -> Printf.sprintf "delay@%d:%g" t d) s.delay_signals
    @ (match s.reset_at with
      | Some t -> [ Printf.sprintf "reset@%g" t ]
      | None -> [])
    @ (if s.myo_stall_prob > 0. then
         [ Printf.sprintf "myo-stall=%g:%g" s.myo_stall_prob s.myo_stall_s ]
       else [])
    @ (if p.max_retries <> d.max_retries then
         [ Printf.sprintf "retries=%d" p.max_retries ]
       else [])
    @ (if
         p.backoff_base_s <> d.backoff_base_s
         || p.backoff_ceiling_s <> d.backoff_ceiling_s
       then [ Printf.sprintf "backoff=%g:%g" p.backoff_base_s p.backoff_ceiling_s ]
       else [])
    @ (if p.wait_timeout_s <> d.wait_timeout_s then
         [ Printf.sprintf "timeout=%g" p.wait_timeout_s ]
       else [])
    @ (if p.dead_after <> d.dead_after then
         [ Printf.sprintf "dead-after=%d" p.dead_after ]
       else [])
    @ (if p.cpu_fallback <> d.cpu_fallback then [ "no-fallback" ] else [])
    @ (if p.fallback_slowdown <> d.fallback_slowdown then
         [ Printf.sprintf "slowdown=%g" p.fallback_slowdown ]
       else [])
  @
  if p.reset_recovery_s <> d.reset_recovery_s then
    [ Printf.sprintf "reset-cost=%g" p.reset_recovery_s ]
  else []

let to_string s =
  let dev_clauses =
    List.concat_map
      (fun (d, sub) ->
        List.map (fun c -> Printf.sprintf "dev%d:%s" d c) (base_clauses sub))
      s.devs
  in
  String.concat "," (base_clauses s @ dev_clauses)

(** {1 Deterministic draws}

    splitmix64-style finalizer over [(seed, stream, index)]: draws
    don't depend on evaluation order, and a plan consulted twice for
    the same event gives the same answer. *)

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let draw spec ~stream ~index =
  let z =
    mix64
      (Int64.add
         (Int64.mul (Int64.of_int spec.seed) 0x9e3779b97f4a7c15L)
         (Int64.add
            (Int64.mul (Int64.of_int stream) 0xd1b54a32d192ed03L)
            (Int64.of_int index)))
  in
  (* top 53 bits -> uniform float in [0, 1) *)
  Int64.to_float (Int64.shift_right_logical z 11) /. 9007199254740992.

(** {1 Plans} *)

type t = {
  spec : spec;
  dev : int;  (** device this plan instance belongs to *)
  mutable xfer_ix : int;  (** index of the next transfer *)
  mutable consecutive : int;  (** consecutive exhausted retry rounds *)
  mutable myo_ix : int;  (** index of the next page-fault batch *)
  drop_used : (int, unit) Hashtbl.t;
  delay_used : (int, unit) Hashtbl.t;
  mutable reset_taken : bool;
  obs : Obs.t option;
}

(* Each plan instance owns ALL its one-shot state ([reset_taken], the
   drop/delay tables) and its per-device draw streams: two consumers
   must never share one [t] — each engine instantiates its own plan
   from the (immutable) spec, so e.g. parallel sweeps each observe
   their own [reset@T] rather than racing for one. *)
let plan ?obs ?(dev = 0) spec =
  {
    spec = spec_for_dev spec dev;
    dev;
    xfer_ix = 0;
    consecutive = 0;
    myo_ix = 0;
    drop_used = Hashtbl.create 4;
    delay_used = Hashtbl.create 4;
    reset_taken = false;
    obs;
  }

let plan_of ?obs ?dev spec =
  if is_none spec then None else Some (plan ?obs ?dev spec)

let spec t = t.spec
let policy t = t.spec.policy
let dev t = t.dev

let bump ?(by = 1) t name =
  match t.obs with None -> () | Some o -> Obs.incr ~by o name

exception Device_dead of { dev : int; at : float; failures : int }

(** {2 Fleets}

    One plan instance per device, all derived from a single spec: the
    base clauses apply to every device, [devN:] refinements to theirs.
    Draw streams are offset by device index, so two devices under the
    same probabilistic clause fail independently. *)

type fleet = t array

let fleet ?obs ~devices spec =
  Array.init (max 1 devices) (fun d -> plan ?obs ~dev:d spec)

let fleet_of ?obs ~devices spec =
  if is_none spec then None else Some (fleet ?obs ~devices spec)

let fleet_plan (f : fleet) ~dev = f.(min dev (Array.length f - 1))

(** Exponential backoff paid after [failures] failed attempts:
    [sum_{j=1..failures} min(base * 2^(j-1), ceiling)]. *)
let backoff_total t ~failures =
  let p = t.spec.policy in
  let rec go j acc =
    if j > failures then acc
    else
      let d =
        Float.min
          (p.backoff_base_s *. Float.pow 2. (float_of_int (j - 1)))
          p.backoff_ceiling_s
      in
      go (j + 1) (acc +. d)
  in
  go 1 0.

(** {2 Transfers} *)

type xfer_report = {
  xr_index : int;
  xr_failures : int;  (** failed attempts before success (or death) *)
  xr_resets : int;  (** device resets taken while recovering *)
  xr_dead : bool;  (** the degradation policy gave up *)
}

(* Does attempt [attempt] of transfer [i] fail?  Forced failures
   ([xfer@I*K]) burn the first K attempts; [kill@I] fails all of them;
   on top, every attempt loses an independent probabilistic draw. *)
let attempt_fails t ~index ~attempt =
  let forced =
    match List.assoc_opt index t.spec.xfer_fail with Some k -> k | None -> 0
  in
  List.mem index t.spec.kill || attempt < forced
  || t.spec.xfer_prob > 0.
     && draw t.spec ~stream:(2 * t.dev)
          ~index:((index * 1_000_003) + attempt)
        < t.spec.xfer_prob

(** Outcome of the next transfer under the plan: how many attempts
    failed before one succeeded, how many device resets the recovery
    took, or whether the degradation policy declared the device dead
    ([dead_after] consecutive exhausted retry rounds).  Counts every
    injection/retry/reset in the sink. *)
let next_transfer t =
  let index = t.xfer_ix in
  t.xfer_ix <- index + 1;
  let p = t.spec.policy in
  let failures = ref 0 in
  let resets = ref 0 in
  let result = ref None in
  (* each round: one try plus up to [max_retries] retries; an exhausted
     round either kills the device or costs a reset and a fresh round *)
  while !result = None do
    let round_failed = ref true in
    let a = ref 0 in
    while !round_failed && !a <= p.max_retries do
      if attempt_fails t ~index ~attempt:!failures then begin
        incr failures;
        bump t "fault.injected";
        if !a < p.max_retries then bump t "fault.retries"
      end
      else round_failed := false;
      incr a
    done;
    if not !round_failed then begin
      if !failures > 0 then t.consecutive <- 0;
      result := Some false
    end
    else begin
      bump t "fault.exhausted";
      t.consecutive <- t.consecutive + 1;
      if t.consecutive >= p.dead_after then result := Some true
      else begin
        incr resets;
        bump t "fault.resets"
      end
    end
  done;
  {
    xr_index = index;
    xr_failures = !failures;
    xr_resets = !resets;
    xr_dead = (match !result with Some d -> d | None -> false);
  }

(** {2 Signals} *)

type fate = Deliver | Dropped | Delayed of float

(** What happens to a signal on [tag]: lost, late, or delivered.  Each
    [drop@TAG] / [delay@TAG] clause is consumed once — the re-signal
    after a drop goes through. *)
let signal_fate t ~tag =
  if List.mem tag t.spec.drop_signals && not (Hashtbl.mem t.drop_used tag)
  then begin
    Hashtbl.replace t.drop_used tag ();
    bump t "fault.dropped_signals";
    Dropped
  end
  else
    match List.assoc_opt tag t.spec.delay_signals with
    | Some d when not (Hashtbl.mem t.delay_used tag) ->
        Hashtbl.replace t.delay_used tag ();
        bump t "fault.delayed_signals";
        Delayed d
    | _ -> Deliver

(** {2 Device reset} *)

(** If the one-shot [reset@T] falls inside [[start, stop)], consume it
    and return the reset time and the recovery cost.

    The one-shot consumption is {e per plan instance}: [reset_taken]
    lives in {!t}, never in the spec, so every plan instantiated from
    the same spec observes its own reset exactly once.  Consumers must
    therefore not share a plan — one engine, one plan. *)
let take_reset t ~start ~stop =
  match t.spec.reset_at with
  | Some r when (not t.reset_taken) && r >= start && r < stop ->
      t.reset_taken <- true;
      bump t "fault.resets";
      Some (r, t.spec.policy.reset_recovery_s)
  | _ -> None

(** {2 MYO stalls} *)

(** Stall duration (if any) for the next batch of page faults. *)
let myo_stall t =
  let index = t.myo_ix in
  t.myo_ix <- index + 1;
  if
    t.spec.myo_stall_prob > 0.
    && draw t.spec ~stream:((2 * t.dev) + 1) ~index < t.spec.myo_stall_prob
  then begin
    bump t "fault.myo_stalls";
    Some t.spec.myo_stall_s
  end
  else None

(** {2 Fallback bookkeeping} *)

let note_fallback t = bump t "fault.fallbacks"

let note_timeout t = bump t "fault.timeouts"

let observe_recovery t seconds =
  match t.obs with
  | None -> ()
  | Some o -> Obs.observe o "fault.recovery_s" seconds
