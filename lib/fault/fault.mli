(** Fault injection and recovery for the machine simulator.

    A {!spec} is a deterministic, seeded fault plan — transfer CRC
    errors by block index or probability, dropped/delayed COI signals,
    a device reset at time t, MYO page-service stalls — plus the
    {!policy} the runtime recovers with (retry budget, exponential
    backoff, wait timeout, device-death threshold, CPU fallback).  The
    spec travels inside [Machine.Config.t]; each consumer instantiates
    a mutable plan {!t} from it.  All randomness is a pure hash of
    [(seed, stream, index)], so runs are reproducible and draws are
    independent of evaluation order. *)

(** {1 Recovery policy} *)

type policy = {
  max_retries : int;
      (** retry budget per transfer round (retries, not attempts) *)
  backoff_base_s : float;  (** first retry delay *)
  backoff_ceiling_s : float;  (** exponential backoff saturates here *)
  wait_timeout_s : float;
      (** [Coi.wait] gives up after this long and raises a recoverable
          [Timeout] instead of deadlocking *)
  dead_after : int;
      (** consecutive exhausted retry rounds before the device is
          declared dead *)
  cpu_fallback : bool;  (** re-run the region on the host after death *)
  fallback_slowdown : float;
      (** host-vs-device slowdown applied to replayed kernel work when
          falling back *)
  reset_recovery_s : float;  (** time one device reset costs *)
}

val default_policy : policy

(** {1 Specification} *)

type spec = {
  seed : int;
  xfer_prob : float;  (** per-attempt CRC-failure probability *)
  xfer_fail : (int * int) list;
      (** (transfer index, forced consecutive failures) *)
  kill : int list;  (** transfer indices that fail every attempt *)
  drop_signals : int list;  (** tags whose next signal is lost *)
  delay_signals : (int * float) list;  (** tag -> delivery delay *)
  reset_at : float option;  (** spontaneous device reset time *)
  myo_stall_prob : float;  (** per-page-fault stall probability *)
  myo_stall_s : float;  (** duration of one page-service stall *)
  policy : policy;
  devs : (int * spec) list;
      (** per-device refinements ([devN:] clauses), sorted by device
          index; base clauses apply to every device.  Sub-specs carry
          only injectable clauses (their seed/policy/devs stay at the
          defaults — the recovery policy and seed are global). *)
}

val none : spec
(** No faults; the config default.  Consumers short-circuit on it. *)

val is_none : spec -> bool

val spec_for_dev : spec -> int -> spec
(** The effective single-device spec for a device: base clauses plus
    that device's [devN:] refinements, with [devs = []]. *)

val devices_mentioned : spec -> int
(** [max devN index + 1] over the [devN:] clauses, 0 when none. *)

type parse_error = { token : string; reason : string }
(** A malformed [--faults] clause: the offending token and why it was
    rejected.  There is no silent fallback — unknown clauses, empty
    clauses (trailing commas), bad numbers, out-of-range probabilities
    and per-device policy clauses are all errors. *)

val error_message : parse_error -> string
(** ["faults: <reason> in \"<token>\""]. *)

val parse : string -> (spec, parse_error) result
(** The [--faults] grammar: comma-separated [seed=N], [xfer=P],
    [xfer@I], [xfer@I*K], [kill@I], [drop@TAG], [delay@TAG:SECS],
    [reset@T], [myo-stall=P:SECS], any of those behind a [devN:]
    prefix (device-N-only), and global policy overrides [retries=N],
    [backoff=BASE:CEIL], [timeout=T], [dead-after=N],
    [fallback]/[no-fallback], [slowdown=F], [reset-cost=S]. *)

val to_string : spec -> string
(** Canonical spec string; [parse (to_string s)] round-trips
    (property-tested, including [devN:] refinements). *)

(** {1 Plans} *)

type t
(** A mutable plan instantiated from a spec: tracks the transfer
    index, the consecutive-failure count for the degradation policy,
    and which one-shot faults were already consumed.  All one-shot
    state is per plan instance — consumers must not share a [t]; each
    engine instantiates its own from the immutable spec. *)

val plan : ?obs:Obs.t -> ?dev:int -> spec -> t
(** With [?obs], every injection/retry/reset/timeout/fallback bumps a
    [fault.*] counter and recovery times land in the [fault.recovery_s]
    histogram.  [?dev] (default 0) selects the device: the spec is
    specialized with {!spec_for_dev} and the probabilistic draw
    streams are offset so devices fail independently. *)

val plan_of : ?obs:Obs.t -> ?dev:int -> spec -> t option
(** [None] for {!none} — the no-overhead fast path. *)

val spec : t -> spec
val policy : t -> policy

val dev : t -> int
(** The device this plan instance belongs to. *)

exception Device_dead of { dev : int; at : float; failures : int }
(** The degradation policy declared device [dev] dead at simulated
    time [at] after [failures] failed attempts.  Raised by the engine;
    recovered (migration to surviving devices, then CPU fallback) or
    surfaced by the strategy layer. *)

(** {1 Fleets} *)

type fleet = t array
(** One plan instance per device (index = device). *)

val fleet : ?obs:Obs.t -> devices:int -> spec -> fleet

val fleet_of : ?obs:Obs.t -> devices:int -> spec -> fleet option
(** [None] for {!none}. *)

val fleet_plan : fleet -> dev:int -> t

val backoff_total : t -> failures:int -> float
(** Total backoff delay after [failures] failed attempts:
    [sum min(base * 2^(j-1), ceiling)]. *)

(** {2 Transfers} *)

type xfer_report = {
  xr_index : int;
  xr_failures : int;  (** failed attempts before success (or death) *)
  xr_resets : int;  (** device resets taken while recovering *)
  xr_dead : bool;  (** the degradation policy gave up *)
}

val next_transfer : t -> xfer_report
(** Outcome of the next transfer: retries until one attempt succeeds,
    paying a device reset per exhausted retry round, until
    [dead_after] consecutive exhausted rounds declare death. *)

(** {2 Signals} *)

type fate = Deliver | Dropped | Delayed of float

val signal_fate : t -> tag:int -> fate
(** Each [drop@TAG]/[delay@TAG] clause is consumed once: the re-signal
    after a drop goes through. *)

(** {2 Device reset} *)

val take_reset : t -> start:float -> stop:float -> (float * float) option
(** If the one-shot [reset@T] falls inside [[start, stop)], consume it
    and return [(reset_time, recovery_cost)].  The one-shot state is
    {e per plan instance} ([t]), never shared through the spec: two
    engines holding plans built from the same spec each observe their
    own reset (regression-tested). *)

(** {2 MYO stalls} *)

val myo_stall : t -> float option
(** Stall duration (if any) for the next batch of page faults. *)

(** {2 Bookkeeping} *)

val note_fallback : t -> unit
val note_timeout : t -> unit
val observe_recovery : t -> float -> unit
