(** Fault injection and recovery for the machine simulator.

    A {!spec} is a deterministic, seeded fault plan — transfer CRC
    errors by block index or probability, dropped/delayed COI signals,
    a device reset at time t, MYO page-service stalls — plus the
    {!policy} the runtime recovers with (retry budget, exponential
    backoff, wait timeout, device-death threshold, CPU fallback).  The
    spec travels inside [Machine.Config.t]; each consumer instantiates
    a mutable plan {!t} from it.  All randomness is a pure hash of
    [(seed, stream, index)], so runs are reproducible and draws are
    independent of evaluation order. *)

(** {1 Recovery policy} *)

type policy = {
  max_retries : int;
      (** retry budget per transfer round (retries, not attempts) *)
  backoff_base_s : float;  (** first retry delay *)
  backoff_ceiling_s : float;  (** exponential backoff saturates here *)
  wait_timeout_s : float;
      (** [Coi.wait] gives up after this long and raises a recoverable
          [Timeout] instead of deadlocking *)
  dead_after : int;
      (** consecutive exhausted retry rounds before the device is
          declared dead *)
  cpu_fallback : bool;  (** re-run the region on the host after death *)
  fallback_slowdown : float;
      (** host-vs-device slowdown applied to replayed kernel work when
          falling back *)
  reset_recovery_s : float;  (** time one device reset costs *)
}

val default_policy : policy

(** {1 Specification} *)

type spec = {
  seed : int;
  xfer_prob : float;  (** per-attempt CRC-failure probability *)
  xfer_fail : (int * int) list;
      (** (transfer index, forced consecutive failures) *)
  kill : int list;  (** transfer indices that fail every attempt *)
  drop_signals : int list;  (** tags whose next signal is lost *)
  delay_signals : (int * float) list;  (** tag -> delivery delay *)
  reset_at : float option;  (** spontaneous device reset time *)
  myo_stall_prob : float;  (** per-page-fault stall probability *)
  myo_stall_s : float;  (** duration of one page-service stall *)
  policy : policy;
}

val none : spec
(** No faults; the config default.  Consumers short-circuit on it. *)

val is_none : spec -> bool

val parse : string -> (spec, string) result
(** The [--faults] grammar: comma-separated [seed=N], [xfer=P],
    [xfer@I], [xfer@I*K], [kill@I], [drop@TAG], [delay@TAG:SECS],
    [reset@T], [myo-stall=P:SECS], and policy overrides [retries=N],
    [backoff=BASE:CEIL], [timeout=T], [dead-after=N],
    [fallback]/[no-fallback], [slowdown=F], [reset-cost=S]. *)

val to_string : spec -> string
(** Canonical spec string; [parse (to_string s)] round-trips. *)

(** {1 Plans} *)

type t
(** A mutable plan instantiated from a spec: tracks the transfer
    index, the consecutive-failure count for the degradation policy,
    and which one-shot faults were already consumed. *)

val plan : ?obs:Obs.t -> spec -> t
(** With [?obs], every injection/retry/reset/timeout/fallback bumps a
    [fault.*] counter and recovery times land in the [fault.recovery_s]
    histogram. *)

val plan_of : ?obs:Obs.t -> spec -> t option
(** [None] for {!none} — the no-overhead fast path. *)

val spec : t -> spec
val policy : t -> policy

exception Device_dead of { at : float; failures : int }
(** The degradation policy declared the device dead at simulated time
    [at] after [failures] failed attempts.  Raised by the engine;
    recovered (CPU fallback) or surfaced by the strategy layer. *)

val backoff_total : t -> failures:int -> float
(** Total backoff delay after [failures] failed attempts:
    [sum min(base * 2^(j-1), ceiling)]. *)

(** {2 Transfers} *)

type xfer_report = {
  xr_index : int;
  xr_failures : int;  (** failed attempts before success (or death) *)
  xr_resets : int;  (** device resets taken while recovering *)
  xr_dead : bool;  (** the degradation policy gave up *)
}

val next_transfer : t -> xfer_report
(** Outcome of the next transfer: retries until one attempt succeeds,
    paying a device reset per exhausted retry round, until
    [dead_after] consecutive exhausted rounds declare death. *)

(** {2 Signals} *)

type fate = Deliver | Dropped | Delayed of float

val signal_fate : t -> tag:int -> fate
(** Each [drop@TAG]/[delay@TAG] clause is consumed once: the re-signal
    after a drop goes through. *)

(** {2 Device reset} *)

val take_reset : t -> start:float -> stop:float -> (float * float) option
(** If the one-shot [reset@T] falls inside [[start, stop)], consume it
    and return [(reset_time, recovery_cost)]. *)

(** {2 MYO stalls} *)

val myo_stall : t -> float option
(** Stall duration (if any) for the next batch of page faults. *)

(** {2 Bookkeeping} *)

val note_fallback : t -> unit
val note_timeout : t -> unit
val observe_recovery : t -> float -> unit
