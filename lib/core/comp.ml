(** COMP: compiler optimizations for manycore processors.

    The top-level driver tying the front end, the analyses, the three
    source-to-source optimizations (data streaming, regularization,
    shared memory for pointer-based structures) and the machine
    simulator together.

    {1 Typical use}

    {[
      let prog = Minic.Parser.program_of_string_exn source in
      let optimized, report = Comp.optimize prog in
      print_string (Minic.Pretty.program_to_string optimized);
      (* timing on the simulated host + MIC *)
      let w = Workloads.Registry.find_exn "blackscholes" in
      let t = Comp.simulate w Comp.Mic_optimized in
      Printf.printf "%.3f s\n" t
    ]} *)

(** {1 Source-to-source optimization} *)

(** What the pass pipeline did to a program. *)
type applied = {
  offloads_inserted : int;  (** Apricot-style offload insertion *)
  shared_rewritten : int;
      (** pointer-based offloads rewritten to translated DMA *)
  regularized : (string * Transforms.Regularize.kind) list;
  merged : int;  (** offload-merging sites rewritten *)
  streamed : int;  (** loops rewritten for data streaming *)
  vectorized : int;  (** loops annotated [omp simd] *)
  resident : int;
      (** transfers elided or hoisted by the inter-offload residency
          pass *)
}

let pp_applied fmt a =
  let kind_name = function
    | Transforms.Regularize.Reorder -> "reorder"
    | Transforms.Regularize.Split -> "split"
    | Transforms.Regularize.Soa -> "soa"
  in
  Format.fprintf fmt
    "offloads inserted: %d; shared rewritten: %d; regularized: [%s]; \
     merged: %d; streamed: %d; vectorized: %d; resident: %d"
    a.offloads_inserted a.shared_rewritten
    (String.concat ", "
       (List.map (fun (f, k) -> f ^ ":" ^ kind_name k) a.regularized))
    a.merged a.streamed a.vectorized a.resident

(** Pipeline passes, in their fixed order. *)
type pass =
  | Insert_offload
  | Shared_memory
  | Regularization
  | Merge_offloads
  | Data_streaming
  | Vectorization

let all_passes =
  [
    Insert_offload; Shared_memory; Regularization; Merge_offloads;
    Data_streaming; Vectorization;
  ]

let pass_name = function
  | Insert_offload -> "insert-offload"
  | Shared_memory -> "shared-memory"
  | Regularization -> "regularization"
  | Merge_offloads -> "merge-offloads"
  | Data_streaming -> "data-streaming"
  | Vectorization -> "vectorization"

let pass_of_name n =
  List.find_opt (fun p -> String.equal (pass_name p) n) all_passes

(** Run the pass pipeline:
    offload insertion -> shared memory -> regularization -> offload
    merging -> data streaming -> vectorization.  The order matters:
    regularization enables streaming (Section IV), merging must see the
    individual offloads before streaming rewrites them, and the shared-
    memory rewrite must pull pointer-bearing arrays out of the clauses
    before streaming could slice them.  [passes] restricts the pipeline
    (the relative order is always the fixed one above). *)
let optimize ?opt ?obs ?(residency = false) ?(passes = all_passes)
    ?(nblocks = 10) ?(memory = Transforms.Streaming.Double_buffered) prog =
  (* generated names restart per program: a rewrite is a pure function
     of its input, whichever domain runs it and in whatever order *)
  Transforms.Util.reset_fresh ();
  (* the classic mid-end runs first so the paper's source-to-source
     passes see cleaned-up code (folded bounds, hoisted invariants) *)
  let prog =
    match opt with
    | None -> prog
    | Some mid -> Opt.run ?obs ~passes:mid prog
  in
  let on p = List.mem p passes in
  let run p f prog = if on p then f prog else (prog, 0) in
  let prog, offloads_inserted =
    run Insert_offload Transforms.Insert_offload.transform_all prog
  in
  let prog, shared_rewritten =
    run Shared_memory Transforms.Shared_mem.transform_all prog
  in
  let prog, regularized =
    if on Regularization then Transforms.Regularize.transform_all prog
    else (prog, [])
  in
  let prog, merged =
    run Merge_offloads Transforms.Merge_offload.transform_all prog
  in
  let prog, streamed =
    if on Data_streaming then
      Transforms.Streaming.transform_all ~nblocks ~memory prog
    else (prog, 0)
  in
  let prog, vectorized =
    run Vectorization Transforms.Vectorize.transform_all prog
  in
  (* residency runs last: it must see the offload/transfer structure
     the other rewrites leave behind (streamed offloads carry signals
     and are refused per-region rather than hidden from it) *)
  let prog, resident =
    if residency then Residency.transform ?obs prog else (prog, 0)
  in
  ( prog,
    {
      offloads_inserted;
      shared_rewritten;
      regularized;
      merged;
      streamed;
      vectorized;
      resident;
    } )

(** {1 Applicability analysis (Table II)} *)

(** Which optimizations apply to a workload, as decided by the real
    analyses running on its kernel source (except the shared-memory
    mechanism, which is an allocation-site property carried by the
    workload's shape). *)
type applicability = {
  streaming : bool;
  merging : bool;
  regularization : Transforms.Regularize.kind list;
  shared_memory : bool;
}

let analyze (w : Workloads.Workload.t) =
  let prog = Workloads.Workload.program w in
  let regions = Analysis.Offload_regions.offloaded prog in
  let streaming =
    (not w.manual_streaming)
    && List.exists (Transforms.Streaming.applicable prog) regions
  in
  let merging = Transforms.Merge_offload.applicable prog in
  let regularization =
    List.concat_map (Transforms.Regularize.applicable_kinds prog) regions
    |> List.sort_uniq compare
  in
  let shared_memory =
    Workloads.Workload.has_shared w
    || List.exists (Transforms.Shared_mem.applicable prog) regions
  in
  { streaming; merging; regularization; shared_memory }

(** {1 Simulation} *)

type variant =
  | Cpu_parallel  (** the original multicore OpenMP version *)
  | Mic_naive  (** pragmas added, nothing else (Figure 1) *)
  | Mic_optimized  (** all applicable COMP optimizations *)
  | Mic_with of Runtime.Plan.strategy * Runtime.Plan.shape
      (** explicit strategy/shape, for ablations *)

let default_nblocks = 20
let default_seg_bytes = 256 * 1024 * 1024
(* the paper observes 256 MB granularity improves ferret by 7.81x *)

(** The execution strategy a variant uses for a workload.  Returns the
    strategy and the shape it runs against (regularization changes the
    shape: packed transfers, different kernel behaviour). *)
let plan_of_variant (w : Workloads.Workload.t) (a : applicability) variant :
    Runtime.Plan.strategy * Runtime.Plan.shape =
  let open Runtime in
  match variant with
  | Mic_with (s, shape) -> (s, shape)
  | Cpu_parallel -> (Plan.Host_parallel, w.shape)
  | Mic_naive ->
      if a.shared_memory then (Plan.Shared_myo, w.shape)
      else if w.manual_streaming then
        (* dedup: the original port already streams by hand *)
        (Plan.streamed ~nblocks:default_nblocks ~persistent:false (), w.shape)
      else (Plan.Naive_offload, w.shape)
  | Mic_optimized ->
      if a.shared_memory then
        (Plan.Shared_segbuf { seg_bytes = default_seg_bytes }, w.shape)
      else
        let shape, repack =
          match (a.regularization, w.regularized) with
          | _ :: _, Some r -> (r.reg_shape, Some r.repack)
          | _ -> (w.shape, None)
        in
        if w.manual_streaming then
          (Plan.streamed ~nblocks:default_nblocks ~persistent:false (), shape)
        else if a.merging then
          (Plan.merged ~streamed:a.streaming ~nblocks:default_nblocks (), shape)
        else if a.streaming then
          ( Plan.streamed ~nblocks:default_nblocks ~persistent:true ?repack (),
            shape )
        else if a.regularization <> [] then (Plan.Naive_offload, shape)
        else (Plan.Naive_offload, w.shape)

(** Whole-application time of a variant on the simulated machine. *)
let simulate ?obs ?(cfg = Machine.Config.paper_default)
    (w : Workloads.Workload.t) variant =
  let a = analyze w in
  let strategy, shape = plan_of_variant w a variant in
  Runtime.Schedule_gen.total_time ?obs cfg shape strategy

(** Offload-region time only (no host serial part). *)
let simulate_region ?obs ?(cfg = Machine.Config.paper_default)
    (w : Workloads.Workload.t) variant =
  let a = analyze w in
  let strategy, shape = plan_of_variant w a variant in
  Runtime.Schedule_gen.region_time ?obs cfg shape strategy

(** Whole-application time with device death absorbed: like
    {!simulate}, but when [cfg.fault] kills the device and the policy
    allows CPU fallback, the returned record carries the recovered
    makespan instead of escaping with {!Fault.Device_dead}. *)
let simulate_recovered ?obs ?(cfg = Machine.Config.paper_default)
    (w : Workloads.Workload.t) variant =
  let a = analyze w in
  let strategy, shape = plan_of_variant w a variant in
  let r = Runtime.Schedule_gen.schedule_recovered ?obs cfg shape strategy in
  let time =
    shape.Runtime.Plan.host_serial_s
    +. r.Runtime.Schedule_gen.rec_result.Machine.Engine.makespan
  in
  (time, r)

(** Full schedule of a variant, for tracing/Gantt output.  With [?obs],
    every counter/span the runtime and engine record lands in the given
    sink. *)
let schedule ?obs ?(cfg = Machine.Config.paper_default)
    (w : Workloads.Workload.t) variant =
  let a = analyze w in
  let strategy, shape = plan_of_variant w a variant in
  Runtime.Schedule_gen.schedule ?obs cfg shape strategy

(** Device memory footprint of a variant (Figure 13). *)
let device_bytes (w : Workloads.Workload.t) variant =
  let a = analyze w in
  let strategy, shape = plan_of_variant w a variant in
  Runtime.Mem_usage.device_bytes shape strategy

(** {1 Diagnostics} *)

(** Human-readable, per-region account of what the compiler decided
    and why — the [compc analyze] output. *)
let explain prog =
  let buf = Buffer.create 512 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let regions = Analysis.Offload_regions.of_program prog in
  if regions = [] then add "no parallel or offloaded regions found\n";
  List.iter
    (fun (r : Analysis.Offload_regions.region) ->
      add "region %s#%d (loop over %s):\n" r.func r.ordinal r.loop.index;
      (match r.spec with
      | Some spec ->
          add "  offloaded to mic:%d (%d in, %d out, %d inout clauses)\n"
            spec.target (List.length spec.ins) (List.length spec.outs)
            (List.length spec.inouts)
      | None ->
          let violations = Analysis.Depend.check r.loop in
          if violations = [] then
            add "  candidate for offload insertion (provably parallel)\n"
          else
            add "  not offloadable: %s\n"
              (String.concat "; "
                 (List.map
                    (Format.asprintf "%a" Analysis.Depend.pp_violation)
                    violations)));
      (match Transforms.Streaming.analyze prog r with
      | Ok info ->
          add "  data streaming: applicable (%d arrays, %d streamed)\n"
            (List.length info.Transforms.Streaming.arrays)
            (List.length
               (List.filter
                  (fun (a : Transforms.Streaming.arr_info) -> a.coeff >= 1)
                  info.Transforms.Streaming.arrays))
      | Error e ->
          add "  data streaming: not applicable (%s)\n"
            (Format.asprintf "%a" Transforms.Streaming.pp_failure e));
      if Transforms.Shared_mem.applicable prog r then
        add
          "  shared memory: pointer-based clauses; rewriting to \
           preallocated translated DMA\n";
      let kinds = Transforms.Regularize.applicable_kinds prog r in
      if kinds = [] then add "  regularization: nothing to regularize\n"
      else
        add "  regularization: %s\n"
          (String.concat ", "
             (List.map
                (function
                  | Transforms.Regularize.Reorder -> "array reordering"
                  | Transforms.Regularize.Split -> "loop splitting"
                  | Transforms.Regularize.Soa -> "AoS-to-SoA")
                kinds));
      match Transforms.Vectorize.check r.loop with
      | Ok () -> add "  vectorization: legal (512-bit SIMD usable)\n"
      | Error b ->
          add "  vectorization: blocked (%s)\n"
            (Format.asprintf "%a" Transforms.Vectorize.pp_blocker b))
    regions;
  let sites = Transforms.Merge_offload.sites prog in
  List.iter
    (fun (s : Transforms.Merge_offload.site) ->
      add "merge site in %s: %d offloads inside one sequential loop\n"
        s.func (List.length s.specs))
    sites;
  Buffer.contents buf
