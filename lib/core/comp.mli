(** COMP: compiler optimizations for manycore processors — the public
    driver.

    Ties together the MiniC front end, the analyses, the three
    source-to-source optimizations of the paper (data streaming,
    regularization, the segmented shared-memory mechanism) and the
    machine simulator.

    {[
      let prog = Minic.Parser.program_of_string_exn source in
      let optimized, report = Comp.optimize prog in
      print_string (Minic.Pretty.program_to_string optimized);
      (* timing on the simulated host + MIC *)
      let w = Workloads.Registry.find_exn "blackscholes" in
      Printf.printf "%.3f s\n" (Comp.simulate w Comp.Mic_optimized)
    ]} *)

(** {1 Source-to-source optimization} *)

(** What the pass pipeline did to a program. *)
type applied = {
  offloads_inserted : int;  (** Apricot-style offload insertion *)
  shared_rewritten : int;
      (** pointer-based offloads rewritten to translated DMA
          (Section V as a source-to-source pass) *)
  regularized : (string * Transforms.Regularize.kind) list;
  merged : int;  (** offload-merging sites rewritten *)
  streamed : int;  (** loops rewritten for data streaming *)
  vectorized : int;  (** loops annotated [omp simd] *)
  resident : int;
      (** transfers elided or hoisted by the inter-offload residency
          pass *)
}

val pp_applied : Format.formatter -> applied -> unit

(** Pipeline passes, in their fixed order. *)
type pass =
  | Insert_offload
  | Shared_memory
  | Regularization
  | Merge_offloads
  | Data_streaming
  | Vectorization

val all_passes : pass list
val pass_name : pass -> string
val pass_of_name : string -> pass option

val optimize :
  ?opt:Opt.pass list ->
  ?obs:Obs.t ->
  ?residency:bool ->
  ?passes:pass list ->
  ?nblocks:int ->
  ?memory:Transforms.Streaming.memory ->
  Minic.Ast.program ->
  Minic.Ast.program * applied
(** The pipeline: offload insertion -> shared memory -> regularization
    -> offload merging -> data streaming -> vectorization annotation.
    The order matters: regularization enables streaming (Section IV),
    merging must see the individual offloads before streaming rewrites
    them, and the shared-memory rewrite must pull pointer-bearing
    arrays out of the clauses before streaming could slice them.
    [passes] restricts the pipeline; the relative order stays fixed.

    [opt] runs the classic optimizer mid-end ({!Opt.run}) with the
    given passes {e before} the source-to-source pipeline, so the
    paper's transforms see folded bounds and hoisted invariants; it is
    off by default.  With [obs], the mid-end records its
    [opt.<pass>.fired] / [opt.<pass>.blocked.<reason>] counters there
    (rendered by {!Opt.report}).

    [residency] runs the inter-offload data-residency pass
    ({!Residency.transform}) {e after} the pipeline, eliding transfers
    whose sections are already device-resident and hoisting
    loop-invariant transfers; counters land under [residency.*] /
    [clause.*] (rendered by {!Residency.report}).  Off by default. *)

(** {1 Applicability analysis (Table II)} *)

type applicability = {
  streaming : bool;
  merging : bool;
  regularization : Transforms.Regularize.kind list;
  shared_memory : bool;
}

val analyze : Workloads.Workload.t -> applicability
(** Which optimizations apply to a workload, decided by the real
    analyses running on its kernel source.  (Shared memory is an
    allocation-site property carried by the workload's shape.) *)

(** {1 Simulation} *)

type variant =
  | Cpu_parallel  (** the original multicore OpenMP version *)
  | Mic_naive  (** pragmas added, nothing else (Figure 1) *)
  | Mic_optimized  (** all applicable COMP optimizations *)
  | Mic_with of Runtime.Plan.strategy * Runtime.Plan.shape
      (** explicit strategy/shape, for ablations *)

val default_nblocks : int

val default_seg_bytes : int
(** 256 MB — the granularity the paper observes gives ferret 7.81x. *)

val plan_of_variant :
  Workloads.Workload.t ->
  applicability ->
  variant ->
  Runtime.Plan.strategy * Runtime.Plan.shape
(** The execution strategy a variant uses, and the shape it runs
    against (regularization changes the shape: packed transfers,
    different kernel behaviour). *)

val simulate :
  ?obs:Obs.t -> ?cfg:Machine.Config.t -> Workloads.Workload.t -> variant -> float
(** Whole-application time on the simulated machine. *)

val simulate_region :
  ?obs:Obs.t -> ?cfg:Machine.Config.t -> Workloads.Workload.t -> variant -> float
(** Offload-region time only (no host serial part). *)

val simulate_recovered :
  ?obs:Obs.t ->
  ?cfg:Machine.Config.t ->
  Workloads.Workload.t ->
  variant ->
  float * Runtime.Schedule_gen.recovered
(** Whole-application time with [cfg.fault] injected and device death
    absorbed by the CPU fallback when the policy allows it.  Without
    [cpu_fallback] an unrecoverable death escapes as
    {!Fault.Device_dead}. *)

val schedule :
  ?obs:Obs.t ->
  ?cfg:Machine.Config.t ->
  Workloads.Workload.t ->
  variant ->
  Machine.Engine.result
(** With [?obs], every counter/span the runtime and engine record lands
    in the given sink — the substrate of [compc --profile]. *)

val device_bytes : Workloads.Workload.t -> variant -> float
(** Device memory footprint of a variant (Figure 13). *)

(** {1 Diagnostics} *)

val explain : Minic.Ast.program -> string
(** Per-region account of what the compiler decided and why — the
    [compc analyze] output. *)
