lib/analysis/depend.ml: Access Format Hashtbl List Liveness Minic
