lib/analysis/simplify.mli: Minic
