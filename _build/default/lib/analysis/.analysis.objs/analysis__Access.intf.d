lib/analysis/access.mli: Affine Minic
