lib/analysis/liveness.ml: List Minic Set String
