lib/analysis/offload_regions.ml: Depend List Minic Option
