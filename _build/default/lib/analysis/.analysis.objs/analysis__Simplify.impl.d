lib/analysis/simplify.ml: List Minic Option String
