lib/analysis/affine.mli: Format Minic
