lib/analysis/offload_regions.mli: Minic
