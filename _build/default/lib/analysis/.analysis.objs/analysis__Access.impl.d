lib/analysis/access.ml: Affine Hashtbl List Liveness Minic
