lib/analysis/liveness.mli: Minic Set
