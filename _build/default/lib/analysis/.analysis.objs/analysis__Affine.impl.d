lib/analysis/affine.ml: Format Minic Option Simplify String
