lib/analysis/depend.mli: Format Minic
