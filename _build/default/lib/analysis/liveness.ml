(** Variable use/def analysis, the Apricot-style machinery behind
    automatic [in]/[out]/[inout] clause inference for offloaded regions.
    Locally declared variables are excluded from the sets: only data
    crossing the region boundary needs transferring. *)

open Minic.Ast
module SS = Set.Make (String)

type info = {
  uses : SS.t;  (** variables read from the enclosing scope *)
  defs : SS.t;  (** variables written in the enclosing scope *)
  decls : SS.t;  (** variables declared inside the region *)
}

let empty = { uses = SS.empty; defs = SS.empty; decls = SS.empty }

let union a b =
  {
    uses = SS.union a.uses b.uses;
    defs = SS.union a.defs b.defs;
    decls = SS.union a.decls b.decls;
  }

let expr_uses e = SS.of_list (expr_vars e)

(* base variable of an lvalue: writing a[i] or *p or p->f defines (part
   of) the object named by the base variable *)
let rec lvalue_base = function
  | Var v -> Some v
  | Index (a, _) -> lvalue_base a
  | Field (a, _) -> lvalue_base a
  | Arrow (a, _) -> lvalue_base a
  | Deref a -> lvalue_base a
  | _ -> None

(* Index/pointer sub-expressions of an lvalue are themselves reads.
   The written object's own name is NOT a read: [b[i] = e] only defines
   b (reading the base pointer to compute the address does not make the
   array's contents an input, and counting it would turn every output
   clause into inout). *)
let rec lvalue_reads = function
  | Var _ -> SS.empty
  | Index (a, i) -> SS.union (lvalue_reads a) (expr_uses i)
  | Field (a, _) -> lvalue_reads a
  | Arrow (a, _) | Deref a -> expr_uses a
  | e -> expr_uses e

let rec of_stmt acc stmt =
  match stmt with
  | Sexpr e -> { acc with uses = SS.union acc.uses (expr_uses e) }
  | Sassign (lv, rv) ->
      let defs =
        match lvalue_base lv with
        | Some v -> SS.add v acc.defs
        | None -> acc.defs
      in
      {
        acc with
        uses = SS.union acc.uses (SS.union (lvalue_reads lv) (expr_uses rv));
        defs;
      }
  | Sdecl (t, name, init) ->
      let uses =
        match init with
        | Some e -> SS.union acc.uses (expr_uses e)
        | None -> acc.uses
      in
      let uses =
        match t with
        | Tarray (_, Some n) -> SS.union uses (expr_uses n)
        | _ -> uses
      in
      { acc with uses; decls = SS.add name acc.decls }
  | Sif (c, b1, b2) ->
      let acc = { acc with uses = SS.union acc.uses (expr_uses c) } in
      of_block (of_block acc b1) b2
  | Swhile (c, b) ->
      of_block { acc with uses = SS.union acc.uses (expr_uses c) } b
  | Sfor { index; lo; hi; step; body } ->
      let uses =
        SS.union acc.uses
          (SS.union (expr_uses lo) (SS.union (expr_uses hi) (expr_uses step)))
      in
      let inner = of_block { acc with uses } body in
      { inner with decls = SS.add index inner.decls }
  | Sreturn (Some e) -> { acc with uses = SS.union acc.uses (expr_uses e) }
  | Sreturn None | Sbreak | Scontinue -> acc
  | Sblock b -> of_block acc b
  | Spragma (p, s) ->
      let acc =
        match p with
        | Offload spec | Offload_transfer spec ->
            let section_uses s =
              SS.add s.arr (SS.union (expr_uses s.start) (expr_uses s.len))
            in
            let uses =
              List.fold_left
                (fun u s -> SS.union u (section_uses s))
                acc.uses
                (spec.ins @ spec.outs @ spec.inouts)
            in
            { acc with uses }
        | _ -> acc
      in
      of_stmt acc s

and of_block acc block = List.fold_left of_stmt acc block

(** Use/def information for a region, with locally declared names
    removed. *)
let of_region block =
  let raw = of_block empty block in
  {
    uses = SS.diff raw.uses raw.decls;
    defs = SS.diff raw.defs raw.decls;
    decls = raw.decls;
  }

(** Partition the boundary-crossing variables of a region into the
    LEO clause roles, given a predicate identifying array-typed
    variables (scalars are copied automatically by the offload
    runtime and need no clause). *)
let clause_roles ~is_array block =
  let info = of_region block in
  let arrays_used = SS.filter is_array info.uses in
  let arrays_defd = SS.filter is_array info.defs in
  let inout = SS.inter arrays_used arrays_defd in
  let ins = SS.diff arrays_used inout in
  let outs = SS.diff arrays_defd inout in
  (SS.elements ins, SS.elements outs, SS.elements inout)
