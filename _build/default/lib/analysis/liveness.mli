(** Variable use/def analysis — the Apricot-style machinery behind
    automatic [in]/[out]/[inout] clause inference for offloaded
    regions.  Locally declared variables are excluded: only data
    crossing the region boundary needs transferring. *)

module SS : Set.S with type elt = string

type info = {
  uses : SS.t;  (** variables read from the enclosing scope *)
  defs : SS.t;  (** variables written in the enclosing scope *)
  decls : SS.t;  (** variables declared inside the region *)
}

val empty : info
val union : info -> info -> info

val of_stmt : info -> Minic.Ast.stmt -> info
val of_block : info -> Minic.Ast.block -> info
(** Accumulate raw use/def/decl sets (no local filtering). *)

val of_region : Minic.Ast.block -> info
(** Use/def information for a region, with locally declared names
    removed from [uses]/[defs]. *)

val clause_roles :
  is_array:(string -> bool) ->
  Minic.Ast.block ->
  string list * string list * string list
(** Partition the boundary-crossing arrays of a region into LEO clause
    roles [(ins, outs, inouts)].  Scalars are copied automatically by
    the offload runtime and get no clause. *)
