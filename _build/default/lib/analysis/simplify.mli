(** Smart constructors with constant folding.

    Used by the analyses (to normalize affine offsets) and by the
    transformations (so generated source stays readable). *)

val add : Minic.Ast.expr -> Minic.Ast.expr -> Minic.Ast.expr
val sub : Minic.Ast.expr -> Minic.Ast.expr -> Minic.Ast.expr
val mul : Minic.Ast.expr -> Minic.Ast.expr -> Minic.Ast.expr
val div : Minic.Ast.expr -> Minic.Ast.expr -> Minic.Ast.expr
val modulo : Minic.Ast.expr -> Minic.Ast.expr -> Minic.Ast.expr

val const_int : Minic.Ast.expr -> int option
(** Fold a closed integer expression to its value. *)

val expr : Minic.Ast.expr -> Minic.Ast.expr
(** Recursively simplify the integer arithmetic of an expression,
    including the [imin]/[imax] builtins the transformations
    generate. *)

val mentions : string -> Minic.Ast.expr -> bool
(** Does the expression read the named variable? *)
