(** Identification of offloadable / offloaded code regions — the part
    of Apricot that finds the parallel loops worth shipping to the
    coprocessor. *)

type region = {
  func : string;
  ordinal : int;  (** position among regions of the same function *)
  loop : Minic.Ast.for_loop;
  spec : Minic.Ast.offload_spec option;
      (** [Some] when the loop already carries [#pragma offload] *)
  parallel_pragma : bool;  (** has [#pragma omp parallel for] *)
}

val peel :
  Minic.Ast.pragma list ->
  Minic.Ast.stmt ->
  (Minic.Ast.pragma list * Minic.Ast.for_loop) option
(** Strip the pragma chain in front of a [for] loop, if any. *)

val of_func : Minic.Ast.func -> region list
val of_program : Minic.Ast.program -> region list
(** All regions, including loops nested inside other regions' bodies
    (but never double-reporting a pragma chain). *)

val candidates : Minic.Ast.program -> region list
(** Parallel loops not yet offloaded that are provably parallel:
    targets for {!Transforms.Insert_offload}. *)

val offloaded : Minic.Ast.program -> region list
(** Regions already carrying an [#pragma offload]. *)
