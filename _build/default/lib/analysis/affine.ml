(** Recognition of affine index expressions [a * i + b], where [i] is a
    given loop index and [b] is loop-invariant.  The paper's data
    streaming legality check (Section III-A) admits a loop only when
    every array index has this shape, because only then can the
    compiler compute which data slice each computation block needs. *)

open Minic.Ast

type t = { coeff : int; offset : expr }
(** index = [coeff * i + offset]; [offset] does not mention [i]. *)

let constant e = { coeff = 0; offset = e }
let index_var = { coeff = 1; offset = Int_lit 0 }

let pp fmt { coeff; offset } =
  Format.fprintf fmt "%d*i + %s" coeff (Minic.Pretty.expr_to_string offset)

(** [of_expr ~index e] recognizes [e] as affine in [index].  Returns
    [None] when [e] involves [index] non-affinely (e.g. [B[i]], [i*i])
    or when a sub-expression is opaque. *)
let rec of_expr ~index e =
  match e with
  | Int_lit _ | Float_lit _ | Bool_lit _ -> Some (constant e)
  | Var v when String.equal v index -> Some index_var
  | Var _ -> Some (constant e)
  | Binop (Add, a, b) -> (
      match (of_expr ~index a, of_expr ~index b) with
      | Some x, Some y ->
          Some
            { coeff = x.coeff + y.coeff; offset = Simplify.add x.offset y.offset }
      | _ -> None)
  | Binop (Sub, a, b) -> (
      match (of_expr ~index a, of_expr ~index b) with
      | Some x, Some y ->
          Some
            { coeff = x.coeff - y.coeff; offset = Simplify.sub x.offset y.offset }
      | _ -> None)
  | Binop (Mul, a, b) -> (
      match (of_expr ~index a, of_expr ~index b) with
      | Some x, Some y -> (
          (* one side must be a constant for the result to stay affine *)
          match (Simplify.const_int x.offset, Simplify.const_int y.offset) with
          | Some k, _ when x.coeff = 0 ->
              Some { coeff = k * y.coeff; offset = Simplify.mul (Int_lit k) y.offset }
          | _, Some k when y.coeff = 0 ->
              Some { coeff = k * x.coeff; offset = Simplify.mul x.offset (Int_lit k) }
          | _ ->
              if x.coeff = 0 && y.coeff = 0 then
                Some (constant (Simplify.mul x.offset y.offset))
              else None)
      | _ -> None)
  | Binop ((Div | Mod), a, b) ->
      (* affine only when the index is not involved at all *)
      if Simplify.mentions index a || Simplify.mentions index b then None
      else Some (constant (Simplify.expr e))
  | Unop (Neg, a) ->
      Option.map
        (fun x ->
          { coeff = -x.coeff; offset = Simplify.sub (Int_lit 0) x.offset })
        (of_expr ~index a)
  | Index _ | Field _ | Arrow _ | Deref _ | Addr _ | Call _ | Cast _
  | Binop _ | Unop _ ->
      if Simplify.mentions index e then None else Some (constant e)

(** Rebuild the expression [coeff * i + offset]. *)
let to_expr ~index { coeff; offset } =
  Simplify.add (Simplify.mul (Int_lit coeff) (Var index)) offset

(** Is this a unit-stride access [i + b]? *)
let unit_stride t = t.coeff = 1

(** Is the access loop-invariant (does not move with the index)? *)
let invariant t = t.coeff = 0
