(** Recognition of affine index expressions [a * i + b], where [i] is a
    given loop index and [b] is loop-invariant.

    The paper's data-streaming legality check (Section III-A) admits a
    loop only when every array index has this shape, because only then
    can the compiler compute which data slice each computation block
    needs. *)

type t = { coeff : int; offset : Minic.Ast.expr }
(** index = [coeff * i + offset]; [offset] does not mention [i]. *)

val constant : Minic.Ast.expr -> t
(** Coefficient 0: a loop-invariant index. *)

val index_var : t
(** The bare index [i]: coefficient 1, offset 0. *)

val pp : Format.formatter -> t -> unit

val of_expr : index:string -> Minic.Ast.expr -> t option
(** Recognize an expression as affine in [index]; [None] when the
    index occurs non-affinely ([B[i]], [i*i], [n*i] with variable [n],
    ...). *)

val to_expr : index:string -> t -> Minic.Ast.expr
(** Rebuild [coeff * i + offset] (simplified). *)

val unit_stride : t -> bool
val invariant : t -> bool
