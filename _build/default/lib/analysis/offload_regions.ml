(** Identification of offloadable / offloaded code regions in a
    program — the part of Apricot that finds the parallel loops worth
    shipping to the coprocessor. *)

open Minic.Ast

type region = {
  func : string;
  ordinal : int;  (** position among regions of the same function *)
  loop : for_loop;
  spec : offload_spec option;
      (** [Some] when the loop is already wrapped in [#pragma offload] *)
  parallel_pragma : bool;  (** has [#pragma omp parallel for] *)
}

(* peel pragmas in front of a for loop *)
let rec peel pragmas stmt =
  match stmt with
  | Spragma (p, s) -> peel (p :: pragmas) s
  | Sfor fl -> Some (List.rev pragmas, fl)
  | _ -> None

let of_func (f : func) =
  let counter = ref 0 in
  let regions = ref [] in
  (* Explicit recursion rather than [fold_stmts]: once a pragma chain
     is recognized as a region, its inner pragma nodes must not be
     reported as separate (spec-less) regions — descend straight into
     the loop body instead. *)
  let rec visit_stmt stmt =
    match peel [] stmt with
    | Some (pragmas, fl) when pragmas <> [] ->
        let spec =
          List.find_map
            (function Offload s -> Some s | _ -> None)
            pragmas
        in
        let parallel_pragma = List.mem Omp_parallel_for pragmas in
        if parallel_pragma || Option.is_some spec then begin
          let r =
            { func = f.fname; ordinal = !counter; loop = fl; spec;
              parallel_pragma }
          in
          incr counter;
          regions := r :: !regions
        end;
        visit_block fl.body
    | _ -> (
        match stmt with
        | Sif (_, b1, b2) ->
            visit_block b1;
            visit_block b2
        | Swhile (_, b) -> visit_block b
        | Sfor fl -> visit_block fl.body
        | Sblock b -> visit_block b
        | Spragma (_, s) -> visit_stmt s
        | Sexpr _ | Sassign _ | Sdecl _ | Sreturn _ | Sbreak | Scontinue ->
            ())
  and visit_block b = List.iter visit_stmt b in
  visit_block f.body;
  List.rev !regions

(** All offload regions (existing or candidate) of a program. *)
let of_program prog =
  List.concat_map
    (function Gfunc f -> of_func f | Gstruct _ | Gvar _ -> [])
    prog

(** Candidate regions: parallel loops that are not yet offloaded but
    are provably parallel and therefore offloadable. *)
let candidates prog =
  List.filter
    (fun r ->
      r.parallel_pragma && Option.is_none r.spec && Depend.is_parallel r.loop)
    (of_program prog)

(** Regions already carrying an [#pragma offload]. *)
let offloaded prog = List.filter (fun r -> Option.is_some r.spec) (of_program prog)
