(** Conservative cross-iteration dependence check for candidate
    parallel loops.  The paper assumes the input loops are already
    parallel ([#pragma omp parallel for]); this check lets the compiler
    refuse obviously bogus annotations and, more importantly, justifies
    the regularization rewrites, which are only sound for loops with no
    cross-iteration dependences (Section IV). *)

open Minic.Ast

type violation =
  | Scalar_write of string
      (** a scalar from the enclosing scope is written (potential
          reduction or loop-carried dependence) *)
  | Non_affine_write of string
      (** written array element cannot be proven distinct per iteration *)
  | Invariant_write of string  (** every iteration writes the same cell *)
  | Overlapping_writes of string
      (** two affine writes to the same array may collide across
          iterations *)

let pp_violation fmt = function
  | Scalar_write v -> Format.fprintf fmt "scalar %s written in loop" v
  | Non_affine_write a ->
      Format.fprintf fmt "array %s written at a non-affine index" a
  | Invariant_write a ->
      Format.fprintf fmt "array %s written at a loop-invariant index" a
  | Overlapping_writes a ->
      Format.fprintf fmt "array %s has potentially overlapping writes" a

(** Check a loop for cross-iteration write conflicts.  Returns the
    empty list when the loop is provably parallel under these rules:
    every write targets either a locally declared variable or an array
    element [a*i + b] with [a <> 0], and no two writes to the same
    array can alias across iterations. *)
let check (fl : for_loop) : violation list =
  let info = Liveness.of_region fl.body in
  let accesses = Access.of_loop fl in
  let scalar_writes =
    (* defs that are never array accesses: scalar assignments *)
    let arrays_written =
      List.filter_map
        (fun (a : Access.t) -> if a.dir = Write then Some a.arr else None)
        accesses
    in
    Liveness.SS.elements info.defs
    |> List.filter (fun v -> not (List.mem v arrays_written))
  in
  let scalar_violations = List.map (fun v -> Scalar_write v) scalar_writes in
  let write_accesses =
    List.filter (fun (a : Access.t) -> a.dir = Write) accesses
  in
  let per_access (a : Access.t) =
    match a.kind with
    | Affine aff ->
        if aff.coeff = 0 then Some (Invariant_write a.arr) else None
    | Gather _ | Opaque -> Some (Non_affine_write a.arr)
  in
  let access_violations = List.filter_map per_access write_accesses in
  (* two affine writes with different coefficients to the same array can
     collide across iterations (e.g. A[i] and A[2*i]) *)
  let coeff_table = Hashtbl.create 4 in
  let overlap_violations =
    List.filter_map
      (fun (a : Access.t) ->
        match a.kind with
        | Affine aff when aff.coeff <> 0 -> (
            match Hashtbl.find_opt coeff_table a.arr with
            | Some c when c <> aff.coeff -> Some (Overlapping_writes a.arr)
            | Some _ -> None
            | None ->
                Hashtbl.add coeff_table a.arr aff.coeff;
                None)
        | _ -> None)
      write_accesses
  in
  scalar_violations @ access_violations @ overlap_violations

let is_parallel fl = check fl = []
