(** Conservative cross-iteration dependence check for candidate
    parallel loops.  Justifies automatic offload insertion and the
    regularization rewrites, which are only sound for loops with no
    cross-iteration dependences (Section IV). *)

type violation =
  | Scalar_write of string
      (** an enclosing-scope scalar is written (reduction or
          loop-carried dependence) *)
  | Non_affine_write of string
      (** written element cannot be proven distinct per iteration *)
  | Invariant_write of string  (** every iteration writes the same cell *)
  | Overlapping_writes of string
      (** two affine writes with different strides may collide *)

val pp_violation : Format.formatter -> violation -> unit

val check : Minic.Ast.for_loop -> violation list
(** Empty iff the loop is provably parallel under these rules. *)

val is_parallel : Minic.Ast.for_loop -> bool
