lib/machine/task.mli:
