lib/machine/engine.mli: Task
