lib/machine/engine.ml: Array Float Hashtbl List Option Printf Task
