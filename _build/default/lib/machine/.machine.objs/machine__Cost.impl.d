lib/machine/cost.ml: Config Float
