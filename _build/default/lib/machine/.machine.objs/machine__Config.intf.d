lib/machine/config.mli:
