lib/machine/trace.mli: Engine Format
