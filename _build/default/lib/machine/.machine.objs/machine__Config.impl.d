lib/machine/config.ml:
