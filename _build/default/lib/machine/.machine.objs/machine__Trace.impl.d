lib/machine/trace.ml: Buffer Bytes Engine Format List Printf Task
