lib/machine/task.ml: Float List
