(** Human-readable rendering of engine schedules: a per-resource
    summary and an optional text Gantt chart (used by the CLI's [run]
    subcommand). *)

let pp_summary fmt (r : Engine.result) =
  Format.fprintf fmt "makespan: %.6f s@." r.makespan;
  List.iter
    (fun (res, busy) ->
      let util = if r.makespan > 0. then 100. *. busy /. r.makespan else 0. in
      Format.fprintf fmt "  %-4s busy %.6f s (%.1f%%)@."
        (Task.resource_name res) busy util)
    r.busy

(** Text Gantt chart: one row per resource, [width] columns spanning
    the makespan. *)
let gantt ?(width = 72) (r : Engine.result) =
  let buf = Buffer.create 1024 in
  if r.makespan <= 0. then "(empty schedule)\n"
  else begin
    let scale = float_of_int width /. r.makespan in
    List.iter
      (fun res ->
        let row = Bytes.make width '.' in
        List.iter
          (fun (p : Engine.placed) ->
            if p.task.Task.resource = res then begin
              let s = int_of_float (p.start *. scale) in
              let f =
                min (width - 1) (int_of_float (p.finish *. scale))
              in
              for i = min s (width - 1) to f do
                Bytes.set row i
                  (match res with
                  | Task.Cpu_exec -> 'C'
                  | Task.Mic_exec -> 'K'
                  | Task.Pcie_h2d -> '>'
                  | Task.Pcie_d2h -> '<')
              done
            end)
          r.placed;
        Buffer.add_string buf
          (Printf.sprintf "%-4s |%s|\n" (Task.resource_name res)
             (Bytes.to_string row)))
      Task.all_resources;
    Buffer.contents buf
  end

(** The busiest [n] tasks, for quick diagnosis. *)
let top_tasks ?(n = 8) (r : Engine.result) =
  let sorted =
    List.sort
      (fun (a : Engine.placed) b ->
        compare b.task.Task.duration a.task.Task.duration)
      r.placed
  in
  List.filteri (fun i _ -> i < n) sorted
