(** Human-readable rendering of engine schedules. *)

val pp_summary : Format.formatter -> Engine.result -> unit
(** Makespan plus per-resource busy time and utilization. *)

val gantt : ?width:int -> Engine.result -> string
(** Text Gantt chart: one row per resource ([C] host, [K] kernels,
    [>] h2d, [<] d2h), [width] columns spanning the makespan. *)

val top_tasks : ?n:int -> Engine.result -> Engine.placed list
(** The [n] longest tasks, for quick diagnosis. *)
