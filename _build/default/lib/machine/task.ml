(** Tasks for the discrete-event engine.  A task occupies one resource
    for a fixed duration and may depend on other tasks. *)

type resource =
  | Cpu_exec  (** host cores: sequential glue, repacking *)
  | Mic_exec  (** device cores: offloaded kernels *)
  | Pcie_h2d  (** host-to-device DMA channel *)
  | Pcie_d2h  (** device-to-host DMA channel *)

let all_resources = [ Cpu_exec; Mic_exec; Pcie_h2d; Pcie_d2h ]

let resource_name = function
  | Cpu_exec -> "cpu"
  | Mic_exec -> "mic"
  | Pcie_h2d -> "h2d"
  | Pcie_d2h -> "d2h"

type t = {
  id : int;
  label : string;
  resource : resource;
  duration : float;  (** seconds; must be >= 0 *)
  deps : int list;  (** ids of tasks that must finish first *)
}

(** Monotonic id supply for building task graphs. *)
type builder = { mutable next_id : int; mutable tasks : t list }

let builder () = { next_id = 0; tasks = [] }

let add b ?(deps = []) ~label ~resource ~duration () =
  let id = b.next_id in
  b.next_id <- id + 1;
  let t = { id; label; resource; duration = Float.max 0. duration; deps } in
  b.tasks <- t :: b.tasks;
  id

let tasks b = List.rev b.tasks
