(** Shared experiment context: the machine configuration and the
    per-workload timing triple (CPU / naive MIC / optimized MIC) that
    Figures 1, 10 and 11 are built from. *)

val cfg : Machine.Config.t

type timing = {
  w : Workloads.Workload.t;
  cpu_s : float;
  naive_s : float;
  opt_s : float;
}

val timing : Workloads.Workload.t -> timing
val all_timings : unit -> timing list

val streaming_pair : Workloads.Workload.t -> Comp.variant * Comp.variant
(** (baseline, streamed) variants for Figures 12/13.  For merged
    benchmarks, streaming means overlapping the merged offload's
    up-front transfer, matching how the optimizations compose. *)

val streaming_benchmarks : unit -> Workloads.Workload.t list
val merging_benchmarks : unit -> Workloads.Workload.t list
val regularization_benchmarks : unit -> Workloads.Workload.t list
val shared_benchmarks : unit -> Workloads.Workload.t list
