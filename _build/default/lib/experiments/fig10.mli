(** Figure 10: whole-application speedups over the parallel CPU
    version (CPU = 1, MIC naive, MIC optimized). *)

type row = { name : string; cpu : float; mic_naive : float; mic_opt : float }

val rows : unit -> row list
val print : unit -> unit
