(** Figure 11: optimized over unoptimized MIC speedups
    (paper: 9 of 12 improved, 1.16x-52.21x, three above 16x). *)

type row = { name : string; speedup : float; paper : float option }

val rows : unit -> row list
val print : unit -> unit
