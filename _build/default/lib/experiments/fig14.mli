(** Figure 14: gains from offload merging (paper average 27.13x). *)

type row = { name : string; speedup : float; paper : float option }

val rows : unit -> row list
val print : unit -> unit
