(** Figure 13: device memory usage of the double-buffered streamed
    version, relative to the original offload (paper: >80% reduction on
    every streaming benchmark). *)

type row = { name : string; relative : float }

let rows () =
  List.map
    (fun (w : Workloads.Workload.t) ->
      let shape = w.shape in
      let streamed =
        Runtime.Plan.streamed ~nblocks:Comp.default_nblocks
          ~double_buffered:true ()
      in
      { name = w.name; relative = Runtime.Mem_usage.relative shape streamed })
    (Context.streaming_benchmarks ())

let print () =
  let rows = rows () in
  Tables.print
    ~align:[ Tables.L; Tables.R ]
    ~title:
      "Figure 13: MIC memory usage with data streaming (relative to original)"
    ~header:[ "benchmark"; "mem usage" ]
    (List.map (fun r -> [ r.name; Tables.pct r.relative ]) rows
    @ [
        [
          "average";
          Tables.pct (Tables.average (List.map (fun r -> r.relative) rows));
        ];
      ])
