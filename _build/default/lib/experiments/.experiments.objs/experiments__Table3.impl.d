lib/experiments/table3.ml: Comp Context Format List Machine Myo Option Plan Runtime Schedule_gen Tables Workloads
