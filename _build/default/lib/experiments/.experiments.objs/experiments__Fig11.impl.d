lib/experiments/fig11.ml: Context List Printf Tables Workloads
