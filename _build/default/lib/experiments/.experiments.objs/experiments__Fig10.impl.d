lib/experiments/fig10.ml: Context List Printf Tables Workloads
