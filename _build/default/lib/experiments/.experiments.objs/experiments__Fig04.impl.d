lib/experiments/fig04.ml: Context List Machine Runtime Tables Workloads
