lib/experiments/fig12.ml: Comp Context List Tables Workloads
