lib/experiments/sensitivity.ml: Comp Context List Machine Printf Runtime Tables Workloads
