lib/experiments/fig14.ml: Comp Context List Runtime Tables Workloads
