lib/experiments/fig04.mli:
