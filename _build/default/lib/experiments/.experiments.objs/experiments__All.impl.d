lib/experiments/all.ml: Fig01 Fig04 Fig10 Fig11 Fig12 Fig13 Fig14 Fig15 List Sensitivity Table2 Table3
