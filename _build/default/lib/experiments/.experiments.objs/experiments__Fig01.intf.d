lib/experiments/fig01.mli:
