lib/experiments/table2.ml: Comp List Printf Tables Workloads
