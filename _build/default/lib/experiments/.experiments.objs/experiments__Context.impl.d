lib/experiments/context.ml: Comp List Machine Runtime Workloads
