lib/experiments/fig14.mli:
