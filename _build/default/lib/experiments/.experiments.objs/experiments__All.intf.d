lib/experiments/all.mli:
