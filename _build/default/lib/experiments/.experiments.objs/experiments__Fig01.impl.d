lib/experiments/fig01.ml: Context List Printf Tables Workloads
