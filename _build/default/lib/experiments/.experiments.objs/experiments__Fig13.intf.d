lib/experiments/fig13.mli:
