lib/experiments/fig13.ml: Comp Context List Runtime Tables Workloads
