lib/experiments/fig15.ml: Comp Context List Runtime Tables Workloads
