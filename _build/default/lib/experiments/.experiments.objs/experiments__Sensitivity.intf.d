lib/experiments/sensitivity.mli:
