lib/experiments/tables.mli:
