lib/experiments/context.mli: Comp Machine Workloads
