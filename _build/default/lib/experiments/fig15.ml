(** Figure 15: performance gains from regularization alone — array
    reordering for nn (removes unnecessary transfer), loop splitting +
    vectorization for srad (paper average: 1.25x). *)

type row = { name : string; speedup : float; paper : float option }

let rows () =
  List.filter_map
    (fun (w : Workloads.Workload.t) ->
      match w.regularized with
      | None -> None
      | Some r ->
          let t0 =
            Comp.simulate ~cfg:Context.cfg w
              (Comp.Mic_with (Runtime.Plan.Naive_offload, w.shape))
          in
          (* regularization alone: same naive execution, rewritten loop.
             The host-side repack (nn's pack loop) is serial work before
             the offload; srad's static split has no runtime cost. *)
          let repack_s =
            r.repack.Runtime.Plan.repack_s_per_block
            *. float_of_int Comp.default_nblocks
          in
          let reg_shape =
            {
              r.reg_shape with
              Runtime.Plan.host_serial_s =
                r.reg_shape.Runtime.Plan.host_serial_s +. repack_s;
            }
          in
          let t1 =
            Comp.simulate ~cfg:Context.cfg w
              (Comp.Mic_with (Runtime.Plan.Naive_offload, reg_shape))
          in
          Some
            {
              name = w.name;
              speedup = t0 /. t1;
              paper = w.paper.Workloads.Workload.p_regularization;
            })
    Workloads.Registry.all

let print () =
  let rows = rows () in
  Tables.print
    ~align:[ Tables.L; Tables.R; Tables.R ]
    ~title:"Figure 15: performance gains by regularization"
    ~header:[ "benchmark"; "measured"; "paper" ]
    (List.map
       (fun r -> [ r.name; Tables.f2 r.speedup; Tables.opt_f2 r.paper ])
       rows
    @ [
        [
          "average";
          Tables.f2 (Tables.average (List.map (fun r -> r.speedup) rows));
          "1.25";
        ];
      ])
