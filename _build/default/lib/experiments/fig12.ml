(** Figure 12: performance gains from data streaming alone, on the five
    benchmarks it applies to (paper average: 1.45x). *)

type row = { name : string; speedup : float; paper : float option }

let rows () =
  List.map
    (fun (w : Workloads.Workload.t) ->
      let base, streamed = Context.streaming_pair w in
      let t0 = Comp.simulate ~cfg:Context.cfg w base in
      let t1 = Comp.simulate ~cfg:Context.cfg w streamed in
      {
        name = w.name;
        speedup = t0 /. t1;
        paper = w.paper.Workloads.Workload.p_streaming;
      })
    (Context.streaming_benchmarks ())

let print () =
  let rows = rows () in
  Tables.print
    ~align:[ Tables.L; Tables.R; Tables.R ]
    ~title:"Figure 12: performance gains by data streaming"
    ~header:[ "benchmark"; "measured"; "paper" ]
    (List.map
       (fun r -> [ r.name; Tables.f2 r.speedup; Tables.opt_f2 r.paper ])
       rows
    @ [
        [
          "average";
          Tables.f2 (Tables.average (List.map (fun r -> r.speedup) rows));
          "1.45";
        ];
      ])
