(** Table II: benchmark inventory and per-optimization applicability —
    decided by the actual compiler analyses running on each workload's
    kernel source. *)

type row = {
  name : string;
  suite : string;
  input : string;
  kloc : float;
  streaming : bool;
  merging : bool;
  regularization : bool;
  shared : bool;
}

let row (w : Workloads.Workload.t) =
  let a = Comp.analyze w in
  {
    name = w.name;
    suite = w.suite;
    input = w.input_desc;
    kloc = w.kloc;
    streaming = a.Comp.streaming;
    merging = a.Comp.merging;
    regularization = a.Comp.regularization <> [];
    shared = a.Comp.shared_memory;
  }

let rows () = List.map row Workloads.Registry.all

(* the paper's Table II applicability matrix, for the self-check *)
let paper_matrix =
  [
    ("blackscholes", (true, false, false, false));
    ("streamcluster", (true, true, false, false));
    ("ferret", (false, false, false, true));
    ("dedup", (false, false, false, false));
    ("freqmine", (false, false, false, true));
    ("kmeans", (true, false, false, false));
    ("cg", (true, true, false, false));
    ("cfd", (false, true, false, false));
    ("nn", (true, false, true, false));
    ("srad", (false, false, true, false));
    ("bfs", (false, false, false, false));
    ("hotspot", (false, false, false, false));
  ]

let matches_paper (r : row) =
  match List.assoc_opt r.name paper_matrix with
  | None -> false
  | Some (s, m, g, h) ->
      r.streaming = s && r.merging = m && r.regularization = g
      && r.shared = h

let print () =
  let mark b = if b then "yes" else "-" in
  let rows = rows () in
  Tables.print
    ~title:
      "Table II: benchmarks and optimization applicability (compiler-decided)"
    ~header:
      [
        "benchmark"; "source"; "input"; "kloc"; "streaming"; "merging";
        "regular."; "shared mem"; "matches paper";
      ]
    (List.map
       (fun r ->
         [
           r.name;
           r.suite;
           r.input;
           Printf.sprintf "%.3f" r.kloc;
           mark r.streaming;
           mark r.merging;
           mark r.regularization;
           mark r.shared;
           (if matches_paper r then "yes" else "NO");
         ])
       rows);
  let ok = List.length (List.filter matches_paper rows) in
  Printf.printf "applicability matrix matches the paper: %d / %d rows\n" ok
    (List.length rows)
