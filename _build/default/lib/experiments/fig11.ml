(** Figure 11: speedup of the optimized MIC version over the
    unoptimized MIC version.  Paper: 9 of 12 benchmarks improve,
    1.16x–52.21x, with streamcluster, CG and cfd above 16x. *)

type row = { name : string; speedup : float; paper : float option }

let rows () =
  List.map
    (fun (t : Context.timing) ->
      {
        name = t.w.Workloads.Workload.name;
        speedup = t.naive_s /. t.opt_s;
        paper = t.w.Workloads.Workload.paper.Workloads.Workload.p_overall;
      })
    (Context.all_timings ())

let print () =
  let rows = rows () in
  let improved = List.filter (fun r -> r.speedup > 1.01) rows in
  Tables.print
    ~align:[ Tables.L; Tables.R; Tables.R ]
    ~title:"Figure 11: speedup of optimized over unoptimized MIC versions"
    ~header:[ "benchmark"; "measured"; "paper" ]
    (List.map
       (fun r -> [ r.name; Tables.f2 r.speedup; Tables.opt_f2 r.paper ])
       rows
    @ [
        [
          "average (improved)";
          Tables.f2 (Tables.average (List.map (fun r -> r.speedup) improved));
          "-";
        ];
      ]);
  Printf.printf "benchmarks improved: %d / 12 (paper: 9); >16x: %d (paper: 3)\n"
    (List.length improved)
    (List.length (List.filter (fun r -> r.speedup > 16.) rows))
