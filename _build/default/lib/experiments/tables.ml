(** Plain-text table rendering shared by every experiment. *)

type align = L | R

let render ?(align : align list option) ~header rows =
  let all = header :: rows in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  List.iter
    (List.iteri (fun i cell ->
         widths.(i) <- max widths.(i) (String.length cell)))
    all;
  let align =
    match align with
    | Some a when List.length a = ncols -> Array.of_list a
    | _ -> Array.make ncols L
  in
  let pad i cell =
    let w = widths.(i) in
    let n = w - String.length cell in
    match align.(i) with
    | L -> cell ^ String.make n ' '
    | R -> String.make n ' ' ^ cell
  in
  let line row =
    "| " ^ String.concat " | " (List.mapi pad row) ^ " |"
  in
  let sep =
    "|"
    ^ String.concat "|"
        (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "|"
  in
  String.concat "\n" ((line header :: sep :: List.map line rows) @ [ "" ])

let print ?align ~title ~header rows =
  Printf.printf "\n== %s ==\n%s" title (render ?align ~header rows)

let f2 x = Printf.sprintf "%.2f" x
let f1 x = Printf.sprintf "%.1f" x
let f3 x = Printf.sprintf "%.3f" x
let pct x = Printf.sprintf "%.0f%%" (100. *. x)

let opt_f2 = function None -> "-" | Some x -> f2 x

(** Geometric-mean-free simple average, as the paper's "average" bars. *)
let average = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)
