(** Figure 12: gains from data streaming alone (paper average 1.45x). *)

type row = { name : string; speedup : float; paper : float option }

val rows : unit -> row list
val print : unit -> unit
