(** Figure 14: performance gains from merging the offloads inside a
    sequential outer loop (paper average: 27.13x on streamcluster, CG
    and cfd). *)

type row = { name : string; speedup : float; paper : float option }

let rows () =
  List.map
    (fun (w : Workloads.Workload.t) ->
      let t0 =
        Comp.simulate ~cfg:Context.cfg w
          (Comp.Mic_with (Runtime.Plan.Naive_offload, w.shape))
      in
      let t1 =
        Comp.simulate ~cfg:Context.cfg w
          (Comp.Mic_with (Runtime.Plan.merged ~streamed:false (), w.shape))
      in
      {
        name = w.name;
        speedup = t0 /. t1;
        paper = w.paper.Workloads.Workload.p_merging;
      })
    (Context.merging_benchmarks ())

let print () =
  let rows = rows () in
  Tables.print
    ~align:[ Tables.L; Tables.R; Tables.R ]
    ~title:"Figure 14: performance gains by offload merging"
    ~header:[ "benchmark"; "measured"; "paper" ]
    (List.map
       (fun r -> [ r.name; Tables.f2 r.speedup; Tables.opt_f2 r.paper ])
       rows
    @ [
        [
          "average";
          Tables.f2 (Tables.average (List.map (fun r -> r.speedup) rows));
          "27.13";
        ];
      ])
