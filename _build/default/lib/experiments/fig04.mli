(** Figure 4: data-transfer vs device-computation time for
    blackscholes, kmeans, nn (normalized by computation). *)

type row = { name : string; transfer_ratio : float; calc_ratio : float }

val benchmarks : string list
val rows : unit -> row list
val print : unit -> unit
