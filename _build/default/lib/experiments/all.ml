(** Run every experiment in paper order. *)

let print_all () =
  Fig01.print ();
  Fig04.print ();
  Table2.print ();
  Fig10.print ();
  Fig11.print ();
  Fig12.print ();
  Fig13.print ();
  Fig14.print ();
  Fig15.print ();
  Table3.print ()

let by_name =
  [
    ("fig1", Fig01.print);
    ("fig4", Fig04.print);
    ("table2", Table2.print);
    ("fig10", Fig10.print);
    ("fig11", Fig11.print);
    ("fig12", Fig12.print);
    ("fig13", Fig13.print);
    ("fig14", Fig14.print);
    ("fig15", Fig15.print);
    ("table3", Table3.print);
    ("sensitivity", Sensitivity.print);
  ]

let names = List.map fst by_name
