(** Run every experiment in paper order. *)

val print_all : unit -> unit
val by_name : (string * (unit -> unit)) list
val names : string list
