(** Sensitivity studies extending the paper: interconnect-bandwidth
    sweep (where streaming stops mattering), the 8 GB memory wall under
    input scaling (what double buffering makes runnable), and full- vs
    half-duplex links (what the d2h/h2d overlap is worth). *)

val bandwidth_rows : unit -> (string * float list) list
(** Streaming gain at 3/6/12/24/48 GB/s per streaming benchmark
    (single-offload shapes). *)

val print_bandwidth : unit -> unit

val memory_wall_rows :
  unit -> (string * int * float * bool * float * bool) list
(** (benchmark, input scale, naive bytes, naive fits, streamed bytes,
    streamed fits). *)

val print_memory_wall : unit -> unit

val duplex_rows : unit -> (string * float * float * float) list
(** (benchmark, full-duplex s, half-duplex s, slowdown). *)

val print_duplex : unit -> unit

val print : unit -> unit
