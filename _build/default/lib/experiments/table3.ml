(** Table III: the shared-memory mechanism versus Intel MYO on the two
    pointer-based benchmarks.  ferret cannot run under MYO at full
    input (80,298 allocations exceed the limit), so — like the paper —
    its speedup is measured on a reduced input (1500 of 3500 images). *)

type row = {
  name : string;
  static_allocs : int;  (** shared allocation sites in the code *)
  dynamic_allocs : int;  (** allocations performed at runtime *)
  shared_mib : float;
  myo_feasible : (unit, Runtime.Myo.error) result;
  speedup : float;  (** segbuf over MYO, on the largest input MYO runs *)
  paper : float option;
  note : string;
}

(* allocation sites in the source (the paper's "Static" column) *)
let static_allocs = function
  | "ferret" -> 19
  | "freqmine" -> 7
  | _ -> 1

let scale_shared (w : Workloads.Workload.t) factor =
  let open Runtime.Plan in
  match w.shape.shared with
  | None -> w.shape
  | Some sh ->
      {
        w.shape with
        iters = int_of_float (float_of_int w.shape.iters *. factor);
        shared =
          Some
            {
              sh with
              shared_bytes =
                int_of_float (float_of_int sh.shared_bytes *. factor);
              shared_allocs =
                int_of_float (float_of_int sh.shared_allocs *. factor);
              objects_touched =
                int_of_float (float_of_int sh.objects_touched *. factor);
            };
      }

let row (w : Workloads.Workload.t) =
  let open Runtime in
  let sh = Option.get w.shape.Plan.shared in
  (* replay the allocations against the MYO model to check feasibility *)
  let myo = Myo.create Context.cfg.Machine.Config.myo in
  let per_alloc = max 1 (sh.Plan.shared_bytes / max 1 sh.Plan.shared_allocs) in
  let feasible =
    let rec go i =
      if i >= sh.Plan.shared_allocs then Ok ()
      else
        match Myo.alloc myo per_alloc with
        | Ok _ -> go (i + 1)
        | Error e -> Error e
    in
    go 0
  in
  let factor, note =
    match feasible with
    | Ok () -> (1.0, "full input")
    | Error _ ->
        (* the paper measures ferret's speedup with 1500 of 3500 images *)
        (1500. /. 3500., "reduced input (1500 images), as in the paper")
  in
  let shape = scale_shared w factor in
  (* whole-benchmark speedup, like the paper; the serial part scales
     with the input *)
  let shape =
    {
      shape with
      Plan.host_serial_s = shape.Plan.host_serial_s *. factor;
    }
  in
  let t_myo = Schedule_gen.total_time Context.cfg shape Plan.Shared_myo in
  let t_seg =
    Schedule_gen.total_time Context.cfg shape
      (Plan.Shared_segbuf { seg_bytes = Comp.default_seg_bytes })
  in
  {
    name = w.name;
    static_allocs = static_allocs w.name;
    dynamic_allocs = sh.Plan.shared_allocs;
    shared_mib = float_of_int sh.Plan.shared_bytes /. Workloads.Workload.mib;
    myo_feasible = feasible;
    speedup = t_myo /. t_seg;
    paper = w.paper.Workloads.Workload.p_shared;
    note;
  }

let rows () = List.map row (Context.shared_benchmarks ())

let print () =
  let rows = rows () in
  Tables.print
    ~title:"Table III: shared-memory mechanism vs Intel MYO"
    ~header:
      [
        "benchmark"; "static"; "dynamic"; "shared MB"; "MYO at full input";
        "speedup"; "paper"; "note";
      ]
    (List.map
       (fun r ->
         [
           r.name;
           string_of_int r.static_allocs;
           string_of_int r.dynamic_allocs;
           Tables.f1 r.shared_mib;
           (match r.myo_feasible with
           | Ok () -> "runs"
           | Error e -> Format.asprintf "%a" Runtime.Myo.pp_error e);
           Tables.f2 r.speedup;
           Tables.opt_f2 r.paper;
           r.note;
         ])
       rows)
