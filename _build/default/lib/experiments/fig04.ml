(** Figure 4: data-transfer time versus device computation time for
    blackscholes, kmeans and nn, each normalized by computation time.
    Transfer exceeding computation is what motivates data streaming. *)

type row = { name : string; transfer_ratio : float; calc_ratio : float }

let benchmarks = [ "blackscholes"; "kmeans"; "nn" ]

let row name =
  let w = Workloads.Registry.find_exn name in
  let s = w.Workloads.Workload.shape in
  let calc =
    Machine.Cost.mic_time Context.cfg s.Runtime.Plan.kernel
      ~iters:s.Runtime.Plan.iters
  in
  let transfer =
    Machine.Cost.transfer_time Context.cfg Machine.Cost.H2d
      ~bytes:s.Runtime.Plan.bytes_in
    +. Machine.Cost.transfer_time Context.cfg Machine.Cost.D2h
         ~bytes:s.Runtime.Plan.bytes_out
  in
  { name; transfer_ratio = transfer /. calc; calc_ratio = 1.0 }

let rows () = List.map row benchmarks

let print () =
  Tables.print
    ~align:[ Tables.L; Tables.R; Tables.R ]
    ~title:"Figure 4: data transfer overhead (normalized to calculation)"
    ~header:[ "benchmark"; "transfer"; "calculation" ]
    (List.map
       (fun r ->
         [ r.name; Tables.f2 r.transfer_ratio; Tables.f2 r.calc_ratio ])
       (rows ()))
