(** Figure 15: gains from regularization alone (paper average 1.25x). *)

type row = { name : string; speedup : float; paper : float option }

val rows : unit -> row list
val print : unit -> unit
