(** Plain-text table rendering shared by every experiment. *)

type align = L | R

val render : ?align:align list -> header:string list -> string list list -> string
val print :
  ?align:align list -> title:string -> header:string list -> string list list -> unit

val f1 : float -> string
val f2 : float -> string
val f3 : float -> string
val pct : float -> string
val opt_f2 : float option -> string

val average : float list -> float
(** Arithmetic mean, as the paper's "average" bars; 0 on []. *)
