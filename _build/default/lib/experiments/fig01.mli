(** Figure 1: naive-offload MIC speedup over the multicore CPU.
    The paper's point: 8 of 12 benchmarks are slower on the
    coprocessor. *)

type row = { name : string; speedup : float }

val rows : unit -> row list
val print : unit -> unit
