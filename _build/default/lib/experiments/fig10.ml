(** Figure 10: whole-application speedups over the parallel CPU
    version: CPU (= 1), MIC without optimization, MIC with the COMP
    optimizations. *)

type row = {
  name : string;
  cpu : float;
  mic_naive : float;
  mic_opt : float;
}

let rows () =
  List.map
    (fun (t : Context.timing) ->
      {
        name = t.w.Workloads.Workload.name;
        cpu = 1.0;
        mic_naive = t.cpu_s /. t.naive_s;
        mic_opt = t.cpu_s /. t.opt_s;
      })
    (Context.all_timings ())

let print () =
  let rows = rows () in
  let avg f = Tables.average (List.map f rows) in
  Tables.print
    ~align:[ Tables.L; Tables.R; Tables.R; Tables.R ]
    ~title:"Figure 10: application speedups over the parallel CPU version"
    ~header:[ "benchmark"; "CPU"; "MIC w/o opt"; "MIC w/ opt" ]
    (List.map
       (fun r ->
         [
           r.name;
           Tables.f2 r.cpu;
           Tables.f2 r.mic_naive;
           Tables.f2 r.mic_opt;
         ])
       rows
    @ [
        [
          "average";
          "1.00";
          Tables.f2 (avg (fun r -> r.mic_naive));
          Tables.f2 (avg (fun r -> r.mic_opt));
        ];
      ]);
  let better = List.length (List.filter (fun r -> r.mic_opt > 1.) rows) in
  let better_naive =
    List.length (List.filter (fun r -> r.mic_naive > 1.) rows)
  in
  Printf.printf
    "benchmarks faster than CPU: naive %d / 12 (paper: 4), optimized %d / 12 \
     (paper: 9)\n"
    better_naive better
