(** Sensitivity studies extending the paper's evaluation.

    The paper fixes one platform (6 GB/s PCIe, 8 GB device memory,
    ~1 ms launches).  These sweeps ask where its conclusions hold:

    - {b interconnect bandwidth}: data streaming attacks transfer
      latency; as the link gets faster (PCIe 4/5, NVLink-class), the
      naive offload's transfer share shrinks and the streaming gain
      decays toward 1 — the crossover is where COMP's first
      optimization stops mattering;
    - {b the memory wall}: the double-buffered streaming variant exists
      because offloaded data that does not fit in the 8 GB device
      memory is a hard runtime error.  Scaling each benchmark's input
      shows which naive ports hit the wall and confirms streaming keeps
      them runnable ("enables the execution of computation tasks that
      previously cannot be executed", Section I);
    - {b half- vs full-duplex}: streaming overlaps output transfers
      with input transfers of later blocks; a half-duplex link
      serializes them and eats part of the gain. *)

let cfg = Context.cfg

let with_bw bw =
  {
    cfg with
    Machine.Config.pcie =
      { cfg.Machine.Config.pcie with bw_h2d_gbs = bw; bw_d2h_gbs = bw };
  }

(** Streaming gain as a function of link bandwidth, per streaming
    benchmark. *)
let bandwidth_rows () =
  let bws = [ 3.0; 6.0; 12.0; 24.0; 48.0 ] in
  List.map
    (fun (w : Workloads.Workload.t) ->
      let gains =
        List.map
          (fun bw ->
            let cfg = with_bw bw in
            let naive =
              Runtime.Schedule_gen.total_time cfg w.shape
                Runtime.Plan.Naive_offload
            in
            let streamed =
              Runtime.Schedule_gen.total_time cfg w.shape
                (Runtime.Plan.streamed ~persistent:true ())
            in
            naive /. streamed)
          bws
      in
      (w.name, gains))
    (List.filter
       (fun (w : Workloads.Workload.t) ->
         (Comp.analyze w).Comp.streaming && w.shape.outer_repeats = 1)
       Workloads.Registry.all)

let print_bandwidth () =
  let rows = bandwidth_rows () in
  Tables.print
    ~title:
      "Sensitivity: streaming gain vs PCIe bandwidth (gain decays as \
       links get faster)"
    ~header:[ "benchmark"; "3 GB/s"; "6 GB/s"; "12 GB/s"; "24 GB/s"; "48 GB/s" ]
    (List.map
       (fun (name, gains) -> name :: List.map Tables.f2 gains)
       rows)

(** The 8 GB wall: scale each streaming benchmark's input and compare
    the naive footprint against device memory and the double-buffered
    footprint. *)
let memory_wall_rows () =
  let scales = [ 1; 4; 16; 64 ] in
  List.concat_map
    (fun (w : Workloads.Workload.t) ->
      List.map
        (fun k ->
          let shape =
            {
              w.shape with
              Runtime.Plan.bytes_in =
                w.shape.Runtime.Plan.bytes_in *. float_of_int k;
              bytes_out = w.shape.Runtime.Plan.bytes_out *. float_of_int k;
              invariant_bytes =
                w.shape.Runtime.Plan.invariant_bytes *. float_of_int k;
            }
          in
          let naive =
            Runtime.Mem_usage.device_bytes shape Runtime.Plan.Naive_offload
          in
          let streamed =
            Runtime.Mem_usage.device_bytes shape
              (Runtime.Plan.streamed ~nblocks:Comp.default_nblocks ())
          in
          ( w.name,
            k,
            naive,
            Runtime.Mem_usage.fits cfg naive,
            streamed,
            Runtime.Mem_usage.fits cfg streamed ))
        scales)
    (Context.streaming_benchmarks ())

let print_memory_wall () =
  let gb x = Printf.sprintf "%.2f GB" (x /. 1e9) in
  let runs b = if b then "runs" else "OUT OF MEMORY" in
  Tables.print
    ~title:
      "Sensitivity: the 8 GB device-memory wall under input scaling \
       (naive vs double-buffered streaming)"
    ~header:
      [ "benchmark"; "input x"; "naive footprint"; "naive"; "streamed"; "streamed" ]
    (List.map
       (fun (name, k, naive, ok_n, streamed, ok_s) ->
         [
           name; string_of_int k; gb naive; runs ok_n; gb streamed; runs ok_s;
         ])
       (memory_wall_rows ()))

(** Full- vs half-duplex links: what the d2h/h2d overlap is worth. *)
let duplex_rows () =
  List.map
    (fun (w : Workloads.Workload.t) ->
      let t duplex =
        let cfg =
          {
            cfg with
            Machine.Config.pcie = { cfg.Machine.Config.pcie with duplex };
          }
        in
        Runtime.Schedule_gen.total_time cfg w.shape
          (Runtime.Plan.streamed ~persistent:true ())
      in
      let full = t Machine.Config.Full_duplex in
      let half = t Machine.Config.Half_duplex in
      (w.name, full, half, half /. full))
    (Context.streaming_benchmarks ())

let print_duplex () =
  Tables.print
    ~title:"Sensitivity: streamed time on full- vs half-duplex links"
    ~header:[ "benchmark"; "full duplex s"; "half duplex s"; "slowdown" ]
    (List.map
       (fun (name, full, half, ratio) ->
         [ name; Tables.f3 full; Tables.f3 half; Tables.f2 ratio ])
       (duplex_rows ()))

let print () =
  print_bandwidth ();
  print_memory_wall ();
  print_duplex ()
