(** Figure 1: speedups of the naively offloaded OpenMP codes on the
    Xeon Phi over the multicore CPU.  The paper's point: 8 of 12
    benchmarks are {e slower} on the coprocessor than on 4–6 CPU
    threads. *)

type row = { name : string; speedup : float }

let rows () =
  List.map
    (fun (t : Context.timing) ->
      { name = t.w.Workloads.Workload.name; speedup = t.cpu_s /. t.naive_s })
    (Context.all_timings ())

let print () =
  let rows = rows () in
  let avg = Tables.average (List.map (fun r -> r.speedup) rows) in
  Tables.print ~align:[ Tables.L; Tables.R ]
    ~title:
      "Figure 1: naive-offload MIC speedup over multicore CPU (>1 = MIC wins)"
    ~header:[ "benchmark"; "speedup" ]
    (List.map (fun r -> [ r.name; Tables.f2 r.speedup ]) rows
    @ [ [ "average"; Tables.f2 avg ] ]);
  let losers = List.length (List.filter (fun r -> r.speedup < 1.) rows) in
  Printf.printf "benchmarks slower on MIC: %d / %d (paper: 8 / 12)\n" losers
    (List.length rows)
