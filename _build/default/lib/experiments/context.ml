(** Shared experiment context: machine configuration and the per-
    workload timing triple (CPU / naive MIC / optimized MIC) that
    Figures 1, 10 and 11 are built from. *)

let cfg = Machine.Config.paper_default

type timing = {
  w : Workloads.Workload.t;
  cpu_s : float;
  naive_s : float;
  opt_s : float;
}

let timing w =
  {
    w;
    cpu_s = Comp.simulate ~cfg w Comp.Cpu_parallel;
    naive_s = Comp.simulate ~cfg w Comp.Mic_naive;
    opt_s = Comp.simulate ~cfg w Comp.Mic_optimized;
  }

let all_timings () = List.map timing Workloads.Registry.all

(** Streaming variants for one workload, used by Figures 12/13: the
    baseline and the streamed plan it is compared against.  For merged
    benchmarks (streamcluster, CG) streaming means overlapping the
    merged offload's up-front transfer, matching how the optimizations
    compose in the paper. *)
let streaming_pair (w : Workloads.Workload.t) =
  let a = Comp.analyze w in
  let open Runtime.Plan in
  if a.Comp.merging then
    ( Comp.Mic_with (merged ~streamed:false (), w.shape),
      Comp.Mic_with (merged ~streamed:true (), w.shape) )
  else
    ( Comp.Mic_with (Naive_offload, w.shape),
      Comp.Mic_with (streamed ~nblocks:Comp.default_nblocks ~persistent:true (), w.shape)
    )

(** The five benchmarks data streaming benefits (Table II). *)
let streaming_benchmarks () =
  List.filter
    (fun (w : Workloads.Workload.t) ->
      (Comp.analyze w).Comp.streaming && not w.manual_streaming)
    Workloads.Registry.all

let merging_benchmarks () =
  List.filter
    (fun w -> (Comp.analyze w).Comp.merging)
    Workloads.Registry.all

let regularization_benchmarks () =
  List.filter
    (fun w -> (Comp.analyze w).Comp.regularization <> [])
    Workloads.Registry.all

let shared_benchmarks () =
  List.filter
    (fun w -> (Comp.analyze w).Comp.shared_memory)
    Workloads.Registry.all
