(** Table III: the shared-memory mechanism vs Intel MYO on ferret and
    freqmine (allocation counts, feasibility, speedups).  ferret's
    speedup is measured at reduced input, as in the paper, because MYO
    cannot run it at full size. *)

type row = {
  name : string;
  static_allocs : int;
  dynamic_allocs : int;
  shared_mib : float;
  myo_feasible : (unit, Runtime.Myo.error) result;
  speedup : float;
  paper : float option;
  note : string;
}

val rows : unit -> row list
val print : unit -> unit
