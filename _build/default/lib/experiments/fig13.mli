(** Figure 13: device memory usage of double-buffered streaming
    relative to the original offload (paper: >80% reduction). *)

type row = { name : string; relative : float }

val rows : unit -> row list
val print : unit -> unit
