(** Table II: benchmark inventory and per-optimization applicability,
    decided by the compiler analyses on each workload's kernel
    source, checked against the paper's matrix. *)

type row = {
  name : string;
  suite : string;
  input : string;
  kloc : float;
  streaming : bool;
  merging : bool;
  regularization : bool;
  shared : bool;
}

val row : Workloads.Workload.t -> row
val rows : unit -> row list

val paper_matrix : (string * (bool * bool * bool * bool)) list
(** The paper's applicability per benchmark:
    (streaming, merging, regularization, shared memory). *)

val matches_paper : row -> bool
val print : unit -> unit
