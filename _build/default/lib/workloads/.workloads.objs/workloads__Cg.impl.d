lib/workloads/cg.ml: Machine Plan Runtime Workload
