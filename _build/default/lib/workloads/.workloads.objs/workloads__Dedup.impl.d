lib/workloads/dedup.ml: Machine Plan Runtime Workload
