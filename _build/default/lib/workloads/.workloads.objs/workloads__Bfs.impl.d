lib/workloads/bfs.ml: Machine Plan Runtime Workload
