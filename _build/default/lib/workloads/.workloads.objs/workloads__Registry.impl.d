lib/workloads/registry.ml: Bfs Blackscholes Cfd Cg Dedup Ferret Freqmine Hotspot Kmeans List Nn Srad Streamcluster String Workload
