lib/workloads/nn.ml: Machine Plan Runtime Workload
