lib/workloads/blackscholes.ml: Machine Plan Runtime Workload
