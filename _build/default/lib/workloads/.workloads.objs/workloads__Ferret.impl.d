lib/workloads/ferret.ml: Machine Plan Runtime Workload
