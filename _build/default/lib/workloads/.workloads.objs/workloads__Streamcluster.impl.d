lib/workloads/streamcluster.ml: Machine Plan Runtime Workload
