lib/workloads/workload.mli: Minic Runtime
