lib/workloads/workload.ml: Minic Option Runtime
