lib/workloads/freqmine.ml: Machine Plan Runtime Workload
