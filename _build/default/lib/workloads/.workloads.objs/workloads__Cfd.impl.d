lib/workloads/cfd.ml: Machine Plan Runtime Workload
