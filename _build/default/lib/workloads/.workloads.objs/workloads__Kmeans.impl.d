lib/workloads/kmeans.ml: Machine Plan Runtime Workload
