lib/workloads/srad.ml: Machine Plan Runtime Workload
