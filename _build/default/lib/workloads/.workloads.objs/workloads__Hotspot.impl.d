lib/workloads/hotspot.ml: Machine Plan Runtime Workload
