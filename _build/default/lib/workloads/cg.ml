(** CG (NAS): conjugate gradient.  Every solver iteration launches a
    handful of small offloaded vector kernels (matvec, axpy updates),
    so both offload merging (18.53x) and, on the regular vector loops,
    data streaming (1.28x) apply — Table II. *)

open Runtime

(* One outer solver loop; two affine vector kernels per iteration plus
   a sparse matvec whose gather on p is guarded by the per-row length
   (variable row population), so the matvec is neither streamable nor
   reorderable — only the regular kernels stream, matching the paper. *)
let source =
  {|
int main(void) {
  int n = 16;
  int iters = 3;
  float a[64];
  int colidx[64];
  int rowlen[16];
  float p[16];
  float q[16];
  float r[16];
  float x[16];
  for (i = 0; i < 64; i++) {
    a[i] = (float)(i % 9) / 4.0;
    colidx[i] = (i * 5 + 1) % 16;
  }
  for (i = 0; i < 16; i++) {
    rowlen[i] = i % 4 + 1;
    p[i] = (float)i / 8.0;
    r[i] = 1.0 - (float)i / 16.0;
    x[i] = 0.0;
  }
  for (it = 0; it < iters; it++) {
    #pragma offload target(mic:0) in(a[0:64], colidx[0:64], rowlen[0:n], p[0:n]) out(q[0:n])
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
      float sum = 0.0;
      for (k = 0; k < 4; k++) {
        if (k < rowlen[i]) {
          sum = sum + a[i * 4 + k] * p[colidx[i * 4 + k]];
        }
      }
      q[i] = sum;
    }
    #pragma offload target(mic:0) in(q[0:n], p[0:n]) inout(x[0:n])
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
      x[i] = x[i] + 0.5 * p[i] + 0.25 * q[i];
    }
    #pragma offload target(mic:0) in(q[0:n]) inout(r[0:n], p[0:n])
    #pragma omp parallel for
    for (i = 0; i < n; i++) {
      r[i] = r[i] - 0.5 * q[i];
      p[i] = r[i] + 0.3 * p[i];
    }
  }
  for (i = 0; i < n; i++) {
    print_float(x[i]);
  }
  return 0;
}
|}

(* NAS CG class A: 14,000-row sparse system, ~75 outer iterations, 3
   offloads each.  The vectors are a few hundred KB, so per offload the
   launch latency and transfer setup dominate the microseconds of
   compute — merging removes both. *)
let n = 75_000

let shape =
  {
    Plan.default_shape with
    Plan.iters = n;
    kernel =
      {
        Machine.Cost.flops_per_iter = 60.0;
        mem_bytes_per_iter = 48.0;
        vectorizable = true;
        locality = 0.5;
        serial_frac = 0.0;
        mic_derate = 0.7;
      };
    bytes_in = float_of_int (n * 4 * 13);
    bytes_out = float_of_int (n * 4);
    outer_repeats = 75;
    inner_offloads = 3;
    host_glue_s = 0.00001;
    host_serial_s = 0.002;
  }

let t =
  {
    Workload.name = "cg";
    suite = "NAS";
    input_desc = "75 K array";
    kloc = 0.524;
    source;
    shape;
    regularized = None;
    manual_streaming = false;
    paper =
      {
        Workload.no_paper_numbers with
        p_streaming = Some 1.28;
        p_merging = Some 18.53;
        p_overall = Some 23.72;
      };
  }
