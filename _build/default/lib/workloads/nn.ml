(** nn (Rodinia): nearest-neighbor search over hurricane records.  The
    offloaded distance loop reads only the two coordinate fields of
    each 5-field flat record — a constant-stride irregular access
    (Figure 8, second pattern).  Regularization packs the used fields
    (1.23x, mostly by deleting 60% of the transfer) and streaming
    overlaps what remains (1.24x) — Table II. *)

open Runtime

let source =
  {|
int main(void) {
  int nrec = 20;
  float records[100];
  float dist[20];
  float tlat = 30.0;
  float tlng = 90.0;
  for (i = 0; i < 100; i++) {
    records[i] = (float)(i % 37) * 1.5;
  }
  #pragma offload target(mic:0) in(records[0:100]) out(dist[0:nrec])
  #pragma omp parallel for
  for (i = 0; i < nrec; i++) {
    float lat = records[i * 5];
    float lng = records[i * 5 + 1];
    dist[i] = sqrt((lat - tlat) * (lat - tlat)
      + (lng - tlng) * (lng - tlng));
  }
  for (i = 0; i < nrec; i++) {
    print_float(dist[i]);
  }
  return 0;
}
|}

(* 2e8 points in the paper's input; modeled at 4e7 5-field records
   (800 MB naive transfer).  The distance kernel is a handful of flops
   per record: memory- and transfer-bound on both sides, and the
   strided scalar loads keep the MIC from vectorizing. *)
let nrec = 40_000_000

let kernel =
  {
    Machine.Cost.flops_per_iter = 30.0;
    mem_bytes_per_iter = 20.0;
    vectorizable = false;
    locality = 0.55;
    serial_frac = 0.0;
    mic_derate = 0.16;
  }

let shape =
  {
    Plan.default_shape with
    Plan.iters = nrec;
    kernel;
    bytes_in = float_of_int (nrec * 5 * 4);
    bytes_out = float_of_int (4 * nrec / 10);
    host_serial_s = 0.040;
  }

(* After reordering, only the two used fields travel (2/5 of the bytes)
   and the reads are unit-stride with good locality; the kernel itself
   stays scalar (sqrt-bound), as the paper observes — nn's win is
   removing unnecessary data transfer.  The host-side pack reads the
   whole record array once. *)
let reg_shape =
  {
    shape with
    Plan.bytes_in = float_of_int (nrec * 2 * 4);
    kernel = { kernel with Machine.Cost.locality = 0.9; mic_derate = 0.2 };
  }

let regularized =
  {
    Workload.reg_shape;
    repack =
      {
        Plan.repack_s_per_block = 0.040 /. 20.;
        (* ~60 ms to gather 800 MB into packed arrays, per 1/20 block *)
        pipelined = true;
      };
  }

let t =
  {
    Workload.name = "nn";
    suite = "Rodinia";
    input_desc = "2.0 * 10^8 points";
    kloc = 0.12;
    source;
    shape;
    regularized = Some regularized;
    manual_streaming = false;
    paper =
      {
        Workload.no_paper_numbers with
        p_streaming = Some 1.24;
        p_regularization = Some 1.23;
        p_overall = Some 1.53;
      };
  }
