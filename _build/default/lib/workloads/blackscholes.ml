(** blackscholes (PARSEC): option pricing, the paper's running example
    (Figure 5).  One offloaded parallel loop, all accesses affine with
    unit stride — the ideal data-streaming candidate.  Table II:
    streaming applies, speedup 1.54. *)

open Runtime

(* Miniature model of the offloaded pricing loop: several unit-stride
   input arrays, one output array, transcendental-heavy body. *)
let source =
  {|
float cndf(float d) {
  float k = 1.0 / (1.0 + 0.2316419 * fabs(d));
  float w = 0.31938153 * k - 0.356563782 * k * k
    + 1.781477937 * k * k * k;
  float nprime = 0.3989422804 * exp(0.0 - d * d / 2.0);
  float v = 1.0 - nprime * w;
  if (d < 0.0) {
    v = 1.0 - v;
  }
  return v;
}

float blk_schls_eq_euro_no_div(float spot, float strike, float rate,
                               float vol, float time) {
  float den = vol * sqrt(time);
  float d1 = (log(spot / strike) + (rate + vol * vol / 2.0) * time) / den;
  float d2 = d1 - den;
  return spot * cndf(d1) - strike * exp(0.0 - rate * time) * cndf(d2);
}

int main(void) {
  int numOptions = 32;
  float sptprice[32];
  float strike[32];
  float rate[32];
  float volatility[32];
  float otime[32];
  float prices[32];
  for (i = 0; i < numOptions; i++) {
    sptprice[i] = 90.0 + (float)(i % 17);
    strike[i] = 95.0 + (float)(i % 11);
    rate[i] = 0.02 + (float)(i % 3) / 100.0;
    volatility[i] = 0.2 + (float)(i % 5) / 50.0;
    otime[i] = 0.5 + (float)(i % 7) / 10.0;
  }
  #pragma offload target(mic:0) in(sptprice[0:numOptions], strike[0:numOptions], rate[0:numOptions], volatility[0:numOptions], otime[0:numOptions]) out(prices[0:numOptions])
  #pragma omp parallel for
  for (i = 0; i < numOptions; i++) {
    prices[i] = blk_schls_eq_euro_no_div(sptprice[i], strike[i], rate[i],
                                         volatility[i], otime[i]);
  }
  for (i = 0; i < numOptions; i++) {
    print_float(prices[i]);
  }
  return 0;
}
|}

(* 10M options; 5 input arrays + 1 output of 4-byte floats.  The kernel
   is transcendental-heavy (exp/log/sqrt/div chains), which the in-order
   MIC cores execute far below peak: mic_derate calibrated so the
   device computes ~1.7x faster than 4 host threads, while the PCIe
   transfer of 200 MB input dominates the naive offload. *)
let n_options = 10_000_000

let shape =
  {
    Plan.default_shape with
    Plan.iters = n_options;
    kernel =
      {
        Machine.Cost.flops_per_iter = 300.0;
        mem_bytes_per_iter = 24.0;
        vectorizable = true;
        locality = 0.95;
        serial_frac = 0.0;
        mic_derate = 0.17;
      };
    bytes_in = float_of_int (5 * 4 * n_options);
    bytes_out = float_of_int (4 * n_options);
    host_serial_s = 0.020;
  }

let t =
  {
    Workload.name = "blackscholes";
    suite = "Parsec";
    input_desc = "10^7 options";
    kloc = 0.415;
    source;
    shape;
    regularized = None;
    manual_streaming = false;
    paper =
      {
        Workload.no_paper_numbers with
        p_streaming = Some 1.54;
        p_overall = Some 1.54;
      };
  }
