(** cfd (Rodinia): unstructured-grid Euler solver.  Each time step
    launches several offloaded kernels over the element arrays; the
    per-element variable count is a runtime parameter, so the accesses
    ([vars[i*nvar + 1]]) are not affine with constant stride — no
    streaming, no regularization, but merging the per-step offloads
    gives 27.19x (Table II / Figure 14). *)

open Runtime

let source =
  {|
int main(void) {
  int nelem = 12;
  int nvar = 4;
  int steps = 3;
  float vars[48];
  float fluxes[48];
  float step_factors[12];
  for (i = 0; i < 48; i++) {
    vars[i] = 1.0 + (float)(i % 7) / 5.0;
  }
  for (s = 0; s < steps; s++) {
    #pragma offload target(mic:0) in(vars[0:48]) out(step_factors[0:nelem])
    #pragma omp parallel for
    for (i = 0; i < nelem; i++) {
      step_factors[i] = 0.5 / sqrt(vars[i * nvar + 0] * vars[i * nvar + 0]
        + vars[i * nvar + 1] * vars[i * nvar + 1]);
    }
    #pragma offload target(mic:0) in(vars[0:48]) out(fluxes[0:48])
    #pragma omp parallel for
    for (i = 0; i < nelem; i++) {
      fluxes[i * nvar + 0] = vars[i * nvar + 0] * 0.9;
      fluxes[i * nvar + 1] = vars[i * nvar + 1] * 0.9
        + vars[i * nvar + 0] * 0.1;
      fluxes[i * nvar + 2] = vars[i * nvar + 2] * 0.9
        - vars[i * nvar + 0] * 0.1;
      fluxes[i * nvar + 3] = vars[i * nvar + 3] * 0.8;
    }
    #pragma offload target(mic:0) in(fluxes[0:48], step_factors[0:nelem]) inout(vars[0:48])
    #pragma omp parallel for
    for (i = 0; i < nelem; i++) {
      vars[i * nvar + 0] = vars[i * nvar + 0]
        + step_factors[i] * fluxes[i * nvar + 0];
      vars[i * nvar + 1] = vars[i * nvar + 1]
        + step_factors[i] * fluxes[i * nvar + 1];
      vars[i * nvar + 2] = vars[i * nvar + 2]
        + step_factors[i] * fluxes[i * nvar + 2];
      vars[i * nvar + 3] = vars[i * nvar + 3]
        + step_factors[i] * fluxes[i * nvar + 3];
    }
  }
  for (i = 0; i < nelem; i++) {
    print_float(vars[i * nvar + 0]);
  }
  return 0;
}
|}

(* 97K elements x 2000 time steps in the original; modeled at 400 steps
   of 3 offloads each.  Per step the 9 MB of element state crosses PCIe
   three times in the naive port while each kernel computes for well
   under a millisecond. *)
let nelem = 97_000

let shape =
  {
    Plan.default_shape with
    Plan.iters = nelem;
    kernel =
      {
        Machine.Cost.flops_per_iter = 20.0;
        mem_bytes_per_iter = 100.0;
        vectorizable = false;
        locality = 0.6;
        serial_frac = 0.0;
        mic_derate = 0.6;
      };
    bytes_in = float_of_int (nelem * 5 * 4 * 4);
    bytes_out = float_of_int (nelem * 5 * 4);
    outer_repeats = 400;
    inner_offloads = 3;
    host_glue_s = 0.00001;
    host_serial_s = 0.050;
  }

let t =
  {
    Workload.name = "cfd";
    suite = "Rodinia";
    input_desc = "53 M data";
    kloc = 0.359;
    source;
    shape;
    regularized = None;
    manual_streaming = false;
    paper =
      {
        Workload.no_paper_numbers with
        p_merging = Some 27.19;
        p_overall = Some 27.19;
      };
  }
