(** ferret (PARSEC): content-based image similarity search over a large
    pointer-based feature database.  The offloaded ranking stage walks
    linearized feature vectors; the interesting part is how the
    database reaches the device.  MYO cannot even run it (80,298 shared
    allocations exceed its limits); the segmented shared-memory
    mechanism of Section V gives 7.81x (Table III, measured at 1500
    images). *)

open Runtime

(* The kernel model mirrors what our shared-memory mechanism produces:
   the feature database lives in preallocated device buffers filled by
   whole-buffer DMA (mic_malloc + offload_transfer), so the offload
   itself carries no in() clauses for the database — exactly like
   segment-resident shared data.  The query is small and copied
   normally. *)
let source =
  {|
int main(void) {
  int nimages = 16;
  int dim = 8;
  float db[128];
  float query[8];
  float score[16];
  for (i = 0; i < 128; i++) {
    db[i] = (float)(i % 23) / 7.0;
  }
  for (i = 0; i < dim; i++) {
    query[i] = (float)i / 3.0;
  }
  float* db_mic = (float*)mic_malloc(128);
  #pragma offload_transfer target(mic:0) in(db[0:128] : into(db_mic[0:128]))
  #pragma offload target(mic:0) in(query[0:dim]) out(score[0:nimages])
  #pragma omp parallel for
  for (i = 0; i < nimages; i++) {
    float s = 0.0;
    for (j = 0; j < 8; j++) {
      float d = db_mic[i * 8 + j] - query[j];
      s = s + d * d;
    }
    score[i] = s;
  }
  for (i = 0; i < nimages; i++) {
    print_float(score[i]);
  }
  return 0;
}
|}

(* 3500 images; 83 MB of shared pointer-based feature data built from
   80,298 allocations (Table III).  Ranking is pointer-chasing with
   little arithmetic: the MIC runs it slower than the host, and under
   MYO every page of the database faults in (twice, across the two
   offloaded pipeline stages) with per-access coherence checks on
   top. *)
let shared =
  {
    Plan.shared_bytes = 83 * 1024 * 1024;
    shared_allocs = 80_298;
    objects_touched = 3500 * 500;
    myo_touched_frac = 1.0;
    myo_rounds = 4;
    myo_access_penalty = 1.35;
  }

let shape =
  {
    Plan.default_shape with
    Plan.iters = 50_000_000;
    kernel =
      {
        Machine.Cost.flops_per_iter = 96.0;
        mem_bytes_per_iter = 128.0;
        vectorizable = false;
        locality = 0.35;
        serial_frac = 0.02;
        mic_derate = 0.12;
      };
    bytes_in = 0.;
    bytes_out = float_of_int (3500 * 4);
    invariant_bytes = 0.;
    host_serial_s = 0.1;
    cpu_threads = Some 6;
    shared = Some shared;
  }

let t =
  {
    Workload.name = "ferret";
    suite = "Parsec";
    input_desc = "3500 images";
    kloc = 11.159;
    source;
    shape;
    regularized = None;
    manual_streaming = false;
    paper =
      {
        Workload.no_paper_numbers with
        p_shared = Some 7.81;
        p_overall = Some 7.81;
      };
  }
