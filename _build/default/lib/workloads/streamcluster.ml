(** streamcluster (PARSEC): online clustering.  A sequential outer loop
    re-runs several small offloaded distance/assignment loops every
    iteration (Figure 6) — the offload-merging showcase.  Table II:
    streaming 1.34x, merging 38.89x; Figure 11 overall 52.21x. *)

open Runtime

(* Two inner parallel loops per outer iteration, both affine: distance
   evaluation against the current center, then conditional assignment
   cost update.  Scalar reductions are kept in per-point arrays so the
   loops stay provably parallel. *)
let source =
  {|
int main(void) {
  int npoints = 24;
  int dim = 4;
  int iters = 3;
  float coords[96];
  float center[4];
  float dist[24];
  float cost[24];
  for (i = 0; i < 96; i++) {
    coords[i] = (float)(i % 13) / 3.0;
  }
  for (i = 0; i < 4; i++) {
    center[i] = (float)i + 0.5;
  }
  for (i = 0; i < 24; i++) {
    cost[i] = 1000.0;
  }
  for (it = 0; it < iters; it++) {
    #pragma offload target(mic:0) in(coords[0:96], center[0:dim]) out(dist[0:npoints])
    #pragma omp parallel for
    for (i = 0; i < npoints; i++) {
      float dx0 = coords[i * 4 + 0] - center[0];
      float dx1 = coords[i * 4 + 1] - center[1];
      float dx2 = coords[i * 4 + 2] - center[2];
      float dx3 = coords[i * 4 + 3] - center[3];
      dist[i] = dx0 * dx0 + dx1 * dx1 + dx2 * dx2 + dx3 * dx3;
    }
    #pragma offload target(mic:0) in(dist[0:npoints]) inout(cost[0:npoints])
    #pragma omp parallel for
    for (i = 0; i < npoints; i++) {
      if (dist[i] < cost[i]) {
        cost[i] = dist[i];
      }
    }
    center[it % 4] = center[it % 4] + 0.25;
  }
  for (i = 0; i < npoints; i++) {
    print_float(cost[i]);
  }
  return 0;
}
|}

(* 163,840 points x 128 dims; ~300 outer iterations, each launching two
   small kernels.  Per inner offload the launch latency and the
   re-transfer of the 84 MB working set dwarf the actual distance
   computation, which is exactly what merging eliminates. *)
let shape =
  {
    Plan.default_shape with
    Plan.iters = 163_840;
    kernel =
      {
        Machine.Cost.flops_per_iter = 320.0;
        mem_bytes_per_iter = 64.0;
        vectorizable = true;
        locality = 0.9;
        serial_frac = 0.0;
        mic_derate = 1.0;
      };
    bytes_in = float_of_int (163_840 * 128 * 4 / 2);
    (* per inner offload: half the 84 MB working set each *)
    bytes_out = float_of_int (163_840 * 4);
    outer_repeats = 150;
    inner_offloads = 2;
    host_glue_s = 25.0e-6;
    host_serial_s = 0.010;
  }

let t =
  {
    Workload.name = "streamcluster";
    suite = "Parsec";
    input_desc = "163840 points";
    kloc = 1.79;
    source;
    shape;
    regularized = None;
    manual_streaming = false;
    paper =
      {
        Workload.no_paper_numbers with
        p_streaming = Some 1.34;
        p_merging = Some 38.89;
        p_overall = Some 52.21;
      };
  }
