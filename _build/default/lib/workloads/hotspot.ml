(** hotspot (Rodinia): thermal stencil over a 2D grid.  The row width
    is a runtime parameter, so the flattened accesses
    ([temp[i*cols + c]]) are not constant-stride affine — no streaming
    — but the grid is small and the stencil compute-dense, so the naive
    MIC port is already the fastest variant (Table II / Figure 10: no
    optimization applies, MIC beats CPU ~2.5x). *)

open Runtime

let source =
  {|
int main(void) {
  int rows = 6;
  int cols = 6;
  int steps = 2;
  float temp[36];
  float power[36];
  float tnew[36];
  for (i = 0; i < 36; i++) {
    temp[i] = 60.0 + (float)(i % 9);
    power[i] = (float)(i % 4) / 10.0;
  }
  for (s = 0; s < steps; s++) {
    #pragma offload target(mic:0) in(temp[0:36], power[0:36]) out(tnew[0:36])
    #pragma omp parallel for
    for (i = 0; i < 36; i++) {
      int r = i / cols;
      int c = i % cols;
      float center = temp[i];
      float up = center;
      float down = center;
      float left = center;
      float right = center;
      if (r > 0) {
        up = temp[i - cols];
      }
      if (r < rows - 1) {
        down = temp[i + cols];
      }
      if (c > 0) {
        left = temp[i - 1];
      }
      if (c < cols - 1) {
        right = temp[i + 1];
      }
      float delta = 0.2 * (up + down - 2.0 * center)
        + 0.2 * (left + right - 2.0 * center)
        + power[i] * 0.05;
      tnew[i] = center + delta;
    }
    for (i = 0; i < 36; i++) {
      temp[i] = tnew[i];
    }
  }
  for (i = 0; i < 36; i++) {
    print_float(temp[i]);
  }
  return 0;
}
|}

(* 1024x1024 grid, 60 pyramid steps: 4 MB of state per transfer and a
   wide, perfectly vectorizable stencil — MIC heaven. *)
let cells = 1024 * 1024

let shape =
  {
    Plan.default_shape with
    Plan.iters = cells;
    kernel =
      {
        Machine.Cost.flops_per_iter = 420.0;
        mem_bytes_per_iter = 24.0;
        vectorizable = true;
        locality = 0.95;
        serial_frac = 0.0;
        mic_derate = 0.7;
      };
    bytes_in = float_of_int (cells * 4);
    bytes_out = float_of_int (cells * 2);
    outer_repeats = 60;
    host_glue_s = 0.0003;
    host_serial_s = 0.020;
  }

let t =
  {
    Workload.name = "hotspot";
    suite = "Rodinia";
    input_desc = "1024 * 1024 matrix";
    kloc = 0.192;
    source;
    shape;
    regularized = None;
    manual_streaming = false;
    paper = Workload.no_paper_numbers;
  }
